// Cclapp shows the paper's full two-phase workflow driven from XML: the
// component classes come from a CDL document, the application assembly from
// a CCL document, the Compadres compiler validates the composition and
// plans the scoped-memory architecture, and the runtime assembler wires the
// programmer-supplied handler implementations into it.
//
// The pipeline is a two-stage measurement filter: a Sampler feeds raw
// values to a Smoother child, which exponentially smooths them back to the
// Sampler. Everything about memory areas, pools, buffers, and threading
// comes from the CCL document.
//
//	go run ./examples/cclapp
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/ccl"
	"repro/internal/cdl"
	"repro/internal/compiler"
	"repro/internal/core"
)

// cdlDoc declares the component classes (phase 1: component definition).
const cdlDoc = `
<ComponentDefinitions>
  <Component>
    <ComponentName>Sampler</ComponentName>
    <Port><PortName>raw</PortName><PortType>Out</PortType><MessageType>Sample</MessageType></Port>
    <Port><PortName>smoothed</PortName><PortType>In</PortType><MessageType>Sample</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>Smoother</ComponentName>
    <Port><PortName>in</PortName><PortType>In</PortType><MessageType>Sample</MessageType></Port>
    <Port><PortName>out</PortName><PortType>Out</PortType><MessageType>Sample</MessageType></Port>
  </Component>
</ComponentDefinitions>`

// cclDoc assembles the application (phase 2: component composition).
const cclDoc = `
<Application>
  <ApplicationName>FilterApp</ApplicationName>
  <Component>
    <InstanceName>MySampler</InstanceName>
    <ClassName>Sampler</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port>
        <PortName>raw</PortName>
        <Link><PortType>Internal</PortType><ToComponent>MySmoother</ToComponent><ToPort>in</ToPort></Link>
      </Port>
      <Port>
        <PortName>smoothed</PortName>
        <PortAttributes>
          <BufferSize>8</BufferSize>
          <Threadpool>Shared</Threadpool>
          <MinThreadpoolSize>1</MinThreadpoolSize>
          <MaxThreadpoolSize>2</MaxThreadpoolSize>
        </PortAttributes>
        <Link><PortType>Internal</PortType><ToComponent>MySmoother</ToComponent><ToPort>out</ToPort></Link>
      </Port>
    </Connection>
    <Component>
      <InstanceName>MySmoother</InstanceName>
      <ClassName>Smoother</ClassName>
      <ComponentType>Scoped</ComponentType>
      <ScopeLevel>1</ScopeLevel>
      <UsePool>true</UsePool>
      <Persistent>true</Persistent>
    </Component>
  </Component>
  <RTSJAttributes>
    <ImmortalSize>400000</ImmortalSize>
    <ScopedPool>
      <ScopeLevel>1</ScopeLevel>
      <ScopeSize>131072</ScopeSize>
      <PoolSize>2</PoolSize>
    </ScopedPool>
  </RTSJAttributes>
</Application>`

// Sample is the Go type behind the CDL message type "Sample".
type Sample struct {
	Seq   int64
	Value float64
}

// Reset implements core.Message.
func (s *Sample) Reset() { *s = Sample{} }

var sampleType = core.MessageType{
	Name: "Sample",
	Size: 64,
	New:  func() core.Message { return &Sample{} },
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	defs, err := cdl.Parse(strings.NewReader(cdlDoc))
	if err != nil {
		return err
	}
	app, err := ccl.Parse(strings.NewReader(cclDoc))
	if err != nil {
		return err
	}
	plan, err := compiler.Compile(defs, app)
	if err != nil {
		return err
	}
	fmt.Printf("compiled %q: %d instances, %d connections\n", plan.AppName, len(plan.Order), len(plan.Connections))
	for _, c := range plan.Connections {
		fmt.Printf("  %-9s %s.%s -> %s.%s (SMM of %s)\n",
			c.Kind.String()+":", c.FromInstance, c.FromPort, c.ToInstance, c.ToPort, c.Mediator)
	}

	// Phase-1 output in the paper is generated skeletons; here the
	// implementations are written directly as class bindings.
	results := make(chan Sample, 16)
	raw := []float64{10, 20, 10, 30, 10}

	reg := compiler.NewRegistry()
	if err := reg.RegisterType(sampleType); err != nil {
		return err
	}
	if err := reg.RegisterClass("Sampler", compiler.ClassBinding{
		NewHandlers: func(c *core.Component) (map[string]core.Handler, error) {
			return map[string]core.Handler{
				"smoothed": core.HandlerFunc(func(p *core.Proc, m core.Message) error {
					results <- *m.(*Sample)
					return nil
				}),
			}, nil
		},
		Start: func(p *core.Proc) error {
			out, err := p.SMM().GetOutPort("MySampler.raw")
			if err != nil {
				return err
			}
			for i, v := range raw {
				msg, err := out.GetMessage()
				if err != nil {
					return err
				}
				s := msg.(*Sample)
				s.Seq, s.Value = int64(i), v
				if err := out.Send(msg, 10); err != nil {
					return err
				}
			}
			return nil
		},
	}); err != nil {
		return err
	}
	if err := reg.RegisterClass("Smoother", compiler.ClassBinding{
		NewHandlers: func(c *core.Component) (map[string]core.Handler, error) {
			// Per-instance filter state lives with the handler closure and
			// dies with the component instance.
			var ema float64
			var initialised bool
			return map[string]core.Handler{
				"in": core.HandlerFunc(func(p *core.Proc, m core.Message) error {
					s := m.(*Sample)
					if !initialised {
						ema, initialised = s.Value, true
					} else {
						ema = 0.5*ema + 0.5*s.Value
					}
					out, err := p.SMM().GetOutPort("MySmoother.out")
					if err != nil {
						return err
					}
					msg, err := out.GetMessage()
					if err != nil {
						return err
					}
					o := msg.(*Sample)
					o.Seq, o.Value = s.Seq, ema
					return out.Send(msg, p.Priority())
				}),
			}, nil
		},
	}); err != nil {
		return err
	}

	built, err := compiler.Assemble(plan, reg)
	if err != nil {
		return err
	}
	defer built.Stop()
	if err := built.Start(); err != nil {
		return err
	}

	for range raw {
		s := <-results
		fmt.Printf("smoothed[%d] = %.2f\n", s.Seq, s.Value)
	}
	if n, err := built.Errors(); n != 0 {
		return fmt.Errorf("%d handler errors, last: %v", n, err)
	}
	created, reused, _ := built.ScopePool(1).Stats()
	fmt.Printf("level-1 scope pool: %d created, %d acquisitions served\n", created, reused)
	return nil
}
