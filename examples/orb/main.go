// Orb runs the paper's real-world example end to end in one process: a
// Compadres ORB server exposing two CORBA objects over loopback TCP, a
// Compadres ORB client invoking them, and a comparison invocation through
// the hand-coded RTZen baseline — a miniature of the paper's §3.3
// experiment.
//
//	go run ./examples/orb
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/corba"
	"repro/internal/giop"
	"repro/internal/metrics"
	"repro/internal/orb"
	"repro/internal/rtzen"
	"repro/internal/sched"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// temperatureServant models a DRE sensor service: it answers readC with a
// CDR-encoded temperature for the zone named in the request.
func temperatureServant() corba.Servant {
	temps := map[string]float64{"engine": 91.5, "cabin": 21.0}
	return corba.ServantFunc(func(op string, in []byte) ([]byte, error) {
		if op != "readC" {
			return nil, fmt.Errorf("temperature: no operation %q", op)
		}
		d := giop.NewDecoder(giop.BigEndian, in)
		zone, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		t, ok := temps[zone]
		if !ok {
			return nil, fmt.Errorf("temperature: unknown zone %q", zone)
		}
		e := giop.NewEncoder(giop.BigEndian, nil)
		e.WriteDouble(t)
		return e.Bytes(), nil
	})
}

func run() error {
	// --- Server side: ORB -> POA/Acceptor -> Transport -> RequestProcessing.
	srv, err := orb.NewServer(orb.ServerConfig{
		Network: transport.TCP{}, Addr: "127.0.0.1:0", ScopePoolCount: 4,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	srv.RegisterServant("echo", corba.EchoServant{})
	srv.RegisterServant("temperature", temperatureServant())
	srv.ServeBackground()
	fmt.Println("Compadres ORB server listening on", srv.Addr())

	// --- Client side: ORB -> Transport -> MessageProcessing.
	cl, err := orb.DialClient(orb.ClientConfig{
		Network: transport.TCP{}, Addr: srv.Addr(), ScopePoolCount: 4,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	// A typed invocation: marshal the in-parameter, invoke, demarshal.
	e := giop.NewEncoder(giop.BigEndian, nil)
	e.WriteString("engine")
	out, err := cl.Invoke("temperature", "readC", e.Bytes(), sched.NormPriority)
	if err != nil {
		return err
	}
	temp, err := giop.NewDecoder(giop.BigEndian, out).ReadDouble()
	if err != nil {
		return err
	}
	fmt.Printf("temperature.readC(engine) = %.1f°C\n", temp)

	// An echo latency sample through the component-structured ORB.
	payload := make([]byte, 256)
	binary.BigEndian.PutUint64(payload, 0xDEADBEEF)
	sum, err := metrics.RunSteadyState(100, 1000, func() error {
		_, err := cl.Invoke("echo", "echo", payload, sched.NormPriority)
		return err
	})
	if err != nil {
		return err
	}
	fmt.Println("Compadres ORB 256B echo:", sum)

	// --- The RTZen baseline against the same kind of servant.
	zsrv, err := rtzen.NewServer(rtzen.ServerConfig{Network: transport.TCP{}, Addr: "127.0.0.1:0"})
	if err != nil {
		return err
	}
	defer zsrv.Close()
	zsrv.RegisterServant("echo", corba.EchoServant{})
	zsrv.ServeBackground()

	zcl, err := rtzen.DialClient(rtzen.ClientConfig{Network: transport.TCP{}, Addr: zsrv.Addr()})
	if err != nil {
		return err
	}
	defer zcl.Close()
	zsum, err := metrics.RunSteadyState(100, 1000, func() error {
		_, err := zcl.Invoke("echo", "echo", payload, sched.NormPriority)
		return err
	})
	if err != nil {
		return err
	}
	fmt.Println("RTZen (hand-coded) 256B echo:", zsum)
	fmt.Println("the difference is the component framework's overhead (§3.3)")
	return nil
}
