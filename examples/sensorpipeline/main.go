// Sensorpipeline is a DRE-flavoured example in the spirit of the paper's
// introduction: an avionics-style sensor fusion stack built by hierarchical
// composition.
//
//	FlightComputer (immortal)
//	├── Radar     (scoped child; produces contact tracks)
//	├── Fusion    (scoped child; correlates tracks into threats)
//	│   └── Correlator (nested scoped grandchild doing the heavy math)
//	└── alarms In port, fed DIRECTLY by the Correlator via a shadow port
//
// It demonstrates: multi-level nesting, sibling connections, a shadow port
// (grandchild → grandparent without burdening Fusion), message priorities
// (threat alarms outrank routine tracks), and bounded buffers.
//
//	go run ./examples/sensorpipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sched"
)

// Track is a radar contact observation.
type Track struct {
	ID       int64
	Range    float64 // metres
	Velocity float64 // m/s, negative = closing
}

// Reset implements core.Message.
func (t *Track) Reset() { *t = Track{} }

var trackType = core.MessageType{
	Name: "Track",
	Size: 64,
	New:  func() core.Message { return &Track{} },
}

// Alarm is a fused threat assessment.
type Alarm struct {
	TrackID       int64
	TimeToImpactS float64
}

// Reset implements core.Message.
func (a *Alarm) Reset() { *a = Alarm{} }

var alarmType = core.MessageType{
	Name: "Alarm",
	Size: 64,
	New:  func() core.Message { return &Alarm{} },
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	app, err := core.NewApp(core.AppConfig{Name: "sensorpipeline", ImmortalSize: 1 << 20})
	if err != nil {
		return err
	}
	defer app.Stop()

	alarms := make(chan Alarm, 16)
	tracksDone := make(chan struct{})

	fc, err := app.NewImmortalComponent("FlightComputer", func(fcComp *core.Component) error {
		fcSMM := fcComp.SMM()

		// The alarm sink: fed by the Correlator's shadow port, so alarm
		// traffic never transits (or allocates in) the Fusion component.
		if _, err := core.AddInPort(fcComp, fcSMM, core.InPortConfig{
			Name: "alarms", Type: alarmType, BufferSize: 16,
			Handler: core.HandlerFunc(func(p *core.Proc, m core.Message) error {
				a := m.(*Alarm)
				alarms <- *a
				return nil
			}),
		}); err != nil {
			return err
		}

		// Radar produces tracks toward its sibling Fusion.
		radarDef := core.ChildDef{
			Name: "Radar", MemorySize: 1 << 14, Persistent: true,
			Setup: func(radar *core.Component) error {
				if _, err := core.AddOutPort(radar, fcSMM, core.OutPortConfig{
					Name: "tracks", Type: trackType, Dests: []string{"Fusion.tracks"},
				}); err != nil {
					return err
				}
				radar.SetStart(func(p *core.Proc) error {
					out, err := fcSMM.GetOutPort("Radar.tracks")
					if err != nil {
						return err
					}
					// A sweep of contacts: one closing fast (a threat), the
					// rest benign.
					sweep := []Track{
						{ID: 1, Range: 90000, Velocity: -220},
						{ID: 2, Range: 1800, Velocity: -310}, // threat
						{ID: 3, Range: 42000, Velocity: 50},
						{ID: 4, Range: 60000, Velocity: -80},
					}
					for _, tr := range sweep {
						msg, err := out.GetMessage()
						if err != nil {
							return err
						}
						*msg.(*Track) = tr
						// Routine tracks go out at normal priority.
						if err := out.Send(msg, sched.NormPriority); err != nil {
							return err
						}
					}
					close(tracksDone)
					return nil
				})
				return nil
			},
		}
		// Fusion hosts a nested Correlator that does the threat math.
		fusionDef := core.ChildDef{
			Name: "Fusion", MemorySize: 1 << 16, Persistent: true,
			Setup: func(fusion *core.Component) error {
				fusionSMM := fusion.SMM()
				if _, err := core.AddInPort(fusion, fcSMM, core.InPortConfig{
					Name: "tracks", Type: trackType, BufferSize: 32,
					Handler: core.HandlerFunc(func(p *core.Proc, m core.Message) error {
						// Forward into the nested Correlator scope.
						toCorr, err := fusionSMM.GetOutPort("Fusion.toCorrelator")
						if err != nil {
							return err
						}
						fwd, err := toCorr.GetMessage()
						if err != nil {
							return err
						}
						*fwd.(*Track) = *m.(*Track)
						return toCorr.Send(fwd, p.Priority())
					}),
				}); err != nil {
					return err
				}
				if _, err := core.AddOutPort(fusion, fusionSMM, core.OutPortConfig{
					Name: "toCorrelator", Type: trackType, Dests: []string{"Correlator.tracks"},
				}); err != nil {
					return err
				}
				return fusion.DefineChild(core.ChildDef{
					Name: "Correlator", MemorySize: 1 << 14, Persistent: true,
					Setup: func(corr *core.Component) error {
						if _, err := core.AddInPort(corr, fusionSMM, core.InPortConfig{
							Name: "tracks", Type: trackType, BufferSize: 32,
							Handler: core.HandlerFunc(func(p *core.Proc, m core.Message) error {
								tr := m.(*Track)
								if tr.Velocity >= 0 {
									return nil // opening contact: not a threat
								}
								tti := tr.Range / -tr.Velocity
								if tti > 60 {
									return nil // more than a minute out
								}
								// Shadow port: alarm straight to the
								// FlightComputer at maximum priority.
								alarm, err := fcSMM.GetOutPort("Correlator.alarm")
								if err != nil {
									return err
								}
								msg, err := alarm.GetMessage()
								if err != nil {
									return err
								}
								a := msg.(*Alarm)
								a.TrackID, a.TimeToImpactS = tr.ID, tti
								return alarm.Send(msg, sched.MaxPriority)
							}),
						}); err != nil {
							return err
						}
						// The shadow port registers with the grandparent's
						// SMM: its pool and buffer live only in the
						// FlightComputer's memory (Fig. 5).
						_, err := core.AddOutPort(corr, fcSMM, core.OutPortConfig{
							Name: "alarm", Type: alarmType, Dests: []string{"FlightComputer.alarms"},
						})
						return err
					},
				})
			},
		}
		if err := fcComp.DefineChild(radarDef); err != nil {
			return err
		}
		return fcComp.DefineChild(fusionDef)
	})
	if err != nil {
		return err
	}

	// Pin the pipeline components for the mission duration.
	for _, name := range []string{"Fusion", "Radar"} {
		h, err := fc.SMM().Connect(name)
		if err != nil {
			return err
		}
		defer h.Disconnect()
	}
	if err := app.Start(); err != nil {
		return err
	}

	<-tracksDone
	a := <-alarms
	fmt.Printf("THREAT: track %d, time to impact %.1fs\n", a.TrackID, a.TimeToImpactS)
	if n, err := app.Errors(); n != 0 {
		return fmt.Errorf("%d handler errors, last: %v", n, err)
	}
	fmt.Println("component tree:")
	fusion := fc.SMM().Child("Fusion")
	fmt.Printf("  %s (immortal, level %d)\n", fc.Path(), fc.Level())
	fmt.Printf("  %s (scoped, level %d)\n", fc.SMM().Child("Radar").Path(), fc.SMM().Child("Radar").Level())
	fmt.Printf("  %s (scoped, level %d)\n", fusion.Path(), fusion.Level())
	corr := fusion.SMM().Child("Correlator")
	fmt.Printf("  %s (scoped, level %d)\n", corr.Path(), corr.Level())
	return nil
}
