// Remoteports demonstrates the paper's future-work feature, implemented in
// internal/remote: a port connection stretched across two processes (here,
// two component applications joined by loopback TCP).
//
// Process A hosts a Controller whose commands leave through an ordinary Out
// port. Process B hosts an Actuator whose In port is exported on a
// Compadres ORB server. remote.Bind grafts a proxy In port into process A,
// so the Controller's port connection crosses the network without the
// Controller knowing:
//
//	Controller.cmds ──> Gateway.toActuator ──(GIOP/TCP)──> Actuator.cmd
//
//	go run ./examples/remoteports
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/remote"
	"repro/internal/sched"
	"repro/internal/transport"
)

// Command is a serializable actuator command.
type Command struct {
	Axis    uint8
	Degrees int16
}

// Reset implements core.Message.
func (c *Command) Reset() { *c = Command{} }

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *Command) MarshalBinary() ([]byte, error) {
	b := make([]byte, 3)
	b[0] = c.Axis
	binary.BigEndian.PutUint16(b[1:], uint16(c.Degrees))
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *Command) UnmarshalBinary(b []byte) error {
	if len(b) != 3 {
		return errors.New("Command: bad length")
	}
	c.Axis = b[0]
	c.Degrees = int16(binary.BigEndian.Uint16(b[1:]))
	return nil
}

var commandType = core.MessageType{
	Name: "Command",
	Size: 32,
	New:  func() core.Message { return &Command{} },
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	applied := make(chan Command, 8)

	// ---- Process B: the actuator side.
	serverApp, err := core.NewApp(core.AppConfig{Name: "actuatorProcess"})
	if err != nil {
		return err
	}
	defer serverApp.Stop()
	actuator, err := serverApp.NewImmortalComponent("Actuator", func(c *core.Component) error {
		_, err := core.AddInPort(c, c.SMM(), core.InPortConfig{
			Name: "cmd", Type: commandType,
			Handler: core.HandlerFunc(func(p *core.Proc, m core.Message) error {
				cmd := m.(*Command)
				fmt.Printf("actuator: axis %d -> %d° (priority %d)\n", cmd.Axis, cmd.Degrees, p.Priority())
				applied <- *cmd
				return nil
			}),
		})
		return err
	})
	if err != nil {
		return err
	}
	srv, err := orb.NewServer(orb.ServerConfig{Network: transport.TCP{}, Addr: "127.0.0.1:0"})
	if err != nil {
		return err
	}
	defer srv.Close()
	if err := remote.Export(srv, actuator.SMM(), "Actuator.cmd", commandType); err != nil {
		return err
	}
	srv.ServeBackground()
	fmt.Println("actuator process exporting Actuator.cmd at", srv.Addr())

	// ---- Process A: the controller side.
	cl, err := orb.DialClient(orb.ClientConfig{Network: transport.TCP{}, Addr: srv.Addr()})
	if err != nil {
		return err
	}
	defer cl.Close()
	proxy, err := remote.NewProxy(cl, "Actuator.cmd", commandType, true /* acknowledged */)
	if err != nil {
		return err
	}

	clientApp, err := core.NewApp(core.AppConfig{Name: "controllerProcess"})
	if err != nil {
		return err
	}
	defer clientApp.Stop()
	gateway, err := clientApp.NewImmortalComponent("Gateway", nil)
	if err != nil {
		return err
	}
	if _, err := remote.Bind(gateway, gateway.SMM(), "toActuator", proxy); err != nil {
		return err
	}
	_, err = clientApp.NewImmortalComponent("Controller", func(c *core.Component) error {
		out, err := core.AddOutPort(c, gateway.SMM(), core.OutPortConfig{
			Name: "cmds", Type: commandType, Dests: []string{"Gateway.toActuator"},
		})
		if err != nil {
			return err
		}
		c.SetStart(func(p *core.Proc) error {
			moves := []Command{
				{Axis: 0, Degrees: 15},
				{Axis: 1, Degrees: -30},
				{Axis: 0, Degrees: 0},
			}
			for _, mv := range moves {
				msg, err := out.GetMessage()
				if err != nil {
					return err
				}
				*msg.(*Command) = mv
				if err := out.Send(msg, sched.Priority(20)); err != nil {
					return err
				}
			}
			return nil
		})
		return nil
	})
	if err != nil {
		return err
	}
	if err := clientApp.Start(); err != nil {
		return err
	}

	for i := 0; i < 3; i++ {
		<-applied
	}
	fmt.Println("all commands applied remotely")
	return nil
}
