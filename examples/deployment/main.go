// Deployment runs a two-process distributed Compadres application defined
// entirely in XML — the complete pipeline for the paper's future-work
// vision: the CCL declares an <Exported> In port in one process and a
// <PortType>Remote</PortType> link in the other; the Compadres compiler
// plans both; package deploy wires them over the ORB (loopback TCP here).
//
//	process "plant":   Boiler ──(exported port plant.Boiler.state)──┐
//	process "control": Controller ──Remote link──> Boiler.state ◄───┘
//
//	go run ./examples/deployment
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"strings"

	"repro/internal/ccl"
	"repro/internal/cdl"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/sched"
	"repro/internal/transport"
)

// Setpoint is the cross-process message: a target the controller pushes to
// the plant.
type Setpoint struct {
	Target int64
}

// Reset implements core.Message.
func (s *Setpoint) Reset() { s.Target = 0 }

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Setpoint) MarshalBinary() ([]byte, error) {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(s.Target))
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Setpoint) UnmarshalBinary(b []byte) error {
	if len(b) != 8 {
		return errors.New("Setpoint: bad length")
	}
	s.Target = int64(binary.BigEndian.Uint64(b))
	return nil
}

var setpointType = core.MessageType{
	Name: "Setpoint",
	Size: 32,
	New:  func() core.Message { return &Setpoint{} },
}

// plantApp exports the boiler's setpoint port.
const plantDefs = `
<ComponentDefinitions>
  <Component>
    <ComponentName>BoilerClass</ComponentName>
    <Port><PortName>state</PortName><PortType>In</PortType><MessageType>Setpoint</MessageType></Port>
  </Component>
</ComponentDefinitions>`

const plantApp = `
<Application>
  <ApplicationName>Plant</ApplicationName>
  <Component>
    <InstanceName>Boiler</InstanceName>
    <ClassName>BoilerClass</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port>
        <PortName>state</PortName>
        <Exported>true</Exported>
      </Port>
    </Connection>
  </Component>
</Application>`

// controlApp links its out port to the plant's exported port. The
// RemoteAddr placeholder is patched with the plant's actual TCP address at
// startup (a discovery mechanism stands in for static addressing).
const controlDefs = `
<ComponentDefinitions>
  <Component>
    <ComponentName>ControllerClass</ComponentName>
    <Port><PortName>cmd</PortName><PortType>Out</PortType><MessageType>Setpoint</MessageType></Port>
  </Component>
</ComponentDefinitions>`

const controlApp = `
<Application>
  <ApplicationName>Control</ApplicationName>
  <Component>
    <InstanceName>Controller</InstanceName>
    <ClassName>ControllerClass</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port>
        <PortName>cmd</PortName>
        <Link>
          <PortType>Remote</PortType>
          <ToComponent>Boiler</ToComponent>
          <ToPort>state</ToPort>
          <RemoteAddr>PLANT_ADDR</RemoteAddr>
        </Link>
      </Port>
    </Connection>
  </Component>
</Application>`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func compile(defsDoc, appDoc string) (*compiler.Plan, error) {
	defs, err := cdl.Parse(strings.NewReader(defsDoc))
	if err != nil {
		return nil, err
	}
	app, err := ccl.Parse(strings.NewReader(appDoc))
	if err != nil {
		return nil, err
	}
	return compiler.Compile(defs, app)
}

func run() error {
	applied := make(chan int64, 8)

	// --- Process "plant".
	plantPlan, err := compile(plantDefs, plantApp)
	if err != nil {
		return err
	}
	plantReg := compiler.NewRegistry()
	if err := plantReg.RegisterType(setpointType); err != nil {
		return err
	}
	if err := plantReg.RegisterClass("BoilerClass", compiler.ClassBinding{
		NewHandlers: func(c *core.Component) (map[string]core.Handler, error) {
			return map[string]core.Handler{
				"state": core.HandlerFunc(func(p *core.Proc, m core.Message) error {
					sp := m.(*Setpoint)
					fmt.Printf("plant: setpoint -> %d (priority %d)\n", sp.Target, p.Priority())
					applied <- sp.Target
					return nil
				}),
			}, nil
		},
	}); err != nil {
		return err
	}
	plant, err := deploy.Run(plantPlan, plantReg, deploy.Config{
		Network: transport.TCP{}, ListenAddr: "127.0.0.1:0",
	})
	if err != nil {
		return err
	}
	defer plant.Close()
	fmt.Println("plant process exporting Boiler.state at", plant.Addr())

	// --- Process "control", patched with the plant's address.
	controlPlan, err := compile(controlDefs, strings.ReplaceAll(controlApp, "PLANT_ADDR", plant.Addr()))
	if err != nil {
		return err
	}
	controlReg := compiler.NewRegistry()
	if err := controlReg.RegisterType(setpointType); err != nil {
		return err
	}
	if err := controlReg.RegisterClass("ControllerClass", compiler.ClassBinding{
		Start: func(p *core.Proc) error {
			out, err := p.SMM().GetOutPort("Controller.cmd")
			if err != nil {
				return err
			}
			for _, target := range []int64{180, 195, 210} {
				msg, err := out.GetMessage()
				if err != nil {
					return err
				}
				msg.(*Setpoint).Target = target
				if err := out.Send(msg, sched.Priority(25)); err != nil {
					return err
				}
			}
			return nil
		},
	}); err != nil {
		return err
	}
	control, err := deploy.Run(controlPlan, controlReg, deploy.Config{Network: transport.TCP{}})
	if err != nil {
		return err
	}
	defer control.Close()

	for i := 0; i < 3; i++ {
		<-applied
	}
	fmt.Println("all setpoints applied across the process boundary")
	return nil
}
