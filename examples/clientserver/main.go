// Clientserver reproduces the paper's §3.1 overhead example (Figs. 6–8): an
// immortal component (IMC) creates a Client and a Server in sibling scoped
// memory regions; a trigger on P1 makes the Client send a request through
// P3 to the Server's P4, whose reply returns through P5 to the Client's P6.
// The example then reports the measured round-trip median and jitter, the
// numbers behind Table 2.
//
//	go run ./examples/clientserver
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
)

// MyInteger is the message type of the paper's listings.
type MyInteger struct {
	Value int64
}

// Reset implements core.Message.
func (m *MyInteger) Reset() { m.Value = 0 }

var myIntegerType = core.MessageType{
	Name: "MyInteger",
	Size: 32,
	New:  func() core.Message { return &MyInteger{} },
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// RTSJAttributes: immortal budget plus a pool of level-1 scopes so the
	// Client and Server regions are recycled rather than re-created.
	app, err := core.NewApp(core.AppConfig{
		Name:         "clientserver",
		ImmortalSize: 400000,
		ScopePools:   []core.ScopePoolSpec{{Level: 1, AreaSize: 200000, Count: 3}},
	})
	if err != nil {
		return err
	}
	defer app.Stop()

	reply := make(chan int64, 1)

	imc, err := app.NewImmortalComponent("IMC", func(c *core.Component) error {
		smm := c.SMM()

		// addOutPort("P1", smm, MyInteger, "MyClient_P2")
		if _, err := core.AddOutPort(c, smm, core.OutPortConfig{
			Name: "P1", Type: myIntegerType, Dests: []string{"Client.P2"},
		}); err != nil {
			return err
		}

		clientDef := core.ChildDef{
			Name: "Client", UsePool: true, Persistent: true,
			Setup: func(cl *core.Component) error {
				// P2_MessageHandler: forward the trigger as a request.
				if _, err := core.AddInPort(cl, smm, core.InPortConfig{
					Name: "P2", Type: myIntegerType, BufferSize: 10,
					MinThreads: 1, MaxThreads: 5,
					Handler: core.HandlerFunc(func(p *core.Proc, m core.Message) error {
						p3, err := p.SMM().GetOutPort("Client.P3")
						if err != nil {
							return err
						}
						req, err := p3.GetMessage()
						if err != nil {
							return err
						}
						req.(*MyInteger).Value = 3
						return p3.Send(req, 3)
					}),
				}); err != nil {
					return err
				}
				if _, err := core.AddOutPort(cl, smm, core.OutPortConfig{
					Name: "P3", Type: myIntegerType, Dests: []string{"Server.P4"},
				}); err != nil {
					return err
				}
				// P6_MessageHandler: the reply arrives; take the timestamp.
				_, err := core.AddInPort(cl, smm, core.InPortConfig{
					Name: "P6", Type: myIntegerType, BufferSize: 20,
					MinThreads: 1, MaxThreads: 5,
					Handler: core.HandlerFunc(func(p *core.Proc, m core.Message) error {
						reply <- m.(*MyInteger).Value
						return nil
					}),
				})
				return err
			},
		}
		serverDef := core.ChildDef{
			Name: "Server", UsePool: true, Persistent: true,
			Setup: func(sv *core.Component) error {
				// P4_MessageHandler: answer the request.
				if _, err := core.AddInPort(sv, smm, core.InPortConfig{
					Name: "P4", Type: myIntegerType, BufferSize: 20,
					MinThreads: 1, MaxThreads: 5,
					Handler: core.HandlerFunc(func(p *core.Proc, m core.Message) error {
						p5, err := p.SMM().GetOutPort("Server.P5")
						if err != nil {
							return err
						}
						rep, err := p5.GetMessage()
						if err != nil {
							return err
						}
						rep.(*MyInteger).Value = 4
						return p5.Send(rep, 3)
					}),
				}); err != nil {
					return err
				}
				_, err := core.AddOutPort(sv, smm, core.OutPortConfig{
					Name: "P5", Type: myIntegerType, Dests: []string{"Client.P6"},
				})
				return err
			},
		}
		if err := c.DefineChild(clientDef); err != nil {
			return err
		}
		return c.DefineChild(serverDef)
	})
	if err != nil {
		return err
	}
	if err := app.Start(); err != nil {
		return err
	}

	p1, err := imc.SMM().GetOutPort("IMC.P1")
	if err != nil {
		return err
	}
	roundTrip := func() error {
		m, err := p1.GetMessage()
		if err != nil {
			return err
		}
		// "Send trigger msg with priority 2".
		if err := p1.Send(m, 2); err != nil {
			return err
		}
		if v := <-reply; v != 4 {
			return fmt.Errorf("reply = %d, want 4", v)
		}
		return nil
	}

	summary, err := metrics.RunSteadyState(200, 2000, roundTrip)
	if err != nil {
		return err
	}
	fmt.Println("co-located client-server round trip:", summary)
	fmt.Printf("scope pool: ")
	created, reused, free := app.ScopePool(1).Stats()
	fmt.Printf("%d areas created, %d acquisitions served from the pool, %d free\n", created, reused, free)
	return nil
}
