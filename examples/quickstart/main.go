// Quickstart: the smallest useful Compadres application.
//
// Two components in immortal memory — a Producer and a Consumer — exchange
// strongly typed messages through connected ports. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sched"
)

// Reading is the message type flowing between the components. Pooled
// messages must know how to reset themselves.
type Reading struct {
	Sensor string
	Value  float64
}

// Reset implements core.Message.
func (r *Reading) Reset() { r.Sensor, r.Value = "", 0 }

var readingType = core.MessageType{
	Name: "Reading",
	Size: 64,
	New:  func() core.Message { return &Reading{} },
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An App owns the simulated RTSJ memory model: immortal memory plus
	// scoped regions for child components.
	app, err := core.NewApp(core.AppConfig{Name: "quickstart"})
	if err != nil {
		return err
	}
	defer app.Stop()

	done := make(chan struct{})

	// The consumer declares an In port; its handler runs for every message,
	// inside the component's memory area.
	_, err = app.NewImmortalComponent("Consumer", func(c *core.Component) error {
		_, err := core.AddInPort(c, c.SMM(), core.InPortConfig{
			Name: "readings",
			Type: readingType,
			Handler: core.HandlerFunc(func(p *core.Proc, m core.Message) error {
				r := m.(*Reading)
				fmt.Printf("consumer got %s = %.1f (priority %d)\n", r.Sensor, r.Value, p.Priority())
				if r.Sensor == "final" {
					close(done)
				}
				return nil
			}),
		})
		return err
	})
	if err != nil {
		return err
	}

	// The producer declares an Out port connected to the consumer by
	// qualified name, and emits messages from its start function. The port
	// registers with the *consumer's* SMM: a connection lives in exactly
	// one scoped memory manager, and for two immortal components the
	// receiver's manager carries the pool and buffer.
	consumerSMM := app.Component("Consumer").SMM()
	_, err = app.NewImmortalComponent("Producer", func(c *core.Component) error {
		out, err := core.AddOutPort(c, consumerSMM, core.OutPortConfig{
			Name:  "emit",
			Type:  readingType,
			Dests: []string{"Consumer.readings"},
		})
		if err != nil {
			return err
		}
		c.SetStart(func(p *core.Proc) error {
			for i := 0; i < 3; i++ {
				// Messages come from a pool in the mediating SMM's memory
				// area and return to it automatically after processing.
				msg, err := out.GetMessage()
				if err != nil {
					return err
				}
				r := msg.(*Reading)
				r.Sensor = fmt.Sprintf("sensor-%d", i)
				r.Value = float64(i) * 1.5
				if err := out.Send(msg, sched.NormPriority); err != nil {
					return err
				}
			}
			msg, err := out.GetMessage()
			if err != nil {
				return err
			}
			msg.(*Reading).Sensor = "final"
			return out.Send(msg, sched.MaxPriority)
		})
		return nil
	})
	if err != nil {
		return err
	}

	if err := app.Start(); err != nil {
		return err
	}
	<-done
	fmt.Println("quickstart complete")
	return nil
}
