package cdl

import (
	"errors"
	"strings"
	"testing"
)

// paperCDL mirrors Listing 1.1 of the paper.
const paperCDL = `
<ComponentDefinitions>
  <Component>
    <ComponentName>Server</ComponentName>
    <Port>
      <PortName>DataOut</PortName>
      <PortType>Out</PortType>
      <MessageType>String</MessageType>
    </Port>
    <Port>
      <PortName>DataIn</PortName>
      <PortType>In</PortType>
      <MessageType>CustomType</MessageType>
    </Port>
  </Component>
  <Component>
    <ComponentName>Calculator</ComponentName>
    <Port>
      <PortName>DataOut</PortName>
      <PortType>Out</PortType>
      <MessageType>CustomType</MessageType>
    </Port>
  </Component>
</ComponentDefinitions>`

func TestParsePaperListing(t *testing.T) {
	defs, err := Parse(strings.NewReader(paperCDL))
	if err != nil {
		t.Fatal(err)
	}
	if len(defs.Components) != 2 {
		t.Fatalf("components = %d, want 2", len(defs.Components))
	}
	server := defs.Component("Server")
	if server == nil {
		t.Fatal("Server not found")
	}
	if p := server.Port("DataOut"); p == nil || p.Type != Out || p.MessageType != "String" {
		t.Errorf("DataOut = %+v", p)
	}
	if p := server.Port("DataIn"); p == nil || p.Type != In || p.MessageType != "CustomType" {
		t.Errorf("DataIn = %+v", p)
	}
	if server.Port("Nope") != nil {
		t.Error("missing port lookup returned non-nil")
	}
	if defs.Component("Nope") != nil {
		t.Error("missing component lookup returned non-nil")
	}
	if got := len(server.InPorts()); got != 1 {
		t.Errorf("in ports = %d, want 1", got)
	}
	if got := len(server.OutPorts()); got != 1 {
		t.Errorf("out ports = %d, want 1", got)
	}
	types := defs.MessageTypes()
	if len(types) != 2 || types[0] != "String" || types[1] != "CustomType" {
		t.Errorf("message types = %v", types)
	}
}

func TestValidationErrors(t *testing.T) {
	tests := []struct {
		name string
		xml  string
	}{
		{
			name: "empty document",
			xml:  `<ComponentDefinitions></ComponentDefinitions>`,
		},
		{
			name: "empty component name",
			xml: `<ComponentDefinitions><Component><ComponentName></ComponentName>
			</Component></ComponentDefinitions>`,
		},
		{
			name: "illegal component name",
			xml: `<ComponentDefinitions><Component><ComponentName>a.b</ComponentName>
			</Component></ComponentDefinitions>`,
		},
		{
			name: "duplicate component",
			xml: `<ComponentDefinitions>
			<Component><ComponentName>A</ComponentName></Component>
			<Component><ComponentName>A</ComponentName></Component>
			</ComponentDefinitions>`,
		},
		{
			name: "empty port name",
			xml: `<ComponentDefinitions><Component><ComponentName>A</ComponentName>
			<Port><PortName></PortName><PortType>In</PortType><MessageType>T</MessageType></Port>
			</Component></ComponentDefinitions>`,
		},
		{
			name: "bad direction",
			xml: `<ComponentDefinitions><Component><ComponentName>A</ComponentName>
			<Port><PortName>p</PortName><PortType>InOut</PortType><MessageType>T</MessageType></Port>
			</Component></ComponentDefinitions>`,
		},
		{
			name: "missing message type",
			xml: `<ComponentDefinitions><Component><ComponentName>A</ComponentName>
			<Port><PortName>p</PortName><PortType>In</PortType><MessageType></MessageType></Port>
			</Component></ComponentDefinitions>`,
		},
		{
			name: "duplicate port",
			xml: `<ComponentDefinitions><Component><ComponentName>A</ComponentName>
			<Port><PortName>p</PortName><PortType>In</PortType><MessageType>T</MessageType></Port>
			<Port><PortName>p</PortName><PortType>Out</PortType><MessageType>T</MessageType></Port>
			</Component></ComponentDefinitions>`,
		},
		{
			name: "illegal port name",
			xml: `<ComponentDefinitions><Component><ComponentName>A</ComponentName>
			<Port><PortName>p.q</PortName><PortType>In</PortType><MessageType>T</MessageType></Port>
			</Component></ComponentDefinitions>`,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tt.xml))
			if !errors.Is(err, ErrValidation) {
				t.Errorf("err = %v, want ErrValidation", err)
			}
		})
	}
}

func TestParseMalformedXML(t *testing.T) {
	if _, err := Parse(strings.NewReader("<not-closed")); err == nil {
		t.Error("malformed XML accepted")
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile("/nonexistent/defs.xml"); err == nil {
		t.Error("missing file accepted")
	}
}
