// Package cdl implements the Compadres Component Definition Language: the
// XML dialect of Listing 1.1 of the paper, in which an application
// programmer declares component classes and their typed In/Out ports. The
// Compadres compiler consumes these definitions to generate component
// skeletons and to type-check the composition (CCL) file.
//
// One deviation from the paper's listing: XML requires a single document
// root, so the component list is wrapped in <ComponentDefinitions>.
package cdl

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// Direction is a port's direction relative to its component.
type Direction string

// Port directions as spelled in CDL files.
const (
	In  Direction = "In"
	Out Direction = "Out"
)

// ErrValidation is wrapped by every validation failure so callers can match
// the class of error with errors.Is.
var ErrValidation = errors.New("cdl: validation error")

// Definitions is the document root: the set of component classes available
// to an application.
type Definitions struct {
	XMLName    xml.Name    `xml:"ComponentDefinitions"`
	Components []Component `xml:"Component"`
}

// Component declares one component class.
type Component struct {
	Name  string `xml:"ComponentName"`
	Ports []Port `xml:"Port"`
}

// Port declares one port of a component class.
type Port struct {
	Name        string    `xml:"PortName"`
	Type        Direction `xml:"PortType"`
	MessageType string    `xml:"MessageType"`
}

// Parse reads and validates a CDL document.
func Parse(r io.Reader) (*Definitions, error) {
	var defs Definitions
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&defs); err != nil {
		return nil, fmt.Errorf("cdl: parse: %w", err)
	}
	if err := defs.Validate(); err != nil {
		return nil, err
	}
	return &defs, nil
}

// ParseFile reads and validates the CDL document at path.
func ParseFile(path string) (*Definitions, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Validate checks structural invariants: non-empty unique component names,
// non-empty unique port names per component, legal directions, and
// non-empty message types.
func (d *Definitions) Validate() error {
	if len(d.Components) == 0 {
		return fmt.Errorf("%w: no components defined", ErrValidation)
	}
	seen := make(map[string]bool, len(d.Components))
	for i := range d.Components {
		c := &d.Components[i]
		if err := c.validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("%w: duplicate component %q", ErrValidation, c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

func (c *Component) validate() error {
	if c.Name == "" {
		return fmt.Errorf("%w: component with empty name", ErrValidation)
	}
	if strings.ContainsAny(c.Name, "./ ") {
		return fmt.Errorf("%w: component name %q contains illegal characters", ErrValidation, c.Name)
	}
	ports := make(map[string]bool, len(c.Ports))
	for i := range c.Ports {
		p := &c.Ports[i]
		if p.Name == "" {
			return fmt.Errorf("%w: component %q: port with empty name", ErrValidation, c.Name)
		}
		if strings.ContainsAny(p.Name, "./ ") {
			return fmt.Errorf("%w: component %q: port name %q contains illegal characters", ErrValidation, c.Name, p.Name)
		}
		if p.Type != In && p.Type != Out {
			return fmt.Errorf("%w: component %q port %q: direction %q is not In or Out",
				ErrValidation, c.Name, p.Name, p.Type)
		}
		if p.MessageType == "" {
			return fmt.Errorf("%w: component %q port %q: empty message type", ErrValidation, c.Name, p.Name)
		}
		if ports[p.Name] {
			return fmt.Errorf("%w: component %q: duplicate port %q", ErrValidation, c.Name, p.Name)
		}
		ports[p.Name] = true
	}
	return nil
}

// Component returns the class with the given name, or nil.
func (d *Definitions) Component(name string) *Component {
	for i := range d.Components {
		if d.Components[i].Name == name {
			return &d.Components[i]
		}
	}
	return nil
}

// Port returns the port with the given name, or nil.
func (c *Component) Port(name string) *Port {
	for i := range c.Ports {
		if c.Ports[i].Name == name {
			return &c.Ports[i]
		}
	}
	return nil
}

// InPorts returns the component's In ports in declaration order.
func (c *Component) InPorts() []Port { return c.portsByDir(In) }

// OutPorts returns the component's Out ports in declaration order.
func (c *Component) OutPorts() []Port { return c.portsByDir(Out) }

func (c *Component) portsByDir(d Direction) []Port {
	var out []Port
	for _, p := range c.Ports {
		if p.Type == d {
			out = append(out, p)
		}
	}
	return out
}

// MessageTypes returns the distinct message type names referenced by the
// definitions, in first-appearance order.
func (d *Definitions) MessageTypes() []string {
	var out []string
	seen := make(map[string]bool)
	for _, c := range d.Components {
		for _, p := range c.Ports {
			if !seen[p.MessageType] {
				seen[p.MessageType] = true
				out = append(out, p.MessageType)
			}
		}
	}
	return out
}
