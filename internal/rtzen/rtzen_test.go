package rtzen

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/corba"
	"repro/internal/sched"
	"repro/internal/transport"
)

func startEcho(t *testing.T, net transport.Network, addr string) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{Network: net, Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	srv.RegisterServant("echo", corba.EchoServant{})
	srv.ServeBackground()
	t.Cleanup(srv.Close)
	return srv
}

func TestEchoRoundTripInproc(t *testing.T) {
	net := transport.NewInproc()
	srv := startEcho(t, net, "")
	cl, err := DialClient(ClientConfig{Network: net, Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	payload := []byte("rtzen echo")
	got, err := cl.Invoke("echo", "echo", payload, sched.NormPriority)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("echo = %q", got)
	}
}

func TestEchoRoundTripTCP(t *testing.T) {
	srv := startEcho(t, transport.TCP{}, "127.0.0.1:0")
	cl, err := DialClient(ClientConfig{Network: transport.TCP{}, Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	got, err := cl.Invoke("echo", "echo", []byte("tcp"), sched.NormPriority)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "tcp" {
		t.Errorf("echo = %q", got)
	}
}

func TestScopePoolRecycling(t *testing.T) {
	net := transport.NewInproc()
	srv := startEcho(t, net, "")
	cl, err := DialClient(ClientConfig{Network: net, Addr: srv.Addr(), ScopePoolCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 25; i++ {
		if _, err := cl.Invoke("echo", "ping", nil, sched.NormPriority); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	created, reused, free := cl.ScopePool().Stats()
	if created != 2 {
		t.Errorf("client scopes created = %d, want 2 (pooled)", created)
	}
	if reused < 25 {
		t.Errorf("client scopes reused = %d", reused)
	}
	if free != 2 {
		t.Errorf("free = %d, want 2 (all returned)", free)
	}
	sc, sr, _ := srv.ScopePool().Stats()
	if sc > 4 || sr < 25 {
		t.Errorf("server scopes: created %d reused %d", sc, sr)
	}
}

func TestExceptions(t *testing.T) {
	net := transport.NewInproc()
	srv := startEcho(t, net, "")
	cl, err := DialClient(ClientConfig{Network: net, Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Invoke("ghost", "echo", nil, sched.NormPriority); !errors.Is(err, corba.ErrSystemException) {
		t.Errorf("unknown object err = %v", err)
	}
	if _, err := cl.Invoke("echo", "nope", nil, sched.NormPriority); !errors.Is(err, corba.ErrUserException) {
		t.Errorf("unknown op err = %v", err)
	}
	if _, err := cl.Invoke("echo", "ping", nil, sched.NormPriority); err != nil {
		t.Errorf("post-exception call: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	net := transport.NewInproc()
	srv := startEcho(t, net, "")

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := DialClient(ClientConfig{Network: net, Addr: srv.Addr()})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for j := 0; j < 10; j++ {
				msg := []byte(fmt.Sprintf("c%d-%d", i, j))
				got, err := cl.Invoke("echo", "echo", msg, sched.NormPriority)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, msg) {
					errs <- fmt.Errorf("echo mismatch: %q", got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCloseSemantics(t *testing.T) {
	net := transport.NewInproc()
	srv := startEcho(t, net, "")
	cl, err := DialClient(ClientConfig{Network: net, Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	cl.Close()
	if _, err := cl.Invoke("echo", "ping", nil, sched.NormPriority); !errors.Is(err, corba.ErrClosed) {
		t.Errorf("invoke after close err = %v", err)
	}
	srv.Close()
	srv.Close()
	if _, err := DialClient(ClientConfig{Network: net, Addr: srv.Addr()}); err == nil {
		t.Error("dial to closed server accepted")
	}
}

func TestNilNetworkRejected(t *testing.T) {
	if _, err := DialClient(ClientConfig{}); err == nil {
		t.Error("nil network client accepted")
	}
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("nil network server accepted")
	}
}
