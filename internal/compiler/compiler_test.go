package compiler

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ccl"
	"repro/internal/cdl"
)

// testDefs declares the classes used across the compiler tests.
const testDefs = `
<ComponentDefinitions>
  <Component>
    <ComponentName>Parent</ComponentName>
    <Port><PortName>toChild</PortName><PortType>Out</PortType><MessageType>Int</MessageType></Port>
    <Port><PortName>fromChild</PortName><PortType>In</PortType><MessageType>Int</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>Child</ComponentName>
    <Port><PortName>in</PortName><PortType>In</PortType><MessageType>Int</MessageType></Port>
    <Port><PortName>out</PortName><PortType>Out</PortType><MessageType>Int</MessageType></Port>
    <Port><PortName>strOut</PortName><PortType>Out</PortType><MessageType>Str</MessageType></Port>
  </Component>
</ComponentDefinitions>`

func mustDefs(t *testing.T) *cdl.Definitions {
	t.Helper()
	defs, err := cdl.Parse(strings.NewReader(testDefs))
	if err != nil {
		t.Fatal(err)
	}
	return defs
}

func mustApp(t *testing.T, doc string) *ccl.Application {
	t.Helper()
	app, err := ccl.Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// parentChildApp wires Parent.toChild -> Kid.in and Kid.out -> Parent.fromChild.
const parentChildApp = `
<Application>
  <ApplicationName>PC</ApplicationName>
  <Component>
    <InstanceName>Top</InstanceName>
    <ClassName>Parent</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port>
        <PortName>toChild</PortName>
        <Link><PortType>Internal</PortType><ToComponent>Kid</ToComponent><ToPort>in</ToPort></Link>
      </Port>
      <Port>
        <PortName>fromChild</PortName>
        <PortAttributes>
          <BufferSize>4</BufferSize>
          <Threadpool>Dedicated</Threadpool>
          <MinThreadpoolSize>1</MinThreadpoolSize>
          <MaxThreadpoolSize>2</MaxThreadpoolSize>
        </PortAttributes>
        <Link><PortType>Internal</PortType><ToComponent>Kid</ToComponent><ToPort>out</ToPort></Link>
      </Port>
    </Connection>
    <Component>
      <InstanceName>Kid</InstanceName>
      <ClassName>Child</ClassName>
      <ComponentType>Scoped</ComponentType>
      <MemorySize>16384</MemorySize>
    </Component>
  </Component>
</Application>`

func TestCompileParentChild(t *testing.T) {
	plan, err := Compile(mustDefs(t), mustApp(t, parentChildApp))
	if err != nil {
		t.Fatal(err)
	}
	if plan.AppName != "PC" {
		t.Errorf("app name = %q", plan.AppName)
	}
	if len(plan.Connections) != 2 {
		t.Fatalf("connections = %d, want 2", len(plan.Connections))
	}
	for _, c := range plan.Connections {
		if c.Kind != ConnInternal {
			t.Errorf("connection %v kind = %v, want internal", c, c.Kind)
		}
		if c.Mediator != "Top" {
			t.Errorf("mediator = %q, want Top", c.Mediator)
		}
	}
	// Orientation: link declared on the In side still yields Out->In.
	from := plan.ConnectionsFrom("Kid")
	if len(from) != 1 || from[0].ToInstance != "Top" || from[0].ToPort != "fromChild" {
		t.Errorf("Kid connections = %+v", from)
	}
	// Port plans carry attributes and destinations.
	pp := plan.Port("Top", "fromChild")
	if pp == nil || !pp.HasAttrs || pp.Buffer != 4 || pp.Threadpool != ccl.Dedicated || pp.Min != 1 || pp.Max != 2 {
		t.Errorf("fromChild plan = %+v", pp)
	}
	if pp.QualifiedName() != "Top.fromChild" {
		t.Errorf("qualified name = %q", pp.QualifiedName())
	}
	out := plan.Port("Top", "toChild")
	if out == nil || len(out.Dests) != 1 || out.Dests[0] != "Kid.in" {
		t.Errorf("toChild plan = %+v", out)
	}
	if plan.Port("Top", "none") != nil || plan.Port("None", "x") != nil {
		t.Error("missing port lookups returned non-nil")
	}
	if plan.Instances["Kid"].Level != 1 || plan.Instances["Kid"].Parent != "Top" {
		t.Errorf("Kid instance plan wrong: %+v", plan.Instances["Kid"])
	}
}

// siblingApp wires two children of a common parent.
const siblingApp = `
<Application>
  <ApplicationName>Sib</ApplicationName>
  <Component>
    <InstanceName>Top</InstanceName>
    <ClassName>Parent</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Component>
      <InstanceName>A</InstanceName>
      <ClassName>Child</ClassName>
      <ComponentType>Scoped</ComponentType>
      <MemorySize>8192</MemorySize>
      <Connection>
        <Port>
          <PortName>out</PortName>
          <Link><PortType>External</PortType><ToComponent>B</ToComponent><ToPort>in</ToPort></Link>
        </Port>
      </Connection>
    </Component>
    <Component>
      <InstanceName>B</InstanceName>
      <ClassName>Child</ClassName>
      <ComponentType>Scoped</ComponentType>
      <MemorySize>8192</MemorySize>
    </Component>
  </Component>
</Application>`

func TestCompileSiblings(t *testing.T) {
	plan, err := Compile(mustDefs(t), mustApp(t, siblingApp))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Connections) != 1 {
		t.Fatalf("connections = %d", len(plan.Connections))
	}
	c := plan.Connections[0]
	if c.Kind != ConnExternal || c.Mediator != "Top" {
		t.Errorf("connection = %+v", c)
	}
}

// shadowApp wires a grandchild directly to its grandparent.
const shadowApp = `
<Application>
  <ApplicationName>Sh</ApplicationName>
  <Component>
    <InstanceName>GP</InstanceName>
    <ClassName>Parent</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port>
        <PortName>fromChild</PortName>
        <Link><PortType>External</PortType><ToComponent>GC</ToComponent><ToPort>out</ToPort></Link>
      </Port>
    </Connection>
    <Component>
      <InstanceName>Mid</InstanceName>
      <ClassName>Child</ClassName>
      <ComponentType>Scoped</ComponentType>
      <MemorySize>8192</MemorySize>
      <Component>
        <InstanceName>GC</InstanceName>
        <ClassName>Child</ClassName>
        <ComponentType>Scoped</ComponentType>
        <MemorySize>8192</MemorySize>
      </Component>
    </Component>
  </Component>
</Application>`

func TestCompileShadowDetection(t *testing.T) {
	plan, err := Compile(mustDefs(t), mustApp(t, shadowApp))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Connections) != 1 {
		t.Fatalf("connections = %d", len(plan.Connections))
	}
	c := plan.Connections[0]
	if c.Kind != ConnShadow {
		t.Errorf("kind = %v, want shadow", c.Kind)
	}
	if c.Mediator != "GP" {
		t.Errorf("mediator = %q, want GP (the ancestor)", c.Mediator)
	}
	if c.FromInstance != "GC" || c.ToInstance != "GP" {
		t.Errorf("orientation = %s -> %s", c.FromInstance, c.ToInstance)
	}
	// The grandchild's out port registers with the grandparent's SMM.
	if pp := plan.Port("GC", "out"); pp == nil || pp.Mediator != "GP" {
		t.Errorf("GC.out plan = %+v", pp)
	}
}

func TestConnKindString(t *testing.T) {
	if ConnInternal.String() != "internal" || ConnExternal.String() != "external" ||
		ConnShadow.String() != "shadow" || ConnKind(9).String() == "" {
		t.Error("ConnKind.String wrong")
	}
}

func compileErr(t *testing.T, defsDoc, appDoc string) error {
	t.Helper()
	defs, err := cdl.Parse(strings.NewReader(defsDoc))
	if err != nil {
		t.Fatal(err)
	}
	app, err := ccl.Parse(strings.NewReader(appDoc))
	if err != nil {
		t.Fatal(err)
	}
	_, cerr := Compile(defs, app)
	return cerr
}

func TestCompileErrors(t *testing.T) {
	wrap := func(inner string) string {
		return `<Application><ApplicationName>E</ApplicationName>` + inner + `</Application>`
	}
	top := func(class, ports string, children string) string {
		return wrap(`<Component><InstanceName>Top</InstanceName><ClassName>` + class +
			`</ClassName><ComponentType>Immortal</ComponentType>` + ports + children + `</Component>`)
	}
	kid := `<Component><InstanceName>Kid</InstanceName><ClassName>Child</ClassName><ComponentType>Scoped</ComponentType><MemorySize>1024</MemorySize></Component>`

	tests := []struct {
		name string
		app  string
	}{
		{"unknown class", top("Mystery", "", "")},
		{"unknown port", top("Parent", `<Connection><Port><PortName>bogus</PortName></Port></Connection>`, "")},
		{"attrs on out port", top("Parent", `<Connection><Port><PortName>toChild</PortName><PortAttributes><BufferSize>1</BufferSize></PortAttributes></Port></Connection>`, "")},
		{"link to unknown instance", top("Parent", `<Connection><Port><PortName>toChild</PortName><Link><PortType>Internal</PortType><ToComponent>Ghost</ToComponent><ToPort>in</ToPort></Link></Port></Connection>`, "")},
		{"link to unknown port", top("Parent", `<Connection><Port><PortName>toChild</PortName><Link><PortType>Internal</PortType><ToComponent>Kid</ToComponent><ToPort>ghost</ToPort></Link></Port></Connection>`, kid)},
		{"out to out", top("Parent", `<Connection><Port><PortName>toChild</PortName><Link><PortType>Internal</PortType><ToComponent>Kid</ToComponent><ToPort>out</ToPort></Link></Port></Connection>`, kid)},
		{"type mismatch", top("Parent", `<Connection><Port><PortName>fromChild</PortName><Link><PortType>Internal</PortType><ToComponent>Kid</ToComponent><ToPort>strOut</ToPort></Link></Port></Connection>`, kid)},
		{"internal declared external", top("Parent", `<Connection><Port><PortName>toChild</PortName><Link><PortType>External</PortType><ToComponent>Kid</ToComponent><ToPort>in</ToPort></Link></Port></Connection>`, kid)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := compileErr(t, testDefs, tt.app); !errors.Is(err, ErrCompile) {
				t.Errorf("err = %v, want ErrCompile", err)
			}
		})
	}
}

func TestCompileSelfConnectionRejected(t *testing.T) {
	const selfDefs = `
<ComponentDefinitions>
  <Component>
    <ComponentName>Loop</ComponentName>
    <Port><PortName>in</PortName><PortType>In</PortType><MessageType>T</MessageType></Port>
    <Port><PortName>out</PortName><PortType>Out</PortType><MessageType>T</MessageType></Port>
  </Component>
</ComponentDefinitions>`
	const selfApp = `
<Application><ApplicationName>S</ApplicationName>
  <Component><InstanceName>L</InstanceName><ClassName>Loop</ClassName><ComponentType>Immortal</ComponentType>
    <Connection><Port><PortName>out</PortName>
      <Link><PortType>External</PortType><ToComponent>L</ToComponent><ToPort>in</ToPort></Link>
    </Port></Connection>
  </Component>
</Application>`
	if err := compileErr(t, selfDefs, selfApp); !errors.Is(err, ErrCompile) {
		t.Errorf("self connection err = %v, want ErrCompile", err)
	}
}

func TestCompileSiblingDeclaredInternalRejected(t *testing.T) {
	bad := strings.Replace(siblingApp, "<PortType>External</PortType>", "<PortType>Internal</PortType>", 1)
	if err := compileErr(t, testDefs, bad); !errors.Is(err, ErrCompile) {
		t.Errorf("err = %v, want ErrCompile", err)
	}
}

func TestCompileThreeCycleRejected(t *testing.T) {
	// A -> B -> C -> A among siblings: a genuine loop (not request-reply).
	const app = `
<Application><ApplicationName>Cyc</ApplicationName>
  <Component><InstanceName>Top</InstanceName><ClassName>Parent</ClassName><ComponentType>Immortal</ComponentType>
    <Component><InstanceName>A</InstanceName><ClassName>Child</ClassName><ComponentType>Scoped</ComponentType><MemorySize>1024</MemorySize>
      <Connection><Port><PortName>out</PortName><Link><PortType>External</PortType><ToComponent>B</ToComponent><ToPort>in</ToPort></Link></Port></Connection>
    </Component>
    <Component><InstanceName>B</InstanceName><ClassName>Child</ClassName><ComponentType>Scoped</ComponentType><MemorySize>1024</MemorySize>
      <Connection><Port><PortName>out</PortName><Link><PortType>External</PortType><ToComponent>C</ToComponent><ToPort>in</ToPort></Link></Port></Connection>
    </Component>
    <Component><InstanceName>C</InstanceName><ClassName>Child</ClassName><ComponentType>Scoped</ComponentType><MemorySize>1024</MemorySize>
      <Connection><Port><PortName>out</PortName><Link><PortType>External</PortType><ToComponent>A</ToComponent><ToPort>in</ToPort></Link></Port></Connection>
    </Component>
  </Component>
</Application>`
	if err := compileErr(t, testDefs, app); !errors.Is(err, ErrCompile) {
		t.Errorf("three-cycle err = %v, want ErrCompile", err)
	}
}

func TestCompileRequestReplyPairAllowed(t *testing.T) {
	// A <-> B request-reply must NOT be flagged as a loop (the paper's own
	// client-server example is one).
	const app = `
<Application><ApplicationName>RR</ApplicationName>
  <Component><InstanceName>Top</InstanceName><ClassName>Parent</ClassName><ComponentType>Immortal</ComponentType>
    <Component><InstanceName>A</InstanceName><ClassName>Child</ClassName><ComponentType>Scoped</ComponentType><MemorySize>1024</MemorySize>
      <Connection><Port><PortName>out</PortName><Link><PortType>External</PortType><ToComponent>B</ToComponent><ToPort>in</ToPort></Link></Port></Connection>
    </Component>
    <Component><InstanceName>B</InstanceName><ClassName>Child</ClassName><ComponentType>Scoped</ComponentType><MemorySize>1024</MemorySize>
      <Connection><Port><PortName>out</PortName><Link><PortType>External</PortType><ToComponent>A</ToComponent><ToPort>in</ToPort></Link></Port></Connection>
    </Component>
  </Component>
</Application>`
	if err := compileErr(t, testDefs, app); err != nil {
		t.Errorf("request-reply pair rejected: %v", err)
	}
}

func TestCompileDuplicateLinkBothEndsDeduped(t *testing.T) {
	// The same connection declared on both endpoints collapses to one.
	doc := strings.Replace(siblingApp,
		`<Component>
      <InstanceName>B</InstanceName>
      <ClassName>Child</ClassName>
      <ComponentType>Scoped</ComponentType>
      <MemorySize>8192</MemorySize>
    </Component>`,
		`<Component>
      <InstanceName>B</InstanceName>
      <ClassName>Child</ClassName>
      <ComponentType>Scoped</ComponentType>
      <MemorySize>8192</MemorySize>
      <Connection>
        <Port>
          <PortName>in</PortName>
          <Link><PortType>External</PortType><ToComponent>A</ToComponent><ToPort>out</ToPort></Link>
        </Port>
      </Connection>
    </Component>`, 1)
	plan, err := Compile(mustDefs(t), mustApp(t, doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Connections) != 1 {
		t.Errorf("connections = %d, want 1 (deduped)", len(plan.Connections))
	}
}
