package compiler

import (
	"errors"
	"strings"
	"testing"
)

// placedApp spreads two top-level instances over two nodes: a replicated
// server node exporting Kid-less Parent's In port, and a client node holding
// a Remote link toward it.
const placedApp = `
<Application>
  <ApplicationName>Placed</ApplicationName>
  <Component>
    <InstanceName>Srv</InstanceName>
    <ClassName>Parent</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Node>backend</Node>
    <Replicas>3</Replicas>
    <Connection>
      <Port>
        <PortName>fromChild</PortName>
        <Exported>true</Exported>
      </Port>
    </Connection>
  </Component>
  <Component>
    <InstanceName>Cli</InstanceName>
    <ClassName>Parent</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Node>frontend</Node>
    <Connection>
      <Port>
        <PortName>toChild</PortName>
        <Link>
          <PortType>Remote</PortType>
          <ToComponent>Srv</ToComponent><ToPort>fromChild</ToPort>
          <RemoteAddr>backend:9000</RemoteAddr>
        </Link>
      </Port>
    </Connection>
  </Component>
</Application>`

func TestCompilePlacement(t *testing.T) {
	plan, err := Compile(mustDefs(t), mustApp(t, placedApp))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Nodes) != 2 {
		t.Fatalf("nodes = %+v, want backend and frontend", plan.Nodes)
	}
	be, fe := plan.Node("backend"), plan.Node("frontend")
	if be == nil || be.Replicas != 3 || len(be.Instances) != 1 || be.Instances[0] != "Srv" {
		t.Errorf("backend plan = %+v", be)
	}
	if fe == nil || fe.Replicas != 1 || len(fe.Instances) != 1 || fe.Instances[0] != "Cli" {
		t.Errorf("frontend plan = %+v", fe)
	}
	if plan.Node("nowhere") != nil {
		t.Error("unknown node lookup returned non-nil")
	}
	if n := plan.ReplicatedExports["Srv.fromChild"]; n != 3 {
		t.Errorf("ReplicatedExports = %v, want Srv.fromChild -> 3", plan.ReplicatedExports)
	}

	sub, err := plan.SubPlan("backend")
	if err != nil {
		t.Fatal(err)
	}
	if sub.AppName != "Placed@backend" {
		t.Errorf("sub-plan app name = %q", sub.AppName)
	}
	if len(sub.Order) != 1 || sub.Order[0] != "Srv" || sub.Instances["Srv"] == nil {
		t.Errorf("sub-plan order = %v", sub.Order)
	}
	if len(sub.Exports) != 1 || sub.Exports[0].Instance != "Srv" {
		t.Errorf("sub-plan exports = %+v", sub.Exports)
	}
	if len(sub.RemoteConnections) != 0 {
		t.Errorf("backend sub-plan carries the client's remote link: %+v", sub.RemoteConnections)
	}
	if n := sub.ReplicatedExports["Srv.fromChild"]; n != 3 {
		t.Errorf("sub-plan ReplicatedExports = %v", sub.ReplicatedExports)
	}

	cliSub, err := plan.SubPlan("frontend")
	if err != nil {
		t.Fatal(err)
	}
	if len(cliSub.RemoteConnections) != 1 || cliSub.RemoteConnections[0].FromInstance != "Cli" {
		t.Errorf("frontend sub-plan remotes = %+v", cliSub.RemoteConnections)
	}
	if len(cliSub.Exports) != 0 {
		t.Errorf("frontend sub-plan exports = %+v", cliSub.Exports)
	}

	if _, err := plan.SubPlan("nowhere"); err == nil {
		t.Error("SubPlan of unknown node succeeded")
	}
}

// TestCompileDefaultPlacement compiles a document with no Node declarations
// and expects one default-node plan holding everything, with no replica
// groups.
func TestCompileDefaultPlacement(t *testing.T) {
	plan, err := Compile(mustDefs(t), mustApp(t, parentChildApp))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Nodes) != 1 || plan.Nodes[0].Node != "" || plan.Nodes[0].Replicas != 1 {
		t.Fatalf("default placement = %+v", plan.Nodes)
	}
	if got := plan.Nodes[0].Instances; len(got) != 1 || got[0] != "Top" {
		t.Errorf("default node instances = %v", got)
	}
	if plan.ReplicatedExports != nil {
		t.Errorf("unreplicated plan has groups: %v", plan.ReplicatedExports)
	}
	sub, err := plan.SubPlan("")
	if err != nil {
		t.Fatal(err)
	}
	if sub.AppName != "PC" || len(sub.Order) != len(plan.Order) || len(sub.Connections) != len(plan.Connections) {
		t.Errorf("default sub-plan differs from plan: %+v", sub)
	}
}

// TestCompilePlacementErrors covers the placement-specific rejections.
func TestCompilePlacementErrors(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{
			name: "cross-node local link",
			doc: `
<Application>
  <ApplicationName>X</ApplicationName>
  <Component>
    <InstanceName>A</InstanceName><ClassName>Parent</ClassName><ComponentType>Immortal</ComponentType>
    <Node>n1</Node>
    <Connection>
      <Port>
        <PortName>toChild</PortName>
        <Link><PortType>External</PortType><ToComponent>B</ToComponent><ToPort>fromChild</ToPort></Link>
      </Port>
    </Connection>
  </Component>
  <Component>
    <InstanceName>B</InstanceName><ClassName>Parent</ClassName><ComponentType>Immortal</ComponentType>
    <Node>n2</Node>
  </Component>
</Application>`,
			want: "spans nodes",
		},
		{
			name: "replicas without export",
			doc: `
<Application>
  <ApplicationName>X</ApplicationName>
  <Component>
    <InstanceName>A</InstanceName><ClassName>Parent</ClassName><ComponentType>Immortal</ComponentType>
    <Node>n1</Node><Replicas>2</Replicas>
  </Component>
</Application>`,
			want: "exports no port",
		},
		{
			name: "conflicting replica counts",
			doc: `
<Application>
  <ApplicationName>X</ApplicationName>
  <Component>
    <InstanceName>A</InstanceName><ClassName>Parent</ClassName><ComponentType>Immortal</ComponentType>
    <Node>n1</Node><Replicas>2</Replicas>
    <Connection><Port><PortName>fromChild</PortName><Exported>true</Exported></Port></Connection>
  </Component>
  <Component>
    <InstanceName>B</InstanceName><ClassName>Parent</ClassName><ComponentType>Immortal</ComponentType>
    <Node>n1</Node><Replicas>3</Replicas>
  </Component>
</Application>`,
			want: "one count per node",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(mustDefs(t), mustApp(t, tc.doc))
			if err == nil || !errors.Is(err, ErrCompile) || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want ErrCompile containing %q", err, tc.want)
			}
		})
	}
}
