// Placement planning: the deployment half of the compiler. A CCL document
// may assign top-level instances to named nodes (<Node>) and replicate a
// node's process (<Replicas>), the way DUECA's configuration script assigns
// modules to nodes. The compiler validates that the composition respects the
// placement — a local connection cannot span nodes; a replicated node must be
// reachable through an exported port — and the Plan then yields per-node
// sub-plans that package deploy runs as independent processes.

package compiler

import "fmt"

// NodePlan is the placement of one deployment node: the top-level instances
// assigned to it and how many replica processes run it.
type NodePlan struct {
	// Node is the node name; empty is the default node.
	Node string
	// Replicas is how many independent processes run this node's
	// composition; 1 when unreplicated.
	Replicas int
	// Instances lists the node's top-level instance names, document order.
	Instances []string
}

// buildPlacement derives the node plans and the replicated-export map, and
// validates that connections respect the placement. Runs after the port
// plans, so exports and connections are fully resolved.
func (p *Plan) buildPlacement() error {
	byNode := make(map[string]*NodePlan)
	declared := make(map[string]int)
	for _, name := range p.Order {
		ip := p.Instances[name]
		if ip.Parent != "" {
			continue
		}
		node := ip.Inst.Node
		np := byNode[node]
		if np == nil {
			np = &NodePlan{Node: node, Replicas: 1}
			byNode[node] = np
			p.Nodes = append(p.Nodes, np)
		}
		np.Instances = append(np.Instances, name)
		if r := ip.Inst.Replicas; r > 1 {
			if prev, ok := declared[node]; ok && prev != r {
				return fmt.Errorf("%w: node %q declares both %d and %d replicas; one count per node",
					ErrCompile, node, prev, r)
			}
			declared[node] = r
			np.Replicas = r
		}
	}

	// Local connections (internal, external, shadow) ride scoped memory and
	// component buffers; they cannot cross a process boundary. Remote links
	// are the only legal inter-node edges.
	for _, c := range p.Connections {
		fn, tn := p.nodeOf(c.FromInstance), p.nodeOf(c.ToInstance)
		if fn != tn {
			return fmt.Errorf("%w: connection %s.%s -> %s.%s spans nodes %q and %q; cross-node traffic needs a Remote link",
				ErrCompile, c.FromInstance, c.FromPort, c.ToInstance, c.ToPort, fn, tn)
		}
	}

	// A replicated node is only reachable through its exported ports: each
	// becomes a group entry in ReplicatedExports (qualified name -> replica
	// count) for the deployment layer's directory.
	for _, np := range p.Nodes {
		if np.Replicas <= 1 {
			continue
		}
		found := false
		for _, ex := range p.Exports {
			if p.nodeOf(ex.Instance) != np.Node {
				continue
			}
			found = true
			if p.ReplicatedExports == nil {
				p.ReplicatedExports = make(map[string]int)
			}
			p.ReplicatedExports[ex.Instance+"."+ex.Port] = np.Replicas
		}
		if !found {
			return fmt.Errorf("%w: node %q declares %d replicas but exports no port; a replica group without an export is unreachable",
				ErrCompile, np.Node, np.Replicas)
		}
	}
	return nil
}

// nodeOf returns the node an instance deploys on: the Node of its top-level
// ancestor.
func (p *Plan) nodeOf(inst string) string {
	ip := p.Instances[inst]
	for ip.Parent != "" {
		ip = p.Instances[ip.Parent]
	}
	return ip.Inst.Node
}

// Node returns the plan for the named node, or nil.
func (p *Plan) Node(name string) *NodePlan {
	for _, np := range p.Nodes {
		if np.Node == name {
			return np
		}
	}
	return nil
}

// SubPlan extracts the slice of the composition deployed on node as an
// independently assemblable Plan: the node's instances (plans shared,
// read-only, with the parent), the connections joining them, their exports,
// and the Remote links originating there. The sub-plan's placement is the
// single node itself, so deploying a sub-plan never recurses.
func (p *Plan) SubPlan(node string) (*Plan, error) {
	np := p.Node(node)
	if np == nil {
		return nil, fmt.Errorf("%w: unknown node %q", ErrCompile, node)
	}
	sub := &Plan{
		AppName:   p.AppName,
		RTSJ:      p.RTSJ,
		Defs:      p.Defs,
		Instances: make(map[string]*InstancePlan),
		Nodes:     []*NodePlan{{Node: np.Node, Replicas: np.Replicas, Instances: np.Instances}},
	}
	if node != "" {
		sub.AppName = p.AppName + "@" + node
	}
	for _, name := range p.Order {
		if p.nodeOf(name) != node {
			continue
		}
		sub.Order = append(sub.Order, name)
		sub.Instances[name] = p.Instances[name]
	}
	for _, c := range p.Connections {
		if p.nodeOf(c.FromInstance) == node {
			sub.Connections = append(sub.Connections, c)
		}
	}
	for _, rc := range p.RemoteConnections {
		if p.nodeOf(rc.FromInstance) == node {
			sub.RemoteConnections = append(sub.RemoteConnections, rc)
		}
	}
	for _, ex := range p.Exports {
		if p.nodeOf(ex.Instance) == node {
			sub.Exports = append(sub.Exports, ex)
			if n, ok := p.ReplicatedExports[ex.Instance+"."+ex.Port]; ok {
				if sub.ReplicatedExports == nil {
					sub.ReplicatedExports = make(map[string]int)
				}
				sub.ReplicatedExports[ex.Instance+"."+ex.Port] = n
			}
		}
	}
	return sub, nil
}
