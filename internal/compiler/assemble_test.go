package compiler

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/ccl"
	"repro/internal/cdl"
	"repro/internal/core"
)

// The paper's Fig. 6 topology expressed in CDL + CCL: an immortal component
// with Client and Server children, wired P1->P2, P3->P4, P5->P6.
const figSixDefs = `
<ComponentDefinitions>
  <Component>
    <ComponentName>ImmortalComponent</ComponentName>
    <Port><PortName>P1</PortName><PortType>Out</PortType><MessageType>MyInteger</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>Client</ComponentName>
    <Port><PortName>P2</PortName><PortType>In</PortType><MessageType>MyInteger</MessageType></Port>
    <Port><PortName>P3</PortName><PortType>Out</PortType><MessageType>MyInteger</MessageType></Port>
    <Port><PortName>P6</PortName><PortType>In</PortType><MessageType>MyInteger</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>Server</ComponentName>
    <Port><PortName>P4</PortName><PortType>In</PortType><MessageType>MyInteger</MessageType></Port>
    <Port><PortName>P5</PortName><PortType>Out</PortType><MessageType>MyInteger</MessageType></Port>
  </Component>
</ComponentDefinitions>`

const figSixApp = `
<Application>
  <ApplicationName>ClientServer</ApplicationName>
  <Component>
    <InstanceName>IMC</InstanceName>
    <ClassName>ImmortalComponent</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port>
        <PortName>P1</PortName>
        <Link><PortType>Internal</PortType><ToComponent>MyClient</ToComponent><ToPort>P2</ToPort></Link>
      </Port>
    </Connection>
    <Component>
      <InstanceName>MyClient</InstanceName>
      <ClassName>Client</ClassName>
      <ComponentType>Scoped</ComponentType>
      <MemorySize>16384</MemorySize>
      <Persistent>true</Persistent>
      <Connection>
        <Port>
          <PortName>P2</PortName>
          <PortAttributes>
            <BufferSize>10</BufferSize>
            <Threadpool>Shared</Threadpool>
            <MinThreadpoolSize>1</MinThreadpoolSize>
            <MaxThreadpoolSize>5</MaxThreadpoolSize>
          </PortAttributes>
        </Port>
        <Port>
          <PortName>P3</PortName>
          <Link><PortType>External</PortType><ToComponent>MyServer</ToComponent><ToPort>P4</ToPort></Link>
        </Port>
        <Port>
          <PortName>P6</PortName>
          <PortAttributes>
            <BufferSize>20</BufferSize>
            <Threadpool>Shared</Threadpool>
            <MinThreadpoolSize>1</MinThreadpoolSize>
            <MaxThreadpoolSize>5</MaxThreadpoolSize>
          </PortAttributes>
        </Port>
      </Connection>
    </Component>
    <Component>
      <InstanceName>MyServer</InstanceName>
      <ClassName>Server</ClassName>
      <ComponentType>Scoped</ComponentType>
      <MemorySize>16384</MemorySize>
      <Persistent>true</Persistent>
      <Connection>
        <Port>
          <PortName>P5</PortName>
          <Link><PortType>External</PortType><ToComponent>MyClient</ToComponent><ToPort>P6</ToPort></Link>
        </Port>
      </Connection>
    </Component>
  </Component>
  <RTSJAttributes>
    <ImmortalSize>400000</ImmortalSize>
    <ScopedPool>
      <ScopeLevel>1</ScopeLevel>
      <ScopeSize>200000</ScopeSize>
      <PoolSize>3</PoolSize>
    </ScopedPool>
  </RTSJAttributes>
</Application>`

type myInteger struct{ value int64 }

func (m *myInteger) Reset() { m.value = 0 }

var myIntegerType = core.MessageType{Name: "MyInteger", Size: 16, New: func() core.Message { return &myInteger{} }}

func figSixRegistry(t *testing.T, done chan int64) *Registry {
	t.Helper()
	reg := NewRegistry()
	if err := reg.RegisterType(myIntegerType); err != nil {
		t.Fatal(err)
	}

	if err := reg.RegisterClass("ImmortalComponent", ClassBinding{
		Start: func(p *core.Proc) error {
			p1, err := p.SMM().GetOutPort("IMC.P1")
			if err != nil {
				return err
			}
			m, err := p1.GetMessage()
			if err != nil {
				return err
			}
			m.(*myInteger).value = 3
			return p1.Send(m, 2)
		},
	}); err != nil {
		t.Fatal(err)
	}

	if err := reg.RegisterClass("Client", ClassBinding{
		NewHandlers: func(c *core.Component) (map[string]core.Handler, error) {
			return map[string]core.Handler{
				"P2": core.HandlerFunc(func(p *core.Proc, m core.Message) error {
					p3, err := p.SMM().GetOutPort("MyClient.P3")
					if err != nil {
						return err
					}
					req, err := p3.GetMessage()
					if err != nil {
						return err
					}
					req.(*myInteger).value = m.(*myInteger).value
					return p3.Send(req, 3)
				}),
				"P6": core.HandlerFunc(func(p *core.Proc, m core.Message) error {
					done <- m.(*myInteger).value
					return nil
				}),
			}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}

	if err := reg.RegisterClass("Server", ClassBinding{
		NewHandlers: func(c *core.Component) (map[string]core.Handler, error) {
			return map[string]core.Handler{
				"P4": core.HandlerFunc(func(p *core.Proc, m core.Message) error {
					p5, err := p.SMM().GetOutPort("MyServer.P5")
					if err != nil {
						return err
					}
					rep, err := p5.GetMessage()
					if err != nil {
						return err
					}
					rep.(*myInteger).value = m.(*myInteger).value + 1
					return p5.Send(rep, 3)
				}),
			}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestAssembleClientServerEndToEnd(t *testing.T) {
	defs, err := cdl.Parse(strings.NewReader(figSixDefs))
	if err != nil {
		t.Fatal(err)
	}
	cclApp, err := ccl.Parse(strings.NewReader(figSixApp))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(defs, cclApp)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Connections) != 3 {
		t.Fatalf("connections = %d, want 3", len(plan.Connections))
	}

	done := make(chan int64, 1)
	app, err := Assemble(plan, figSixRegistry(t, done), WithMsgPoolCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	// The immortal size from the CCL is honoured.
	if got := app.Model().Immortal().Capacity(); got != 400000 {
		t.Errorf("immortal capacity = %d, want 400000", got)
	}
	if app.ScopePool(1) == nil {
		t.Error("scope pool for level 1 not created")
	}

	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v != 4 { // 3 sent by IMC, +1 at the server
			t.Errorf("reply = %d, want 4", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("round trip did not complete")
	}
	if n, err := app.Errors(); n != 0 {
		t.Errorf("handler errors: %d (%v)", n, err)
	}
}

func TestAssembleMissingTypeOrBinding(t *testing.T) {
	defs, _ := cdl.Parse(strings.NewReader(figSixDefs))
	cclApp, _ := ccl.Parse(strings.NewReader(figSixApp))
	plan, err := Compile(defs, cclApp)
	if err != nil {
		t.Fatal(err)
	}

	// No registered type.
	if _, err := Assemble(plan, NewRegistry()); !errors.Is(err, ErrCompile) {
		t.Errorf("missing type err = %v", err)
	}

	// Type but no binding for a class with In ports.
	reg := NewRegistry()
	if err := reg.RegisterType(myIntegerType); err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble(plan, reg); !errors.Is(err, ErrCompile) {
		t.Errorf("missing binding err = %v", err)
	}
}

func TestAssembleMissingHandler(t *testing.T) {
	defs, _ := cdl.Parse(strings.NewReader(figSixDefs))
	cclApp, _ := ccl.Parse(strings.NewReader(figSixApp))
	plan, err := Compile(defs, cclApp)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.RegisterType(myIntegerType); err != nil {
		t.Fatal(err)
	}
	empty := func(c *core.Component) (map[string]core.Handler, error) {
		return map[string]core.Handler{}, nil
	}
	_ = reg.RegisterClass("ImmortalComponent", ClassBinding{})
	_ = reg.RegisterClass("Client", ClassBinding{NewHandlers: empty})
	_ = reg.RegisterClass("Server", ClassBinding{NewHandlers: empty})
	app, err := Assemble(plan, reg)
	if err != nil {
		t.Fatal(err) // top-level assembly succeeds; failure surfaces at instantiation
	}
	defer app.Stop()
	// Instantiating the client must fail: no handler for P2.
	imc := app.Component("IMC")
	if _, err := imc.SMM().Connect("MyClient"); err == nil {
		t.Error("instantiation with missing handler succeeded")
	}
}

func TestRegistryValidation(t *testing.T) {
	reg := NewRegistry()
	if err := reg.RegisterType(core.MessageType{}); !errors.Is(err, ErrCompile) {
		t.Errorf("invalid type err = %v", err)
	}
	if err := reg.RegisterType(myIntegerType); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterType(myIntegerType); !errors.Is(err, ErrCompile) {
		t.Errorf("dup type err = %v", err)
	}
	if err := reg.RegisterClass("", ClassBinding{}); !errors.Is(err, ErrCompile) {
		t.Errorf("empty class err = %v", err)
	}
	if err := reg.RegisterClass("C", ClassBinding{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterClass("C", ClassBinding{}); !errors.Is(err, ErrCompile) {
		t.Errorf("dup class err = %v", err)
	}
}
