package compiler

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ccl"
	"repro/internal/cdl"
)

// genDefs declares one universal class with an In and an Out port, which is
// all the topology properties need.
func genDefs() *cdl.Definitions {
	return &cdl.Definitions{
		Components: []cdl.Component{{
			Name: "Node",
			Ports: []cdl.Port{
				{Name: "in", Type: cdl.In, MessageType: "T"},
				{Name: "out", Type: cdl.Out, MessageType: "T"},
			},
		}},
	}
}

// genTree builds a random instance tree with the given node count and
// returns the application plus each instance's parent (by name).
func genTree(rng *rand.Rand, n int) (*ccl.Application, map[string]string) {
	parents := make(map[string]string, n)
	instances := make([]*ccl.Instance, n)
	for i := 0; i < n; i++ {
		instances[i] = &ccl.Instance{
			InstanceName: fmt.Sprintf("N%d", i),
			ClassName:    "Node",
		}
	}
	app := &ccl.Application{Name: "Prop"}
	for i, inst := range instances {
		if i == 0 || rng.Intn(4) == 0 {
			// A top-level immortal component.
			inst.Type = ccl.Immortal
			app.Components = append(app.Components, *inst)
			parents[inst.InstanceName] = ""
			continue
		}
		inst.Type = ccl.Scoped
		inst.MemorySize = 4096
		parentIdx := rng.Intn(i)
		parents[inst.InstanceName] = fmt.Sprintf("N%d", parentIdx)
	}
	// Attach scoped children to their parents (the slice copies above mean
	// we must rebuild the nesting from scratch, top-down).
	var attach func(dst *ccl.Instance)
	attach = func(dst *ccl.Instance) {
		for i := 1; i < n; i++ {
			name := fmt.Sprintf("N%d", i)
			if parents[name] == dst.InstanceName {
				child := ccl.Instance{
					InstanceName: name,
					ClassName:    "Node",
					Type:         ccl.Scoped,
					MemorySize:   4096,
				}
				dst.Children = append(dst.Children, child)
				attach(&dst.Children[len(dst.Children)-1])
			}
		}
	}
	for i := range app.Components {
		attach(&app.Components[i])
	}
	return app, parents
}

// relationship classifies two instances the way the compiler must.
func relationship(parents map[string]string, from, to string) (kind ConnKind, mediator string, legal bool) {
	anc := func(a, b string) bool { // a is strict ancestor of b
		for cur := parents[b]; cur != ""; cur = parents[cur] {
			if cur == a {
				return true
			}
		}
		return false
	}
	switch {
	case parents[from] == to:
		return ConnInternal, to, true
	case parents[to] == from:
		return ConnInternal, from, true
	case parents[from] == parents[to] && parents[from] != "":
		return ConnExternal, parents[from], true
	case parents[from] == "" && parents[to] == "":
		return ConnExternal, to, true
	case anc(to, from):
		return ConnShadow, to, true
	case anc(from, to):
		return ConnShadow, from, true
	default:
		return 0, "", false
	}
}

// declaredLinkType picks the CCL spelling the compiler accepts for the
// relationship.
func declaredLinkType(kind ConnKind) ccl.LinkType {
	if kind == ConnInternal {
		return ccl.Internal
	}
	return ccl.External
}

// TestPropertyTopologyClassification generates random trees and random
// pairs, and checks that the compiler accepts exactly the legal
// relationships with the correct kind and mediator — the scoped-memory
// planning at the heart of the Compadres compiler.
func TestPropertyTopologyClassification(t *testing.T) {
	defs := genDefs()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		app, parents := genTree(rng, n)
		from := fmt.Sprintf("N%d", rng.Intn(n))
		to := fmt.Sprintf("N%d", rng.Intn(n))
		if from == to {
			continue
		}
		wantKind, wantMediator, legal := relationship(parents, from, to)

		// Declare the connection on the Out side of `from`.
		link := ccl.Link{Type: ccl.External, ToComponent: to, ToPort: "in"}
		if legal {
			link.Type = declaredLinkType(wantKind)
		}
		inst := app.Instance(from)
		inst.Connection.Ports = []ccl.PortSpec{{Name: "out", Links: []ccl.Link{link}}}

		plan, err := Compile(defs, app)
		if !legal {
			if err == nil {
				t.Fatalf("trial %d: illegal pair %s->%s accepted (parents %v)", trial, from, to, parents)
			}
			if !errors.Is(err, ErrCompile) {
				t.Fatalf("trial %d: err = %v, want ErrCompile", trial, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: legal pair %s->%s rejected: %v (parents %v)", trial, from, to, err, parents)
		}
		if len(plan.Connections) != 1 {
			t.Fatalf("trial %d: connections = %d", trial, len(plan.Connections))
		}
		c := plan.Connections[0]
		if c.FromInstance != from || c.ToInstance != to {
			t.Fatalf("trial %d: orientation %s->%s, want %s->%s", trial, c.FromInstance, c.ToInstance, from, to)
		}
		if c.Kind != wantKind {
			t.Fatalf("trial %d: kind = %v, want %v (%s->%s, parents %v)", trial, c.Kind, wantKind, from, to, parents)
		}
		if c.Mediator != wantMediator {
			t.Fatalf("trial %d: mediator = %q, want %q", trial, c.Mediator, wantMediator)
		}
		// Invariant: the mediator can reach both endpoints' memory: it is
		// an ancestor-or-self of both, or everything involved is immortal.
		isAncOrSelf := func(a, b string) bool {
			if a == b {
				return true
			}
			for cur := parents[b]; cur != ""; cur = parents[cur] {
				if cur == a {
					return true
				}
			}
			return false
		}
		bothImmortal := parents[from] == "" && parents[to] == ""
		if !bothImmortal && (!isAncOrSelf(c.Mediator, from) || !isAncOrSelf(c.Mediator, to)) {
			t.Fatalf("trial %d: mediator %q cannot reach both %s and %s", trial, c.Mediator, from, to)
		}
	}
}

// TestPropertyDeclaredDirectionIrrelevant verifies that declaring a link on
// the In side produces the same oriented connection as declaring it on the
// Out side.
func TestPropertyDeclaredDirectionIrrelevant(t *testing.T) {
	defs := genDefs()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		appA, parents := genTree(rng, n)
		from := fmt.Sprintf("N%d", rng.Intn(n))
		to := fmt.Sprintf("N%d", rng.Intn(n))
		if from == to {
			continue
		}
		kind, _, legal := relationship(parents, from, to)
		if !legal {
			continue
		}
		lt := declaredLinkType(kind)

		appA.Instance(from).Connection.Ports = []ccl.PortSpec{{
			Name: "out", Links: []ccl.Link{{Type: lt, ToComponent: to, ToPort: "in"}},
		}}
		planA, err := Compile(defs, appA)
		if err != nil {
			t.Fatalf("trial %d out-side: %v", trial, err)
		}

		// Same tree, same connection, declared on the In side instead.
		appA.Instance(from).Connection.Ports = nil
		appA.Instance(to).Connection.Ports = []ccl.PortSpec{{
			Name: "in", Links: []ccl.Link{{Type: lt, ToComponent: from, ToPort: "out"}},
		}}
		planB, err := Compile(defs, appA)
		if err != nil {
			t.Fatalf("trial %d in-side: %v", trial, err)
		}
		if len(planA.Connections) != 1 || len(planB.Connections) != 1 {
			t.Fatalf("trial %d: connection counts %d/%d", trial, len(planA.Connections), len(planB.Connections))
		}
		if planA.Connections[0] != planB.Connections[0] {
			t.Fatalf("trial %d: %+v != %+v", trial, planA.Connections[0], planB.Connections[0])
		}
	}
}
