// Plan deltas: the compile-time half of live reconfiguration. Diff takes
// two compiled plans — the running one and its successor — and produces an
// ordered swap script a deployment can apply to the live assembly
// (package deploy, Deployment.Apply): child-subtree swaps first, then
// destination rewires that add routes, then rewires that remove them
// (make-before-break). Everything a live assembly cannot absorb without a
// process restart is rejected here, before any state changes: the delta is
// all-or-nothing at validation time.
package compiler

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cdl"
	"repro/internal/core"
)

// ErrIllegalDelta reports a plan change that cannot be applied to a live
// assembly — it needs a restart (or a rolling replica upgrade) instead.
var ErrIllegalDelta = errors.New("compiler: plan delta cannot be applied live")

// DeltaOp is one kind of live-reconfiguration step.
type DeltaOp int

// Delta operations.
const (
	// OpSwapChild replaces a top-level instance's child subtree: the child's
	// blueprint (class, memory, persistence — and everything beneath it) is
	// re-installed from the new plan via SMM.Swap.
	OpSwapChild DeltaOp = iota + 1
	// OpRewire replaces an Out port's destination list via SMM.Rewire.
	OpRewire
)

// String returns the op name.
func (o DeltaOp) String() string {
	switch o {
	case OpSwapChild:
		return "swap-child"
	case OpRewire:
		return "rewire"
	default:
		return fmt.Sprintf("DeltaOp(%d)", int(o))
	}
}

// DeltaStep is one ordered step of a swap script.
type DeltaStep struct {
	Op DeltaOp
	// Parent/Child name an OpSwapChild: Parent is the top-level instance
	// whose SMM hosts the swap, Child its direct child being replaced.
	Parent, Child string
	// Mediator/Port/Dests describe an OpRewire: Mediator is the top-level
	// instance whose SMM registered the port, Port the qualified Out-port
	// name, Dests the new destination list.
	Mediator, Port string
	Dests          []string
}

// Delta is an ordered swap script turning the running plan into the new one.
type Delta struct {
	// Old is the plan the assembly is running; New the plan to reach.
	Old, New *Plan
	// Steps is the apply order: swaps (plan order), additive rewires,
	// removing rewires.
	Steps []DeltaStep
}

// Empty reports a no-op delta (the plans are live-equivalent).
func (d *Delta) Empty() bool { return len(d.Steps) == 0 }

// Diff computes the ordered swap script from old to new, rejecting any
// change a live assembly cannot absorb:
//
//   - instance additions, removals, re-parenting, or re-levelling
//   - any change to a top-level instance itself (class, memory, node,
//     replicas) — top-level components are immortal
//   - port-attribute or mediator changes on top-level instances' ports
//     (child-port changes fold into their subtree's swap)
//   - export, remote-link, placement, or RTSJ memory changes
//
// What survives: child-subtree blueprint changes (class, memory size, pool
// use, persistence, anything on a grandchild) become OpSwapChild on the
// child's top-level ancestor, and destination-list changes on top-level
// instances' Out ports become OpRewire.
func Diff(oldPlan, newPlan *Plan) (*Delta, error) {
	if oldPlan == nil || newPlan == nil {
		return nil, fmt.Errorf("%w: nil plan", ErrIllegalDelta)
	}
	if oldPlan.AppName != newPlan.AppName {
		return nil, fmt.Errorf("%w: application renamed %q -> %q", ErrIllegalDelta, oldPlan.AppName, newPlan.AppName)
	}
	if err := diffRTSJ(oldPlan, newPlan); err != nil {
		return nil, err
	}
	if err := diffTree(oldPlan, newPlan); err != nil {
		return nil, err
	}
	if err := diffPlacement(oldPlan, newPlan); err != nil {
		return nil, err
	}
	if err := diffDistribution(oldPlan, newPlan); err != nil {
		return nil, err
	}

	// Decide, per instance, whether its blueprint changed; deep changes taint
	// the depth-1 ancestor whose subtree a single SMM.Swap replaces.
	swapRoot := make(map[string]string) // depth-1 child -> top-level parent
	taint := func(name string) error {
		ip := newPlan.Instances[name]
		if ip.Parent == "" {
			return fmt.Errorf("%w: top-level instance %q changed; immortal components cannot be swapped live",
				ErrIllegalDelta, name)
		}
		child, parent := name, ip.Parent
		for newPlan.Instances[parent].Parent != "" {
			child, parent = parent, newPlan.Instances[parent].Parent
		}
		swapRoot[child] = parent
		return nil
	}
	for _, name := range newPlan.Order {
		oi, ni := oldPlan.Instances[name].Inst, newPlan.Instances[name].Inst
		if oldPlan.Instances[name].Class.Name != newPlan.Instances[name].Class.Name ||
			oi.MemorySize != ni.MemorySize || oi.UsePool != ni.UsePool ||
			oi.Persistent != ni.Persistent || oi.ScopeLevel != ni.ScopeLevel {
			if err := taint(name); err != nil {
				return nil, err
			}
		}
	}

	// Port-level differences. Ports inside a tainted subtree are re-created
	// by its swap; everything else must either be identical or a legal
	// top-level rewire.
	var addRewires, cutRewires []DeltaStep
	inSwap := func(inst string) bool {
		for cur := inst; cur != ""; cur = newPlan.Instances[cur].Parent {
			if _, ok := swapRoot[cur]; ok {
				return true
			}
		}
		return false
	}
	names := portPlanNames(oldPlan, newPlan)
	for _, qname := range names {
		op, np := portPlanByName(oldPlan, qname), portPlanByName(newPlan, qname)
		inst := qname.inst
		topLevel := newPlan.Instances[inst] != nil && newPlan.Instances[inst].Parent == ""
		switch {
		case op == nil || np == nil:
			// A port that exists in only one plan (connection-materialised).
			if inSwap(inst) {
				continue
			}
			if !topLevel {
				// An In port that merely lost its last connection is benign:
				// the live registration stays, dormant. Anything else — a new
				// port to register, an Out port with stale routes — needs the
				// subtree re-created.
				if np == nil && op.Direction == cdl.In {
					continue
				}
				if err := taint(inst); err != nil {
					return nil, err
				}
				continue
			}
			// A top-level Out port losing every connection is a rewire to
			// nothing; gaining a first-ever port cannot be done live.
			if np == nil && op.Direction == cdl.Out {
				cutRewires = append(cutRewires, DeltaStep{
					Op: OpRewire, Mediator: op.Mediator, Port: op.QualifiedName(), Dests: nil,
				})
				continue
			}
			return nil, fmt.Errorf("%w: port %s.%s appears on a live top-level instance",
				ErrIllegalDelta, qname.inst, qname.port)
		case inSwap(inst):
			continue // the subtree swap re-creates it
		case op.Mediator != np.Mediator:
			return nil, fmt.Errorf("%w: port %s moves mediator %q -> %q; a live port keeps its scoped memory manager",
				ErrIllegalDelta, op.QualifiedName(), op.Mediator, np.Mediator)
		case op.Type != np.Type || op.Direction != np.Direction:
			return nil, fmt.Errorf("%w: port %s changes shape (%s %s -> %s %s)",
				ErrIllegalDelta, op.QualifiedName(), op.Direction, op.Type, np.Direction, np.Type)
		case op.Buffer != np.Buffer || op.Threadpool != np.Threadpool ||
			op.Min != np.Min || op.Max != np.Max || op.HasAttrs != np.HasAttrs:
			if !topLevel {
				if err := taint(inst); err != nil {
					return nil, err
				}
				continue
			}
			return nil, fmt.Errorf("%w: port %s changes live attributes (buffer/threadpool)",
				ErrIllegalDelta, op.QualifiedName())
		case !sameStrings(op.Dests, np.Dests):
			if !topLevel {
				if err := taint(inst); err != nil {
					return nil, err
				}
				continue
			}
			step := DeltaStep{Op: OpRewire, Mediator: np.Mediator, Port: np.QualifiedName(), Dests: np.Dests}
			if coversAll(np.Dests, op.Dests) {
				addRewires = append(addRewires, step)
			} else {
				cutRewires = append(cutRewires, step)
			}
		}
	}

	// Assemble the script: swaps in plan order (parents before children is
	// irrelevant here — swap roots are all depth 1 — but plan order keeps the
	// script deterministic), then make-before-break rewires.
	d := &Delta{Old: oldPlan, New: newPlan}
	for _, name := range newPlan.Order {
		if parent, ok := swapRoot[name]; ok {
			d.Steps = append(d.Steps, DeltaStep{Op: OpSwapChild, Parent: parent, Child: name})
		}
	}
	d.Steps = append(d.Steps, addRewires...)
	d.Steps = append(d.Steps, cutRewires...)
	return d, nil
}

// ChildDefFor builds the core.ChildDef a live SMM.Swap installs for the
// named child instance: the blueprint from the (new) plan, wired by the
// same populate pass Assemble uses, against the running app's component
// tree.
func ChildDefFor(plan *Plan, reg *Registry, app *core.App, child string) (core.ChildDef, error) {
	ip := plan.Instances[child]
	if ip == nil {
		return core.ChildDef{}, fmt.Errorf("%w: no instance %q in plan", ErrCompile, child)
	}
	if ip.Parent == "" {
		return core.ChildDef{}, fmt.Errorf("%w: %q is top-level; only child subtrees swap live", ErrIllegalDelta, child)
	}
	// The same up-front checks Assemble runs, scoped to the subtree, so a
	// swap fails before the live assembly is touched.
	var walk func(name string) error
	walk = func(name string) error {
		sub := plan.Instances[name]
		for _, pp := range sub.Ports {
			if _, ok := reg.types[pp.Type]; !ok {
				return fmt.Errorf("%w: message type %q (port %s) has no registered Go type",
					ErrCompile, pp.Type, pp.QualifiedName())
			}
		}
		if _, ok := reg.bindings[sub.Class.Name]; !ok && len(inPorts(sub)) > 0 {
			return fmt.Errorf("%w: class %q has In ports but no registered binding",
				ErrCompile, sub.Class.Name)
		}
		for _, c := range sub.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(child); err != nil {
		return core.ChildDef{}, err
	}
	asm := &assembler{plan: plan, reg: reg, app: app}
	return core.ChildDef{
		Name:       child,
		MemorySize: ip.Inst.MemorySize,
		UsePool:    ip.Inst.UsePool,
		Persistent: ip.Inst.Persistent,
		Setup:      func(c *core.Component) error { return asm.populate(c) },
	}, nil
}

// diffRTSJ rejects memory-architecture changes: immortal size and scoped
// pools are fixed at process start.
func diffRTSJ(o, n *Plan) error {
	if o.RTSJ.ImmortalSize != n.RTSJ.ImmortalSize {
		return fmt.Errorf("%w: immortal size %d -> %d", ErrIllegalDelta, o.RTSJ.ImmortalSize, n.RTSJ.ImmortalSize)
	}
	if len(o.RTSJ.ScopedPools) != len(n.RTSJ.ScopedPools) {
		return fmt.Errorf("%w: scoped pool set changed", ErrIllegalDelta)
	}
	for i, sp := range o.RTSJ.ScopedPools {
		if sp != n.RTSJ.ScopedPools[i] {
			return fmt.Errorf("%w: scoped pool level %d changed", ErrIllegalDelta, sp.Level)
		}
	}
	return nil
}

// diffTree rejects instance additions, removals, and re-parenting.
func diffTree(o, n *Plan) error {
	for _, name := range o.Order {
		ni := n.Instances[name]
		if ni == nil {
			return fmt.Errorf("%w: instance %q removed; component sets are fixed (swap a subtree to a null version instead)",
				ErrIllegalDelta, name)
		}
		oi := o.Instances[name]
		if oi.Parent != ni.Parent {
			return fmt.Errorf("%w: instance %q re-parented %q -> %q", ErrIllegalDelta, name, oi.Parent, ni.Parent)
		}
	}
	for _, name := range n.Order {
		if o.Instances[name] == nil {
			return fmt.Errorf("%w: instance %q added; component sets are fixed", ErrIllegalDelta, name)
		}
	}
	return nil
}

// diffPlacement rejects node and replica changes — those roll through
// ClusterDeployment.RollingUpgrade, not a live in-process delta.
func diffPlacement(o, n *Plan) error {
	if len(o.Nodes) != len(n.Nodes) {
		return fmt.Errorf("%w: node set changed", ErrIllegalDelta)
	}
	for i, op := range o.Nodes {
		np := n.Nodes[i]
		if op.Node != np.Node || op.Replicas != np.Replicas || !sameStrings(op.Instances, np.Instances) {
			return fmt.Errorf("%w: placement of node %q changed", ErrIllegalDelta, op.Node)
		}
	}
	return nil
}

// diffDistribution rejects export and remote-link changes: they would
// re-wire live ORB endpoints.
func diffDistribution(o, n *Plan) error {
	if len(o.Exports) != len(n.Exports) {
		return fmt.Errorf("%w: export set changed", ErrIllegalDelta)
	}
	for i, oe := range o.Exports {
		if oe != n.Exports[i] {
			return fmt.Errorf("%w: export %s.%s changed", ErrIllegalDelta, oe.Instance, oe.Port)
		}
	}
	if len(o.RemoteConnections) != len(n.RemoteConnections) {
		return fmt.Errorf("%w: remote link set changed", ErrIllegalDelta)
	}
	for i, oc := range o.RemoteConnections {
		nc := n.RemoteConnections[i]
		if oc.FromInstance != nc.FromInstance || oc.FromPort != nc.FromPort ||
			oc.Addr != nc.Addr || oc.Dest != nc.Dest || oc.MessageType != nc.MessageType {
			return fmt.Errorf("%w: remote link %s.%s changed", ErrIllegalDelta, oc.FromInstance, oc.FromPort)
		}
	}
	return nil
}

// portName keys a port plan across two plans.
type portName struct{ inst, port string }

// portPlanNames returns the union of both plans' port-plan names, sorted.
func portPlanNames(o, n *Plan) []portName {
	set := make(map[portName]bool)
	collect := func(p *Plan) {
		for _, name := range p.Order {
			for _, pp := range p.Instances[name].Ports {
				set[portName{pp.Instance, pp.Port}] = true
			}
		}
	}
	collect(o)
	collect(n)
	names := make([]portName, 0, len(set))
	for k := range set {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool {
		if names[i].inst != names[j].inst {
			return names[i].inst < names[j].inst
		}
		return names[i].port < names[j].port
	})
	return names
}

// portPlanByName finds a plan's port plan, or nil.
func portPlanByName(p *Plan, k portName) *PortPlan {
	ip := p.Instances[k.inst]
	if ip == nil {
		return nil
	}
	for _, pp := range ip.Ports {
		if pp.Port == k.port {
			return pp
		}
	}
	return nil
}

// sameStrings compares two string slices element-wise.
func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// coversAll reports whether every element of need appears in have — the
// additive-rewire test (nothing currently routed is cut).
func coversAll(have, need []string) bool {
	set := make(map[string]bool, len(have))
	for _, h := range have {
		set[h] = true
	}
	for _, x := range need {
		if !set[x] {
			return false
		}
	}
	return true
}
