package compiler

import (
	"fmt"

	"repro/internal/ccl"
	"repro/internal/cdl"
	"repro/internal/core"
)

// ClassBinding supplies the programmer-written half of a component class:
// the message handlers for its In ports and the optional start function —
// the code the paper's programmer fills into the generated skeletons.
type ClassBinding struct {
	// NewHandlers returns one handler per In-port name for a fresh
	// instance. It is invoked on every (re)instantiation, so handlers may
	// carry per-instance state. May be nil for classes without In ports.
	NewHandlers func(c *core.Component) (map[string]core.Handler, error)
	// Start runs when an instance starts (the paper's _start). Optional.
	Start func(p *core.Proc) error
}

// Registry maps CDL message type names to concrete Go message types and CDL
// class names to their implementations.
type Registry struct {
	types    map[string]core.MessageType
	bindings map[string]ClassBinding
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		types:    make(map[string]core.MessageType),
		bindings: make(map[string]ClassBinding),
	}
}

// RegisterType binds a CDL message type name to its Go representation.
func (r *Registry) RegisterType(t core.MessageType) error {
	if t.Name == "" || t.New == nil || t.Size <= 0 {
		return fmt.Errorf("%w: invalid message type %q", ErrCompile, t.Name)
	}
	if _, dup := r.types[t.Name]; dup {
		return fmt.Errorf("%w: message type %q registered twice", ErrCompile, t.Name)
	}
	r.types[t.Name] = t
	return nil
}

// Type returns the registered Go representation of a CDL message type.
func (r *Registry) Type(name string) (core.MessageType, bool) {
	t, ok := r.types[name]
	return t, ok
}

// RegisterClass binds a CDL class name to its implementation.
func (r *Registry) RegisterClass(name string, b ClassBinding) error {
	if name == "" {
		return fmt.Errorf("%w: empty class name", ErrCompile)
	}
	if _, dup := r.bindings[name]; dup {
		return fmt.Errorf("%w: class %q registered twice", ErrCompile, name)
	}
	r.bindings[name] = b
	return nil
}

// Assemble builds a runnable core.App from a compiled plan and the
// programmer-supplied implementations — the runtime equivalent of the RTSJ
// glue code the paper's compiler generates. The returned app has not been
// started; call App.Start.
func Assemble(plan *Plan, reg *Registry, opts ...AssembleOption) (*core.App, error) {
	var cfg assembleConfig
	for _, o := range opts {
		o.apply(&cfg)
	}

	// Up-front checks so failures surface before any instantiation.
	for _, name := range plan.Order {
		ip := plan.Instances[name]
		for _, pp := range ip.Ports {
			if _, ok := reg.types[pp.Type]; !ok {
				return nil, fmt.Errorf("%w: message type %q (port %s) has no registered Go type",
					ErrCompile, pp.Type, pp.QualifiedName())
			}
		}
		if _, ok := reg.bindings[ip.Class.Name]; !ok && len(inPorts(ip)) > 0 {
			return nil, fmt.Errorf("%w: class %q has In ports but no registered binding",
				ErrCompile, ip.Class.Name)
		}
	}

	appCfg := core.AppConfig{
		Name:            plan.AppName,
		ImmortalSize:    plan.RTSJ.ImmortalSize,
		MsgPoolCapacity: cfg.msgPoolCapacity,
		OnError:         cfg.onError,
	}
	for _, sp := range plan.RTSJ.ScopedPools {
		appCfg.ScopePools = append(appCfg.ScopePools, core.ScopePoolSpec{
			Level: sp.Level, AreaSize: sp.Size, Count: sp.PoolSize,
		})
	}
	app, err := core.NewApp(appCfg)
	if err != nil {
		return nil, err
	}

	asm := &assembler{plan: plan, reg: reg, app: app}
	// Pass A: create every top-level component so immortal-sibling
	// mediators resolve regardless of document order.
	var tops []*core.Component
	for _, name := range plan.Order {
		ip := plan.Instances[name]
		if ip.Parent != "" {
			continue
		}
		c, err := app.NewImmortalComponent(name, nil)
		if err != nil {
			return nil, err
		}
		tops = append(tops, c)
	}
	// Pass B: wire ports, children, and start functions.
	for _, c := range tops {
		if err := asm.populate(c); err != nil {
			return nil, err
		}
	}
	return app, nil
}

// AssembleOption customises Assemble.
type AssembleOption interface{ apply(*assembleConfig) }

type assembleConfig struct {
	msgPoolCapacity int
	onError         func(error)
}

type msgPoolCapacityOption int

func (o msgPoolCapacityOption) apply(c *assembleConfig) { c.msgPoolCapacity = int(o) }

// WithMsgPoolCapacity overrides the per-type message pool capacity.
func WithMsgPoolCapacity(n int) AssembleOption { return msgPoolCapacityOption(n) }

type onErrorOption func(error)

func (o onErrorOption) apply(c *assembleConfig) { c.onError = o }

// WithOnError installs an asynchronous handler-error callback.
func WithOnError(fn func(error)) AssembleOption { return onErrorOption(fn) }

type assembler struct {
	plan *Plan
	reg  *Registry
	app  *core.App
}

// populate wires one instantiated component per its plan: ports, child
// definitions, and start function.
func (a *assembler) populate(c *core.Component) error {
	ip := a.plan.Instances[c.Name()]
	binding := a.reg.bindings[ip.Class.Name]

	var handlers map[string]core.Handler
	if binding.NewHandlers != nil {
		var err error
		handlers, err = binding.NewHandlers(c)
		if err != nil {
			return fmt.Errorf("class %q handlers for %q: %w", ip.Class.Name, c.Name(), err)
		}
	}

	for _, pp := range ip.Ports {
		smm, err := a.resolveSMM(c, pp.Mediator)
		if err != nil {
			return err
		}
		typ := a.reg.types[pp.Type]
		if pp.Direction == cdl.Out {
			if _, err := core.AddOutPort(c, smm, core.OutPortConfig{
				Name: pp.Port, Type: typ, Dests: pp.Dests,
			}); err != nil {
				return fmt.Errorf("instance %q: %w", c.Name(), err)
			}
			continue
		}
		h := handlers[pp.Port]
		if h == nil {
			return fmt.Errorf("%w: class %q provides no handler for In port %q",
				ErrCompile, ip.Class.Name, pp.Port)
		}
		icfg := core.InPortConfig{
			Name: pp.Port, Type: typ, Handler: h,
			BufferSize: pp.Buffer,
		}
		if pp.HasAttrs {
			switch {
			case pp.Min == 0 && pp.Max == 0:
				icfg.Threading = core.ThreadingSynchronous
			case pp.Threadpool == ccl.Dedicated:
				icfg.Threading = core.ThreadingDedicated
			default:
				icfg.Threading = core.ThreadingShared
			}
			icfg.MinThreads, icfg.MaxThreads = pp.Min, pp.Max
		}
		if _, err := core.AddInPort(c, smm, icfg); err != nil {
			return fmt.Errorf("instance %q: %w", c.Name(), err)
		}
	}

	for _, childName := range ip.Children {
		cp := a.plan.Instances[childName]
		def := core.ChildDef{
			Name:       childName,
			MemorySize: cp.Inst.MemorySize,
			UsePool:    cp.Inst.UsePool,
			Persistent: cp.Inst.Persistent,
			Setup:      func(child *core.Component) error { return a.populate(child) },
		}
		if err := c.DefineChild(def); err != nil {
			return fmt.Errorf("instance %q child %q: %w", c.Name(), childName, err)
		}
	}

	if binding.Start != nil {
		c.SetStart(binding.Start)
	}
	return nil
}

// resolveSMM locates the SMM of the named mediator instance relative to c:
// c itself, one of its ancestors, or (for immortal siblings) a top-level
// component.
func (a *assembler) resolveSMM(c *core.Component, mediator string) (*core.SMM, error) {
	for cc := c; cc != nil; cc = cc.Parent() {
		if cc.Name() == mediator {
			return cc.SMM(), nil
		}
	}
	if top := a.app.Component(mediator); top != nil {
		return top.SMM(), nil
	}
	return nil, fmt.Errorf("%w: mediator %q not reachable from instance %q",
		ErrCompile, mediator, c.Name())
}

func inPorts(ip *InstancePlan) []*PortPlan {
	var out []*PortPlan
	for _, pp := range ip.Ports {
		if pp.Direction == cdl.In {
			out = append(out, pp)
		}
	}
	return out
}
