// Package compiler implements the Compadres compiler: it validates a CCL
// composition against the CDL definitions it draws classes from, plans the
// scoped memory architecture (which SMM mediates each connection, which
// connections are shadow ports), and either assembles the application at
// runtime (Assemble) or emits Go skeleton/glue source (package codegen
// consumes the same Plan).
//
// The validation reproduces §2.2 of the paper: Out ports connect to In
// ports, message types match exactly, connections respect the hierarchy
// (internal links join a parent with its child, external links join
// siblings), there are no loops, and every connection can be mapped onto a
// memory area that both endpoints may legally reference.
package compiler

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ccl"
	"repro/internal/cdl"
)

// ErrCompile is wrapped by every compilation failure.
var ErrCompile = errors.New("compiler: error")

// ConnKind classifies a validated connection.
type ConnKind int

// Connection kinds. Internal joins a parent and a direct child; External
// joins siblings; Shadow joins a component with a non-immediate ancestor
// (detected by the compiler, per Fig. 5 of the paper).
const (
	ConnInternal ConnKind = iota + 1
	ConnExternal
	ConnShadow
)

// String returns the kind name.
func (k ConnKind) String() string {
	switch k {
	case ConnInternal:
		return "internal"
	case ConnExternal:
		return "external"
	case ConnShadow:
		return "shadow"
	default:
		return fmt.Sprintf("ConnKind(%d)", int(k))
	}
}

// Connection is one validated, oriented port connection.
type Connection struct {
	// FromInstance/FromPort is the Out side.
	FromInstance, FromPort string
	// ToInstance/ToPort is the In side.
	ToInstance, ToPort string
	// MessageType is the (matching) type of both ports.
	MessageType string
	// Kind classifies the relationship.
	Kind ConnKind
	// Mediator is the instance whose SMM carries the connection's message
	// pool and buffer.
	Mediator string
}

// PortPlan is the resolved configuration of one instance port.
type PortPlan struct {
	Instance  string
	Port      string
	Direction cdl.Direction
	Type      string
	// Mediator is the instance whose SMM the port registers with.
	Mediator string
	// Dests lists qualified destination names (Out ports only).
	Dests []string
	// Buffer/Threadpool/Min/Max configure In ports. HasAttrs records
	// whether the CCL declared them explicitly: per the paper, explicit
	// zero pool sizes select synchronous dispatch on the sending thread.
	Buffer     int
	Threadpool ccl.Threadpool
	Min, Max   int
	HasAttrs   bool

	mediatorSet bool
}

// QualifiedName returns "Instance.Port".
func (p *PortPlan) QualifiedName() string { return p.Instance + "." + p.Port }

// InstancePlan is the resolved configuration of one component instance.
type InstancePlan struct {
	Inst     *ccl.Instance
	Class    *cdl.Component
	Parent   string // empty for top-level instances
	Level    int
	Ports    []*PortPlan
	Children []string
}

// RemoteConnection is one Remote link: an Out port of a top-level local
// instance feeding an exported In port in another process.
type RemoteConnection struct {
	// FromInstance/FromPort is the local Out side.
	FromInstance, FromPort string
	// Addr is the remote process's ORB endpoint.
	Addr string
	// Dest is the exported remote port's qualified name ("Instance.Port").
	Dest string
	// MessageType is the local port's type (the remote side must agree).
	MessageType string
	// BridgePort is the generated local In-port name that carries the
	// traffic onto the network; the assembler creates it on FromInstance.
	BridgePort string
}

// Export is one In port published on the process's ORB server.
type Export struct {
	// Instance/Port name the local In port.
	Instance, Port string
	// MessageType is the port's type.
	MessageType string
}

// Plan is the compiler's output: everything the runtime assembler or the
// code generator needs.
type Plan struct {
	AppName     string
	RTSJ        ccl.RTSJAttributes
	Defs        *cdl.Definitions
	Order       []string // instance names, parents before children
	Instances   map[string]*InstancePlan
	Connections []Connection
	// RemoteConnections and Exports carry the distributed extension; they
	// are empty for single-process applications. See package deploy.
	RemoteConnections []RemoteConnection
	Exports           []Export
	// Nodes is the placement plan (placement.go): one entry per deployment
	// node, document order; a single default-node entry when the CCL
	// declares no placement. ReplicatedExports maps a replicated node's
	// exported ports ("Instance.Port") to its replica count — the groups a
	// deployment's directory serves.
	Nodes             []*NodePlan
	ReplicatedExports map[string]int
}

// Compile validates app against defs and produces the assembly plan.
func Compile(defs *cdl.Definitions, app *ccl.Application) (*Plan, error) {
	if err := defs.Validate(); err != nil {
		return nil, err
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}

	p := &Plan{
		AppName:   app.Name,
		RTSJ:      app.RTSJ,
		Defs:      defs,
		Instances: make(map[string]*InstancePlan),
	}

	// Pass 1: resolve classes and build the instance tree.
	var build func(inst *ccl.Instance, parent string, level int) error
	build = func(inst *ccl.Instance, parent string, level int) error {
		class := defs.Component(inst.ClassName)
		if class == nil {
			return fmt.Errorf("%w: instance %q: unknown class %q", ErrCompile, inst.InstanceName, inst.ClassName)
		}
		ip := &InstancePlan{Inst: inst, Class: class, Parent: parent, Level: level}
		p.Instances[inst.InstanceName] = ip
		p.Order = append(p.Order, inst.InstanceName)
		for i := range inst.Children {
			child := &inst.Children[i]
			ip.Children = append(ip.Children, child.InstanceName)
			if err := build(child, inst.InstanceName, level+1); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range app.Components {
		if err := build(&app.Components[i], "", 0); err != nil {
			return nil, err
		}
	}

	// Pass 2: normalise links into oriented connections.
	seen := make(map[Connection]ccl.LinkType)
	for _, name := range p.Order {
		ip := p.Instances[name]
		for i := range ip.Inst.Connection.Ports {
			ps := &ip.Inst.Connection.Ports[i]
			port := ip.Class.Port(ps.Name)
			if port == nil {
				return nil, fmt.Errorf("%w: instance %q (class %q) has no port %q",
					ErrCompile, name, ip.Class.Name, ps.Name)
			}
			if ps.Attributes != nil && port.Type != cdl.In {
				return nil, fmt.Errorf("%w: instance %q port %q: PortAttributes on an Out port",
					ErrCompile, name, ps.Name)
			}
			if ps.Exported {
				if port.Type != cdl.In {
					return nil, fmt.Errorf("%w: instance %q port %q: only In ports can be exported",
						ErrCompile, name, ps.Name)
				}
				if ip.Parent != "" {
					return nil, fmt.Errorf("%w: instance %q port %q: only top-level instances' ports can be exported",
						ErrCompile, name, ps.Name)
				}
				p.Exports = append(p.Exports, Export{
					Instance: name, Port: ps.Name, MessageType: port.MessageType,
				})
			}
			for _, link := range ps.Links {
				if link.Type == ccl.Remote {
					if err := p.addRemote(name, ip, port, link); err != nil {
						return nil, err
					}
					continue
				}
				conn, err := p.orient(name, port, link)
				if err != nil {
					return nil, err
				}
				if prevType, dup := seen[*conn]; dup {
					if prevType != link.Type {
						return nil, fmt.Errorf("%w: connection %s.%s -> %s.%s declared with conflicting link types",
							ErrCompile, conn.FromInstance, conn.FromPort, conn.ToInstance, conn.ToPort)
					}
					continue // declared on both ends; keep one
				}
				seen[*conn] = link.Type
				p.Connections = append(p.Connections, *conn)
			}
		}
	}

	// Pass 3: check for loops in the port graph and for self-connections.
	if err := p.checkLoops(); err != nil {
		return nil, err
	}

	// Pass 4: derive per-port plans and check mediator consistency.
	if err := p.buildPortPlans(); err != nil {
		return nil, err
	}

	// Pass 5: placement — node plans, cross-node legality, replica groups.
	if err := p.buildPlacement(); err != nil {
		return nil, err
	}
	return p, nil
}

// orient turns a link declared on (inst, port) into an Out->In connection,
// validating directions, types, the hierarchy relationship, and the
// declared link type.
func (p *Plan) orient(inst string, port *cdl.Port, link ccl.Link) (*Connection, error) {
	other := p.Instances[link.ToComponent]
	if other == nil {
		return nil, fmt.Errorf("%w: instance %q port %q links to unknown instance %q",
			ErrCompile, inst, port.Name, link.ToComponent)
	}
	otherPort := other.Class.Port(link.ToPort)
	if otherPort == nil {
		return nil, fmt.Errorf("%w: instance %q (class %q) has no port %q",
			ErrCompile, link.ToComponent, other.Class.Name, link.ToPort)
	}
	if port.Type == otherPort.Type {
		return nil, fmt.Errorf("%w: %s.%s and %s.%s are both %s ports; Out must connect to In",
			ErrCompile, inst, port.Name, link.ToComponent, link.ToPort, port.Type)
	}
	if port.MessageType != otherPort.MessageType {
		return nil, fmt.Errorf("%w: %s.%s sends %q but %s.%s carries %q; message types must match exactly",
			ErrCompile, inst, port.Name, port.MessageType, link.ToComponent, link.ToPort, otherPort.MessageType)
	}

	conn := &Connection{MessageType: port.MessageType}
	if port.Type == cdl.Out {
		conn.FromInstance, conn.FromPort = inst, port.Name
		conn.ToInstance, conn.ToPort = link.ToComponent, link.ToPort
	} else {
		conn.FromInstance, conn.FromPort = link.ToComponent, link.ToPort
		conn.ToInstance, conn.ToPort = inst, port.Name
	}
	if conn.FromInstance == conn.ToInstance {
		return nil, fmt.Errorf("%w: %s.%s -> %s.%s connects a component to itself",
			ErrCompile, conn.FromInstance, conn.FromPort, conn.ToInstance, conn.ToPort)
	}

	kind, mediator, err := p.classify(conn.FromInstance, conn.ToInstance)
	if err != nil {
		return nil, err
	}
	conn.Kind = kind
	conn.Mediator = mediator

	// The declared link type must agree with the topology. Shadow
	// connections are *detected*, not declared: the paper has programmers
	// specify the direct connection and the compiler recognises it.
	switch kind {
	case ConnInternal:
		if link.Type != ccl.Internal {
			return nil, fmt.Errorf("%w: %s.%s -> %s.%s joins parent and child; link type must be Internal",
				ErrCompile, conn.FromInstance, conn.FromPort, conn.ToInstance, conn.ToPort)
		}
	case ConnExternal:
		if link.Type != ccl.External {
			return nil, fmt.Errorf("%w: %s.%s -> %s.%s joins siblings; link type must be External",
				ErrCompile, conn.FromInstance, conn.FromPort, conn.ToInstance, conn.ToPort)
		}
	case ConnShadow:
		// Either spelling accepted; the compiler records the detection.
	}
	return conn, nil
}

// addRemote records a Remote link: the local Out side of a cross-process
// connection. The remote endpoint is opaque at compile time (its own
// process compiles it), so only the local half is validated.
func (p *Plan) addRemote(inst string, ip *InstancePlan, port *cdl.Port, link ccl.Link) error {
	if port.Type != cdl.Out {
		return fmt.Errorf("%w: instance %q port %q: Remote links attach to Out ports",
			ErrCompile, inst, port.Name)
	}
	if ip.Parent != "" {
		return fmt.Errorf("%w: instance %q port %q: only top-level instances may hold Remote links",
			ErrCompile, inst, port.Name)
	}
	rc := RemoteConnection{
		FromInstance: inst,
		FromPort:     port.Name,
		Addr:         link.RemoteAddr,
		Dest:         link.ToComponent + "." + link.ToPort,
		MessageType:  port.MessageType,
		BridgePort:   fmt.Sprintf("remoteLink%d", len(p.RemoteConnections)),
	}
	p.RemoteConnections = append(p.RemoteConnections, rc)
	return nil
}

// classify determines the relationship between two instances and the SMM
// mediator for their connection.
func (p *Plan) classify(from, to string) (ConnKind, string, error) {
	fi, ti := p.Instances[from], p.Instances[to]
	switch {
	case fi.Parent == to:
		// Child -> parent: the parent's own SMM mediates (internal port).
		return ConnInternal, to, nil
	case ti.Parent == from:
		// Parent -> child.
		return ConnInternal, from, nil
	case fi.Parent == ti.Parent && fi.Parent != "":
		// Siblings: the common parent's SMM mediates.
		return ConnExternal, fi.Parent, nil
	case fi.Parent == "" && ti.Parent == "":
		// Two immortal top-level components: both live in immortal memory,
		// the receiver's SMM mediates.
		return ConnExternal, to, nil
	}
	// Shadow: one endpoint is a non-immediate ancestor of the other. The
	// paper defines the child -> ancestor direction (Fig. 5); the ancestor's
	// own SMM carries the pool and buffer.
	if isAncestor(p, to, from) {
		return ConnShadow, to, nil
	}
	if isAncestor(p, from, to) {
		return ConnShadow, from, nil
	}
	return 0, "", fmt.Errorf("%w: %q and %q are neither parent/child, siblings, nor ancestor/descendant; no legal memory area can carry their messages",
		ErrCompile, from, to)
}

// isAncestor reports whether anc is a strict ancestor of inst.
func isAncestor(p *Plan, anc, inst string) bool {
	for cur := p.Instances[inst].Parent; cur != ""; cur = p.Instances[cur].Parent {
		if cur == anc {
			return true
		}
	}
	return false
}

// checkLoops rejects cycles in the port graph. Connections only run Out->In
// across components, so a cycle requires a chain of connections returning to
// the very same In port through components' internal forwarding; the
// compiler conservatively rejects exact duplicate edges (already deduped)
// and cycles over the port graph in which each component is assumed to
// forward from every In port to every Out port.
func (p *Plan) checkLoops() error {
	// Conservative component-level graph, excluding request/reply pairs:
	// an edge A->B and an edge B->A between the *same pair* of components
	// is the ubiquitous request-reply idiom, which the paper's own
	// client-server example uses; a loop through three or more components
	// is rejected.
	adj := make(map[string]map[string]bool)
	for _, c := range p.Connections {
		if adj[c.FromInstance] == nil {
			adj[c.FromInstance] = make(map[string]bool)
		}
		adj[c.FromInstance][c.ToInstance] = true
	}
	state := make(map[string]int) // 0 unvisited, 1 in stack, 2 done
	var stack []string
	var dfs func(n string) error
	dfs = func(n string) error {
		state[n] = 1
		stack = append(stack, n)
		for m := range adj[n] {
			// Skip the immediate back-edge of a request-reply pair.
			if len(stack) >= 2 && stack[len(stack)-2] == m {
				continue
			}
			switch state[m] {
			case 0:
				if err := dfs(m); err != nil {
					return err
				}
			case 1:
				return fmt.Errorf("%w: connection loop detected through %q and %q", ErrCompile, n, m)
			}
		}
		stack = stack[:len(stack)-1]
		state[n] = 2
		return nil
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		if state[n] == 0 {
			if err := dfs(n); err != nil {
				return err
			}
		}
	}
	return nil
}

// buildPortPlans derives one PortPlan per declared port, aggregating
// connection destinations and enforcing that all connections of a port
// agree on a single mediator SMM.
func (p *Plan) buildPortPlans() error {
	plans := make(map[string]*PortPlan)
	get := func(inst, port string) *PortPlan {
		key := inst + "." + port
		if pp, ok := plans[key]; ok {
			return pp
		}
		ip := p.Instances[inst]
		cp := ip.Class.Port(port)
		pp := &PortPlan{
			Instance:  inst,
			Port:      port,
			Direction: cp.Type,
			Type:      cp.MessageType,
			Mediator:  inst, // provisional; fixed by connections
		}
		plans[key] = pp
		ip.Ports = append(ip.Ports, pp)
		return pp
	}

	for _, c := range p.Connections {
		from := get(c.FromInstance, c.FromPort)
		to := get(c.ToInstance, c.ToPort)
		if err := setMediator(from, c.Mediator); err != nil {
			return err
		}
		if err := setMediator(to, c.Mediator); err != nil {
			return err
		}
		from.Dests = append(from.Dests, c.ToInstance+"."+c.ToPort)
	}

	// Remote links: the Out port targets a generated bridge In port on the
	// same (top-level) instance, so both register with that instance's SMM.
	for _, rc := range p.RemoteConnections {
		from := get(rc.FromInstance, rc.FromPort)
		if err := setMediator(from, rc.FromInstance); err != nil {
			return err
		}
		from.Dests = append(from.Dests, rc.FromInstance+"."+rc.BridgePort)
	}

	// Fold CCL port attributes into the In-port plans; also materialise
	// declared-but-unconnected ports so skeleton generation sees them.
	for _, name := range p.Order {
		ip := p.Instances[name]
		for i := range ip.Inst.Connection.Ports {
			ps := &ip.Inst.Connection.Ports[i]
			pp := get(name, ps.Name)
			if ps.Attributes != nil {
				pp.Buffer = ps.Attributes.BufferSize
				pp.Threadpool = ps.Attributes.Threadpool
				pp.Min = ps.Attributes.MinThreadpoolSize
				pp.Max = ps.Attributes.MaxThreadpoolSize
				pp.HasAttrs = true
			}
		}
	}
	return nil
}

// setMediator records a mediator requirement on a port plan, rejecting
// conflicts: a port registers with exactly one SMM.
func setMediator(pp *PortPlan, mediator string) error {
	if !pp.mediatorSet {
		pp.Mediator = mediator
		pp.mediatorSet = true
		return nil
	}
	if pp.Mediator != mediator {
		return fmt.Errorf("%w: port %s needs SMMs of both %q and %q; a port registers with exactly one scoped memory manager",
			ErrCompile, pp.QualifiedName(), pp.Mediator, mediator)
	}
	return nil
}

// Connection lookups for tests and tools.

// ConnectionsFrom returns the connections whose Out side is inst.
func (p *Plan) ConnectionsFrom(inst string) []Connection {
	var out []Connection
	for _, c := range p.Connections {
		if c.FromInstance == inst {
			out = append(out, c)
		}
	}
	return out
}

// Port returns the plan for inst.port, or nil.
func (p *Plan) Port(inst, port string) *PortPlan {
	ip := p.Instances[inst]
	if ip == nil {
		return nil
	}
	for _, pp := range ip.Ports {
		if pp.Port == port {
			return pp
		}
	}
	return nil
}
