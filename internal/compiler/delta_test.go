package compiler

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cdl"
)

// deltaDefs declares two versions of a worker class plus the hub that hosts
// them, so class swaps and rewires both have material to diff.
const deltaDefs = `
<ComponentDefinitions>
  <Component>
    <ComponentName>Hub</ComponentName>
    <Port><PortName>feedA</PortName><PortType>Out</PortType><MessageType>Int</MessageType></Port>
    <Port><PortName>feedB</PortName><PortType>Out</PortType><MessageType>Int</MessageType></Port>
    <Port><PortName>collect</PortName><PortType>In</PortType><MessageType>Int</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>WorkerV1</ComponentName>
    <Port><PortName>in</PortName><PortType>In</PortType><MessageType>Int</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>WorkerV2</ComponentName>
    <Port><PortName>in</PortName><PortType>In</PortType><MessageType>Int</MessageType></Port>
  </Component>
</ComponentDefinitions>`

// deltaApp builds the CCL document for a hub with two worker children; the
// class of worker W and the destinations of feedA are parameterised so
// tests can produce variants.
func deltaApp(workerClass, feedADest string, memW int) string {
	return fmt.Sprintf(`
<Application>
  <ApplicationName>Delta</ApplicationName>
  <Component>
    <InstanceName>H</InstanceName>
    <ClassName>Hub</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port>
        <PortName>feedA</PortName>
        <Link><PortType>Internal</PortType><ToComponent>%s</ToComponent><ToPort>in</ToPort></Link>
      </Port>
      <Port>
        <PortName>feedB</PortName>
        <Link><PortType>Internal</PortType><ToComponent>X</ToComponent><ToPort>in</ToPort></Link>
      </Port>
      <Port>
        <PortName>collect</PortName>
        <PortAttributes><BufferSize>4</BufferSize><Threadpool>Shared</Threadpool><MinThreadpoolSize>1</MinThreadpoolSize><MaxThreadpoolSize>1</MaxThreadpoolSize></PortAttributes>
      </Port>
    </Connection>
    <Component>
      <InstanceName>W</InstanceName>
      <ClassName>%s</ClassName>
      <ComponentType>Scoped</ComponentType>
      <MemorySize>%d</MemorySize>
    </Component>
    <Component>
      <InstanceName>X</InstanceName>
      <ClassName>WorkerV1</ClassName>
      <ComponentType>Scoped</ComponentType>
      <MemorySize>16384</MemorySize>
    </Component>
  </Component>
</Application>`, feedADest, workerClass, memW)
}

func deltaDefinitions(t *testing.T) *cdl.Definitions {
	t.Helper()
	defs, err := cdl.Parse(strings.NewReader(deltaDefs))
	if err != nil {
		t.Fatal(err)
	}
	return defs
}

func compileDelta(t *testing.T, doc string) *Plan {
	t.Helper()
	plan, err := Compile(deltaDefinitions(t), mustApp(t, doc))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestDiffEmptyForIdenticalPlans(t *testing.T) {
	a := compileDelta(t, deltaApp("WorkerV1", "W", 16384))
	b := compileDelta(t, deltaApp("WorkerV1", "W", 16384))
	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("identical plans produced steps: %+v", d.Steps)
	}
}

func TestDiffClassChangeBecomesSwap(t *testing.T) {
	a := compileDelta(t, deltaApp("WorkerV1", "W", 16384))
	b := compileDelta(t, deltaApp("WorkerV2", "W", 16384))
	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Steps) != 1 {
		t.Fatalf("steps = %+v, want one swap", d.Steps)
	}
	s := d.Steps[0]
	if s.Op != OpSwapChild || s.Parent != "H" || s.Child != "W" {
		t.Fatalf("step = %+v", s)
	}
}

func TestDiffMemoryChangeBecomesSwap(t *testing.T) {
	a := compileDelta(t, deltaApp("WorkerV1", "W", 16384))
	b := compileDelta(t, deltaApp("WorkerV1", "W", 32768))
	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Steps) != 1 || d.Steps[0].Op != OpSwapChild || d.Steps[0].Child != "W" {
		t.Fatalf("steps = %+v, want one swap of W", d.Steps)
	}
}

func TestDiffDestChangeBecomesRewire(t *testing.T) {
	a := compileDelta(t, deltaApp("WorkerV1", "W", 16384))
	b := compileDelta(t, deltaApp("WorkerV1", "X", 16384)) // feedA now feeds X
	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Steps) != 1 {
		t.Fatalf("steps = %+v, want one rewire", d.Steps)
	}
	s := d.Steps[0]
	if s.Op != OpRewire || s.Mediator != "H" || s.Port != "H.feedA" {
		t.Fatalf("step = %+v", s)
	}
	if len(s.Dests) != 1 || s.Dests[0] != "X.in" {
		t.Fatalf("dests = %v", s.Dests)
	}
}

func TestDiffOrdersSwapsBeforeRewires(t *testing.T) {
	a := compileDelta(t, deltaApp("WorkerV1", "W", 16384))
	b := compileDelta(t, deltaApp("WorkerV2", "X", 16384)) // swap W AND rewire feedA
	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Steps) != 2 {
		t.Fatalf("steps = %+v, want swap then rewire", d.Steps)
	}
	if d.Steps[0].Op != OpSwapChild || d.Steps[1].Op != OpRewire {
		t.Fatalf("order = %v then %v, want swap-child then rewire", d.Steps[0].Op, d.Steps[1].Op)
	}
}

// TestDiffRejectsIllegal covers the rejection catalogue: everything a live
// assembly cannot absorb must fail Diff with ErrIllegalDelta.
func TestDiffRejectsIllegal(t *testing.T) {
	base := deltaApp("WorkerV1", "W", 16384)

	cases := []struct {
		name string
		edit func(doc string) string
	}{
		{"instance removed", func(doc string) string {
			// Drop X and the feedB port that links to it, so the variant
			// still compiles — the delta must still refuse the removal.
			doc = strings.Replace(doc, `      <Port>
        <PortName>feedB</PortName>
        <Link><PortType>Internal</PortType><ToComponent>X</ToComponent><ToPort>in</ToPort></Link>
      </Port>
`, "", 1)
			return strings.Replace(doc, `    <Component>
      <InstanceName>X</InstanceName>
      <ClassName>WorkerV1</ClassName>
      <ComponentType>Scoped</ComponentType>
      <MemorySize>16384</MemorySize>
    </Component>
`, "", 1)
		}},
		{"app renamed", func(doc string) string {
			return strings.Replace(doc, "<ApplicationName>Delta</ApplicationName>", "<ApplicationName>Other</ApplicationName>", 1)
		}},
		{"top-level attrs changed", func(doc string) string {
			return strings.Replace(doc, "<ClassName>Hub</ClassName>",
				"<ClassName>Hub</ClassName>\n    <MemorySize>4096</MemorySize>", 1)
		}},
		{"port attrs changed", func(doc string) string {
			return strings.Replace(doc, "<BufferSize>4</BufferSize>", "<BufferSize>8</BufferSize>", 1)
		}},
		{"placement changed", func(doc string) string {
			return strings.Replace(doc, "<ComponentType>Immortal</ComponentType>",
				"<ComponentType>Immortal</ComponentType>\n    <Node>n2</Node>", 1)
		}},
	}
	a := compileDelta(t, base)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			edited := tc.edit(base)
			if edited == base {
				t.Fatal("edit was a no-op; test bug")
			}
			b := compileDelta(t, edited)
			if _, err := Diff(a, b); !errors.Is(err, ErrIllegalDelta) {
				t.Fatalf("Diff = %v, want ErrIllegalDelta", err)
			}
		})
	}
}

func TestDiffAdditiveRewireOrderedFirst(t *testing.T) {
	one := deltaApp("WorkerV1", "W", 16384)
	// Variant: feedA fans out to both workers (additive), feedB loses X
	// (cut). Additive must come before the cut.
	both := strings.Replace(one, `<PortName>feedA</PortName>
        <Link><PortType>Internal</PortType><ToComponent>W</ToComponent><ToPort>in</ToPort></Link>`,
		`<PortName>feedA</PortName>
        <Link><PortType>Internal</PortType><ToComponent>W</ToComponent><ToPort>in</ToPort></Link>
        <Link><PortType>Internal</PortType><ToComponent>X</ToComponent><ToPort>in</ToPort></Link>`, 1)
	a := compileDelta(t, one)
	b := compileDelta(t, both)
	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Steps) != 1 || d.Steps[0].Op != OpRewire {
		t.Fatalf("steps = %+v", d.Steps)
	}
	if !coversAll(d.Steps[0].Dests, []string{"W.in", "X.in"}) {
		t.Fatalf("dests = %v, want both workers", d.Steps[0].Dests)
	}

	// And the reverse direction is a cut, still a single legal rewire.
	back, err := Diff(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Steps) != 1 || back.Steps[0].Op != OpRewire || len(back.Steps[0].Dests) != 1 {
		t.Fatalf("reverse steps = %+v", back.Steps)
	}
}
