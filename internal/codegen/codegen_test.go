package codegen

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/ccl"
	"repro/internal/cdl"
	"repro/internal/compiler"
)

const defsDoc = `
<ComponentDefinitions>
  <Component>
    <ComponentName>Server</ComponentName>
    <Port><PortName>DataOut</PortName><PortType>Out</PortType><MessageType>StringMsg</MessageType></Port>
    <Port><PortName>DataIn</PortName><PortType>In</PortType><MessageType>CustomType</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>Calculator</ComponentName>
    <Port><PortName>DataOut</PortName><PortType>Out</PortType><MessageType>CustomType</MessageType></Port>
  </Component>
</ComponentDefinitions>`

const appDoc = `
<Application>
  <ApplicationName>MyApp</ApplicationName>
  <Component>
    <InstanceName>MyServer</InstanceName>
    <ClassName>Server</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port>
        <PortName>DataIn</PortName>
        <Link><PortType>Internal</PortType><ToComponent>MyCalculator</ToComponent><ToPort>DataOut</ToPort></Link>
      </Port>
    </Connection>
    <Component>
      <InstanceName>MyCalculator</InstanceName>
      <ClassName>Calculator</ClassName>
      <ComponentType>Scoped</ComponentType>
      <MemorySize>16384</MemorySize>
    </Component>
  </Component>
</Application>`

func parseGo(t *testing.T, f File) {
	t.Helper()
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, f.Name, f.Source, parser.AllErrors); err != nil {
		t.Errorf("%s does not parse: %v\n%s", f.Name, err, f.Source)
	}
}

func TestGenerateSkeletons(t *testing.T) {
	defs, err := cdl.Parse(strings.NewReader(defsDoc))
	if err != nil {
		t.Fatal(err)
	}
	files, err := GenerateSkeletons(defs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 { // types + 2 components
		t.Fatalf("files = %d, want 3", len(files))
	}
	byName := map[string]File{}
	for _, f := range files {
		parseGo(t, f)
		byName[f.Name] = f
	}

	types := string(byName["message_types.go"].Source)
	for _, want := range []string{"type StringMsg struct", "type CustomType struct", "func (s *StringMsg) Reset()", "stringMsgType = core.MessageType"} {
		if !strings.Contains(types, want) {
			t.Errorf("message_types.go missing %q", want)
		}
	}

	server := string(byName["server_component.go"].Source)
	for _, want := range []string{
		"type Server struct",
		"func NewServer() *Server",
		"func (s *Server) ProcessDataIn(p *core.Proc, msg core.Message) error",
		"data := msg.(*CustomType)",
		"func (s *Server) Start(p *core.Proc) error",
		"func (s *Server) Binding() compiler.ClassBinding",
		`"DataIn": core.HandlerFunc(s.ProcessDataIn)`,
	} {
		if !strings.Contains(server, want) {
			t.Errorf("server_component.go missing %q", want)
		}
	}

	calc := string(byName["calculator_component.go"].Source)
	if strings.Contains(calc, "NewHandlers") {
		t.Error("calculator (no In ports) should not wire NewHandlers")
	}
}

func TestGenerateGlue(t *testing.T) {
	defs, err := cdl.Parse(strings.NewReader(defsDoc))
	if err != nil {
		t.Fatal(err)
	}
	app, err := ccl.Parse(strings.NewReader(appDoc))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := compiler.Compile(defs, app)
	if err != nil {
		t.Fatal(err)
	}
	glue, err := GenerateGlue(plan, defsDoc, appDoc, Options{Package: "myapp"})
	if err != nil {
		t.Fatal(err)
	}
	parseGo(t, glue)
	src := string(glue.Source)
	for _, want := range []string{
		"package myapp",
		"func NewApp(opts ...compiler.AssembleOption) (*core.App, error)",
		"reg.RegisterType(stringMsgType)",
		"reg.RegisterType(customTypeType)",
		`reg.RegisterClass("Server", NewServer().Binding())`,
		`reg.RegisterClass("Calculator", NewCalculator().Binding())`,
		"compiler.Assemble(plan, reg, opts...)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("glue missing %q", want)
		}
	}
}

func TestIdentifierSanitisation(t *testing.T) {
	tests := []struct {
		give       string
		wantExport string
		wantLower  string
	}{
		{"Server", "Server", "server"},
		{"my-type", "Mytype", "mytype"},
		{"9lives", "X9lives", "x9lives"},
		{"---", "X", "x"},
	}
	for _, tt := range tests {
		if got := exportIdent(tt.give); got != tt.wantExport {
			t.Errorf("exportIdent(%q) = %q, want %q", tt.give, got, tt.wantExport)
		}
		if got := lowerIdent(tt.give); got != tt.wantLower {
			t.Errorf("lowerIdent(%q) = %q, want %q", tt.give, got, tt.wantLower)
		}
	}
}

func TestEscapeBackquote(t *testing.T) {
	in := "a `quoted` doc"
	out := escapeBackquote(in)
	// Each backquote is closed out of the raw literal and concatenated as
	// an interpreted string.
	if want := "a ` + \"`\" + `quoted` + \"`\" + ` doc"; out != want {
		t.Errorf("escapeBackquote = %q, want %q", out, want)
	}
	// The construct must survive embedding in a raw literal: generate a
	// tiny file and parse it.
	src := "package x\n\nconst doc = `" + out + "`\n"
	if _, err := parser.ParseFile(token.NewFileSet(), "x.go", src, 0); err != nil {
		t.Errorf("escaped literal does not parse: %v", err)
	}
}

const distributedAppDoc = `
<Application>
  <ApplicationName>Dist</ApplicationName>
  <Component>
    <InstanceName>MyServer</InstanceName>
    <ClassName>Server</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port>
        <PortName>DataIn</PortName>
        <Exported>true</Exported>
      </Port>
      <Port>
        <PortName>DataOut</PortName>
        <Link>
          <PortType>Remote</PortType>
          <ToComponent>Peer</ToComponent>
          <ToPort>in</ToPort>
          <RemoteAddr>peer-host:9999</RemoteAddr>
        </Link>
      </Port>
    </Connection>
  </Component>
</Application>`

func TestGenerateGlueDistributed(t *testing.T) {
	defs, err := cdl.Parse(strings.NewReader(defsDoc))
	if err != nil {
		t.Fatal(err)
	}
	app, err := ccl.Parse(strings.NewReader(distributedAppDoc))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := compiler.Compile(defs, app)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Exports) != 1 || len(plan.RemoteConnections) != 1 {
		t.Fatalf("plan exports=%d remotes=%d", len(plan.Exports), len(plan.RemoteConnections))
	}
	glue, err := GenerateGlue(plan, defsDoc, distributedAppDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	parseGo(t, glue)
	src := string(glue.Source)
	for _, want := range []string{
		`"repro/internal/deploy"`,
		"func NewDeployment(cfg deploy.Config, opts ...compiler.AssembleOption) (*deploy.Deployment, error)",
		"deploy.Run(plan, reg, cfg, opts...)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("distributed glue missing %q", want)
		}
	}
}
