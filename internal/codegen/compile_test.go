package codegen

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/ccl"
	"repro/internal/cdl"
	"repro/internal/compiler"
)

// moduleRoot walks up from this source file to the directory with go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	dir := filepath.Dir(file)
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found")
		}
		dir = parent
	}
}

// TestGeneratedCodeCompiles generates the full skeleton+glue output into a
// temporary package inside this module and runs the real Go compiler over
// it — the strongest possible check that compadresc's output is usable
// as-is, TODO stubs included.
func TestGeneratedCodeCompiles(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the Go toolchain")
	}
	root := moduleRoot(t)
	genDir, err := os.MkdirTemp(root, "codegen_compiletest_")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(genDir)

	defs, err := cdl.Parse(strings.NewReader(defsDoc))
	if err != nil {
		t.Fatal(err)
	}
	app, err := ccl.Parse(strings.NewReader(appDoc))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := compiler.Compile(defs, app)
	if err != nil {
		t.Fatal(err)
	}

	pkg := filepath.Base(genDir)
	files, err := GenerateSkeletons(defs, Options{Package: pkg})
	if err != nil {
		t.Fatal(err)
	}
	glue, err := GenerateGlue(plan, defsDoc, appDoc, Options{Package: pkg})
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, glue)
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(genDir, f.Name), f.Source, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cmd := exec.Command("go", "build", "./"+pkg)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generated package does not compile: %v\n%s", err, out)
	}

	// And vet it, since the harness-generated code claims production
	// quality.
	cmd = exec.Command("go", "vet", "./"+pkg)
	cmd.Dir = root
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generated package fails vet: %v\n%s", err, out)
	}
}
