package remote

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/sched"
	"repro/internal/transport"
)

// wireMsg is a serializable message for cross-process port traffic.
type wireMsg struct {
	value int64
}

func (m *wireMsg) Reset() { m.value = 0 }

func (m *wireMsg) MarshalBinary() ([]byte, error) {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(m.value))
	return b, nil
}

func (m *wireMsg) UnmarshalBinary(b []byte) error {
	if len(b) != 8 {
		return errors.New("wireMsg: bad length")
	}
	m.value = int64(binary.BigEndian.Uint64(b))
	return nil
}

var wireType = core.MessageType{Name: "Wire", Size: 32, New: func() core.Message { return &wireMsg{} }}

// plainMsg lacks binary marshalling.
type plainMsg struct{ v int }

func (m *plainMsg) Reset() { m.v = 0 }

var plainType = core.MessageType{Name: "Plain", Size: 16, New: func() core.Message { return &plainMsg{} }}

// startRemoteSink builds the serving process: an ORB server plus a local
// component app whose Sink.in port is exported. Received values appear on
// the returned channel, tagged with the priority they were dispatched at.
func startRemoteSink(t *testing.T, net transport.Network) (*orb.Server, chan [2]int64) {
	t.Helper()
	got := make(chan [2]int64, 16)

	app, err := core.NewApp(core.AppConfig{Name: "serverApp"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Stop)
	sink, err := app.NewImmortalComponent("Sink", func(c *core.Component) error {
		_, err := core.AddInPort(c, c.SMM(), core.InPortConfig{
			Name: "in", Type: wireType,
			Handler: core.HandlerFunc(func(p *core.Proc, m core.Message) error {
				got <- [2]int64{m.(*wireMsg).value, int64(p.Priority())}
				return nil
			}),
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	srv, err := orb.NewServer(orb.ServerConfig{Network: net})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	if err := Export(srv, sink.SMM(), "Sink.in", wireType); err != nil {
		t.Fatal(err)
	}
	srv.ServeBackground()
	return srv, got
}

func recvTagged(t *testing.T, ch chan [2]int64) [2]int64 {
	t.Helper()
	select {
	case v := <-ch:
		return v
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for remote delivery")
		return [2]int64{}
	}
}

func TestProxySendReachesExportedPort(t *testing.T) {
	net := transport.NewInproc()
	srv, got := startRemoteSink(t, net)

	cl, err := orb.DialClient(orb.ClientConfig{Network: net, Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	proxy, err := NewProxy(cl, "Sink.in", wireType, true /* ackd */)
	if err != nil {
		t.Fatal(err)
	}
	msg := proxy.GetMessage()
	msg.(*wireMsg).value = 77
	if err := proxy.Send(msg, 9); err != nil {
		t.Fatal(err)
	}
	v := recvTagged(t, got)
	if v[0] != 77 {
		t.Errorf("value = %d, want 77", v[0])
	}
	// The RT-CORBA priority propagated across the wire.
	if v[1] != 9 {
		t.Errorf("priority = %d, want 9", v[1])
	}
}

func TestOnewayProxy(t *testing.T) {
	net := transport.NewInproc()
	srv, got := startRemoteSink(t, net)
	cl, err := orb.DialClient(orb.ClientConfig{Network: net, Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	proxy, err := NewProxy(cl, "Sink.in", wireType, false /* oneway */)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		msg := proxy.GetMessage()
		msg.(*wireMsg).value = i
		if err := proxy.Send(msg, sched.NormPriority); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[int64]bool{}
	for i := 0; i < 3; i++ {
		seen[recvTagged(t, got)[0]] = true
	}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Errorf("seen = %v", seen)
	}
}

func TestBindMakesRemotePortLocallyAddressable(t *testing.T) {
	net := transport.NewInproc()
	srv, got := startRemoteSink(t, net)
	cl, err := orb.DialClient(orb.ClientConfig{Network: net, Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	proxy, err := NewProxy(cl, "Sink.in", wireType, true)
	if err != nil {
		t.Fatal(err)
	}

	// The client-side app: Source sends through an ordinary port connection
	// to Bridge.toSink, which remote.Bind forwards across the network.
	app, err := core.NewApp(core.AppConfig{Name: "clientApp"})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	bridge, err := app.NewImmortalComponent("Bridge", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Bind(bridge, bridge.SMM(), "toSink", proxy); err != nil {
		t.Fatal(err)
	}
	source, err := app.NewImmortalComponent("Source", nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.AddOutPort(source, bridge.SMM(), core.OutPortConfig{
		Name: "emit", Type: wireType, Dests: []string{"Bridge.toSink"},
	})
	if err != nil {
		t.Fatal(err)
	}

	msg, err := out.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	msg.(*wireMsg).value = 1234
	if err := out.Send(msg, 5); err != nil {
		t.Fatal(err)
	}
	v := recvTagged(t, got)
	if v[0] != 1234 {
		t.Errorf("value = %d", v[0])
	}
	if v[1] != 5 {
		t.Errorf("priority = %d, want 5 (propagated end to end)", v[1])
	}
	if n, err := app.Errors(); n != 0 {
		t.Errorf("bridge handler errors: %d (%v)", n, err)
	}
}

func TestNonSerializableRejected(t *testing.T) {
	net := transport.NewInproc()
	srv, _ := startRemoteSink(t, net)
	cl, err := orb.DialClient(orb.ClientConfig{Network: net, Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := NewProxy(cl, "Sink.in", plainType, true); !errors.Is(err, ErrNotSerializable) {
		t.Errorf("proxy err = %v", err)
	}

	app, err := core.NewApp(core.AppConfig{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	comp, err := app.NewImmortalComponent("C", func(c *core.Component) error {
		_, err := core.AddInPort(c, c.SMM(), core.InPortConfig{
			Name: "in", Type: plainType,
			Handler: core.HandlerFunc(func(*core.Proc, core.Message) error { return nil }),
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := orb.NewServer(orb.ServerConfig{Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if err := Export(srv2, comp.SMM(), "C.in", plainType); !errors.Is(err, ErrNotSerializable) {
		t.Errorf("export err = %v", err)
	}
}

func TestExportUnknownOperation(t *testing.T) {
	net := transport.NewInproc()
	srv, _ := startRemoteSink(t, net)
	cl, err := orb.DialClient(orb.ClientConfig{Network: net, Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Invoke("port:Sink.in", "frobnicate", nil, sched.NormPriority); err == nil {
		t.Error("unknown operation accepted")
	}
}

// TestProxyConcurrentSendsPipeline pins the multiplexed-client contract at
// the remote-port surface: many goroutines pushing acknowledged Sends
// through one proxy pipeline over the client's single GIOP connection, and
// every message arrives exactly once.
func TestProxyConcurrentSendsPipeline(t *testing.T) {
	net := transport.NewInproc()
	srv, got := startRemoteSink(t, net)
	cl, err := orb.DialClient(orb.ClientConfig{Network: net, Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	proxy, err := NewProxy(cl, "Sink.in", wireType, true /* ackd */)
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 16, 20
	seen := make(map[int64]int, workers*perWorker)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for i := 0; i < workers*perWorker; i++ {
			select {
			case v := <-got:
				seen[v[0]]++
			case <-time.After(5 * time.Second):
				return // drained-count check below reports the shortfall
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				msg := proxy.GetMessage()
				msg.(*wireMsg).value = int64(w)<<16 | int64(i)
				if err := proxy.Send(msg, sched.NormPriority); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	<-drained

	if len(seen) != workers*perWorker {
		t.Fatalf("distinct values = %d, want %d", len(seen), workers*perWorker)
	}
	for v, n := range seen {
		if n != 1 {
			t.Errorf("value %d delivered %d times", v, n)
		}
	}
	if n := cl.Inflight(); n != 0 {
		t.Errorf("in-flight after drain = %d, want 0", n)
	}
}
