// Package remote implements the paper's stated future work: "code
// generation for transparently handling remote communication over a
// network" — here delivered as a library that stretches a port connection
// across two processes using the Compadres ORB.
//
// On the serving side, Export publishes a local In port: a servant keyed
// "port:<Component.Port>" decodes arriving messages and sends them into the
// port at the propagated RT-CORBA priority. On the calling side, NewProxy
// binds to an exported port, and Bind grafts the proxy onto a local In port
// so that ordinary components — which only ever talk to ports — reach the
// remote component without knowing a network exists:
//
//	local Out port ──> bridge In port ──(ORB/GIOP)──> exported remote In port
//
// Messages crossing the network must implement encoding.BinaryMarshaler and
// encoding.BinaryUnmarshaler; this is the serialization cross-scope
// mechanism of §2.2 applied across address spaces, where the shared-object
// mechanism cannot reach.
//
// All proxies built on one client share that client's single multiplexed
// GIOP connection: concurrent Sends — through one proxy or many — pipeline
// over it rather than serialising whole exchanges, so a bridge carrying
// several components' traffic never queues one port's messages behind
// another port's round trip.
package remote

import (
	"encoding"
	"fmt"

	"repro/internal/corba"
	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/sched"
)

// keyPrefix namespaces exported ports in the servant registry.
const keyPrefix = "port:"

// PortKey returns the servant-registry object key of the exported port named
// dest ("Component.Port") — the key Locate probes carry and group
// directories (internal/cluster) index their membership under.
func PortKey(dest string) string { return keyPrefix + dest }

// ErrNotSerializable reports a message type without binary marshalling,
// which cannot cross the network.
var ErrNotSerializable = fmt.Errorf("remote: message type is not binary-(un)marshalable")

// Export publishes the In port named dest (qualified, "Component.Port",
// mediated by smm) on the ORB server. Arriving messages are drawn from the
// SMM's pool for typ, decoded, and sent into the port at the priority the
// caller propagated.
func Export(srv *orb.Server, smm *core.SMM, dest string, typ core.MessageType) error {
	if !isSerializable(typ) {
		return fmt.Errorf("%w: %q", ErrNotSerializable, typ.Name)
	}
	// A relay Out port owned by the SMM's owner feeds the exported port;
	// the network-facing servant never touches SMM internals.
	relayName := "remoteExport_" + sanitizePort(dest)
	relay, err := core.AddOutPort(smm.Owner(), smm, core.OutPortConfig{
		Name: relayName, Type: typ, Dests: []string{dest},
	})
	if err != nil {
		return fmt.Errorf("remote export %q: %w", dest, err)
	}
	srv.RegisterServant(keyPrefix+dest, &exportServant{relay: relay, typ: typ})
	return nil
}

// exportServant decodes one message per "send" invocation and relays it
// into the exported port.
type exportServant struct {
	relay *core.OutPort
	typ   core.MessageType
}

// Invoke implements corba.Servant (normal-priority fallback).
func (s *exportServant) Invoke(op string, in []byte) ([]byte, error) {
	return s.InvokeWithPriority(op, in, byte(sched.NormPriority))
}

// InvokeWithPriority implements corba.PrioritizedServant.
func (s *exportServant) InvokeWithPriority(op string, in []byte, priority byte) ([]byte, error) {
	if op != "send" {
		return nil, fmt.Errorf("remote: exported port has no operation %q", op)
	}
	msg, err := s.relay.GetMessage()
	if err != nil {
		return nil, err
	}
	um, ok := msg.(encoding.BinaryUnmarshaler)
	if !ok {
		s.relay.PutBack(msg)
		return nil, fmt.Errorf("%w: %q", ErrNotSerializable, s.typ.Name)
	}
	if err := um.UnmarshalBinary(in); err != nil {
		s.relay.PutBack(msg)
		return nil, fmt.Errorf("remote: decode %q: %w", s.typ.Name, err)
	}
	if err := s.relay.Send(msg, sched.Priority(priority)); err != nil {
		return nil, err
	}
	return nil, nil
}

// Proxy sends messages to an exported remote port through an ORB client.
// Proxies are safe for concurrent use: Sends from many goroutines (and from
// sibling proxies on the same client) pipeline over the client's one
// multiplexed connection instead of serialising.
//
// A proxy on a Collocate-enabled client (orb.ClientConfig.Collocate)
// inherits the collocated fast path: when the bound port's server lives in
// this process, Send dispatches the exported port's servant directly —
// message marshalling still runs (the receiving port unmarshals a copy
// either way), but the GIOP wire round trip disappears. The collocation
// decision is the client's: re-detected after every swap and retarget,
// falling back to the wire rather than holding a stale pointer.
type Proxy struct {
	cl   *orb.Client
	key  string
	typ  core.MessageType
	sync bool
}

// NewProxy binds to the exported port named dest on the server the client
// is connected to. When ackd is true every Send waits for the server's
// acknowledgement (flow control); otherwise sends are oneway.
func NewProxy(cl *orb.Client, dest string, typ core.MessageType, ackd bool) (*Proxy, error) {
	if !isSerializable(typ) {
		return nil, fmt.Errorf("%w: %q", ErrNotSerializable, typ.Name)
	}
	return &Proxy{cl: cl, key: keyPrefix + dest, typ: typ, sync: ackd}, nil
}

// GetMessage returns a fresh message instance to fill and Send. Proxy
// messages are plain instances (they leave the address space, so pooling in
// a memory area would not help the receiver).
func (p *Proxy) GetMessage() core.Message { return p.typ.New() }

// Send marshals the message and delivers it to the remote port at the given
// priority.
func (p *Proxy) Send(msg core.Message, prio sched.Priority) error {
	bm, ok := msg.(encoding.BinaryMarshaler)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotSerializable, p.typ.Name)
	}
	data, err := bm.MarshalBinary()
	if err != nil {
		return fmt.Errorf("remote: encode %q: %w", p.typ.Name, err)
	}
	if p.sync {
		_, err = p.cl.Invoke(p.key, "send", data, prio)
		return err
	}
	return p.cl.InvokeOneway(p.key, "send", data, prio)
}

// Bind grafts the proxy onto a local In port named portName on comp
// (mediated by smm): every message arriving there is forwarded to the
// remote port, making the remote component addressable by local port
// connections. The returned In port's qualified name is what local Out
// ports list as their destination.
func Bind(comp *core.Component, smm *core.SMM, portName string, proxy *Proxy) (*core.InPort, error) {
	return core.AddInPort(comp, smm, core.InPortConfig{
		Name: portName,
		Type: proxy.typ,
		Handler: core.HandlerFunc(func(p *core.Proc, m core.Message) error {
			return proxy.Send(m, p.Priority())
		}),
	})
}

func isSerializable(typ core.MessageType) bool {
	if typ.New == nil {
		return false
	}
	probe := typ.New()
	_, canMarshal := probe.(encoding.BinaryMarshaler)
	_, canUnmarshal := probe.(encoding.BinaryUnmarshaler)
	return canMarshal && canUnmarshal
}

func sanitizePort(dest string) string {
	out := make([]byte, 0, len(dest))
	for i := 0; i < len(dest); i++ {
		c := dest[i]
		if c == '.' {
			out = append(out, '_')
			continue
		}
		out = append(out, c)
	}
	return string(out)
}

var _ corba.PrioritizedServant = (*exportServant)(nil)
