package remote

import (
	"testing"

	"repro/internal/orb"
	"repro/internal/transport"
)

func TestAckdProxyRepeatedSends(t *testing.T) {
	net := transport.NewInproc()
	srv, got := startRemoteSink(t, net)
	cl, err := orb.DialClient(orb.ClientConfig{Network: net, Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	proxy, err := NewProxy(cl, "Sink.in", wireType, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		msg := proxy.GetMessage()
		msg.(*wireMsg).value = i
		if err := proxy.Send(msg, 9); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		v := recvTagged(t, got)
		t.Logf("recv %v", v)
	}
}
