// Package metrics implements the measurement methodology of §3.1 of the
// paper: steady-state observation after a warm-up phase, a sample of
// (typically) 10,000 round-trip latencies, and summary statistics centred
// on the median and the jitter (max − min), "another measure of a system's
// predictability".
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultObservations is the paper's sample size: "we used the maximum of
// 10,000 observations as an estimate of a system's worst case".
const DefaultObservations = 10000

// DefaultWarmup is the number of iterations discarded before measuring,
// "run until the transitory effects of cold starts are eliminated".
const DefaultWarmup = 1000

// Collector accumulates duration observations. The zero value is ready to
// use, and all methods are safe for concurrent use: recorders on multiple
// threads can feed one collector without torn appends (an unguarded
// append from two goroutines can drop samples or panic on the shared
// backing array).
type Collector struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewCollector returns a collector pre-sized for n observations.
func NewCollector(n int) *Collector {
	return &Collector{samples: make([]time.Duration, 0, n)}
}

// Record adds one observation.
func (c *Collector) Record(d time.Duration) {
	c.mu.Lock()
	c.samples = append(c.samples, d)
	c.mu.Unlock()
}

// Count returns the number of observations recorded.
func (c *Collector) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.samples)
}

// Samples returns a snapshot copy of the observations.
func (c *Collector) Samples() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.samples))
	copy(out, c.samples)
	return out
}

// Reset discards all observations, keeping capacity.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.samples = c.samples[:0]
	c.mu.Unlock()
}

// Summary reports the statistics the paper's tables and figures use.
type Summary struct {
	// Count is the number of observations.
	Count int
	// Min and Max bound the distribution.
	Min, Max time.Duration
	// Median is the paper's headline latency statistic.
	Median time.Duration
	// Jitter is Max − Min, the paper's predictability measure.
	Jitter time.Duration
	// Mean and StdDev complement the order statistics.
	Mean, StdDev time.Duration
	// P99 is the 99th percentile.
	P99 time.Duration
}

// Summarize computes a Summary over the recorded observations.
func (c *Collector) Summarize() Summary {
	c.mu.Lock()
	samples := c.samples
	c.mu.Unlock()
	return Summarize(samples)
}

// Summarize computes a Summary over samples. An empty input yields a zero
// Summary.
func Summarize(samples []time.Duration) Summary {
	n := len(samples)
	if n == 0 {
		return Summary{}
	}
	sorted := make([]time.Duration, n)
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var sum float64
	for _, d := range sorted {
		sum += float64(d)
	}
	mean := sum / float64(n)
	var sq float64
	for _, d := range sorted {
		diff := float64(d) - mean
		sq += diff * diff
	}
	std := math.Sqrt(sq / float64(n))

	return Summary{
		Count:  n,
		Min:    sorted[0],
		Max:    sorted[n-1],
		Median: percentileSorted(sorted, 50),
		Jitter: sorted[n-1] - sorted[0],
		Mean:   time.Duration(mean),
		StdDev: time.Duration(std),
		P99:    percentileSorted(sorted, 99),
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) of the recorded
// observations.
func (c *Collector) Percentile(p float64) time.Duration {
	sorted := c.Samples()
	if len(sorted) == 0 {
		return 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return percentileSorted(sorted, p)
}

// percentileSorted uses the nearest-rank method on a sorted sample.
func percentileSorted(sorted []time.Duration, p float64) time.Duration {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Micros renders a duration as microseconds with one decimal, the unit the
// paper reports in.
func Micros(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Microsecond))
}

// String renders the summary in paper style.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d median=%sµs jitter=%sµs min=%sµs max=%sµs p99=%sµs",
		s.Count, Micros(s.Median), Micros(s.Jitter), Micros(s.Min), Micros(s.Max), Micros(s.P99))
}

// Histogram renders an ASCII histogram of the observations with the given
// number of buckets, used by the bench harness to visualise distributions
// like Fig. 9.
func Histogram(samples []time.Duration, buckets int, width int) string {
	if len(samples) == 0 || buckets <= 0 {
		return "(no samples)\n"
	}
	s := Summarize(samples)
	span := s.Max - s.Min
	if span == 0 {
		span = 1
	}
	counts := make([]int, buckets)
	for _, d := range samples {
		i := int(int64(d-s.Min) * int64(buckets) / (int64(span) + 1))
		if i >= buckets {
			i = buckets - 1
		}
		counts[i]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		lo := s.Min + time.Duration(int64(span)*int64(i)/int64(buckets))
		hi := s.Min + time.Duration(int64(span)*int64(i+1)/int64(buckets))
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", c*width/maxCount)
		}
		fmt.Fprintf(&b, "%8sµs-%8sµs |%-*s %d\n", Micros(lo), Micros(hi), width, bar, c)
	}
	return b.String()
}

// RunSteadyState drives op through warmup discarded iterations and then n
// measured ones, timing each call — the paper's measurement loop.
func RunSteadyState(warmup, n int, op func() error) (Summary, error) {
	for i := 0; i < warmup; i++ {
		if err := op(); err != nil {
			return Summary{}, fmt.Errorf("warmup iteration %d: %w", i, err)
		}
	}
	c := NewCollector(n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := op(); err != nil {
			return Summary{}, fmt.Errorf("iteration %d: %w", i, err)
		}
		c.Record(time.Since(start))
	}
	return c.Summarize(), nil
}
