package metrics

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSummarizeBasics(t *testing.T) {
	samples := []time.Duration{ms(5), ms(1), ms(3), ms(2), ms(4)}
	s := Summarize(samples)
	if s.Count != 5 {
		t.Errorf("count = %d", s.Count)
	}
	if s.Min != ms(1) || s.Max != ms(5) {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Median != ms(3) {
		t.Errorf("median = %v", s.Median)
	}
	if s.Jitter != ms(4) {
		t.Errorf("jitter = %v", s.Jitter)
	}
	if s.Mean != ms(3) {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.P99 != ms(5) {
		t.Errorf("p99 = %v", s.P99)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector(4)
	for i := 1; i <= 4; i++ {
		c.Record(ms(i))
	}
	if c.Count() != 4 {
		t.Errorf("count = %d", c.Count())
	}
	if got := c.Summarize().Median; got != ms(2) {
		t.Errorf("median = %v", got)
	}
	if got := c.Percentile(100); got != ms(4) {
		t.Errorf("p100 = %v", got)
	}
	if got := c.Percentile(0); got != ms(1) {
		t.Errorf("p0 = %v", got)
	}
	if got := c.Percentile(50); got != ms(2) {
		t.Errorf("p50 = %v", got)
	}
	c.Reset()
	if c.Count() != 0 {
		t.Error("reset did not clear")
	}
	if c.Percentile(50) != 0 {
		t.Error("percentile on empty != 0")
	}
}

func TestMicros(t *testing.T) {
	if got := Micros(1500 * time.Nanosecond); got != "1.5" {
		t.Errorf("Micros = %q", got)
	}
}

func TestHistogram(t *testing.T) {
	samples := []time.Duration{ms(1), ms(1), ms(2), ms(10)}
	h := Histogram(samples, 3, 20)
	if !strings.Contains(h, "#") {
		t.Errorf("histogram has no bars:\n%s", h)
	}
	if lines := strings.Count(h, "\n"); lines != 3 {
		t.Errorf("histogram lines = %d, want 3", lines)
	}
	if Histogram(nil, 3, 20) != "(no samples)\n" {
		t.Error("empty histogram wrong")
	}
	// Degenerate case: all samples identical.
	same := []time.Duration{ms(2), ms(2)}
	if h := Histogram(same, 2, 10); !strings.Contains(h, "2") {
		t.Errorf("degenerate histogram:\n%s", h)
	}
}

func TestRunSteadyState(t *testing.T) {
	var calls int
	s, err := RunSteadyState(3, 5, func() error {
		calls++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 8 {
		t.Errorf("calls = %d, want 8", calls)
	}
	if s.Count != 5 {
		t.Errorf("measured = %d, want 5", s.Count)
	}
}

func TestRunSteadyStateErrors(t *testing.T) {
	boom := errors.New("boom")
	if _, err := RunSteadyState(1, 1, func() error { return boom }); !errors.Is(err, boom) {
		t.Errorf("warmup err = %v", err)
	}
	n := 0
	if _, err := RunSteadyState(0, 3, func() error {
		n++
		if n == 2 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Errorf("measure err = %v", err)
	}
}

// Property: the summary order statistics agree with direct computation on
// the sorted sample, and Min <= Median <= P99 <= Max always holds.
func TestPropertySummaryConsistency(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v) * time.Microsecond
		}
		s := Summarize(samples)
		sorted := make([]time.Duration, len(samples))
		copy(sorted, samples)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if s.Min != sorted[0] || s.Max != sorted[len(sorted)-1] {
			return false
		}
		if s.Jitter != s.Max-s.Min {
			return false
		}
		return s.Min <= s.Median && s.Median <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCollectorConcurrentRecord pins the concurrency contract: many
// goroutines can Record into one collector while another summarises, with
// every sample retained. Run under -race this also proves the guard.
func TestCollectorConcurrentRecord(t *testing.T) {
	const workers, per = 8, 500
	c := NewCollector(workers * per)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.Summarize()
				_ = c.Count()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Record(time.Duration(w*per+i+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if got := c.Count(); got != workers*per {
		t.Errorf("count = %d, want %d (lost samples under concurrency)", got, workers*per)
	}
	s := c.Summarize()
	if s.Min != time.Microsecond || s.Max != time.Duration(workers*per)*time.Microsecond {
		t.Errorf("summary min/max = %v/%v", s.Min, s.Max)
	}
}
