package experiments

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

func TestPingPongRoundTrip(t *testing.T) {
	pp, err := NewPingPong(PingPongConfig{Synchronous: true, Persistent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pp.Close()
	for i := int64(1); i <= 10; i++ {
		got, err := pp.RoundTrip(i)
		if err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
		if got != i+1 {
			t.Errorf("round trip %d = %d, want %d", i, got, i+1)
		}
	}
	if n, err := pp.App().Errors(); n != 0 {
		t.Errorf("handler errors: %d (%v)", n, err)
	}
}

func TestPingPongAsyncPools(t *testing.T) {
	pp, err := NewPingPong(PingPongConfig{Synchronous: false, Persistent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pp.Close()
	for i := int64(1); i <= 5; i++ {
		got, err := pp.RoundTrip(i)
		if err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
		if got != i+1 {
			t.Errorf("round trip %d = %d", i, got)
		}
	}
}

func TestPingPongMechanisms(t *testing.T) {
	for _, mech := range []core.Mechanism{
		core.MechanismSharedObject, core.MechanismSerialization, core.MechanismHandoff,
	} {
		t.Run(mech.String(), func(t *testing.T) {
			pp, err := NewPingPong(PingPongConfig{
				Synchronous: true, Persistent: true, Mechanism: mech,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer pp.Close()
			got, err := pp.RoundTrip(41)
			if err != nil {
				t.Fatal(err)
			}
			if got != 42 {
				t.Errorf("got %d, want 42", got)
			}
		})
	}
}

func TestRunTable2Shape(t *testing.T) {
	// Jitter is max − min, so a single host-scheduler hiccup (other test
	// packages share this machine's CPUs) can corrupt one run; the paper's
	// ordering must hold in at least one of a few attempts.
	const attempts = 3
	var lastErr string
	for attempt := 0; attempt < attempts; attempt++ {
		rows, err := RunTable2(50, 400)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("rows = %d", len(rows))
		}
		byName := map[string]PlatformRow{}
		for _, r := range rows {
			byName[r.Platform] = r
			if r.Summary.Count != 400 {
				t.Errorf("%s count = %d", r.Platform, r.Summary.Count)
			}
			if len(r.Samples) != 400 {
				t.Errorf("%s samples = %d", r.Platform, len(r.Samples))
			}
		}
		// The paper's headline relationships.
		jdk, mack, ri := byName["JDK14"], byName["Mackinac"], byName["TimesysRI"]
		switch {
		case jdk.Summary.Jitter <= mack.Summary.Jitter:
			lastErr = fmt.Sprintf("JDK jitter %v <= Mackinac %v", jdk.Summary.Jitter, mack.Summary.Jitter)
		case mack.Summary.Jitter <= ri.Summary.Jitter:
			lastErr = fmt.Sprintf("Mackinac jitter %v <= RI %v", mack.Summary.Jitter, ri.Summary.Jitter)
		default:
			return // shape holds
		}
		t.Logf("attempt %d: %s", attempt, lastErr)
	}
	t.Errorf("jitter ordering never held: %s", lastErr)
}

func TestRunFig11Shape(t *testing.T) {
	points, err := RunFig11([]int{32, 1024}, 30, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	get := func(orbName string, size int) *Fig11Point {
		for i := range points {
			if points[i].ORB == orbName && points[i].Size == size {
				return &points[i]
			}
		}
		t.Fatalf("missing point %s/%d", orbName, size)
		return nil
	}
	comp32 := get("CompadresORB", 32)
	zen32 := get("RTZen", 32)
	comp1k := get("CompadresORB", 1024)
	zen1k := get("RTZen", 1024)

	// The framework costs something, but the hand-coded ORB must not come
	// out slower by a large factor at any size (the paper reports "only
	// minor time overhead").
	if comp32.Summary.Median < zen32.Summary.Median {
		t.Logf("note: Compadres faster than RTZen at 32B (%v vs %v)", comp32.Summary.Median, zen32.Summary.Median)
	}
	if comp32.Summary.Median > 20*zen32.Summary.Median {
		t.Errorf("Compadres/RTZen ratio too large at 32B: %v vs %v", comp32.Summary.Median, zen32.Summary.Median)
	}
	// Latency grows with message size for both ORBs.
	if comp1k.Summary.Median < comp32.Summary.Median/2 {
		t.Errorf("Compadres 1KB (%v) unexpectedly below 32B (%v)", comp1k.Summary.Median, comp32.Summary.Median)
	}
	if zen1k.Summary.Median < zen32.Summary.Median/2 {
		t.Errorf("RTZen 1KB (%v) unexpectedly below 32B (%v)", zen1k.Summary.Median, zen32.Summary.Median)
	}
}

func TestAblationCrossScope(t *testing.T) {
	rows, err := RunAblationCrossScope(20, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	// Serialization pays encode+copy+decode per hop; it must not beat the
	// shared object.
	if byName["serialization"].Summary.Median < byName["shared-object"].Summary.Median {
		t.Errorf("serialization (%v) beat shared-object (%v)",
			byName["serialization"].Summary.Median, byName["shared-object"].Summary.Median)
	}
}

func TestAblationScopePool(t *testing.T) {
	rows, err := RunAblationScopePool(20, 200)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	// Pooled scopes avoid linear-time creation; fresh scopes must not be
	// faster.
	if byName["fresh-scopes"].Summary.Median < byName["scope-pool"].Summary.Median {
		t.Errorf("fresh scopes (%v) beat the scope pool (%v)",
			byName["fresh-scopes"].Summary.Median, byName["scope-pool"].Summary.Median)
	}
}

func TestAblationShadowPort(t *testing.T) {
	// The shadow port saves one hop, a margin of well under a microsecond;
	// on a contended host the medians can cross in a single small run, so
	// the ordering must hold in at least one of a few attempts.
	var lastErr string
	for attempt := 0; attempt < 3; attempt++ {
		rows, err := RunAblationShadowPort(20, 500)
		if err != nil {
			t.Fatal(err)
		}
		byName := map[string]AblationRow{}
		for _, r := range rows {
			byName[r.Variant] = r
		}
		// The shadow port saves a hop; the relay must not be faster.
		if byName["parent-relay"].Summary.Median >= byName["shadow-port"].Summary.Median {
			return
		}
		lastErr = fmt.Sprintf("parent relay (%v) beat the shadow port (%v)",
			byName["parent-relay"].Summary.Median, byName["shadow-port"].Summary.Median)
		t.Logf("attempt %d: %s", attempt, lastErr)
	}
	t.Error(lastErr)
}
