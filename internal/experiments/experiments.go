// Package experiments regenerates the paper's evaluation: Table 2 and
// Fig. 9 (round-trip latency and jitter of the component framework on three
// platforms), Fig. 11 (Compadres ORB vs RTZen across message sizes), and
// the ablations DESIGN.md calls out (cross-scope mechanisms, shadow ports,
// scope pools). The same entry points back cmd/benchharness and the
// testing.B benchmarks, so the printed rows and the benches cannot drift
// apart.
package experiments

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/corba"
	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/metrics"
	"repro/internal/orb"
	"repro/internal/platform"
	"repro/internal/rtzen"
	"repro/internal/sched"
	"repro/internal/transport"
)

// pingPayloadSize gives the experiment message a realistic body so the
// cross-scope mechanism ablation measures real copy costs, not just
// dispatch overhead.
const pingPayloadSize = 2048

// pingMsg is the experiment message type (the paper's MyInteger plus a
// payload). It is binary-(un)marshalable so the serialization-mechanism
// ablation can copy it across scopes.
type pingMsg struct {
	value   int64
	payload [pingPayloadSize]byte
}

func (m *pingMsg) Reset() { *m = pingMsg{} }

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *pingMsg) MarshalBinary() ([]byte, error) {
	b := make([]byte, 8+pingPayloadSize)
	binary.BigEndian.PutUint64(b, uint64(m.value))
	copy(b[8:], m.payload[:])
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *pingMsg) UnmarshalBinary(b []byte) error {
	if len(b) != 8+pingPayloadSize {
		return fmt.Errorf("pingMsg: bad length %d", len(b))
	}
	m.value = int64(binary.BigEndian.Uint64(b))
	copy(m.payload[:], b[8:])
	return nil
}

var pingType = core.MessageType{
	Name: "MyInteger",
	Size: 64 + pingPayloadSize,
	New:  func() core.Message { return &pingMsg{} },
}

// PingPong is the co-located client-server application of Fig. 6: an
// immortal component with Client and Server children wired P1→P2, P3→P4,
// P5→P6. Each RoundTrip sends a trigger and waits for the reply observed at
// P6.
type PingPong struct {
	app  *core.App
	imc  *core.Component
	p1   *core.OutPort
	done chan int64
}

// PingPongConfig parameterises the experiment app.
type PingPongConfig struct {
	// Synchronous runs all ports on the sending thread, isolating framework
	// overhead from Go scheduler noise (the experiment driver injects
	// platform noise explicitly).
	Synchronous bool
	// UseScopePool draws the children's areas from a level-1 pool.
	UseScopePool bool
	// Persistent keeps Client and Server alive across round trips (the
	// steady-state configuration).
	Persistent bool
	// Mechanism overrides the cross-scope mechanism; zero keeps the
	// default shared object.
	Mechanism core.Mechanism
	// Fair runs every in port in tenant-fair mode (DRR across tenant
	// classes, EDF within a class — the queue an overload-controlled ORB
	// server uses), so the steady-state benches can pin that the fair
	// dispatch path costs no allocations either.
	Fair bool
}

// NewPingPong builds the Fig. 6 application.
func NewPingPong(cfg PingPongConfig) (*PingPong, error) {
	appCfg := core.AppConfig{Name: "PingPong", ImmortalSize: 1 << 20}
	if cfg.UseScopePool {
		appCfg.ScopePools = []core.ScopePoolSpec{{Level: 1, AreaSize: 1 << 15, Count: 3, Grow: true}}
	}
	app, err := core.NewApp(appCfg)
	if err != nil {
		return nil, err
	}
	pp := &PingPong{app: app, done: make(chan int64, 1)}

	threading := core.ThreadingShared
	if cfg.Synchronous {
		threading = core.ThreadingSynchronous
	}
	port := func(h core.Handler, buf int) core.InPortConfig {
		return core.InPortConfig{
			Type: pingType, BufferSize: buf, Threading: threading,
			MinThreads: 1, MaxThreads: 5, Handler: h,
			Fair: cfg.Fair,
		}
	}

	imc, err := app.NewImmortalComponent("IMC", func(c *core.Component) error {
		smm := c.SMM()
		p1, err := core.AddOutPort(c, smm, core.OutPortConfig{
			Name: "P1", Type: pingType, Dests: []string{"Client.P2"},
		})
		if err != nil {
			return err
		}
		pp.p1 = p1

		clientDef := core.ChildDef{
			Name: "Client", MemorySize: 1 << 15,
			UsePool: cfg.UseScopePool, Persistent: cfg.Persistent,
			Setup: func(cl *core.Component) error {
				// Register the Out port first and capture it in the handler
				// closure: the steady-state hop does no port lookup per
				// message.
				p3, err := core.AddOutPort(cl, smm, core.OutPortConfig{
					Name: "P3", Type: pingType, Dests: []string{"Server.P4"},
				})
				if err != nil {
					return err
				}
				p2 := port(core.HandlerFunc(func(p *core.Proc, m core.Message) error {
					in := m.(*pingMsg)
					req, err := p3.GetMessage()
					if err != nil {
						return err
					}
					req.(*pingMsg).value = in.value
					return sendVia(p3, p, req, 3)
				}), 10)
				p2.Name = "P2"
				if _, err := core.AddInPort(cl, smm, p2); err != nil {
					return err
				}
				p6 := port(core.HandlerFunc(func(p *core.Proc, m core.Message) error {
					pp.done <- m.(*pingMsg).value
					return nil
				}), 20)
				p6.Name = "P6"
				_, err = core.AddInPort(cl, smm, p6)
				return err
			},
		}
		serverDef := core.ChildDef{
			Name: "Server", MemorySize: 1 << 15,
			UsePool: cfg.UseScopePool, Persistent: cfg.Persistent,
			Setup: func(sv *core.Component) error {
				p5, err := core.AddOutPort(sv, smm, core.OutPortConfig{
					Name: "P5", Type: pingType, Dests: []string{"Client.P6"},
				})
				if err != nil {
					return err
				}
				p4 := port(core.HandlerFunc(func(p *core.Proc, m core.Message) error {
					in := m.(*pingMsg)
					rep, err := p5.GetMessage()
					if err != nil {
						return err
					}
					rep.(*pingMsg).value = in.value + 1
					return sendVia(p5, p, rep, 3)
				}), 20)
				p4.Name = "P4"
				_, err = core.AddInPort(sv, smm, p4)
				return err
			},
		}
		if err := c.DefineChild(clientDef); err != nil {
			return err
		}
		if err := c.DefineChild(serverDef); err != nil {
			return err
		}
		if mech := cfg.Mechanism; mech != 0 {
			smm.SetMechanism(mech)
		}
		return nil
	})
	if err != nil {
		app.Stop()
		return nil, err
	}
	pp.imc = imc
	if err := app.Start(); err != nil {
		app.Stop()
		return nil, err
	}
	return pp, nil
}

// sendVia uses SendFrom when the SMM runs the handoff mechanism (which
// needs the sender's scope stack) and plain Send otherwise.
func sendVia(out *core.OutPort, p *core.Proc, msg core.Message, prio sched.Priority) error {
	if p.SMM().Mechanism() == core.MechanismHandoff {
		return out.SendFrom(p, msg, prio)
	}
	return out.Send(msg, prio)
}

// App exposes the underlying application.
func (pp *PingPong) App() *core.App { return pp.app }

// RoundTrip performs one trigger→request→reply cycle and returns the value
// observed at P6.
func (pp *PingPong) RoundTrip(v int64) (int64, error) {
	msg, err := pp.p1.GetMessage()
	if err != nil {
		return 0, err
	}
	msg.(*pingMsg).value = v
	if pp.imc.SMM().Mechanism() == core.MechanismHandoff {
		// The handoff mechanism needs the sender's scope stack: trigger
		// from within the IMC's execution context.
		err = pp.imc.Exec(func(ctx *memory.Context) error {
			proc := core.NewProc(pp.imc, pp.imc.SMM(), ctx, 2)
			return pp.p1.SendFrom(proc, msg, 2)
		})
	} else {
		err = pp.p1.Send(msg, 2)
	}
	if err != nil {
		return 0, err
	}
	return <-pp.done, nil
}

// Close stops the application.
func (pp *PingPong) Close() { pp.app.Stop() }

// PlatformRow is one row of Table 2 / one series of Fig. 9.
type PlatformRow struct {
	Platform string
	Summary  metrics.Summary
	Samples  []time.Duration
}

// RunTable2 reproduces Table 2 and the Fig. 9 distributions: the co-located
// Compadres client-server round trip on the three simulated platforms.
func RunTable2(warmup, observations int) ([]PlatformRow, error) {
	rows := make([]PlatformRow, 0, 3)
	for _, model := range platform.Models() {
		row, err := runPlatform(model, warmup, observations)
		if err != nil {
			return nil, fmt.Errorf("platform %s: %w", model.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runPlatform(model platform.Model, warmup, observations int) (PlatformRow, error) {
	pp, err := NewPingPong(PingPongConfig{Synchronous: true, Persistent: true})
	if err != nil {
		return PlatformRow{}, err
	}
	defer pp.Close()
	defer quiesceGC()()

	inj := platform.NewInjector(model, 1)
	var i int64
	c := metrics.NewCollector(observations)
	op := func() error {
		i++
		_, err := pp.RoundTrip(i)
		return err
	}
	for w := 0; w < warmup; w++ {
		if err := op(); err != nil {
			return PlatformRow{}, err
		}
	}
	for n := 0; n < observations; n++ {
		start := time.Now()
		inj.Operation() // platform noise lands inside the timed window
		if err := op(); err != nil {
			return PlatformRow{}, err
		}
		c.Record(time.Since(start))
	}
	return PlatformRow{Platform: model.Name, Summary: c.Summarize(), Samples: c.Samples()}, nil
}

// Fig11Point is one (ORB, message size) cell of Fig. 11.
type Fig11Point struct {
	ORB     string
	Size    int
	Summary metrics.Summary
}

// Fig11Sizes are the paper's message sizes (32–1024 bytes).
var Fig11Sizes = []int{32, 64, 128, 256, 512, 1024}

// RunFig11 reproduces Fig. 11: round-trip latency of the Compadres ORB and
// the hand-coded RTZen baseline for each message size, both on the TimeSys
// RI platform model over an in-process loopback transport.
func RunFig11(sizes []int, warmup, observations int) ([]Fig11Point, error) {
	if len(sizes) == 0 {
		sizes = Fig11Sizes
	}
	var points []Fig11Point
	for _, size := range sizes {
		comp, err := runFig11Compadres(size, warmup, observations)
		if err != nil {
			return nil, fmt.Errorf("compadres size %d: %w", size, err)
		}
		points = append(points, comp)
		zen, err := runFig11RTZen(size, warmup, observations)
		if err != nil {
			return nil, fmt.Errorf("rtzen size %d: %w", size, err)
		}
		points = append(points, zen)
	}
	return points, nil
}

func runFig11Compadres(size, warmup, observations int) (Fig11Point, error) {
	net := transport.NewInproc()
	srv, err := orb.NewServer(orb.ServerConfig{
		Network: net, ScopePoolCount: 4, Synchronous: true,
	})
	if err != nil {
		return Fig11Point{}, err
	}
	defer srv.Close()
	srv.RegisterServant("echo", corba.EchoServant{})
	srv.ServeBackground()

	cl, err := orb.DialClient(orb.ClientConfig{
		Network: net, Addr: srv.Addr(), ScopePoolCount: 4, Synchronous: true,
	})
	if err != nil {
		return Fig11Point{}, err
	}
	defer cl.Close()

	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	summary, err := measureEcho(warmup, observations, func() error {
		_, err := cl.Invoke("echo", "echo", payload, sched.NormPriority)
		return err
	})
	if err != nil {
		return Fig11Point{}, err
	}
	return Fig11Point{ORB: "CompadresORB", Size: size, Summary: summary}, nil
}

func runFig11RTZen(size, warmup, observations int) (Fig11Point, error) {
	net := transport.NewInproc()
	srv, err := rtzen.NewServer(rtzen.ServerConfig{Network: net})
	if err != nil {
		return Fig11Point{}, err
	}
	defer srv.Close()
	srv.RegisterServant("echo", corba.EchoServant{})
	srv.ServeBackground()

	cl, err := rtzen.DialClient(rtzen.ClientConfig{Network: net, Addr: srv.Addr()})
	if err != nil {
		return Fig11Point{}, err
	}
	defer cl.Close()

	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	summary, err := measureEcho(warmup, observations, func() error {
		_, err := cl.Invoke("echo", "echo", payload, sched.NormPriority)
		return err
	})
	if err != nil {
		return Fig11Point{}, err
	}
	return Fig11Point{ORB: "RTZen", Size: size, Summary: summary}, nil
}

// quiesceGC collects once and disables Go's collector for the duration of a
// measurement — the measured system is the simulated RTSJ, whose regions
// are never garbage collected, so the host collector must not pollute the
// jitter. The returned function restores the previous setting.
func quiesceGC() func() {
	runtime.GC()
	prev := debug.SetGCPercent(-1)
	return func() { debug.SetGCPercent(prev) }
}

// measureEcho injects TimeSys-RI noise inside the timed window, matching
// the paper's single-platform Fig. 11 setup.
func measureEcho(warmup, observations int, op func() error) (metrics.Summary, error) {
	defer quiesceGC()()
	inj := platform.NewInjector(platform.TimesysRI(), 2)
	for i := 0; i < warmup; i++ {
		if err := op(); err != nil {
			return metrics.Summary{}, err
		}
	}
	c := metrics.NewCollector(observations)
	for i := 0; i < observations; i++ {
		start := time.Now()
		inj.Operation()
		if err := op(); err != nil {
			return metrics.Summary{}, err
		}
		c.Record(time.Since(start))
	}
	return c.Summarize(), nil
}
