package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// AblationRow is one variant of an ablation experiment.
type AblationRow struct {
	Variant string
	Summary metrics.Summary
}

// RunAblationCrossScope compares the three cross-scope message passing
// mechanisms of §2.2 on the Fig. 6 round trip. The paper argues the shared
// object is the most efficient, serialization pays per-copy encoding, and
// handoff avoids copies but couples the sender to the scope structure.
func RunAblationCrossScope(warmup, observations int) ([]AblationRow, error) {
	variants := []struct {
		name string
		mech core.Mechanism
	}{
		{"shared-object", core.MechanismSharedObject},
		{"serialization", core.MechanismSerialization},
		{"handoff", core.MechanismHandoff},
	}
	var rows []AblationRow
	for _, v := range variants {
		pp, err := NewPingPong(PingPongConfig{
			Synchronous: true, Persistent: true, Mechanism: v.mech,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		var i int64
		restore := quiesceGC()
		summary, err := metrics.RunSteadyState(warmup, observations, func() error {
			i++
			_, err := pp.RoundTrip(i)
			return err
		})
		restore()
		pp.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		rows = append(rows, AblationRow{Variant: v.name, Summary: summary})
	}
	return rows, nil
}

// RunAblationScopePool compares transient component instantiation with and
// without the scope-pool optimisation (CCL <ScopedPool>): with Persistent
// off, every round trip re-creates Client and Server, paying linear-time
// area creation unless the pool recycles areas.
func RunAblationScopePool(warmup, observations int) ([]AblationRow, error) {
	variants := []struct {
		name string
		pool bool
	}{
		{"fresh-scopes", false},
		{"scope-pool", true},
	}
	var rows []AblationRow
	for _, v := range variants {
		pp, err := NewPingPong(PingPongConfig{
			Synchronous: true, Persistent: false, UseScopePool: v.pool,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		var i int64
		restore := quiesceGC()
		summary, err := metrics.RunSteadyState(warmup, observations, func() error {
			i++
			_, err := pp.RoundTrip(i)
			return err
		})
		restore()
		pp.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		rows = append(rows, AblationRow{Variant: v.name, Summary: summary})
	}
	return rows, nil
}

// RunAblationDispatch compares the CCL threading policies on the Fig. 6
// round trip: synchronous execution on the sending thread (pool size 0 in
// the paper's terms) against thread-pool dispatch. Pools buy concurrency
// and isolation at the price of per-hop wake-up latency.
func RunAblationDispatch(warmup, observations int) ([]AblationRow, error) {
	variants := []struct {
		name string
		sync bool
	}{
		{"synchronous", true},
		{"thread-pool", false},
	}
	var rows []AblationRow
	for _, v := range variants {
		pp, err := NewPingPong(PingPongConfig{Synchronous: v.sync, Persistent: true})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		var i int64
		restore := quiesceGC()
		summary, err := metrics.RunSteadyState(warmup, observations, func() error {
			i++
			_, err := pp.RoundTrip(i)
			return err
		})
		restore()
		pp.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		rows = append(rows, AblationRow{Variant: v.name, Summary: summary})
	}
	return rows, nil
}

// shadowApp is the three-level structure of Fig. 5: A contains B contains
// C. A message travels A → B → C, and C answers A either directly through a
// shadow port (pool and buffer only in A) or by relaying through its parent
// B (an extra copy through B's traffic).
type shadowApp struct {
	app  *core.App
	out  *core.OutPort
	done chan int64
}

func newShadowApp(shadow bool) (*shadowApp, error) {
	app, err := core.NewApp(core.AppConfig{Name: "Shadow", ImmortalSize: 1 << 20})
	if err != nil {
		return nil, err
	}
	sa := &shadowApp{app: app, done: make(chan int64, 1)}

	sync := func(name string, h core.Handler) core.InPortConfig {
		return core.InPortConfig{
			Name: name, Type: pingType, Threading: core.ThreadingSynchronous, Handler: h,
		}
	}

	_, err = app.NewImmortalComponent("A", func(a *core.Component) error {
		aSMM := a.SMM()
		if _, err := core.AddInPort(a, aSMM, sync("fromC", core.HandlerFunc(
			func(p *core.Proc, m core.Message) error {
				sa.done <- m.(*pingMsg).value
				return nil
			}))); err != nil {
			return err
		}
		out, err := core.AddOutPort(a, aSMM, core.OutPortConfig{
			Name: "down", Type: pingType, Dests: []string{"B.in"},
		})
		if err != nil {
			return err
		}
		sa.out = out

		return a.DefineChild(core.ChildDef{
			// B's SMM hosts the message pool for the B->C leg (and the
			// relay leg in the non-shadow variant), so its area must fit
			// pool capacity x message size.
			Name: "B", MemorySize: 1 << 18, Persistent: true,
			Setup: func(b *core.Component) error {
				bSMM := b.SMM()
				// B forwards A's trigger down to C.
				if _, err := core.AddInPort(b, aSMM, sync("in", core.HandlerFunc(
					func(p *core.Proc, m core.Message) error {
						toC, err := bSMM.GetOutPort("B.toC")
						if err != nil {
							return err
						}
						fwd, err := toC.GetMessage()
						if err != nil {
							return err
						}
						fwd.(*pingMsg).value = m.(*pingMsg).value
						return toC.Send(fwd, p.Priority())
					}))); err != nil {
					return err
				}
				if _, err := core.AddOutPort(b, bSMM, core.OutPortConfig{
					Name: "toC", Type: pingType, Dests: []string{"C.in"},
				}); err != nil {
					return err
				}

				if !shadow {
					// Relay variant: B carries C's answer up to A, costing
					// an extra pooled copy and an extra dispatch.
					if _, err := core.AddInPort(b, bSMM, sync("fromC", core.HandlerFunc(
						func(p *core.Proc, m core.Message) error {
							up, err := aSMM.GetOutPort("B.up")
							if err != nil {
								return err
							}
							fwd, err := up.GetMessage()
							if err != nil {
								return err
							}
							fwd.(*pingMsg).value = m.(*pingMsg).value
							return up.Send(fwd, p.Priority())
						}))); err != nil {
						return err
					}
					if _, err := core.AddOutPort(b, aSMM, core.OutPortConfig{
						Name: "up", Type: pingType, Dests: []string{"A.fromC"},
					}); err != nil {
						return err
					}
				}

				return b.DefineChild(core.ChildDef{
					Name: "C", MemorySize: 1 << 14, Persistent: true,
					Setup: func(cc *core.Component) error {
						handler := func(p *core.Proc, m core.Message) error {
							var out *core.OutPort
							var err error
							if shadow {
								out, err = aSMM.GetOutPort("C.sh")
							} else {
								out, err = bSMM.GetOutPort("C.up")
							}
							if err != nil {
								return err
							}
							fwd, err := out.GetMessage()
							if err != nil {
								return err
							}
							fwd.(*pingMsg).value = m.(*pingMsg).value + 1
							return out.Send(fwd, p.Priority())
						}
						if _, err := core.AddInPort(cc, bSMM, sync("in", core.HandlerFunc(handler))); err != nil {
							return err
						}
						if shadow {
							// Shadow port: registered directly with the
							// grandparent's SMM (Fig. 5).
							_, err := core.AddOutPort(cc, aSMM, core.OutPortConfig{
								Name: "sh", Type: pingType, Dests: []string{"A.fromC"},
							})
							return err
						}
						_, err := core.AddOutPort(cc, bSMM, core.OutPortConfig{
							Name: "up", Type: pingType, Dests: []string{"B.fromC"},
						})
						return err
					},
				})
			},
		})
	})
	if err != nil {
		app.Stop()
		return nil, err
	}
	if err := app.Start(); err != nil {
		app.Stop()
		return nil, err
	}
	return sa, nil
}

func (sa *shadowApp) roundTrip(v int64) (int64, error) {
	msg, err := sa.out.GetMessage()
	if err != nil {
		return 0, err
	}
	msg.(*pingMsg).value = v
	if err := sa.out.Send(msg, 3); err != nil {
		return 0, err
	}
	select {
	case got := <-sa.done:
		return got, nil
	case <-time.After(10 * time.Second):
		return 0, fmt.Errorf("shadow app round trip timed out")
	}
}

func (sa *shadowApp) close() { sa.app.Stop() }

// RunAblationShadowPort compares the shadow-port path (grandchild →
// grandparent directly) against relaying through the parent, per Fig. 5 of
// the paper.
func RunAblationShadowPort(warmup, observations int) ([]AblationRow, error) {
	variants := []struct {
		name   string
		shadow bool
	}{
		{"parent-relay", false},
		{"shadow-port", true},
	}
	var rows []AblationRow
	for _, v := range variants {
		sa, err := newShadowApp(v.shadow)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		var i int64
		restore := quiesceGC()
		summary, err := metrics.RunSteadyState(warmup, observations, func() error {
			i++
			_, err := sa.roundTrip(i)
			return err
		})
		restore()
		sa.close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		rows = append(rows, AblationRow{Variant: v.name, Summary: summary})
	}
	return rows, nil
}
