package transport_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/fault"
	"repro/internal/giop"
	"repro/internal/transport"
)

// These tests pin the frame-buffer release contract across every transport
// the ORBs run on: a read loop that pulls frames with FrameReader.NextFrame
// must end with zero live FrameBufs — whatever the wire did to the framing.
// The fault variant injects benign partial reads so frames arrive sliced at
// arbitrary header/body boundaries, exercising the resumable paths that a
// clean TCP or in-process stream rarely hits.

// frameNetworks enumerates clean TCP, clean inproc, and a fault-wrapped
// inproc whose reads deliver random short prefixes on both sides.
func frameNetworks() []struct {
	name  string
	mk    func() transport.Network
	addr  string
	stats func() fault.Stats
} {
	var fn *fault.Network
	return []struct {
		name  string
		mk    func() transport.Network
		addr  string
		stats func() fault.Stats
	}{
		{name: "tcp", mk: func() transport.Network { return transport.TCP{} }, addr: "127.0.0.1:0"},
		{name: "inproc", mk: func() transport.Network { return transport.NewInproc() }, addr: ""},
		{
			name: "fault-partial-read",
			mk: func() transport.Network {
				fn = fault.New(transport.NewInproc(), fault.Config{
					Seed:            42,
					PartialReadProb: 0.8,
					WrapAccepted:    true,
				})
				return fn
			},
			addr:  "",
			stats: func() fault.Stats { return fn.Stats() },
		},
	}
}

// TestFrameReleaseParity streams a mixed batch of GIOP frames through each
// network into a NextFrame loop and demands: every body reassembles intact,
// and no FrameBuf is live once the stream drains.
func TestFrameReleaseParity(t *testing.T) {
	payloads := [][]byte{
		[]byte("tiny"),
		bytes.Repeat([]byte{0x5A}, 300),   // spans several injected short reads
		bytes.Repeat([]byte{0xC3}, 5000),  // crosses the 4096 size class
		{},                                // empty payload still frames
		bytes.Repeat([]byte{0x11}, 70000), // top size classes
	}
	for _, nw := range frameNetworks() {
		t.Run(nw.name, func(t *testing.T) {
			giop.SetFrameLeakCheck(true)
			defer giop.SetFrameLeakCheck(false)

			n := nw.mk()
			l, err := n.Listen(nw.addr)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()

			type result struct {
				bodies [][]byte
				err    error
			}
			done := make(chan result, 1)
			go func() {
				c, err := l.Accept()
				if err != nil {
					done <- result{err: err}
					return
				}
				fr := giop.NewFrameReader(c, 0)
				var res result
				for {
					h, fb, err := fr.NextFrame()
					if err == io.EOF {
						break
					}
					if err != nil {
						res.err = err
						break
					}
					req, err := giop.UnmarshalRequest(h.Order, fb.Body())
					if err != nil {
						res.err = fmt.Errorf("decode: %w", err)
						fb.Release()
						break
					}
					// The handler keeps the payload past the frame's release,
					// so it must detach — the copy is the explicit escape.
					res.bodies = append(res.bodies, append([]byte(nil), req.Payload...))
					fb.Release()
				}
				// Close before reporting: the leak check on the main
				// goroutine must observe any partial frame already released.
				fr.Close()
				c.Close()
				done <- res
			}()

			c, err := n.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range payloads {
				wire := giop.MarshalRequest(nil, giop.LittleEndian, &giop.Request{
					RequestID: uint32(i + 1), Operation: "echo", ObjectKey: []byte("k"), Payload: p,
				})
				if _, err := c.Write(wire); err != nil {
					t.Fatalf("frame %d: %v", i, err)
				}
			}
			c.Close()

			res := <-done
			if res.err != nil {
				t.Fatal(res.err)
			}
			if len(res.bodies) != len(payloads) {
				t.Fatalf("reassembled %d frames, want %d", len(res.bodies), len(payloads))
			}
			for i, p := range payloads {
				if !bytes.Equal(res.bodies[i], p) {
					t.Errorf("frame %d: body mismatch (%d bytes vs %d)", i, len(res.bodies[i]), len(p))
				}
			}
			if leaks := giop.CheckFrameLeaks(); len(leaks) != 0 {
				t.Errorf("live frames after drain: %v", leaks)
			}
			if nw.stats != nil {
				if s := nw.stats(); s.PartialReads == 0 {
					t.Error("fault network injected no partial reads; scenario did not exercise resume paths")
				}
			}
		})
	}
}

// TestFrameAbandonMidFrameParity kills the connection partway through a
// frame body on each network; the reader must surface an error, and Close
// must return the partial frame to its pool.
func TestFrameAbandonMidFrameParity(t *testing.T) {
	for _, nw := range frameNetworks() {
		t.Run(nw.name, func(t *testing.T) {
			giop.SetFrameLeakCheck(true)
			defer giop.SetFrameLeakCheck(false)

			n := nw.mk()
			l, err := n.Listen(nw.addr)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()

			errc := make(chan error, 1)
			go func() {
				c, err := l.Accept()
				if err != nil {
					errc <- err
					return
				}
				fr := giop.NewFrameReader(c, 0)
				var lerr error
				for {
					_, fb, err := fr.NextFrame()
					if err != nil {
						lerr = err
						break
					}
					fb.Release()
				}
				fr.Close()
				c.Close()
				errc <- lerr
			}()

			c, err := n.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			wire := giop.MarshalRequest(nil, giop.BigEndian, &giop.Request{
				RequestID: 1, Operation: "op", ObjectKey: []byte("k"),
				Payload: bytes.Repeat([]byte{0xEE}, 600),
			})
			// Header plus half the body, then hang up mid-frame.
			if _, err := c.Write(wire[:giop.HeaderSize+200]); err != nil {
				t.Fatal(err)
			}
			c.Close()

			err = <-errc
			if err == nil || err == io.EOF {
				t.Fatalf("read loop ended with %v, want a mid-frame error", err)
			}
			if leaks := giop.CheckFrameLeaks(); len(leaks) != 0 {
				t.Errorf("abandoned reader leaked frames: %v", leaks)
			}
		})
	}
}
