// Package transport provides the byte-stream substrate both ORBs run on:
// real TCP (the paper's loopback-network setup) and an in-process pipe
// network for deterministic benchmarking. Both expose the same Dial/Listen
// interface, so the ORBs are transport-agnostic.
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Conn is a bidirectional byte stream between a client and a server.
type Conn interface {
	io.ReadWriteCloser
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks until a connection arrives or the listener closes.
	Accept() (Conn, error)
	// Close stops the listener; blocked Accepts return ErrClosed.
	Close() error
	// Addr returns the bound address, usable with Dial.
	Addr() string
}

// Network creates listeners and connections.
type Network interface {
	// Listen binds addr; for TCP an empty port picks an ephemeral one.
	Listen(addr string) (Listener, error)
	// Dial connects to a listener's address.
	Dial(addr string) (Conn, error)
}

// ErrClosed reports use of a closed listener or network endpoint.
var ErrClosed = errors.New("transport: closed")

// TCP is the real-network implementation, matching the paper's
// "single machine connected via loopback network" setup.
type TCP struct{}

// Listen implements Network.
func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial implements Network.
func (TCP) Dial(addr string) (Conn, error) {
	return net.Dial("tcp", addr)
}

type tcpListener struct{ l net.Listener }

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		// Request/reply traffic: never batch small frames.
		_ = tc.SetNoDelay(true)
	}
	return c, nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// Inproc is an in-process network: Dial returns one end of a net.Pipe whose
// other end is delivered to the listener. It gives the benchmarks a
// deterministic, kernel-free transport.
type Inproc struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
	next      int
}

// NewInproc returns an empty in-process network.
func NewInproc() *Inproc {
	return &Inproc{listeners: make(map[string]*inprocListener)}
}

// Listen implements Network. An empty addr allocates "inproc-N".
func (n *Inproc) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if addr == "" {
		n.next++
		addr = fmt.Sprintf("inproc-%d", n.next)
	}
	if _, dup := n.listeners[addr]; dup {
		return nil, fmt.Errorf("transport: address %q already bound", addr)
	}
	l := &inprocListener{net: n, addr: addr, backlog: make(chan Conn, 16)}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (n *Inproc) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l := n.listeners[addr]
	n.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	client, server := net.Pipe()
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done():
		return nil, ErrClosed
	}
}

type inprocListener struct {
	net     *Inproc
	addr    string
	backlog chan Conn

	mu     sync.Mutex
	closed chan struct{}
}

func (l *inprocListener) done() chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed == nil {
		l.closed = make(chan struct{})
	}
	return l.closed
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done():
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.mu.Lock()
	if l.closed == nil {
		l.closed = make(chan struct{})
	}
	select {
	case <-l.closed:
		l.mu.Unlock()
		return nil
	default:
	}
	close(l.closed)
	l.mu.Unlock()

	l.net.mu.Lock()
	delete(l.net.listeners, l.addr)
	l.net.mu.Unlock()
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }
