// Package transport provides the byte-stream substrate both ORBs run on:
// real TCP (the paper's loopback-network setup) and an in-process pipe
// network for deterministic benchmarking. Both expose the same Dial/Listen
// interface, so the ORBs are transport-agnostic.
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/telemetry"
)

// Conn is a bidirectional byte stream between a client and a server.
type Conn interface {
	io.ReadWriteCloser
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks until a connection arrives or the listener closes.
	Accept() (Conn, error)
	// Close stops the listener; blocked Accepts return ErrClosed.
	Close() error
	// Addr returns the bound address, usable with Dial.
	Addr() string
}

// Network creates listeners and connections.
type Network interface {
	// Listen binds addr; for TCP an empty port picks an ephemeral one.
	Listen(addr string) (Listener, error)
	// Dial connects to a listener's address.
	Dial(addr string) (Conn, error)
}

// BuffersWriter is the optional vectored-write capability of a Conn: a
// batch of buffers delivered to the peer as one logical write. Connections
// that expose it (or that are net.Conns, which Go can writev under the
// hood) let the ORBs' write-coalescing layer flush a whole batch of GIOP
// frames in one syscall; everything else falls back to sequential Writes
// with identical observable behaviour.
type BuffersWriter interface {
	// WriteBuffers writes every buffer in order and returns the total byte
	// count written. On error the count reflects the prefix that reached
	// the connection. The bufs slice and its elements may be consumed
	// (resliced) by the call; callers must not reuse their contents.
	WriteBuffers(bufs [][]byte) (int64, error)
}

// WriteBuffers writes bufs to c as one logical vectored write: through the
// connection's own BuffersWriter capability when it has one, through
// net.Buffers (writev on TCP, sequential writes on pipes) when c is a
// net.Conn, and through plain sequential Writes otherwise — which is how a
// fault-injection wrapper sees each frame individually and can fault any
// one of them. All three paths deliver the same byte stream to the peer;
// on error the returned count is the bytes written before the failure.
// The bufs slice is consumed: its header and elements may be resliced.
func WriteBuffers(c Conn, bufs [][]byte) (int64, error) {
	switch w := c.(type) {
	case BuffersWriter:
		return w.WriteBuffers(bufs)
	case net.Conn:
		nb := net.Buffers(bufs)
		return nb.WriteTo(w)
	default:
		var total int64
		for _, b := range bufs {
			n, err := c.Write(b)
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
		return total, nil
	}
}

// ErrClosed reports use of a closed listener or network endpoint.
var ErrClosed = errors.New("transport: closed")

// ErrNoListener reports a dial to an address nothing is listening on.
var ErrNoListener = errors.New("transport: no listener")

// ErrAddrInUse reports a bind to an already-bound address.
var ErrAddrInUse = errors.New("transport: address in use")

// OpError wraps a transport failure with the operation ("dial", "listen",
// "accept") and the address it targeted, so callers can both inspect the
// cause with errors.Is/As and report where it happened. It mirrors
// net.OpError for the in-process network, which otherwise loses that
// context.
type OpError struct {
	Op   string
	Addr string
	Err  error
}

// Error implements error.
func (e *OpError) Error() string {
	return "transport: " + e.Op + " " + e.Addr + ": " + e.Err.Error()
}

// Unwrap exposes the cause to errors.Is/As.
func (e *OpError) Unwrap() error { return e.Err }

// opError wraps err and records it as a telemetry fault: transport failures
// are exactly the cold-path events the flight recorder exists to capture.
func opError(op, addr string, err error) error {
	e := &OpError{Op: op, Addr: addr, Err: err}
	telemetry.RecordFault("transport."+op, e)
	return e
}

// TCP is the real-network implementation, matching the paper's
// "single machine connected via loopback network" setup.
type TCP struct{}

// Listen implements Network.
func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, opError("listen", addr, err)
	}
	return &tcpListener{l: l}, nil
}

// Dial implements Network.
func (TCP) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, opError("dial", addr, err)
	}
	return c, nil
}

type tcpListener struct{ l net.Listener }

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			// Normal teardown, not a fault.
			return nil, ErrClosed
		}
		return nil, opError("accept", t.Addr(), err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		// Request/reply traffic: never batch small frames.
		_ = tc.SetNoDelay(true)
	}
	return c, nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// Inproc is an in-process network: Dial returns one end of a net.Pipe whose
// other end is delivered to the listener. It gives the benchmarks a
// deterministic, kernel-free transport.
type Inproc struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
	next      int
}

// NewInproc returns an empty in-process network.
func NewInproc() *Inproc {
	return &Inproc{listeners: make(map[string]*inprocListener)}
}

// Listen implements Network. An empty addr allocates "inproc-N".
func (n *Inproc) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if addr == "" {
		n.next++
		addr = fmt.Sprintf("inproc-%d", n.next)
	}
	if _, dup := n.listeners[addr]; dup {
		return nil, opError("listen", addr, ErrAddrInUse)
	}
	l := &inprocListener{net: n, addr: addr, backlog: make(chan Conn, 16)}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (n *Inproc) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l := n.listeners[addr]
	n.mu.Unlock()
	if l == nil {
		return nil, opError("dial", addr, ErrNoListener)
	}
	client, server := net.Pipe()
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done():
		return nil, opError("dial", addr, ErrClosed)
	}
}

type inprocListener struct {
	net     *Inproc
	addr    string
	backlog chan Conn

	mu     sync.Mutex
	closed chan struct{}
}

func (l *inprocListener) done() chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed == nil {
		l.closed = make(chan struct{})
	}
	return l.closed
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done():
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.mu.Lock()
	if l.closed == nil {
		l.closed = make(chan struct{})
	}
	select {
	case <-l.closed:
		l.mu.Unlock()
		return nil
	default:
	}
	close(l.closed)
	l.mu.Unlock()

	l.net.mu.Lock()
	delete(l.net.listeners, l.addr)
	l.net.mu.Unlock()
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }
