package transport

import (
	"errors"
	"io"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

func exchange(t *testing.T, n Network, addr string) {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if _, err := c.Write([]byte("pong!")); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()

	c, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping!")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "pong!" {
		t.Errorf("reply = %q", buf)
	}
	wg.Wait()
}

func TestTCPRoundTrip(t *testing.T) {
	exchange(t, TCP{}, "127.0.0.1:0")
}

func TestInprocRoundTrip(t *testing.T) {
	exchange(t, NewInproc(), "")
}

func TestInprocAddresses(t *testing.T) {
	n := NewInproc()
	l1, err := n.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	l2, err := n.Listen("custom")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l1.Addr() == l2.Addr() {
		t.Error("addresses collide")
	}
	if _, err := n.Listen("custom"); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("duplicate bind err = %v, want ErrAddrInUse", err)
	}
	if _, err := n.Dial("nowhere"); !errors.Is(err, ErrNoListener) {
		t.Errorf("dial to unbound address err = %v, want ErrNoListener", err)
	}
}

// TestOpErrorInspectable pins the wrapped-error contract: transport failures
// carry op and addr, unwrap to their sentinel cause, and land in the
// telemetry fault log.
func TestOpErrorInspectable(t *testing.T) {
	n := NewInproc()
	_, before := telemetry.Default.Faults()
	_, err := n.Dial("ghost")
	if err == nil {
		t.Fatal("dial to unbound address accepted")
	}
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("err %T is not *OpError", err)
	}
	if oe.Op != "dial" || oe.Addr != "ghost" || !errors.Is(oe, ErrNoListener) {
		t.Errorf("OpError = %+v", oe)
	}
	faults, total := telemetry.Default.Faults()
	if total <= before || len(faults) == 0 {
		t.Fatal("dial failure not recorded as a telemetry fault")
	}
	last := faults[len(faults)-1]
	if last.Label != "transport.dial" {
		t.Errorf("fault label = %q", last.Label)
	}
}

// TestTCPDialFailureWrapped covers the real-network dial error path: nothing
// listens on the ephemeral port just released.
func TestTCPDialFailureWrapped(t *testing.T) {
	l, err := TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	l.Close()
	_, err = TCP{}.Dial(addr)
	if err == nil {
		t.Skip("port was rebound between close and dial")
	}
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("err %T is not *OpError", err)
	}
	if oe.Op != "dial" || oe.Addr != addr {
		t.Errorf("OpError = %+v", oe)
	}
}

// TestPeerCloseMidFrame checks the reader-side contract the ORBs rely on: a
// connection dropped mid-frame surfaces io.ErrUnexpectedEOF through the
// giop reader's wrapping (verified here at the transport level by closing
// after a partial write).
func TestPeerCloseMidFrame(t *testing.T) {
	n := NewInproc()
	l, err := n.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		accepted <- c
	}()
	c, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	go func() {
		// Half a would-be frame, then gone.
		_, _ = c.Write([]byte{1, 2, 3})
		c.Close()
	}()
	buf := make([]byte, 8)
	if _, err := io.ReadFull(server, buf); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("short read err = %v, want io.ErrUnexpectedEOF", err)
	}
	server.Close()
}

func TestInprocClose(t *testing.T) {
	n := NewInproc()
	l, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Errorf("accept after close err = %v", err)
	}
	// Close is idempotent.
	if err := l.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	// Dial after close fails.
	if _, err := n.Dial("x"); err == nil {
		t.Error("dial to closed listener accepted")
	}
	// The address is reusable.
	l2, err := n.Listen("x")
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	l2.Close()
}

func TestTCPListenerClose(t *testing.T) {
	l, err := TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Errorf("accept after close err = %v", err)
	}
}
