package transport

import (
	"errors"
	"io"
	"sync"
	"testing"
)

func exchange(t *testing.T, n Network, addr string) {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if _, err := c.Write([]byte("pong!")); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()

	c, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping!")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "pong!" {
		t.Errorf("reply = %q", buf)
	}
	wg.Wait()
}

func TestTCPRoundTrip(t *testing.T) {
	exchange(t, TCP{}, "127.0.0.1:0")
}

func TestInprocRoundTrip(t *testing.T) {
	exchange(t, NewInproc(), "")
}

func TestInprocAddresses(t *testing.T) {
	n := NewInproc()
	l1, err := n.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	l2, err := n.Listen("custom")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l1.Addr() == l2.Addr() {
		t.Error("addresses collide")
	}
	if _, err := n.Listen("custom"); err == nil {
		t.Error("duplicate bind accepted")
	}
	if _, err := n.Dial("nowhere"); err == nil {
		t.Error("dial to unbound address accepted")
	}
}

func TestInprocClose(t *testing.T) {
	n := NewInproc()
	l, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Errorf("accept after close err = %v", err)
	}
	// Close is idempotent.
	if err := l.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	// Dial after close fails.
	if _, err := n.Dial("x"); err == nil {
		t.Error("dial to closed listener accepted")
	}
	// The address is reusable.
	l2, err := n.Listen("x")
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	l2.Close()
}

func TestTCPListenerClose(t *testing.T) {
	l, err := TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Errorf("accept after close err = %v", err)
	}
}
