package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// networks enumerates the two transport implementations with a listen
// address valid for each; parity tests run the same scenario over both.
func networks() []struct {
	name string
	mk   func() Network
	addr string
} {
	return []struct {
		name string
		mk   func() Network
		addr string
	}{
		{name: "tcp", mk: func() Network { return TCP{} }, addr: "127.0.0.1:0"},
		{name: "inproc", mk: func() Network { return NewInproc() }, addr: ""},
	}
}

// TestOpErrorUnwrapChains pins the error contract table-wise: every
// transport failure mode yields a *OpError whose chain reaches the expected
// sentinel via errors.Is, and the chain survives another layer of fmt.Errorf
// wrapping — which is exactly how the ORBs consume these errors.
func TestOpErrorUnwrapChains(t *testing.T) {
	inproc := NewInproc()
	heldL, err := inproc.Listen("held")
	if err != nil {
		t.Fatal(err)
	}
	defer heldL.Close()
	closedL, err := inproc.Listen("gone")
	if err != nil {
		t.Fatal(err)
	}
	closedL.Close()

	cases := []struct {
		name     string
		make     func() error
		wantOp   string
		sentinel error // nil = any cause acceptable
	}{
		{
			name:     "inproc dial no listener",
			make:     func() error { _, err := inproc.Dial("nowhere"); return err },
			wantOp:   "dial",
			sentinel: ErrNoListener,
		},
		{
			name:     "inproc dial closed listener",
			make:     func() error { _, err := inproc.Dial("gone"); return err },
			wantOp:   "dial",
			sentinel: ErrNoListener,
		},
		{
			name:     "inproc duplicate bind",
			make:     func() error { _, err := inproc.Listen("held"); return err },
			wantOp:   "listen",
			sentinel: ErrAddrInUse,
		},
		{
			name: "tcp dial nothing listening",
			make: func() error {
				l, err := TCP{}.Listen("127.0.0.1:0")
				if err != nil {
					return err
				}
				addr := l.Addr()
				l.Close()
				_, err = TCP{}.Dial(addr)
				return err
			},
			wantOp: "dial",
		},
		{
			name:     "tcp bad listen address",
			make:     func() error { _, err := TCP{}.Listen("256.0.0.1:bogus"); return err },
			wantOp:   "listen",
			sentinel: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.make()
			if err == nil {
				t.Skip("operation unexpectedly succeeded (environment-dependent)")
			}
			var oe *OpError
			if !errors.As(err, &oe) {
				t.Fatalf("err %T (%v) does not unwrap to *OpError", err, err)
			}
			if oe.Op != tc.wantOp {
				t.Errorf("Op = %q, want %q", oe.Op, tc.wantOp)
			}
			if oe.Addr == "" {
				t.Error("OpError lost the address")
			}
			if tc.sentinel != nil && !errors.Is(err, tc.sentinel) {
				t.Errorf("errors.Is(%v, %v) = false", err, tc.sentinel)
			}
			// One more wrapping layer — the ORBs' fmt.Errorf("...: %w", err)
			// idiom — must not break the chain.
			wrapped := fmt.Errorf("orb client: write: %w", err)
			if !errors.As(wrapped, &oe) {
				t.Error("fmt.Errorf wrapping broke errors.As(*OpError)")
			}
			if tc.sentinel != nil && !errors.Is(wrapped, tc.sentinel) {
				t.Error("fmt.Errorf wrapping broke errors.Is to the sentinel")
			}
		})
	}
}

// TestListenerCloseRaceParity closes a listener while an accept loop and a
// storm of dialers are racing it, on both networks. The parity contract:
// the accept loop's terminal error satisfies errors.Is(err, ErrClosed);
// every dial either succeeds with a usable conn or fails with an
// inspectable error (never a hang or panic); and a dial issued after the
// close definitely fails.
func TestListenerCloseRaceParity(t *testing.T) {
	for _, nw := range networks() {
		t.Run(nw.name, func(t *testing.T) {
			n := nw.mk()
			l, err := n.Listen(nw.addr)
			if err != nil {
				t.Fatal(err)
			}
			addr := l.Addr()

			acceptErr := make(chan error, 1)
			go func() {
				for {
					c, err := l.Accept()
					if err != nil {
						acceptErr <- err
						return
					}
					c.Close()
				}
			}()

			const dialers = 8
			var wg sync.WaitGroup
			start := make(chan struct{})
			for i := 0; i < dialers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					<-start
					c, err := n.Dial(addr)
					if err == nil {
						c.Close()
						return
					}
					var oe *OpError
					if !errors.As(err, &oe) {
						t.Errorf("dialer %d: err %T (%v) is not *OpError", i, err, err)
					}
				}(i)
			}
			close(start)
			l.Close()
			wg.Wait()

			if err := <-acceptErr; !errors.Is(err, ErrClosed) {
				t.Errorf("accept loop terminal err = %v, want chain to ErrClosed", err)
			}
			if _, err := n.Dial(addr); err == nil {
				t.Error("dial after close succeeded")
			}
		})
	}
}
