package transport_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/fault"
	"repro/internal/transport"
)

// The vectored-write capability has three delivery paths — an explicit
// BuffersWriter, net.Conn (writev on TCP, sequential on pipes), and the
// plain sequential fallback — and the parity contract is that every one of
// them puts the identical byte stream on the wire. These tests run the same
// batches over TCP, the in-process network, and a fault wrapper (which,
// exposing only Write, exercises the sequential fallback so injected faults
// land on individual frames).

// vecNetworks enumerates the transports the parity tests sweep.
func vecNetworks() []struct {
	name string
	mk   func() transport.Network
	addr string
} {
	return []struct {
		name string
		mk   func() transport.Network
		addr string
	}{
		{name: "tcp", mk: func() transport.Network { return transport.TCP{} }, addr: "127.0.0.1:0"},
		{name: "inproc", mk: func() transport.Network { return transport.NewInproc() }, addr: ""},
	}
}

// echoAccept accepts one connection and streams everything it reads into
// the returned channel when the connection closes.
func collectAccept(t *testing.T, l transport.Listener) <-chan []byte {
	t.Helper()
	out := make(chan []byte, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			out <- nil
			return
		}
		var buf bytes.Buffer
		_, _ = io.Copy(&buf, c)
		out <- buf.Bytes()
	}()
	return out
}

// batches the tests replay on every transport: many small frames, a lone
// frame, empty buffers mixed in, and one large frame.
func vecBatches() [][][]byte {
	big := bytes.Repeat([]byte{0xAB}, 8192)
	return [][][]byte{
		{[]byte("one"), []byte("two"), []byte("three"), []byte("four")},
		{[]byte("lone-frame")},
		{{}, []byte("a"), {}, []byte("b")},
		{big, []byte("tail")},
	}
}

func flatten(bufs [][]byte) []byte {
	var all []byte
	for _, b := range bufs {
		all = append(all, b...)
	}
	return all
}

// clone deep-copies a batch: WriteBuffers consumes its argument.
func clone(bufs [][]byte) [][]byte {
	out := make([][]byte, len(bufs))
	for i, b := range bufs {
		out[i] = append([]byte(nil), b...)
	}
	return out
}

// TestWriteBuffersParity writes identical batches over TCP and inproc and
// demands the byte stream and reported count match on both.
func TestWriteBuffersParity(t *testing.T) {
	for _, nw := range vecNetworks() {
		t.Run(nw.name, func(t *testing.T) {
			for i, batch := range vecBatches() {
				n := nw.mk()
				l, err := n.Listen(nw.addr)
				if err != nil {
					t.Fatal(err)
				}
				got := collectAccept(t, l)
				c, err := n.Dial(l.Addr())
				if err != nil {
					t.Fatal(err)
				}
				want := flatten(batch)
				wrote, err := transport.WriteBuffers(c, clone(batch))
				if err != nil {
					t.Fatalf("batch %d: WriteBuffers: %v", i, err)
				}
				if wrote != int64(len(want)) {
					t.Errorf("batch %d: wrote %d bytes, want %d", i, wrote, len(want))
				}
				c.Close()
				if b := <-got; !bytes.Equal(b, want) {
					t.Errorf("batch %d: stream mismatch: got %d bytes, want %d", i, len(b), len(want))
				}
				l.Close()
			}
		})
	}
}

// buffersWriterConn wraps a Conn with an explicit BuffersWriter so the
// capability branch (not the net.Conn branch) is exercised and observable.
type buffersWriterConn struct {
	transport.Conn
	calls int
}

func (c *buffersWriterConn) WriteBuffers(bufs [][]byte) (int64, error) {
	c.calls++
	var total int64
	for _, b := range bufs {
		n, err := c.Conn.Write(b)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// TestWriteBuffersCapabilityPreferred pins the dispatch order: a connection
// advertising BuffersWriter gets exactly one WriteBuffers call, and the
// stream it delivers matches the other paths byte for byte.
func TestWriteBuffersCapabilityPreferred(t *testing.T) {
	n := transport.NewInproc()
	l, err := n.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := collectAccept(t, l)
	raw, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := &buffersWriterConn{Conn: raw}
	batch := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	want := flatten(batch)
	wrote, err := transport.WriteBuffers(c, clone(batch))
	if err != nil {
		t.Fatal(err)
	}
	if c.calls != 1 {
		t.Errorf("BuffersWriter called %d times, want 1", c.calls)
	}
	if wrote != int64(len(want)) {
		t.Errorf("wrote %d bytes, want %d", wrote, len(want))
	}
	c.Close()
	if b := <-got; !bytes.Equal(b, want) {
		t.Errorf("stream mismatch: got %q, want %q", b, want)
	}
}

// TestWriteBuffersPartialWriteFault drives a batch through the fault
// wrapper with partial writes forced on: the wrapper exposes only Write, so
// WriteBuffers degrades to the sequential path and the injected fault cuts
// one frame. The contract, on both underlying transports: the reported
// count is a strict prefix of the batch, the error chains to
// fault.ErrInjected, and the peer received exactly the bytes counted.
func TestWriteBuffersPartialWriteFault(t *testing.T) {
	for _, nw := range vecNetworks() {
		t.Run(nw.name, func(t *testing.T) {
			fn := fault.New(nw.mk(), fault.Config{Seed: 42, PartialWriteProb: 1})
			l, err := fn.Listen(nw.addr)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			got := collectAccept(t, l)
			c, err := fn.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			batch := [][]byte{
				[]byte("frame-one"), []byte("frame-two"), []byte("frame-three"),
			}
			want := flatten(batch)
			wrote, err := transport.WriteBuffers(c, clone(batch))
			if err == nil {
				t.Fatal("expected an injected partial-write failure")
			}
			if !errors.Is(err, fault.ErrInjected) {
				t.Errorf("error %v does not chain to fault.ErrInjected", err)
			}
			if wrote <= 0 || wrote >= int64(len(want)) {
				t.Errorf("wrote %d bytes, want a strict prefix of %d", wrote, len(want))
			}
			c.Close()
			b := <-got
			if int64(len(b)) != wrote {
				t.Errorf("peer received %d bytes, writer reported %d", len(b), wrote)
			}
			if !bytes.Equal(b, want[:len(b)]) {
				t.Error("received bytes are not a prefix of the batch")
			}
			// The severed connection must fail subsequent batches fast.
			if _, err := transport.WriteBuffers(c, [][]byte{[]byte("more")}); err == nil {
				t.Error("write after sever succeeded")
			}
		})
	}
}
