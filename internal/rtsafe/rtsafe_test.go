package rtsafe

import (
	"errors"
	"hash/maphash"
	"testing"
	"testing/quick"

	"repro/internal/memory"
)

func testArena(t *testing.T) (*memory.Context, *memory.Area) {
	t.Helper()
	model := memory.NewModel(memory.Config{ImmortalSize: 1 << 20})
	return model.NewContext(), model.Immortal()
}

func TestListBasics(t *testing.T) {
	ctx, area := testArena(t)
	l, err := NewList[int](ctx, area, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.Cap() != 3 || l.Len() != 0 {
		t.Errorf("cap/len = %d/%d", l.Cap(), l.Len())
	}
	for i := 1; i <= 3; i++ {
		if err := l.Append(i * 10); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Append(40); !errors.Is(err, ErrFull) {
		t.Errorf("overflow err = %v", err)
	}
	if v, err := l.Get(1); err != nil || v != 20 {
		t.Errorf("Get(1) = %d, %v", v, err)
	}
	if _, err := l.Get(3); err == nil {
		t.Error("out of range Get accepted")
	}
	if _, err := l.Get(-1); err == nil {
		t.Error("negative Get accepted")
	}
	if err := l.Set(0, 11); err != nil {
		t.Fatal(err)
	}
	if err := l.Set(9, 1); err == nil {
		t.Error("out of range Set accepted")
	}

	var seen []int
	l.Each(func(i, v int) bool {
		seen = append(seen, v)
		return true
	})
	if len(seen) != 3 || seen[0] != 11 || seen[1] != 20 || seen[2] != 30 {
		t.Errorf("each = %v", seen)
	}
	// Early stop.
	count := 0
	l.Each(func(i, v int) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}

	if v, err := l.RemoveLast(); err != nil || v != 30 {
		t.Errorf("RemoveLast = %d, %v", v, err)
	}
	l.Clear()
	if l.Len() != 0 {
		t.Error("clear failed")
	}
	if _, err := l.RemoveLast(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty RemoveLast err = %v", err)
	}
}

func TestListChargesArea(t *testing.T) {
	model := memory.NewModel(memory.Config{ImmortalSize: 64})
	ctx := model.NewContext()
	// 3 slots * 32 bytes = 96 > 64.
	if _, err := NewList[int](ctx, model.Immortal(), 3); !errors.Is(err, memory.ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
	if _, err := NewList[int](ctx, model.Immortal(), 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestQueueFIFO(t *testing.T) {
	ctx, area := testArena(t)
	q, err := NewQueue[string](ctx, area, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Pop(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty pop err = %v", err)
	}
	if _, err := q.Peek(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty peek err = %v", err)
	}
	if err := q.Push("a"); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("b"); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("c"); !errors.Is(err, ErrFull) {
		t.Errorf("overflow err = %v", err)
	}
	if v, _ := q.Peek(); v != "a" {
		t.Errorf("peek = %q", v)
	}
	if v, _ := q.Pop(); v != "a" {
		t.Errorf("pop = %q", v)
	}
	// Wrap-around.
	if err := q.Push("c"); err != nil {
		t.Fatal(err)
	}
	if v, _ := q.Pop(); v != "b" {
		t.Errorf("pop = %q", v)
	}
	if v, _ := q.Pop(); v != "c" {
		t.Errorf("pop = %q", v)
	}
	if q.Len() != 0 || q.Cap() != 2 {
		t.Errorf("len/cap = %d/%d", q.Len(), q.Cap())
	}
}

func strHash() func(string) uint64 {
	seed := maphash.MakeSeed()
	return func(s string) uint64 { return maphash.String(seed, s) }
}

func TestMapBasics(t *testing.T) {
	ctx, area := testArena(t)
	m, err := NewMap[string, int](ctx, area, 4, strHash())
	if err != nil {
		t.Fatal(err)
	}
	if m.Cap() != 4 {
		t.Errorf("cap = %d", m.Cap())
	}
	for i, k := range []string{"a", "b", "c", "d"} {
		if err := m.Put(k, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Put("e", 5); !errors.Is(err, ErrFull) {
		t.Errorf("overflow err = %v", err)
	}
	// Replacement of an existing key is allowed at capacity.
	if err := m.Put("a", 100); err != nil {
		t.Fatal(err)
	}
	if v, err := m.Get("a"); err != nil || v != 100 {
		t.Errorf("Get(a) = %d, %v", v, err)
	}
	if _, err := m.Get("zz"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key err = %v", err)
	}
	if err := m.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
	if m.Len() != 3 {
		t.Errorf("len = %d", m.Len())
	}
	// Tombstone reuse: a new key fits where b was.
	if err := m.Put("e", 5); err != nil {
		t.Fatalf("post-delete insert: %v", err)
	}
	if v, err := m.Get("e"); err != nil || v != 5 {
		t.Errorf("Get(e) = %d, %v", v, err)
	}

	sum := 0
	m.Each(func(k string, v int) bool { sum += v; return true })
	if sum != 100+2+3+5 {
		t.Errorf("each sum = %d", sum)
	}
	n := 0
	m.Each(func(k string, v int) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestMapValidation(t *testing.T) {
	ctx, area := testArena(t)
	if _, err := NewMap[string, int](ctx, area, 4, nil); err == nil {
		t.Error("nil hash accepted")
	}
}

// Property: the map behaves like Go's built-in map under any sequence of
// put/delete operations that fits in capacity.
func TestPropertyMapModel(t *testing.T) {
	type op struct {
		Key    uint8
		Val    int16
		Delete bool
	}
	hash := func(k uint8) uint64 { return uint64(k) * 0x9E3779B97F4A7C15 }
	f := func(ops []op) bool {
		const capacity = 32
		ctx, area := func() (*memory.Context, *memory.Area) {
			model := memory.NewModel(memory.Config{ImmortalSize: 1 << 20})
			return model.NewContext(), model.Immortal()
		}()
		m, err := NewMap[uint8, int16](ctx, area, capacity, hash)
		if err != nil {
			return false
		}
		model := make(map[uint8]int16)
		for _, o := range ops {
			if o.Delete {
				_, inModel := model[o.Key]
				err := m.Delete(o.Key)
				if inModel != (err == nil) {
					return false
				}
				delete(model, o.Key)
				continue
			}
			_, exists := model[o.Key]
			if !exists && len(model) == capacity {
				if err := m.Put(o.Key, o.Val); !errors.Is(err, ErrFull) {
					return false
				}
				continue
			}
			if err := m.Put(o.Key, o.Val); err != nil {
				return false
			}
			model[o.Key] = o.Val
		}
		if m.Len() != len(model) {
			return false
		}
		for k, want := range model {
			got, err := m.Get(k)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the queue preserves FIFO order for any push/pop interleaving.
func TestPropertyQueueFIFO(t *testing.T) {
	f := func(pushes []int32, popBias uint8) bool {
		model := memory.NewModel(memory.Config{ImmortalSize: 1 << 20})
		ctx := model.NewContext()
		q, err := NewQueue[int32](ctx, model.Immortal(), 16)
		if err != nil {
			return false
		}
		var ref []int32
		for i, v := range pushes {
			if err := q.Push(v); err != nil {
				if !errors.Is(err, ErrFull) || len(ref) != 16 {
					return false
				}
			} else {
				ref = append(ref, v)
			}
			if (uint8(i)+popBias)%3 == 0 && len(ref) > 0 {
				got, err := q.Pop()
				if err != nil || got != ref[0] {
					return false
				}
				ref = ref[1:]
			}
		}
		for len(ref) > 0 {
			got, err := q.Pop()
			if err != nil || got != ref[0] {
				return false
			}
			ref = ref[1:]
		}
		_, err = q.Pop()
		return errors.Is(err, ErrEmpty)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
