// Package rtsafe provides RTSJ-safe collections for component
// implementations — the role Javolution plays in the paper ("the components
// may also use an RTSJ-safe library such as Javolution", §2 footnote).
//
// RTSJ-safe here means: every collection is created with a fixed capacity,
// charges its backing storage to a memory area up front, never allocates
// after construction, and therefore never triggers the collector or
// exhausts its region mid-flight. Operations are O(1) or O(n) with bounds
// known at construction, as predictable real-time code requires.
//
// Collections are not safe for concurrent use; like component state, each
// instance belongs to the single component whose scope it lives in.
package rtsafe

import (
	"errors"
	"fmt"

	"repro/internal/memory"
)

var (
	// ErrFull reports an insertion into a collection at capacity.
	ErrFull = errors.New("rtsafe: collection full")
	// ErrEmpty reports removal from an empty collection.
	ErrEmpty = errors.New("rtsafe: collection empty")
	// ErrNotFound reports a lookup of an absent key.
	ErrNotFound = errors.New("rtsafe: key not found")
)

// bytesPerSlot is the storage charged to the memory area per element slot.
// Elements are Go values held by reference; the charge models the RTSJ
// in-region storage an equivalent Javolution structure would occupy.
const bytesPerSlot = 32

// charge allocates the collection's backing budget from the area via ctx.
func charge(ctx *memory.Context, area *memory.Area, slots int) error {
	if slots <= 0 {
		return fmt.Errorf("rtsafe: non-positive capacity %d", slots)
	}
	_, err := ctx.AllocIn(area, slots*bytesPerSlot)
	return err
}

// List is a fixed-capacity slice-backed list.
type List[T any] struct {
	items []T
}

// NewList creates a list with the given capacity, charged to area.
func NewList[T any](ctx *memory.Context, area *memory.Area, capacity int) (*List[T], error) {
	if err := charge(ctx, area, capacity); err != nil {
		return nil, err
	}
	return &List[T]{items: make([]T, 0, capacity)}, nil
}

// Len returns the number of elements.
func (l *List[T]) Len() int { return len(l.items) }

// Cap returns the fixed capacity.
func (l *List[T]) Cap() int { return cap(l.items) }

// Append adds v at the end, or reports ErrFull.
func (l *List[T]) Append(v T) error {
	if len(l.items) == cap(l.items) {
		return ErrFull
	}
	l.items = append(l.items, v)
	return nil
}

// Get returns the element at index i.
func (l *List[T]) Get(i int) (T, error) {
	var zero T
	if i < 0 || i >= len(l.items) {
		return zero, fmt.Errorf("rtsafe: index %d out of range [0,%d)", i, len(l.items))
	}
	return l.items[i], nil
}

// Set replaces the element at index i.
func (l *List[T]) Set(i int, v T) error {
	if i < 0 || i >= len(l.items) {
		return fmt.Errorf("rtsafe: index %d out of range [0,%d)", i, len(l.items))
	}
	l.items[i] = v
	return nil
}

// RemoveLast removes and returns the final element.
func (l *List[T]) RemoveLast() (T, error) {
	var zero T
	n := len(l.items)
	if n == 0 {
		return zero, ErrEmpty
	}
	v := l.items[n-1]
	l.items[n-1] = zero
	l.items = l.items[:n-1]
	return v, nil
}

// Clear removes all elements, keeping capacity.
func (l *List[T]) Clear() {
	var zero T
	for i := range l.items {
		l.items[i] = zero
	}
	l.items = l.items[:0]
}

// Each calls fn for every element in order; fn returning false stops early.
func (l *List[T]) Each(fn func(i int, v T) bool) {
	for i, v := range l.items {
		if !fn(i, v) {
			return
		}
	}
}

// Queue is a fixed-capacity FIFO ring buffer.
type Queue[T any] struct {
	buf  []T
	head int
	n    int
}

// NewQueue creates a queue with the given capacity, charged to area.
func NewQueue[T any](ctx *memory.Context, area *memory.Area, capacity int) (*Queue[T], error) {
	if err := charge(ctx, area, capacity); err != nil {
		return nil, err
	}
	return &Queue[T]{buf: make([]T, capacity)}, nil
}

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return q.n }

// Cap returns the fixed capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Push enqueues v, or reports ErrFull.
func (q *Queue[T]) Push(v T) error {
	if q.n == len(q.buf) {
		return ErrFull
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	return nil
}

// Pop dequeues the oldest element, or reports ErrEmpty.
func (q *Queue[T]) Pop() (T, error) {
	var zero T
	if q.n == 0 {
		return zero, ErrEmpty
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v, nil
}

// Peek returns the oldest element without removing it.
func (q *Queue[T]) Peek() (T, error) {
	var zero T
	if q.n == 0 {
		return zero, ErrEmpty
	}
	return q.buf[q.head], nil
}

// Map is a fixed-capacity open-addressing hash map with comparable keys.
// The probe sequence is linear; the table is sized at 2x capacity so load
// never exceeds 50%, keeping probes short and bounded.
type Map[K comparable, V any] struct {
	keys     []K
	vals     []V
	occupied []bool
	deleted  []bool
	n        int
	capacity int
	hash     func(K) uint64
}

// NewMap creates a map that holds up to capacity entries, charged to area.
// hash must be a stable hash of the key; use maphash or a domain hash.
func NewMap[K comparable, V any](ctx *memory.Context, area *memory.Area, capacity int, hash func(K) uint64) (*Map[K, V], error) {
	if hash == nil {
		return nil, fmt.Errorf("rtsafe: nil hash function")
	}
	if err := charge(ctx, area, capacity*2); err != nil {
		return nil, err
	}
	slots := 2 * capacity
	return &Map[K, V]{
		keys:     make([]K, slots),
		vals:     make([]V, slots),
		occupied: make([]bool, slots),
		deleted:  make([]bool, slots),
		capacity: capacity,
		hash:     hash,
	}, nil
}

// Len returns the number of entries.
func (m *Map[K, V]) Len() int { return m.n }

// Cap returns the fixed capacity.
func (m *Map[K, V]) Cap() int { return m.capacity }

// Put inserts or replaces the value for key, or reports ErrFull.
func (m *Map[K, V]) Put(key K, val V) error {
	slots := len(m.keys)
	start := int(m.hash(key) % uint64(slots))
	firstFree := -1
	for p := 0; p < slots; p++ {
		i := (start + p) % slots
		if m.occupied[i] {
			if m.keys[i] == key {
				m.vals[i] = val
				return nil
			}
			continue
		}
		if firstFree == -1 {
			firstFree = i
		}
		if !m.deleted[i] {
			break // untouched slot: the key is definitely absent
		}
	}
	if m.n == m.capacity {
		return ErrFull
	}
	m.keys[firstFree] = key
	m.vals[firstFree] = val
	m.occupied[firstFree] = true
	m.deleted[firstFree] = false
	m.n++
	return nil
}

// Get returns the value for key, or ErrNotFound.
func (m *Map[K, V]) Get(key K) (V, error) {
	var zero V
	i, ok := m.find(key)
	if !ok {
		return zero, fmt.Errorf("%w: %v", ErrNotFound, key)
	}
	return m.vals[i], nil
}

// Delete removes the entry for key, or reports ErrNotFound.
func (m *Map[K, V]) Delete(key K) error {
	i, ok := m.find(key)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotFound, key)
	}
	var zeroK K
	var zeroV V
	m.keys[i] = zeroK
	m.vals[i] = zeroV
	m.occupied[i] = false
	m.deleted[i] = true
	m.n--
	return nil
}

// Each calls fn for every entry (iteration order is unspecified); fn
// returning false stops early.
func (m *Map[K, V]) Each(fn func(k K, v V) bool) {
	for i := range m.keys {
		if m.occupied[i] {
			if !fn(m.keys[i], m.vals[i]) {
				return
			}
		}
	}
}

func (m *Map[K, V]) find(key K) (int, bool) {
	slots := len(m.keys)
	start := int(m.hash(key) % uint64(slots))
	for p := 0; p < slots; p++ {
		i := (start + p) % slots
		if m.occupied[i] {
			if m.keys[i] == key {
				return i, true
			}
			continue
		}
		if !m.deleted[i] {
			return 0, false // untouched slot terminates the probe chain
		}
	}
	return 0, false
}
