package sched

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRingWrapAroundFIFO exercises the per-priority ring across growth and
// wrap-around boundaries.
func TestRingWrapAroundFIFO(t *testing.T) {
	var r ring
	var got []int
	push := func(v int) { r.push(task{fn: func(Priority) { got = append(got, v) }}) }
	pop := func() { r.pop().fn(NormPriority) }

	next := 0
	for round := 0; round < 5; round++ {
		for i := 0; i < 5+round*3; i++ {
			push(next)
			next++
		}
		for !r.empty() {
			pop()
		}
	}
	if len(got) != next {
		t.Fatalf("popped %d tasks, pushed %d", len(got), next)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d popped %d; ring is not FIFO", i, v)
		}
	}
}

// TestSubmitGrowthCoversBacklog is a regression test for the growth
// heuristic: a burst of blocking submissions must grow the pool toward
// min(max, backlog) even while a worker sits idle-but-not-yet-woken. The old
// idle==0 gate could leave the whole burst to a single worker, which this
// test detects as a timeout (the first task blocks it forever).
func TestSubmitGrowthCoversBacklog(t *testing.T) {
	const maxWorkers = 8
	p := NewPool(PoolConfig{Name: "burst", Min: 1, Max: maxWorkers})
	defer p.Shutdown()

	release := make(chan struct{})
	var started atomic.Int32
	for i := 0; i < maxWorkers; i++ {
		if err := p.Submit(NormPriority, func(Priority) {
			started.Add(1)
			<-release
		}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() < maxWorkers {
		if time.Now().After(deadline) {
			close(release)
			t.Fatalf("only %d of %d blocking tasks started; pool did not grow to cover the backlog",
				started.Load(), maxWorkers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	if s := p.Stats(); s.Spawned > maxWorkers {
		t.Errorf("spawned = %d, want <= max (%d)", s.Spawned, maxWorkers)
	}
}

// TestSeededFullOrdering queues a seeded random workload while the single
// worker is blocked, then checks the drain order equals a stable sort by
// (priority descending, submission order).
func TestSeededFullOrdering(t *testing.T) {
	const seed = 20260806
	const tasks = 400
	rng := rand.New(rand.NewSource(seed))

	p := NewPool(PoolConfig{Name: "seeded", Min: 1, Max: 1})
	defer p.Shutdown()

	gate := make(chan struct{})
	startedGate := make(chan struct{})
	if err := p.Submit(MinPriority, func(Priority) { close(startedGate); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-startedGate

	type item struct {
		prio Priority
		seq  int
	}
	queued := make([]item, tasks)
	var mu sync.Mutex
	var got []item
	var wg sync.WaitGroup
	wg.Add(tasks)
	for i := 0; i < tasks; i++ {
		it := item{prio: MinPriority + Priority(rng.Intn(int(MaxPriority))), seq: i}
		queued[i] = it
		if err := p.Submit(it.prio, func(ran Priority) {
			if ran != it.prio {
				t.Errorf("task %d ran at priority %d, submitted at %d", it.seq, ran, it.prio)
			}
			mu.Lock()
			got = append(got, it)
			mu.Unlock()
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	wg.Wait()

	want := make([]item, tasks)
	copy(want, queued)
	sort.SliceStable(want, func(a, b int) bool { return want[a].prio > want[b].prio })
	mu.Lock()
	defer mu.Unlock()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got {prio %d seq %d}, want {prio %d seq %d}",
				i, got[i].prio, got[i].seq, want[i].prio, want[i].seq)
		}
	}
}

// TestConcurrentProducersFIFOWithinPriority has several producers race
// submissions at random priorities into a single-worker pool, then checks
// every (producer, priority) stream drains in its submission order — the
// FIFO-within-priority property under contention. Run with -race.
func TestConcurrentProducersFIFOWithinPriority(t *testing.T) {
	const (
		seed      = 77
		producers = 6
		perProd   = 150
	)
	p := NewPool(PoolConfig{Name: "mp", Min: 1, Max: 1})
	defer p.Shutdown()

	type item struct {
		prod, seq int
		prio      Priority
	}
	var mu sync.Mutex
	var got []item
	var wg sync.WaitGroup
	wg.Add(producers * perProd)

	var pwg sync.WaitGroup
	pwg.Add(producers)
	for pr := 0; pr < producers; pr++ {
		go func(prod int) {
			defer pwg.Done()
			rng := rand.New(rand.NewSource(seed + int64(prod)))
			for i := 0; i < perProd; i++ {
				it := item{prod: prod, seq: i, prio: MinPriority + Priority(rng.Intn(4))}
				if err := p.Submit(it.prio, func(Priority) {
					mu.Lock()
					got = append(got, it)
					mu.Unlock()
					wg.Done()
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(pr)
	}
	pwg.Wait()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	lastSeq := make(map[[2]int]int) // (producer, priority) -> last seq seen
	for _, it := range got {
		k := [2]int{it.prod, int(it.prio)}
		if prev, ok := lastSeq[k]; ok && it.seq < prev {
			t.Fatalf("producer %d priority %d: seq %d drained after %d; not FIFO within priority",
				it.prod, it.prio, it.seq, prev)
		}
		lastSeq[k] = it.seq
	}
	if len(got) != producers*perProd {
		t.Fatalf("drained %d tasks, want %d", len(got), producers*perProd)
	}
}
