package sched

import (
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// collectMisses installs a miss handler appending into a shared slice and
// returns the accessor plus a cleanup.
func collectMisses(t *testing.T) func() []telemetry.Miss {
	t.Helper()
	var mu sync.Mutex
	var got []telemetry.Miss
	telemetry.SetDeadlineMissHandler(func(m telemetry.Miss) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	t.Cleanup(func() { telemetry.SetDeadlineMissHandler(nil) })
	return func() []telemetry.Miss {
		mu.Lock()
		defer mu.Unlock()
		out := make([]telemetry.Miss, len(got))
		copy(out, got)
		return out
	}
}

func TestSubmitUntilMissSynchronous(t *testing.T) {
	misses := collectMisses(t)
	p := NewPool(PoolConfig{Name: "sync-dl"})
	defer p.Shutdown()

	before := telemetry.DeadlineMisses()
	ran := false
	// Deadline 1 (1ns after process start) is positive yet always in the
	// past, so the miss must be detected before fn runs.
	if err := p.SubmitUntil(NormPriority, 1, func(Priority) { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("late task was not executed")
	}
	if got := p.Stats().DeadlineMisses; got != 1 {
		t.Errorf("pool misses = %d, want 1", got)
	}
	if telemetry.DeadlineMisses() != before+1 {
		t.Errorf("global miss counter did not advance")
	}
	ms := misses()
	if len(ms) != 1 || ms[0].Label != "pool.sync-dl" || ms[0].Priority != int(NormPriority) {
		t.Errorf("misses = %+v", ms)
	}

	// A comfortably future deadline must not report.
	if err := p.SubmitUntil(NormPriority, telemetry.Now()+int64(time.Hour), func(Priority) {}); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().DeadlineMisses; got != 1 {
		t.Errorf("pool misses after on-time task = %d, want 1", got)
	}
}

func TestSubmitUntilMissAsync(t *testing.T) {
	misses := collectMisses(t)
	p := NewPool(PoolConfig{Name: "async-dl", Min: 1, Max: 1})
	defer p.Shutdown()

	// Block the single worker so the deadlined task waits in the queue past
	// its deadline.
	gate := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(NormPriority, func(Priority) { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started

	done := make(chan struct{})
	if err := p.SubmitUntil(NormPriority, telemetry.Now()+int64(10*time.Millisecond), func(Priority) { close(done) }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let the deadline lapse while queued
	close(gate)
	<-done

	if got := p.Stats().DeadlineMisses; got != 1 {
		t.Errorf("pool misses = %d, want 1", got)
	}
	ms := misses()
	if len(ms) != 1 || ms[0].Label != "pool.async-dl" {
		t.Fatalf("misses = %+v", ms)
	}
	if ms[0].Lateness() <= 0 {
		t.Errorf("lateness = %d, want > 0", ms[0].Lateness())
	}
}
