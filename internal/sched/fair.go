package sched

import "math/bits"

// MaxTenantClasses is the number of tenant fairness lanes a FairQueue
// maintains inside each priority band. Class 0 is conventionally the
// unclassified default; an admission controller deals the remaining lanes
// to explicit tenants.
const MaxTenantClasses = 8

// fairEntry is one queued handle with its EDF key. deadline 0 means "no
// deadline" and sorts after every real deadline; ties break FIFO by seq.
type fairEntry struct {
	handle   uint32
	deadline int64
	seq      uint64
}

// entryLess is the EDF ordering inside a class: earliest deadline first
// (about-to-miss work runs ahead of relaxed work), no-deadline last, FIFO
// within a deadline.
func entryLess(a, b fairEntry) bool {
	ad, bd := a.deadline, b.deadline
	if ad == 0 {
		ad = 1<<63 - 1
	}
	if bd == 0 {
		bd = 1<<63 - 1
	}
	if ad != bd {
		return ad < bd
	}
	return a.seq < b.seq
}

// fairBand is one priority level's queue: an EDF min-heap per tenant class
// plus deficit-round-robin state arbitrating between the classes.
type fairBand struct {
	classes [MaxTenantClasses][]fairEntry
	occ     uint32 // bitmask of non-empty classes
	deficit [MaxTenantClasses]int32
	cursor  int
}

// FairQueue is a two-level real-time queue: strict priority across the 31
// RTSJ bands (identical to the Pool's pending queue), and within a band,
// deficit-weighted round robin across up to MaxTenantClasses tenant classes
// with earliest-deadline-first ordering inside each class. It is the
// buffer discipline behind tenant-fair In ports: a flooding tenant can fill
// its own lane but cannot starve a same-priority neighbour, and within any
// lane the message closest to its deadline runs first.
//
// The queue stores opaque uint32 handles supplied by the caller (slab
// indices, typically), so it imposes no boxing and its steady state
// allocates nothing. It is not safe for concurrent use; callers hold their
// own lock (InPort already serialises its buffer).
type FairQueue struct {
	weights [MaxTenantClasses]int32
	bands   [numPriorities]*fairBand
	mask    uint32 // bit i set = band i non-empty
	size    int
	seq     uint64
}

// NewFairQueue builds a queue with the given per-class DRR weights (pops
// granted per round while contested). Missing or non-positive entries
// default to 1; nil weights mean equal sharing.
func NewFairQueue(weights []int32) *FairQueue {
	q := &FairQueue{}
	for i := range q.weights {
		q.weights[i] = 1
		if i < len(weights) && weights[i] > 0 {
			q.weights[i] = weights[i]
		}
	}
	return q
}

// Len returns the number of queued handles.
func (q *FairQueue) Len() int { return q.size }

// bandIndex clamps a priority into the band array.
func bandIndex(prio Priority) int {
	if prio < MinPriority {
		prio = MinPriority
	}
	if prio > MaxPriority {
		prio = MaxPriority
	}
	return int(prio - MinPriority)
}

// Push enqueues a handle at the given priority, tenant class, and deadline
// (a telemetry timestamp; 0 = none). Classes at or past MaxTenantClasses
// fold into the last lane.
func (q *FairQueue) Push(handle uint32, class uint8, prio Priority, deadline int64) {
	if class >= MaxTenantClasses {
		class = MaxTenantClasses - 1
	}
	bi := bandIndex(prio)
	b := q.bands[bi]
	if b == nil {
		b = &fairBand{}
		q.bands[bi] = b
	}
	q.seq++
	h := &b.classes[class]
	*h = append(*h, fairEntry{handle: handle, deadline: deadline, seq: q.seq})
	entrySiftUp(*h, len(*h)-1)
	b.occ |= 1 << class
	q.mask |= 1 << uint(bi)
	q.size++
}

// Pop dequeues the next handle: highest non-empty band; within it, the DRR
// winner's earliest-deadline entry.
func (q *FairQueue) Pop() (uint32, bool) {
	if q.mask == 0 {
		return 0, false
	}
	bi := bits.Len32(q.mask) - 1
	b := q.bands[bi]
	e := b.popDRR(&q.weights)
	if b.occ == 0 {
		q.mask &^= 1 << uint(bi)
	}
	q.size--
	return e.handle, true
}

// popDRR runs the deficit round robin over the band's occupied classes.
// Each pop costs one unit of the winning class's deficit; when no occupied
// class has deficit left, every occupied class refills to its weight and
// the round restarts. Called on a non-empty band.
func (b *fairBand) popDRR(weights *[MaxTenantClasses]int32) fairEntry {
	for {
		for i := 0; i < MaxTenantClasses; i++ {
			c := (b.cursor + i) % MaxTenantClasses
			if b.occ&(1<<c) == 0 || b.deficit[c] <= 0 {
				continue
			}
			b.cursor = c
			e := entryPop(&b.classes[c])
			b.deficit[c]--
			if len(b.classes[c]) == 0 {
				b.occ &^= 1 << c
				b.deficit[c] = 0 // an emptied class forfeits its round
			}
			if b.deficit[c] <= 0 {
				b.cursor = (c + 1) % MaxTenantClasses
			}
			return e
		}
		for c := 0; c < MaxTenantClasses; c++ {
			if b.occ&(1<<c) != 0 {
				b.deficit[c] = weights[c]
			}
		}
	}
}

// PeekLowestPrio returns the priority of the least-urgent queued handle —
// the band that ShedLowest eviction would raid — without removing it.
func (q *FairQueue) PeekLowestPrio() (Priority, bool) {
	if q.mask == 0 {
		return 0, false
	}
	return Priority(bits.TrailingZeros32(q.mask)) + MinPriority, true
}

// PopLowest removes and returns the newest handle from the lowest band —
// the ShedLowest victim: least urgent priority, least sunk queue time.
// O(band size); eviction is a cold path.
func (q *FairQueue) PopLowest() (uint32, bool) {
	if q.mask == 0 {
		return 0, false
	}
	bi := bits.TrailingZeros32(q.mask)
	b := q.bands[bi]
	bestC, bestI := -1, -1
	var bestSeq uint64
	for c := 0; c < MaxTenantClasses; c++ {
		for i, e := range b.classes[c] {
			if bestC < 0 || e.seq > bestSeq {
				bestC, bestI, bestSeq = c, i, e.seq
			}
		}
	}
	return q.removeAt(bi, bestC, bestI), true
}

// PopOldest removes and returns the handle queued longest, across all
// bands — the DropOldest victim. O(n); eviction is a cold path.
func (q *FairQueue) PopOldest() (uint32, bool) {
	if q.size == 0 {
		return 0, false
	}
	bestB, bestC, bestI := -1, -1, -1
	var bestSeq uint64
	for bi := range q.bands {
		if q.mask&(1<<uint(bi)) == 0 {
			continue
		}
		for c := 0; c < MaxTenantClasses; c++ {
			for i, e := range q.bands[bi].classes[c] {
				if bestB < 0 || e.seq < bestSeq {
					bestB, bestC, bestI, bestSeq = bi, c, i, e.seq
				}
			}
		}
	}
	return q.removeAt(bestB, bestC, bestI), true
}

// Remove deletes a specific handle wherever it is queued, reporting whether
// it was found. O(n); retraction is a cold path.
func (q *FairQueue) Remove(handle uint32) bool {
	for bi := range q.bands {
		if q.mask&(1<<uint(bi)) == 0 {
			continue
		}
		for c := 0; c < MaxTenantClasses; c++ {
			for i, e := range q.bands[bi].classes[c] {
				if e.handle == handle {
					q.removeAt(bi, c, i)
					return true
				}
			}
		}
	}
	return false
}

// removeAt deletes heap position i of class c in band bi, restoring heap
// order and the occupancy masks, and returns the removed handle.
func (q *FairQueue) removeAt(bi, c, i int) uint32 {
	b := q.bands[bi]
	h := &b.classes[c]
	e := (*h)[i]
	last := len(*h) - 1
	(*h)[i] = (*h)[last]
	(*h)[last] = fairEntry{}
	*h = (*h)[:last]
	if i < last {
		entrySiftDown(*h, i)
		entrySiftUp(*h, i)
	}
	if len(*h) == 0 {
		b.occ &^= 1 << c
		b.deficit[c] = 0
		if b.occ == 0 {
			q.mask &^= 1 << uint(bi)
		}
	}
	q.size--
	return e.handle
}

func entryPop(h *[]fairEntry) fairEntry {
	e := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	(*h)[last] = fairEntry{}
	*h = (*h)[:last]
	if last > 0 {
		entrySiftDown(*h, 0)
	}
	return e
}

func entrySiftUp(h []fairEntry, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func entrySiftDown(h []fairEntry, i int) {
	n := len(h)
	for {
		best := i
		if l := 2*i + 1; l < n && entryLess(h[l], h[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && entryLess(h[r], h[best]) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}
