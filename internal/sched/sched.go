// Package sched models RTSJ real-time thread scheduling for the Compadres
// runtime. Go offers no strict thread priorities, so the package reproduces
// the observable property the paper relies on: when messages carry
// priorities, a port's thread pool executes the highest-priority pending
// handler first (FIFO within a priority), and the executing thread inherits
// the message's priority, exactly as §2.2 of the paper describes.
//
// A Pool is either shared among several In ports or dedicated to one; it
// starts with Min workers and grows on backlog up to Max. A pool configured
// with Max == 0 executes submissions synchronously on the caller, matching
// the paper's "if these values are 0, the calling thread executes the
// process() method of the In port synchronously".
package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
)

// Priority is an RTSJ-style real-time priority. Higher values run first.
type Priority int

// Priority bounds mirror the RTSJ real-time priority band.
const (
	MinPriority  Priority = 1
	NormPriority Priority = 15
	MaxPriority  Priority = 31
)

// ErrPoolShutdown reports a Submit after Shutdown.
var ErrPoolShutdown = errors.New("sched: pool is shut down")

// Valid reports whether p lies within the real-time priority band.
func (p Priority) Valid() bool { return p >= MinPriority && p <= MaxPriority }

// Clamp returns p limited to the real-time priority band.
func (p Priority) Clamp() Priority {
	if p < MinPriority {
		return MinPriority
	}
	if p > MaxPriority {
		return MaxPriority
	}
	return p
}

// PoolConfig parameterises a Pool. It mirrors the CCL PortAttributes:
// threadpool strategy is expressed by sharing (or not) the constructed Pool,
// and Min/Max map to MinThreadpoolSize/MaxThreadpoolSize.
type PoolConfig struct {
	// Name is used in diagnostics.
	Name string
	// Min is the number of workers started eagerly.
	Min int
	// Max bounds worker growth. Max == 0 selects synchronous execution on
	// the caller; otherwise Max is raised to at least Min.
	Max int
}

// Pool dispatches prioritised tasks to a bounded set of workers.
type Pool struct {
	name string
	min  int
	max  int

	mu       sync.Mutex
	cond     *sync.Cond
	queue    taskHeap
	seq      uint64
	workers  int
	idle     int
	shutdown bool
	done     sync.WaitGroup

	stats PoolStats
}

// PoolStats is a snapshot of pool activity.
type PoolStats struct {
	// Workers is the current worker count.
	Workers int
	// Spawned is the total number of workers ever started.
	Spawned int64
	// Executed is the number of tasks completed.
	Executed int64
	// MaxQueue is the high-water mark of the pending queue.
	MaxQueue int
	// Synchronous reports a Max == 0 pool.
	Synchronous bool
}

// NewPool creates a pool per cfg and starts cfg.Min workers.
func NewPool(cfg PoolConfig) *Pool {
	minWorkers := cfg.Min
	if minWorkers < 0 {
		minWorkers = 0
	}
	maxWorkers := cfg.Max
	if maxWorkers < 0 {
		maxWorkers = 0
	}
	if maxWorkers > 0 && maxWorkers < minWorkers {
		maxWorkers = minWorkers
	}
	p := &Pool{name: cfg.Name, min: minWorkers, max: maxWorkers}
	p.cond = sync.NewCond(&p.mu)
	if p.max > 0 {
		for i := 0; i < p.min; i++ {
			p.spawnLocked()
		}
	}
	return p
}

// Name returns the pool's diagnostic name.
func (p *Pool) Name() string { return p.name }

// Synchronous reports whether Submit executes tasks inline on the caller.
func (p *Pool) Synchronous() bool { return p.max == 0 }

// Submit schedules fn at the given priority. The worker that eventually runs
// fn passes the (clamped) priority through, modelling priority inheritance
// from the message. For a synchronous pool, fn runs before Submit returns.
func (p *Pool) Submit(prio Priority, fn func(Priority)) error {
	prio = prio.Clamp()
	if p.max == 0 {
		p.mu.Lock()
		if p.shutdown {
			p.mu.Unlock()
			return ErrPoolShutdown
		}
		p.stats.Executed++
		p.mu.Unlock()
		fn(prio)
		return nil
	}

	p.mu.Lock()
	if p.shutdown {
		p.mu.Unlock()
		return ErrPoolShutdown
	}
	p.seq++
	heap.Push(&p.queue, task{prio: prio, seq: p.seq, fn: fn})
	if len(p.queue) > p.stats.MaxQueue {
		p.stats.MaxQueue = len(p.queue)
	}
	// Grow when there is backlog that idle workers will not absorb.
	if p.idle == 0 && p.workers < p.max {
		p.spawnLocked()
	}
	p.mu.Unlock()
	p.cond.Signal()
	return nil
}

// Shutdown drains the pending queue, stops all workers, and waits for them
// to exit. It is idempotent.
func (p *Pool) Shutdown() {
	p.mu.Lock()
	if p.shutdown {
		p.mu.Unlock()
		p.done.Wait()
		return
	}
	p.shutdown = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.done.Wait()
}

// Stats returns a snapshot of pool activity.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Workers = p.workers
	s.Synchronous = p.max == 0
	return s
}

// String summarises the pool for diagnostics.
func (p *Pool) String() string {
	s := p.Stats()
	return fmt.Sprintf("pool %q (workers %d, executed %d, maxq %d)", p.name, s.Workers, s.Executed, s.MaxQueue)
}

func (p *Pool) spawnLocked() {
	p.workers++
	p.stats.Spawned++
	p.done.Add(1)
	go p.run()
}

func (p *Pool) run() {
	defer p.done.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.shutdown {
			p.idle++
			p.cond.Wait()
			p.idle--
		}
		if len(p.queue) == 0 && p.shutdown {
			p.workers--
			p.mu.Unlock()
			return
		}
		t := heap.Pop(&p.queue).(task)
		p.mu.Unlock()

		t.fn(t.prio)

		p.mu.Lock()
		p.stats.Executed++
		p.mu.Unlock()
	}
}

// task is one queued unit of work.
type task struct {
	prio Priority
	seq  uint64
	fn   func(Priority)
}

// taskHeap orders by descending priority, then FIFO by sequence.
type taskHeap []task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x interface{}) { *h = append(*h, x.(task)) }
func (h *taskHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}
