// Package sched models RTSJ real-time thread scheduling for the Compadres
// runtime. Go offers no strict thread priorities, so the package reproduces
// the observable property the paper relies on: when messages carry
// priorities, a port's thread pool executes the highest-priority pending
// handler first (FIFO within a priority), and the executing thread inherits
// the message's priority, exactly as §2.2 of the paper describes.
//
// A Pool is either shared among several In ports or dedicated to one; it
// starts with Min workers and grows on backlog up to Max. A pool configured
// with Max == 0 executes submissions synchronously on the caller, matching
// the paper's "if these values are 0, the calling thread executes the
// process() method of the In port synchronously".
//
// The pending queue is a fixed array of per-priority FIFO rings — one ring
// per RTSJ priority level — plus a bitmask of non-empty levels. Selecting
// the next task is a single find-highest-set-bit over the mask, which for
// the 31-level band is both faster and more predictable than a binary heap,
// and a ring dequeue is O(1) with no sifting. Submission from the steady
// state allocates nothing: the rings keep their capacity and the task is a
// plain function value.
package sched

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Priority is an RTSJ-style real-time priority. Higher values run first.
type Priority int

// Priority bounds mirror the RTSJ real-time priority band.
const (
	MinPriority  Priority = 1
	NormPriority Priority = 15
	MaxPriority  Priority = 31
)

// numPriorities is the size of the real-time priority band.
const numPriorities = int(MaxPriority-MinPriority) + 1

// ringInitialCap is the slot count a priority ring starts with the first
// time that level is used; rings grow by doubling and never shrink, so the
// steady state enqueues without allocating.
const ringInitialCap = 8

// ErrPoolShutdown reports a Submit after Shutdown.
var ErrPoolShutdown = errors.New("sched: pool is shut down")

// Valid reports whether p lies within the real-time priority band.
func (p Priority) Valid() bool { return p >= MinPriority && p <= MaxPriority }

// Clamp returns p limited to the real-time priority band.
func (p Priority) Clamp() Priority {
	if p < MinPriority {
		return MinPriority
	}
	if p > MaxPriority {
		return MaxPriority
	}
	return p
}

// PoolConfig parameterises a Pool. It mirrors the CCL PortAttributes:
// threadpool strategy is expressed by sharing (or not) the constructed Pool,
// and Min/Max map to MinThreadpoolSize/MaxThreadpoolSize.
type PoolConfig struct {
	// Name is used in diagnostics.
	Name string
	// Min is the number of workers started eagerly.
	Min int
	// Max bounds worker growth. Max == 0 selects synchronous execution on
	// the caller; otherwise Max is raised to at least Min.
	Max int
}

// Pool dispatches prioritised tasks to a bounded set of workers.
type Pool struct {
	name string
	min  int
	max  int

	mu       sync.Mutex
	cond     *sync.Cond
	rings    [numPriorities]ring // index 0 = MinPriority
	mask     uint32              // bit i set ⇔ rings[i] non-empty
	queued   int
	workers  int
	idle     int
	shutdown bool
	done     sync.WaitGroup

	// Activity counters are atomics so the hot paths (synchronous Submit,
	// post-task accounting) never take the pool mutex for bookkeeping.
	executed atomic.Int64
	spawned  atomic.Int64
	maxQueue atomic.Int64
	missed   atomic.Int64
	stopped  atomic.Bool // mirrors shutdown for lock-free reads

	label  telemetry.LabelID
	gauges *telemetry.GaugeHandle
}

// PoolStats is a snapshot of pool activity.
type PoolStats struct {
	// Workers is the current worker count.
	Workers int
	// Spawned is the total number of workers ever started.
	Spawned int64
	// Executed is the number of tasks completed.
	Executed int64
	// MaxQueue is the high-water mark of the pending queue.
	MaxQueue int
	// DeadlineMisses counts tasks submitted via SubmitUntil that started
	// after their deadline.
	DeadlineMisses int64
	// Synchronous reports a Max == 0 pool.
	Synchronous bool
}

// NewPool creates a pool per cfg and starts cfg.Min workers.
func NewPool(cfg PoolConfig) *Pool {
	minWorkers := cfg.Min
	if minWorkers < 0 {
		minWorkers = 0
	}
	maxWorkers := cfg.Max
	if maxWorkers < 0 {
		maxWorkers = 0
	}
	if maxWorkers > 0 && maxWorkers < minWorkers {
		maxWorkers = minWorkers
	}
	p := &Pool{name: cfg.Name, min: minWorkers, max: maxWorkers}
	p.cond = sync.NewCond(&p.mu)
	label := "pool"
	if cfg.Name != "" {
		label = "pool." + cfg.Name
	}
	p.label = telemetry.Label(label)
	p.gauges = telemetry.Default.RegisterGauges(label, map[string]func() int64{
		"pool_workers":         func() int64 { p.mu.Lock(); defer p.mu.Unlock(); return int64(p.workers) },
		"pool_executed":        func() int64 { return p.executed.Load() },
		"pool_queue_max":       func() int64 { return p.maxQueue.Load() },
		"pool_deadline_missed": func() int64 { return p.missed.Load() },
	})
	if p.max > 0 {
		p.mu.Lock()
		for i := 0; i < p.min; i++ {
			p.spawnLocked()
		}
		p.mu.Unlock()
	}
	return p
}

// Name returns the pool's diagnostic name.
func (p *Pool) Name() string { return p.name }

// Synchronous reports whether Submit executes tasks inline on the caller.
func (p *Pool) Synchronous() bool { return p.max == 0 }

// Submit schedules fn at the given priority. The worker that eventually runs
// fn passes the (clamped) priority through, modelling priority inheritance
// from the message. For a synchronous pool, fn runs before Submit returns.
func (p *Pool) Submit(prio Priority, fn func(Priority)) error {
	return p.SubmitUntil(prio, 0, fn)
}

// SubmitUntil is Submit with a deadline: a telemetry timestamp
// (telemetry.Now() units) by which fn must have started. A task that starts
// late is still executed, but the miss is counted against the pool and
// reported through telemetry (counter, flight-recorder event, registered
// miss handler). deadline == 0 means none.
func (p *Pool) SubmitUntil(prio Priority, deadline int64, fn func(Priority)) error {
	prio = prio.Clamp()
	if p.max == 0 {
		if p.stopped.Load() {
			return ErrPoolShutdown
		}
		p.checkDeadline(deadline, prio)
		p.executed.Add(1)
		fn(prio)
		return nil
	}

	p.mu.Lock()
	if p.shutdown {
		p.mu.Unlock()
		return ErrPoolShutdown
	}
	idx := int(prio - MinPriority)
	p.rings[idx].push(task{fn: fn, deadline: deadline})
	p.mask |= 1 << uint(idx)
	p.queued++
	if q := int64(p.queued); q > p.maxQueue.Load() {
		p.maxQueue.Store(q)
	}
	// Grow toward min(max, backlog): spawn enough workers to cover every
	// queued task the currently idle workers will not absorb. Growing only
	// when idle == 0 under-provisions a burst — an idle-but-not-yet-woken
	// worker suppresses every spawn while the backlog deepens.
	if n := p.queued - p.idle; n > 0 {
		if room := p.max - p.workers; n > room {
			n = room
		}
		for ; n > 0; n-- {
			p.spawnLocked()
		}
	}
	p.mu.Unlock()
	p.cond.Signal()
	return nil
}

// Shutdown drains the pending queue, stops all workers, and waits for them
// to exit. It is idempotent.
func (p *Pool) Shutdown() {
	p.mu.Lock()
	if p.shutdown {
		p.mu.Unlock()
		p.done.Wait()
		return
	}
	p.shutdown = true
	p.stopped.Store(true)
	p.mu.Unlock()
	p.cond.Broadcast()
	p.done.Wait()
	p.gauges.Unregister()
}

// checkDeadline reports a deadline miss when the task is starting after its
// deadline. Hot path: one clock read only when a deadline is present.
func (p *Pool) checkDeadline(deadline int64, prio Priority) {
	if deadline <= 0 {
		return
	}
	if now := telemetry.Now(); now > deadline {
		p.missed.Add(1)
		telemetry.ReportDeadlineMiss(p.label, deadline, now, 0, int(prio))
	}
}

// Stats returns a snapshot of pool activity.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	workers := p.workers
	p.mu.Unlock()
	return PoolStats{
		Workers:        workers,
		Spawned:        p.spawned.Load(),
		Executed:       p.executed.Load(),
		MaxQueue:       int(p.maxQueue.Load()),
		DeadlineMisses: p.missed.Load(),
		Synchronous:    p.max == 0,
	}
}

// String summarises the pool for diagnostics.
func (p *Pool) String() string {
	s := p.Stats()
	return fmt.Sprintf("pool %q (workers %d, executed %d, maxq %d)", p.name, s.Workers, s.Executed, s.MaxQueue)
}

func (p *Pool) spawnLocked() {
	p.workers++
	p.spawned.Add(1)
	p.done.Add(1)
	go p.run()
}

func (p *Pool) run() {
	defer p.done.Done()
	for {
		p.mu.Lock()
		for p.mask == 0 && !p.shutdown {
			p.idle++
			p.cond.Wait()
			p.idle--
		}
		if p.mask == 0 && p.shutdown {
			p.workers--
			p.mu.Unlock()
			return
		}
		// Highest non-empty priority level: one find-MSB over the mask.
		idx := 31 - bits.LeadingZeros32(p.mask)
		t := p.rings[idx].pop()
		if p.rings[idx].empty() {
			p.mask &^= 1 << uint(idx)
		}
		p.queued--
		p.mu.Unlock()

		prio := Priority(idx) + MinPriority
		p.checkDeadline(t.deadline, prio)
		t.fn(prio)
		p.executed.Add(1)
	}
}

// task is one queued submission: the handler plus its (optional) start
// deadline.
type task struct {
	fn       func(Priority)
	deadline int64
}

// ring is a growable circular FIFO of tasks for one priority level. Slots
// are reused in place, so a warmed ring enqueues and dequeues without
// allocating.
type ring struct {
	buf  []task
	head int // index of the oldest element
	n    int // number of queued elements
}

func (r *ring) empty() bool { return r.n == 0 }

func (r *ring) push(t task) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = t
	r.n++
}

func (r *ring) pop() task {
	t := r.buf[r.head]
	r.buf[r.head] = task{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return t
}

// grow doubles the ring (capacities stay powers of two so the index mask
// works), copying the live window to the front.
func (r *ring) grow() {
	newCap := len(r.buf) * 2
	if newCap == 0 {
		newCap = ringInitialCap
	}
	nb := make([]task, newCap)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}
