package sched

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPriorityClampAndValid(t *testing.T) {
	tests := []struct {
		give  Priority
		want  Priority
		valid bool
	}{
		{-5, MinPriority, false},
		{0, MinPriority, false},
		{MinPriority, MinPriority, true},
		{NormPriority, NormPriority, true},
		{MaxPriority, MaxPriority, true},
		{MaxPriority + 1, MaxPriority, false},
		{100, MaxPriority, false},
	}
	for _, tt := range tests {
		if got := tt.give.Clamp(); got != tt.want {
			t.Errorf("Clamp(%d) = %d, want %d", tt.give, got, tt.want)
		}
		if got := tt.give.Valid(); got != tt.valid {
			t.Errorf("Valid(%d) = %v, want %v", tt.give, got, tt.valid)
		}
	}
}

func TestSynchronousPoolRunsInline(t *testing.T) {
	p := NewPool(PoolConfig{Name: "sync", Min: 0, Max: 0})
	defer p.Shutdown()
	if !p.Synchronous() {
		t.Fatal("Synchronous() = false for Max=0")
	}
	ran := false
	var gotPrio Priority
	if err := p.Submit(50, func(pr Priority) { ran = true; gotPrio = pr }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("synchronous submit did not run before returning")
	}
	if gotPrio != MaxPriority {
		t.Errorf("priority = %d, want clamped %d", gotPrio, MaxPriority)
	}
	if s := p.Stats(); s.Executed != 1 || !s.Synchronous {
		t.Errorf("stats = %+v", s)
	}
}

func TestPriorityOrderingSingleWorker(t *testing.T) {
	p := NewPool(PoolConfig{Name: "ordered", Min: 1, Max: 1})
	defer p.Shutdown()

	var mu sync.Mutex
	var order []int
	block := make(chan struct{})
	started := make(chan struct{})

	// First task occupies the single worker so the rest queue up.
	if err := p.Submit(NormPriority, func(Priority) {
		close(started)
		<-block
	}); err != nil {
		t.Fatal(err)
	}
	<-started

	done := make(chan struct{}, 6)
	submit := func(prio Priority, id int) {
		if err := p.Submit(prio, func(Priority) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			done <- struct{}{}
		}); err != nil {
			t.Error(err)
		}
	}
	// Submit in a scrambled order; ids encode (priority, fifo-rank).
	submit(5, 3)
	submit(20, 1)
	submit(5, 4) // same priority as id 3, must run after it (FIFO)
	submit(10, 2)
	submit(1, 5)
	submit(1, 6)

	close(block)
	for i := 0; i < 6; i++ {
		<-done
	}

	mu.Lock()
	defer mu.Unlock()
	want := []int{1, 2, 3, 4, 5, 6}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", order, want)
		}
	}
}

func TestPoolGrowsToMax(t *testing.T) {
	p := NewPool(PoolConfig{Name: "grow", Min: 1, Max: 4})
	defer p.Shutdown()

	const tasks = 8
	block := make(chan struct{})
	var running atomic.Int32
	var peak atomic.Int32
	var wg sync.WaitGroup
	wg.Add(tasks)
	for i := 0; i < tasks; i++ {
		if err := p.Submit(NormPriority, func(Priority) {
			n := running.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			<-block
			running.Add(-1)
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	// All four workers should eventually be busy.
	for peak.Load() < 4 {
		// The growth happens on Submit; tasks are already queued, so just
		// yield until workers pick them up.
	}
	close(block)
	wg.Wait()

	s := p.Stats()
	if s.Spawned != 4 {
		t.Errorf("spawned = %d, want 4", s.Spawned)
	}
	if s.Executed != tasks {
		t.Errorf("executed = %d, want %d", s.Executed, tasks)
	}
	if s.MaxQueue < 1 {
		t.Errorf("max queue = %d, want >= 1", s.MaxQueue)
	}
}

func TestPoolMaxRaisedToMin(t *testing.T) {
	p := NewPool(PoolConfig{Name: "minmax", Min: 3, Max: 1})
	defer p.Shutdown()
	if s := p.Stats(); s.Workers != 3 {
		t.Errorf("workers = %d, want 3 (max raised to min)", s.Workers)
	}
}

func TestPoolShutdownDrainsQueue(t *testing.T) {
	p := NewPool(PoolConfig{Name: "drain", Min: 1, Max: 1})
	var count atomic.Int32
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(NormPriority, func(Priority) { close(started); <-block; count.Add(1) }); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 5; i++ {
		if err := p.Submit(NormPriority, func(Priority) { count.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	close(block)
	p.Shutdown()
	if got := count.Load(); got != 6 {
		t.Errorf("executed = %d, want 6 (queue drained before shutdown)", got)
	}
	if err := p.Submit(NormPriority, func(Priority) {}); !errors.Is(err, ErrPoolShutdown) {
		t.Errorf("post-shutdown submit err = %v, want ErrPoolShutdown", err)
	}
	// Idempotent.
	p.Shutdown()
}

func TestSynchronousPoolShutdown(t *testing.T) {
	p := NewPool(PoolConfig{Name: "sync", Max: 0})
	p.Shutdown()
	if err := p.Submit(NormPriority, func(Priority) {}); !errors.Is(err, ErrPoolShutdown) {
		t.Errorf("err = %v, want ErrPoolShutdown", err)
	}
}

func TestNegativeConfigNormalised(t *testing.T) {
	p := NewPool(PoolConfig{Name: "neg", Min: -1, Max: -1})
	defer p.Shutdown()
	if !p.Synchronous() {
		t.Error("negative max should normalise to synchronous")
	}
}

func TestPoolString(t *testing.T) {
	p := NewPool(PoolConfig{Name: "str", Min: 1, Max: 1})
	defer p.Shutdown()
	if p.String() == "" || p.Name() != "str" {
		t.Error("diagnostics empty")
	}
}

// Property: with a single worker and a pre-blocked queue, tasks always
// execute in (priority desc, submission order) order, for any priorities.
func TestPropertyPriorityOrdering(t *testing.T) {
	f := func(prios []uint8) bool {
		if len(prios) == 0 {
			return true
		}
		if len(prios) > 32 {
			prios = prios[:32]
		}
		p := NewPool(PoolConfig{Name: "prop", Min: 1, Max: 1})
		defer p.Shutdown()

		block := make(chan struct{})
		started := make(chan struct{})
		_ = p.Submit(MaxPriority, func(Priority) { close(started); <-block })
		<-started

		type rec struct {
			prio Priority
			seq  int
		}
		var mu sync.Mutex
		var got []rec
		var wg sync.WaitGroup
		wg.Add(len(prios))
		for i, pr := range prios {
			prio := Priority(pr).Clamp()
			seq := i
			_ = p.Submit(prio, func(Priority) {
				mu.Lock()
				got = append(got, rec{prio: prio, seq: seq})
				mu.Unlock()
				wg.Done()
			})
		}
		close(block)
		wg.Wait()

		want := make([]rec, len(got))
		copy(want, got)
		sort.SliceStable(want, func(i, j int) bool {
			if want[i].prio != want[j].prio {
				return want[i].prio > want[j].prio
			}
			return want[i].seq < want[j].seq
		})
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
