package sched

import (
	"testing"
	"time"
)

func TestBackoffUnjitteredDoublesAndCaps(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond}
	want := []time.Duration{1, 2, 4, 8, 8, 8}
	for i, w := range want {
		if got := b.Next(); got != w*time.Millisecond {
			t.Errorf("Next()[%d] = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	b.Reset()
	if got := b.Next(); got != time.Millisecond {
		t.Errorf("after Reset, Next() = %v, want 1ms", got)
	}
}

func TestBackoffJitterBoundedAndDeterministic(t *testing.T) {
	mk := func(seed uint64) []time.Duration {
		b := Backoff{Base: time.Millisecond, Max: 16 * time.Millisecond, Seed: seed}
		out := make([]time.Duration, 10)
		for i := range out {
			out[i] = b.Next()
		}
		return out
	}
	a, c := mk(99), mk(99)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], c[i])
		}
	}
	// Each delay stays in [ceil/2, ceil].
	ceil := time.Millisecond
	for i, d := range a {
		if d < ceil/2 || d > ceil {
			t.Errorf("delay[%d] = %v outside [%v, %v]", i, d, ceil/2, ceil)
		}
		if ceil < 16*time.Millisecond {
			ceil *= 2
		}
	}
}

func TestRetryBudgetExhaustsAndRefills(t *testing.T) {
	b := NewRetryBudget(2, 3)
	if !b.Take() || !b.Take() {
		t.Fatal("fresh budget refused tokens")
	}
	if b.Take() {
		t.Fatal("empty budget granted a token")
	}
	b.Earn()
	b.Earn()
	if b.Take() {
		t.Fatal("budget refilled before earnEvery successes")
	}
	b.Earn() // third success earns one token
	if !b.Take() {
		t.Fatal("budget did not refill after earnEvery successes")
	}
}

func TestRetryBudgetCapped(t *testing.T) {
	b := NewRetryBudget(1, 1)
	for i := 0; i < 10; i++ {
		b.Earn()
	}
	if got := b.Tokens(); got != 1 {
		t.Errorf("tokens = %d, want capped at 1", got)
	}
}
