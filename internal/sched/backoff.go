package sched

import (
	"sync/atomic"
	"time"
)

// Backoff produces capped exponential delays with deterministic jitter: the
// n-th Next() returns a duration drawn from [cap/2, cap] where cap doubles
// from Base up to Max ("equal jitter"). The jitter stream is splitmix64
// over the seed, so a retry schedule is reproducible for a given seed —
// the same property the fault package gives chaos scenarios.
//
// A Backoff is owned by one retry loop and is not safe for concurrent use.
type Backoff struct {
	// Base is the first delay ceiling; zero selects 1ms.
	Base time.Duration
	// Max caps the ceiling's exponential growth; zero selects 250ms.
	Max time.Duration
	// Seed drives the jitter; zero produces an unjittered schedule of
	// exact ceilings (useful for tests that assert timing bounds).
	Seed uint64

	attempt int
	draws   uint64
}

// Next returns the delay before the next retry and advances the schedule.
func (b *Backoff) Next() time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = time.Millisecond
	}
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	ceil := base
	for i := 0; i < b.attempt && ceil < max; i++ {
		ceil *= 2
	}
	if ceil > max {
		ceil = max
	}
	b.attempt++
	if b.Seed == 0 {
		return ceil
	}
	half := ceil / 2
	b.draws++
	z := b.Seed + b.draws*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return half + time.Duration(z%uint64(half+1))
}

// Reset restarts the schedule from Base (the jitter stream continues).
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt returns how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }

// RetryBudget is a token bucket bounding how many retries a client may
// spend: each retry takes one token, each success earns a fraction back
// (one token per EarnEvery successes), and the bucket is capped, so a hard
// outage cannot turn into an unbounded retry storm — once the budget is
// spent, failures surface immediately until successes refill it.
//
// All methods are safe for concurrent use and allocation-free.
type RetryBudget struct {
	tokens  atomic.Int64
	cap     int64
	earnDiv int64
	earns   atomic.Int64
}

// NewRetryBudget returns a full bucket holding capTokens (minimum 1),
// refilled at one token per earnEvery successes (minimum 1).
func NewRetryBudget(capTokens, earnEvery int) *RetryBudget {
	if capTokens < 1 {
		capTokens = 1
	}
	if earnEvery < 1 {
		earnEvery = 1
	}
	b := &RetryBudget{cap: int64(capTokens), earnDiv: int64(earnEvery)}
	b.tokens.Store(b.cap)
	return b
}

// Take consumes one token, reporting false (and consuming nothing) when the
// budget is exhausted.
func (b *RetryBudget) Take() bool {
	for {
		t := b.tokens.Load()
		if t <= 0 {
			return false
		}
		if b.tokens.CompareAndSwap(t, t-1) {
			return true
		}
	}
}

// Earn credits one success toward the refill rate.
func (b *RetryBudget) Earn() {
	if b.earns.Add(1)%b.earnDiv != 0 {
		return
	}
	for {
		t := b.tokens.Load()
		if t >= b.cap {
			return
		}
		if b.tokens.CompareAndSwap(t, t+1) {
			return
		}
	}
}

// Tokens returns the current token count.
func (b *RetryBudget) Tokens() int64 { return b.tokens.Load() }
