package sched

import (
	"testing"
)

// Strict priority across bands is preserved: the fair queue never lets a
// lower band run while a higher band has work, exactly like the Pool rings.
func TestFairQueueStrictPriority(t *testing.T) {
	q := NewFairQueue(nil)
	q.Push(1, 0, 5, 0)
	q.Push(2, 0, 30, 0)
	q.Push(3, 0, 15, 0)
	q.Push(4, 0, 30, 0)
	want := []uint32{2, 4, 3, 1}
	for i, w := range want {
		h, ok := q.Pop()
		if !ok || h != w {
			t.Fatalf("pop %d = (%d, %v), want %d", i, h, ok, w)
		}
	}
	if _, ok := q.Pop(); ok || q.Len() != 0 {
		t.Error("queue not empty after draining")
	}
}

// Within a band, contested pops divide by DRR weight: class 0 at weight 3
// gets three pops per round to class 1's one.
func TestFairQueueDRRWeights(t *testing.T) {
	q := NewFairQueue([]int32{3, 1})
	// 12 messages each, same band, interleaved arrival.
	for i := uint32(0); i < 12; i++ {
		q.Push(100+i, 0, 10, 0)
		q.Push(200+i, 1, 10, 0)
	}
	// Over the first 8 pops (two full rounds), class 0 should win 6.
	c0 := 0
	for i := 0; i < 8; i++ {
		h, ok := q.Pop()
		if !ok {
			t.Fatal("pop failed")
		}
		if h < 200 {
			c0++
		}
	}
	if c0 != 6 {
		t.Errorf("class 0 won %d of 8 contested pops, want 6 (weight 3:1)", c0)
	}
	// Once class 0 drains, class 1 gets every pop regardless of weight.
	for q.Len() > 0 {
		q.Pop()
	}
}

// A flooding class cannot starve a same-band neighbour: the neighbour's
// lone message pops within one DRR round of its arrival.
func TestFairQueueNoStarvation(t *testing.T) {
	q := NewFairQueue([]int32{1, 1})
	for i := uint32(0); i < 64; i++ {
		q.Push(i, 0, 10, 0)
	}
	q.Push(999, 1, 10, 0)
	for i := 0; i < 3; i++ { // weight 1 each: the victim pops by turn 2
		if h, _ := q.Pop(); h == 999 {
			return
		}
	}
	t.Error("flooded class starved the neighbour past a full DRR round")
}

// Within a class, EDF: the message nearest its deadline pops first,
// no-deadline messages pop last, FIFO among equals.
func TestFairQueueEDFWithinClass(t *testing.T) {
	q := NewFairQueue(nil)
	q.Push(1, 0, 10, 0)    // no deadline
	q.Push(2, 0, 10, 5000) // latest real deadline
	q.Push(3, 0, 10, 1000) // most urgent
	q.Push(4, 0, 10, 0)    // no deadline, after 1
	want := []uint32{3, 2, 1, 4}
	for i, w := range want {
		if h, _ := q.Pop(); h != w {
			t.Fatalf("pop %d = %d, want %d (EDF then FIFO)", i, h, w)
		}
	}
}

// PopLowest takes the newest handle from the lowest band; PopOldest the
// globally oldest; Remove deletes an exact handle.
func TestFairQueueEviction(t *testing.T) {
	q := NewFairQueue(nil)
	q.Push(1, 0, 20, 0) // oldest overall
	q.Push(2, 0, 5, 0)
	q.Push(3, 1, 5, 0) // newest in the lowest band
	q.Push(4, 0, 20, 0)

	if p, ok := q.PeekLowestPrio(); !ok || p != 5 {
		t.Fatalf("PeekLowestPrio = (%d, %v), want 5", p, ok)
	}
	if h, ok := q.PopLowest(); !ok || h != 3 {
		t.Fatalf("PopLowest = (%d, %v), want 3 (newest of band 5)", h, ok)
	}
	if h, ok := q.PopOldest(); !ok || h != 1 {
		t.Fatalf("PopOldest = (%d, %v), want 1", h, ok)
	}
	if !q.Remove(4) {
		t.Fatal("Remove(4) did not find the handle")
	}
	if q.Remove(4) {
		t.Fatal("Remove(4) found an already-removed handle")
	}
	if h, ok := q.Pop(); !ok || h != 2 {
		t.Fatalf("final pop = (%d, %v), want 2", h, ok)
	}
	if q.Len() != 0 {
		t.Errorf("len = %d after draining, want 0", q.Len())
	}
}

// Out-of-range classes fold into the last lane and out-of-range priorities
// clamp into the band, rather than corrupting the masks.
func TestFairQueueClamping(t *testing.T) {
	q := NewFairQueue(nil)
	q.Push(1, 200, 10, 0)            // class clamps to MaxTenantClasses-1
	q.Push(2, 0, MaxPriority+9, 0)   // prio clamps to MaxPriority
	q.Push(3, 0, MinPriority-100, 0) // prio clamps to MinPriority
	if h, _ := q.Pop(); h != 2 {
		t.Errorf("first pop = %d, want the clamped-high 2", h)
	}
	if h, _ := q.Pop(); h != 1 {
		t.Errorf("second pop = %d, want 1", h)
	}
	if h, _ := q.Pop(); h != 3 {
		t.Errorf("third pop = %d, want the clamped-low 3", h)
	}
}

// Steady-state push/pop must not allocate: the fair queue sits on the
// dispatch path of fair-mode In ports.
func TestFairQueueAllocFree(t *testing.T) {
	q := NewFairQueue(nil)
	// Warm the band and its class heap.
	for i := uint32(0); i < 8; i++ {
		q.Push(i, uint8(i%2), 10, int64(i))
	}
	for q.Len() > 0 {
		q.Pop()
	}
	allocs := testing.AllocsPerRun(200, func() {
		for i := uint32(0); i < 8; i++ {
			q.Push(i, uint8(i%2), 10, int64(i))
		}
		for q.Len() > 0 {
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state push/pop allocates %.1f objects/op, want 0", allocs)
	}
}
