package deploy

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/remote"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// reconfDefs declares a hub plus two worker versions, so Apply has both a
// swap (class change) and a rewire (destination change) to install.
const reconfDefs = `
<ComponentDefinitions>
  <Component>
    <ComponentName>RHub</ComponentName>
    <Port><PortName>feedA</PortName><PortType>Out</PortType><MessageType>Sample</MessageType></Port>
    <Port><PortName>feedB</PortName><PortType>Out</PortType><MessageType>Sample</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>RWorkerV1</ComponentName>
    <Port><PortName>in</PortName><PortType>In</PortType><MessageType>Sample</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>RWorkerV2</ComponentName>
    <Port><PortName>in</PortName><PortType>In</PortType><MessageType>Sample</MessageType></Port>
  </Component>
</ComponentDefinitions>`

// reconfApp parameterises worker W's class and feedA's destination.
func reconfApp(workerClass, feedADest string) string {
	return fmt.Sprintf(`
<Application>
  <ApplicationName>Reconf</ApplicationName>
  <Component>
    <InstanceName>H</InstanceName>
    <ClassName>RHub</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port>
        <PortName>feedA</PortName>
        <Link><PortType>Internal</PortType><ToComponent>%s</ToComponent><ToPort>in</ToPort></Link>
      </Port>
      <Port>
        <PortName>feedB</PortName>
        <Link><PortType>Internal</PortType><ToComponent>X</ToComponent><ToPort>in</ToPort></Link>
      </Port>
    </Connection>
    <Component>
      <InstanceName>W</InstanceName>
      <ClassName>%s</ClassName>
      <ComponentType>Scoped</ComponentType>
      <MemorySize>16384</MemorySize>
    </Component>
    <Component>
      <InstanceName>X</InstanceName>
      <ClassName>RWorkerV1</ClassName>
      <ComponentType>Scoped</ComponentType>
      <MemorySize>16384</MemorySize>
    </Component>
  </Component>
</Application>`, feedADest, workerClass)
}

// reconfCounts tracks deliveries per (instance, class version).
type reconfCounts struct {
	wV1, wV2, x atomic.Int64
}

func (rc *reconfCounts) total() int64 { return rc.wV1.Load() + rc.wV2.Load() + rc.x.Load() }

// reconfRegistry binds both worker versions, counting which code served.
func reconfRegistry(t *testing.T, counts *reconfCounts) *compiler.Registry {
	t.Helper()
	reg := compiler.NewRegistry()
	if err := reg.RegisterType(sampleType); err != nil {
		t.Fatal(err)
	}
	worker := func(hit func(name string)) compiler.ClassBinding {
		return compiler.ClassBinding{
			NewHandlers: func(c *core.Component) (map[string]core.Handler, error) {
				name := c.Name()
				return map[string]core.Handler{
					"in": core.HandlerFunc(func(p *core.Proc, m core.Message) error {
						hit(name)
						return nil
					}),
				}, nil
			},
		}
	}
	if err := reg.RegisterClass("RHub", compiler.ClassBinding{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterClass("RWorkerV1", worker(func(name string) {
		if name == "W" {
			counts.wV1.Add(1)
		} else {
			counts.x.Add(1)
		}
	})); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterClass("RWorkerV2", worker(func(string) {
		counts.wV2.Add(1)
	})); err != nil {
		t.Fatal(err)
	}
	return reg
}

// applySend rides out transient pool exhaustion while swaps briefly hold
// messages in flight.
func applySend(t *testing.T, out *core.OutPort) {
	t.Helper()
	for {
		msg, err := out.GetMessage()
		if errors.Is(err, core.ErrPoolEmpty) {
			time.Sleep(20 * time.Microsecond)
			continue
		}
		if err != nil {
			t.Fatalf("get message: %v", err)
		}
		msg.(*sample).v = 1
		err = out.Send(msg, sched.NormPriority)
		if errors.Is(err, core.ErrBufferFull) {
			// The workers lag the sender; back off and re-acquire (the
			// rejected message went back to the pool).
			time.Sleep(50 * time.Microsecond)
			continue
		}
		if err != nil {
			t.Fatalf("send: %v", err)
		}
		return
	}
}

// TestApplySwapThenRewireUnderTraffic installs a class swap and then a
// destination rewire into a live deployment while a sender keeps the hub's
// ports busy; every message sent must land on exactly one handler.
func TestApplySwapThenRewireUnderTraffic(t *testing.T) {
	planA := compilePlan(t, reconfDefs, reconfApp("RWorkerV1", "W"))
	planB := compilePlan(t, reconfDefs, reconfApp("RWorkerV2", "W"))
	planC := compilePlan(t, reconfDefs, reconfApp("RWorkerV2", "X"))

	var counts reconfCounts
	reg := reconfRegistry(t, &counts)
	dep, err := Run(planA, reg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	out, err := dep.App.Component("H").SMM().GetOutPort("H.feedA")
	if err != nil {
		t.Fatal(err)
	}
	var sent int64
	send := func(n int) {
		for i := 0; i < n; i++ {
			applySend(t, out)
			sent++
		}
	}

	send(50)
	if counts.wV1.Load() == 0 {
		deadline := time.Now().Add(2 * time.Second)
		for counts.wV1.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}

	// Swap W to the V2 class, keeping traffic flowing right up to the call.
	delta, err := compiler.Diff(planA, planB)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dep.Apply(delta, ApplyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Swaps != 1 || st.Rewires != 0 {
		t.Fatalf("stats = %+v, want one swap", st)
	}
	if st.MaxPauseNs <= 0 {
		t.Errorf("swap pause = %d, want > 0", st.MaxPauseNs)
	}
	send(50)

	// Rewire feedA from W to X. The deployment revalidates the delta against
	// what it actually runs, so diffing from the stale planA is fine too —
	// but diff from planB to keep the script to one step.
	delta2, err := compiler.Diff(planB, planC)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := dep.Apply(delta2, ApplyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Rewires != 1 || st2.Swaps != 0 {
		t.Fatalf("stats = %+v, want one rewire", st2)
	}
	send(50)

	// Every send landed exactly once: no drops across swap and rewire.
	deadline := time.Now().Add(5 * time.Second)
	for counts.total() < sent {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/%d (v1=%d v2=%d x=%d): messages dropped",
				counts.total(), sent, counts.wV1.Load(), counts.wV2.Load(), counts.x.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if got := counts.total(); got != sent {
		t.Fatalf("delivered %d, sent %d", got, sent)
	}
	if counts.wV2.Load() == 0 {
		t.Error("swapped-in V2 never served")
	}
	if counts.x.Load() < 50 {
		t.Errorf("post-rewire X deliveries = %d, want >= 50", counts.x.Load())
	}
	if n, errs := dep.App.Errors(); n != 0 {
		t.Errorf("app errors: %d (%v)", n, errs)
	}
}

// TestApplyStaleDeltaRevalidates diffs against a plan the process never ran
// and confirms Apply re-diffs from its live plan instead of trusting it.
func TestApplyStaleDeltaRevalidates(t *testing.T) {
	planA := compilePlan(t, reconfDefs, reconfApp("RWorkerV1", "W"))
	planB := compilePlan(t, reconfDefs, reconfApp("RWorkerV2", "W"))

	var counts reconfCounts
	dep, err := Run(planA, reconfRegistry(t, &counts), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	// A delta whose Old is a *different compile* of the same document: Apply
	// must revalidate (and still find the single swap).
	stale := compilePlan(t, reconfDefs, reconfApp("RWorkerV1", "W"))
	delta, err := compiler.Diff(stale, planB)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dep.Apply(delta, ApplyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Swaps != 1 {
		t.Fatalf("stats = %+v", st)
	}

	if _, err := dep.Apply(nil, ApplyOptions{}); !errors.Is(err, ErrDeploy) {
		t.Errorf("nil delta err = %v", err)
	}
}

// TestRollingUpgradeThreeReplicasZeroErrors upgrades a 3-replica group under
// continuous client traffic: no invocation may surface an error, no breaker
// may trip, and the new version must end up serving everywhere.
func TestRollingUpgradeThreeReplicasZeroErrors(t *testing.T) {
	net := transport.NewInproc()
	planA := compilePlan(t, serverDefs, replicatedApp)
	var v1, v2 atomic.Int64

	cd, err := RunCluster(planA, sinkRegistry(t, &v1), ClusterConfig{Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Close()

	group := remote.PortKey("Collector.in")
	tripsBefore := telemetry.NewCounter("breaker_open_total").Value()

	c, err := cluster.Dial(cluster.ClientConfig{
		Network: net, Directory: cd.DirectoryAddr(), Group: group,
		Channels:        6,
		RefreshInterval: 2 * time.Millisecond,
		Resilience:      &orb.ResilienceConfig{MaxRetries: 8, BreakerThreshold: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	wire, err := (&sample{v: 7}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	var sent atomic.Int64
	var invokeErr atomic.Pointer[error]
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Invoke(group, "send", wire, sched.NormPriority); err != nil {
				invokeErr.CompareAndSwap(nil, &err)
				return
			}
			sent.Add(1)
		}
	}()

	// Let traffic establish, then roll the whole group to the new version.
	time.Sleep(20 * time.Millisecond)
	planB := compilePlan(t, serverDefs, replicatedApp)
	rep, err := cd.RollingUpgrade("backend", planB, sinkRegistry(t, &v2), UpgradeOptions{
		SettleDelay: 25 * time.Millisecond, DrainTimeout: 2 * time.Second,
	})
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}

	if ep := invokeErr.Load(); ep != nil {
		t.Fatalf("client surfaced an error during the upgrade: %v", *ep)
	}
	if trips := telemetry.NewCounter("breaker_open_total").Value() - tripsBefore; trips != 0 {
		t.Errorf("breaker tripped %d times during the rolling upgrade", trips)
	}
	if len(rep.Members) != 3 {
		t.Fatalf("members upgraded = %d, want 3 (%+v)", len(rep.Members), rep.Members)
	}
	for _, m := range rep.Members {
		if !m.Drained {
			t.Errorf("member %d closed with requests still in flight", m.OldIndex)
		}
		if m.PauseNs <= 0 {
			t.Errorf("member %d pause = %d", m.OldIndex, m.PauseNs)
		}
	}
	if reps := cd.Replicas("backend"); len(reps) != 3 {
		t.Errorf("post-upgrade replicas = %d, want 3", len(reps))
	}
	if members := cd.Directory.Members(group); len(members) != 3 {
		t.Errorf("post-upgrade directory members = %v, want 3", members)
	}
	if v2.Load() == 0 {
		t.Error("new version never served a request")
	}

	// Acknowledged invocations: everything the client counted as sent must
	// have been delivered by one version or the other.
	deadline := time.Now().Add(5 * time.Second)
	for v1.Load()+v2.Load() < sent.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d+%d < sent %d: messages dropped",
				v1.Load(), v2.Load(), sent.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// Future replicas build the new version too.
	r, err := cd.StartReplica("backend")
	if err != nil {
		t.Fatal(err)
	}
	if err := cd.KillReplica("backend", r.Index); err != nil {
		t.Fatal(err)
	}
}

// TestRollingUpgradeValidation covers the refusal paths.
func TestRollingUpgradeValidation(t *testing.T) {
	net := transport.NewInproc()
	plan := compilePlan(t, serverDefs, replicatedApp)
	var v1 atomic.Int64
	cd, err := RunCluster(plan, sinkRegistry(t, &v1), ClusterConfig{Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Close()

	if _, err := cd.RollingUpgrade("backend", nil, nil, UpgradeOptions{}); !errors.Is(err, ErrDeploy) {
		t.Errorf("nil plan err = %v", err)
	}
	var v2 atomic.Int64
	if _, err := cd.RollingUpgrade("nowhere", plan, sinkRegistry(t, &v2), UpgradeOptions{}); err == nil {
		t.Error("unknown node accepted")
	}
}

// TestChaosRollingUpgradeSoak rolls the group version back and forth under
// sustained traffic — the deployment-layer half of the hot-swap soak.
func TestChaosRollingUpgradeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	net := transport.NewInproc()
	planA := compilePlan(t, serverDefs, replicatedApp)
	var vA, vB atomic.Int64

	cd, err := RunCluster(planA, sinkRegistry(t, &vA), ClusterConfig{Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Close()

	group := remote.PortKey("Collector.in")
	c, err := cluster.Dial(cluster.ClientConfig{
		Network: net, Directory: cd.DirectoryAddr(), Group: group,
		Channels:        6,
		RefreshInterval: 2 * time.Millisecond,
		Resilience:      &orb.ResilienceConfig{MaxRetries: 8, BreakerThreshold: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	wire, _ := (&sample{v: 1}).MarshalBinary()
	stop := make(chan struct{})
	done := make(chan struct{})
	var sent atomic.Int64
	var invokeErr atomic.Pointer[error]
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Invoke(group, "send", wire, sched.NormPriority); err != nil {
				invokeErr.CompareAndSwap(nil, &err)
				return
			}
			sent.Add(1)
		}
	}()

	planB := compilePlan(t, serverDefs, replicatedApp)
	regs := []*compiler.Registry{sinkRegistry(t, &vB), sinkRegistry(t, &vA)}
	plans := []*compiler.Plan{planB, planA}
	// The settle must outlast the refresher's retarget latency even under
	// the race detector's ~10x slowdown, or stragglers hit a closing member.
	for round := 0; round < 3; round++ {
		if _, err := cd.RollingUpgrade("backend", plans[round%2], regs[round%2], UpgradeOptions{
			SettleDelay: 40 * time.Millisecond, DrainTimeout: 2 * time.Second,
		}); err != nil {
			close(stop)
			t.Fatalf("round %d: %v", round, err)
		}
	}
	close(stop)
	<-done

	if ep := invokeErr.Load(); ep != nil {
		t.Fatalf("client surfaced an error during the soak: %v", *ep)
	}
	deadline := time.Now().Add(5 * time.Second)
	for vA.Load()+vB.Load() < sent.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d+%d < sent %d", vA.Load(), vB.Load(), sent.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if vB.Load() == 0 {
		t.Error("upgraded version never served")
	}
}
