// Package deploy runs compiled Compadres applications as processes of a
// distributed system — the paper's future-work vision ("code generation for
// transparently handling remote communication over a network") completed
// end to end: CCL documents declare <Exported> In ports and
// <PortType>Remote</PortType> links, the compiler plans them
// (compiler.Plan.Exports / RemoteConnections), and Run wires them over the
// Compadres ORB using internal/remote.
//
// A deployment owns, besides the component application itself, the ORB
// server publishing the exported ports and one ORB client per distinct
// remote address. Close tears all of it down.
package deploy

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/remote"
	"repro/internal/transport"
)

// ErrDeploy is wrapped by deployment failures.
var ErrDeploy = errors.New("deploy: error")

// Config parameterises Run.
type Config struct {
	// Network carries the inter-process traffic. Required when the plan
	// has exports or remote connections.
	Network transport.Network
	// ListenAddr is where the ORB server binds when the plan exports
	// ports (for TCP, ":0" picks an ephemeral port).
	ListenAddr string
	// ScopePoolCount tunes the ORB endpoints' request scopes.
	ScopePoolCount int
}

// Deployment is one running process of a distributed Compadres application.
type Deployment struct {
	// App is the local component application (already started).
	App *core.App
	// Server is the ORB server publishing exported ports; nil when the
	// plan exports nothing.
	Server *orb.Server

	clients map[string]*orb.Client

	// plan and reg remember what this process is running, so Apply can
	// validate and install live deltas against it.
	mu   sync.Mutex
	plan *compiler.Plan
	reg  *compiler.Registry
}

// Run assembles the plan, starts the application, publishes its exported
// ports, and bridges its remote links. The remote endpoints need not be up
// yet: ORB clients dial lazily, on the first message crossing the link.
func Run(plan *compiler.Plan, reg *compiler.Registry, cfg Config, opts ...compiler.AssembleOption) (*Deployment, error) {
	needsNet := len(plan.Exports) > 0 || len(plan.RemoteConnections) > 0
	if needsNet && cfg.Network == nil {
		return nil, fmt.Errorf("%w: plan is distributed but no network configured", ErrDeploy)
	}

	app, err := compiler.Assemble(plan, reg, opts...)
	if err != nil {
		return nil, err
	}
	d := &Deployment{App: app, clients: make(map[string]*orb.Client), plan: plan, reg: reg}
	fail := func(err error) (*Deployment, error) {
		d.Close()
		return nil, err
	}

	// Publish exported ports before starting, so peers that race us see
	// every port as soon as the listener answers.
	if len(plan.Exports) > 0 {
		srv, err := orb.NewServer(orb.ServerConfig{
			Network: cfg.Network, Addr: cfg.ListenAddr, ScopePoolCount: cfg.ScopePoolCount,
		})
		if err != nil {
			return fail(fmt.Errorf("%w: listen: %v", ErrDeploy, err))
		}
		d.Server = srv
		for _, exp := range plan.Exports {
			typ, ok := reg.Type(exp.MessageType)
			if !ok {
				return fail(fmt.Errorf("%w: export %s.%s: unregistered type %q",
					ErrDeploy, exp.Instance, exp.Port, exp.MessageType))
			}
			comp := app.Component(exp.Instance)
			if comp == nil {
				return fail(fmt.Errorf("%w: export %s.%s: no such instance", ErrDeploy, exp.Instance, exp.Port))
			}
			if err := remote.Export(srv, comp.SMM(), exp.Instance+"."+exp.Port, typ); err != nil {
				return fail(fmt.Errorf("%w: export %s.%s: %v", ErrDeploy, exp.Instance, exp.Port, err))
			}
		}
		srv.ServeBackground()
	}

	// Bridge remote links: one ORB client per distinct address, one proxy
	// In port per link, grafted onto the link's owning instance.
	for _, rc := range plan.RemoteConnections {
		cl, ok := d.clients[rc.Addr]
		if !ok {
			var err error
			cl, err = orb.DialClient(orb.ClientConfig{
				Network: cfg.Network, Addr: rc.Addr, ScopePoolCount: cfg.ScopePoolCount,
			})
			if err != nil {
				return fail(fmt.Errorf("%w: remote %s: %v", ErrDeploy, rc.Addr, err))
			}
			d.clients[rc.Addr] = cl
		}
		typ, ok := reg.Type(rc.MessageType)
		if !ok {
			return fail(fmt.Errorf("%w: remote link %s.%s: unregistered type %q",
				ErrDeploy, rc.FromInstance, rc.FromPort, rc.MessageType))
		}
		proxy, err := remote.NewProxy(cl, rc.Dest, typ, true /* acknowledged */)
		if err != nil {
			return fail(fmt.Errorf("%w: remote link %s.%s: %v", ErrDeploy, rc.FromInstance, rc.FromPort, err))
		}
		comp := app.Component(rc.FromInstance)
		if comp == nil {
			return fail(fmt.Errorf("%w: remote link: no instance %q", ErrDeploy, rc.FromInstance))
		}
		if _, err := remote.Bind(comp, comp.SMM(), rc.BridgePort, proxy); err != nil {
			return fail(fmt.Errorf("%w: remote link %s.%s: %v", ErrDeploy, rc.FromInstance, rc.FromPort, err))
		}
	}

	if err := app.Start(); err != nil {
		return fail(err)
	}
	return d, nil
}

// Addr returns the exported-ports endpoint, or "" when nothing is exported.
func (d *Deployment) Addr() string {
	if d.Server == nil {
		return ""
	}
	return d.Server.Addr()
}

// Close stops the application, the server, and every outbound ORB client.
// It is idempotent.
func (d *Deployment) Close() {
	for _, cl := range d.clients {
		cl.Close()
	}
	d.clients = make(map[string]*orb.Client)
	if d.Server != nil {
		d.Server.Close()
	}
	if d.App != nil {
		d.App.Stop()
	}
}
