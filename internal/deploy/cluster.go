// Replicated deployment: a compiled plan whose placement declares <Node> and
// <Replicas> runs as a *cluster* — each node's sub-plan as N independent
// processes plus one directory endpoint publishing the replica groups. The
// directory is the rendezvous: clients (internal/cluster.Dial) probe it with
// Locate and are forwarded to the live members, so killing and re-adding a
// replica is a directory edit, not a client reconfiguration.

package deploy

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/compiler"
	"repro/internal/orb"
	"repro/internal/remote"
	"repro/internal/transport"
)

// ClusterConfig parameterises RunCluster.
type ClusterConfig struct {
	// Network carries the inter-process traffic. Required.
	Network transport.Network
	// DirectoryAddr is where the directory endpoint listens (for TCP,
	// ":0" picks an ephemeral port; inproc auto-assigns on "").
	DirectoryAddr string
	// NodeAddr names the listen address of one replica process; nil lets
	// the network auto-assign (each replica must get a distinct address).
	NodeAddr func(node string, replica int) string
	// ScopePoolCount tunes every endpoint's request scopes.
	ScopePoolCount int
}

// Replica is one running process of a node's sub-plan.
type Replica struct {
	// Node is the placement node this process runs.
	Node string
	// Index is the replica ordinal, unique per node across the cluster's
	// lifetime (a re-added member gets a fresh index).
	Index int
	// Dep is the process itself; nil after KillReplica.
	Dep *Deployment

	groups []string // directory groups this replica's exports joined
}

// Addr returns the replica's exported-ports endpoint ("" once killed).
func (r *Replica) Addr() string {
	if r.Dep == nil {
		return ""
	}
	return r.Dep.Addr()
}

// ClusterDeployment is a running replicated deployment: the directory
// endpoint plus every replica process.
type ClusterDeployment struct {
	// Directory is the authoritative group membership; tests and operators
	// may edit it directly (Remove before a drain, Add after a join).
	Directory *cluster.Directory
	// DirServer serves the directory's Locate probes.
	DirServer *orb.Server

	plan *compiler.Plan
	reg  *compiler.Registry
	cfg  ClusterConfig
	opts []compiler.AssembleOption

	mu       sync.Mutex
	replicas []*Replica
	next     map[string]int
	closed   bool
}

// RunCluster deploys the plan's placement: every node's sub-plan runs
// Replicas times, each process publishing its exports, and the directory
// endpoint maps each exported port's group (remote.PortKey of the qualified
// name) to the live replica addresses. Unreplicated nodes run once and are
// still registered — a singleton group resolves like any other.
func RunCluster(plan *compiler.Plan, reg *compiler.Registry, cfg ClusterConfig, opts ...compiler.AssembleOption) (*ClusterDeployment, error) {
	if cfg.Network == nil {
		return nil, fmt.Errorf("%w: cluster needs a network", ErrDeploy)
	}
	d := &ClusterDeployment{
		Directory: cluster.NewDirectory(),
		plan:      plan,
		reg:       reg,
		cfg:       cfg,
		opts:      opts,
		next:      make(map[string]int),
	}
	srv, err := orb.NewServer(orb.ServerConfig{
		Network: cfg.Network, Addr: cfg.DirectoryAddr, ScopePoolCount: cfg.ScopePoolCount,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: directory listen: %v", ErrDeploy, err)
	}
	d.DirServer = srv
	d.Directory.Attach(srv)
	srv.ServeBackground()

	for _, np := range plan.Nodes {
		for i := 0; i < np.Replicas; i++ {
			if _, err := d.StartReplica(np.Node); err != nil {
				d.Close()
				return nil, err
			}
		}
	}
	return d, nil
}

// DirectoryAddr returns the directory endpoint's address — what cluster
// clients pass as ClientConfig.Directory.
func (d *ClusterDeployment) DirectoryAddr() string { return d.DirServer.Addr() }

// StartReplica runs one more process of the node's sub-plan and joins its
// exports to the directory — the re-add half of a rolling restart.
func (d *ClusterDeployment) StartReplica(node string) (*Replica, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.startReplicaLocked(node, d.plan, d.reg)
}

// startReplicaLocked starts one process of the node's sub-plan from an
// explicit plan/registry (RollingUpgrade surges the new version this way
// while d.plan still names the old one). Caller holds d.mu.
func (d *ClusterDeployment) startReplicaLocked(node string, plan *compiler.Plan, reg *compiler.Registry) (*Replica, error) {
	if d.closed {
		return nil, fmt.Errorf("%w: cluster closed", ErrDeploy)
	}
	sub, err := plan.SubPlan(node)
	if err != nil {
		return nil, err
	}
	idx := d.next[node]
	d.next[node] = idx + 1
	addr := ""
	if d.cfg.NodeAddr != nil {
		addr = d.cfg.NodeAddr(node, idx)
	}
	dep, err := Run(sub, reg, Config{
		Network: d.cfg.Network, ListenAddr: addr, ScopePoolCount: d.cfg.ScopePoolCount,
	}, d.opts...)
	if err != nil {
		return nil, fmt.Errorf("%w: node %q replica %d: %v", ErrDeploy, node, idx, err)
	}
	r := &Replica{Node: node, Index: idx, Dep: dep}
	for _, ex := range sub.Exports {
		g := remote.PortKey(ex.Instance + "." + ex.Port)
		r.groups = append(r.groups, g)
		d.Directory.Add(g, dep.Addr())
	}
	d.replicas = append(d.replicas, r)
	return r, nil
}

// KillReplica takes one replica of the node down: membership first (so
// clients resolving mid-kill see only survivors), then the process.
func (d *ClusterDeployment) KillReplica(node string, index int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range d.replicas {
		if r.Node != node || r.Index != index || r.Dep == nil {
			continue
		}
		for _, g := range r.groups {
			d.Directory.Remove(g, r.Dep.Addr())
		}
		r.Dep.Close()
		r.Dep = nil
		return nil
	}
	return fmt.Errorf("%w: node %q has no live replica %d", ErrDeploy, node, index)
}

// Replicas returns the node's live replicas.
func (d *ClusterDeployment) Replicas(node string) []*Replica {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []*Replica
	for _, r := range d.replicas {
		if r.Node == node && r.Dep != nil {
			out = append(out, r)
		}
	}
	return out
}

// Close tears the whole cluster down: every live replica, then the
// directory. Idempotent.
func (d *ClusterDeployment) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	replicas := d.replicas
	d.mu.Unlock()
	for _, r := range replicas {
		if r.Dep != nil {
			r.Dep.Close()
			r.Dep = nil
		}
	}
	if d.DirServer != nil {
		d.DirServer.Close()
	}
}
