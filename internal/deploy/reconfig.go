// Live reconfiguration at the deployment layer: Apply installs a compiled
// plan delta into a running process (child-subtree swaps and port rewires,
// ordered by the compiler's script), and RollingUpgrade replaces a
// replicated node's processes one member at a time behind the directory —
// surge the new version in, retire the old one through a servant drain, and
// never leave the group without live members.

package deploy

import (
	"fmt"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// ApplyOptions tunes Deployment.Apply.
type ApplyOptions struct {
	// DrainTimeout bounds each swap's pause while the outgoing instance
	// drains; zero selects core.DefaultDrainTimeout.
	DrainTimeout time.Duration
	// Registry supplies the class bindings for swapped-in subtrees (the new
	// version's handlers); nil keeps the deployment's current registry.
	Registry *compiler.Registry
}

// ApplyStats reports what an Apply did.
type ApplyStats struct {
	// Swaps and Rewires count the committed steps.
	Swaps, Rewires int
	// MaxPauseNs is the longest single swap pause.
	MaxPauseNs int64
}

// Apply installs a plan delta into the running process: every step commits
// through the core lifecycle API (SMM.Swap / SMM.Rewire), so in-flight
// messages drain against the old versions and no message is dropped. Steps
// apply in the delta's order; a failing step stops the script and reports
// how far it got (each committed step remains committed — steps are
// individually atomic). On success the deployment tracks the new plan.
func (d *Deployment) Apply(delta *compiler.Delta, opts ApplyOptions) (ApplyStats, error) {
	var st ApplyStats
	if delta == nil || delta.New == nil {
		return st, fmt.Errorf("%w: nil delta", ErrDeploy)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	reg := opts.Registry
	if reg == nil {
		reg = d.reg
	}
	// Revalidate against what this process actually runs: the caller may
	// have diffed a stale plan.
	if delta.Old != d.plan {
		var err error
		delta, err = compiler.Diff(d.plan, delta.New)
		if err != nil {
			return st, err
		}
	}
	for _, step := range delta.Steps {
		switch step.Op {
		case compiler.OpSwapChild:
			parent := d.App.Component(step.Parent)
			if parent == nil {
				return st, fmt.Errorf("%w: apply: no live component %q", ErrDeploy, step.Parent)
			}
			def, err := compiler.ChildDefFor(delta.New, reg, d.App, step.Child)
			if err != nil {
				return st, fmt.Errorf("apply swap %q: %w", step.Child, err)
			}
			sw, err := parent.SMM().Swap(def, core.SwapOptions{DrainTimeout: opts.DrainTimeout})
			if err != nil {
				return st, fmt.Errorf("apply swap %q: %w", step.Child, err)
			}
			st.Swaps++
			if sw.PauseNs > st.MaxPauseNs {
				st.MaxPauseNs = sw.PauseNs
			}
		case compiler.OpRewire:
			med := d.App.Component(step.Mediator)
			if med == nil {
				return st, fmt.Errorf("%w: apply: no live component %q", ErrDeploy, step.Mediator)
			}
			if err := med.SMM().Rewire(step.Port, step.Dests); err != nil {
				return st, fmt.Errorf("apply rewire %q: %w", step.Port, err)
			}
			st.Rewires++
		default:
			return st, fmt.Errorf("%w: apply: unknown delta op %v", ErrDeploy, step.Op)
		}
	}
	d.plan = delta.New
	d.reg = reg
	return st, nil
}

// UpgradeOptions tunes ClusterDeployment.RollingUpgrade.
type UpgradeOptions struct {
	// SettleDelay is how long a removed member keeps serving before its
	// servants unregister — the window for clients to refresh membership
	// away from it. Zero selects 50ms.
	SettleDelay time.Duration
	// DrainTimeout bounds each member's servant drain (in-flight requests
	// completing after the settle). Zero selects one second.
	DrainTimeout time.Duration
}

// MemberUpgrade reports one member's replacement.
type MemberUpgrade struct {
	// Node names the upgraded node; OldIndex/NewIndex the retired and
	// surged replica ordinals.
	Node               string
	OldIndex, NewIndex int
	// PauseNs is the member's retirement pause: directory removal through
	// drained shutdown (the settle window included).
	PauseNs int64
	// Drained is false when in-flight requests were still running at the
	// drain bound (the member closes anyway).
	Drained bool
}

// UpgradeReport is a RollingUpgrade's outcome.
type UpgradeReport struct {
	Node    string
	Members []MemberUpgrade
}

// RollingUpgrade replaces every live replica of the node with a process
// built from the new plan and registry, one member at a time, surge-first:
//
//  1. start a new-version replica and join it to the directory;
//  2. remove the old member from the directory — clients re-resolving or
//     refreshing retarget to the survivors plus the new member;
//  3. settle, then unregister the old member's servants: stragglers racing
//     the removal get retry-after shed replies and re-route, not errors;
//  4. drain the old member's in-flight requests, bounded, and close it.
//
// The group therefore always has at least its original member count minus
// zero — capacity never dips below N — and a client that never misbehaves
// sees zero surfaced errors and zero breaker trips. Future StartReplica
// calls build the new version.
func (d *ClusterDeployment) RollingUpgrade(node string, newPlan *compiler.Plan, newReg *compiler.Registry, opts UpgradeOptions) (*UpgradeReport, error) {
	if newPlan == nil || newReg == nil {
		return nil, fmt.Errorf("%w: rolling upgrade needs a plan and a registry", ErrDeploy)
	}
	if _, err := newPlan.SubPlan(node); err != nil {
		return nil, err
	}
	settle := opts.SettleDelay
	if settle == 0 {
		settle = 50 * time.Millisecond
	}
	drain := opts.DrainTimeout
	if drain == 0 {
		drain = time.Second
	}

	old := d.Replicas(node)
	if len(old) == 0 {
		return nil, fmt.Errorf("%w: node %q has no live replicas to upgrade", ErrDeploy, node)
	}
	report := &UpgradeReport{Node: node}
	for _, r := range old {
		nr, err := d.startReplicaFrom(node, newPlan, newReg)
		if err != nil {
			return report, fmt.Errorf("%w: surge for node %q: %v", ErrDeploy, node, err)
		}
		m := MemberUpgrade{Node: node, OldIndex: r.Index, NewIndex: nr.Index}
		start := telemetry.Now()

		// Membership first: new resolutions and refreshes stop naming the
		// old member while it still serves everything already in flight.
		d.mu.Lock()
		addr := ""
		if r.Dep != nil {
			addr = r.Dep.Addr()
			for _, g := range r.groups {
				d.Directory.Remove(g, addr)
			}
		}
		d.mu.Unlock()
		time.Sleep(settle)

		if r.Dep != nil {
			// Retire the servants: a straggler that raced the directory
			// update sheds with a retry-after hint and re-routes through the
			// directory instead of surfacing an error.
			for _, g := range r.groups {
				r.Dep.Server.UnregisterServant(g)
			}
			m.Drained = r.Dep.Server.Drain(drain) == nil
			d.mu.Lock()
			r.Dep.Close()
			r.Dep = nil
			d.mu.Unlock()
		}
		m.PauseNs = telemetry.Now() - start
		report.Members = append(report.Members, m)
	}

	// The node now runs the new version everywhere; future replicas follow.
	d.mu.Lock()
	d.plan, d.reg = newPlan, newReg
	d.mu.Unlock()
	return report, nil
}

// startReplicaFrom is StartReplica against an explicit plan/registry — the
// surge half of a rolling upgrade.
func (d *ClusterDeployment) startReplicaFrom(node string, plan *compiler.Plan, reg *compiler.Registry) (*Replica, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.startReplicaLocked(node, plan, reg)
}
