package deploy

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/remote"
	"repro/internal/sched"
	"repro/internal/transport"
)

// replicatedApp places the sink on a 3-replica backend node.
const replicatedApp = `
<Application>
  <ApplicationName>SinkCluster</ApplicationName>
  <Component>
    <InstanceName>Collector</InstanceName>
    <ClassName>Sink</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Node>backend</Node>
    <Replicas>3</Replicas>
    <Connection>
      <Port>
        <PortName>in</PortName>
        <Exported>true</Exported>
      </Port>
    </Connection>
  </Component>
</Application>`

// sinkRegistry binds the Sink class, counting deliveries.
func sinkRegistry(t *testing.T, delivered *atomic.Int64) *compiler.Registry {
	t.Helper()
	reg := compiler.NewRegistry()
	if err := reg.RegisterType(sampleType); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterClass("Sink", compiler.ClassBinding{
		NewHandlers: func(c *core.Component) (map[string]core.Handler, error) {
			return map[string]core.Handler{
				"in": core.HandlerFunc(func(p *core.Proc, m core.Message) error {
					delivered.Add(1)
					return nil
				}),
			}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestRunClusterReplicatedSinks(t *testing.T) {
	net := transport.NewInproc()
	plan := compilePlan(t, serverDefs, replicatedApp)
	var delivered atomic.Int64

	cd, err := RunCluster(plan, sinkRegistry(t, &delivered), ClusterConfig{Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Close()

	group := remote.PortKey("Collector.in")
	if reps := cd.Replicas("backend"); len(reps) != 3 {
		t.Fatalf("backend replicas = %d, want 3", len(reps))
	}
	if members := cd.Directory.Members(group); len(members) != 3 {
		t.Fatalf("directory members = %v, want 3", members)
	}

	// A cluster client resolves the group through the directory and spreads
	// "send" invocations (the remote-port wire op) across the replicas.
	c, err := cluster.Dial(cluster.ClientConfig{
		Network: net, Directory: cd.DirectoryAddr(), Group: group, Channels: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	wire, err := (&sample{v: 7}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := c.Invoke(group, "send", wire, sched.NormPriority); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for delivered.Load() < 60 {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/60", delivered.Load())
		}
		time.Sleep(time.Millisecond)
	}
	loads := c.MemberLoads()
	for _, m := range cd.Directory.Members(group) {
		if loads[m].Sent == 0 {
			t.Errorf("replica %s received no traffic: %+v", m, loads)
		}
	}
}

func TestRunClusterKillAndReaddReplica(t *testing.T) {
	net := transport.NewInproc()
	plan := compilePlan(t, serverDefs, replicatedApp)
	var delivered atomic.Int64

	cd, err := RunCluster(plan, sinkRegistry(t, &delivered), ClusterConfig{
		Network: net,
		NodeAddr: func(node string, i int) string {
			return node + "-" + string(rune('0'+i))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Close()

	group := remote.PortKey("Collector.in")
	if err := cd.KillReplica("backend", 1); err != nil {
		t.Fatal(err)
	}
	if members := cd.Directory.Members(group); len(members) != 2 {
		t.Errorf("post-kill members = %v, want 2", members)
	}
	if err := cd.KillReplica("backend", 1); err == nil {
		t.Error("double kill succeeded")
	}

	r, err := cd.StartReplica("backend")
	if err != nil {
		t.Fatal(err)
	}
	if r.Index != 3 || r.Addr() != "backend-3" {
		t.Errorf("re-added replica = %+v (addr %q), want fresh index 3", r, r.Addr())
	}
	if members := cd.Directory.Members(group); len(members) != 3 {
		t.Errorf("post-readd members = %v, want 3", members)
	}

	// The re-added member answers invocations directly.
	c, err := cluster.Dial(cluster.ClientConfig{
		Network: net, Directory: cd.DirectoryAddr(), Group: group,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wire, _ := (&sample{v: 1}).MarshalBinary()
	if _, err := c.Invoke(group, "send", wire, sched.NormPriority); err != nil {
		t.Fatal(err)
	}
}

func TestRunClusterValidation(t *testing.T) {
	plan := compilePlan(t, serverDefs, replicatedApp)
	var delivered atomic.Int64
	if _, err := RunCluster(plan, sinkRegistry(t, &delivered), ClusterConfig{}); !errors.Is(err, ErrDeploy) {
		t.Errorf("no-network err = %v", err)
	}

	net := transport.NewInproc()
	cd, err := RunCluster(plan, sinkRegistry(t, &delivered), ClusterConfig{Network: net})
	if err != nil {
		t.Fatal(err)
	}
	cd.Close()
	cd.Close() // idempotent
	if _, err := cd.StartReplica("backend"); err == nil {
		t.Error("start on closed cluster succeeded")
	}
	if _, err := cd.StartReplica("nowhere"); err == nil {
		t.Error("start on unknown node succeeded")
	}
}

// mixedDefs declares both the exported sink and a source whose message type
// the teardown test deliberately leaves unregistered.
const mixedDefs = `
<ComponentDefinitions>
  <Component>
    <ComponentName>Sink</ComponentName>
    <Port><PortName>in</PortName><PortType>In</PortType><MessageType>Sample</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>Source</ComponentName>
    <Port><PortName>out</PortName><PortType>Out</PortType><MessageType>Other</MessageType></Port>
  </Component>
</ComponentDefinitions>`

const mixedApp = `
<Application>
  <ApplicationName>Mixed</ApplicationName>
  <Component>
    <InstanceName>Collector</InstanceName>
    <ClassName>Sink</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port><PortName>in</PortName><Exported>true</Exported></Port>
    </Connection>
  </Component>
  <Component>
    <InstanceName>Emitter</InstanceName>
    <ClassName>Source</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port>
        <PortName>out</PortName>
        <Link>
          <PortType>Remote</PortType>
          <ToComponent>Elsewhere</ToComponent>
          <ToPort>in</ToPort>
          <RemoteAddr>elsewhere</RemoteAddr>
        </Link>
      </Port>
    </Connection>
  </Component>
</Application>`

// plain is registered for the "Other" wire type but implements no binary
// marshalling, so building the remote link's proxy fails — after the export
// server is already listening.
type plain struct{ v int64 }

func (m *plain) Reset() { m.v = 0 }

var plainType = core.MessageType{Name: "Other", Size: 32, New: func() core.Message { return &plain{} }}

// TestRunTeardownOnMidAssemblyFailure drives Run into a failure after the
// export server is already listening (the remote link's message type is not
// serializable) and verifies the partial deployment is fully unwound: the
// listener is gone and no goroutines leak.
func TestRunTeardownOnMidAssemblyFailure(t *testing.T) {
	net := transport.NewInproc()
	reg := compiler.NewRegistry()
	if err := reg.RegisterType(sampleType); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterType(plainType); err != nil {
		t.Fatal(err)
	}
	_ = reg.RegisterClass("Sink", compiler.ClassBinding{
		NewHandlers: func(c *core.Component) (map[string]core.Handler, error) {
			return map[string]core.Handler{
				"in": core.HandlerFunc(func(p *core.Proc, m core.Message) error { return nil }),
			}, nil
		},
	})
	_ = reg.RegisterClass("Source", compiler.ClassBinding{})
	plan := compilePlan(t, mixedDefs, mixedApp)

	baseline := runtime.NumGoroutine()
	if _, err := Run(plan, reg, Config{Network: net, ListenAddr: "mixed"}); !errors.Is(err, ErrDeploy) {
		t.Fatalf("err = %v, want ErrDeploy (unserializable remote type)", err)
	}

	// The failed Run closed its server: the address must be dialable no
	// more, and the reader/acceptor goroutines must drain.
	if _, err := net.Dial("mixed"); err == nil {
		t.Error("listener survived the failed deployment")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d, baseline %d: teardown leaked", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeploymentCloseIdempotentUnderFaultNetwork closes a deployment (twice)
// over a network that refuses every dial: teardown must not depend on being
// able to reach anyone.
func TestDeploymentCloseIdempotentUnderFaultNetwork(t *testing.T) {
	inner := transport.NewInproc()
	net := fault.New(inner, fault.Config{Seed: 1, DialFailProb: 1})

	reg := compiler.NewRegistry()
	if err := reg.RegisterType(sampleType); err != nil {
		t.Fatal(err)
	}
	_ = reg.RegisterClass("Source", compiler.ClassBinding{})
	plan := compilePlan(t, clientDefs, clientApp)

	// ORB clients dial lazily, so Run succeeds even though every dial is
	// doomed; Close must unwind cleanly regardless.
	dep, err := Run(plan, reg, Config{Network: net})
	if err != nil {
		t.Fatal(err)
	}
	dep.Close()
	dep.Close() // idempotent: second close is a no-op
}
