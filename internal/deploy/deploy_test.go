package deploy

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/ccl"
	"repro/internal/cdl"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/transport"
)

// sample is the cross-process message type.
type sample struct {
	v int64
}

func (m *sample) Reset() { m.v = 0 }

func (m *sample) MarshalBinary() ([]byte, error) {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(m.v))
	return b, nil
}

func (m *sample) UnmarshalBinary(b []byte) error {
	if len(b) != 8 {
		return errors.New("sample: bad length")
	}
	m.v = int64(binary.BigEndian.Uint64(b))
	return nil
}

var sampleType = core.MessageType{Name: "Sample", Size: 32, New: func() core.Message { return &sample{} }}

// The serving process: a Sink whose In port is exported.
const serverDefs = `
<ComponentDefinitions>
  <Component>
    <ComponentName>Sink</ComponentName>
    <Port><PortName>in</PortName><PortType>In</PortType><MessageType>Sample</MessageType></Port>
  </Component>
</ComponentDefinitions>`

const serverApp = `
<Application>
  <ApplicationName>SinkProcess</ApplicationName>
  <Component>
    <InstanceName>Collector</InstanceName>
    <ClassName>Sink</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port>
        <PortName>in</PortName>
        <Exported>true</Exported>
      </Port>
    </Connection>
  </Component>
</Application>`

// The calling process: a Source whose Out port holds a Remote link to the
// collector's exported port.
const clientDefs = `
<ComponentDefinitions>
  <Component>
    <ComponentName>Source</ComponentName>
    <Port><PortName>out</PortName><PortType>Out</PortType><MessageType>Sample</MessageType></Port>
  </Component>
</ComponentDefinitions>`

const clientApp = `
<Application>
  <ApplicationName>SourceProcess</ApplicationName>
  <Component>
    <InstanceName>Emitter</InstanceName>
    <ClassName>Source</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port>
        <PortName>out</PortName>
        <Link>
          <PortType>Remote</PortType>
          <ToComponent>Collector</ToComponent>
          <ToPort>in</ToPort>
          <RemoteAddr>sink-process</RemoteAddr>
        </Link>
      </Port>
    </Connection>
  </Component>
</Application>`

func compilePlan(t *testing.T, defsDoc, appDoc string) *compiler.Plan {
	t.Helper()
	defs, err := cdl.Parse(strings.NewReader(defsDoc))
	if err != nil {
		t.Fatal(err)
	}
	app, err := ccl.Parse(strings.NewReader(appDoc))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := compiler.Compile(defs, app)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestTwoProcessDeployment(t *testing.T) {
	net := transport.NewInproc()
	got := make(chan int64, 32)

	// --- Process B: the sink, exporting Collector.in at "sink-process".
	serverPlan := compilePlan(t, serverDefs, serverApp)
	if len(serverPlan.Exports) != 1 || serverPlan.Exports[0].Instance != "Collector" {
		t.Fatalf("exports = %+v", serverPlan.Exports)
	}
	serverReg := compiler.NewRegistry()
	if err := serverReg.RegisterType(sampleType); err != nil {
		t.Fatal(err)
	}
	if err := serverReg.RegisterClass("Sink", compiler.ClassBinding{
		NewHandlers: func(c *core.Component) (map[string]core.Handler, error) {
			return map[string]core.Handler{
				"in": core.HandlerFunc(func(p *core.Proc, m core.Message) error {
					got <- m.(*sample).v
					return nil
				}),
			}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	serverDep, err := Run(serverPlan, serverReg, Config{Network: net, ListenAddr: "sink-process"})
	if err != nil {
		t.Fatal(err)
	}
	defer serverDep.Close()
	if serverDep.Addr() != "sink-process" {
		t.Errorf("server addr = %q", serverDep.Addr())
	}

	// --- Process A: the source, bridging Emitter.out across the network.
	clientPlan := compilePlan(t, clientDefs, clientApp)
	if len(clientPlan.RemoteConnections) != 1 {
		t.Fatalf("remote connections = %+v", clientPlan.RemoteConnections)
	}
	rc := clientPlan.RemoteConnections[0]
	if rc.Dest != "Collector.in" || rc.Addr != "sink-process" {
		t.Errorf("remote connection = %+v", rc)
	}
	clientReg := compiler.NewRegistry()
	if err := clientReg.RegisterType(sampleType); err != nil {
		t.Fatal(err)
	}
	if err := clientReg.RegisterClass("Source", compiler.ClassBinding{
		Start: func(p *core.Proc) error {
			out, err := p.SMM().GetOutPort("Emitter.out")
			if err != nil {
				return err
			}
			for i := int64(1); i <= 5; i++ {
				msg, err := out.GetMessage()
				if err != nil {
					return err
				}
				msg.(*sample).v = i * 11
				if err := out.Send(msg, sched.Priority(10)); err != nil {
					return err
				}
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	clientDep, err := Run(clientPlan, clientReg, Config{Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer clientDep.Close()
	if clientDep.Addr() != "" {
		t.Errorf("client addr = %q, want empty (no exports)", clientDep.Addr())
	}

	seen := map[int64]bool{}
	for i := 0; i < 5; i++ {
		select {
		case v := <-got:
			seen[v] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("cross-process delivery stalled at %d/5", i)
		}
	}
	for i := int64(1); i <= 5; i++ {
		if !seen[i*11] {
			t.Errorf("missing value %d", i*11)
		}
	}
	if n, err := clientDep.App.Errors(); n != 0 {
		t.Errorf("client errors: %d (%v)", n, err)
	}
	if n, err := serverDep.App.Errors(); n != 0 {
		t.Errorf("server errors: %d (%v)", n, err)
	}
}

func TestDeployValidation(t *testing.T) {
	clientPlan := compilePlan(t, clientDefs, clientApp)
	reg := compiler.NewRegistry()
	if err := reg.RegisterType(sampleType); err != nil {
		t.Fatal(err)
	}
	_ = reg.RegisterClass("Source", compiler.ClassBinding{})
	// Distributed plan without a network is rejected.
	if _, err := Run(clientPlan, reg, Config{}); !errors.Is(err, ErrDeploy) {
		t.Errorf("no-network err = %v", err)
	}
}

func TestCompileRemoteLinkErrors(t *testing.T) {
	// Remote link on an In port is rejected.
	badDefs := `
<ComponentDefinitions>
  <Component>
    <ComponentName>Sink</ComponentName>
    <Port><PortName>in</PortName><PortType>In</PortType><MessageType>Sample</MessageType></Port>
  </Component>
</ComponentDefinitions>`
	badApp := `
<Application>
  <ApplicationName>Bad</ApplicationName>
  <Component>
    <InstanceName>S</InstanceName>
    <ClassName>Sink</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port>
        <PortName>in</PortName>
        <Link><PortType>Remote</PortType><ToComponent>X</ToComponent><ToPort>y</ToPort><RemoteAddr>a</RemoteAddr></Link>
      </Port>
    </Connection>
  </Component>
</Application>`
	defs, err := cdl.Parse(strings.NewReader(badDefs))
	if err != nil {
		t.Fatal(err)
	}
	app, err := ccl.Parse(strings.NewReader(badApp))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compiler.Compile(defs, app); !errors.Is(err, compiler.ErrCompile) {
		t.Errorf("remote-on-In err = %v", err)
	}
}

func TestCCLRemoteValidation(t *testing.T) {
	// Remote link without RemoteAddr fails CCL validation.
	doc := strings.Replace(clientApp, "<RemoteAddr>sink-process</RemoteAddr>", "", 1)
	if _, err := ccl.Parse(strings.NewReader(doc)); !errors.Is(err, ccl.ErrValidation) {
		t.Errorf("missing RemoteAddr err = %v", err)
	}
	// RemoteAddr on a local link fails too.
	doc2 := strings.Replace(clientApp, "<PortType>Remote</PortType>", "<PortType>External</PortType>", 1)
	if _, err := ccl.Parse(strings.NewReader(doc2)); !errors.Is(err, ccl.ErrValidation) {
		t.Errorf("addr-on-local err = %v", err)
	}
}
