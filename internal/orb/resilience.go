package orb

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corba"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Resilience errors.
var (
	// ErrCircuitOpen is returned without touching the network while the
	// client's circuit breaker is open: consecutive transport faults exceeded
	// the threshold and the cooldown has not yet elapsed.
	ErrCircuitOpen = errors.New("orb client: circuit open")
	// ErrDeadlineExceeded is returned when a per-invoke deadline elapses
	// before the reply arrives. The connection stays up — the demux reactor
	// keeps the framing synchronised and simply drops the stale reply when
	// it eventually arrives — so one slow invocation no longer forces a
	// teardown on everyone sharing the pipeline.
	ErrDeadlineExceeded = errors.New("orb client: invoke deadline exceeded")
	// ErrShed marks a reply reporting the server shed the request — overload
	// brown-out or a draining replica — rather than executing it. Shed
	// errors usually arrive as a *ShedError carrying the server's suggested
	// back-off; match with errors.Is(err, ErrShed).
	ErrShed = errors.New("orb client: request shed by server")
)

// ShedError is a shed reply surfaced to the caller, carrying the server's
// retry-after hint from the GIOP service context. It matches both ErrShed
// and corba.ErrSystemException under errors.Is — a shed is a system
// exception, so callers that only screen for exceptions keep working.
type ShedError struct {
	// RetryAfter is the server's suggested back-off before retrying.
	RetryAfter time.Duration
	// Detail is the exception payload text.
	Detail string
}

// Error formats the shed with its hint.
func (e *ShedError) Error() string {
	return fmt.Sprintf("%v (retry after %v): %s", ErrShed, e.RetryAfter, e.Detail)
}

// Is matches ErrShed and corba.ErrSystemException.
func (e *ShedError) Is(target error) bool {
	return target == ErrShed || target == corba.ErrSystemException
}

// Resilience counters, exported at /metrics with the compadres_ prefix.
var (
	retryTotal         = telemetry.NewCounter("retry_total")
	breakerOpenTotal   = telemetry.NewCounter("breaker_open_total")
	reconnectTotal     = telemetry.NewCounter("reconnect_total")
	invokeTimeoutTotal = telemetry.NewCounter("invoke_timeout_total")
)

// Flight-recorder labels for resilience state transitions.
var (
	breakerLabel = telemetry.Label("orb.client.breaker")
	connLabel    = telemetry.Label("orb.client.conn")
)

// ResilienceConfig opts a Client into supervised-connection behaviour:
// reconnect on transport error with capped exponential backoff, per-invoke
// deadlines, a retry budget for idempotent operations, and a circuit
// breaker. A nil ResilienceConfig in ClientConfig leaves the client exactly
// as before — one dial, errors surface to the caller, no retries.
type ResilienceConfig struct {
	// Seed makes backoff jitter (and nothing else) deterministic; zero
	// disables jitter so every delay is the exact doubling ceiling.
	Seed uint64
	// ReconnectBase/ReconnectMax bound the redial/retry backoff; zero
	// selects 1ms and 250ms.
	ReconnectBase, ReconnectMax time.Duration
	// MaxRetries bounds retry attempts beyond the first try for idempotent
	// operations (InvokeIdempotent, Locate, InvokeOneway); zero selects 3.
	MaxRetries int
	// RetryBudgetTokens/RetryBudgetEarnEvery parameterise the token bucket
	// that bounds aggregate retry volume: the bucket starts with Tokens,
	// every retry spends one, and every EarnEvery-th success earns one back.
	// Zeros select 16 and 8.
	RetryBudgetTokens, RetryBudgetEarnEvery int
	// InvokeTimeout bounds one wire exchange (write + reply read) via the
	// connection's deadline support, and stamps the same bound on the invoke
	// port as a send deadline so queue latency is monitored too. Zero means
	// no deadline.
	InvokeTimeout time.Duration
	// BreakerThreshold is the consecutive transport-fault count that opens
	// the circuit; zero selects 5.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before admitting a
	// single half-open probe; zero selects 100ms.
	BreakerCooldown time.Duration
}

// withDefaults fills zero fields.
func (c ResilienceConfig) withDefaults() ResilienceConfig {
	if c.ReconnectBase <= 0 {
		c.ReconnectBase = time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = 250 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.RetryBudgetTokens <= 0 {
		c.RetryBudgetTokens = 16
	}
	if c.RetryBudgetEarnEvery <= 0 {
		c.RetryBudgetEarnEvery = 8
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 100 * time.Millisecond
	}
	return c
}

// Breaker states (also the EvState event arg).
const (
	breakerClosed   = 0
	breakerOpen     = 1
	breakerHalfOpen = 2
	// connReconnected is the EvState arg recorded on the conn label when a
	// supervised redial succeeds.
	connReconnected = 3
)

// breaker is the client's circuit breaker. All methods are safe for
// concurrent use and allocation-free.
type breaker struct {
	threshold int32
	cooldown  int64 // ns on the telemetry clock

	state    atomic.Int32
	fails    atomic.Int32
	openedAt atomic.Int64
}

// Allow reports whether an invocation may proceed. While open it fails fast
// until the cooldown elapses, then admits one half-open probe per cooldown
// window (the CAS winner on the window timestamp); concurrent callers keep
// failing fast. Rate-limiting probes by window rather than tracking a
// single in-flight probe means a probe that dies before reaching the wire
// cannot wedge the breaker half-open forever.
func (b *breaker) Allow() bool {
	if b.state.Load() == breakerClosed {
		return true
	}
	last := b.openedAt.Load()
	now := telemetry.Now()
	if now-last < b.cooldown {
		return false
	}
	if !b.openedAt.CompareAndSwap(last, now) {
		return false
	}
	if b.state.CompareAndSwap(breakerOpen, breakerHalfOpen) {
		telemetry.Record(telemetry.EvState, breakerLabel, 0, 0, breakerHalfOpen)
	}
	return true
}

// Success records a completed exchange: the failure streak resets and the
// breaker closes from any state.
func (b *breaker) Success() {
	b.fails.Store(0)
	if b.state.Swap(breakerClosed) != breakerClosed {
		telemetry.Record(telemetry.EvState, breakerLabel, 0, 0, breakerClosed)
	}
}

// Failure records a transport fault. A failed half-open probe reopens the
// breaker immediately; a closed breaker opens once the consecutive-failure
// streak reaches the threshold.
func (b *breaker) Failure() {
	if b.state.Load() == breakerHalfOpen {
		b.openedAt.Store(telemetry.Now())
		if b.state.CompareAndSwap(breakerHalfOpen, breakerOpen) {
			breakerOpenTotal.Inc()
			telemetry.Record(telemetry.EvState, breakerLabel, 0, 0, breakerOpen)
		}
		return
	}
	if b.fails.Add(1) >= b.threshold && b.state.CompareAndSwap(breakerClosed, breakerOpen) {
		b.openedAt.Store(telemetry.Now())
		breakerOpenTotal.Inc()
		telemetry.Record(telemetry.EvState, breakerLabel, 0, 0, breakerOpen)
	}
}

// mayAllow reports whether Allow could currently admit an invocation,
// without consuming a half-open probe. The stripe selector uses it to skip
// refusing stripes while scanning candidates, reserving the probe-consuming
// Allow() for the stripe actually chosen.
func (b *breaker) mayAllow() bool {
	if b.state.Load() == breakerClosed {
		return true
	}
	return telemetry.Now()-b.openedAt.Load() >= b.cooldown
}

// State returns the current breaker state (breakerClosed/Open/HalfOpen).
func (b *breaker) State() int32 { return b.state.Load() }

// resilience is the per-client runtime state behind a ResilienceConfig.
// Circuit-breaker state is NOT here: each stripe of the channel pool
// carries its own breaker (stripe.go), so one dead connection opens one
// stripe's circuit while the rest keep serving.
type resilience struct {
	cfg    ResilienceConfig
	budget *sched.RetryBudget

	mu      sync.Mutex // guards backoff
	backoff sched.Backoff
}

func newResilience(cfg ResilienceConfig) *resilience {
	cfg = cfg.withDefaults()
	r := &resilience{
		cfg:    cfg,
		budget: sched.NewRetryBudget(cfg.RetryBudgetTokens, cfg.RetryBudgetEarnEvery),
	}
	r.backoff = sched.Backoff{Base: cfg.ReconnectBase, Max: cfg.ReconnectMax, Seed: cfg.Seed}
	return r
}

// initBreaker arms a stripe's breaker with this config's thresholds.
func (r *resilience) initBreaker(b *breaker) {
	b.threshold = int32(r.cfg.BreakerThreshold)
	b.cooldown = int64(r.cfg.BreakerCooldown)
}

// nextDelay draws the next backoff delay.
func (r *resilience) nextDelay() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.backoff.Next()
}

// resetDelay resets the backoff after a success.
func (r *resilience) resetDelay() {
	r.mu.Lock()
	r.backoff.Reset()
	r.mu.Unlock()
}

// retriable reports whether err is a transport-level failure that an
// idempotent operation may safely retry: the request either never left the
// process (local backpressure, open breaker) or the connection died and was
// torn down (the retry goes out with a fresh request id on a fresh
// connection, and stale replies are suppressed by id). Servant-level
// results — user/system exceptions — are never retried.
func retriable(err error) bool {
	var op *transport.OpError
	switch {
	case errors.As(err, &op):
		return true
	case errors.Is(err, ErrShed):
		// A shed never executed on the servant — the server said so
		// explicitly — so retrying is safe; withRetry honours the reply's
		// retry-after hint when pacing the attempt.
		return true
	case errors.Is(err, ErrCircuitOpen), errors.Is(err, ErrDeadlineExceeded):
		return true
	case errors.Is(err, core.ErrBufferFull):
		return true
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.ErrClosedPipe), errors.Is(err, net.ErrClosed),
		errors.Is(err, os.ErrDeadlineExceeded):
		return true
	case errors.Is(err, corba.ErrClosed):
		// A dead connection surfaces as ErrClosed; the caller has already
		// screened out the client-is-closed case.
		return true
	default:
		return false
	}
}
