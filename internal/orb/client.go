package orb

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corba"
	"repro/internal/core"
	"repro/internal/giop"
	"repro/internal/memory"
	"repro/internal/overload"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Flight-recorder labels for the client's invocation spans.
var (
	clientSpanLabel  = telemetry.Label("orb.client.invoke")
	clientReplyLabel = telemetry.Label("orb.client.reply")
)

// ClientConfig parameterises a Compadres ORB client.
type ClientConfig struct {
	// Network and Addr locate the server.
	Network transport.Network
	Addr    string
	// Addrs, when non-empty, lists the addresses of a replicated server
	// group; stripes spread round-robin across the members (Channels is
	// raised to at least len(Addrs) so every member gets a stripe) and Addr
	// is ignored. The striped pool then balances across replicas the same
	// way it balances across connections — P2C on in-flight count with
	// per-stripe breakers — and a dead member's stripes fail over to the
	// survivors (replica.go).
	Addrs []string
	// Resolve, when set, re-resolves the group membership: it is consulted
	// (single-flight, rate-limited) when a stripe's dial target refuses the
	// dial, and may be invoked any time via Retarget-driven refreshers. It
	// returns the current member addresses; errors and empty lists leave the
	// previous membership in place.
	Resolve func() ([]string, error)
	// Order selects the CDR byte order; BigEndian by default.
	Order giop.ByteOrder
	// MaxMessage bounds a reply body; zero selects DefaultMaxMessage.
	MaxMessage int
	// ScopePoolCount pre-creates that many MessageProcessing scopes
	// (paper's scope-pool optimisation); zero creates fresh scopes per
	// instantiation.
	ScopePoolCount int
	// Synchronous dispatches the component ports on the calling thread
	// instead of port thread pools.
	Synchronous bool
	// MsgPoolCapacity overrides the per-type message pool capacity.
	MsgPoolCapacity int
	// PipelineDepth bounds how many invocations may be queued through the
	// client's component pipeline at once (the buffer size of the internal
	// relay ports). Invocations beyond it fail fast with ErrBufferFull —
	// the client-side backpressure signal. Zero selects DefaultPipelineDepth.
	PipelineDepth int
	// Resilience opts the client into supervised-connection behaviour:
	// redial with backoff, per-invoke deadlines, retry budgets for
	// idempotent operations, and a circuit breaker. Nil (the default)
	// keeps the original semantics — one dial, every error surfaces.
	// With Channels > 1 the breaker is per stripe: one dead connection
	// opens its own circuit while the others keep serving.
	Resilience *ResilienceConfig
	// Channels opens that many multiplexed connections (stripes) to the
	// server and spreads invocations across them: power-of-two-choices on
	// in-flight count, sticky per priority band so RT-CORBA ordering within
	// a band is preserved (stripe.go). Zero or one keeps the single
	// connection; values above 32 clamp.
	Channels int
	// Coalesce opts the send path into adaptive write coalescing
	// (coalesce.go): concurrent senders' frames are flushed as one vectored
	// write, amortising syscalls under pipelining with no latency tax on a
	// lone caller. Nil disables coalescing (every frame is its own write,
	// the PR-4 discipline).
	Coalesce *CoalesceConfig
	// ReactorShards shards each connection's demux pending table: entries
	// hash by request id to per-shard maps with their own locks, so
	// concurrent registrations (submitters) and completions (the reactor)
	// stop serialising on one table mutex at high pipelining. Composes with
	// Channels: every stripe's connection gets its own sharded table.
	// Zero or one keeps a single shard; AutoShards sizes to GOMAXPROCS;
	// values clamp to the same bound as ServerConfig.Shards.
	ReactorShards int
	// Tenant classifies this client's traffic for server-side overload
	// control: every request carries the id and QoS tier in a GIOP service
	// context (giop.TenantContextID), which a controller-equipped server
	// uses for weighted fair admission and brown-out decisions. The zero
	// Tenant stamps nothing — the wire stays byte-identical to an
	// overload-unaware client.
	Tenant overload.Tenant
	// Collocate opts the client into the collocated invocation fast path
	// (local.go): when a member of the target set is an orb.Server in this
	// process on this same Network, Invoke/InvokeView/InvokeOneway dispatch
	// the servant directly on the caller's goroutine — no GIOP encode/
	// decode, no coalescer, no stripes, no reactor. Server-side policy is
	// preserved exactly: the overload Admit gate, tenant classification,
	// retiring-key sheds, in-flight/latency instruments, and trace spans
	// all see collocated traffic identically to remote traffic. The
	// collocation decision is re-validated per invoke against the process
	// registry and the client's route generation, so a server swap or a
	// Retarget falls the client back to the wire path, never a stale
	// pointer. Contract difference from the wire: a collocated Invoke's
	// reply aliases the slice the servant returned (no marshal copies), so
	// servants must hand out bytes they will not mutate afterwards; and
	// Locate always uses the wire.
	Collocate bool
}

// DefaultMaxMessage is the default bound on message bodies.
const DefaultMaxMessage = 4096

// DefaultPipelineDepth is the default bound on queued invocations; deep
// enough that a 64-caller pipelined burst rides one connection without
// tripping client-side backpressure.
const DefaultPipelineDepth = 128

// Client is the component-structured ORB client of Fig. 10 (left). Its
// invocations pipeline over one multiplexed GIOP connection: submissions
// are marshalled and written by the component pipeline, and a per-connection
// demux reactor (mux.go) matches replies to in-flight pending-table entries
// by request id, so concurrent invokes overlap on the wire instead of
// serialising behind a whole-exchange lock.
type Client struct {
	app      *core.App
	invoke   *core.OutPort
	reqPool  *memory.ScopePool
	nextID   atomic.Uint32
	maxMsg   int
	order    giop.ByteOrder
	tenant   overload.Tenant
	closed   atomic.Bool
	network  transport.Network
	addr     string
	res      *resilience     // nil unless ClientConfig.Resilience was set
	coalesce *CoalesceConfig // nil unless ClientConfig.Coalesce was set
	inflight atomic.Int64
	gauge    *telemetry.GaugeHandle

	// Collocation state (local.go): local caches the detection outcome,
	// routeGen invalidates it on Retarget/membership refresh.
	collocate bool
	local     atomic.Pointer[localBinding]
	routeGen  atomic.Uint64

	// stripes is the channel pool: each entry owns one multiplexed
	// connection slot with its own redial lock and breaker. Selection state
	// lives here: sticky maps a priority band to 1+the stripe it last rode
	// (0 = unset) and bandInflight counts the band's in-flight invocations,
	// so a busy band stays on one stripe (ordering) while an idle one
	// re-balances; rng drives the two random choices.
	stripes      []*stripe
	sticky       [bandCount]atomic.Int32
	bandInflight [bandCount]atomic.Int64
	rng          atomic.Uint64

	// Replica-set state (replica.go): members is the current address list,
	// resolve the optional re-resolution hook (guarded by resolveMu with a
	// lastResolve rate limit so a burst of failing stripes triggers one
	// directory round trip, not one each), retargetMu serialises Retarget
	// sweeps, and rotate spreads failed-over stripes across survivors.
	members     atomic.Pointer[[]string]
	resolve     func() ([]string, error)
	resolveMu   sync.Mutex
	lastResolve int64
	retargetMu  sync.Mutex
	rotate      atomic.Uint32

	// leaderFollower enables caller-driven demux: awaiting callers take
	// turns holding a per-connection leader token and read replies
	// themselves, so a round trip needs no reactor-to-caller rendezvous.
	// Only set for synchronous clients, whose submissions register the
	// pending entry on the caller's goroutine before await runs.
	leaderFollower bool

	// reactorShards is the per-connection pending-table shard count
	// (resolved from ClientConfig.ReactorShards, minimum 1); shardOps
	// counts registrations per shard across all stripes, exported as
	// per-shard gauges when sharding is on.
	reactorShards int
	shardOps      []atomic.Int64
	shardGauges   []*telemetry.GaugeHandle
}

// DialClient builds the client component structure and connects it. The
// Transport component dials when it is instantiated — which happens when
// the first request message arrives, exactly as §3.2 describes — so the
// network connection is established lazily.
func DialClient(cfg ClientConfig) (*Client, error) {
	if cfg.Network == nil {
		return nil, fmt.Errorf("orb: nil network")
	}
	maxMsg := cfg.MaxMessage
	if maxMsg == 0 {
		maxMsg = DefaultMaxMessage
	}
	depth := cfg.PipelineDepth
	if depth <= 0 {
		depth = DefaultPipelineDepth
	}

	// Area budgets: the Transport holds port structures and pools; each
	// MessageProcessing marshals one request and one reply.
	mpSize := int64(4*maxMsg + 8192)
	transportSize := int64(8*maxMsg + 32768)

	appCfg := core.AppConfig{Name: "CompadresORBClient", ImmortalSize: 1 << 20}
	if cfg.MsgPoolCapacity != 0 {
		appCfg.MsgPoolCapacity = cfg.MsgPoolCapacity
	} else if need := depth + 8; need > core.DefaultMsgPoolCapacity {
		// PipelineDepth is the intended in-flight bound; the pooled message
		// instances backing the relay ports must cover it, or the pool —
		// not the configured depth — becomes the effective ceiling.
		appCfg.MsgPoolCapacity = need
	}
	if cfg.ScopePoolCount > 0 {
		appCfg.ScopePools = []core.ScopePoolSpec{
			{Level: 2, AreaSize: mpSize, Count: cfg.ScopePoolCount, Grow: true},
		}
	}
	app, err := core.NewApp(appCfg)
	if err != nil {
		return nil, err
	}

	// Each in-flight request marshals into its own pooled scope nested
	// under MessageProcessing, so pipelined invokes cannot exhaust the
	// component's fixed region (the RTZen per-request scope pattern).
	reqPool, err := app.Model().NewScopePool(memory.ScopePoolConfig{
		Name:     "orb.client.request",
		AreaSize: int64(3*maxMsg + 4096),
		Count:    4,
		Grow:     true,
	})
	if err != nil {
		app.Stop()
		return nil, err
	}

	addrs := append([]string(nil), cfg.Addrs...)
	if len(addrs) == 0 {
		addrs = []string{cfg.Addr}
	}
	cl := &Client{
		app:       app,
		reqPool:   reqPool,
		maxMsg:    maxMsg,
		order:     cfg.Order,
		tenant:    cfg.Tenant,
		network:   cfg.Network,
		addr:      addrs[0],
		resolve:   cfg.Resolve,
		collocate: cfg.Collocate,
	}
	cl.members.Store(&addrs)
	if cfg.Resilience != nil {
		cl.res = newResilience(*cfg.Resilience)
	}
	if cfg.Coalesce != nil {
		co := cfg.Coalesce.withDefaults()
		cl.coalesce = &co
	}
	channels := cfg.Channels
	if channels <= 0 {
		channels = 1
	}
	if channels < len(addrs) {
		// Every member of the replica set gets at least one stripe.
		channels = len(addrs)
	}
	if channels > maxChannels {
		channels = maxChannels
	}
	cl.reactorShards = resolveShards(cfg.ReactorShards)
	if cl.reactorShards < 1 {
		cl.reactorShards = 1
	}
	if cl.reactorShards > 1 {
		cl.shardOps = make([]atomic.Int64, cl.reactorShards)
		for i := range cl.shardOps {
			ops := &cl.shardOps[i]
			cl.shardGauges = append(cl.shardGauges, telemetry.Default.RegisterGauge(
				"demux_ops", fmt.Sprintf("orb.client.rshard%d", i),
				func() int64 { return ops.Load() }))
		}
	}
	for i := 0; i < channels; i++ {
		st := &stripe{cl: cl, idx: i}
		st.setTarget(addrs[i%len(addrs)])
		if cl.res != nil {
			cl.res.initBreaker(&st.brk)
		}
		cl.stripes = append(cl.stripes, st)
	}
	cl.gauge = telemetry.Default.RegisterGauge("inflight", "orb.client", func() int64 {
		return cl.inflight.Load()
	})
	if channels > 1 {
		for _, st := range cl.stripes {
			st := st
			st.gauge = telemetry.Default.RegisterGauge("inflight",
				fmt.Sprintf("orb.client.stripe%d", st.idx),
				func() int64 { return st.inflight.Load() })
		}
	}

	// The marshalling pipeline's width caps how many frames can be inside
	// the coalescer at once, which in turn caps batch sizes; widen it when
	// coalescing is on.
	sendWidth := 2
	if cl.coalesce != nil && cl.coalesce.SendWidth > sendWidth {
		sendWidth = cl.coalesce.SendWidth
	}

	threading := core.ThreadingShared
	if cfg.Synchronous {
		threading = core.ThreadingSynchronous
		cl.leaderFollower = true
	}

	orbComp, err := app.NewImmortalComponent("ORB", func(c *core.Component) error {
		smm := c.SMM()
		out, err := core.AddOutPort(c, smm, core.OutPortConfig{
			Name: "toTransport", Type: invokeType, Dests: []string{"Transport.request"},
		})
		if err != nil {
			return err
		}
		cl.invoke = out
		return c.DefineChild(core.ChildDef{
			Name:       "Transport",
			MemorySize: transportSize,
			Persistent: true,
			Setup:      cl.transportSetup(threading, mpSize, cfg.ScopePoolCount > 0, depth, sendWidth),
		})
	})
	if err != nil {
		cl.gauge.Unregister()
		app.Stop()
		return nil, err
	}
	_ = orbComp
	if err := app.Start(); err != nil {
		cl.gauge.Unregister()
		app.Stop()
		return nil, err
	}
	if cl.res != nil && cl.res.cfg.InvokeTimeout > 0 {
		// Stamp the invoke timeout on the port as a send deadline, so the
		// deadline monitor counts invokes whose handler starts late, in
		// addition to the submit-and-wait enforcement in await.
		cl.invoke.SetSendDeadline(cl.res.cfg.InvokeTimeout)
	}
	return cl, nil
}

// transportSetup wires one Transport instance: the In port fed by the ORB,
// the Out port feeding MessageProcessing, the per-request child definition,
// and the start function that dials every stripe's connection and launches
// its reactor.
func (cl *Client) transportSetup(threading core.Threading, mpSize int64, usePool bool, depth, sendWidth int) func(*core.Component) error {
	return func(tc *core.Component) error {
		orbSMM := tc.Parent().SMM()
		tSMM := tc.SMM()

		toMP, err := core.AddOutPort(tc, tSMM, core.OutPortConfig{
			Name: "toMP", Type: invokeType, Dests: []string{"MessageProcessing.request"},
		})
		if err != nil {
			return err
		}

		// The Transport relays requests from the ORB into the deepest
		// scope: get a fresh pooled message from its own SMM and copy the
		// invocation over (messages never cross SMM pools).
		if _, err := core.AddInPort(tc, orbSMM, core.InPortConfig{
			Name: "request", Type: invokeType, Threading: threading,
			MinThreads: 1, MaxThreads: sendWidth, BufferSize: depth,
			Handler: core.HandlerFunc(func(p *core.Proc, msg core.Message) error {
				in := msg.(*invokeMsg)
				fwd, err := toMP.GetMessage()
				if err != nil {
					in.pe.complete(invokeResult{err: err})
					return err
				}
				out := fwd.(*invokeMsg)
				out.copyFrom(in)
				if err := toMP.Send(fwd, in.prio); err != nil {
					in.pe.complete(invokeResult{err: err})
					return err
				}
				return nil
			}),
		}); err != nil {
			return err
		}

		if err := tc.DefineChild(core.ChildDef{
			Name:       "MessageProcessing",
			MemorySize: mpSize,
			UsePool:    usePool,
			// Setup is pure declaration (one In port on the parent's SMM), so
			// the shell survives quiescence and only the area cycles per
			// request.
			Reusable: true,
			Setup: func(mp *core.Component) error {
				_, err := core.AddInPort(mp, tSMM, core.InPortConfig{
					Name: "request", Type: invokeType, Threading: threading,
					MinThreads: 1, MaxThreads: sendWidth, BufferSize: depth,
					Handler: core.HandlerFunc(cl.processInvoke),
				})
				return err
			},
		}); err != nil {
			return err
		}

		tc.SetStart(func(p *core.Proc) error {
			for _, st := range cl.stripes {
				conn, err := cl.network.Dial(st.target())
				if err != nil {
					if cl.res != nil {
						// Supervised mode: leave this stripe's connection
						// nil and let the next invoke routed to it redial
						// with backoff; the failure still counts toward the
						// stripe's breaker.
						telemetry.RecordFault("orb.client.dial", err)
						st.brk.Failure()
						continue
					}
					return fmt.Errorf("orb client dial %q: %w", st.target(), err)
				}
				st.cur.Store(newMuxConn(st, conn))
			}
			return nil
		})
		return nil
	}
}

// processInvoke runs in the MessageProcessing component's scope: it enters
// a pooled per-request scope nested under it, marshals the GIOP request
// there, registers the invocation's pending entry, and writes the frame.
// It does NOT wait for the reply — the connection's demux reactor completes
// the caller's channel when the matching reply arrives — so the component
// pipeline stays available for the next submission and invocations pipeline
// on the wire. The request scope is reclaimed on return (the frame has been
// written by then), keeping memory bounded per in-flight request.
func (cl *Client) processInvoke(p *core.Proc, msg core.Message) error {
	in := msg.(*invokeMsg)
	if in.pe.state.Load() == pendingCancelled {
		// The caller gave up (deadline) while this submission was queued:
		// drop it before it reaches the wire.
		return nil
	}
	area, err := cl.reqPool.Acquire()
	if err != nil {
		in.pe.complete(invokeResult{err: err})
		return err
	}
	var submitErr error
	if err := p.Context().Enter(area, func(ctx *memory.Context) error {
		submitErr = cl.submit(ctx, in)
		return nil
	}); err != nil {
		in.pe.complete(invokeResult{err: err})
		return err
	}
	if submitErr != nil {
		// submit already completed the entry on its pre-registration error
		// paths; once the entry is registered, only the reactor or the
		// connection failer may complete it. Completing here as well would
		// race the failer: if this complete won, the caller could recycle
		// and re-arm the entry through the pool while the failer still
		// holds the stale pointer, and its late complete would hand the
		// entry's next owner a stranger's error.
		return submitErr
	}
	if in.oneway {
		// No reply will be demultiplexed: the successful write is the
		// completion.
		if cl.res != nil {
			in.st.brk.Success()
		}
		in.pe.complete(invokeResult{})
	}
	return nil
}

// submit marshals one request with buffers charged to the current scope,
// registers its pending entry with the live connection (redialling under
// supervision if none is up), and writes the frame.
//
// Completion ownership: every error before the entry is registered
// completes the entry here (this goroutine is its only holder); from the
// moment register succeeds, ONLY the reactor or the connection failer
// completes it — a send failure kills the connection, and fail() delivers
// the error to every tabled entry, this one included.
func (cl *Client) submit(ctx *memory.Context, in *invokeMsg) error {
	wireCap := giop.HeaderSize + 96 + len(in.key) + len(in.op) + len(in.payload)
	wireRef, err := ctx.Alloc(wireCap)
	if err != nil {
		err = fmt.Errorf("orb client: marshal buffer: %w", err)
		in.pe.complete(invokeResult{err: err})
		return err
	}
	wireBuf, err := wireRef.Bytes()
	if err != nil {
		in.pe.complete(invokeResult{err: err})
		return err
	}
	wire := giop.MarshalRequest(wireBuf[:0], cl.order, &giop.Request{
		RequestID:        in.id,
		ResponseExpected: !in.oneway,
		ObjectKey:        in.keyBuf,
		Operation:        in.op,
		Priority:         byte(in.prio),
		TraceID:          in.trace,
		SpanID:           in.span,
		TenantID:         cl.tenant.ID,
		TenantTier:       uint8(cl.tenant.Tier),
		Payload:          in.payload,
	})

	mc, err := in.st.conn()
	if err != nil {
		in.pe.complete(invokeResult{err: err})
		return err
	}
	if !in.oneway {
		ok, err := mc.register(in.pe)
		if err != nil {
			// The connection was already dead: the entry never entered the
			// table, so it is still exclusively ours to complete.
			in.pe.complete(invokeResult{err: err})
			return err
		}
		if !ok {
			// Cancelled while queued; nothing was sent and the caller has
			// abandoned the entry.
			return nil
		}
	}
	if err := mc.send(wire); err != nil {
		werr := fmt.Errorf("orb client: write: %w", cl.mapWireErr(err))
		if in.oneway {
			// Oneway entries never register, so fail() cannot reach them.
			in.pe.complete(invokeResult{err: werr})
		}
		// Registered entries: send already failed the connection, and
		// fail() completes every tabled entry (this one included) exactly
		// once. Completing here too would race that sweep — see
		// processInvoke.
		return werr
	}
	return nil
}

// invokeTimeout returns the per-invoke deadline, zero when unconfigured.
func (cl *Client) invokeTimeout() time.Duration {
	if cl.res == nil {
		return 0
	}
	return cl.res.cfg.InvokeTimeout
}

// mapWireErr folds a deadline expiry into ErrDeadlineExceeded (counting it)
// and passes every other wire error through.
func (cl *Client) mapWireErr(err error) error {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		invokeTimeoutTotal.Inc()
		return fmt.Errorf("%w: %v", ErrDeadlineExceeded, err)
	}
	return err
}

// doneChanPool recycles completion channels across Invoke calls. A channel
// returns to the pool only after its single result has been received, so a
// recycled channel is always empty. A channel whose outcome is uncertain —
// the entry was cancelled, so a racing submitter may still hold it — is
// abandoned instead of recycled: a late write to an abandoned cap-1 channel
// is harmless, while a late write to a recycled one would hand some other
// invocation a stranger's reply.
var doneChanPool = sync.Pool{New: func() any { return make(chan invokeResult, 1) }}

// timerPool recycles the deadline timers armed per invoke when an
// InvokeTimeout is configured.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// Invoke performs one synchronous request/reply at the given priority. The
// payload is not retained past the call. Under a ResilienceConfig the call
// fails fast with ErrCircuitOpen while the breaker is open; it is never
// retried (use InvokeIdempotent for operations that may safely run twice).
// Concurrent Invokes pipeline over the shared connection and may complete
// in any order.
func (cl *Client) Invoke(key, op string, payload []byte, prio sched.Priority) ([]byte, error) {
	if cl.closed.Load() {
		return nil, corba.ErrClosed
	}
	if srv := cl.localServer(); srv != nil {
		if out, err, handled := cl.invokeCollocated(srv, key, op, payload, prio, false); handled {
			return out, err
		}
	}
	st, err := cl.pickStripe(prio)
	if err != nil {
		return nil, err
	}
	return consumeReply(cl.invokeOnce(st, key, op, payload, prio, false))
}

// InvokeView is the zero-copy Invoke: instead of returning a heap copy of
// the reply payload, it runs view on the caller's goroutine with the payload
// as a revocable loan into the arrival frame, then releases the frame. The
// bytes travel socket→view with no intermediate copy. The loan is only valid
// inside view — the release revokes it, and a retained loan answers ErrStale
// afterwards; a view that needs the bytes past its return must escape
// explicitly with Loan.Detach (a counted copy into memory the caller owns).
func (cl *Client) InvokeView(key, op string, payload []byte, prio sched.Priority, view func(reply memory.Loan) error) error {
	if cl.closed.Load() {
		return corba.ErrClosed
	}
	if srv := cl.localServer(); srv != nil {
		if out, err, handled := cl.invokeCollocated(srv, key, op, payload, prio, false); handled {
			if err != nil {
				return err
			}
			if view != nil {
				// The collocated reply is the servant's own slice — no frame
				// to revoke; lend from a one-shot owner, as the frameless
				// wire path does.
				return view((&memory.LoanOwner{}).Lend(out))
			}
			return nil
		}
	}
	st, err := cl.pickStripe(prio)
	if err != nil {
		return err
	}
	res := cl.invokeOnce(st, key, op, payload, prio, false)
	if res.err != nil {
		res.release()
		return res.err
	}
	var verr error
	if view != nil {
		if res.frame != nil {
			verr = view(res.frame.Lend(res.payload))
		} else {
			// Frameless success (cannot happen on the reply path today, but
			// keep the contract total): lend from a one-shot owner that is
			// never revoked.
			verr = view((&memory.LoanOwner{}).Lend(res.payload))
		}
	}
	res.release()
	return verr
}

// consumeReply turns an invokeResult into the legacy ([]byte, error) shape:
// a payload that aliases an arrival frame is copied out (the copy is
// counted — this is the price of the retained-slice API) and the frame
// released.
func consumeReply(res invokeResult) ([]byte, error) {
	if res.frame == nil {
		return res.payload, res.err
	}
	var out []byte
	if len(res.payload) > 0 {
		out = make([]byte, len(res.payload))
		copy(out, res.payload)
		countPayloadCopy(len(res.payload))
	}
	res.release()
	return out, res.err
}

// InvokeIdempotent is Invoke for operations that are safe to execute more
// than once. Under a ResilienceConfig, transport-level failures are retried
// up to MaxRetries times within the retry budget, with capped exponential
// backoff between attempts; each retry uses a fresh request id, and stale
// replies to abandoned attempts are dropped by the demux reactor. Without
// resilience it behaves exactly like Invoke.
func (cl *Client) InvokeIdempotent(key, op string, payload []byte, prio sched.Priority) ([]byte, error) {
	if cl.closed.Load() {
		return nil, corba.ErrClosed
	}
	return cl.withRetry(func() ([]byte, error) {
		if srv := cl.localServer(); srv != nil {
			if out, err, handled := cl.invokeCollocated(srv, key, op, payload, prio, false); handled {
				return out, err
			}
		}
		st, err := cl.pickStripe(prio)
		if err != nil {
			return nil, err
		}
		return consumeReply(cl.invokeOnce(st, key, op, payload, prio, false))
	})
}

// invokeOnce runs one pass through the component pipeline: arm a pending
// entry, submit the invocation toward the chosen stripe, and wait for the
// reactor (or a failure path) to complete it. The returned result may carry
// a frame reference (payload aliasing the arrival buffer); the caller owns
// it and must release it via consumeReply, InvokeView, or release.
func (cl *Client) invokeOnce(st *stripe, key, op string, payload []byte, prio sched.Priority, oneway bool) invokeResult {
	msg, err := cl.invoke.GetMessage()
	if err != nil {
		return invokeResult{err: err}
	}
	m := msg.(*invokeMsg)
	m.id = cl.nextID.Add(1)
	m.setKey(key)
	m.op, m.payload, m.prio = op, payload, prio
	m.oneway = oneway
	m.st = st
	pe := getPending(m.id, bandOf(prio))
	m.pe = pe
	// Open a trace around the round trip. The ids are captured in locals
	// because the pooled message is recycled once its handler returns.
	trace, span, started := startSpan(uint64(m.id))
	m.trace, m.span = trace, span
	if err := cl.invoke.Send(msg, prio); err != nil {
		// The message's fate is uncertain: a racing dispatcher may still run
		// the handler and complete the entry. Claim it; if the claim fails,
		// a completion is already committed (complete moves armed→done
		// before sending on the cap-1 channel), so take that result — it is
		// the invocation's true fate, and draining it lets the entry and
		// channel recycle instead of leaking to the collector, and keeps a
		// result-borne frame reference from stranding in an abandoned
		// channel.
		if pe.state.CompareAndSwap(pendingArmed, pendingCancelled) {
			endSpan(trace, span, started)
			return invokeResult{err: err}
		}
		res := <-pe.done
		putPending(pe)
		endSpan(trace, span, started)
		return res
	}
	res := cl.await(pe)
	endSpan(trace, span, started)
	return res
}

// await blocks until the entry completes or the per-invoke deadline
// expires. On expiry the entry is cancelled and unhooked from the pending
// table: the connection stays up — the reactor simply drops the stale reply
// when (if) it arrives — so one slow invocation no longer tears down the
// pipeline for everyone else sharing the connection.
func (cl *Client) await(pe *muxPending) invokeResult {
	if mc := pe.mc.Load(); mc != nil && mc.lf {
		return cl.awaitLF(mc, pe)
	}
	timeout := cl.invokeTimeout()
	if timeout <= 0 {
		res := <-pe.done
		putPending(pe)
		return res
	}
	t := getTimer(timeout)
	select {
	case res := <-pe.done:
		putTimer(t)
		putPending(pe)
		return res
	case <-t.C:
		timerPool.Put(t) // fired: already drained
		if cl.cancelPending(pe) {
			invokeTimeoutTotal.Inc()
			return invokeResult{err: fmt.Errorf("%w: no reply within %v", ErrDeadlineExceeded, timeout)}
		}
		// Lost the race: a completion is already in flight. Take it.
		res := <-pe.done
		putPending(pe)
		return res
	}
}

// awaitLF is await for leader/follower connections: wait on the completion
// channel AND volunteer for the connection's leader token. A caller that
// wins the token reads frames off the wire itself (mux.lead), completing
// other callers' entries until its own reply arrives — the reply that
// matters to this caller never crosses a goroutine boundary. Followers whose
// replies the leader completes wake from their channel exactly as under the
// dedicated reactor.
func (cl *Client) awaitLF(mc *muxConn, pe *muxPending) invokeResult {
	timeout := cl.invokeTimeout()
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	// Fast path: a parked token means no reader is active on the connection.
	// Take it with one non-blocking channel op — no timer armed, no 3-way
	// select — and demux our own reply.
	select {
	case <-mc.leaderCh:
		return cl.leadAfterToken(mc, pe, deadline, nil)
	default:
	}
	var t *time.Timer
	var tC <-chan time.Time
	if timeout > 0 {
		t = getTimer(time.Until(deadline))
		tC = t.C
	}
	select {
	case res := <-pe.done:
		if t != nil {
			putTimer(t)
		}
		putPending(pe)
		return res
	case <-mc.leaderCh:
		return cl.leadAfterToken(mc, pe, deadline, t)
	case <-tC:
		timerPool.Put(t) // fired: already drained
		if cl.cancelPending(pe) {
			invokeTimeoutTotal.Inc()
			return invokeResult{err: fmt.Errorf("%w: no reply within %v", ErrDeadlineExceeded, timeout)}
		}
		// Lost the race: a completion is already in flight. Take it.
		res := <-pe.done
		putPending(pe)
		return res
	}
}

// leadAfterToken runs once the caller holds mc's leader token: it re-checks
// the completion channel (the outgoing leader may have completed this entry
// and released the token in either order — leading with a completed entry
// would wedge on a read no reply answers), then reads the wire until the
// entry resolves. t, when non-nil, is the caller's armed deadline timer; it
// is recycled here (lead bounds the read with the conn deadline instead).
func (cl *Client) leadAfterToken(mc *muxConn, pe *muxPending, deadline time.Time, t *time.Timer) invokeResult {
	select {
	case res := <-pe.done:
		mc.leaderCh <- struct{}{}
		if t != nil {
			putTimer(t)
		}
		putPending(pe)
		return res
	default:
	}
	res, recycle := mc.lead(pe, deadline)
	if t != nil {
		putTimer(t)
	}
	if recycle {
		putPending(pe)
	}
	return res
}

// cancelPending claims an entry for its caller after a deadline expiry. On
// success the entry is removed from the pending table (best effort: the
// connection failer clears whole tables anyway) and — because the submit
// path may still hold the pointer — the entry and its channel are abandoned
// to the collector, never recycled.
func (cl *Client) cancelPending(pe *muxPending) bool {
	if !pe.state.CompareAndSwap(pendingArmed, pendingCancelled) {
		return false
	}
	// Best effort: the entry is tabled on at most one stripe's connection
	// (the failer clears whole tables anyway).
	for _, st := range cl.stripes {
		if mc := st.cur.Load(); mc != nil && mc.unregister(pe) {
			break
		}
	}
	return true
}

// withRetry runs op and, when resilience is enabled, retries retriable
// failures within the retry budget. Breaker gating happens inside op —
// stripe selection (pickStripe) fails fast with ErrCircuitOpen when no
// stripe admits traffic, and ErrCircuitOpen is retriable, so a later
// attempt can ride a half-open probe.
func (cl *Client) withRetry(op func() ([]byte, error)) ([]byte, error) {
	r := cl.res
	if r == nil {
		return op()
	}
	for attempt := 0; ; attempt++ {
		out, err := op()
		if err == nil {
			r.budget.Earn()
			r.resetDelay()
			return out, nil
		}
		if cl.closed.Load() || attempt >= r.cfg.MaxRetries || !retriable(err) || !r.budget.Take() {
			return nil, err
		}
		retryTotal.Inc()
		delay := r.nextDelay()
		// A shed reply carries the server's back-off hint: honour it when it
		// exceeds the local backoff, so retry pressure scales down with the
		// server's brown-out level instead of hammering a recovering peer.
		var shed *ShedError
		if errors.As(err, &shed) && shed.RetryAfter > delay {
			delay = shed.RetryAfter
		}
		time.Sleep(delay)
	}
}

// startSpan opens a client invocation span in the flight recorder when
// verbose telemetry is on; it returns zero ids (meaning untraced)
// otherwise. The trace id rides the wire, so gating here also switches the
// server's per-request span off in one place.
func startSpan(correlator uint64) (trace, span uint64, started int64) {
	if !telemetry.VerboseEnabled() {
		return 0, 0, 0
	}
	trace, span = telemetry.NewID(), telemetry.NewID()
	telemetry.Record(telemetry.EvSpanStart, clientSpanLabel, trace, span, correlator)
	return trace, span, telemetry.Now()
}

// endSpan closes a span opened by startSpan; arg is the span duration in
// nanoseconds.
func endSpan(trace, span uint64, started int64) {
	if trace == 0 {
		return
	}
	telemetry.Record(telemetry.EvSpanEnd, clientSpanLabel, trace, span, uint64(telemetry.Now()-started))
}

// Locate probes whether the server hosts the object key, using the GIOP
// LocateRequest/LocateReply exchange. Unlike Invoke it bypasses the
// component structure: locate is a transport-level question, answered by
// the same demux reactor that matches invocation replies. The Transport
// must already be connected (issue any Invoke first, or rely on lazy
// instantiation via a throwaway call).
func (cl *Client) Locate(key string) (bool, error) {
	here, _, err := cl.LocateEx(key)
	return here, err
}

// LocateEx is Locate with the forwarding evidence: when the server answers
// LocateObjectForward — a group directory redirecting the probe — fwd
// carries the addresses of the group members actually hosting the object
// (here is false; the probed server itself does not serve it).
func (cl *Client) LocateEx(key string) (here bool, fwd []string, err error) {
	if cl.closed.Load() {
		return false, nil, corba.ErrClosed
	}
	_, err = cl.withRetry(func() ([]byte, error) {
		var err error
		here, fwd, err = cl.locateOnce(key)
		return nil, err
	})
	return here, fwd, err
}

// locateOnce performs one LocateRequest/LocateReply exchange through a
// stripe's multiplexed connection (locate carries no priority; it routes
// under the normal band).
func (cl *Client) locateOnce(key string) (bool, []string, error) {
	st, err := cl.pickStripe(sched.NormPriority)
	if err != nil {
		return false, nil, err
	}
	mc := st.cur.Load()
	if mc == nil {
		if cl.res == nil || cl.closed.Load() {
			return false, nil, fmt.Errorf("%w: transport not yet connected; invoke first", corba.ErrClosed)
		}
		if mc, err = st.conn(); err != nil {
			return false, nil, err
		}
	}
	id := cl.nextID.Add(1)
	pe := getPending(id, bandOf(sched.NormPriority))
	pe.locate = true
	ok, err := mc.register(pe)
	if err != nil || !ok {
		putPending(pe) // never registered; we are the only holder
		if err == nil {
			err = corba.ErrClosed
		}
		return false, nil, fmt.Errorf("orb client: locate: %w", err)
	}
	wb := giop.GetBuffer()
	wb.B = giop.MarshalLocateRequest(wb.B, cl.order, &giop.LocateRequest{
		RequestID: id, ObjectKey: []byte(key),
	})
	err = mc.send(wb.B)
	giop.PutBuffer(wb)
	_ = err // a send failure completed the registered entry with the wire error
	res := cl.await(pe)
	if res.err != nil {
		return false, nil, fmt.Errorf("orb client: locate: %w", res.err)
	}
	return res.here, res.fwd, nil
}

// InvokeOneway sends a request without waiting for a reply. Oneways are
// idempotent from the transport's point of view (no reply is matched), so
// under a ResilienceConfig transport failures are retried within the retry
// budget like InvokeIdempotent. The call returns once the frame is written.
func (cl *Client) InvokeOneway(key, op string, payload []byte, prio sched.Priority) error {
	if cl.closed.Load() {
		return corba.ErrClosed
	}
	_, err := cl.withRetry(func() ([]byte, error) {
		if srv := cl.localServer(); srv != nil {
			if out, err, handled := cl.invokeCollocated(srv, key, op, payload, prio, true); handled {
				return out, err
			}
		}
		st, err := cl.pickStripe(prio)
		if err != nil {
			return nil, err
		}
		return consumeReply(cl.invokeOnce(st, key, op, payload, prio, true))
	})
	return err
}

// Inflight reports the number of invocations currently awaiting replies on
// the multiplexed connection (also exported as the `inflight` gauge).
func (cl *Client) Inflight() int64 { return cl.inflight.Load() }

// App exposes the underlying component application (for tests and the bench
// harness).
func (cl *Client) App() *core.App { return cl.app }

// Close shuts the client down: every stripe's connection is closed (failing
// any in-flight invocations with ErrClosed) and the component application
// stopped.
func (cl *Client) Close() {
	if cl.closed.Swap(true) {
		return
	}
	for _, st := range cl.stripes {
		if mc := st.cur.Load(); mc != nil {
			mc.fail(fmt.Errorf("orb client: %w", corba.ErrClosed))
		}
		if st.gauge != nil {
			st.gauge.Unregister()
		}
	}
	for _, g := range cl.shardGauges {
		g.Unregister()
	}
	cl.gauge.Unregister()
	cl.app.Stop()
}
