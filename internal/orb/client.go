package orb

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corba"
	"repro/internal/core"
	"repro/internal/giop"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Flight-recorder labels for the client's invocation spans.
var (
	clientSpanLabel  = telemetry.Label("orb.client.invoke")
	clientReplyLabel = telemetry.Label("orb.client.reply")
)

// ClientConfig parameterises a Compadres ORB client.
type ClientConfig struct {
	// Network and Addr locate the server.
	Network transport.Network
	Addr    string
	// Order selects the CDR byte order; BigEndian by default.
	Order giop.ByteOrder
	// MaxMessage bounds a reply body; zero selects DefaultMaxMessage.
	MaxMessage int
	// ScopePoolCount pre-creates that many MessageProcessing scopes
	// (paper's scope-pool optimisation); zero creates fresh scopes per
	// instantiation.
	ScopePoolCount int
	// Synchronous dispatches the component ports on the calling thread
	// instead of port thread pools.
	Synchronous bool
	// MsgPoolCapacity overrides the per-type message pool capacity.
	MsgPoolCapacity int
	// Resilience opts the client into supervised-connection behaviour:
	// redial with backoff, per-invoke deadlines, retry budgets for
	// idempotent operations, and a circuit breaker. Nil (the default)
	// keeps the original semantics — one dial, every error surfaces.
	Resilience *ResilienceConfig
}

// DefaultMaxMessage is the default bound on message bodies.
const DefaultMaxMessage = 4096

// Client is the component-structured ORB client of Fig. 10 (left).
type Client struct {
	app     *core.App
	invoke  *core.OutPort
	conn    *clientConn
	reqPool *memory.ScopePool
	nextID  atomic.Uint32
	maxMsg  int
	order   giop.ByteOrder
	closed  atomic.Bool
	network transport.Network
	addr    string
	res     *resilience // nil unless ClientConfig.Resilience was set
}

// deadliner is the optional deadline support shared by net.TCPConn,
// net.Pipe, and the fault-injection wrapper.
type deadliner interface{ SetDeadline(time.Time) error }

// clientConn is the connection state owned by the Transport component
// instance; the mutex serialises one request/reply exchange at a time, as a
// single GIOP connection requires without a demultiplexing reactor.
type clientConn struct {
	mu   sync.Mutex
	conn transport.Conn
}

// DialClient builds the client component structure and connects it. The
// Transport component dials when it is instantiated — which happens when
// the first request message arrives, exactly as §3.2 describes — so the
// network connection is established lazily.
func DialClient(cfg ClientConfig) (*Client, error) {
	if cfg.Network == nil {
		return nil, fmt.Errorf("orb: nil network")
	}
	maxMsg := cfg.MaxMessage
	if maxMsg == 0 {
		maxMsg = DefaultMaxMessage
	}

	// Area budgets: the Transport holds port structures and pools; each
	// MessageProcessing marshals one request and one reply.
	mpSize := int64(4*maxMsg + 8192)
	transportSize := int64(8*maxMsg + 32768)

	appCfg := core.AppConfig{Name: "CompadresORBClient", ImmortalSize: 1 << 20}
	if cfg.MsgPoolCapacity != 0 {
		appCfg.MsgPoolCapacity = cfg.MsgPoolCapacity
	}
	if cfg.ScopePoolCount > 0 {
		appCfg.ScopePools = []core.ScopePoolSpec{
			{Level: 2, AreaSize: mpSize, Count: cfg.ScopePoolCount, Grow: true},
		}
	}
	app, err := core.NewApp(appCfg)
	if err != nil {
		return nil, err
	}

	// Each in-flight request marshals into its own pooled scope nested
	// under MessageProcessing, so pipelined invokes cannot exhaust the
	// component's fixed region (the RTZen per-request scope pattern).
	reqPool, err := app.Model().NewScopePool(memory.ScopePoolConfig{
		Name:     "orb.client.request",
		AreaSize: int64(3*maxMsg + 4096),
		Count:    4,
		Grow:     true,
	})
	if err != nil {
		app.Stop()
		return nil, err
	}

	cl := &Client{
		app:     app,
		conn:    &clientConn{},
		reqPool: reqPool,
		maxMsg:  maxMsg,
		order:   cfg.Order,
		network: cfg.Network,
		addr:    cfg.Addr,
	}
	if cfg.Resilience != nil {
		cl.res = newResilience(*cfg.Resilience)
	}

	threading := core.ThreadingShared
	if cfg.Synchronous {
		threading = core.ThreadingSynchronous
	}

	orbComp, err := app.NewImmortalComponent("ORB", func(c *core.Component) error {
		smm := c.SMM()
		out, err := core.AddOutPort(c, smm, core.OutPortConfig{
			Name: "toTransport", Type: invokeType, Dests: []string{"Transport.request"},
		})
		if err != nil {
			return err
		}
		cl.invoke = out
		return c.DefineChild(core.ChildDef{
			Name:       "Transport",
			MemorySize: transportSize,
			Persistent: true,
			Setup:      cl.transportSetup(threading, mpSize, cfg.ScopePoolCount > 0),
		})
	})
	if err != nil {
		app.Stop()
		return nil, err
	}
	_ = orbComp
	if err := app.Start(); err != nil {
		app.Stop()
		return nil, err
	}
	if cl.res != nil && cl.res.cfg.InvokeTimeout > 0 {
		// Stamp the invoke timeout on the port as a send deadline, so the
		// deadline monitor counts invokes whose handler starts late, in
		// addition to the wire-level enforcement in exchange.
		cl.invoke.SetSendDeadline(cl.res.cfg.InvokeTimeout)
	}
	return cl, nil
}

// transportSetup wires one Transport instance: the In port fed by the ORB,
// the Out port feeding MessageProcessing, the per-request child definition,
// and the start function that dials the server.
func (cl *Client) transportSetup(threading core.Threading, mpSize int64, usePool bool) func(*core.Component) error {
	return func(tc *core.Component) error {
		orbSMM := tc.Parent().SMM()
		tSMM := tc.SMM()

		toMP, err := core.AddOutPort(tc, tSMM, core.OutPortConfig{
			Name: "toMP", Type: invokeType, Dests: []string{"MessageProcessing.request"},
		})
		if err != nil {
			return err
		}

		// The Transport relays requests from the ORB into the deepest
		// scope: get a fresh pooled message from its own SMM and copy the
		// invocation over (messages never cross SMM pools).
		if _, err := core.AddInPort(tc, orbSMM, core.InPortConfig{
			Name: "request", Type: invokeType, Threading: threading,
			MinThreads: 1, MaxThreads: 2, BufferSize: 32,
			Handler: core.HandlerFunc(func(p *core.Proc, msg core.Message) error {
				in := msg.(*invokeMsg)
				fwd, err := toMP.GetMessage()
				if err != nil {
					in.done <- invokeResult{err: err}
					return err
				}
				out := fwd.(*invokeMsg)
				out.copyFrom(in)
				if err := toMP.Send(fwd, in.prio); err != nil {
					in.done <- invokeResult{err: err}
					return err
				}
				return nil
			}),
		}); err != nil {
			return err
		}

		if err := tc.DefineChild(core.ChildDef{
			Name:       "MessageProcessing",
			MemorySize: mpSize,
			UsePool:    usePool,
			Setup: func(mp *core.Component) error {
				_, err := core.AddInPort(mp, tSMM, core.InPortConfig{
					Name: "request", Type: invokeType, Threading: threading,
					MinThreads: 1, MaxThreads: 2, BufferSize: 32,
					Handler: core.HandlerFunc(cl.processInvoke),
				})
				return err
			},
		}); err != nil {
			return err
		}

		tc.SetStart(func(p *core.Proc) error {
			conn, err := cl.network.Dial(cl.addr)
			if err != nil {
				if cl.res != nil {
					// Supervised mode: leave the connection nil and let
					// exchange redial with backoff; the failure still counts
					// toward the breaker.
					telemetry.RecordFault("orb.client.dial", err)
					cl.res.brk.Failure()
					return nil
				}
				return fmt.Errorf("orb client dial %q: %w", cl.addr, err)
			}
			cl.conn.mu.Lock()
			cl.conn.conn = conn
			cl.conn.mu.Unlock()
			return nil
		})
		return nil
	}
}

// processInvoke runs in the MessageProcessing component's scope: it enters
// a pooled per-request scope nested under it, marshals the GIOP request
// there, performs the wire exchange, demarshals the reply, and completes
// the caller's channel. The request scope is reclaimed (back to its pool)
// on return, so memory use is bounded per in-flight request rather than
// per MessageProcessing lifetime.
func (cl *Client) processInvoke(p *core.Proc, msg core.Message) error {
	in := msg.(*invokeMsg)
	var res invokeResult
	area, err := cl.reqPool.Acquire()
	if err != nil {
		res = invokeResult{err: err}
	} else if err := p.Context().Enter(area, func(ctx *memory.Context) error {
		res = cl.exchange(ctx, in)
		return nil
	}); err != nil {
		res = invokeResult{err: err}
	}
	in.done <- res
	if res.err != nil {
		return res.err
	}
	return nil
}

// exchange performs one marshalled round trip with buffers charged to the
// current scope.
func (cl *Client) exchange(ctx *memory.Context, in *invokeMsg) invokeResult {
	wireCap := giop.HeaderSize + 96 + len(in.key) + len(in.op) + len(in.payload)
	wireRef, err := ctx.Alloc(wireCap)
	if err != nil {
		return invokeResult{err: fmt.Errorf("orb client: marshal buffer: %w", err)}
	}
	wireBuf, err := wireRef.Bytes()
	if err != nil {
		return invokeResult{err: err}
	}
	wire := giop.MarshalRequest(wireBuf[:0], cl.order, &giop.Request{
		RequestID:        in.id,
		ResponseExpected: !in.oneway,
		ObjectKey:        in.keyBuf,
		Operation:        in.op,
		Priority:         byte(in.prio),
		TraceID:          in.trace,
		SpanID:           in.span,
		Payload:          in.payload,
	})

	scratchRef, err := ctx.Alloc(cl.maxMsg + giop.HeaderSize)
	if err != nil {
		return invokeResult{err: fmt.Errorf("orb client: reply buffer: %w", err)}
	}
	scratch, err := scratchRef.Bytes()
	if err != nil {
		return invokeResult{err: err}
	}

	cl.conn.mu.Lock()
	defer cl.conn.mu.Unlock()
	conn := cl.conn.conn
	if conn == nil {
		if cl.res == nil || cl.closed.Load() {
			return invokeResult{err: corba.ErrClosed}
		}
		c, err := cl.redialLocked()
		if err != nil {
			cl.res.brk.Failure()
			return invokeResult{err: err}
		}
		conn = c
	}
	if cl.res != nil && cl.res.cfg.InvokeTimeout > 0 {
		if d, ok := conn.(deadliner); ok {
			_ = d.SetDeadline(time.Now().Add(cl.res.cfg.InvokeTimeout))
			defer d.SetDeadline(time.Time{})
		}
	}
	if _, err := conn.Write(wire); err != nil {
		telemetry.RecordFault("orb.client.write", err)
		cl.failConnLocked(conn)
		return invokeResult{err: fmt.Errorf("orb client: write: %w", cl.mapWireErr(err))}
	}
	if in.oneway {
		if cl.res != nil {
			cl.res.brk.Success()
		}
		return invokeResult{}
	}
	var rep giop.Reply
	for skips := 0; ; {
		h, body, err := giop.ReadMessageLimited(conn, scratch[:0], uint32(cl.maxMsg))
		if err != nil {
			if err == io.EOF {
				err = corba.ErrClosed
			} else {
				// A reply cut off mid-frame or over the endpoint bound is a
				// fault; a clean close is routine shutdown.
				telemetry.RecordFault("orb.client.read", err)
			}
			cl.failConnLocked(conn)
			return invokeResult{err: fmt.Errorf("orb client: read: %w", cl.mapWireErr(err))}
		}
		if h.Type != giop.MsgReply {
			return invokeResult{err: fmt.Errorf("orb client: unexpected %v message", h.Type)}
		}
		if err := giop.DecodeReply(h.Order, body, &rep); err != nil {
			return invokeResult{err: err}
		}
		if rep.TraceID != 0 {
			// The reply carried the server's span for our trace: record it so
			// the client flight recorder holds the full stitched round trip.
			telemetry.Record(telemetry.EvNetRecv, clientReplyLabel, rep.TraceID, rep.SpanID, uint64(len(body)))
		}
		if rep.RequestID == in.id {
			break
		}
		if cl.res != nil && rep.RequestID < in.id && skips < 8 {
			// A stale reply to an earlier request that was retried or timed
			// out on this connection: suppress the duplicate and keep
			// reading for our own reply.
			skips++
			dupSuppressedTotal.Inc()
			continue
		}
		return invokeResult{err: fmt.Errorf("orb client: reply id %d for request %d", rep.RequestID, in.id)}
	}
	if cl.res != nil {
		cl.res.brk.Success()
	}
	switch rep.Status {
	case giop.ReplyNoException:
		// Copy the result out of scoped memory before the scope dies.
		out := make([]byte, len(rep.Payload))
		copy(out, rep.Payload)
		return invokeResult{payload: out}
	case giop.ReplyUserException:
		return invokeResult{err: fmt.Errorf("%w: %s", corba.ErrUserException, rep.Payload)}
	default:
		return invokeResult{err: fmt.Errorf("%w: %s", corba.ErrSystemException, rep.Payload)}
	}
}

// redialLocked re-establishes the supervised connection; called with
// conn.mu held and cl.conn.conn nil.
func (cl *Client) redialLocked() (transport.Conn, error) {
	conn, err := cl.network.Dial(cl.addr)
	if err != nil {
		telemetry.RecordFault("orb.client.redial", err)
		return nil, fmt.Errorf("orb client redial %q: %w", cl.addr, err)
	}
	cl.conn.conn = conn
	reconnectTotal.Inc()
	telemetry.Record(telemetry.EvState, connLabel, 0, 0, connReconnected)
	return conn, nil
}

// failConnLocked handles a wire fault on conn. Under supervision the
// connection is torn down (a half-written request or half-read reply would
// desynchronise GIOP framing) so the next invoke redials, and the fault
// counts toward the breaker. Without resilience the connection is left in
// place, preserving the original error-surfacing semantics.
func (cl *Client) failConnLocked(conn transport.Conn) {
	if cl.res == nil {
		return
	}
	cl.res.brk.Failure()
	if cl.conn.conn == conn {
		_ = conn.Close()
		cl.conn.conn = nil
	}
}

// mapWireErr folds a deadline expiry into ErrDeadlineExceeded (counting it)
// and passes every other wire error through.
func (cl *Client) mapWireErr(err error) error {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		invokeTimeoutTotal.Inc()
		return fmt.Errorf("%w: %v", ErrDeadlineExceeded, err)
	}
	return err
}

// doneChanPool recycles completion channels across Invoke calls. A channel
// returns to the pool only after its single result has been received, so a
// recycled channel is always empty. A channel whose outcome is uncertain —
// the Send failed, so a handler may or may not still complete it — is
// abandoned instead of recycled: a late write to an abandoned cap-1 channel
// is harmless, while a late write to a recycled one would hand some other
// invocation a stranger's reply.
var doneChanPool = sync.Pool{New: func() any { return make(chan invokeResult, 1) }}

// Invoke performs one synchronous request/reply at the given priority. The
// payload is not retained past the call. Under a ResilienceConfig the call
// fails fast with ErrCircuitOpen while the breaker is open; it is never
// retried (use InvokeIdempotent for operations that may safely run twice).
func (cl *Client) Invoke(key, op string, payload []byte, prio sched.Priority) ([]byte, error) {
	if cl.closed.Load() {
		return nil, corba.ErrClosed
	}
	if cl.res != nil && !cl.res.brk.Allow() {
		return nil, ErrCircuitOpen
	}
	return cl.invokeOnce(key, op, payload, prio, false)
}

// InvokeIdempotent is Invoke for operations that are safe to execute more
// than once. Under a ResilienceConfig, transport-level failures are retried
// up to MaxRetries times within the retry budget, with capped exponential
// backoff between attempts; each retry uses a fresh request id, and stale
// replies to abandoned attempts are suppressed by id. Without resilience it
// behaves exactly like Invoke.
func (cl *Client) InvokeIdempotent(key, op string, payload []byte, prio sched.Priority) ([]byte, error) {
	if cl.closed.Load() {
		return nil, corba.ErrClosed
	}
	return cl.withRetry(func() ([]byte, error) {
		return cl.invokeOnce(key, op, payload, prio, false)
	})
}

// invokeOnce runs one pass through the component pipeline.
func (cl *Client) invokeOnce(key, op string, payload []byte, prio sched.Priority, oneway bool) ([]byte, error) {
	msg, err := cl.invoke.GetMessage()
	if err != nil {
		return nil, err
	}
	m := msg.(*invokeMsg)
	m.id = cl.nextID.Add(1)
	m.setKey(key)
	m.op, m.payload, m.prio = op, payload, prio
	m.oneway = oneway
	// Open a trace around the round trip. The ids are captured in locals
	// because the pooled message is recycled once its handler returns.
	trace, span, started := startSpan(uint64(m.id))
	m.trace, m.span = trace, span
	done := doneChanPool.Get().(chan invokeResult)
	m.done = done
	if err := cl.invoke.Send(msg, prio); err != nil {
		// The message's fate is uncertain (a racing dispatcher may still
		// run the handler and complete the channel): abandon the channel
		// rather than risk recycling one that gets a late write.
		endSpan(trace, span, started)
		return nil, err
	}
	res := <-done
	doneChanPool.Put(done)
	endSpan(trace, span, started)
	return res.payload, res.err
}

// withRetry runs op under breaker gating and, when resilience is enabled,
// retries retriable failures within the retry budget.
func (cl *Client) withRetry(op func() ([]byte, error)) ([]byte, error) {
	r := cl.res
	if r == nil {
		return op()
	}
	for attempt := 0; ; attempt++ {
		var out []byte
		var err error
		if !r.brk.Allow() {
			err = ErrCircuitOpen
		} else {
			out, err = op()
		}
		if err == nil {
			r.budget.Earn()
			r.resetDelay()
			return out, nil
		}
		if cl.closed.Load() || attempt >= r.cfg.MaxRetries || !retriable(err) || !r.budget.Take() {
			return nil, err
		}
		retryTotal.Inc()
		time.Sleep(r.nextDelay())
	}
}

// startSpan opens a client invocation span in the flight recorder when
// telemetry is enabled; it returns zero ids (meaning untraced) otherwise.
func startSpan(correlator uint64) (trace, span uint64, started int64) {
	if !telemetry.Enabled() {
		return 0, 0, 0
	}
	trace, span = telemetry.NewID(), telemetry.NewID()
	telemetry.Record(telemetry.EvSpanStart, clientSpanLabel, trace, span, correlator)
	return trace, span, telemetry.Now()
}

// endSpan closes a span opened by startSpan; arg is the span duration in
// nanoseconds.
func endSpan(trace, span uint64, started int64) {
	if trace == 0 {
		return
	}
	telemetry.Record(telemetry.EvSpanEnd, clientSpanLabel, trace, span, uint64(telemetry.Now()-started))
}

// Locate probes whether the server hosts the object key, using the GIOP
// LocateRequest/LocateReply exchange. Unlike Invoke it bypasses the
// component structure: locate is a transport-level question. The Transport
// must already be connected (issue any Invoke first, or rely on lazy
// instantiation via a throwaway call).
func (cl *Client) Locate(key string) (bool, error) {
	if cl.closed.Load() {
		return false, corba.ErrClosed
	}
	var here bool
	_, err := cl.withRetry(func() ([]byte, error) {
		var err error
		here, err = cl.locateOnce(key)
		return nil, err
	})
	return here, err
}

// locateOnce performs one LocateRequest/LocateReply exchange.
func (cl *Client) locateOnce(key string) (bool, error) {
	cl.conn.mu.Lock()
	defer cl.conn.mu.Unlock()
	conn := cl.conn.conn
	if conn == nil {
		if cl.res == nil || cl.closed.Load() {
			return false, fmt.Errorf("%w: transport not yet connected; invoke first", corba.ErrClosed)
		}
		c, err := cl.redialLocked()
		if err != nil {
			cl.res.brk.Failure()
			return false, err
		}
		conn = c
	}
	if cl.res != nil && cl.res.cfg.InvokeTimeout > 0 {
		if d, ok := conn.(deadliner); ok {
			_ = d.SetDeadline(time.Now().Add(cl.res.cfg.InvokeTimeout))
			defer d.SetDeadline(time.Time{})
		}
	}
	id := cl.nextID.Add(1)
	wb := giop.GetBuffer()
	defer giop.PutBuffer(wb)
	wb.B = giop.MarshalLocateRequest(wb.B, cl.order, &giop.LocateRequest{
		RequestID: id, ObjectKey: []byte(key),
	})
	if _, err := conn.Write(wb.B); err != nil {
		cl.failConnLocked(conn)
		return false, fmt.Errorf("orb client: locate write: %w", cl.mapWireErr(err))
	}
	rb := giop.GetBuffer()
	defer giop.PutBuffer(rb)
	h, body, err := giop.ReadMessageLimited(conn, rb.B, uint32(cl.maxMsg))
	if err != nil {
		cl.failConnLocked(conn)
		return false, fmt.Errorf("orb client: locate read: %w", cl.mapWireErr(err))
	}
	if h.Type != giop.MsgLocateReply {
		return false, fmt.Errorf("orb client: unexpected %v message", h.Type)
	}
	var rep giop.LocateReply
	if err := giop.DecodeLocateReply(h.Order, body, &rep); err != nil {
		return false, err
	}
	if rep.RequestID != id {
		return false, fmt.Errorf("orb client: locate reply id %d for request %d", rep.RequestID, id)
	}
	if cl.res != nil {
		cl.res.brk.Success()
	}
	return rep.Status == giop.LocateObjectHere, nil
}

// InvokeOneway sends a request without waiting for a reply. Oneways are
// idempotent from the transport's point of view (no reply is matched), so
// under a ResilienceConfig transport failures are retried within the retry
// budget like InvokeIdempotent.
func (cl *Client) InvokeOneway(key, op string, payload []byte, prio sched.Priority) error {
	if cl.closed.Load() {
		return corba.ErrClosed
	}
	_, err := cl.withRetry(func() ([]byte, error) {
		return cl.invokeOnce(key, op, payload, prio, true)
	})
	return err
}

// App exposes the underlying component application (for tests and the bench
// harness).
func (cl *Client) App() *core.App { return cl.app }

// Close shuts the client down: the connection is closed and the component
// application stopped.
func (cl *Client) Close() {
	if cl.closed.Swap(true) {
		return
	}
	cl.conn.mu.Lock()
	if cl.conn.conn != nil {
		_ = cl.conn.conn.Close()
		cl.conn.conn = nil
	}
	cl.conn.mu.Unlock()
	cl.app.Stop()
}
