package orb

import (
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/transport"
)

// This file is the adaptive write-coalescing layer shared by the client mux
// send path and the server reply path. Senders hand the coalescer one framed
// GIOP message each and block until their frame reaches the connection; the
// first sender to find the writer idle becomes the flusher and writes every
// queued frame as one vectored write (group commit). The policy is adaptive
// with no timers: a lone caller's frame flushes immediately — the idle
// flusher takes a batch of one — while under contention frames pile up
// behind the in-progress write and the next flush drains them all, bounded
// by MaxBatchFrames/MaxBatchBytes. Blocking the sender (rather than copying
// the frame and returning) is load-bearing twice over: the frame bytes live
// in a pooled per-request scope that is reclaimed when the sender's handler
// returns, and oneway invocations report write errors synchronously.

// CoalesceConfig opts an ORB endpoint into adaptive write coalescing.
// The zero value of each field selects its default.
type CoalesceConfig struct {
	// MaxBatchFrames bounds how many frames one vectored write carries;
	// zero selects 32.
	MaxBatchFrames int
	// MaxBatchBytes bounds the byte size of one vectored write; zero
	// selects 64 KiB. A single frame larger than the bound still flushes
	// (alone) — the bound caps batching, not frame size.
	MaxBatchBytes int
	// SendWidth widens the client's marshalling pipeline (the Transport and
	// MessageProcessing port pools) so that many requests can be in the
	// coalescer at once; zero selects 8. Without widening, the default
	// two-thread pipeline caps batches at two frames regardless of load.
	// Ignored by the server, whose width is ServerConfig.Concurrency.
	SendWidth int
}

// Coalescing defaults.
const (
	defaultMaxBatchFrames = 32
	defaultMaxBatchBytes  = 64 << 10
	defaultSendWidth      = 8
)

// withDefaults fills zero fields.
func (c CoalesceConfig) withDefaults() CoalesceConfig {
	if c.MaxBatchFrames <= 0 {
		c.MaxBatchFrames = defaultMaxBatchFrames
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = defaultMaxBatchBytes
	}
	if c.SendWidth <= 0 {
		c.SendWidth = defaultSendWidth
	}
	return c
}

// Coalescing metrics, exported at /metrics with the compadres_ prefix.
// frames/flush — the syscall amortisation factor — is
// coalesce_frames_total / coalesce_flush_total; the histogram carries the
// distribution of batch sizes behind that mean.
var (
	coalesceFlushTotal  = telemetry.NewCounter("coalesce_flush_total")
	coalesceFramesTotal = telemetry.NewCounter("coalesce_frames_total")
	coalesceBatchFrames = telemetry.NewHistogram("coalesce_batch_frames")
)

// coalescer serialises writes to one connection through a flush queue.
// Frames flush strictly in enqueue order, so a sender's frame has been
// written exactly when the flushed-sequence counter passes the sequence it
// was enqueued at. After a write error the coalescer is dead: the error is
// sticky, queued frames are dropped (their senders get the error), and
// every later write fails fast — a partial frame has desynchronised GIOP
// framing, so the connection is unusable anyway.
type coalescer struct {
	conn writerConn
	// timeout, when non-nil, bounds each flush via the connection's write
	// deadline (the client passes its per-invoke timeout; the server passes
	// nil).
	timeout   func() time.Duration
	maxFrames int
	maxBytes  int

	mu       sync.Mutex
	cond     sync.Cond
	queue    [][]byte
	flushing bool
	head     uint64 // sequence of the last enqueued frame
	done     uint64 // sequence of the last flushed frame
	err      error  // sticky first write error
	batch    [][]byte
}

// writerConn is the slice of transport.Conn the coalescer needs; tests
// substitute scripted writers.
type writerConn interface {
	Write(p []byte) (int, error)
}

// newCoalescer builds a coalescer over conn with cfg's (default-filled)
// bounds.
func newCoalescer(conn writerConn, cfg CoalesceConfig, timeout func() time.Duration) *coalescer {
	cfg = cfg.withDefaults()
	co := &coalescer{
		conn:      conn,
		timeout:   timeout,
		maxFrames: cfg.MaxBatchFrames,
		maxBytes:  cfg.MaxBatchBytes,
		queue:     make([][]byte, 0, cfg.MaxBatchFrames),
		batch:     make([][]byte, 0, cfg.MaxBatchFrames),
	}
	co.cond.L = &co.mu
	return co
}

// write enqueues one frame and blocks until it has been written or the
// coalescer has failed. The frame bytes are referenced, never copied, and
// are released before write returns — callers may reclaim them immediately.
// owner reports whether THIS call performed the failing flush: exactly one
// caller per wire fault sees owner=true, and only it may charge the fault
// to the breaker and fail the connection, preserving the mux invariant that
// one wire event counts one breaker failure however many senders it
// strands.
func (co *coalescer) write(frame []byte) (err error, owner bool) {
	co.mu.Lock()
	if co.err != nil {
		err = co.err
		co.mu.Unlock()
		return err, false
	}
	co.queue = append(co.queue, frame)
	co.head++
	seq := co.head
	for {
		if co.err != nil {
			err = co.err
			co.mu.Unlock()
			return err, false
		}
		if co.done >= seq {
			// Flushed — frames leave the queue strictly in enqueue order, so
			// the counter passing our sequence means our frame went out even
			// if a later flush failed.
			co.mu.Unlock()
			return nil, false
		}
		if co.flushing {
			co.cond.Wait()
			continue
		}
		// Writer idle: become the flusher. Take the longest queue prefix
		// within the batch bounds (always at least one frame, so an
		// over-bound frame still flushes alone) and write it outside the
		// lock as one vectored write; frames arriving meanwhile queue behind
		// the flushing flag and ride the next batch.
		take, bytes := 0, 0
		for take < len(co.queue) && take < co.maxFrames {
			if take > 0 && bytes+len(co.queue[take]) > co.maxBytes {
				break
			}
			bytes += len(co.queue[take])
			take++
		}
		batch := append(co.batch[:0], co.queue[:take]...)
		rest := copy(co.queue, co.queue[take:])
		for i := rest; i < len(co.queue); i++ {
			co.queue[i] = nil
		}
		co.queue = co.queue[:rest]
		co.flushing = true
		co.mu.Unlock()

		werr := co.flush(batch)
		// The batch was consumed (possibly resliced) by the vectored write;
		// drop the frame references before the senders reclaim their scopes.
		for i := range batch {
			batch[i] = nil
		}
		co.batch = batch[:0]

		co.mu.Lock()
		co.flushing = false
		if werr != nil {
			co.err = werr
			// Dead coalescer: unhook the unflushed frames so their scoped
			// buffers can be reclaimed; their senders wake to the sticky
			// error above.
			for i := range co.queue {
				co.queue[i] = nil
			}
			co.queue = co.queue[:0]
			co.cond.Broadcast()
			co.mu.Unlock()
			return werr, true
		}
		co.done += uint64(take)
		coalesceFlushTotal.Inc()
		coalesceFramesTotal.Add(int64(take))
		coalesceBatchFrames.Record(int64(take))
		co.cond.Broadcast()
		// Loop: if our own frame was beyond this batch, keep flushing (or
		// wait for a successor flusher) until the counter covers it.
	}
}

// flush writes one batch to the connection as a single vectored write,
// bounded by the write deadline when one is configured.
func (co *coalescer) flush(batch [][]byte) error {
	if co.timeout != nil {
		if t := co.timeout(); t > 0 {
			if wd, ok := co.conn.(writeDeadliner); ok {
				_ = wd.SetWriteDeadline(time.Now().Add(t))
			}
		}
	}
	_, err := writeBatch(co.conn, batch)
	return err
}

// writeBatch routes a batch through the transport's vectored-write helper
// when the writer is a full connection (writev on TCP, sequential parity
// elsewhere) and degrades to sequential writes for the scripted writers the
// tests substitute.
func writeBatch(w writerConn, bufs [][]byte) (int64, error) {
	if c, ok := w.(transport.Conn); ok {
		return transport.WriteBuffers(c, bufs)
	}
	var total int64
	for _, b := range bufs {
		n, err := w.Write(b)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
