package orb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corba"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/transport"
)

// blockServant parks every invocation until release closes, then echoes.
type blockServant struct{ release <-chan struct{} }

func (b blockServant) Invoke(op string, in []byte) ([]byte, error) {
	<-b.release
	out := make([]byte, len(in))
	copy(out, in)
	return out, nil
}

// TestBreakerStateMachine drives the circuit breaker through its full
// closed → open → half-open → closed cycle without a network.
func TestBreakerStateMachine(t *testing.T) {
	b := breaker{threshold: 3, cooldown: int64(20 * time.Millisecond)}
	if !b.Allow() {
		t.Fatal("fresh breaker refused")
	}
	b.Failure()
	b.Failure()
	if b.State() != breakerClosed || !b.Allow() {
		t.Fatal("breaker opened below threshold")
	}
	b.Failure() // third consecutive fault: open
	if b.State() != breakerOpen {
		t.Fatalf("state = %d after threshold faults, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}
	time.Sleep(25 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if b.State() != breakerHalfOpen {
		t.Fatalf("state = %d after probe admitted, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second probe admitted inside the same cooldown window")
	}
	b.Failure() // probe failed: reopen
	if b.State() != breakerOpen || b.Allow() {
		t.Fatal("failed probe did not reopen the breaker")
	}
	time.Sleep(25 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("reopened breaker never admitted another probe")
	}
	b.Success()
	if b.State() != breakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
	// A streak broken by a success must not open.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != breakerClosed {
		t.Fatal("success did not reset the failure streak")
	}
}

// TestResilientClientSurvivesServerRestart kills the server mid-run: plain
// invokes fail and trip the breaker into fail-fast, then a restarted server
// on the same address is found again by the supervised redial and the
// breaker closes.
func TestResilientClientSurvivesServerRestart(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "restart", ServerConfig{})
	addr := srv.Addr()

	openBefore := breakerOpenTotal.Value()
	reconnBefore := reconnectTotal.Value()

	cl := dial(t, net, addr, ClientConfig{Resilience: &ResilienceConfig{
		Seed:          7,
		ReconnectBase: 2 * time.Millisecond,
		ReconnectMax:  20 * time.Millisecond,
		MaxRetries:    8,
		// The budget must cover the recovery retries below.
		RetryBudgetTokens:    200,
		RetryBudgetEarnEvery: 1,
		BreakerThreshold:     4,
		BreakerCooldown:      30 * time.Millisecond,
	}})
	if out, err := cl.Invoke("echo", "echo", []byte("warm"), sched.NormPriority); err != nil || string(out) != "warm" {
		t.Fatalf("warm-up invoke = (%q, %v)", out, err)
	}

	srv.Close()

	// Plain invokes against the dead server fail; after BreakerThreshold
	// consecutive transport faults the breaker opens and calls fail fast.
	sawOpen := false
	for i := 0; i < 50 && !sawOpen; i++ {
		_, err := cl.Invoke("echo", "echo", []byte("x"), sched.NormPriority)
		if err == nil {
			t.Fatal("invoke against dead server succeeded")
		}
		sawOpen = errors.Is(err, ErrCircuitOpen)
	}
	if !sawOpen {
		t.Fatal("breaker never opened against a dead server")
	}
	if breakerOpenTotal.Value() <= openBefore {
		t.Error("breaker_open_total did not advance")
	}

	// Restart on the same address; the idempotent path retries through the
	// breaker's half-open probe until the redial lands.
	srv2 := startEchoServer(t, net, addr, ServerConfig{})
	_ = srv2
	deadline := time.Now().Add(5 * time.Second)
	for {
		out, err := cl.InvokeIdempotent("echo", "echo", []byte("back"), sched.NormPriority)
		if err == nil {
			if string(out) != "back" {
				t.Fatalf("post-recovery echo = %q", out)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered after server restart: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if reconnectTotal.Value() <= reconnBefore {
		t.Error("reconnect_total did not advance")
	}
	if cl.stripes[0].brk.State() != breakerClosed {
		t.Errorf("breaker state = %d after recovery, want closed", cl.stripes[0].brk.State())
	}
}

// TestInvokeDeadlineTearsDownAndRecovers parks the servant so the reply
// never comes: the per-invoke deadline fires and the caller gets
// ErrDeadlineExceeded. Under the demux reactor the connection SURVIVES a
// timeout — the reactor keeps framing synchronised and drops the stale
// reply whenever it shows up — so the follow-up invoke rides the same
// multiplexed connection (or redials if the wire did die); either way it
// must succeed. (The name keeps its historical teardown phrasing; what it
// pins is deadline expiry followed by recovery.)
func TestInvokeDeadlineTearsDownAndRecovers(t *testing.T) {
	net := transport.NewInproc()
	release := make(chan struct{})
	srv := startEchoServer(t, net, "", ServerConfig{})
	srv.RegisterServant("block", blockServant{release: release})
	defer close(release)

	timeoutsBefore := invokeTimeoutTotal.Value()
	cl := dial(t, net, srv.Addr(), ClientConfig{Resilience: &ResilienceConfig{
		Seed:          11,
		InvokeTimeout: 60 * time.Millisecond,
		// One fault must not open the breaker for the recovery below.
		BreakerThreshold: 10,
	}})

	_, err := cl.Invoke("block", "stall", []byte("never answered"), sched.NormPriority)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("stalled invoke err = %v, want ErrDeadlineExceeded", err)
	}
	if invokeTimeoutTotal.Value() <= timeoutsBefore {
		t.Error("invoke_timeout_total did not advance")
	}

	// The timed-out invocation was cancelled and unhooked from the pending
	// table; the connection itself is still healthy, so the next invoke
	// answers well inside the deadline without a teardown in between.
	out, err := cl.InvokeIdempotent("echo", "echo", []byte("alive"), sched.NormPriority)
	if err != nil || string(out) != "alive" {
		t.Fatalf("post-timeout invoke = (%q, %v)", out, err)
	}

	// The abandoned invocation's reply (the servant is still parked) must
	// be dropped as stale when it eventually arrives — which the follow-up
	// invoke above already proves framing-wise; here we pin that no second
	// result ever crossed to another caller by running a few more matched
	// round trips.
	for i := 0; i < 5; i++ {
		p := []byte{byte('a' + i)}
		out, err := cl.InvokeIdempotent("echo", "echo", p, sched.NormPriority)
		if err != nil || string(out) != string(p) {
			t.Fatalf("post-timeout invoke %d = (%q, %v)", i, out, err)
		}
	}
}

// TestInvokeErrorPathsDoNotCrossTalk floods a client whose single GIOP
// connection is stalled behind a parked servant, so invokes fail on every
// client-side error path (relay buffer full, outer send rejected). The
// regression being pinned: a completion channel recycled on an error path
// whose message could still reach a handler would hand one caller another
// caller's reply. Every successful invoke must get exactly its own payload
// back, during the storm and after it.
func TestInvokeErrorPathsDoNotCrossTalk(t *testing.T) {
	net := transport.NewInproc()
	release := make(chan struct{})
	srv := startEchoServer(t, net, "", ServerConfig{})
	srv.RegisterServant("block", blockServant{release: release})
	// A shallow pipeline makes the storm overrun the client-side bounds
	// deterministically: the relay buffers reject once 8 invocations are
	// queued, and the message pool caps how many callers even get that far.
	cl := dial(t, net, srv.Addr(), ClientConfig{PipelineDepth: 8})

	const callers = 80
	type result struct {
		sent []byte
		got  []byte
		err  error
	}
	results := make([]result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := make([]byte, 8)
			binary.BigEndian.PutUint64(payload, uint64(i)|0xABCD<<16)
			got, err := cl.Invoke("block", "echo", payload, sched.NormPriority)
			results[i] = result{sent: payload, got: got, err: err}
		}(i)
	}
	time.Sleep(200 * time.Millisecond) // let the pipeline jam and reject
	close(release)
	wg.Wait()

	failures := 0
	for i, r := range results {
		if r.err != nil {
			failures++
			continue
		}
		if !bytes.Equal(r.got, r.sent) {
			t.Fatalf("caller %d: cross-talk! sent %x got %x", i, r.sent, r.got)
		}
	}
	if failures == 0 {
		t.Error("storm produced no failures; the error paths were not exercised")
	}
	if failures == callers {
		t.Error("storm produced no successes; nothing verified delivery")
	}

	// After the storm every channel in the pool must be clean: a fresh
	// sequential batch must match exactly.
	for i := 0; i < 20; i++ {
		payload := []byte(fmt.Sprintf("seq-%d", i))
		got, err := cl.Invoke("echo", "echo", payload, sched.NormPriority)
		if err != nil {
			t.Fatalf("post-storm invoke %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("post-storm invoke %d: cross-talk! got %q want %q", i, got, payload)
		}
	}
}

// TestChaosSoak is the acceptance soak: a seeded fault-injection network
// drops, delays, truncates, and refuses traffic while idempotent invokes
// hammer the echo servant. The client must reach at least 99% eventual
// success, the supervised connection must have reconnected, and tearing
// everything down must leak no goroutines.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	baseline := runtime.NumGoroutine()

	base := transport.NewInproc()
	chaos := fault.New(base, fault.Config{
		Seed:             0xC0FFEE,
		DialFailProb:     0.05,
		DropAfterBytes:   32 << 10, // periodic connection death
		DropProb:         0.01,
		PartialWriteProb: 0.005,
		LatencyMin:       10 * time.Microsecond,
		LatencyMax:       200 * time.Microsecond,
		// No corruption: GIOP has no payload checksum, so a flipped byte
		// can silently alter an "successful" echo; corruption coverage
		// lives in the fault package's own tests.
	})

	srv, err := NewServer(ServerConfig{Network: base, Addr: "soak"})
	if err != nil {
		t.Fatal(err)
	}
	srv.RegisterServant("echo", corba.EchoServant{})
	srv.ServeBackground()

	cl, err := DialClient(ClientConfig{
		Network: chaos, Addr: "soak",
		Resilience: &ResilienceConfig{
			Seed:                 42,
			ReconnectBase:        time.Millisecond,
			ReconnectMax:         50 * time.Millisecond,
			MaxRetries:           6,
			RetryBudgetTokens:    1000,
			RetryBudgetEarnEvery: 1,
			InvokeTimeout:        500 * time.Millisecond,
			BreakerThreshold:     8,
			BreakerCooldown:      20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	retriesBefore := retryTotal.Value()
	// 16 workers keep 16 invocations in flight on the one supervised
	// connection throughout the soak, so wire faults now strand whole
	// pipelined batches — each batch must fail over as one event (one
	// redial, one breaker failure) and every logical operation must still
	// eventually succeed.
	const workers = 16
	const perWorker = 25
	const total = workers * perWorker
	var successCount atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := make([]byte, 64)
			for i := 0; i < perWorker; i++ {
				binary.BigEndian.PutUint64(payload, uint64(w)<<32|uint64(i))
				var out []byte
				var err error
				// "Eventual" success: a logical operation may take a few
				// idempotent attempts while the breaker cycles.
				for tries := 0; tries < 6; tries++ {
					out, err = cl.InvokeIdempotent("echo", "echo", payload, sched.NormPriority)
					if err == nil {
						break
					}
					time.Sleep(2 * time.Millisecond)
				}
				if err == nil && bytes.Equal(out, payload) {
					successCount.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	successes := int(successCount.Load())
	if successes < total*99/100 {
		t.Errorf("eventual success = %d/%d, want >= 99%%", successes, total)
	}
	if got := cl.Inflight(); got != 0 {
		t.Errorf("inflight = %d after soak drained", got)
	}
	st := chaos.Stats()
	if st.ConnsDropped == 0 && st.DialsRefused == 0 {
		t.Error("chaos schedule injected no connection faults; soak proved nothing")
	}
	if st.ConnsDropped > 0 && retryTotal.Value() == retriesBefore {
		t.Error("connections died but retry_total never advanced")
	}
	t.Logf("soak: %d/%d ok, faults=%+v, retries=%d, reconnects=%d, breaker-opens=%d",
		successes, total, st, retryTotal.Value(), reconnectTotal.Value(), breakerOpenTotal.Value())

	cl.Close()
	srv.Close()

	// Everything torn down: the goroutine count must return to (near) the
	// baseline. Poll briefly — pool workers unwind asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
