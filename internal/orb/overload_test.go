package orb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corba"
	"repro/internal/fault"
	"repro/internal/overload"
	"repro/internal/rtzen"
	"repro/internal/sched"
	"repro/internal/transport"
)

// sleepServant holds every invocation for a fixed service time, then echoes.
type sleepServant struct{ d time.Duration }

func (s sleepServant) Invoke(op string, in []byte) ([]byte, error) {
	time.Sleep(s.d)
	out := make([]byte, len(in))
	copy(out, in)
	return out, nil
}

// TestOverloadTenantRoundTrip: a controller-equipped server serves tenanted
// and untenanted clients alike at light load — admission is invisible when
// there is headroom — and the controller's in-flight accounting drains to
// zero when the traffic stops.
func TestOverloadTenantRoundTrip(t *testing.T) {
	ctrl := overload.NewController(overload.Config{})
	defer ctrl.Close()
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{Overload: ctrl})

	tenanted := dial(t, net, srv.Addr(), ClientConfig{
		Tenant: overload.Tenant{ID: 42, Tier: overload.Tier0},
	})
	plain := dial(t, net, srv.Addr(), ClientConfig{})

	for i := 0; i < 20; i++ {
		payload := []byte(fmt.Sprintf("req-%d", i))
		for _, cl := range []*Client{tenanted, plain} {
			out, err := cl.Invoke("echo", "echo", payload, sched.NormPriority)
			if err != nil || string(out) != string(payload) {
				t.Fatalf("invoke %d = (%q, %v)", i, out, err)
			}
		}
	}
	// Done fires after the reply write, racing the client's receive: poll.
	pollInflightZero(t, ctrl)
	if lim := ctrl.Limit(); lim < 4 {
		t.Errorf("limit collapsed to %d under light load", lim)
	}
}

// TestOverloadRTZenClientCarriesTenant: the hand-coded baseline client stamps
// the same tenant service context, and a controller-equipped Compadres server
// classifies and serves it — the wire dialect is shared end to end.
func TestOverloadRTZenClientCarriesTenant(t *testing.T) {
	ctrl := overload.NewController(overload.Config{})
	defer ctrl.Close()
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{Overload: ctrl})

	cl, err := rtzen.DialClient(rtzen.ClientConfig{
		Network: net, Addr: srv.Addr(),
		TenantID: 7, TenantTier: uint8(overload.TierBestEffort),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	out, err := cl.Invoke("echo", "echo", []byte("cross-orb"), sched.NormPriority)
	if err != nil || string(out) != "cross-orb" {
		t.Fatalf("rtzen invoke via controlled server = (%q, %v)", out, err)
	}
	pollInflightZero(t, ctrl)
}

// TestOverloadShedsAboveHardCap pins the reject path end to end: with the
// limit pinned to 1, one request occupies the only slot (the servant is
// parked) and every concurrent arrival is shed at admission — a fast
// system-exception reply, not a dropped connection — while the admitted
// request still completes once released.
func TestOverloadShedsAboveHardCap(t *testing.T) {
	ctrl := overload.NewController(overload.Config{MinLimit: 1, MaxLimit: 1})
	defer ctrl.Close()
	net := transport.NewInproc()
	release := make(chan struct{})
	srv := startEchoServer(t, net, "", ServerConfig{Overload: ctrl})
	srv.RegisterServant("block", blockServant{release: release})
	cl := dial(t, net, srv.Addr(), ClientConfig{
		Tenant: overload.Tenant{ID: 9, Tier: overload.Tier1},
	})

	const callers = 8
	var shed, okCount atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte{byte(i)}
			out, err := cl.Invoke("block", "echo", payload, sched.NormPriority)
			switch {
			case err == nil && len(out) == 1 && out[0] == byte(i):
				okCount.Add(1)
			case errors.Is(err, corba.ErrSystemException):
				shed.Add(1)
			default:
				t.Errorf("caller %d: unexpected result (%q, %v)", i, out, err)
			}
		}(i)
	}
	// The shed replies come back while the admitted request is still parked;
	// wait for all but one caller to fail, then release the survivor.
	deadline := time.Now().Add(5 * time.Second)
	for shed.Load() < callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d callers shed; rejects are not flowing", shed.Load(), callers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := okCount.Load(); got != 1 {
		t.Errorf("admitted completions = %d, want exactly 1 (limit pinned to 1)", got)
	}
	if got := shed.Load(); got != callers-1 {
		t.Errorf("shed callers = %d, want %d", got, callers-1)
	}
	// Every slot came back: the admitted one via Done, the shed ones never
	// held one.
	pollInflightZero(t, ctrl)

	// The connection survived the rejections: a fresh invoke still works.
	out, err := cl.Invoke("echo", "echo", []byte("after"), sched.NormPriority)
	if err != nil || string(out) != "after" {
		t.Fatalf("post-shed invoke = (%q, %v); connection did not survive shedding", out, err)
	}
}

// pollInflightZero waits briefly for the controller's in-flight count to
// drain (Done fires after the reply write, which races the client's receive).
func pollInflightZero(t *testing.T, ctrl *overload.Controller) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for ctrl.Inflight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("controller inflight = %d never drained to 0", ctrl.Inflight())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadSoakTieredLoad is the overload acceptance soak: three tenants
// at three QoS tiers hammer a slow servant through a jittering fault network
// at far more concurrency than the server can carry. Under the AIMD limit
// and the brown-out ladder the guaranteed tier must come out ahead of
// best-effort, every request must get SOME answer (completion or shed reply —
// nothing hangs), and the controller must drain clean.
func TestOverloadSoakTieredLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	ctrl := overload.NewController(overload.Config{
		TargetP99: 2 * time.Millisecond,
		Window:    5 * time.Millisecond,
		MinLimit:  2,
		MaxLimit:  32,
	})
	defer ctrl.Close()

	base := transport.NewInproc()
	jitter := fault.New(base, fault.Config{
		Seed:       0xBADCAB,
		LatencyMin: 20 * time.Microsecond,
		LatencyMax: 300 * time.Microsecond,
	})

	srv, err := NewServer(ServerConfig{
		Network: base, Addr: "overload-soak",
		Overload:        ctrl,
		RequestDeadline: 50 * time.Millisecond,
		Concurrency:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterServant("work", sleepServant{d: time.Millisecond})
	srv.RegisterServant("echo", corba.EchoServant{})
	srv.ServeBackground()

	tiers := []struct {
		name   string
		tenant overload.Tenant
		prio   sched.Priority
	}{
		{"tier0", overload.Tenant{ID: 1, Tier: overload.Tier0}, 24},
		{"tier1", overload.Tenant{ID: 2, Tier: overload.Tier1}, sched.NormPriority},
		{"best-effort", overload.Tenant{ID: 3, Tier: overload.TierBestEffort}, 4},
	}
	const workers = 16
	const perWorker = 25
	shedBefore := overload.AdmissionSheds()

	ok := make([]atomic.Int64, len(tiers))
	shed := make([]atomic.Int64, len(tiers))
	var wg sync.WaitGroup
	for ti, tier := range tiers {
		cl, err := DialClient(ClientConfig{
			Network: jitter, Addr: "overload-soak", Tenant: tier.tenant,
			PipelineDepth: workers * 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(ti int, cl *Client, prio sched.Priority) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					_, err := cl.Invoke("work", "echo", []byte("payload"), prio)
					switch {
					case err == nil:
						ok[ti].Add(1)
					case errors.Is(err, corba.ErrSystemException):
						shed[ti].Add(1)
					}
					// Client-side backpressure (ErrBufferFull) counts as
					// neither: the request never reached the server.
				}
			}(ti, cl, tier.prio)
		}
	}
	wg.Wait()

	for ti, tier := range tiers {
		t.Logf("%-11s ok=%3d shed=%3d", tier.name, ok[ti].Load(), shed[ti].Load())
	}
	t.Logf("limit=%d level=%d sheds+=%d", ctrl.Limit(), ctrl.Level(),
		overload.AdmissionSheds()-shedBefore)

	if ok[0].Load() == 0 {
		t.Error("tier-0 tenant got zero completions under overload")
	}
	if ok[0].Load() < ok[2].Load() {
		t.Errorf("tier-0 completions (%d) fell below best-effort's (%d) under overload",
			ok[0].Load(), ok[2].Load())
	}
	if overload.AdmissionSheds() == shedBefore && ctrl.Limit() == 32 {
		t.Error("soak shed nothing and never cut the limit; the overload was not an overload")
	}
	pollInflightZero(t, ctrl)

	// The server is still healthy after the storm: the guaranteed tenant's
	// next request round-trips (tier-0 passes every brown-out level).
	cl, err := DialClient(ClientConfig{
		Network: base, Addr: "overload-soak",
		Tenant: overload.Tenant{ID: 1, Tier: overload.Tier0},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	out, err := cl.Invoke("echo", "echo", []byte("alive"), 24)
	if err != nil || string(out) != "alive" {
		t.Fatalf("post-soak tier-0 invoke = (%q, %v)", out, err)
	}
}
