package orb

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corba"
	"repro/internal/giop"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// This file is the client half of the multiplexed invocation core: one
// writer-serialised send path plus one reader-goroutine demux reactor per
// connection. Requests carry monotonically increasing ids; the reactor
// matches each inbound reply to its in-flight pending-table entry by id and
// completes the caller's channel, so many invocations pipeline over a
// single GIOP connection and complete out of order. The whole-exchange
// mutex the client used to hold for a full round trip is gone — the only
// serialisation left on the hot path is the write lock for the request
// frame itself.

// Mux counters, exported at /metrics with the compadres_ prefix.
var (
	// muxStaleDropTotal counts inbound replies that matched no pending-table
	// entry: replies to invocations that timed out or were retried, or ids
	// corrupted in flight. They are dropped without disturbing the stream.
	muxStaleDropTotal = telemetry.NewCounter("mux_stale_drop_total")
	// muxReorderTotal counts replies that completed out of submission order
	// — the observable proof that pipelining is live on the connection.
	muxReorderTotal = telemetry.NewCounter("mux_reorder_total")
)

// muxLabel marks reactor lifecycle events in the flight recorder.
var muxLabel = telemetry.Label("orb.client.mux")

// Pending-entry states. Exactly one party moves an entry out of armed —
// the reactor (or connection failer) via complete, or the waiting caller
// via cancel — so the completion channel receives at most one result.
const (
	pendingArmed int32 = iota
	pendingDone
	pendingCancelled
)

// muxPending is one in-flight invocation: the slot a reply id resolves to.
// Entries are pooled; an entry whose caller cancelled it (deadline expiry)
// is abandoned to the collector instead of recycled, because the submit
// path may still hold a reference.
type muxPending struct {
	id     uint32
	locate bool
	// band is the priority band the invocation was routed under; the stripe
	// selector's per-band in-flight accounting is decremented with it when
	// the entry leaves the pending table.
	band  int32
	done  chan invokeResult
	state atomic.Int32
}

// complete delivers res to the waiting caller if the entry is still armed.
// It must not touch the entry after the channel send: the receiver recycles
// the entry as soon as the result arrives.
func (pe *muxPending) complete(res invokeResult) bool {
	if !pe.state.CompareAndSwap(pendingArmed, pendingDone) {
		return false
	}
	pe.done <- res
	return true
}

// pendingPool recycles entries across invocations, alongside doneChanPool.
var pendingPool = sync.Pool{New: func() any { return new(muxPending) }}

// getPending returns an armed entry wired to a pooled completion channel.
func getPending(id uint32, band int32) *muxPending {
	pe := pendingPool.Get().(*muxPending)
	pe.id = id
	pe.locate = false
	pe.band = band
	pe.state.Store(pendingArmed)
	pe.done = doneChanPool.Get().(chan invokeResult)
	return pe
}

// putPending recycles a completed entry and its (drained) channel. Only the
// caller that received the entry's single result may call this.
func putPending(pe *muxPending) {
	doneChanPool.Put(pe.done)
	pe.done = nil
	pendingPool.Put(pe)
}

// writeDeadliner is the optional write-deadline support of net.TCPConn,
// net.Pipe, and the fault-injection wrapper; the mux uses it to bound a
// request write without disturbing the reactor's blocking read.
type writeDeadliner interface{ SetWriteDeadline(time.Time) error }

// muxConn is one multiplexed connection: the pending table, the write
// lock, and the reactor goroutine demultiplexing its replies. A wire fault
// from either direction fails every pending entry exactly once with a
// transport-level error, counts a single failure against the owning
// stripe's breaker, and detaches the connection from its stripe so the next
// invoke routed there triggers one supervised redial — not one per
// in-flight caller.
type muxConn struct {
	cl   *Client
	st   *stripe
	conn transport.Conn

	wmu sync.Mutex // serialises request writes (uncoalesced path)
	// co, when non-nil, replaces the direct write path with the adaptive
	// write coalescer: senders enqueue frames and block until a vectored
	// flush covers them.
	co *coalescer

	pmu     sync.Mutex
	pending map[uint32]*muxPending
	dead    bool
	deadErr error

	// maxDone is the highest request id completed so far, maintained by the
	// reactor alone; a completion below it is an out-of-order reply.
	maxDone uint32
}

// newMuxConn wraps conn for st and starts its reactor.
func newMuxConn(st *stripe, conn transport.Conn) *muxConn {
	cl := st.cl
	mc := &muxConn{cl: cl, st: st, conn: conn, pending: make(map[uint32]*muxPending, 16)}
	if cl.coalesce != nil {
		mc.co = newCoalescer(conn, *cl.coalesce, cl.invokeTimeout)
	}
	go mc.reactor()
	return mc
}

// register places an armed entry in the pending table. It fails if the
// connection already died (the entry is then still owned by the caller) and
// reports false without error if the caller cancelled the entry while the
// invocation was queued — the request must not reach the wire.
func (mc *muxConn) register(pe *muxPending) (bool, error) {
	mc.pmu.Lock()
	if mc.dead {
		err := mc.deadErr
		mc.pmu.Unlock()
		return false, err
	}
	if pe.state.Load() == pendingCancelled {
		mc.pmu.Unlock()
		return false, nil
	}
	mc.pending[pe.id] = pe
	mc.pmu.Unlock()
	mc.cl.inflight.Add(1)
	mc.st.inflight.Add(1)
	mc.cl.bandInflight[pe.band].Add(1)
	return true, nil
}

// unregister removes an entry the caller is abandoning (deadline expiry).
// It reports whether the entry was still tabled here.
func (mc *muxConn) unregister(pe *muxPending) bool {
	mc.pmu.Lock()
	cur, ok := mc.pending[pe.id]
	if ok && cur == pe {
		delete(mc.pending, pe.id)
		mc.pmu.Unlock()
		mc.cl.inflight.Add(-1)
		mc.st.inflight.Add(-1)
		mc.cl.bandInflight[pe.band].Add(-1)
		return true
	}
	mc.pmu.Unlock()
	return false
}

// take removes and returns the entry for id, used by the reactor when a
// reply arrives.
func (mc *muxConn) take(id uint32) (*muxPending, bool) {
	mc.pmu.Lock()
	pe, ok := mc.pending[id]
	if ok {
		delete(mc.pending, id)
	}
	mc.pmu.Unlock()
	if ok {
		mc.cl.inflight.Add(-1)
		mc.st.inflight.Add(-1)
		mc.cl.bandInflight[pe.band].Add(-1)
	}
	return pe, ok
}

// send writes one request frame: through the coalescer when configured
// (blocking until a vectored flush covers the frame), else directly under
// the write lock. When the client has a per-invoke deadline configured the
// write itself is bounded by it too — a peer that stopped reading must not
// wedge the submit path forever. Any write error (a partial frame
// desynchronises GIOP framing) kills the connection; with coalescing, many
// senders may observe the same error but only the flush owner reports it,
// preserving one-breaker-failure-per-wire-event.
func (mc *muxConn) send(wire []byte) error {
	if mc.co != nil {
		err, owner := mc.co.write(wire)
		if err != nil && owner {
			mc.sendFailed(err)
		}
		return err
	}
	mc.wmu.Lock()
	if t := mc.cl.invokeTimeout(); t > 0 {
		if wd, ok := mc.conn.(writeDeadliner); ok {
			_ = wd.SetWriteDeadline(time.Now().Add(t))
		}
	}
	_, err := mc.conn.Write(wire)
	mc.wmu.Unlock()
	if err != nil {
		mc.sendFailed(err)
	}
	return err
}

// sendFailed records one write fault, charges one breaker failure to the
// stripe, and kills the connection. The reactor's subsequent
// closed-connection exit is classified clean and not re-counted.
func (mc *muxConn) sendFailed(err error) {
	telemetry.RecordFault("orb.client.write", err)
	if mc.cl.res != nil {
		mc.st.brk.Failure()
	}
	mc.fail(fmt.Errorf("orb client: write: %w", mc.cl.mapWireErr(err)))
}

// fail kills the connection once: every pending entry completes with err
// (wrapped as a transport-level failure), the socket closes, the client
// detaches the connection, and — under supervision — a single breaker
// failure is recorded for the whole batch.
func (mc *muxConn) fail(err error) {
	mc.pmu.Lock()
	if mc.dead {
		mc.pmu.Unlock()
		return
	}
	mc.dead = true
	mc.deadErr = err
	victims := make([]*muxPending, 0, len(mc.pending))
	for id, pe := range mc.pending {
		delete(mc.pending, id)
		victims = append(victims, pe)
	}
	mc.pmu.Unlock()

	_ = mc.conn.Close()
	mc.st.detach(mc)
	if n := len(victims); n > 0 {
		mc.cl.inflight.Add(-int64(n))
		mc.st.inflight.Add(-int64(n))
		telemetry.Record(telemetry.EvState, muxLabel, 0, 0, uint64(n))
	}
	for _, pe := range victims {
		mc.cl.bandInflight[pe.band].Add(-1)
		pe.complete(invokeResult{err: err})
	}
}

// reactor is the demultiplexing read loop: it frames replies off the
// connection, matches each to its pending entry by request id, and
// completes the caller's channel. Replies bearing unknown ids — stale
// answers to abandoned invocations, or corruption — are counted and
// dropped without wedging the stream. The reactor exits when the
// connection dies, failing whatever is still in flight.
func (mc *muxConn) reactor() {
	fr := giop.NewFrameReader(mc.conn, uint32(mc.cl.maxMsg))
	var rep giop.Reply
	var loc giop.LocateReply
	for {
		h, body, err := fr.Next()
		if err != nil {
			mc.readFailed(err)
			return
		}
		switch h.Type {
		case giop.MsgReply:
			if err := giop.DecodeReply(h.Order, body, &rep); err != nil {
				mc.readFailed(err)
				return
			}
			if rep.TraceID != 0 {
				// The reply carried the server's span for a trace we opened:
				// record it so the client flight recorder holds the full
				// stitched round trip.
				telemetry.Record(telemetry.EvNetRecv, clientReplyLabel, rep.TraceID, rep.SpanID, uint64(len(body)))
			}
			pe, ok := mc.take(rep.RequestID)
			if !ok {
				muxStaleDropTotal.Inc()
				continue
			}
			mc.noteOrder(rep.RequestID)
			mc.brkSuccess()
			if !pe.complete(replyResult(&rep)) {
				muxStaleDropTotal.Inc()
			}
		case giop.MsgLocateReply:
			if err := giop.DecodeLocateReply(h.Order, body, &loc); err != nil {
				mc.readFailed(err)
				return
			}
			pe, ok := mc.take(loc.RequestID)
			if !ok || !pe.locate {
				muxStaleDropTotal.Inc()
				continue
			}
			mc.noteOrder(loc.RequestID)
			mc.brkSuccess()
			if !pe.complete(invokeResult{here: loc.Status == giop.LocateObjectHere}) {
				muxStaleDropTotal.Inc()
			}
		case giop.MsgCloseConnection:
			mc.fail(fmt.Errorf("orb client: %w", corba.ErrClosed))
			return
		default:
			// A request-direction or unknown message on the reply stream is
			// a protocol violation; the connection cannot be trusted.
			mc.fail(fmt.Errorf("orb client: unexpected %v message", h.Type))
			return
		}
	}
}

// noteOrder maintains the reorder counter: the reactor observing a
// completion below the highest completed id has seen replies cross.
func (mc *muxConn) noteOrder(id uint32) {
	if id < mc.maxDone {
		muxReorderTotal.Inc()
		return
	}
	mc.maxDone = id
}

// brkSuccess records a completed exchange with the stripe's breaker, if
// supervised.
func (mc *muxConn) brkSuccess() {
	if mc.cl.res != nil {
		mc.st.brk.Success()
	}
}

// readFailed classifies a reactor read error and kills the connection: a
// clean shutdown (client closed, peer closed between frames) fails pending
// entries with ErrClosed and stays off the fault log; anything else — a
// reply cut off mid-frame, an over-bound body — is a recorded fault that
// also counts one breaker failure.
func (mc *muxConn) readFailed(err error) {
	if err == io.EOF || mc.cl.closed.Load() || cleanClose(err) {
		mc.fail(fmt.Errorf("orb client: read: %w", corba.ErrClosed))
		return
	}
	telemetry.RecordFault("orb.client.read", err)
	if mc.cl.res != nil {
		mc.st.brk.Failure()
	}
	mc.fail(fmt.Errorf("orb client: read: %w", mc.cl.mapWireErr(wireErr("read", mc.cl.addr, err))))
}

// replyResult maps a decoded GIOP reply to the caller-visible result,
// copying the payload out of the reactor's scratch buffer (which the next
// frame will overwrite).
func replyResult(rep *giop.Reply) invokeResult {
	switch rep.Status {
	case giop.ReplyNoException:
		out := make([]byte, len(rep.Payload))
		copy(out, rep.Payload)
		return invokeResult{payload: out}
	case giop.ReplyUserException:
		return invokeResult{err: fmt.Errorf("%w: %s", corba.ErrUserException, rep.Payload)}
	default:
		return invokeResult{err: fmt.Errorf("%w: %s", corba.ErrSystemException, rep.Payload)}
	}
}
