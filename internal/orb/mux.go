package orb

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corba"
	"repro/internal/giop"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// This file is the client half of the multiplexed invocation core: one
// writer-serialised send path plus one reader-goroutine demux reactor per
// connection. Requests carry monotonically increasing ids; the reactor
// matches each inbound reply to its in-flight pending-table entry by id and
// completes the caller's channel, so many invocations pipeline over a
// single GIOP connection and complete out of order. The whole-exchange
// mutex the client used to hold for a full round trip is gone — the only
// serialisation left on the hot path is the write lock for the request
// frame itself. The pending table is sharded (ClientConfig.ReactorShards):
// entries hash to per-shard maps with their own locks, so concurrent
// registrations and completions at high pipelining no longer serialise on
// one table mutex.

// Mux counters, exported at /metrics with the compadres_ prefix.
var (
	// muxStaleDropTotal counts inbound replies that matched no pending-table
	// entry: replies to invocations that timed out or were retried, or ids
	// corrupted in flight. They are dropped without disturbing the stream.
	muxStaleDropTotal = telemetry.NewCounter("mux_stale_drop_total")
	// muxReorderTotal counts replies that completed out of submission order
	// — the observable proof that pipelining is live on the connection.
	muxReorderTotal = telemetry.NewCounter("mux_reorder_total")
)

// muxLabel marks reactor lifecycle events in the flight recorder.
var muxLabel = telemetry.Label("orb.client.mux")

// Pending-entry states. Exactly one party moves an entry out of armed —
// the reactor (or connection failer) via complete, or the waiting caller
// via cancel — so the completion channel receives at most one result.
const (
	pendingArmed int32 = iota
	pendingDone
	pendingCancelled
)

// muxPending is one in-flight invocation: the slot a reply id resolves to.
// Entries are pooled; an entry whose caller cancelled it (deadline expiry)
// is abandoned to the collector instead of recycled, because the submit
// path may still hold a reference.
type muxPending struct {
	id     uint32
	locate bool
	// band is the priority band the invocation was routed under; the stripe
	// selector's per-band in-flight accounting is decremented with it when
	// the entry leaves the pending table.
	band  int32
	done  chan invokeResult
	state atomic.Int32
	// mc is the connection the entry registered on, published by register so
	// the awaiting caller can volunteer as that connection's demux leader
	// (leader/follower mode). Nil until registered.
	mc atomic.Pointer[muxConn]
}

// complete delivers res to the waiting caller if the entry is still armed.
// It must not touch the entry after the channel send: the receiver recycles
// the entry as soon as the result arrives. It reports false without sending
// when the entry already left armed — a result carrying a frame reference
// then stays with the caller of complete, which must release it.
func (pe *muxPending) complete(res invokeResult) bool {
	if !pe.state.CompareAndSwap(pendingArmed, pendingDone) {
		return false
	}
	pe.done <- res
	return true
}

// pendingPool recycles entries across invocations, alongside doneChanPool.
var pendingPool = sync.Pool{New: func() any { return new(muxPending) }}

// getPending returns an armed entry wired to a pooled completion channel.
func getPending(id uint32, band int32) *muxPending {
	pe := pendingPool.Get().(*muxPending)
	pe.id = id
	pe.locate = false
	pe.band = band
	pe.mc.Store(nil)
	pe.state.Store(pendingArmed)
	pe.done = doneChanPool.Get().(chan invokeResult)
	return pe
}

// putPending recycles a completed entry and its (drained) channel. Only the
// caller that received the entry's single result may call this.
func putPending(pe *muxPending) {
	doneChanPool.Put(pe.done)
	pe.done = nil
	pendingPool.Put(pe)
}

// writeDeadliner is the optional write-deadline support of net.TCPConn,
// net.Pipe, and the fault-injection wrapper; the mux uses it to bound a
// request write without disturbing the reactor's blocking read.
type writeDeadliner interface{ SetWriteDeadline(time.Time) error }

// readDeadliner is the matching read-deadline support; leader/follower mode
// uses it so a leader whose own invoke deadline expires can abort its
// blocking read (the resumable FrameReader keeps any partial frame for the
// next leader) instead of wedging on the wire.
type readDeadliner interface{ SetReadDeadline(time.Time) error }

// pendingSeg is one shard of a connection's pending table: its own lock and
// map, so registrations hashing to different shards never contend.
type pendingSeg struct {
	mu sync.Mutex
	m  map[uint32]*muxPending
}

// muxConn is one multiplexed connection: the sharded pending table, the
// write lock, and the reactor goroutine demultiplexing its replies. A wire
// fault from either direction fails every pending entry exactly once with a
// transport-level error, counts a single failure against the owning
// stripe's breaker, and detaches the connection from its stripe so the next
// invoke routed there triggers one supervised redial — not one per
// in-flight caller.
type muxConn struct {
	cl   *Client
	st   *stripe
	conn transport.Conn

	wmu sync.Mutex // serialises request writes (uncoalesced path)
	// co, when non-nil, replaces the direct write path with the adaptive
	// write coalescer: senders enqueue frames and block until a vectored
	// flush covers them.
	co *coalescer

	// segs is the pending table, sharded by id. dead/deadErr are the
	// connection's kill state: deadErr is written under deadMu strictly
	// before dead is stored, and fail's sweep of each segment happens
	// after the store while holding that segment's lock — so a register
	// that saw dead==false under its segment lock either completes before
	// the sweep reaches the segment or is collected by it; no entry can
	// strand.
	segs    []pendingSeg
	dead    atomic.Bool
	deadMu  sync.Mutex
	deadErr error

	// maxDone is the highest request id completed so far, maintained by the
	// demux reader alone (the dedicated reactor, or whichever caller holds
	// the leader token); a completion below it is an out-of-order reply.
	maxDone uint32

	// Leader/follower demux (lf true): there is no dedicated reactor
	// goroutine. Awaiting callers select on their completion channel and on
	// leaderCh; whoever wins the single token reads frames off fr, completing
	// other callers' entries, until its own reply arrives — then it hands the
	// token to the next waiter. This removes one goroutine rendezvous from
	// every round trip (the caller demultiplexes its own reply, as RTZen's
	// waiter does). Token handoff through the channel serialises access to fr
	// and maxDone. The mode is only safe when registration happens on the
	// caller's goroutine before await (synchronous clients); shared-threading
	// clients keep the dedicated reactor.
	lf       bool
	leaderCh chan struct{}
	fr       *giop.FrameReader
}

// newMuxConn wraps conn for st and starts its demux: a dedicated reactor
// goroutine, or — for synchronous clients whose connection supports read
// deadlines when one is needed — caller-driven leader/follower demux.
func newMuxConn(st *stripe, conn transport.Conn) *muxConn {
	cl := st.cl
	mc := &muxConn{cl: cl, st: st, conn: conn, segs: make([]pendingSeg, cl.reactorShards)}
	for i := range mc.segs {
		mc.segs[i].m = make(map[uint32]*muxPending, 16)
	}
	if cl.coalesce != nil {
		mc.co = newCoalescer(conn, *cl.coalesce, cl.invokeTimeout)
	}
	mc.fr = giop.NewFrameReader(conn, uint32(cl.maxMsg))
	_, canDeadline := conn.(readDeadliner)
	if cl.leaderFollower && (cl.invokeTimeout() <= 0 || canDeadline) {
		mc.lf = true
		mc.leaderCh = make(chan struct{}, 1)
		mc.leaderCh <- struct{}{}
	} else {
		go mc.reactor()
	}
	return mc
}

// seg returns the pending-table shard an id hashes to.
func (mc *muxConn) seg(id uint32) *pendingSeg {
	return &mc.segs[int(id)%len(mc.segs)]
}

// loadDeadErr returns the connection's kill error (call only after dead
// reads true).
func (mc *muxConn) loadDeadErr() error {
	mc.deadMu.Lock()
	defer mc.deadMu.Unlock()
	return mc.deadErr
}

// register places an armed entry in the pending table. It fails if the
// connection already died (the entry is then still owned by the caller) and
// reports false without error if the caller cancelled the entry while the
// invocation was queued — the request must not reach the wire.
func (mc *muxConn) register(pe *muxPending) (bool, error) {
	seg := mc.seg(pe.id)
	seg.mu.Lock()
	if mc.dead.Load() {
		seg.mu.Unlock()
		return false, mc.loadDeadErr()
	}
	if pe.state.Load() == pendingCancelled {
		seg.mu.Unlock()
		return false, nil
	}
	seg.m[pe.id] = pe
	seg.mu.Unlock()
	pe.mc.Store(mc)
	mc.cl.inflight.Add(1)
	mc.st.inflight.Add(1)
	mc.cl.bandInflight[pe.band].Add(1)
	if ops := mc.cl.shardOps; ops != nil {
		ops[int(pe.id)%len(ops)].Add(1)
	}
	return true, nil
}

// unregister removes an entry the caller is abandoning (deadline expiry).
// It reports whether the entry was still tabled here.
func (mc *muxConn) unregister(pe *muxPending) bool {
	seg := mc.seg(pe.id)
	seg.mu.Lock()
	cur, ok := seg.m[pe.id]
	if ok && cur == pe {
		delete(seg.m, pe.id)
		seg.mu.Unlock()
		mc.cl.inflight.Add(-1)
		mc.st.inflight.Add(-1)
		mc.cl.bandInflight[pe.band].Add(-1)
		return true
	}
	seg.mu.Unlock()
	return false
}

// take removes and returns the entry for id, used by the reactor when a
// reply arrives.
func (mc *muxConn) take(id uint32) (*muxPending, bool) {
	seg := mc.seg(id)
	seg.mu.Lock()
	pe, ok := seg.m[id]
	if ok {
		delete(seg.m, id)
	}
	seg.mu.Unlock()
	if ok {
		mc.cl.inflight.Add(-1)
		mc.st.inflight.Add(-1)
		mc.cl.bandInflight[pe.band].Add(-1)
	}
	return pe, ok
}

// pending reports how many entries are still tabled on the connection.
func (mc *muxConn) pending() int {
	n := 0
	for i := range mc.segs {
		seg := &mc.segs[i]
		seg.mu.Lock()
		n += len(seg.m)
		seg.mu.Unlock()
	}
	return n
}

// retire drains the connection out of service: it detaches from the stripe
// immediately — the next invoke routed there dials the stripe's (new) target
// — and closes in the background once the in-flight invocations drain,
// bounded by grace. The eventual close is ErrClosed-classified, so retiring
// a healthy connection during a Retarget never charges the stripe's breaker
// and loses nothing that was already accepted onto the wire.
func (mc *muxConn) retire(grace time.Duration) {
	mc.st.detach(mc)
	go func() {
		deadline := time.Now().Add(grace)
		for mc.pending() > 0 && !mc.dead.Load() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		mc.fail(fmt.Errorf("orb client: retired: %w", corba.ErrClosed))
	}()
}

// send writes one request frame: through the coalescer when configured
// (blocking until a vectored flush covers the frame), else directly under
// the write lock. When the client has a per-invoke deadline configured the
// write itself is bounded by it too — a peer that stopped reading must not
// wedge the submit path forever. Any write error (a partial frame
// desynchronises GIOP framing) kills the connection; with coalescing, many
// senders may observe the same error but only the flush owner reports it,
// preserving one-breaker-failure-per-wire-event.
func (mc *muxConn) send(wire []byte) error {
	if mc.co != nil {
		err, owner := mc.co.write(wire)
		if err != nil && owner {
			mc.sendFailed(err)
		}
		return err
	}
	mc.wmu.Lock()
	if t := mc.cl.invokeTimeout(); t > 0 {
		if wd, ok := mc.conn.(writeDeadliner); ok {
			_ = wd.SetWriteDeadline(time.Now().Add(t))
		}
	}
	_, err := mc.conn.Write(wire)
	mc.wmu.Unlock()
	if err != nil {
		mc.sendFailed(err)
	}
	return err
}

// sendFailed records one write fault, charges one breaker failure to the
// stripe, and kills the connection. The reactor's subsequent
// closed-connection exit is classified clean and not re-counted.
func (mc *muxConn) sendFailed(err error) {
	telemetry.RecordFault("orb.client.write", err)
	if mc.cl.res != nil {
		mc.st.brk.Failure()
	}
	mc.fail(fmt.Errorf("orb client: write: %w", mc.cl.mapWireErr(err)))
}

// fail kills the connection once: every pending entry completes with err
// (wrapped as a transport-level failure), the socket closes, the client
// detaches the connection, and — under supervision — a single breaker
// failure is recorded for the whole batch.
func (mc *muxConn) fail(err error) {
	mc.deadMu.Lock()
	if mc.dead.Load() {
		mc.deadMu.Unlock()
		return
	}
	mc.deadErr = err
	mc.dead.Store(true)
	mc.deadMu.Unlock()

	var victims []*muxPending
	for i := range mc.segs {
		seg := &mc.segs[i]
		seg.mu.Lock()
		for id, pe := range seg.m {
			delete(seg.m, id)
			victims = append(victims, pe)
		}
		seg.mu.Unlock()
	}

	_ = mc.conn.Close()
	mc.st.detach(mc)
	if n := len(victims); n > 0 {
		mc.cl.inflight.Add(-int64(n))
		mc.st.inflight.Add(-int64(n))
		telemetry.Record(telemetry.EvState, muxLabel, 0, 0, uint64(n))
	}
	for _, pe := range victims {
		mc.cl.bandInflight[pe.band].Add(-1)
		pe.complete(invokeResult{err: err})
	}
}

// reactor is the demultiplexing read loop: it frames replies off the
// connection into pooled refcounted buffers, matches each to its pending
// entry by request id, and completes the caller's channel with the reply
// payload still aliasing the arrival frame — the frame reference transfers
// to the caller on a successful complete, and the bytes are not copied on
// this path. Replies bearing unknown ids — stale answers to abandoned
// invocations, or corruption — are counted, released, and dropped without
// wedging the stream. The reactor exits when the connection dies, failing
// whatever is still in flight.
func (mc *muxConn) reactor() {
	defer mc.fr.Close()
	var rep giop.Reply
	var loc giop.LocateReply
	for {
		h, fb, err := mc.fr.NextFrame()
		if err != nil {
			mc.readFailed(err)
			return
		}
		if _, _, fatal := mc.handleFrame(h, fb, &rep, &loc, nil); fatal {
			return
		}
	}
}

// handleFrame demultiplexes one inbound frame: decode, match, complete.
// own, when non-nil, is the reading caller's entry (leader/follower mode):
// if the frame resolves it, the result is returned directly with mine=true
// instead of taking the completion-channel rendezvous. fatal reports that
// the frame killed the connection (fail has run; every tabled entry,
// including own, completes with the error).
func (mc *muxConn) handleFrame(h giop.Header, fb *giop.FrameBuf, rep *giop.Reply, loc *giop.LocateReply, own *muxPending) (res invokeResult, mine, fatal bool) {
	switch h.Type {
	case giop.MsgReply:
		if err := giop.DecodeReply(h.Order, fb.Body(), rep); err != nil {
			fb.Release()
			mc.readFailed(err)
			return invokeResult{}, false, true
		}
		if rep.TraceID != 0 {
			// The reply carried the server's span for a trace we opened:
			// record it so the client flight recorder holds the full
			// stitched round trip.
			telemetry.Record(telemetry.EvNetRecv, clientReplyLabel, rep.TraceID, rep.SpanID, uint64(len(fb.Body())))
		}
		pe, ok := mc.take(rep.RequestID)
		if !ok {
			fb.Release()
			muxStaleDropTotal.Inc()
			return invokeResult{}, false, false
		}
		mc.noteOrder(rep.RequestID)
		mc.brkSuccess()
		return mc.deliver(pe, replyResult(rep, fb), own)
	case giop.MsgLocateReply:
		err := giop.DecodeLocateReply(h.Order, fb.Body(), loc)
		fb.Release() // locate results carry no payload view
		if err != nil {
			mc.readFailed(err)
			return invokeResult{}, false, true
		}
		pe, ok := mc.take(loc.RequestID)
		if !ok || !pe.locate {
			muxStaleDropTotal.Inc()
			return invokeResult{}, false, false
		}
		mc.noteOrder(loc.RequestID)
		mc.brkSuccess()
		return mc.deliver(pe, invokeResult{here: loc.Status == giop.LocateObjectHere, fwd: loc.Forward}, own)
	case giop.MsgCloseConnection:
		fb.Release()
		mc.fail(fmt.Errorf("orb client: %w", corba.ErrClosed))
		return invokeResult{}, false, true
	default:
		// A request-direction or unknown message on the reply stream is
		// a protocol violation; the connection cannot be trusted.
		fb.Release()
		mc.fail(fmt.Errorf("orb client: unexpected %v message", h.Type))
		return invokeResult{}, false, true
	}
}

// deliver completes a taken entry. The leader's own entry short-circuits:
// the result is returned to the caller directly, skipping the channel
// rendezvous (the entry is moved to done by CAS so cancellation and failure
// paths observe a consistent state).
func (mc *muxConn) deliver(pe *muxPending, r invokeResult, own *muxPending) (invokeResult, bool, bool) {
	if pe == own {
		if pe.state.CompareAndSwap(pendingArmed, pendingDone) {
			return r, true, false
		}
		// A racing completion already committed (connection failer): its
		// result is the entry's fate; this frame reference never transferred.
		r.release()
		return <-pe.done, true, false
	}
	if !pe.complete(r) {
		// The caller cancelled between take and complete: the frame
		// reference never transferred.
		r.release()
		muxStaleDropTotal.Inc()
	}
	return invokeResult{}, false, false
}

// lead runs the caller-as-leader demux loop: the caller holds the token and
// reads frames, completing other callers' entries, until its own reply
// arrives or its invoke deadline expires. Exactly one token exists per
// connection; every exit path returns it to leaderCh (cap 1, never blocks).
// recycle reports whether pe may be recycled (false when the entry was
// cancelled on deadline expiry and abandoned to the collector).
func (mc *muxConn) lead(pe *muxPending, deadline time.Time) (res invokeResult, recycle bool) {
	cl := mc.cl
	var rep giop.Reply
	var loc giop.LocateReply
	for {
		if !deadline.IsZero() {
			if rd, ok := mc.conn.(readDeadliner); ok {
				_ = rd.SetReadDeadline(deadline)
			}
		}
		h, fb, err := mc.fr.NextFrame()
		if err != nil {
			if !deadline.IsZero() && errors.Is(err, os.ErrDeadlineExceeded) && !mc.dead.Load() {
				// Our own invoke deadline fired while leading. The resumable
				// FrameReader kept any partial frame; the connection stays up.
				// Hand the token to the next waiter, then resolve our entry
				// the same way a timed-out follower would.
				mc.leaderCh <- struct{}{}
				if cl.cancelPending(pe) {
					invokeTimeoutTotal.Inc()
					return invokeResult{err: fmt.Errorf("%w: no reply within %v", ErrDeadlineExceeded, cl.invokeTimeout())}, false
				}
				return <-pe.done, true
			}
			mc.fr.Close()
			mc.readFailed(err)
			mc.leaderCh <- struct{}{}
			// fail completed every tabled entry — ours included.
			return <-pe.done, true
		}
		res, mine, fatal := mc.handleFrame(h, fb, &rep, &loc, pe)
		if fatal {
			mc.fr.Close()
			mc.leaderCh <- struct{}{}
			return <-pe.done, true
		}
		if mine {
			mc.leaderCh <- struct{}{}
			return res, true
		}
	}
}

// noteOrder maintains the reorder counter: the reactor observing a
// completion below the highest completed id has seen replies cross.
func (mc *muxConn) noteOrder(id uint32) {
	if id < mc.maxDone {
		muxReorderTotal.Inc()
		return
	}
	mc.maxDone = id
}

// brkSuccess records a completed exchange with the stripe's breaker, if
// supervised.
func (mc *muxConn) brkSuccess() {
	if mc.cl.res != nil {
		mc.st.brk.Success()
	}
}

// readFailed classifies a reactor read error and kills the connection: a
// clean shutdown (client closed, peer closed between frames) fails pending
// entries with ErrClosed and stays off the fault log; anything else — a
// reply cut off mid-frame, an over-bound body — is a recorded fault that
// also counts one breaker failure.
func (mc *muxConn) readFailed(err error) {
	if err == io.EOF || mc.cl.closed.Load() || cleanClose(err) {
		mc.fail(fmt.Errorf("orb client: read: %w", corba.ErrClosed))
		return
	}
	telemetry.RecordFault("orb.client.read", err)
	if mc.cl.res != nil {
		mc.st.brk.Failure()
	}
	mc.fail(fmt.Errorf("orb client: read: %w", mc.cl.mapWireErr(wireErr("read", mc.cl.addr, err))))
}

// replyResult maps a decoded GIOP reply to the caller-visible result. A
// successful reply's payload still aliases the arrival frame; the frame
// reference rides the result to the caller, who releases it after copying
// the payload out (Invoke) or finishing with the view (InvokeView).
// Exception replies format their message — a copy — and the frame is
// released here.
func replyResult(rep *giop.Reply, fb *giop.FrameBuf) invokeResult {
	switch rep.Status {
	case giop.ReplyNoException:
		return invokeResult{payload: rep.Payload, frame: fb}
	case giop.ReplyUserException:
		err := fmt.Errorf("%w: %s", corba.ErrUserException, rep.Payload)
		fb.Release()
		return invokeResult{err: err}
	default:
		var err error
		if rep.RetryAfterNs > 0 {
			// A retry-after hint marks the exception as a shed: surface it as
			// a ShedError so the retry loop can pace to the server's horizon.
			err = &ShedError{RetryAfter: time.Duration(rep.RetryAfterNs), Detail: string(rep.Payload)}
		} else {
			err = fmt.Errorf("%w: %s", corba.ErrSystemException, rep.Payload)
		}
		fb.Release()
		return invokeResult{err: err}
	}
}
