package orb

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/corba"
	"repro/internal/sched"
	"repro/internal/transport"
)

func startEchoServer(t *testing.T, net transport.Network, addr string, cfg ServerConfig) *Server {
	t.Helper()
	cfg.Network = net
	cfg.Addr = addr
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.RegisterServant("echo", corba.EchoServant{})
	srv.ServeBackground()
	t.Cleanup(srv.Close)
	return srv
}

func dial(t *testing.T, net transport.Network, addr string, cfg ClientConfig) *Client {
	t.Helper()
	cfg.Network = net
	cfg.Addr = addr
	cl, err := DialClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestEchoRoundTripInproc(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	cl := dial(t, net, srv.Addr(), ClientConfig{})

	payload := []byte("hello through the ORB")
	got, err := cl.Invoke("echo", "echo", payload, sched.NormPriority)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("echo = %q, want %q", got, payload)
	}

	// A second call exercises re-instantiation of the transient
	// MessageProcessing / RequestProcessing components.
	got2, err := cl.Invoke("echo", "echo", []byte("again"), sched.NormPriority)
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != "again" {
		t.Errorf("second echo = %q", got2)
	}

	if n, err := cl.App().Errors(); n != 0 {
		t.Errorf("client handler errors: %d (%v)", n, err)
	}
	if n, err := srv.App().Errors(); n != 0 {
		t.Errorf("server handler errors: %d (%v)", n, err)
	}
}

func TestEchoRoundTripTCP(t *testing.T) {
	srv := startEchoServer(t, transport.TCP{}, "127.0.0.1:0", ServerConfig{})
	cl := dial(t, transport.TCP{}, srv.Addr(), ClientConfig{})
	got, err := cl.Invoke("echo", "echo", []byte("over tcp"), sched.NormPriority)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "over tcp" {
		t.Errorf("echo = %q", got)
	}
}

func TestEchoWithScopePoolsAndSynchronous(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{ScopePoolCount: 2, Synchronous: true})
	cl := dial(t, net, srv.Addr(), ClientConfig{ScopePoolCount: 2, Synchronous: true})

	for i := 0; i < 20; i++ {
		msg := []byte(fmt.Sprintf("msg-%d", i))
		got, err := cl.Invoke("echo", "echo", msg, sched.NormPriority)
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("invoke %d: got %q", i, got)
		}
	}
	// The client scope pool must be recycling MessageProcessing areas.
	created, reused, _ := cl.App().ScopePool(2).Stats()
	if created > 4 {
		t.Errorf("client MP scopes created = %d, pooling not effective", created)
	}
	if reused < 10 {
		t.Errorf("client MP scopes reused = %d", reused)
	}
	// And the server pool likewise for RequestProcessing.
	sc, sr, _ := srv.App().ScopePool(3).Stats()
	if sc > 4 || sr < 10 {
		t.Errorf("server RP scopes: created %d reused %d", sc, sr)
	}
}

func TestOnewayInvocation(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	cl := dial(t, net, srv.Addr(), ClientConfig{})

	if err := cl.InvokeOneway("echo", "ping", nil, sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	// A subsequent two-way call confirms the stream stayed in sync.
	if _, err := cl.Invoke("echo", "ping", nil, sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	_ = srv
}

func TestUnknownObjectAndOperation(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	cl := dial(t, net, srv.Addr(), ClientConfig{})
	_ = srv

	if _, err := cl.Invoke("ghost", "echo", nil, sched.NormPriority); !errors.Is(err, corba.ErrSystemException) {
		t.Errorf("unknown object err = %v, want system exception", err)
	}
	if _, err := cl.Invoke("echo", "frobnicate", nil, sched.NormPriority); !errors.Is(err, corba.ErrUserException) {
		t.Errorf("unknown op err = %v, want user exception", err)
	}
	// The connection survives exceptions.
	if _, err := cl.Invoke("echo", "ping", nil, sched.NormPriority); err != nil {
		t.Errorf("post-exception call: %v", err)
	}
}

func TestMultipleClients(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})

	clients := make([]*Client, 3)
	for i := range clients {
		clients[i] = dial(t, net, srv.Addr(), ClientConfig{})
	}
	for i, cl := range clients {
		msg := []byte(fmt.Sprintf("client-%d", i))
		got, err := cl.Invoke("echo", "echo", msg, sched.NormPriority)
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("client %d echo = %q", i, got)
		}
	}
}

func TestCustomServant(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	srv.RegisterServant("calc", corba.ServantFunc(func(op string, in []byte) ([]byte, error) {
		if op != "sum" {
			return nil, fmt.Errorf("no such op")
		}
		var sum byte
		for _, b := range in {
			sum += b
		}
		return []byte{sum}, nil
	}))
	cl := dial(t, net, srv.Addr(), ClientConfig{})
	got, err := cl.Invoke("calc", "sum", []byte{1, 2, 3}, sched.NormPriority)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 6 {
		t.Errorf("sum = %v", got)
	}
}

func TestClientCloseRejectsInvokes(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	cl := dial(t, net, srv.Addr(), ClientConfig{})
	if _, err := cl.Invoke("echo", "ping", nil, sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if _, err := cl.Invoke("echo", "ping", nil, sched.NormPriority); !errors.Is(err, corba.ErrClosed) {
		t.Errorf("invoke after close err = %v", err)
	}
	cl.Close() // idempotent
	_ = srv
}

func TestServerCloseIsClean(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	cl := dial(t, net, srv.Addr(), ClientConfig{})
	if _, err := cl.Invoke("echo", "ping", nil, sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent
	// Invocations now fail (connection torn down).
	if _, err := cl.Invoke("echo", "ping", nil, sched.NormPriority); err == nil {
		t.Error("invoke against closed server succeeded")
	}
}

func TestLargePayloadWithinBound(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{MaxMessage: 8192})
	cl := dial(t, net, srv.Addr(), ClientConfig{MaxMessage: 8192})
	_ = srv
	payload := bytes.Repeat([]byte{0xA5}, 4096)
	got, err := cl.Invoke("echo", "echo", payload, sched.NormPriority)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("large payload corrupted")
	}
}

func TestNilNetworkRejected(t *testing.T) {
	if _, err := DialClient(ClientConfig{}); err == nil {
		t.Error("nil network client accepted")
	}
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("nil network server accepted")
	}
}
