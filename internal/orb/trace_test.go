package orb

import (
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// TestInvokeProducesStitchedTrace verifies the cross-ORB trace contract: one
// Invoke leaves a single trace id in the flight recorder whose events span
// the client (span start/end), the server (its own span under the same trace,
// carried over the wire in the GIOP service context), and the reply receipt
// that stitches the server span back into the client's recorder.
func TestInvokeProducesStitchedTrace(t *testing.T) {
	telemetry.Verbose(true)
	defer telemetry.Verbose(false)
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	cl := dial(t, net, srv.Addr(), ClientConfig{})

	if _, err := cl.Invoke("echo", "echo", []byte("traced"), sched.NormPriority); err != nil {
		t.Fatal(err)
	}

	// Client and server share this process's ring, so the whole round trip
	// lands in telemetry.Default. Find the newest client span start.
	var trace uint64
	for _, ev := range telemetry.Default.Ring().Snapshot() {
		if ev.Kind == telemetry.EvSpanStart && ev.Label == "orb.client.invoke" {
			trace = ev.Trace // snapshot is oldest→newest; keep the last
		}
	}
	if trace == 0 {
		t.Fatal("no client span start in the flight recorder")
	}

	// The server's span end is recorded by a defer that can run just after
	// the client unblocks, so poll briefly for the complete picture.
	deadline := time.Now().Add(2 * time.Second)
	for {
		var clientStart, clientEnd, serverStart, serverEnd, replyRecv bool
		var clientSpan, serverSpan uint64
		for _, ev := range telemetry.Default.Ring().TraceEvents(trace) {
			switch {
			case ev.Label == "orb.client.invoke" && ev.Kind == telemetry.EvSpanStart:
				clientStart, clientSpan = true, ev.Span
			case ev.Label == "orb.client.invoke" && ev.Kind == telemetry.EvSpanEnd:
				clientEnd = true
			case ev.Label == "orb.server.request" && ev.Kind == telemetry.EvSpanStart:
				serverStart, serverSpan = true, ev.Span
			case ev.Label == "orb.server.request" && ev.Kind == telemetry.EvSpanEnd:
				serverEnd = true
			case ev.Label == "orb.client.reply" && ev.Kind == telemetry.EvNetRecv:
				replyRecv = true
			}
		}
		if clientStart && clientEnd && serverStart && serverEnd && replyRecv {
			if clientSpan == serverSpan {
				t.Fatalf("client and server spans share id %x", clientSpan)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("incomplete trace %x: clientStart=%v clientEnd=%v serverStart=%v serverEnd=%v replyRecv=%v",
				trace, clientStart, clientEnd, serverStart, serverEnd, replyRecv)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestInvokeUntracedWhenDisabled checks the toggle: with telemetry off the
// request goes out with a zero trace id and the server opens no span.
func TestInvokeUntracedWhenDisabled(t *testing.T) {
	telemetry.Enable(false)
	defer telemetry.Enable(true)

	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	cl := dial(t, net, srv.Addr(), ClientConfig{})

	before := len(telemetry.Default.Ring().Snapshot())
	if _, err := cl.Invoke("echo", "echo", []byte("dark"), sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	if after := len(telemetry.Default.Ring().Snapshot()); after != before {
		t.Errorf("ring grew from %d to %d events with telemetry disabled", before, after)
	}
}
