package orb

import (
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/transport"
)

// TestSteadyStateMemory drives thousands of invocations and verifies the
// central RTSJ claim the whole design serves: in steady state, no memory
// region grows. Immortal usage is flat, the scope pools balance, and every
// pooled message returns.
func TestSteadyStateMemory(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{ScopePoolCount: 2})
	cl := dial(t, net, srv.Addr(), ClientConfig{ScopePoolCount: 2})

	payload := make([]byte, 256)
	invoke := func() {
		t.Helper()
		got, err := cl.Invoke("echo", "echo", payload, sched.NormPriority)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(payload) {
			t.Fatal("short echo")
		}
	}

	// Warm up until every lazy structure exists.
	for i := 0; i < 50; i++ {
		invoke()
	}
	clientImmortal := cl.App().Model().Immortal().Used()
	serverImmortal := srv.App().Model().Immortal().Used()

	for i := 0; i < 2000; i++ {
		invoke()
	}

	if got := cl.App().Model().Immortal().Used(); got != clientImmortal {
		t.Errorf("client immortal grew: %d -> %d bytes", clientImmortal, got)
	}
	if got := srv.App().Model().Immortal().Used(); got != serverImmortal {
		t.Errorf("server immortal grew: %d -> %d bytes", serverImmortal, got)
	}

	// The per-request scope pools recycle once per invocation: every
	// request marshalled client-side and every reply marshalled server-side
	// drew a pooled area and gave it back.
	rc, rr, _ := cl.reqPool.Stats()
	if rc > 8 {
		t.Errorf("client request areas created = %d; pool not recycling", rc)
	}
	if rr < 2000 {
		t.Errorf("client request areas reused = %d", rr)
	}
	pc, pr, _ := srv.repPool.Stats()
	if pc > 8 || pr < 2000 {
		t.Errorf("server reply areas: created %d reused %d", pc, pr)
	}

	// The component instantiation pools recycle at quiescence. Back-to-back
	// pipelined traffic keeps MessageProcessing and RequestProcessing warm
	// (the next request reaches the port before the previous dispatch
	// finishes tearing down), so quiescence is only reached between paced
	// invocations — drive some and watch the pools cycle.
	created, reused, _ := cl.App().ScopePool(2).Stats()
	sc, sr, _ := srv.App().ScopePool(3).Stats()
	for i := 0; i < 50; i++ {
		invoke()
		time.Sleep(500 * time.Microsecond)
	}
	if _, r2, _ := cl.App().ScopePool(2).Stats(); r2-reused < 40 {
		t.Errorf("client MP areas reused %d times across 50 paced invokes", r2-reused)
	}
	if c2, _, _ := cl.App().ScopePool(2).Stats(); c2 > created+2 {
		t.Errorf("client MP pool grew under paced load: %d -> %d areas", created, c2)
	}
	if sc2, sr2, _ := srv.App().ScopePool(3).Stats(); sr2-sr < 40 || sc2 > sc+2 {
		t.Errorf("server RP areas: created %d->%d reused +%d", sc, sc2, sr2-sr)
	}

	// All pooled messages are back home on both sides.
	clOrb := cl.App().Component("ORB")
	if _, inFlight, _, _ := clOrb.SMM().MsgPoolStats("InvokeRequest"); inFlight != 0 {
		t.Errorf("client ORB pool in flight = %d", inFlight)
	}
}
