package orb

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/transport"
)

// TestSteadyStateMemory drives thousands of invocations and verifies the
// central RTSJ claim the whole design serves: in steady state, no memory
// region grows. Immortal usage is flat, the scope pools balance, and every
// pooled message returns.
func TestSteadyStateMemory(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{ScopePoolCount: 2})
	cl := dial(t, net, srv.Addr(), ClientConfig{ScopePoolCount: 2})

	payload := make([]byte, 256)
	invoke := func() {
		t.Helper()
		got, err := cl.Invoke("echo", "echo", payload, sched.NormPriority)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(payload) {
			t.Fatal("short echo")
		}
	}

	// Warm up until every lazy structure exists.
	for i := 0; i < 50; i++ {
		invoke()
	}
	clientImmortal := cl.App().Model().Immortal().Used()
	serverImmortal := srv.App().Model().Immortal().Used()

	for i := 0; i < 2000; i++ {
		invoke()
	}

	if got := cl.App().Model().Immortal().Used(); got != clientImmortal {
		t.Errorf("client immortal grew: %d -> %d bytes", clientImmortal, got)
	}
	if got := srv.App().Model().Immortal().Used(); got != serverImmortal {
		t.Errorf("server immortal grew: %d -> %d bytes", serverImmortal, got)
	}

	// The MessageProcessing scope pool recycles; new areas stopped being
	// created after warm-up.
	created, reused, _ := cl.App().ScopePool(2).Stats()
	if created > 6 {
		t.Errorf("client MP areas created = %d; pool not recycling", created)
	}
	if reused < 2000 {
		t.Errorf("client MP areas reused = %d", reused)
	}
	sc, sr, _ := srv.App().ScopePool(3).Stats()
	if sc > 6 || sr < 2000 {
		t.Errorf("server RP areas: created %d reused %d", sc, sr)
	}

	// All pooled messages are back home on both sides.
	clOrb := cl.App().Component("ORB")
	if _, inFlight, _, _ := clOrb.SMM().MsgPoolStats("InvokeRequest"); inFlight != 0 {
		t.Errorf("client ORB pool in flight = %d", inFlight)
	}
}
