// Package orb is the paper's "real-world example": a simple RT-CORBA ORB
// composed from Compadres components (§3.2, Fig. 10).
//
// The client is a three-level scoped structure: the ORB component lives in
// immortal memory; the Transport component is a scoped child created when
// the first request arrives and holds the connection; a MessageProcessing
// component is created per request in the deepest scope, marshals the GIOP
// request there, performs the round trip, and destroys itself — its scope
// is reclaimed (or returned to the level's pool) when it goes quiescent.
//
// The server is a four-level structure: ORB (immortal) → POA/Acceptor
// (scoped, accepts connections) → one Transport per connection (scoped,
// reads framed requests) → one RequestProcessing per request (deepest
// scope, demarshals, invokes the servant, marshals and writes the reply,
// then destroys itself).
//
// Scope levels: the paper counts immortal memory as level 1, so its level-2
// client Transport is a level-1 child here, and the server's level-4
// RequestProcessing is a level-3 child.
//
// Both this ORB and the hand-coded internal/rtzen baseline share the
// internal/giop codec, the internal/transport networks, and the
// internal/corba servants, so the Fig. 11 comparison isolates the component
// framework's overhead.
package orb
