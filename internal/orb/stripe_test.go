package orb

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/sched"
	"repro/internal/transport"
)

// stripesWithTraffic counts stripes that routed at least one invocation.
func stripesWithTraffic(cl *Client) int {
	n := 0
	for _, st := range cl.stripes {
		if st.sent.Load() > 0 {
			n++
		}
	}
	return n
}

// TestStripesSpreadBands drives traffic across every priority band through
// a 4-stripe pool and demands the load lands on more than one stripe:
// band-sticky selection pins a band while it has work in flight, but idle
// bands re-balance via power-of-two-choices.
func TestStripesSpreadBands(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{Concurrency: 8})
	cl := dial(t, net, srv.Addr(), ClientConfig{Channels: 4, PipelineDepth: 32})

	if len(cl.stripes) != 4 {
		t.Fatalf("Channels=4 built %d stripes", len(cl.stripes))
	}
	for round := 0; round < 4; round++ {
		for p := sched.MinPriority; p <= sched.MaxPriority; p++ {
			payload := []byte(fmt.Sprintf("r%d-p%d", round, p))
			got, err := cl.Invoke("echo", "echo", payload, p)
			if err != nil {
				t.Fatalf("round %d prio %d: %v", round, p, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("round %d prio %d: got %q", round, p, got)
			}
		}
	}
	if n := stripesWithTraffic(cl); n < 2 {
		t.Errorf("all traffic landed on %d stripe(s); striping is not spreading load", n)
	}
	var total int64
	for _, st := range cl.stripes {
		total += st.sent.Load()
	}
	if want := int64(4 * int(sched.MaxPriority)); total != want {
		t.Errorf("stripes recorded %d sends, want %d", total, want)
	}
}

// TestStripeFailoverIsolated kills one stripe's connection and demands the
// failure stays contained: the surviving stripes keep serving with their
// breakers closed, and the dead stripe redials and rejoins the pool once
// load drifts back to it.
func TestStripeFailoverIsolated(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{Concurrency: 8})
	cl := dial(t, net, srv.Addr(), ClientConfig{
		Channels:   2,
		Resilience: &ResilienceConfig{BreakerThreshold: 4, MaxRetries: 0},
	})

	// The Transport component instantiates (and dials every stripe) on the
	// first submission; warm it up before poking at connection state.
	if _, err := cl.Invoke("echo", "echo", []byte("warmup"), sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	for _, st := range cl.stripes {
		if !st.live() {
			t.Fatalf("stripe %d not connected after warm-up", st.idx)
		}
	}
	// Sever stripe 0's wire out from under it.
	cl.stripes[0].cur.Load().conn.Close()
	waitFor(t, func() bool { return !cl.stripes[0].live() })

	if st := cl.stripes[1].brk.State(); st != breakerClosed {
		t.Fatalf("stripe 1's breaker tripped (%d) by stripe 0's death", st)
	}
	// Keep invoking: every call must succeed (the survivor carries them, or
	// the dead stripe redials), and load must eventually drift back onto
	// stripe 0 and revive it.
	for i := 0; i < 400 && !cl.stripes[0].live(); i++ {
		p := sched.MinPriority + sched.Priority(i%31)
		payload := []byte(fmt.Sprintf("i%d", i))
		got, err := cl.Invoke("echo", "echo", payload, p)
		if err != nil {
			t.Fatalf("invoke %d after stripe death: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("invoke %d: got %q", i, got)
		}
	}
	if !cl.stripes[0].live() {
		t.Error("stripe 0 never redialled; dead stripes should rejoin the pool")
	}
	for i, st := range cl.stripes {
		if s := st.brk.State(); s != breakerClosed {
			t.Errorf("stripe %d breaker state = %d after recovery, want closed", i, s)
		}
	}
}

// TestStripedStorm is the full-stack soak: 64 concurrent invokers across
// all priority bands, 4 stripes, write coalescing on both ends. Every reply
// must match its request and the pending tables must drain.
func TestStripedStorm(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{
		Concurrency: 16, Coalesce: &CoalesceConfig{},
	})
	cl := dial(t, net, srv.Addr(), ClientConfig{
		Channels: 4, PipelineDepth: 64, Coalesce: &CoalesceConfig{},
	})

	const workers, rounds = 64, 20
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := sched.MinPriority + sched.Priority(w%31)
			for r := 0; r < rounds; r++ {
				payload := []byte(fmt.Sprintf("w%d-r%d", w, r))
				got, err := cl.Invoke("echo", "echo", payload, p)
				if err != nil {
					errs[w] = fmt.Errorf("round %d: %w", r, err)
					return
				}
				if !bytes.Equal(got, payload) {
					errs[w] = fmt.Errorf("round %d: cross-talk: sent %q got %q", r, payload, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", w, err)
		}
	}
	if got := cl.Inflight(); got != 0 {
		t.Errorf("inflight = %d after storm", got)
	}
	if n := stripesWithTraffic(cl); n < 2 {
		t.Errorf("storm used %d stripe(s); expected the pool to spread", n)
	}
}
