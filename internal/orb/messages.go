package orb

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/giop"
	"repro/internal/overload"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// Payload-copy accounting for the zero-copy request path. The steady-state
// pipeline moves payload bytes socket→servant (and reply→caller) without
// intermediate copies; the sites that still copy — the legacy Invoke API
// copying a reply out of its arrival frame before release, and explicit
// FrameBuf/Loan Detach escapes — count here, so "zero copies per op" is a
// measured property, not a claim. Exported at /metrics with the compadres_
// prefix; bench4 reports bytes-copied-per-op from these.
var (
	payloadCopyTotal = telemetry.NewCounter("payload_copy_total")
	payloadCopyBytes = telemetry.NewCounter("payload_copy_bytes")
)

// countPayloadCopy records one payload copy of n bytes.
func countPayloadCopy(n int) {
	payloadCopyTotal.Inc()
	payloadCopyBytes.Add(int64(n))
}

// invokeResult carries a completed invocation back to the caller; here is
// the answer of a LocateReply. When frame is non-nil, payload aliases the
// arrival frame's buffer and ownership of one frame reference travels with
// the result: whoever receives it from the completion channel must release
// the frame once the payload has been consumed (copied out, or viewed under
// InvokeView). Error results never carry a frame.
type invokeResult struct {
	payload []byte
	err     error
	here    bool
	// fwd is a LocateReply's forwarding-address list (LocateObjectForward):
	// the members of the server group actually hosting the probed object.
	fwd   []string
	frame *giop.FrameBuf
}

// release drops the result's frame reference, if any.
func (r *invokeResult) release() {
	if r.frame != nil {
		r.frame.Release()
		r.frame = nil
	}
}

// invokeMsg travels from the client ORB component through the Transport to
// the MessageProcessing component. Each Invoke installs its own pending
// entry, so pooled reuse cannot cross replies between concurrent callers.
// keyBuf is a message-owned copy of the object key bytes (capacity reused
// across pool cycles) so marshalling needs no string→[]byte conversion.
type invokeMsg struct {
	id      uint32
	key     string
	keyBuf  []byte
	op      string
	payload []byte
	oneway  bool
	prio    sched.Priority
	pe      *muxPending
	// st is the stripe the invocation was routed to at Invoke time; the
	// submit path dials/uses that stripe's connection.
	st *stripe
	// trace and span identify the caller's trace context; they ride the
	// invocation through the component structure and onto the wire as a
	// GIOP service context, so client and server flight recorders can be
	// stitched into one trace. Zero means untraced.
	trace uint64
	span  uint64
}

// Reset implements core.Message; it keeps keyBuf's capacity so pooled
// messages stop allocating in steady state.
func (m *invokeMsg) Reset() {
	kb := m.keyBuf[:0]
	*m = invokeMsg{}
	m.keyBuf = kb
}

// setKey records the object key, copying its bytes into the message-owned
// buffer.
func (m *invokeMsg) setKey(key string) {
	m.key = key
	m.keyBuf = append(m.keyBuf[:0], key...)
}

// copyFrom copies an invocation between pooled messages, keeping the
// destination's own key buffer (the source message is recycled as soon as
// its handler returns, while the copy may still be marshalling). The payload
// slice header aliases the caller's bytes — the caller blocks in await until
// the invocation completes, so no byte copy is needed.
func (m *invokeMsg) copyFrom(src *invokeMsg) {
	kb := m.keyBuf
	*m = *src
	m.keyBuf = append(kb[:0], src.keyBuf...)
}

var invokeType = core.MessageType{
	Name: "InvokeRequest",
	Size: 128,
	New:  func() core.Message { return &invokeMsg{} },
}

// requestMsg travels from a server Transport to its RequestProcessing
// child: one framed GIOP request. The message owns one reference on the
// arrival frame; raw aliases the frame's body, so the request bytes travel
// socket→servant with no intermediate copy. Reset — which every pooled
// recycle path runs, including dispatch-error unwinds — releases the
// reference, bounding the frame's life to the dispatch turn.
type requestMsg struct {
	raw   []byte
	frame *giop.FrameBuf
	order giop.ByteOrder
	conn  *serverConn

	// Overload-control feedback (nil ctrl when the server runs without a
	// controller): the request holds one admitted in-flight slot from Admit
	// until exactly one of done (completion latency recorded), OnShed
	// (evicted or expired in the queue), or Reset (any other unwind —
	// dispatch failure, pool recycle after an error) releases it. admitAt is
	// the admission timestamp and class the fair-queue lane from the Admit
	// decision.
	ctrl    *overload.Controller
	admitAt int64
	class   uint8

	// inflight is the server-wide dispatched-request counter (Server.Drain's
	// quiescence signal), incremented when dispatch hands the request to the
	// port and decremented exactly once when the message recycles.
	inflight *atomic.Int64
}

// Reset implements core.Message; it releases the message's frame reference.
// A still-armed controller slot means the message unwound without reaching
// done or OnShed (a failed Send recycles through here): release the slot as
// a drop, never as a latency sample.
func (m *requestMsg) Reset() {
	if m.inflight != nil {
		m.inflight.Add(-1)
		m.inflight = nil
	}
	if m.ctrl != nil {
		m.ctrl.Dropped()
		m.ctrl = nil
	}
	if m.frame != nil {
		m.frame.Release()
		m.frame = nil
	}
	m.raw = nil
	m.order = giop.BigEndian
	m.conn = nil
	m.admitAt = 0
	m.class = 0
}

// done records the request's completion latency with the controller and
// disarms the slot so Reset will not double-release it.
func (m *requestMsg) done() {
	if m.ctrl == nil {
		return
	}
	m.ctrl.Done(telemetry.Now() - m.admitAt)
	m.ctrl = nil
}

// TenantClass implements core.TenantClassed: fair-mode request ports divide
// a priority band's bandwidth across these lanes.
func (m *requestMsg) TenantClass() uint8 { return m.class }

// OnShed implements core.ShedAware: the queue evicted this request (overflow
// victim) or shed it at dequeue (deadline already passed). The in-flight slot
// releases as a drop — shed work never executed, so it is not a latency
// signal — and, when the client expects a response, a system-exception reply
// tells it the request was shed rather than leaving the call to hang until
// its invoke timeout.
func (m *requestMsg) OnShed() {
	if m.ctrl == nil {
		return
	}
	ctrl := m.ctrl
	ctrl.Dropped()
	m.ctrl = nil
	if m.conn == nil {
		return
	}
	if info, ok := giop.PeekRequestInfo(m.order, m.raw); ok && info.ResponseExpected {
		writeShedReply(m.conn, m.order, info.RequestID, int64(ctrl.RetryAfter()))
	}
}

// setFrame adopts one frame reference: raw aliases the frame body and the
// reference is released by Reset when the message is recycled.
func (m *requestMsg) setFrame(fb *giop.FrameBuf, order giop.ByteOrder) {
	m.frame = fb
	m.raw = fb.Body()
	m.order = order
}

var requestType = core.MessageType{
	Name: "GIOPRequest",
	Size: 256,
	New:  func() core.Message { return &requestMsg{} },
}
