package orb

import (
	"repro/internal/core"
	"repro/internal/giop"
	"repro/internal/sched"
)

// invokeResult carries a completed invocation back to the caller.
type invokeResult struct {
	payload []byte
	err     error
}

// invokeMsg travels from the client ORB component through the Transport to
// the MessageProcessing component. Each Invoke installs a fresh done
// channel, so pooled reuse cannot cross replies between concurrent callers.
type invokeMsg struct {
	id      uint32
	key     string
	op      string
	payload []byte
	oneway  bool
	prio    sched.Priority
	done    chan invokeResult
}

// Reset implements core.Message.
func (m *invokeMsg) Reset() {
	*m = invokeMsg{}
}

var invokeType = core.MessageType{
	Name: "InvokeRequest",
	Size: 128,
	New:  func() core.Message { return &invokeMsg{} },
}

// requestMsg travels from a server Transport to its RequestProcessing
// child: one framed GIOP request body. The raw buffer is owned by the
// message and reused across pool cycles.
type requestMsg struct {
	raw   []byte
	order giop.ByteOrder
	conn  *serverConn
}

// Reset implements core.Message; it keeps the buffer capacity so pooled
// messages stop allocating in steady state.
func (m *requestMsg) Reset() {
	m.raw = m.raw[:0]
	m.order = giop.BigEndian
	m.conn = nil
}

// setRaw copies one frame body into the message-owned buffer.
func (m *requestMsg) setRaw(b []byte) {
	m.raw = append(m.raw[:0], b...)
}

var requestType = core.MessageType{
	Name: "GIOPRequest",
	Size: 256,
	New:  func() core.Message { return &requestMsg{} },
}
