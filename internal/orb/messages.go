package orb

import (
	"repro/internal/core"
	"repro/internal/giop"
	"repro/internal/sched"
)

// invokeResult carries a completed invocation back to the caller; here is
// the answer of a LocateReply.
type invokeResult struct {
	payload []byte
	err     error
	here    bool
}

// invokeMsg travels from the client ORB component through the Transport to
// the MessageProcessing component. Each Invoke installs its own pending
// entry, so pooled reuse cannot cross replies between concurrent callers.
// keyBuf is a message-owned copy of the object key bytes (capacity reused
// across pool cycles) so marshalling needs no string→[]byte conversion.
type invokeMsg struct {
	id      uint32
	key     string
	keyBuf  []byte
	op      string
	payload []byte
	oneway  bool
	prio    sched.Priority
	pe      *muxPending
	// st is the stripe the invocation was routed to at Invoke time; the
	// submit path dials/uses that stripe's connection.
	st *stripe
	// trace and span identify the caller's trace context; they ride the
	// invocation through the component structure and onto the wire as a
	// GIOP service context, so client and server flight recorders can be
	// stitched into one trace. Zero means untraced.
	trace uint64
	span  uint64
}

// Reset implements core.Message; it keeps keyBuf's capacity so pooled
// messages stop allocating in steady state.
func (m *invokeMsg) Reset() {
	kb := m.keyBuf[:0]
	*m = invokeMsg{}
	m.keyBuf = kb
}

// setKey records the object key, copying its bytes into the message-owned
// buffer.
func (m *invokeMsg) setKey(key string) {
	m.key = key
	m.keyBuf = append(m.keyBuf[:0], key...)
}

// copyFrom copies an invocation between pooled messages, keeping the
// destination's own key buffer (the source message is recycled as soon as
// its handler returns, while the copy may still be marshalling).
func (m *invokeMsg) copyFrom(src *invokeMsg) {
	kb := m.keyBuf
	*m = *src
	m.keyBuf = append(kb[:0], src.keyBuf...)
}

var invokeType = core.MessageType{
	Name: "InvokeRequest",
	Size: 128,
	New:  func() core.Message { return &invokeMsg{} },
}

// requestMsg travels from a server Transport to its RequestProcessing
// child: one framed GIOP request body. The raw buffer is owned by the
// message and reused across pool cycles.
type requestMsg struct {
	raw   []byte
	order giop.ByteOrder
	conn  *serverConn
}

// Reset implements core.Message; it keeps the buffer capacity so pooled
// messages stop allocating in steady state.
func (m *requestMsg) Reset() {
	m.raw = m.raw[:0]
	m.order = giop.BigEndian
	m.conn = nil
}

// setRaw copies one frame body into the message-owned buffer.
func (m *requestMsg) setRaw(b []byte) {
	m.raw = append(m.raw[:0], b...)
}

var requestType = core.MessageType{
	Name: "GIOPRequest",
	Size: 256,
	New:  func() core.Message { return &requestMsg{} },
}
