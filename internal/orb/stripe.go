package orb

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/corba"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// This file is the striped channel pool: ClientConfig.Channels = N opens N
// multiplexed connections ("stripes") to the same server and spreads
// invocations across them. Selection is power-of-two-choices on per-stripe
// in-flight count, made sticky per priority band: while a band has
// invocations in flight its traffic stays on one stripe, so the RT-CORBA
// guarantee that a stripe's writer serialises same-priority requests in
// submission order is preserved — striping reorders traffic between bands,
// never within one. Resilience state is per stripe: each has its own
// circuit breaker and single-flight redial, so one dead stripe sheds its
// load onto the others without tripping the whole client open.

// bandCount is the number of priority bands (sched.MaxPriority plus the
// unused zero slot).
const bandCount = int(sched.MaxPriority) + 1

// maxChannels bounds ClientConfig.Channels.
const maxChannels = 32

// bandOf maps a priority to its band index; out-of-band priorities clamp.
func bandOf(prio sched.Priority) int32 { return int32(prio.Clamp()) }

// stripe is one multiplexed connection slot: the live connection (nil when
// disconnected), its single-flight redial lock, its in-flight count, and —
// under supervision — its own circuit breaker.
type stripe struct {
	cl  *Client
	idx int

	// addr is the stripe's current dial target. With a single-address client
	// every stripe targets ClientConfig.Addr; with a replica set (Addrs, or a
	// Retarget call) stripes spread round-robin across the members, and a
	// failed dial may move the stripe to a surviving member (replica.go).
	addr atomic.Pointer[string]

	// cur is the stripe's live connection; nil when disconnected. cmu
	// serialises redials so a wire fault stranding N callers triggers one
	// supervised redial on this stripe, not N.
	cur atomic.Pointer[muxConn]
	cmu sync.Mutex

	inflight atomic.Int64
	// sent counts invocations routed to this stripe (selection
	// observability, exercised by the stripe tests).
	sent  atomic.Int64
	brk   breaker
	gauge *telemetry.GaugeHandle
}

// live reports whether the stripe has a connection up right now.
func (st *stripe) live() bool { return st.cur.Load() != nil }

// target returns the stripe's current dial address.
func (st *stripe) target() string {
	if p := st.addr.Load(); p != nil {
		return *p
	}
	return st.cl.addr
}

// setTarget moves the stripe's dial address.
func (st *stripe) setTarget(a string) { st.addr.Store(&a) }

// conn returns the stripe's live connection, redialling under the stripe's
// single-flight lock when supervision is enabled and the previous
// connection died.
func (st *stripe) conn() (*muxConn, error) {
	if mc := st.cur.Load(); mc != nil {
		return mc, nil
	}
	cl := st.cl
	if cl.closed.Load() || cl.res == nil {
		return nil, corba.ErrClosed
	}
	st.cmu.Lock()
	defer st.cmu.Unlock()
	if mc := st.cur.Load(); mc != nil {
		// Another caller redialled while we waited.
		return mc, nil
	}
	if cl.closed.Load() {
		return nil, corba.ErrClosed
	}
	addr := st.target()
	conn, err := cl.network.Dial(addr)
	if err != nil && cl.resolve != nil {
		// The stripe's member is unreachable: refresh the replica set and try
		// one surviving member before charging the breaker. This is the
		// failover hop — a killed replica costs its stripe one resolve and one
		// extra dial, not an open circuit.
		if alt, ok := cl.failoverTarget(addr); ok {
			if conn, err = cl.network.Dial(alt); err == nil {
				st.setTarget(alt)
			}
		}
	}
	if err != nil {
		telemetry.RecordFault("orb.client.redial", err)
		st.brk.Failure()
		return nil, fmt.Errorf("orb client redial %q: %w", addr, err)
	}
	mc := newMuxConn(st, conn)
	st.cur.Store(mc)
	reconnectTotal.Inc()
	telemetry.Record(telemetry.EvState, connLabel, 0, 0, connReconnected)
	return mc, nil
}

// detach clears the stripe's connection slot if mc is still current; called
// by the mux when the connection dies.
func (st *stripe) detach(mc *muxConn) {
	st.cur.CompareAndSwap(mc, nil)
}

// pickStripe selects the stripe an invocation at prio rides. The single
// Allow() call of the whole invoke path lives here: when the chosen
// stripe's breaker is open the caller fails fast with ErrCircuitOpen, and
// half-open probe admission is consumed exactly once per attempt.
func (cl *Client) pickStripe(prio sched.Priority) (*stripe, error) {
	sts := cl.stripes
	if len(sts) == 1 {
		st := sts[0]
		if cl.res != nil && !st.brk.Allow() {
			return nil, ErrCircuitOpen
		}
		st.sent.Add(1)
		return st, nil
	}
	b := bandOf(prio)
	// Sticky hit: while the band has invocations in flight, follow them —
	// same-band requests must share a stripe so its writer serialises them
	// in submission order. An idle band owes no ordering to anyone and
	// re-balances via power-of-two-choices below.
	if i := cl.sticky[b].Load(); i > 0 {
		st := sts[i-1]
		if cl.bandInflight[b].Load() > 0 && st.live() &&
			(cl.res == nil || st.brk.Allow()) {
			st.sent.Add(1)
			return st, nil
		}
	}
	st, err := cl.chooseStripe()
	if err != nil {
		return nil, err
	}
	cl.sticky[b].Store(int32(st.idx + 1))
	st.sent.Add(1)
	return st, nil
}

// chooseStripe picks the least-loaded of two random eligible stripes.
// Eligible means reachable — a live connection, or supervision to redial
// one — and, under supervision, a breaker that is not refusing traffic
// (read-only check; disconnected stripes stay eligible so load drifts back
// and triggers their redial). The winner still has to pass its breaker's
// Allow(), which is what consumes a half-open probe.
func (cl *Client) chooseStripe() (*stripe, error) {
	sts := cl.stripes
	elig := make([]*stripe, 0, len(sts))
	for _, st := range sts {
		if !st.live() && cl.res == nil {
			continue
		}
		if cl.res != nil && !st.brk.mayAllow() {
			continue
		}
		elig = append(elig, st)
	}
	if len(elig) == 0 {
		if cl.res == nil {
			// Every stripe is dead and nothing can redial: surface ErrClosed
			// through the normal conn() path.
			return sts[0], nil
		}
		return nil, ErrCircuitOpen
	}
	var pick *stripe
	if len(elig) == 1 {
		pick = elig[0]
	} else {
		i := int(cl.rand() % uint64(len(elig)))
		j := int(cl.rand() % uint64(len(elig)-1))
		if j >= i {
			j++
		}
		pick = elig[i]
		if elig[j].inflight.Load() < pick.inflight.Load() {
			pick = elig[j]
		}
	}
	if cl.res == nil || pick.brk.Allow() {
		return pick, nil
	}
	// Lost the half-open probe race (or the breaker flipped): any other
	// eligible stripe that admits traffic will do.
	for _, st := range elig {
		if st != pick && st.brk.Allow() {
			return st, nil
		}
	}
	return nil, ErrCircuitOpen
}

// rand steps the client's splitmix64 state: cheap, lock-free randomness for
// the two choices.
func (cl *Client) rand() uint64 {
	s := cl.rng.Add(0x9e3779b97f4a7c15)
	s ^= s >> 30
	s *= 0xbf58476d1ce4e5b9
	s ^= s >> 27
	s *= 0x94d049bb133111eb
	return s ^ (s >> 31)
}
