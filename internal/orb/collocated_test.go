package orb

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corba"
	"repro/internal/memory"
	"repro/internal/overload"
	"repro/internal/sched"
	"repro/internal/transport"
)

// wireSent sums the stripe Sent counters — the number of invocations that
// actually took the wire path. Collocated invokes must not move it.
func wireSent(cl *Client) int64 {
	var n int64
	for _, st := range cl.StripeStates() {
		n += st.Sent
	}
	return n
}

// netAlias wraps a Network in a distinct dynamic type so a server listening
// through it shares the inner network's address space (clients dialing the
// inner network reach it) but registers under a different localKey — i.e. it
// is reachable over the wire yet invisible to the collocation registry. This
// is how tests stand up a genuinely remote-looking member in one process.
type netAlias struct{ transport.Network }

// TestCollocatedInvokeBasic pins the fast path end to end: an opted-in
// client resolves the in-process server, Invoke/InvokeIdempotent/InvokeView/
// InvokeOneway all produce wire-identical results, the collocated counter
// moves, and the stripes never see a request.
func TestCollocatedInvokeBasic(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	cl := dial(t, net, srv.Addr(), ClientConfig{Collocate: true})

	before := collocatedInvokeTotal.Value()

	payload := []byte("straight through the registry")
	out, err := cl.Invoke("echo", "echo", payload, sched.NormPriority)
	if err != nil || !bytes.Equal(out, payload) {
		t.Fatalf("collocated Invoke = (%q, %v), want echo", out, err)
	}
	out, err = cl.InvokeIdempotent("echo", "echo", []byte("again"), sched.NormPriority)
	if err != nil || string(out) != "again" {
		t.Fatalf("collocated InvokeIdempotent = (%q, %v)", out, err)
	}
	var viewed []byte
	err = cl.InvokeView("echo", "echo", []byte("view"), sched.NormPriority, func(reply memory.Loan) error {
		b, berr := reply.Bytes()
		if berr != nil {
			return berr
		}
		viewed = append(viewed[:0], b...)
		return nil
	})
	if err != nil || string(viewed) != "view" {
		t.Fatalf("collocated InvokeView = (%q, %v)", viewed, err)
	}
	if err := cl.InvokeOneway("echo", "echo", []byte("oneway"), sched.NormPriority); err != nil {
		t.Fatalf("collocated InvokeOneway: %v", err)
	}

	if got := collocatedInvokeTotal.Value() - before; got != 4 {
		t.Errorf("collocated_invoke_total moved by %d, want 4", got)
	}
	if got := wireSent(cl); got != 0 {
		t.Errorf("wire path carried %d invocations; collocated calls must bypass the stripes", got)
	}

	// Error shape parity: a user exception through the fast path is the same
	// corba.ErrUserException wrap the demux reactor surfaces.
	srv.RegisterServant("fail", corba.ServantFunc(func(op string, in []byte) ([]byte, error) {
		return nil, fmt.Errorf("boom")
	}))
	if _, err := cl.Invoke("fail", "op", nil, sched.NormPriority); !errors.Is(err, corba.ErrUserException) {
		t.Errorf("collocated user exception = %v, want corba.ErrUserException", err)
	}
	if _, err := cl.Invoke("nope", "op", nil, sched.NormPriority); !errors.Is(err, corba.ErrSystemException) {
		t.Errorf("collocated missing servant = %v, want corba.ErrSystemException", err)
	}
}

// TestCollocatedOptOut pins that collocation is opt-in: a default client in
// the same process keeps taking the wire path.
func TestCollocatedOptOut(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	cl := dial(t, net, srv.Addr(), ClientConfig{})

	before := collocatedInvokeTotal.Value()
	if _, err := cl.Invoke("echo", "echo", []byte("x"), sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	if got := collocatedInvokeTotal.Value() - before; got != 0 {
		t.Errorf("opt-out client took the collocated path %d times", got)
	}
	if got := wireSent(cl); got == 0 {
		t.Error("opt-out client sent nothing over the wire")
	}
}

// TestCollocatedOverloadParity is the regression test for the admission
// contract: a collocated invoke increments the same controller in-flight
// gauge and server in-flight count as a remote one, is rejected by the
// brown-out admission ladder under the exact same conditions, and surfaces
// the byte-identical shed error a wire client gets.
func TestCollocatedOverloadParity(t *testing.T) {
	ctrl := overload.NewController(overload.Config{MinLimit: 1, MaxLimit: 1})
	defer ctrl.Close()
	net := transport.NewInproc()
	release := make(chan struct{})
	srv := startEchoServer(t, net, "", ServerConfig{Overload: ctrl})
	srv.RegisterServant("block", blockServant{release: release})

	holder := dial(t, net, srv.Addr(), ClientConfig{
		Collocate: true,
		Tenant:    overload.Tenant{ID: 1, Tier: overload.Tier1},
	})
	beLocal := dial(t, net, srv.Addr(), ClientConfig{
		Collocate: true,
		Tenant:    overload.Tenant{ID: 2, Tier: overload.TierBestEffort},
	})
	beWire := dial(t, net, srv.Addr(), ClientConfig{
		Tenant: overload.Tenant{ID: 3, Tier: overload.TierBestEffort},
	})

	// Occupy the single admission slot through the COLLOCATED path and show
	// both in-flight instruments see it — the gauges Drain and the AIMD
	// controller read are shared with the wire path.
	done := make(chan error, 1)
	go func() {
		_, err := holder.Invoke("block", "echo", []byte("hold"), sched.NormPriority)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for ctrl.Inflight() != 1 || srv.Inflight() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("collocated invoke invisible to instruments: ctrl.Inflight=%d srv.Inflight=%d",
				ctrl.Inflight(), srv.Inflight())
		}
		time.Sleep(time.Millisecond)
	}

	// With the slot held, a best-effort arrival is shed at admission on both
	// paths — same error identity, same detail payload, same back-off hint
	// plumbing.
	shedBefore := overload.AdmissionSheds()
	_, localErr := beLocal.Invoke("echo", "echo", []byte("x"), sched.NormPriority)
	_, wireErr := beWire.Invoke("echo", "echo", []byte("x"), sched.NormPriority)
	if overload.AdmissionSheds()-shedBefore != 2 {
		t.Errorf("admission_shed_total moved by %d, want 2 (one per path)",
			overload.AdmissionSheds()-shedBefore)
	}
	var localShed, wireShed *ShedError
	if !errors.As(localErr, &localShed) {
		t.Fatalf("collocated best-effort invoke = %v, want *ShedError", localErr)
	}
	if !errors.As(wireErr, &wireShed) {
		t.Fatalf("wire best-effort invoke = %v, want *ShedError", wireErr)
	}
	if localShed.Detail != wireShed.Detail {
		t.Errorf("shed detail differs: collocated %q vs wire %q", localShed.Detail, wireShed.Detail)
	}
	if !errors.Is(localErr, ErrShed) || !errors.Is(localErr, corba.ErrSystemException) {
		t.Errorf("collocated shed error %v lost its Is() identities", localErr)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("admitted collocated invoke failed after release: %v", err)
	}
	// The completion returned its slot via the same Done() latency sample.
	pollInflightZero(t, ctrl)
}

// TestCollocatedRetiringShed pins the drain interaction: once a servant's
// key is retiring, the collocated path sheds with the same retry-after error
// the wire path answers, instead of reporting a missing servant.
func TestCollocatedRetiringShed(t *testing.T) {
	ctrl := overload.NewController(overload.Config{})
	defer ctrl.Close()
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{Overload: ctrl})
	cl := dial(t, net, srv.Addr(), ClientConfig{Collocate: true})

	if _, err := cl.Invoke("echo", "echo", []byte("up"), sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	srv.UnregisterServant("echo")
	_, err := cl.Invoke("echo", "echo", []byte("gone"), sched.NormPriority)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("invoke of retiring key = %v, want *ShedError", err)
	}
	pollInflightZero(t, ctrl)
}

// TestCollocatedRetargetInvalidation pins the route-generation contract: a
// Retarget away from the in-process member flips the client back to the wire
// path on the very next invoke, and a retarget back re-detects collocation.
func TestCollocatedRetargetInvalidation(t *testing.T) {
	net := transport.NewInproc()
	local := startEchoServer(t, net, "", ServerConfig{})
	remote := startEchoServer(t, netAlias{net}, "", ServerConfig{}) // wire-reachable, registry-invisible
	cl := dial(t, net, local.Addr(), ClientConfig{Collocate: true})

	before := collocatedInvokeTotal.Value()
	if _, err := cl.Invoke("echo", "echo", []byte("a"), sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	if collocatedInvokeTotal.Value()-before != 1 {
		t.Fatal("first invoke did not take the collocated path")
	}

	cl.Retarget([]string{remote.Addr()})
	wireBefore := wireSent(cl)
	out, err := cl.Invoke("echo", "echo", []byte("b"), sched.NormPriority)
	if err != nil || string(out) != "b" {
		t.Fatalf("post-retarget invoke = (%q, %v)", out, err)
	}
	if got := collocatedInvokeTotal.Value() - before; got != 1 {
		t.Errorf("collocated counter moved to %d after retarget to a remote-only member", got)
	}
	if wireSent(cl) == wireBefore {
		t.Error("post-retarget invoke did not take the wire path")
	}

	cl.Retarget([]string{local.Addr()})
	if _, err := cl.Invoke("echo", "echo", []byte("c"), sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	if got := collocatedInvokeTotal.Value() - before; got != 2 {
		t.Errorf("retarget back to the local member did not re-detect collocation (counter delta %d, want 2)", got)
	}
}

// TestChaosCollocatedSwapUnderTraffic is the hot-swap soak: a client spread
// over a collocated member and a wire member hammers echo from many
// goroutines while the collocated server is closed mid-flight. The stale
// binding must fall back to the wire path within the same call — zero
// dropped or failed invocations — and traffic must demonstrably use both
// paths across the storm. Run with -race to pin the registry, binding cache,
// and route-generation plumbing.
func TestChaosCollocatedSwapUnderTraffic(t *testing.T) {
	net := transport.NewInproc()
	local, err := NewServer(ServerConfig{Network: net})
	if err != nil {
		t.Fatal(err)
	}
	local.RegisterServant("echo", corba.EchoServant{})
	local.ServeBackground()
	remote := startEchoServer(t, netAlias{net}, "", ServerConfig{})

	cl, err := DialClient(ClientConfig{
		Network:    net,
		Addrs:      []string{local.Addr(), remote.Addr()},
		Collocate:  true,
		Resilience: &ResilienceConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	const workers = 8
	const perWorker = 400
	colBefore := collocatedInvokeTotal.Value()
	var failures atomic.Int64
	var swap sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := []byte{byte(w)}
			for i := 0; i < perWorker; i++ {
				if i == perWorker/2 {
					// Swap deterministically mid-storm: the first worker to
					// reach its halfway mark closes the collocated member
					// while every sibling is still in full flight.
					swap.Do(local.Close)
				}
				out, err := cl.InvokeIdempotent("echo", "echo", payload, sched.NormPriority)
				if err != nil || len(out) != 1 || out[0] != byte(w) {
					failures.Add(1)
					t.Errorf("worker %d iter %d: (%q, %v)", w, i, out, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d invocations dropped across the swap; collocation fallback must be lossless", failures.Load())
	}
	if collocatedInvokeTotal.Value() == colBefore {
		t.Error("storm never used the collocated path; swap was not exercised")
	}
	if wireSent(cl) == 0 {
		t.Error("storm never reached the wire path after the swap")
	}

	// The binding cache must not resurrect the closed server: a fresh invoke
	// still lands on the surviving wire member.
	out, err := cl.InvokeIdempotent("echo", "echo", []byte("after"), sched.NormPriority)
	if err != nil || string(out) != "after" {
		t.Fatalf("post-swap invoke = (%q, %v)", out, err)
	}
}
