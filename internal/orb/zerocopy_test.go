package orb

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/giop"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/transport"
)

// TestInvokeViewZeroPayloadCopies is the zero-copy guard: at steady state,
// InvokeView must move reply payload bytes socket→view with zero counted
// copies — payload_copy_total flat, no frame Detach — while the legacy
// Invoke (which returns a retained slice) is charged exactly one copy per
// call. The pairing keeps the guard honest: if the counter ever silently
// stopped counting, the Invoke half would fail first.
func TestInvokeViewZeroPayloadCopies(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{ScopePoolCount: 2})
	cl := dial(t, net, srv.Addr(), ClientConfig{ScopePoolCount: 2})

	payload := bytes.Repeat([]byte{0x7E}, 512)

	// Warm everything (pools, routes, frame classes).
	for i := 0; i < 32; i++ {
		if _, err := cl.Invoke("echo", "echo", payload, sched.NormPriority); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 200
	copiesBefore := payloadCopyTotal.Value()
	detachBefore := giop.ReadFrameStats().Detached
	for i := 0; i < rounds; i++ {
		err := cl.InvokeView("echo", "echo", payload, sched.NormPriority, func(reply memory.Loan) error {
			b, err := reply.Bytes()
			if err != nil {
				return err
			}
			if !bytes.Equal(b, payload) {
				t.Fatalf("round %d: reply mismatch (%d bytes)", i, len(b))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if d := payloadCopyTotal.Value() - copiesBefore; d != 0 {
		t.Errorf("InvokeView charged %d payload copies over %d rounds, want 0", d, rounds)
	}
	if d := giop.ReadFrameStats().Detached - detachBefore; d != 0 {
		t.Errorf("InvokeView detached %d frames, want 0", d)
	}

	// The copying API is charged one copy per non-empty reply.
	copiesBefore = payloadCopyTotal.Value()
	for i := 0; i < 10; i++ {
		if _, err := cl.Invoke("echo", "echo", payload, sched.NormPriority); err != nil {
			t.Fatal(err)
		}
	}
	if d := payloadCopyTotal.Value() - copiesBefore; d != 10 {
		t.Errorf("Invoke charged %d payload copies over 10 rounds, want 10", d)
	}
}

// TestInvokeViewLoanScope pins the scope rule: the loan dies with the view's
// return, a leaked loan answers ErrStale, and Detach inside the view is the
// sanctioned escape.
func TestInvokeViewLoanScope(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	cl := dial(t, net, srv.Addr(), ClientConfig{})

	payload := []byte("escape-me")
	var leaked memory.Loan
	var escaped []byte
	err := cl.InvokeView("echo", "echo", payload, sched.NormPriority, func(reply memory.Loan) error {
		leaked = reply
		var derr error
		escaped, derr = reply.Detach()
		return derr
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(escaped, payload) {
		t.Errorf("detached copy = %q", escaped)
	}
	if leaked.Valid() {
		t.Error("loan still valid after InvokeView returned")
	}
	if _, err := leaked.Bytes(); !errors.Is(err, memory.ErrStale) {
		t.Errorf("leaked loan Bytes: %v, want ErrStale", err)
	}
}
