package orb

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"

	"repro/internal/sched"
	"repro/internal/transport"
)

// gatedWriter is a scripted transport.Conn with the BuffersWriter
// capability: every flush parks until the test releases it, so the tests
// can deterministically pile senders into the coalescer's queue while a
// flush is "on the wire", and each flush is recorded as the whole batch it
// carried.
type gatedWriter struct {
	mu      sync.Mutex
	gate    chan struct{} // receive = permission for one flush
	batches [][][]byte    // frames carried by each flush
	failOn  int           // 1-based flush index to fail at; 0 = never
	failErr error
}

func newGatedWriter() *gatedWriter {
	return &gatedWriter{gate: make(chan struct{}, 64), failErr: errors.New("scripted write failure")}
}

func (w *gatedWriter) Read(p []byte) (int, error) { return 0, io.EOF }
func (w *gatedWriter) Close() error               { return nil }

func (w *gatedWriter) Write(p []byte) (int, error) {
	n, err := w.WriteBuffers([][]byte{p})
	return int(n), err
}

func (w *gatedWriter) WriteBuffers(bufs [][]byte) (int64, error) {
	<-w.gate
	w.mu.Lock()
	defer w.mu.Unlock()
	cp := make([][]byte, len(bufs))
	for i, b := range bufs {
		cp[i] = append([]byte(nil), b...)
	}
	w.batches = append(w.batches, cp)
	if w.failOn != 0 && len(w.batches) >= w.failOn {
		return 0, w.failErr
	}
	var n int64
	for _, b := range bufs {
		n += int64(len(b))
	}
	return n, nil
}

// allow releases n flushes.
func (w *gatedWriter) allow(n int) {
	for i := 0; i < n; i++ {
		w.gate <- struct{}{}
	}
}

// flushSizes returns the frame count each flush carried.
func (w *gatedWriter) flushSizes() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]int, len(w.batches))
	for i, b := range w.batches {
		out[i] = len(b)
	}
	return out
}

// waitFor spins until cond holds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2_000_000; i++ {
		if cond() {
			return
		}
		runtime.Gosched()
	}
	t.Fatal("condition never reached")
}

// waitHead blocks until n frames have been enqueued in total.
func waitHead(t *testing.T, co *coalescer, n uint64) {
	t.Helper()
	waitFor(t, func() bool {
		co.mu.Lock()
		defer co.mu.Unlock()
		return co.head >= n
	})
}

// waitFlushing blocks until a flush is in progress.
func waitFlushing(t *testing.T, co *coalescer) {
	t.Helper()
	waitFor(t, func() bool {
		co.mu.Lock()
		defer co.mu.Unlock()
		return co.flushing
	})
}

// TestCoalescerLoneCallerImmediate pins the no-latency-tax half of the
// adaptive policy: a sender finding the writer idle flushes immediately, so
// sequential callers see one flush per frame and zero queueing.
func TestCoalescerLoneCallerImmediate(t *testing.T) {
	w := newGatedWriter()
	w.allow(64)
	co := newCoalescer(w, CoalesceConfig{}, nil)
	for i := 0; i < 5; i++ {
		frame := []byte(fmt.Sprintf("frame-%d", i))
		if err, _ := co.write(frame); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	sizes := w.flushSizes()
	if len(sizes) != 5 {
		t.Fatalf("lone callers produced %d flushes, want 5 (one each)", len(sizes))
	}
	for i, n := range sizes {
		if n != 1 {
			t.Errorf("flush %d carried %d frames, want 1", i, n)
		}
	}
}

// TestCoalescerBatchesQueuedSenders pins the group-commit half: senders
// arriving while a flush is in progress queue up and go out together in the
// next vectored write, in enqueue order.
func TestCoalescerBatchesQueuedSenders(t *testing.T) {
	w := newGatedWriter()
	co := newCoalescer(w, CoalesceConfig{}, nil)

	results := make(chan error, 3)
	go func() { err, _ := co.write([]byte("first")); results <- err }()
	waitFlushing(t, co)
	go func() { err, _ := co.write([]byte("second")); results <- err }()
	waitHead(t, co, 2)
	go func() { err, _ := co.write([]byte("third")); results <- err }()
	waitHead(t, co, 3)

	flushesBefore := coalesceFlushTotal.Value()
	w.allow(64) // release the wire
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatalf("sender %d: %v", i, err)
		}
	}
	sizes := w.flushSizes()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 2 {
		t.Fatalf("flush sizes = %v, want [1 2] (lone head, then the queued pair)", sizes)
	}
	w.mu.Lock()
	batch := w.batches[1]
	w.mu.Unlock()
	if !bytes.Equal(batch[0], []byte("second")) || !bytes.Equal(batch[1], []byte("third")) {
		t.Errorf("second flush carried %q,%q — enqueue order violated", batch[0], batch[1])
	}
	if got := coalesceFlushTotal.Value() - flushesBefore; got != 2 {
		t.Errorf("coalesce_flush_total advanced by %d, want 2", got)
	}
}

// TestCoalescerMaxBatchFrames pins the batch bound: five queued frames
// behind a one-frame flush drain in ceil(5/2) batches when MaxBatchFrames
// is 2, never one giant write.
func TestCoalescerMaxBatchFrames(t *testing.T) {
	w := newGatedWriter()
	co := newCoalescer(w, CoalesceConfig{MaxBatchFrames: 2}, nil)

	const extra = 5
	results := make(chan error, extra+1)
	go func() { err, _ := co.write([]byte("head")); results <- err }()
	waitFlushing(t, co)
	for i := 0; i < extra; i++ {
		i := i
		go func() { err, _ := co.write([]byte(fmt.Sprintf("q-%d", i))); results <- err }()
	}
	waitHead(t, co, extra+1)
	w.allow(64)
	for i := 0; i < extra+1; i++ {
		if err := <-results; err != nil {
			t.Fatalf("sender %d: %v", i, err)
		}
	}
	sizes := w.flushSizes()
	want := []int{1, 2, 2, 1}
	if len(sizes) != len(want) {
		t.Fatalf("flush sizes = %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("flush sizes = %v, want %v", sizes, want)
		}
	}
}

// TestCoalescerMaxBatchBytes pins the byte bound: frames stop joining a
// batch once it would exceed MaxBatchBytes, but an over-bound frame alone
// still flushes.
func TestCoalescerMaxBatchBytes(t *testing.T) {
	w := newGatedWriter()
	co := newCoalescer(w, CoalesceConfig{MaxBatchBytes: 10}, nil)

	results := make(chan error, 4)
	go func() { err, _ := co.write([]byte("head")); results <- err }()
	waitFlushing(t, co)
	// 6 + 6 bytes > 10 → the pair must split; the 16-byte frame exceeds the
	// bound outright and must still go out (alone).
	go func() { err, _ := co.write([]byte("sixby1")); results <- err }()
	go func() { err, _ := co.write([]byte("sixby2")); results <- err }()
	go func() { err, _ := co.write([]byte("sixteen-bytes-xx")); results <- err }()
	waitHead(t, co, 4)
	w.allow(64)
	for i := 0; i < 4; i++ {
		if err := <-results; err != nil {
			t.Fatalf("sender %d: %v", i, err)
		}
	}
	sizes := w.flushSizes()
	if len(sizes) != 4 {
		t.Fatalf("flush sizes = %v, want 4 flushes (byte bound splits the queue)", sizes)
	}
	for i, n := range sizes {
		if n != 1 {
			t.Errorf("flush %d carried %d frames, want 1 (10-byte bound)", i, n)
		}
	}
}

// TestCoalescerWriteErrorOwnership pins single-ownership of a failed flush:
// exactly one sender (the flusher) sees owner=true, every queued sender
// gets the same error with owner=false, and later writes fail fast.
func TestCoalescerWriteErrorOwnership(t *testing.T) {
	w := newGatedWriter()
	w.failOn = 1 // the first flush fails
	co := newCoalescer(w, CoalesceConfig{}, nil)

	type res struct {
		err   error
		owner bool
	}
	results := make(chan res, 3)
	go func() { err, own := co.write([]byte("first")); results <- res{err, own} }()
	waitFlushing(t, co)
	go func() { err, own := co.write([]byte("second")); results <- res{err, own} }()
	go func() { err, own := co.write([]byte("third")); results <- res{err, own} }()
	waitHead(t, co, 3)
	w.allow(64)

	owners := 0
	for i := 0; i < 3; i++ {
		r := <-results
		if r.err == nil {
			t.Fatalf("sender %d: expected the scripted failure", i)
		}
		if !errors.Is(r.err, w.failErr) {
			t.Errorf("sender %d: error %v, want the scripted failure", i, r.err)
		}
		if r.owner {
			owners++
		}
	}
	if owners != 1 {
		t.Errorf("%d senders claimed ownership of the wire fault, want exactly 1", owners)
	}
	if err, owner := co.write([]byte("late")); err == nil || owner {
		t.Errorf("write after failure: (%v, %v), want sticky error without ownership", err, owner)
	}
	co.mu.Lock()
	left := len(co.queue)
	co.mu.Unlock()
	if left != 0 {
		t.Errorf("dead coalescer still holds %d queued frames", left)
	}
}

// TestCoalescedEchoEndToEnd runs a pipelined workload with coalescing on at
// BOTH ends (requests and replies batch) and demands full correctness:
// every caller gets its own payload back and the pending table drains.
func TestCoalescedEchoEndToEnd(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{
		Concurrency: 16, Coalesce: &CoalesceConfig{},
	})
	cl := dial(t, net, srv.Addr(), ClientConfig{
		PipelineDepth: 64, Coalesce: &CoalesceConfig{},
	})

	flushesBefore := coalesceFlushTotal.Value()
	const workers, rounds = 16, 25
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				payload := []byte(fmt.Sprintf("w%d-r%d", w, r))
				got, err := cl.Invoke("echo", "echo", payload, sched.MinPriority+sched.Priority(w%31))
				if err != nil {
					errs[w] = fmt.Errorf("round %d: %w", r, err)
					return
				}
				if !bytes.Equal(got, payload) {
					errs[w] = fmt.Errorf("round %d: cross-talk: sent %q got %q", r, payload, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", w, err)
		}
	}
	if got := cl.Inflight(); got != 0 {
		t.Errorf("inflight = %d after all replies", got)
	}
	if coalesceFlushTotal.Value() == flushesBefore {
		t.Error("coalesce_flush_total did not advance: the coalesced path was not exercised")
	}
}

// TestCoalescedConnDeathFailsOnce is TestMuxConnDeathFailsAllPendingOnce
// with coalescing on: a wire cut stranding a whole batch of coalesced
// senders must still count ONE breaker failure — the flush owner's — not
// one per blocked sender.
func TestCoalescedConnDeathFailsOnce(t *testing.T) {
	net := transport.NewInproc()
	rs := newRawServer(t, net)
	const callers = 8
	rs.serve(func(conn transport.Conn) {
		for i := 0; i < callers; i++ {
			if _, req := readRequest(t, conn); req == nil {
				return
			}
		}
		conn.Close()
	})
	cl := dial(t, net, rs.addr, ClientConfig{
		Coalesce:   &CoalesceConfig{},
		Resilience: &ResilienceConfig{BreakerThreshold: 2, MaxRetries: 0},
	})

	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cl.Invoke("echo", "echo", []byte("doomed"), sched.NormPriority)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err == nil {
			t.Errorf("caller %d: expected a wire error, got success", i)
		}
	}
	if got := cl.Inflight(); got != 0 {
		t.Errorf("inflight = %d after connection death", got)
	}
	if st := cl.stripes[0].brk.State(); st != breakerClosed {
		t.Errorf("breaker state = %d after one wire event with coalescing on", st)
	}
}
