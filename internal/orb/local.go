package orb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corba"
	"repro/internal/overload"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Collocated invocation fast path: when the dial target is an orb.Server
// living in this process on the same Network, an opted-in client's
// Invoke/InvokeView/InvokeOneway skip GIOP marshalling, the coalescer, the
// stripes, and the demux reactor entirely and call the servant directly on
// the caller's goroutine — the canonical middleware collocation
// optimisation. The direct path is NOT allowed to dodge any server-side
// policy: the overload Admit gate, tenant classification, the retiring-key
// shed, the in-flight gauges, the latency sample feeding the AIMD limit,
// and the trace spans all behave exactly as they do for a wire request.

// collocatedInvokeTotal counts invocations served through the direct path.
var collocatedInvokeTotal = telemetry.NewCounter("collocated_invoke_total")

// localKey identifies one process-local listen endpoint: the Network
// instance and the bound address. Keying by the Network value (not just the
// address) keeps independent inproc networks — every test builds its own —
// from aliasing each other.
type localKey struct {
	net  transport.Network
	addr string
}

// localReg is the process-local endpoint registry. Servers register at
// listen time and unregister on Close; every mutation bumps gen, which is
// the one atomic a bound client re-checks per invoke to know its cached
// collocation decision still stands.
var localReg = struct {
	mu  sync.Mutex
	m   map[localKey]*Server
	gen atomic.Uint64
}{m: make(map[localKey]*Server)}

// registerLocal publishes a server's listen endpoint to the process-local
// registry.
func registerLocal(net transport.Network, addr string, s *Server) {
	localReg.mu.Lock()
	localReg.m[localKey{net: net, addr: addr}] = s
	localReg.mu.Unlock()
	localReg.gen.Add(1)
}

// unregisterLocal withdraws a server from the registry (if it is still the
// registered owner of the endpoint) and invalidates every cached
// collocation decision via the generation bump.
func unregisterLocal(net transport.Network, addr string, s *Server) {
	k := localKey{net: net, addr: addr}
	localReg.mu.Lock()
	if localReg.m[k] == s {
		delete(localReg.m, k)
	}
	localReg.mu.Unlock()
	localReg.gen.Add(1)
}

// lookupLocal resolves an endpoint to an in-process server, nil when the
// endpoint is remote (or the server is gone).
func lookupLocal(net transport.Network, addr string) *Server {
	localReg.mu.Lock()
	defer localReg.mu.Unlock()
	return localReg.m[localKey{net: net, addr: addr}]
}

// localBinding is a client's cached collocation decision: the in-process
// server serving its current membership (nil = every member is remote),
// valid only while both generations stand. reg is the registry generation
// (bumped by server register/unregister), route the client's own route
// generation (bumped by Retarget and membership refreshes), so both a
// server swap and a client retarget invalidate the decision — the wire
// path is the fallback, never a stale direct pointer.
type localBinding struct {
	srv   *Server
	reg   uint64
	route uint64
}

// localServer returns the collocated server to use for the next invoke, or
// nil to take the wire path. Steady state is two atomic generation loads
// and one pointer compare; detection re-runs only after a registry or
// route-generation bump.
func (cl *Client) localServer() *Server {
	if !cl.collocate {
		return nil
	}
	reg, route := localReg.gen.Load(), cl.routeGen.Load()
	if b := cl.local.Load(); b != nil && b.reg == reg && b.route == route {
		return b.srv
	}
	var srv *Server
	for _, addr := range cl.Members() {
		if s := lookupLocal(cl.network, addr); s != nil && !s.closed.Load() {
			srv = s
			break
		}
	}
	cl.local.Store(&localBinding{srv: srv, reg: reg, route: route})
	return srv
}

// bumpRoute invalidates the cached collocation decision after a retarget
// or membership refresh; the next invoke re-detects against the new
// membership.
func (cl *Client) bumpRoute() {
	if cl.collocate {
		cl.routeGen.Add(1)
	}
}

// invokeCollocated runs one invocation through the direct path. handled is
// false when the server turned out to be closed (the binding was stale):
// the caller invalidates and falls back to the wire path for this same
// call, so a hot swap of a collocated servant never drops an invocation.
func (cl *Client) invokeCollocated(srv *Server, key, op string, payload []byte, prio sched.Priority, oneway bool) (out []byte, err error, handled bool) {
	trace, span, started := startSpan(0)
	cl.inflight.Add(1)
	out, err = srv.invokeLocal(key, op, payload, prio, cl.tenant, trace, oneway)
	cl.inflight.Add(-1)
	endSpan(trace, span, started)
	if err != nil && errors.Is(err, corba.ErrClosed) && !cl.closed.Load() {
		// The server shut down between detection and dispatch. Drop the
		// binding — detection skips closed servers, so the very next invoke
		// lands on the wire path even before the registry bump is observed —
		// and have the caller retry this call over the wire.
		cl.local.Store(nil)
		return nil, nil, false
	}
	collocatedInvokeTotal.Inc()
	return out, err, true
}

// invokeLocal serves one collocated invocation with every server-side gate
// a wire request passes through: the overload admission decision (tenant
// and tier classified exactly as from the GIOP service context), the
// retiring-key shed with retry-after pacing, the in-flight count Drain
// waits on, the server span under the caller's trace, and the completion
// latency sample that drives the AIMD limit. Dispatch follows the sched
// synchronous contract (sched.Pool with Max == 0): the calling thread
// executes the servant at the propagated, clamped priority, with the
// request deadline checked before execution — inlined here so the crossing
// allocates nothing.
func (s *Server) invokeLocal(key, op string, payload []byte, prio sched.Priority, tn overload.Tenant, trace uint64, oneway bool) ([]byte, error) {
	if s.closed.Load() {
		return nil, corba.ErrClosed
	}
	prio = prio.Clamp()
	admitAt := telemetry.Now()
	ctrl := s.ctrl
	if ctrl != nil {
		if d := ctrl.Admit(tn.ID, tn.Tier, prio); !d.OK {
			// Identical to the wire shed reply: the controller's back-off
			// hint rides a ShedError the resilient client's pacing honours.
			return nil, &ShedError{RetryAfter: time.Duration(s.retryAfterNs()), Detail: string(shedReplyPayload)}
		}
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	var serverSpan uint64
	var spanStart int64
	if trace != 0 && telemetry.VerboseEnabled() {
		serverSpan = telemetry.NewID()
		telemetry.Record(telemetry.EvSpanStart, serverSpanLabel, trace, serverSpan, 0)
		spanStart = telemetry.Now()
		defer func() {
			telemetry.Record(telemetry.EvSpanEnd, serverSpanLabel, trace, serverSpan, uint64(telemetry.Now()-spanStart))
		}()
	}

	if ctrl != nil && s.reqDeadline > 0 && telemetry.Now() > admitAt+int64(s.reqDeadline) {
		// The admitted request outlived its queueing deadline before the
		// servant could run (sched's dequeue-time shed, degenerate on a
		// queueless path). Release the slot as a drop, like ShedExpired.
		ctrl.Dropped()
		return nil, &ShedError{RetryAfter: time.Duration(s.retryAfterNs()), Detail: string(shedReplyPayload)}
	}

	sv, ok := s.servantByName(key)
	if !ok {
		if s.retiringByName(key) {
			// A drain unbound this servant: shed with the back-off hint, and
			// release the admission slot as a drop — a rejection is not a
			// latency sample (mirrors the wire path's recycle-as-shed).
			if ctrl != nil {
				ctrl.Dropped()
			}
			return nil, &ShedError{RetryAfter: time.Duration(s.retryAfterNs()), Detail: string(shedReplyPayload)}
		}
		// The wire path answers a system-exception reply and still counts
		// the completion; surface the same error shape the demux reactor
		// produces for it.
		if ctrl != nil {
			ctrl.Done(telemetry.Now() - admitAt)
		}
		return nil, fmt.Errorf("%w: %s", corba.ErrSystemException, corba.ErrNoServant.Error())
	}

	var out []byte
	var serr error
	if ps, pok := sv.(corba.PrioritizedServant); pok {
		out, serr = ps.InvokeWithPriority(op, payload, byte(prio))
	} else {
		out, serr = sv.Invoke(op, payload)
	}
	if ctrl != nil {
		// Admission-to-completion is the latency sample driving the AIMD
		// limit, for user exceptions as for successes — same as the wire
		// path, where the reply write marks done() either way.
		ctrl.Done(telemetry.Now() - admitAt)
	}
	if serr != nil {
		return nil, fmt.Errorf("%w: %s", corba.ErrUserException, serr.Error())
	}
	if oneway {
		return nil, nil
	}
	// The returned slice is the servant's own memory, handed to the caller
	// without the wire path's marshal/unmarshal copies — the zero-copy
	// contract of collocation (see ClientConfig.Collocate).
	return out, nil
}

// servantByName resolves an object key from the copy-on-write servant map
// without converting or copying the key.
func (s *Server) servantByName(key string) (corba.Servant, bool) {
	p := s.servants.Load()
	if p == nil {
		return nil, false
	}
	sv, ok := (*p)[key]
	return sv, ok
}

// retiringByName is isRetiring for a string key (no []byte conversion).
func (s *Server) retiringByName(key string) bool {
	p := s.retiring.Load()
	if p == nil {
		return false
	}
	_, ok := (*p)[key]
	return ok
}
