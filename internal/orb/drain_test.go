package orb

import (
	"errors"
	"testing"
	"time"

	"repro/internal/corba"
	"repro/internal/sched"
	"repro/internal/transport"
)

// TestServerDrainWaitsForInflight checks Drain blocks until dispatched
// requests complete — including one stuck in the servant — and reports a
// bounded timeout while work is still in flight.
func TestServerDrainWaitsForInflight(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	release := make(chan struct{})
	srv.RegisterServant("slow", corba.ServantFunc(func(op string, in []byte) ([]byte, error) {
		<-release
		return in, nil
	}))
	cl := dial(t, net, srv.Addr(), ClientConfig{})

	done := make(chan error, 1)
	go func() {
		_, err := cl.Invoke("slow", "op", []byte("x"), sched.NormPriority)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(100 * time.Microsecond)
	}

	if err := srv.Drain(20 * time.Millisecond); err == nil {
		t.Fatal("drain with a stuck servant returned nil")
	}
	close(release)
	if err := srv.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain after release: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if got := srv.Inflight(); got != 0 {
		t.Fatalf("inflight after drain = %d", got)
	}
}

// TestRetiringServantShedsWithRetryAfter checks UnregisterServant converts
// stragglers into shed replies carrying a retry-after hint, surfaced to the
// caller as a ShedError that still matches corba.ErrSystemException.
func TestRetiringServantShedsWithRetryAfter(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	cl := dial(t, net, srv.Addr(), ClientConfig{})

	if _, err := cl.Invoke("echo", "echo", []byte("warm"), sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	srv.UnregisterServant("echo")

	_, err := cl.Invoke("echo", "echo", []byte("straggler"), sched.NormPriority)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("invoke to retiring servant = %v, want ErrShed", err)
	}
	if !errors.Is(err, corba.ErrSystemException) {
		t.Fatalf("shed error does not match ErrSystemException: %v", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("error is not a *ShedError: %v", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("shed retry-after hint = %v, want positive", shed.RetryAfter)
	}

	// Re-registration clears the retiring mark: the key serves again.
	srv.RegisterServant("echo", corba.EchoServant{})
	if got, err := cl.Invoke("echo", "echo", []byte("back"), sched.NormPriority); err != nil || string(got) != "back" {
		t.Fatalf("invoke after re-register = %q, %v", got, err)
	}
	// A never-registered key still gets the terminal no-servant exception,
	// not a shed.
	if _, err := cl.Invoke("ghost", "echo", nil, sched.NormPriority); errors.Is(err, ErrShed) || !errors.Is(err, corba.ErrSystemException) {
		t.Fatalf("unknown key err = %v, want plain system exception", err)
	}
}

// TestRetryBudgetBacksOffOnShed checks the idempotent retry loop honours the
// shed reply's retry-after hint: with the local backoff floor in the
// microseconds, total elapsed time across retries must cover the hint.
func TestRetryBudgetBacksOffOnShed(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	cl := dial(t, net, srv.Addr(), ClientConfig{
		Resilience: &ResilienceConfig{
			MaxRetries:    2,
			ReconnectBase: time.Microsecond,
			ReconnectMax:  2 * time.Microsecond,
		},
	})

	if _, err := cl.InvokeIdempotent("echo", "echo", []byte("warm"), sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	srv.UnregisterServant("echo")

	start := time.Now()
	_, err := cl.InvokeIdempotent("echo", "echo", []byte("x"), sched.NormPriority)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed after exhausted retries", err)
	}
	// Two retries, each paced by the ≥20ms retirement hint.
	if want := 2 * retireRetryAfterNs; int64(elapsed) < want {
		t.Fatalf("retries elapsed %v, want ≥ %v (hint not honoured)", elapsed, time.Duration(want))
	}
}
