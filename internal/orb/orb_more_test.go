package orb

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/corba"
	"repro/internal/giop"
	"repro/internal/sched"
	"repro/internal/transport"
)

func TestOversizedReplyFailsCleanly(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{MaxMessage: 16384})
	// The client only accepts 1 KiB bodies; ask the server to echo 4 KiB.
	cl := dial(t, net, srv.Addr(), ClientConfig{MaxMessage: 1024})

	payload := bytes.Repeat([]byte{1}, 4096)
	if _, err := cl.Invoke("echo", "echo", payload, sched.NormPriority); err == nil {
		t.Error("oversized reply accepted")
	}
}

func TestLittleEndianClient(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	cl := dial(t, net, srv.Addr(), ClientConfig{Order: giop.LittleEndian})
	_ = srv
	got, err := cl.Invoke("echo", "echo", []byte("LE"), sched.NormPriority)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "LE" {
		t.Errorf("echo = %q", got)
	}
}

func TestConcurrentInvokesOneClient(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	cl := dial(t, net, srv.Addr(), ClientConfig{MsgPoolCapacity: 64})
	_ = srv

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte{byte(i)}
			got, err := cl.Invoke("echo", "echo", payload, sched.Priority(i%31+1))
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, payload) {
				errs <- errors.New("echo mismatch under concurrency")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestOnewayAfterCloseRejected(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	cl := dial(t, net, srv.Addr(), ClientConfig{})
	_ = srv
	cl.Close()
	if err := cl.InvokeOneway("echo", "ping", nil, sched.NormPriority); !errors.Is(err, corba.ErrClosed) {
		t.Errorf("oneway after close err = %v", err)
	}
}

func TestServerComponentTopology(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	cl := dial(t, net, srv.Addr(), ClientConfig{})
	if _, err := cl.Invoke("echo", "ping", nil, sched.NormPriority); err != nil {
		t.Fatal(err)
	}

	// Fig. 10 right: ORB (immortal) -> POA -> TransportN (per connection).
	orbComp := srv.App().Component("ORB")
	if orbComp == nil {
		t.Fatal("no ORB component")
	}
	poa := orbComp.SMM().Child("POA")
	if poa == nil {
		t.Fatal("no POA instance")
	}
	if poa.Level() != 1 {
		t.Errorf("POA level = %d, want 1", poa.Level())
	}
	tr := poa.SMM().Child("Transport1")
	if tr == nil {
		t.Fatal("no Transport1 instance")
	}
	if tr.Level() != 2 {
		t.Errorf("Transport level = %d, want 2", tr.Level())
	}
	if tr.Path() != "ORB/POA/Transport1" {
		t.Errorf("path = %q", tr.Path())
	}

	// Fig. 10 left: client ORB (immortal) -> Transport (lazy, persistent).
	clOrb := cl.App().Component("ORB")
	clTr := clOrb.SMM().Child("Transport")
	if clTr == nil {
		t.Fatal("client Transport not instantiated after first invoke")
	}
	if clTr.Level() != 1 {
		t.Errorf("client Transport level = %d", clTr.Level())
	}
}

func TestDialFailureSurfacesOnFirstInvoke(t *testing.T) {
	// The Transport dials lazily, so a bad address fails at first Invoke.
	net := transport.NewInproc()
	cl, err := DialClient(ClientConfig{Network: net, Addr: "nowhere"})
	if err != nil {
		t.Fatalf("lazy client construction failed eagerly: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Invoke("echo", "ping", nil, sched.NormPriority); err == nil {
		t.Error("invoke against unreachable server succeeded")
	}
}

func TestLocate(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	cl := dial(t, net, srv.Addr(), ClientConfig{})
	_ = srv

	// Before any invoke the transport is not yet connected.
	if _, err := cl.Locate("echo"); err == nil {
		t.Error("locate before transport connect succeeded")
	}
	if _, err := cl.Invoke("echo", "ping", nil, sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	here, err := cl.Locate("echo")
	if err != nil {
		t.Fatal(err)
	}
	if !here {
		t.Error("registered servant not located")
	}
	here, err = cl.Locate("ghost")
	if err != nil {
		t.Fatal(err)
	}
	if here {
		t.Error("unregistered servant located")
	}
	// The connection remains usable for requests afterwards.
	if _, err := cl.Invoke("echo", "ping", nil, sched.NormPriority); err != nil {
		t.Errorf("post-locate invoke: %v", err)
	}
}
