package orb

import (
	"time"

	"repro/internal/telemetry"
)

// This file generalises the striped channel pool (stripe.go) from "N
// connections to one host" to "N stripes spread across M replicas". The
// stripes themselves are unchanged — P2C selection, sticky bands, per-stripe
// breakers and single-flight redial all still apply — what changes is where
// each stripe dials: members of a replica set, assigned round-robin and
// re-assigned when the set changes (Retarget) or a member refuses a dial
// (failoverTarget). A member death therefore fails over instead of tripping
// the client: its connection dies cleanly (no breaker charge), the next
// invoke's redial fails once, and the stripe moves to a survivor discovered
// through the Resolve hook.

// Replica counters, exported at /metrics with the compadres_ prefix.
var (
	// memberResolveTotal counts membership re-resolutions through the
	// Resolve hook (failed dials and refresher-driven Retargets).
	memberResolveTotal = telemetry.NewCounter("member_resolve_total")
	// stripeRetargetTotal counts stripes moved to a different member.
	stripeRetargetTotal = telemetry.NewCounter("stripe_retarget_total")
)

// resolveMinInterval rate-limits the Resolve hook: a burst of stripes hitting
// a dead member triggers one directory round trip, not one each.
const resolveMinInterval = 10 * time.Millisecond

// retireGrace bounds how long a retired connection waits for its in-flight
// invocations before it is failed out.
const retireGrace = 2 * time.Second

// Members returns the replica addresses the client currently spreads over.
func (cl *Client) Members() []string {
	if p := cl.members.Load(); p != nil {
		return *p
	}
	return nil
}

// Retarget replaces the replica set: stripes are reassigned round-robin over
// addrs, and a stripe whose target changed retires its live connection —
// detached immediately so new invokes dial the new member, closed in the
// background once accepted invocations drain. Retiring is classified as a
// clean close, so a rolling Retarget never charges any stripe's breaker. An
// empty addrs is ignored (the previous membership stands).
func (cl *Client) Retarget(addrs []string) {
	if len(addrs) == 0 || cl.closed.Load() {
		return
	}
	cl.retargetMu.Lock()
	defer cl.retargetMu.Unlock()
	list := append([]string(nil), addrs...)
	cl.members.Store(&list)
	// A retarget is a route-generation bump for the collocation cache: the
	// new membership may gain or lose an in-process member, so the next
	// invoke re-detects instead of trusting the old decision.
	cl.bumpRoute()
	for i, st := range cl.stripes {
		want := list[i%len(list)]
		if st.target() == want {
			continue
		}
		st.setTarget(want)
		stripeRetargetTotal.Inc()
		if mc := st.cur.Load(); mc != nil {
			mc.retire(retireGrace)
		}
	}
}

// refreshMembers re-resolves the membership through the Resolve hook,
// single-flight and rate-limited; on error or an empty answer the previous
// membership stands.
func (cl *Client) refreshMembers() []string {
	if cl.resolve == nil {
		return cl.Members()
	}
	cl.resolveMu.Lock()
	defer cl.resolveMu.Unlock()
	now := telemetry.Now()
	if now-cl.lastResolve < int64(resolveMinInterval) {
		return cl.Members()
	}
	cl.lastResolve = now
	memberResolveTotal.Inc()
	addrs, err := cl.resolve()
	if err != nil {
		telemetry.RecordFault("orb.client.resolve", err)
		return cl.Members()
	}
	if len(addrs) == 0 {
		return cl.Members()
	}
	list := append([]string(nil), addrs...)
	cl.members.Store(&list)
	cl.bumpRoute()
	return list
}

// failoverTarget picks a replacement dial target for a stripe whose dial to
// failed was refused: refresh the membership and choose a member other than
// the failed one, rotating so concurrent failovers spread across the
// survivors instead of piling onto one.
func (cl *Client) failoverTarget(failed string) (string, bool) {
	members := cl.refreshMembers()
	n := len(members)
	if n == 0 {
		return "", false
	}
	start := int(cl.rotate.Add(1)) % n
	for i := 0; i < n; i++ {
		if cand := members[(start+i)%n]; cand != failed {
			stripeRetargetTotal.Inc()
			return cand, true
		}
	}
	return "", false
}

// StripeState is one stripe's observable routing state: which member it
// targets, whether its connection is up, and its traffic counters. The
// per-replica load split of a cluster client is the sum of these grouped by
// Addr.
type StripeState struct {
	// Addr is the member the stripe currently dials.
	Addr string
	// Live reports whether the stripe's connection is up.
	Live bool
	// Inflight is the stripe's current in-flight invocation count.
	Inflight int64
	// Sent counts invocations ever routed to the stripe.
	Sent int64
}

// StripeStates snapshots every stripe's routing state.
func (cl *Client) StripeStates() []StripeState {
	out := make([]StripeState, len(cl.stripes))
	for i, st := range cl.stripes {
		out[i] = StripeState{
			Addr:     st.target(),
			Live:     st.live(),
			Inflight: st.inflight.Load(),
			Sent:     st.sent.Load(),
		}
	}
	return out
}
