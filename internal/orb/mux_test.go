package orb

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/corba"
	"repro/internal/giop"
	"repro/internal/sched"
	"repro/internal/transport"
)

// rawServer accepts one connection on an in-process network and hands the
// test full control of the GIOP frames flowing both ways — the only way to
// provoke the reply streams a well-behaved server never produces (bogus
// ids, reordered replies, mid-frame cuts).
type rawServer struct {
	t    *testing.T
	ln   transport.Listener
	addr string
}

func newRawServer(t *testing.T, net transport.Network) *rawServer {
	t.Helper()
	ln, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return &rawServer{t: t, ln: ln, addr: ln.Addr()}
}

// serve runs fn on the next accepted connection.
func (rs *rawServer) serve(fn func(conn transport.Conn)) {
	go func() {
		conn, err := rs.ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fn(conn)
	}()
}

// readRequest frames and decodes one inbound request.
func readRequest(t *testing.T, conn transport.Conn) (giop.ByteOrder, *giop.Request) {
	t.Helper()
	h, body, err := giop.ReadMessageLimited(conn, nil, 1<<16)
	if err != nil {
		t.Errorf("raw server read: %v", err)
		return giop.BigEndian, nil
	}
	if h.Type != giop.MsgRequest {
		t.Errorf("raw server: unexpected %v frame", h.Type)
		return giop.BigEndian, nil
	}
	req := new(giop.Request)
	if err := giop.DecodeRequest(h.Order, body, req); err != nil {
		t.Errorf("raw server decode: %v", err)
		return giop.BigEndian, nil
	}
	// Payload aliases the read buffer; copy before the next frame.
	req.Payload = append([]byte(nil), req.Payload...)
	return h.Order, req
}

// writeEcho replies to req with its own payload under the given id.
func writeEcho(t *testing.T, conn transport.Conn, order giop.ByteOrder, id uint32, payload []byte) {
	t.Helper()
	wire := giop.MarshalReply(nil, order, &giop.Reply{
		RequestID: id, Status: giop.ReplyNoException, Payload: payload,
	})
	if _, err := conn.Write(wire); err != nil {
		t.Errorf("raw server write: %v", err)
	}
}

// TestMuxStaleReplyDropped pins the reactor's unknown-id path: a reply
// bearing an id that matches no pending entry is counted and dropped, and
// the invocation stream keeps flowing — the stale frame must not wedge the
// reactor or complete the wrong caller.
func TestMuxStaleReplyDropped(t *testing.T) {
	net := transport.NewInproc()
	rs := newRawServer(t, net)
	rs.serve(func(conn transport.Conn) {
		for i := 0; i < 3; i++ {
			order, req := readRequest(t, conn)
			if req == nil {
				return
			}
			// A stale reply first (an id nothing is waiting for), then the
			// real one.
			writeEcho(t, conn, order, req.RequestID+0x5000, []byte("stale"))
			writeEcho(t, conn, order, req.RequestID, req.Payload)
		}
	})
	cl := dial(t, net, rs.addr, ClientConfig{})

	staleBefore := muxStaleDropTotal.Value()
	for i := 0; i < 3; i++ {
		payload := []byte(fmt.Sprintf("real-%d", i))
		got, err := cl.Invoke("echo", "echo", payload, sched.NormPriority)
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("invoke %d: got %q (stale reply delivered?)", i, got)
		}
	}
	if got := muxStaleDropTotal.Value() - staleBefore; got < 3 {
		t.Errorf("mux_stale_drop_total advanced by %d, want >= 3", got)
	}
	if cl.Inflight() != 0 {
		t.Errorf("inflight = %d after all replies", cl.Inflight())
	}
}

// TestMuxOutOfOrderCompletion pins pipelining itself: two invocations in
// flight at once, replies written in reverse order, each caller receiving
// exactly its own payload — and the reorder counter advancing, the
// observable proof the completions crossed.
func TestMuxOutOfOrderCompletion(t *testing.T) {
	net := transport.NewInproc()
	rs := newRawServer(t, net)
	rs.serve(func(conn transport.Conn) {
		type pend struct {
			order giop.ByteOrder
			req   *giop.Request
		}
		// Collect both requests before answering either, then reply in
		// reverse arrival order.
		var batch []pend
		for len(batch) < 2 {
			order, req := readRequest(t, conn)
			if req == nil {
				return
			}
			batch = append(batch, pend{order, req})
		}
		for i := len(batch) - 1; i >= 0; i-- {
			writeEcho(t, conn, batch[i].order, batch[i].req.RequestID, batch[i].req.Payload)
		}
	})
	cl := dial(t, net, rs.addr, ClientConfig{})

	reorderBefore := muxReorderTotal.Value()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("caller-%d", i))
			got, err := cl.Invoke("echo", "echo", payload, sched.NormPriority)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, payload) {
				errs[i] = fmt.Errorf("cross-talk: sent %q got %q", payload, got)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
	if got := muxReorderTotal.Value() - reorderBefore; got < 1 {
		t.Errorf("mux_reorder_total advanced by %d, want >= 1", got)
	}
}

// TestMuxConnDeathFailsAllPendingOnce cuts the connection mid-frame with a
// batch of invocations in flight. Every pending invoke must fail exactly
// once with a transport-level error — and the whole wire event must count
// as ONE breaker failure, not one per stranded caller: with a threshold of
// two, eight victims from a single cut must leave the breaker closed.
func TestMuxConnDeathFailsAllPendingOnce(t *testing.T) {
	net := transport.NewInproc()
	rs := newRawServer(t, net)
	const callers = 8
	rs.serve(func(conn transport.Conn) {
		for i := 0; i < callers; i++ {
			if _, req := readRequest(t, conn); req == nil {
				return
			}
		}
		// All callers are now pending. A half-written reply header then a
		// close is an abrupt wire failure (not a clean shutdown).
		hdr := giop.MarshalReply(nil, giop.BigEndian, &giop.Reply{RequestID: 1})
		conn.Write(hdr[:6])
		conn.Close()
	})
	cl := dial(t, net, rs.addr, ClientConfig{
		Resilience: &ResilienceConfig{BreakerThreshold: 2, MaxRetries: 0},
	})

	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cl.Invoke("echo", "echo", []byte("doomed"), sched.NormPriority)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err == nil {
			t.Errorf("caller %d: expected a wire error, got success", i)
		}
	}
	if got := cl.Inflight(); got != 0 {
		t.Errorf("inflight = %d after connection death", got)
	}
	if st := cl.stripes[0].brk.State(); st != breakerClosed {
		t.Errorf("breaker state = %d after one wire event; %d victims were each counted as a failure", st, callers)
	}
}

// TestMuxStorm64 is the -race storm: 64 invokers hammer one multiplexed
// connection concurrently, every reply must land with its own caller, and
// the pending table must drain completely.
func TestMuxStorm64(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{Concurrency: 16})
	cl := dial(t, net, srv.Addr(), ClientConfig{
		MsgPoolCapacity: 256,
		PipelineDepth:   128,
	})

	const invokers = 64
	const perInvoker = 25
	var wg sync.WaitGroup
	errs := make([]error, invokers)
	for i := 0; i < invokers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perInvoker; j++ {
				payload := []byte(fmt.Sprintf("invoker-%d-call-%d", i, j))
				got, err := cl.Invoke("echo", "echo", payload, sched.NormPriority)
				if err != nil {
					errs[i] = fmt.Errorf("call %d: %w", j, err)
					return
				}
				if !bytes.Equal(got, payload) {
					errs[i] = fmt.Errorf("call %d: cross-talk: got %q want %q", j, got, payload)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("invoker %d: %v", i, err)
		}
	}
	if got := cl.Inflight(); got != 0 {
		t.Errorf("inflight = %d after storm drained", got)
	}
	if n, err := cl.App().Errors(); n != 0 {
		t.Errorf("client handler errors: %d (%v)", n, err)
	}
	if n, err := srv.App().Errors(); n != 0 {
		t.Errorf("server handler errors: %d (%v)", n, err)
	}
}

// TestMuxRemoteProxyConcurrentSends pins the ORB surface remote.Proxy leans
// on: many goroutines pushing oneways through one shared client must all
// multiplex over the single connection with every message arriving exactly
// once (the remote package's own concurrency test rides this same path).
func TestMuxRemoteProxyConcurrentSends(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{Concurrency: 16})

	var mu sync.Mutex
	seen := make(map[string]int)
	srv.RegisterServant("sink", corba.ServantFunc(func(op string, payload []byte) ([]byte, error) {
		mu.Lock()
		seen[string(payload)]++
		mu.Unlock()
		return nil, nil
	}))
	cl := dial(t, net, srv.Addr(), ClientConfig{MsgPoolCapacity: 128})

	const senders = 16
	const perSender = 20
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perSender; j++ {
				payload := []byte(fmt.Sprintf("s%d-m%d", i, j))
				if err := cl.InvokeOneway("sink", "push", payload, sched.NormPriority); err != nil {
					t.Errorf("sender %d msg %d: %v", i, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	// Oneways complete at write time; give the servant a moment to drain.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == senders*perSender || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
		runtime.Gosched()
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != senders*perSender {
		t.Errorf("delivered %d distinct messages, want %d", len(seen), senders*perSender)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("message %q delivered %d times", k, n)
		}
	}
}
