package orb

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/sched"
	"repro/internal/transport"
)

// sentByAddr folds StripeStates into per-member sent counts.
func sentByAddr(cl *Client) map[string]int64 {
	out := make(map[string]int64)
	for _, ss := range cl.StripeStates() {
		out[ss.Addr] += ss.Sent
	}
	return out
}

// TestReplicaStripesSpreadMembers dials a 2-member replica set and demands
// both members carry traffic: stripes are assigned round-robin over Addrs,
// and P2C keeps idle bands drifting between them.
func TestReplicaStripesSpreadMembers(t *testing.T) {
	net := transport.NewInproc()
	startEchoServer(t, net, "r0", ServerConfig{Concurrency: 8})
	startEchoServer(t, net, "r1", ServerConfig{Concurrency: 8})
	cl := dial(t, net, "", ClientConfig{
		Addrs: []string{"r0", "r1"}, Channels: 4, PipelineDepth: 32,
	})

	if len(cl.stripes) != 4 {
		t.Fatalf("Channels=4 built %d stripes", len(cl.stripes))
	}
	for i, st := range cl.stripes {
		want := []string{"r0", "r1"}[i%2]
		if got := st.target(); got != want {
			t.Errorf("stripe %d targets %q, want %q", i, got, want)
		}
	}
	for round := 0; round < 4; round++ {
		for p := sched.MinPriority; p <= sched.MaxPriority; p++ {
			payload := []byte(fmt.Sprintf("r%d-p%d", round, p))
			got, err := cl.Invoke("echo", "echo", payload, p)
			if err != nil {
				t.Fatalf("round %d prio %d: %v", round, p, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("round %d prio %d: got %q", round, p, got)
			}
		}
	}
	by := sentByAddr(cl)
	if by["r0"] == 0 || by["r1"] == 0 {
		t.Errorf("traffic split %v; both members should carry load", by)
	}
}

// TestReplicaFailoverAndReadd is the member-death story at the orb layer:
// with 3 replicas and a Resolve hook, killing one member must (a) keep every
// invocation succeeding, (b) never open any stripe's breaker — the dead
// connection is a clean close and the one failed redial is under threshold —
// and (c) once the member is restarted and Retarget runs, it must receive
// traffic again.
func TestReplicaFailoverAndReadd(t *testing.T) {
	net := transport.NewInproc()
	addrs := []string{"m0", "m1", "m2"}
	startEchoServer(t, net, "m0", ServerConfig{Concurrency: 8})
	victim := startEchoServer(t, net, "m1", ServerConfig{Concurrency: 8})
	startEchoServer(t, net, "m2", ServerConfig{Concurrency: 8})

	var mu sync.Mutex
	live := []string{"m0", "m1", "m2"}
	setLive := func(a ...string) { mu.Lock(); live = a; mu.Unlock() }

	cl := dial(t, net, "", ClientConfig{
		Addrs:    addrs,
		Channels: 3,
		Resolve: func() ([]string, error) {
			mu.Lock()
			defer mu.Unlock()
			return append([]string(nil), live...), nil
		},
		Resilience: &ResilienceConfig{BreakerThreshold: 5, MaxRetries: 3},
	})

	invokeSweep := func(tag string) {
		t.Helper()
		for p := sched.MinPriority; p <= sched.MaxPriority; p++ {
			payload := []byte(fmt.Sprintf("%s-p%d", tag, p))
			got, err := cl.InvokeIdempotent("echo", "echo", payload, p)
			if err != nil {
				t.Fatalf("%s prio %d: %v", tag, p, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("%s prio %d: got %q", tag, p, got)
			}
		}
	}
	invokeSweep("warmup")

	// Kill m1. Its stripe's connection dies cleanly; the next invocation
	// routed there redials, fails once, resolves, and lands on a survivor.
	setLive("m0", "m2")
	victim.Close()
	for round := 0; round < 4; round++ {
		invokeSweep(fmt.Sprintf("kill%d", round))
	}
	for i, st := range cl.stripes {
		if s := st.brk.State(); s != breakerClosed {
			t.Errorf("stripe %d breaker state = %d after member death, want closed", i, s)
		}
		if st.target() == "m1" {
			t.Errorf("stripe %d still targets the dead member", i)
		}
	}

	// Restart m1 and re-add it. Retarget reassigns stripes round-robin, so
	// some stripe targets m1 again; the next sweeps must put traffic on it.
	startEchoServer(t, net, "m1", ServerConfig{Concurrency: 8})
	setLive("m0", "m1", "m2")
	before := sentByAddr(cl)["m1"]
	cl.Retarget(addrs)
	for round := 0; round < 4; round++ {
		invokeSweep(fmt.Sprintf("readd%d", round))
	}
	if after := sentByAddr(cl)["m1"]; after <= before {
		t.Errorf("re-added member got no traffic (sent %d -> %d)", before, after)
	}
	for i, st := range cl.stripes {
		if s := st.brk.State(); s != breakerClosed {
			t.Errorf("stripe %d breaker state = %d after re-add, want closed", i, s)
		}
	}
}

// TestServerLocateForward installs a forwarder on a server with no matching
// servant and demands the Locate probe comes back OBJECT_FORWARD with the
// group's addresses, while a locally-served key still answers OBJECT_HERE.
func TestServerLocateForward(t *testing.T) {
	net := transport.NewInproc()
	srv := startEchoServer(t, net, "", ServerConfig{})
	srv.SetLocateForwarder(func(key []byte) []string {
		if string(key) == "group/echo" {
			return []string{"m0", "m1", "m2"}
		}
		return nil
	})
	cl := dial(t, net, srv.Addr(), ClientConfig{})
	// The Transport dials on first submission; warm it up.
	if _, err := cl.Invoke("echo", "echo", []byte("warmup"), sched.NormPriority); err != nil {
		t.Fatal(err)
	}

	here, fwd, err := cl.LocateEx("group/echo")
	if err != nil {
		t.Fatal(err)
	}
	if here {
		t.Error("forwarded key reported OBJECT_HERE")
	}
	if len(fwd) != 3 || fwd[0] != "m0" || fwd[1] != "m1" || fwd[2] != "m2" {
		t.Errorf("forward list = %v, want [m0 m1 m2]", fwd)
	}

	here, fwd, err = cl.LocateEx("echo")
	if err != nil {
		t.Fatal(err)
	}
	if !here || fwd != nil {
		t.Errorf("local key: here=%v fwd=%v, want here and no forward", here, fwd)
	}

	here, fwd, err = cl.LocateEx("nowhere")
	if err != nil {
		t.Fatal(err)
	}
	if here || fwd != nil {
		t.Errorf("unknown key: here=%v fwd=%v, want neither", here, fwd)
	}
}
