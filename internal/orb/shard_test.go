package orb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"repro/internal/corba"
	"repro/internal/giop"
	"repro/internal/sched"
	"repro/internal/transport"
)

// shardCounts is the sweep every determinism test runs: the inline path,
// a small shard pool, and a pool wider than GOMAXPROCS on CI machines.
var shardCounts = []int{1, 2, 8}

// TestShardSubmissionOrderPerBand pins the determinism contract sharding
// must not break: requests from one connection land on one shard, so a
// single submitter's requests are processed in submission order within each
// priority band — at every shard count. Two bands are interleaved; each
// band's sequence numbers must arrive strictly increasing.
func TestShardSubmissionOrderPerBand(t *testing.T) {
	for _, shards := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			net := transport.NewInproc()
			srv := startEchoServer(t, net, "", ServerConfig{
				Shards: shards,
				// Inline dispatch on the shard goroutine: any cross-request
				// reorder would be the shard's fault, not a worker pool's.
				Synchronous: true,
			})

			var mu sync.Mutex
			arrivals := map[sched.Priority][]uint64{}
			srv.RegisterServant("order", corba.ServantFunc(func(op string, payload []byte) ([]byte, error) {
				seq := binary.BigEndian.Uint64(payload[:8])
				prio := sched.Priority(payload[8])
				mu.Lock()
				arrivals[prio] = append(arrivals[prio], seq)
				mu.Unlock()
				return nil, nil
			}))

			cl := dial(t, net, srv.Addr(), ClientConfig{ReactorShards: shards, Synchronous: true})

			const perBand = 40
			bands := []sched.Priority{sched.NormPriority, sched.MaxPriority - 1}
			var payload [9]byte
			for seq := 0; seq < perBand; seq++ {
				for _, prio := range bands {
					binary.BigEndian.PutUint64(payload[:8], uint64(seq))
					payload[8] = byte(prio)
					// Two-way invokes from one goroutine: each submission is
					// acknowledged before the next, so arrival order at the
					// servant is the submission order — unless a shard
					// scrambled the connection's stream.
					if _, err := cl.Invoke("order", "mark", payload[:], prio); err != nil {
						t.Fatalf("seq %d prio %d: %v", seq, prio, err)
					}
				}
			}

			mu.Lock()
			defer mu.Unlock()
			for _, prio := range bands {
				got := arrivals[prio]
				if len(got) != perBand {
					t.Fatalf("band %d: %d arrivals, want %d", prio, len(got), perBand)
				}
				for i, seq := range got {
					if seq != uint64(i) {
						t.Fatalf("band %d: arrival %d has seq %d; shard reordered the connection", prio, i, seq)
					}
				}
			}
		})
	}
}

// TestShardStorm re-runs the 64-invoker storm at each shard count: replies
// must land with their own callers and the pending tables must drain, with
// both the client reactor and the server dispatch sharded.
func TestShardStorm(t *testing.T) {
	for _, shards := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			net := transport.NewInproc()
			srv := startEchoServer(t, net, "", ServerConfig{Shards: shards, Concurrency: 8})
			cl := dial(t, net, srv.Addr(), ClientConfig{
				ReactorShards:   shards,
				MsgPoolCapacity: 256,
				PipelineDepth:   128,
			})

			const invokers = 64
			const perInvoker = 10
			var wg sync.WaitGroup
			errs := make([]error, invokers)
			for i := 0; i < invokers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for j := 0; j < perInvoker; j++ {
						payload := []byte(fmt.Sprintf("invoker-%d-call-%d", i, j))
						got, err := cl.Invoke("echo", "echo", payload, sched.NormPriority)
						if err != nil {
							errs[i] = fmt.Errorf("call %d: %w", j, err)
							return
						}
						if !bytes.Equal(got, payload) {
							errs[i] = fmt.Errorf("call %d: cross-talk: got %q want %q", j, got, payload)
							return
						}
					}
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Errorf("invoker %d: %v", i, err)
				}
			}
			if got := cl.Inflight(); got != 0 {
				t.Errorf("inflight = %d after storm drained", got)
			}
			if n, err := srv.App().Errors(); n != 0 {
				t.Errorf("server handler errors: %d (%v)", n, err)
			}
		})
	}
}

// TestShardConnDeathFailsOnce re-runs the connection-death contract at each
// reactor shard count: all pending callers fail, the pending segments drain,
// and the breaker counts the wire event once, not once per victim.
func TestShardConnDeathFailsOnce(t *testing.T) {
	for _, shards := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			net := transport.NewInproc()
			rs := newRawServer(t, net)
			const callers = 8
			rs.serve(func(conn transport.Conn) {
				for i := 0; i < callers; i++ {
					if _, req := readRequest(t, conn); req == nil {
						return
					}
				}
				hdr := giop.MarshalReply(nil, giop.BigEndian, &giop.Reply{RequestID: 1})
				conn.Write(hdr[:6])
				conn.Close()
			})
			cl := dial(t, net, rs.addr, ClientConfig{
				ReactorShards: shards,
				Resilience:    &ResilienceConfig{BreakerThreshold: 2, MaxRetries: 0},
			})

			var wg sync.WaitGroup
			errs := make([]error, callers)
			for i := 0; i < callers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, errs[i] = cl.Invoke("echo", "echo", []byte("doomed"), sched.NormPriority)
				}(i)
			}
			wg.Wait()

			for i, err := range errs {
				if err == nil {
					t.Errorf("caller %d: expected a wire error, got success", i)
				}
			}
			if got := cl.Inflight(); got != 0 {
				t.Errorf("inflight = %d after connection death", got)
			}
			if st := cl.stripes[0].brk.State(); st != breakerClosed {
				t.Errorf("breaker state = %d after one wire event", st)
			}
		})
	}
}
