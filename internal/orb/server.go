package orb

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corba"
	"repro/internal/core"
	"repro/internal/giop"
	"repro/internal/memory"
	"repro/internal/overload"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// serverSpanLabel marks the server-side request-processing span.
var serverSpanLabel = telemetry.Label("orb.server.request")

// ServerConfig parameterises a Compadres ORB server.
type ServerConfig struct {
	// Network and Addr select where to listen.
	Network transport.Network
	Addr    string
	// MaxMessage bounds a request body; zero selects DefaultMaxMessage.
	MaxMessage int
	// ScopePoolCount pre-creates that many RequestProcessing scopes; zero
	// creates fresh scopes per instantiation.
	ScopePoolCount int
	// Synchronous dispatches ports on the reading thread instead of port
	// thread pools.
	Synchronous bool
	// MsgPoolCapacity overrides the per-type message pool capacity.
	MsgPoolCapacity int
	// Concurrency bounds how many requests one connection processes at
	// once (the RequestProcessing pool width). Pipelined clients keep that
	// many servant invocations in flight; replies go out in completion
	// order, not arrival order. Zero selects DefaultConcurrency.
	Concurrency int
	// Coalesce opts reply writes into adaptive write coalescing
	// (coalesce.go): replies completing close together flush as one
	// vectored write per connection. Nil disables coalescing; SendWidth is
	// ignored (reply concurrency is Concurrency).
	Coalesce *CoalesceConfig
	// Shards moves request demultiplexing off the per-connection reader
	// goroutines onto a fixed pool of dispatch shards: each connection is
	// hashed to one shard at accept time (so per-connection FIFO order is
	// preserved) and its reader only frames bytes, handing whole frames to
	// the shard for priority peeking and port dispatch. This removes the
	// one-goroutine-per-connection dispatch ceiling when many connections
	// multiplex onto few cores. Zero keeps dispatch inline on the reader
	// (the pre-shard behaviour); AutoShards sizes the pool to GOMAXPROCS;
	// explicit positive values are honoured as given (tests pin 1/2/8).
	Shards int
	// Overload opts the server into closed-loop overload control (see
	// internal/overload): every request is classified by its tenant service
	// context and admitted, credited, or shed before demarshalling; admitted
	// requests queue on a tenant-fair port (DRR across tenant classes within
	// each priority band, EDF within a class) and their completion latency
	// drives the AIMD in-flight limit and the brown-out ladder. Nil (the
	// default) keeps the uncontrolled dispatch path bit-for-bit.
	Overload *overload.Controller
	// RequestDeadline, with Overload set, stamps every admitted request with
	// a relative queueing deadline: work still queued past it is shed at
	// dequeue (counted as deadline_shed_total, answered with a shed reply)
	// instead of executing late. Zero stamps no deadline.
	RequestDeadline time.Duration
}

// AutoShards selects a GOMAXPROCS-bounded shard count for
// ServerConfig.Shards and ClientConfig.ReactorShards.
const AutoShards = -1

// maxShards bounds explicit shard counts.
const maxShards = 64

// resolveShards maps a Shards knob to a concrete count: 0 stays 0 (inline),
// AutoShards becomes GOMAXPROCS, and anything else clamps to [1, maxShards].
func resolveShards(n int) int {
	if n == 0 {
		return 0
	}
	if n == AutoShards {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	return n
}

// DefaultConcurrency is the per-connection request-processing width used
// when ServerConfig.Concurrency is zero. It is sized so the default
// message-pool capacity comfortably covers queued plus in-process requests.
const DefaultConcurrency = 8

// Server is the component-structured ORB server of Fig. 10 (right):
// ORB → POA/Acceptor → per-connection Transport → per-request
// RequestProcessing.
type Server struct {
	app    *core.App
	poa    *core.Component
	ln     transport.Listener
	net    transport.Network // the listen network, for the collocation registry
	maxMsg int

	// servants is copy-on-write: lookups (per request, keyed by the raw
	// ObjectKey bytes) read a plain map through one atomic load, which lets
	// the compiler elide the []byte→string conversion; registration swaps in
	// a fresh copy under mu.
	servants atomic.Pointer[map[string]corba.Servant]

	// locateFwd, when set, answers Locate probes for keys with no local
	// servant: a non-empty address list becomes a LocateObjectForward reply.
	// This is how a group directory redirects clients to live replicas.
	locateFwd atomic.Pointer[func(key []byte) []string]

	// retiring is the copy-on-write set of object keys whose servants were
	// unregistered by a drain: stragglers addressing them get a shed reply
	// with a retry-after hint (pointing them at their directory's surviving
	// replicas) instead of the terminal ErrNoServant.
	retiring atomic.Pointer[map[string]struct{}]

	// inflight counts dispatched-but-not-recycled requests across every
	// connection; Drain polls it to zero.
	inflight atomic.Int64

	mu      sync.Mutex
	conns   []*serverConn
	handles []*core.Handle
	connSeq atomic.Uint64
	closed  atomic.Bool
	wg      sync.WaitGroup

	threading   core.Threading
	usePool     bool
	rpSize      int64
	repPool     *memory.ScopePool
	concurrency int
	coalesce    *CoalesceConfig // nil unless ServerConfig.Coalesce was set

	// ctrl is the overload controller (nil = uncontrolled); reqDeadline the
	// queueing deadline stamped on admitted requests when ctrl is set.
	ctrl        *overload.Controller
	reqDeadline time.Duration

	// shards is the dispatch pool (empty = inline dispatch on the reader);
	// shardWg tracks its goroutines and gauges their telemetry handles.
	shards  []*dispatchShard
	shardWg sync.WaitGroup
	gauges  []*telemetry.GaugeHandle
}

// dispatchShard is one dispatch lane: connections hashed to it enqueue
// framed requests on ch; its goroutine runs the GetMessage → priority peek →
// port Send sequence that the reader loop would otherwise run inline. The
// channel is bounded, so a shard that falls behind parks its readers — the
// same wire-level backpressure the inline path gets from OverflowBlock.
type dispatchShard struct {
	ch         chan inbound
	dispatched atomic.Int64
}

// inbound is one framed request travelling reader → shard. The frame
// reference travels with it: the shard's dispatch either hands it to a
// pooled message (released on recycle) or releases it on a failed dispatch.
type inbound struct {
	sc   *serverConn
	toRP *core.OutPort
	h    giop.Header
	fb   *giop.FrameBuf
}

// serverConn is the per-connection state owned by a Transport instance.
type serverConn struct {
	conn transport.Conn
	wmu  sync.Mutex // serialises reply writes (uncoalesced path)
	co   *coalescer // nil unless ServerConfig.Coalesce was set
	// shard is the dispatch shard this connection hashed to at accept time
	// (nil = inline dispatch). Fixed per connection, so one connection's
	// requests dispatch in arrival order regardless of shard count.
	shard *dispatchShard
}

// write sends one framed message: through the reply coalescer when
// configured (blocking until a vectored flush covers the frame — the reply
// buffer lives in a pooled request scope reclaimed when the handler
// returns), else directly under the write lock.
func (sc *serverConn) write(b []byte) error {
	if sc.co != nil {
		err, _ := sc.co.write(b)
		return err
	}
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	_, err := sc.conn.Write(b)
	return err
}

// NewServer builds the server component structure and binds the listener.
// Call Serve (or ServeBackground) to start accepting.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Network == nil {
		return nil, fmt.Errorf("orb: nil network")
	}
	maxMsg := cfg.MaxMessage
	if maxMsg == 0 {
		maxMsg = DefaultMaxMessage
	}
	rpSize := int64(4*maxMsg + 8192)
	concurrency := cfg.Concurrency
	if concurrency <= 0 {
		concurrency = DefaultConcurrency
	}

	appCfg := core.AppConfig{Name: "CompadresORBServer", ImmortalSize: 1 << 20}
	if cfg.MsgPoolCapacity != 0 {
		appCfg.MsgPoolCapacity = cfg.MsgPoolCapacity
	} else if need := 3*concurrency + 8; need > core.DefaultMsgPoolCapacity {
		// A connection can hold queue (2×concurrency) plus in-process
		// (concurrency) requests outstanding; the message pool must cover
		// that or the reader loop sheds connections under pipelined load.
		appCfg.MsgPoolCapacity = need
	}
	if cfg.ScopePoolCount > 0 {
		appCfg.ScopePools = []core.ScopePoolSpec{
			// Level 3 holds the RequestProcessing scopes (ORB is level 0,
			// POA 1, Transport 2).
			{Level: 3, AreaSize: rpSize, Count: cfg.ScopePoolCount, Grow: true},
		}
	}
	app, err := core.NewApp(appCfg)
	if err != nil {
		return nil, err
	}

	// Reply buffers live in pooled per-request scopes nested under
	// RequestProcessing, so pipelined requests cannot exhaust the
	// component's fixed region.
	repPool, err := app.Model().NewScopePool(memory.ScopePoolConfig{
		Name:     "orb.server.reply",
		AreaSize: int64(2*maxMsg + 4096),
		Count:    4,
		Grow:     true,
	})
	if err != nil {
		app.Stop()
		return nil, err
	}

	srv := &Server{
		app:         app,
		maxMsg:      maxMsg,
		threading:   core.ThreadingShared,
		usePool:     cfg.ScopePoolCount > 0,
		rpSize:      rpSize,
		repPool:     repPool,
		concurrency: concurrency,
		ctrl:        cfg.Overload,
		reqDeadline: cfg.RequestDeadline,
	}
	if cfg.Synchronous {
		srv.threading = core.ThreadingSynchronous
	}
	if cfg.Coalesce != nil {
		co := cfg.Coalesce.withDefaults()
		srv.coalesce = &co
	}
	if n := resolveShards(cfg.Shards); n > 0 {
		for i := 0; i < n; i++ {
			sh := &dispatchShard{ch: make(chan inbound, 2*concurrency)}
			srv.shards = append(srv.shards, sh)
			srv.shardWg.Add(1)
			go srv.shardLoop(sh)
			srv.gauges = append(srv.gauges, telemetry.Default.RegisterGauge(
				"shard_dispatched", fmt.Sprintf("orb.server.shard%d", i),
				func() int64 { return sh.dispatched.Load() }))
		}
	}

	ln, err := cfg.Network.Listen(cfg.Addr)
	if err != nil {
		srv.stopShards()
		app.Stop()
		return nil, err
	}
	srv.ln = ln

	_, err = app.NewImmortalComponent("ORB", func(c *core.Component) error {
		return c.DefineChild(core.ChildDef{
			Name:       "POA",
			MemorySize: 1 << 16,
			Persistent: true,
			Setup: func(poa *core.Component) error {
				srv.poa = poa
				return nil
			},
		})
	})
	if err != nil {
		ln.Close()
		srv.stopShards()
		app.Stop()
		return nil, err
	}
	if err := app.Start(); err != nil {
		ln.Close()
		srv.stopShards()
		app.Stop()
		return nil, err
	}
	// Instantiate the POA/Acceptor (level-2 scope in the paper's counting)
	// and keep it pinned for the server's lifetime.
	h, err := app.Component("ORB").SMM().Connect("POA")
	if err != nil {
		ln.Close()
		srv.stopShards()
		app.Stop()
		return nil, err
	}
	srv.mu.Lock()
	srv.handles = append(srv.handles, h)
	srv.mu.Unlock()
	// Publish the endpoint to the process-local collocation registry
	// (local.go): a Collocate-enabled client in this process dialling this
	// network+address invokes servants directly.
	srv.net = cfg.Network
	registerLocal(srv.net, ln.Addr(), srv)
	return srv, nil
}

// RegisterServant binds a servant to an object key.
func (s *Server) RegisterServant(key string, sv corba.Servant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var old map[string]corba.Servant
	if p := s.servants.Load(); p != nil {
		old = *p
	}
	m := make(map[string]corba.Servant, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[key] = sv
	s.servants.Store(&m)
	s.setRetiringLocked(key, false)
}

// UnregisterServant unbinds a servant and marks its key retiring: requests
// already queued (or racing the unbind) are answered with a retry-after
// shed reply instead of ErrNoServant, so a draining replica's stragglers
// re-route through their directory rather than surfacing errors. Pair with
// Drain to wait out the in-flight tail.
func (s *Server) UnregisterServant(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.servants.Load()
	if old == nil {
		s.setRetiringLocked(key, true)
		return
	}
	if _, ok := (*old)[key]; !ok {
		s.setRetiringLocked(key, true)
		return
	}
	m := make(map[string]corba.Servant, len(*old)-1)
	for k, v := range *old {
		if k != key {
			m[k] = v
		}
	}
	s.servants.Store(&m)
	s.setRetiringLocked(key, true)
}

// setRetiringLocked adds or removes key on the copy-on-write retiring set.
// Called with s.mu held.
func (s *Server) setRetiringLocked(key string, retiring bool) {
	var old map[string]struct{}
	if p := s.retiring.Load(); p != nil {
		old = *p
	}
	if _, ok := old[key]; ok == retiring {
		return
	}
	m := make(map[string]struct{}, len(old)+1)
	for k := range old {
		m[k] = struct{}{}
	}
	if retiring {
		m[key] = struct{}{}
	} else {
		delete(m, key)
	}
	s.retiring.Store(&m)
}

// isRetiring reports whether key was unregistered by a drain.
func (s *Server) isRetiring(key []byte) bool {
	p := s.retiring.Load()
	if p == nil {
		return false
	}
	_, ok := (*p)[string(key)]
	return ok
}

// Inflight returns the dispatched-but-not-completed request count.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// Drain waits — bounded by timeout, zero selecting one second — for every
// dispatched request to complete: queued, in-servant, and writing-reply
// work all count. It does not stop the listener or refuse new requests;
// the caller removes the server from its directory (and unregisters
// retiring servants) first, so the tail it waits on is finite.
func (s *Server) Drain(timeout time.Duration) error {
	if timeout == 0 {
		timeout = time.Second
	}
	deadline := time.Now().Add(timeout)
	for s.inflight.Load() > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("orb server: drain: %d requests still in flight after %v",
				s.inflight.Load(), timeout)
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}

// SetLocateForwarder installs fn, consulted by the Locate path when no local
// servant matches the probed key: a non-empty return becomes a
// LocateObjectForward reply carrying those addresses (the forwarding
// references of §Cluster). fn runs on connection reader threads and must be
// safe for concurrent use; the key slice is only valid for the call.
func (s *Server) SetLocateForwarder(fn func(key []byte) []string) {
	s.locateFwd.Store(&fn)
}

// locateStatus answers one Locate probe: a local servant is OBJECT_HERE, a
// forwarder hit is OBJECT_FORWARD with the group's addresses, anything else
// UNKNOWN_OBJECT.
func (s *Server) locateStatus(key []byte) (giop.LocateStatus, []string) {
	if _, ok := s.servant(key); ok {
		return giop.LocateObjectHere, nil
	}
	if p := s.locateFwd.Load(); p != nil {
		if addrs := (*p)(key); len(addrs) > 0 {
			return giop.LocateObjectForward, addrs
		}
	}
	return giop.LocateUnknownObject, nil
}

// servant resolves an object key without copying it to a string on the heap.
func (s *Server) servant(key []byte) (corba.Servant, bool) {
	p := s.servants.Load()
	if p == nil {
		return nil, false
	}
	sv, ok := (*p)[string(key)]
	return sv, ok
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr() }

// App exposes the underlying component application.
func (s *Server) App() *core.App { return s.app }

// ServeBackground starts the accept loop on its own goroutine — the
// POA/Acceptor component "listens to and waits for client request
// messages".
func (s *Server) ServeBackground() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop()
	}()
}

// wireErr normalises a raw transport failure into a *transport.OpError so
// errors.Is(err, transport.ErrClosed) and errors.As with *transport.OpError
// behave uniformly whichever network produced it; errors already wrapped
// pass through unchanged.
func wireErr(op, addr string, err error) error {
	var oe *transport.OpError
	if errors.As(err, &oe) {
		return err
	}
	return &transport.OpError{Op: op, Addr: addr, Err: err}
}

// cleanClose reports whether err is routine connection/listener teardown
// rather than an abrupt failure worth a fault record.
func cleanClose(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, transport.ErrClosed)
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			// A closed listener is normal shutdown; anything else is a
			// fault worth recording before the loop exits.
			if !cleanClose(err) && !s.closed.Load() {
				telemetry.RecordFault("orb.server.accept", wireErr("accept", s.ln.Addr(), err))
			}
			return
		}
		if s.closed.Load() {
			conn.Close()
			return
		}
		if err := s.addConnection(conn); err != nil {
			conn.Close()
		}
	}
}

// addConnection builds the per-connection Transport component (a scoped
// child of the POA) and pins it open for the connection's lifetime.
func (s *Server) addConnection(conn transport.Conn) error {
	seq := s.connSeq.Add(1)
	sc := &serverConn{conn: conn}
	if s.coalesce != nil {
		sc.co = newCoalescer(conn, *s.coalesce, nil)
	}
	if n := len(s.shards); n > 0 {
		// Fixed connection→shard assignment: one connection's requests all
		// dispatch through one lane, preserving their arrival order.
		sc.shard = s.shards[int((seq-1)%uint64(n))]
	}
	s.mu.Lock()
	s.conns = append(s.conns, sc)
	s.mu.Unlock()

	name := fmt.Sprintf("Transport%d", seq)
	if err := s.poa.DefineChild(core.ChildDef{
		Name:       name,
		MemorySize: int64(8*s.maxMsg + 32768),
		Persistent: true,
		Setup:      s.transportSetup(sc),
	}); err != nil {
		return err
	}
	h, err := s.poa.SMM().Connect(name)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.handles = append(s.handles, h)
	s.mu.Unlock()
	return nil
}

// transportSetup wires one Transport instance: the Out port feeding its
// RequestProcessing child and the reader loop that frames GIOP requests.
func (s *Server) transportSetup(sc *serverConn) func(*core.Component) error {
	return func(tc *core.Component) error {
		tSMM := tc.SMM()
		toRP, err := core.AddOutPort(tc, tSMM, core.OutPortConfig{
			Name: "toRP", Type: requestType, Dests: []string{"RequestProcessing.request"},
		})
		if err != nil {
			return err
		}
		if s.ctrl != nil && s.reqDeadline > 0 {
			// Stamp every admitted request's queueing deadline; the fair
			// port's ShedExpired sheds what outlives it at dequeue.
			toRP.SetSendDeadline(s.reqDeadline)
		}
		if err := tc.DefineChild(core.ChildDef{
			Name:       "RequestProcessing",
			MemorySize: s.rpSize,
			UsePool:    s.usePool,
			// Pure-declaration Setup: the shell is revived across requests,
			// only the scoped area cycles.
			Reusable: true,
			Setup: func(rp *core.Component) error {
				// Concurrency pool workers dispatch requests side by side;
				// the bounded buffer plus OverflowBlock turns "queue full"
				// into the reader loop parking, which in turn stops reading
				// the socket — wire-level backpressure instead of a dropped
				// connection when a pipelined client runs ahead of the
				// servants.
				// With overload control the queue turns tenant-fair: DRR
				// across tenant classes within each priority band, EDF
				// within a class, and already-dead work shed at dequeue
				// instead of executed.
				_, err := core.AddInPort(rp, tSMM, core.InPortConfig{
					Name: "request", Type: requestType, Threading: s.threading,
					MinThreads: 1, MaxThreads: s.concurrency,
					BufferSize:  2 * s.concurrency,
					Overflow:    core.OverflowBlock,
					Fair:        s.ctrl != nil,
					ShedExpired: s.ctrl != nil,
					Handler:     core.HandlerFunc(s.processRequest),
				})
				return err
			},
		}); err != nil {
			return err
		}
		tc.SetStart(func(p *core.Proc) error {
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.readLoop(sc, toRP)
			}()
			return nil
		})
		return nil
	}
}

// readLoop frames inbound GIOP messages and relays each into the
// RequestProcessing scope through the component port. Frames are read
// directly into pooled, refcounted buffers (giop.AcquireFrame) and the
// request bytes are never copied again: the dispatched message's raw slice
// aliases the frame, and the frame reference is released when the pooled
// message is recycled after its handler returns. Requests dispatch
// concurrently (up to the configured Concurrency) and each reply goes out
// under the connection's write lock as its servant finishes — out of order
// when completions cross — while the demultiplexing client matches them
// back to callers by request id. With shards configured, the reader only
// frames bytes; the connection's dispatch shard runs the peek-and-send.
func (s *Server) readLoop(sc *serverConn, toRP *core.OutPort) {
	fr := giop.NewFrameReader(sc.conn, uint32(s.maxMsg))
	defer fr.Close()
	for {
		h, fb, err := fr.NextFrame()
		if err != nil {
			// EOF and closed-pipe are normal teardown; anything else —
			// a peer vanishing mid-frame, a short read, an over-limit
			// frame — is an abrupt failure worth a fault record. Either
			// way the connection is done.
			if !cleanClose(err) {
				telemetry.RecordFault("orb.server.read", wireErr("read", s.ln.Addr(), err))
			}
			sc.conn.Close()
			return
		}
		switch h.Type {
		case giop.MsgRequest:
			if sc.shard != nil {
				// Hand the frame (and its reference) to the connection's
				// dispatch lane. The bounded channel is the backpressure:
				// a full lane parks this reader, which stops reading the
				// socket. Shard channels outlive every reader (Close drains
				// them only after the readers exit), so the send is safe.
				sc.shard.ch <- inbound{sc: sc, toRP: toRP, h: h, fb: fb}
				continue
			}
			if !s.dispatch(sc, toRP, h, fb) {
				sc.conn.Close()
				return
			}
		case giop.MsgLocateRequest:
			// Locate is a transport-level probe; answer on the reader
			// thread without entering the component structure.
			var req giop.LocateRequest
			err := giop.DecodeLocateRequest(h.Order, fb.Body(), &req)
			if err != nil {
				fb.Release()
				sc.conn.Close()
				return
			}
			status, fwd := s.locateStatus(req.ObjectKey)
			fb.Release() // req.ObjectKey is dead past this point
			wb := giop.GetBuffer()
			wb.B = giop.MarshalLocateReply(wb.B, h.Order, &giop.LocateReply{
				RequestID: req.RequestID, Status: status, Forward: fwd,
			})
			err = sc.write(wb.B)
			giop.PutBuffer(wb)
			if err != nil {
				if !cleanClose(err) {
					telemetry.RecordFault("orb.server.write", wireErr("write", s.ln.Addr(), err))
				}
				sc.conn.Close()
				return
			}
		case giop.MsgCloseConnection:
			fb.Release()
			sc.conn.Close()
			return
		default:
			// Ignore other message types.
			fb.Release()
		}
	}
}

// stopShards closes the dispatch lanes, waits the shard goroutines out, and
// unregisters their gauges. Callers must guarantee no reader can still send
// into a lane (no readers were ever started, or wg.Wait has returned).
func (s *Server) stopShards() {
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.shardWg.Wait()
	for _, g := range s.gauges {
		g.Unregister()
	}
	s.shards, s.gauges = nil, nil
}

// shardLoop drains one dispatch lane until Close closes its channel (after
// every reader goroutine has exited). A failed dispatch closes the offending
// connection but keeps the lane serving its other connections.
func (s *Server) shardLoop(sh *dispatchShard) {
	defer s.shardWg.Done()
	for in := range sh.ch {
		if s.dispatch(in.sc, in.toRP, in.h, in.fb) {
			sh.dispatched.Add(1)
		} else {
			in.sc.conn.Close()
		}
	}
}

// dispatch moves one framed request into the RequestProcessing port: it
// takes ownership of the frame reference, handing it to the pooled message
// on success (released when the message recycles) and releasing it on a
// failed message grab. It reports false when the connection should drop —
// pool exhaustion is answered with disconnection, the hard-real-time stance
// on overload.
func (s *Server) dispatch(sc *serverConn, toRP *core.OutPort, h giop.Header, fb *giop.FrameBuf) bool {
	if s.ctrl != nil {
		return s.dispatchAdmitted(sc, toRP, h, fb)
	}
	msg, err := toRP.GetMessage()
	if err != nil {
		fb.Release()
		return false
	}
	m := msg.(*requestMsg)
	m.setFrame(fb, h.Order)
	m.conn = sc
	m.inflight = &s.inflight
	s.inflight.Add(1)
	// Dispatch at the priority the client stamped on the request, so a
	// high-priority invocation overtakes queued lower ones instead of
	// waiting behind the arrival order.
	prio := sched.NormPriority
	if p, ok := giop.PeekRequestPriority(h.Order, m.raw); ok {
		if cand := sched.Priority(p); cand.Valid() {
			prio = cand
		}
	}
	// On a send error the enqueue path has already recycled the message
	// (envelope completion runs Reset), releasing the frame reference with it.
	return toRP.Send(msg, prio) == nil
}

// dispatchAdmitted is the overload-controlled dispatch path: one alloc-free
// peek classifies the request (tenant id, tier, priority, response
// expectation) before anything is demarshalled or pooled, and the controller
// decides its fate. A rejection answers expecting callers with a shed reply
// and keeps the connection — overload is a load condition, not a protocol
// error. An admission hands the request to the pooled message armed with the
// controller slot: done, OnShed, or Reset releases it exactly once.
func (s *Server) dispatchAdmitted(sc *serverConn, toRP *core.OutPort, h giop.Header, fb *giop.FrameBuf) bool {
	info, peeked := giop.PeekRequestInfo(h.Order, fb.Body())
	prio := sched.NormPriority
	if peeked {
		if cand := sched.Priority(info.Priority); cand.Valid() {
			prio = cand
		}
	}
	admitAt := telemetry.Now()
	d := s.ctrl.Admit(info.TenantID, overload.Tier(info.TenantTier), prio)
	if !d.OK {
		if peeked && info.ResponseExpected {
			// The brown-out shed carries the controller's back-off hint, so
			// the client paces its retry to the server's recovery horizon.
			writeShedReply(sc, h.Order, info.RequestID, int64(s.ctrl.RetryAfter()))
		}
		fb.Release()
		return true
	}
	msg, err := toRP.GetMessage()
	if err != nil {
		s.ctrl.Dropped()
		fb.Release()
		return false
	}
	m := msg.(*requestMsg)
	m.setFrame(fb, h.Order)
	m.conn = sc
	m.ctrl = s.ctrl
	m.admitAt = admitAt
	m.class = d.Class
	m.inflight = &s.inflight
	s.inflight.Add(1)
	// On a send error the enqueue path has already recycled the message
	// (Reset), releasing the frame reference and the controller slot with it.
	return toRP.Send(msg, prio) == nil
}

// shedReplyPayload is the body of the system exception answering a shed
// request.
var shedReplyPayload = []byte("orb: overload: request shed")

// writeShedReply answers one shed request with a system-exception reply so
// the caller fails fast instead of hanging until its invoke timeout. A
// positive retryAfterNs rides along in the retry-after service context as
// the suggested back-off. Best effort: a write failure means the connection
// is dying, and its reader loop owns that diagnosis.
func writeShedReply(sc *serverConn, order giop.ByteOrder, requestID uint32, retryAfterNs int64) {
	wb := giop.GetBuffer()
	wb.B = giop.MarshalReply(wb.B, order, &giop.Reply{
		RequestID:    requestID,
		Status:       giop.ReplySystemException,
		RetryAfterNs: retryAfterNs,
		Payload:      shedReplyPayload,
	})
	_ = sc.write(wb.B)
	giop.PutBuffer(wb)
}

// retireRetryAfterNs is the back-off hinted to stragglers addressing a
// retiring servant on a server without an overload controller: long enough
// for a rolling upgrade's directory update to land, short enough not to
// stall the caller.
const retireRetryAfterNs = int64(20 * time.Millisecond)

// retryAfterNs is the back-off hint stamped on shed replies: the overload
// controller's level-scaled window when one is running, the retirement
// default otherwise.
func (s *Server) retryAfterNs() int64 {
	if s.ctrl != nil {
		return int64(s.ctrl.RetryAfter())
	}
	return retireRetryAfterNs
}

// processRequest runs in the RequestProcessing component's scope: it
// demarshals the request there, invokes the servant, and marshals and
// writes the reply from the same scope, which is reclaimed (or returned to
// the pool) when the component quiesces.
func (s *Server) processRequest(p *core.Proc, msg core.Message) error {
	m := msg.(*requestMsg)
	var req giop.Request
	if err := giop.DecodeRequest(m.order, m.raw, &req); err != nil {
		return fmt.Errorf("orb server: demarshal: %w", err)
	}

	// Continue the caller's trace: open a server span under the trace id
	// carried in the request's service context, and echo it in the reply so
	// the client can stitch the round trip.
	var serverSpan uint64
	var spanStart int64
	if req.TraceID != 0 && telemetry.VerboseEnabled() {
		serverSpan = telemetry.NewID()
		telemetry.Record(telemetry.EvSpanStart, serverSpanLabel, req.TraceID, serverSpan, uint64(req.RequestID))
		spanStart = telemetry.Now()
		defer func() {
			telemetry.Record(telemetry.EvSpanEnd, serverSpanLabel, req.TraceID, serverSpan, uint64(telemetry.Now()-spanStart))
		}()
	}

	var (
		status  giop.ReplyStatus
		payload []byte
	)
	sv, ok := s.servant(req.ObjectKey)
	if !ok {
		if s.isRetiring(req.ObjectKey) {
			// A drain unbound this servant; the request raced the unbind or
			// was already queued. Shed it with a back-off hint — the caller's
			// directory re-routes the retry to a surviving replica — and let
			// the recycle release any controller slot as a drop.
			if req.ResponseExpected {
				writeShedReply(m.conn, m.order, req.RequestID, s.retryAfterNs())
			}
			return nil
		}
		status = giop.ReplySystemException
		payload = []byte(corba.ErrNoServant.Error())
	} else {
		out, err := invokeServant(sv, &req)
		if err != nil {
			status = giop.ReplyUserException
			payload = []byte(err.Error())
		} else {
			payload = out
		}
	}
	if !req.ResponseExpected {
		// The servant ran: record the completion (admit→finish) with the
		// overload controller even though no reply goes out.
		m.done()
		return nil
	}

	area, err := s.repPool.Acquire()
	if err != nil {
		return fmt.Errorf("orb server: reply scope: %w", err)
	}
	if err := p.Context().Enter(area, func(ctx *memory.Context) error {
		wireCap := giop.HeaderSize + 48 + len(payload)
		ref, err := ctx.Alloc(wireCap)
		if err != nil {
			return fmt.Errorf("orb server: reply buffer: %w", err)
		}
		buf, err := ref.Bytes()
		if err != nil {
			return err
		}
		wire := giop.MarshalReply(buf[:0], m.order, &giop.Reply{
			RequestID: req.RequestID,
			Status:    status,
			TraceID:   req.TraceID,
			SpanID:    serverSpan,
			Payload:   payload,
		})
		if err := m.conn.write(wire); err != nil {
			return fmt.Errorf("orb server: write reply: %w", wireErr("write", s.ln.Addr(), err))
		}
		return nil
	}); err != nil {
		// The unwind recycles the message; Reset releases the controller
		// slot as a drop (a failed reply write is not a latency sample).
		return err
	}
	// Full service time — admission to reply-on-the-wire — is the latency
	// signal driving the AIMD limit.
	m.done()
	return nil
}

// invokeServant dispatches to the priority-aware interface when the servant
// provides it.
func invokeServant(sv corba.Servant, req *giop.Request) ([]byte, error) {
	if ps, ok := sv.(corba.PrioritizedServant); ok {
		return ps.InvokeWithPriority(req.Operation, req.Payload, req.Priority)
	}
	return sv.Invoke(req.Operation, req.Payload)
}

// Close shuts the server down: the listener and all connections close, the
// reader loops exit, and the component application stops.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	// Withdraw from the collocation registry first: the generation bump
	// sends bound clients back to detection, which skips closed servers, so
	// their next invoke takes the wire path (and its own error handling)
	// instead of a stale direct pointer.
	unregisterLocal(s.net, s.ln.Addr(), s)
	_ = s.ln.Close()
	s.mu.Lock()
	conns := s.conns
	handles := s.handles
	s.conns, s.handles = nil, nil
	s.mu.Unlock()
	for _, sc := range conns {
		_ = sc.conn.Close()
	}
	s.wg.Wait()
	// Readers are gone: no more sends into the dispatch lanes. Close them
	// and let the shards drain what is queued (each queued frame is either
	// dispatched — its reply write fails on the closed socket — or released
	// by a failed dispatch) before the component application stops.
	s.stopShards()
	for i := len(handles) - 1; i >= 0; i-- {
		handles[i].Disconnect()
	}
	s.app.Stop()
}
