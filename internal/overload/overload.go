// Package overload is the server's closed-loop overload-control subsystem:
// tenant-aware weighted fair admission, an AIMD limit on in-flight dispatch
// driven by a windowed p99 latency signal, and a graceful brown-out ladder
// for sustained overload.
//
// The control loop is inline: every completion (Done/Dropped) checks whether
// the current control window has elapsed and, if so, runs one control step
// on the completing goroutine — no background ticker, no lifecycle to leak.
// The admission fast path is allocation-free: three atomic operations for an
// untiered tenant under the limit.
//
// The pieces compose as follows under load:
//
//   - Under the AIMD limit, every request is admitted (uncongested).
//   - Over the limit, admission spends per-tenant credit refilled each
//     window in proportion to the tenant's tier weight — deficit-style
//     weighted fair sharing of the contested headroom, so a best-effort
//     tenant exhausts its share long before a tier-0 tenant feels pressure.
//   - Sustained overload (p99 breach, deadline-miss bursts, or shedding
//     outpacing completions) escalates the brown-out ladder:
//     ShedLowest → reject-best-effort-tenant → reject-by-tier, and
//     de-escalates with hysteresis once the signal clears.
package overload

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
	"repro/internal/telemetry"
)

// Tier is a tenant's QoS class. Lower is better: Tier0 is guaranteed
// traffic, TierBestEffort is the first to shed.
type Tier uint8

// The three tenant tiers. They ride the wire as one octet in the GIOP
// tenant service context.
const (
	// Tier0 is guaranteed traffic: shed only when nothing else remains.
	Tier0 Tier = 0
	// Tier1 is standard traffic.
	Tier1 Tier = 1
	// TierBestEffort is scavenger traffic: first shed under pressure,
	// rejected outright at brown-out level 2+.
	TierBestEffort Tier = 2

	// NumTiers is the number of QoS tiers.
	NumTiers = 3
)

// Clamp maps arbitrary wire octets into the valid tier range; unknown tiers
// degrade to best effort rather than impersonating guaranteed traffic.
func (t Tier) Clamp() Tier {
	if t >= NumTiers {
		return TierBestEffort
	}
	return t
}

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case Tier0:
		return "tier0"
	case Tier1:
		return "tier1"
	default:
		return "best-effort"
	}
}

// Tenant identifies one traffic source: an opaque id plus its QoS tier.
// The zero Tenant means unclassified traffic (no service context on the
// wire), which the controller treats as a single Tier1 tenant.
type Tenant struct {
	ID   uint64
	Tier Tier
}

// Brown-out ladder levels, escalated under sustained overload and
// de-escalated with hysteresis. Each transition is an EvState ring event on
// the "overload.brownout" label with the new level as the argument.
const (
	// LevelNormal: weighted fair admission only.
	LevelNormal int32 = 0
	// LevelShedLowest: while congested, best-effort traffic loses its
	// over-limit credit grace and sub-threshold-priority work from any
	// non-guaranteed tenant is shed.
	LevelShedLowest int32 = 1
	// LevelRejectBestEffort: best-effort tenants are rejected outright.
	LevelRejectBestEffort int32 = 2
	// LevelRejectByTier: only Tier0 traffic is served.
	LevelRejectByTier int32 = 3

	maxLevel = LevelRejectByTier
)

// Config parameterises a Controller. The zero value selects workable
// defaults for every field.
type Config struct {
	// TargetP99 is the control target: while the windowed p99 completion
	// latency stays at or below it the limit rises additively; a breach cuts
	// it multiplicatively. Zero selects 5ms.
	TargetP99 time.Duration
	// Window is the control-loop period. Zero selects 20ms.
	Window time.Duration
	// MinLimit/MaxLimit bound the AIMD in-flight limit. Zeros select 4 and
	// 1024. The limit starts at MaxLimit (optimistic, like gradient
	// limiters) and converges down under load.
	MinLimit, MaxLimit int
	// Step is the additive raise per healthy window. Zero selects 4.
	Step int
	// Backoff is the multiplicative cut on breach, in percent of the current
	// limit that survives (e.g. 75 keeps three quarters). Zero selects 75.
	BackoffPct int
	// MinSamples is the minimum completions in a window for its p99 to move
	// the limit either way. Zero selects 16.
	MinSamples int
	// MissBurst is the deadline-miss (or dequeue-shed) count within one
	// window treated as a breach regardless of p99. Zero selects 8.
	MissBurst int
	// EscalateAfter is how many consecutive overloaded windows raise the
	// brown-out ladder one level. Zero selects 3.
	EscalateAfter int
	// DeescalateAfter is how many consecutive healthy windows lower it one
	// level — deliberately larger than EscalateAfter for hysteresis. Zero
	// selects 8.
	DeescalateAfter int
	// TierWeights are the fair-share weights per tier. Zeros select
	// {16, 4, 1}: a tier-0 tenant gets 16× a best-effort tenant's share of
	// the contested headroom.
	TierWeights [NumTiers]int
	// ShedPrioBelow is the LevelShedLowest priority threshold: while at that
	// level and congested, non-Tier0 requests below this priority are shed.
	// Zero selects the lower half of the band (sched.NormPriority / 2).
	ShedPrioBelow sched.Priority
}

func (c Config) withDefaults() Config {
	if c.TargetP99 <= 0 {
		c.TargetP99 = 5 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 20 * time.Millisecond
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 4
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 1024
	}
	if c.MaxLimit < c.MinLimit {
		c.MaxLimit = c.MinLimit
	}
	if c.Step <= 0 {
		c.Step = 4
	}
	if c.BackoffPct <= 0 || c.BackoffPct >= 100 {
		c.BackoffPct = 75
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
	if c.MissBurst <= 0 {
		c.MissBurst = 8
	}
	if c.EscalateAfter <= 0 {
		c.EscalateAfter = 3
	}
	if c.DeescalateAfter <= 0 {
		c.DeescalateAfter = 8
	}
	for i := range c.TierWeights {
		if c.TierWeights[i] <= 0 {
			c.TierWeights[i] = [NumTiers]int{16, 4, 1}[i]
		}
	}
	if c.ShedPrioBelow <= 0 {
		c.ShedPrioBelow = sched.NormPriority / 2
	}
	return c
}

// Shed counters, exported at /metrics with the compadres_ prefix. The
// per-tier counters flatten the {tier} label into the name.
var (
	admissionShedTotal = telemetry.NewCounter("admission_shed_total")
	admissionShedTier  = [NumTiers]*telemetry.Counter{
		telemetry.NewCounter("admission_shed_tier0_total"),
		telemetry.NewCounter("admission_shed_tier1_total"),
		telemetry.NewCounter("admission_shed_tier2_total"),
	}
	brownoutTransitions = telemetry.NewCounter("brownout_transition_total")
)

// brownoutLabel marks ladder transitions in the flight recorder.
var brownoutLabel = telemetry.Label("overload.brownout")

// AdmissionSheds returns the process-wide admission_shed_total count —
// requests rejected at the door across every controller.
func AdmissionSheds() int64 { return admissionShedTotal.Value() }

// tenantState is one tenant's admission accounting. credit is the tenant's
// remaining over-limit admissions this window, reset each control step to
// the tenant's weighted share of the contested headroom.
type tenantState struct {
	id     uint64
	tier   Tier
	class  uint8
	credit atomic.Int64
}

// Decision is an Admit verdict.
type Decision struct {
	// OK reports whether the request was admitted. A false decision has
	// already been counted (admission_shed_total and the tier counter).
	OK bool
	// Class is the fair-queue tenant class for the admitted request (see
	// sched.FairQueue); 0 for unclassified traffic.
	Class uint8
}

// Controller is the overload-control state machine. All methods are safe
// for concurrent use; Admit, Done, and Dropped are allocation-free.
type Controller struct {
	cfg Config

	limit    atomic.Int64
	inflight atomic.Int64
	level    atomic.Int32

	// win is the two-phase latency histogram behind the p99 control signal.
	win latencyWindow

	// Window accumulators, swapped out by each control step.
	doneCount atomic.Int64
	shedCount atomic.Int64
	dropCount atomic.Int64

	// windowEnd is the telemetry timestamp at which the next inline control
	// step fires; stepMu serialises the step itself.
	windowEnd atomic.Int64
	stepMu    sync.Mutex

	// Control-loop state, guarded by stepMu.
	overloadRun int
	healthyRun  int
	lastMisses  int64
	lastSheds   int64

	// def is the implicit state for unclassified traffic (tenant id 0);
	// tenants maps explicit tenant ids copy-on-write, with mu guarding
	// inserts. classSeq hands out fair-queue classes round-robin.
	def      tenantState
	tenants  atomic.Pointer[map[uint64]*tenantState]
	mu       sync.Mutex
	classSeq atomic.Uint32

	gauges *telemetry.GaugeHandle
}

// NewController builds a controller and registers its gauges
// (limit_current, brownout_level, overload_inflight). Call Close to
// unregister them.
func NewController(cfg Config) *Controller {
	c := &Controller{cfg: cfg.withDefaults()}
	c.limit.Store(int64(c.cfg.MaxLimit))
	c.def = tenantState{tier: Tier1}
	c.def.credit.Store(int64(c.cfg.MaxLimit))
	// Baseline the process-wide deadline counters: only misses from this
	// controller's lifetime count toward its burst signal.
	c.lastMisses = telemetry.DeadlineMisses()
	c.lastSheds = telemetry.DeadlineSheds()
	c.windowEnd.Store(telemetry.Now() + int64(c.cfg.Window))
	c.gauges = telemetry.Default.RegisterGauges("overload", map[string]func() int64{
		"limit_current":     c.limit.Load,
		"brownout_level":    func() int64 { return int64(c.level.Load()) },
		"overload_inflight": c.inflight.Load,
	})
	return c
}

// Close unregisters the controller's gauges. The controller owns no
// goroutines; in-flight accounting keeps working after Close.
func (c *Controller) Close() {
	if c.gauges != nil {
		c.gauges.Unregister()
		c.gauges = nil
	}
}

// Limit returns the current AIMD in-flight limit.
func (c *Controller) Limit() int { return int(c.limit.Load()) }

// Inflight returns the admitted-but-not-completed count.
func (c *Controller) Inflight() int64 { return c.inflight.Load() }

// Level returns the current brown-out ladder level (0..3).
func (c *Controller) Level() int { return int(c.level.Load()) }

// RetryAfter suggests how long a shed client should back off before
// retrying: one control window at level 0, doubling per brown-out level, so
// the hint scales with how far the server is into the ladder. Carried to
// the client in the GIOP retry-after service context.
func (c *Controller) RetryAfter() time.Duration {
	return c.cfg.Window << c.level.Load()
}

// state resolves a tenant's accounting, registering unseen tenants on a
// copy-on-write map (cold path). Tenant id 0 is the implicit default.
func (c *Controller) state(id uint64, tier Tier) *tenantState {
	if id == 0 {
		return &c.def
	}
	if m := c.tenants.Load(); m != nil {
		if ts, ok := (*m)[id]; ok {
			return ts
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var old map[uint64]*tenantState
	if m := c.tenants.Load(); m != nil {
		if ts, ok := (*m)[id]; ok {
			return ts
		}
		old = *m
	}
	ts := &tenantState{id: id, tier: tier}
	// Classes 1..MaxTenantClasses-1 are dealt round-robin to explicit
	// tenants (class 0 is the unclassified default); colliding tenants
	// share a fair-queue lane, which degrades fairness between them but
	// never against other lanes.
	ts.class = uint8(1 + c.classSeq.Add(1)%uint32(sched.MaxTenantClasses-1))
	ts.credit.Store(int64(c.cfg.MaxLimit))
	m := make(map[uint64]*tenantState, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[id] = ts
	c.tenants.Store(&m)
	return ts
}

// congested reports whether in-flight work has reached three quarters of
// the limit — the LevelShedLowest trigger for priority- and tier-based
// shedding ahead of the hard limit.
func (c *Controller) congested() bool {
	return c.inflight.Load()*4 >= c.limit.Load()*3
}

// Admit decides one request's fate before any demarshalling or queueing.
// The fast path — unclassified tenant, ladder at LevelNormal, under the
// limit — is three atomic operations and no allocation. A false decision is
// already fully accounted; the caller just rejects the request.
func (c *Controller) Admit(id uint64, tier Tier, prio sched.Priority) Decision {
	tier = tier.Clamp()
	if lvl := c.level.Load(); lvl != LevelNormal {
		switch {
		case lvl >= LevelRejectByTier && tier != Tier0:
			return c.shed(id, tier)
		case lvl >= LevelRejectBestEffort && tier == TierBestEffort:
			return c.shed(id, tier)
		case lvl >= LevelShedLowest && c.congested():
			if tier == TierBestEffort || (tier != Tier0 && prio < c.cfg.ShedPrioBelow) {
				return c.shed(id, tier)
			}
		}
	}
	n := c.inflight.Add(1)
	lim := c.limit.Load()
	if n <= lim {
		if id == 0 {
			return Decision{OK: true}
		}
		return Decision{OK: true, Class: c.state(id, tier).class}
	}
	// Over the limit: the headroom is contested. A hard cap bounds how far
	// in-flight work may overshoot; inside it, admission spends the
	// tenant's weighted credit for this window.
	if n > lim+lim/4 {
		c.inflight.Add(-1)
		return c.shed(id, tier)
	}
	ts := c.state(id, tier)
	if ts.credit.Add(-1) >= 0 {
		return Decision{OK: true, Class: ts.class}
	}
	c.inflight.Add(-1)
	return c.shed(id, tier)
}

// shed accounts one rejected request.
func (c *Controller) shed(id uint64, tier Tier) Decision {
	admissionShedTotal.Inc()
	admissionShedTier[tier].Inc()
	c.shedCount.Add(1)
	return Decision{}
}

// Done records one admitted request's completion latency (admit to finish,
// in nanoseconds) — the control signal for the AIMD limit — and releases
// its in-flight slot. It also drives the inline control loop.
func (c *Controller) Done(latency int64) {
	c.inflight.Add(-1)
	c.win.record(latency)
	c.doneCount.Add(1)
	c.maybeStep()
}

// Dropped releases an admitted request's in-flight slot without recording a
// latency sample: work that was rejected downstream, shed at dequeue, or
// failed by a breaker is not a latency signal, and feeding it to the
// controller would drive the limit to its floor on rejection bursts.
func (c *Controller) Dropped() {
	c.inflight.Add(-1)
	c.dropCount.Add(1)
	c.maybeStep()
}

// maybeStep runs a control step when the window has elapsed. The CAS on
// windowEnd elects one completing goroutine; everyone else proceeds.
func (c *Controller) maybeStep() {
	now := telemetry.Now()
	end := c.windowEnd.Load()
	if now < end {
		return
	}
	if !c.windowEnd.CompareAndSwap(end, now+int64(c.cfg.Window)) {
		return
	}
	c.step()
}

// Tick forces a control step immediately, regardless of the window clock.
// Tests and callers that want an external cadence (a ticker goroutine) use
// it; production servers rely on the inline stepping alone.
func (c *Controller) Tick() {
	c.windowEnd.Store(telemetry.Now() + int64(c.cfg.Window))
	c.step()
}

// step is one control-loop iteration: read the window's signals, move the
// AIMD limit, walk the brown-out ladder, refill tenant credits.
func (c *Controller) step() {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()

	p99, samples := c.win.swap()
	done := c.doneCount.Swap(0)
	shed := c.shedCount.Swap(0)
	c.dropCount.Store(0)

	// Deadline misses and dequeue sheds this window, from the process-wide
	// counters (the dispatch path reports there; the controller only needs
	// the delta).
	misses := telemetry.DeadlineMisses()
	sheds := telemetry.DeadlineSheds()
	missDelta := (misses - c.lastMisses) + (sheds - c.lastSheds)
	c.lastMisses, c.lastSheds = misses, sheds

	// AIMD: additive raise while the window's p99 holds the target,
	// multiplicative cut on breach or a deadline-miss burst. Windows with
	// too few samples move nothing — a rejection burst with no completions
	// is not a latency signal.
	breach := false
	if samples >= int64(c.cfg.MinSamples) && p99 > int64(c.cfg.TargetP99) {
		breach = true
	}
	if missDelta >= int64(c.cfg.MissBurst) {
		breach = true
	}
	lim := c.limit.Load()
	switch {
	case breach:
		lim = lim * int64(c.cfg.BackoffPct) / 100
		if lim < int64(c.cfg.MinLimit) {
			lim = int64(c.cfg.MinLimit)
		}
		c.limit.Store(lim)
	case samples >= int64(c.cfg.MinSamples):
		lim += int64(c.cfg.Step)
		if lim > int64(c.cfg.MaxLimit) {
			lim = int64(c.cfg.MaxLimit)
		}
		c.limit.Store(lim)
	}

	// Brown-out ladder: overloaded when the latency signal breached, or when
	// shedding kept pace with completions WHILE the limiter was actually
	// congested. The congestion gate matters for de-escalation: at an
	// elevated level the ladder itself rejects whole tiers, and those
	// rejections show up as sheds — without the gate, rejected tenants that
	// keep retrying would hold `shed >= done` forever and the ladder would
	// never walk back down. Rejections with ample in-flight headroom are
	// policy, not pressure. Escalation needs EscalateAfter consecutive
	// overloaded windows, de-escalation DeescalateAfter healthy ones — the
	// asymmetry is the hysteresis.
	overloaded := breach || (shed > 0 && shed >= done && c.congested())
	if overloaded {
		c.healthyRun = 0
		c.overloadRun++
		if c.overloadRun >= c.cfg.EscalateAfter {
			c.overloadRun = 0
			c.setLevel(c.level.Load() + 1)
		}
	} else {
		c.overloadRun = 0
		c.healthyRun++
		if c.healthyRun >= c.cfg.DeescalateAfter {
			c.healthyRun = 0
			c.setLevel(c.level.Load() - 1)
		}
	}

	// Refill credits: the contested headroom refills to (at least) one
	// limit's worth of over-limit admissions per window, dealt to tenants
	// in proportion to their tier weights.
	refill := done
	if refill < lim {
		refill = lim
	}
	total := int64(c.cfg.TierWeights[c.def.tier])
	m := c.tenants.Load()
	if m != nil {
		for _, ts := range *m {
			total += int64(c.cfg.TierWeights[ts.tier])
		}
	}
	c.def.credit.Store(int64(c.cfg.TierWeights[c.def.tier]) * refill / total)
	if m != nil {
		for _, ts := range *m {
			ts.credit.Store(int64(c.cfg.TierWeights[ts.tier]) * refill / total)
		}
	}
}

// setLevel clamps and applies a ladder transition, recording it.
func (c *Controller) setLevel(lvl int32) {
	if lvl < LevelNormal {
		lvl = LevelNormal
	}
	if lvl > maxLevel {
		lvl = maxLevel
	}
	old := c.level.Swap(lvl)
	if old == lvl {
		return
	}
	brownoutTransitions.Inc()
	telemetry.Record(telemetry.EvState, brownoutLabel, 0, 0, uint64(lvl))
}

// latencyWindow is a two-phase log-linear histogram: completions record into
// the active half, and each control step swaps halves and reads the frozen
// one. Four sub-buckets per octave give ~25% quantile resolution — plenty
// for a control signal. Records racing a swap may land in either half; the
// smear is at most one window and biases nothing.
type latencyWindow struct {
	active  atomic.Uint32
	buckets [2][winBuckets]atomic.Int64
}

// winBuckets covers 1ns..2^63ns at 4 sub-buckets per power of two.
const winBuckets = 64 * 4

// winIndex maps a non-negative latency to its bucket.
func winIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	u := uint64(v)
	exp := bits.Len64(u) - 1
	var sub uint64
	if exp >= 2 {
		sub = (u >> (exp - 2)) & 3
	}
	return exp*4 + int(sub)
}

// winLow returns the smallest value mapping to bucket i.
func winLow(i int) int64 {
	exp := i / 4
	sub := int64(i % 4)
	if exp < 2 {
		return int64(i)
	}
	if exp >= 62 {
		return 1 << 62
	}
	return (1 << exp) | (sub << (exp - 2))
}

// record adds one sample to the active half.
func (w *latencyWindow) record(v int64) {
	w.buckets[w.active.Load()&1][winIndex(v)].Add(1)
}

// swap freezes the active half, zeroing and returning its p99 upper bound
// and sample count, and makes the other half active.
func (w *latencyWindow) swap() (p99 int64, samples int64) {
	old := w.active.Load() & 1
	w.active.Store(1 - old)
	var counts [winBuckets]int64
	for i := range w.buckets[old] {
		counts[i] = w.buckets[old][i].Swap(0)
		samples += counts[i]
	}
	if samples == 0 {
		return 0, 0
	}
	// The covering rank: the smallest count whose cumulative share strictly
	// exceeds 99%. For a control signal the tail must register — with 100
	// samples, one slow outlier IS the p99.
	rank := samples*99/100 + 1
	var seen int64
	for i := range counts {
		seen += counts[i]
		if seen >= rank {
			return winLow(i + 1), samples
		}
	}
	return winLow(winBuckets - 1), samples
}
