package overload

import (
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/telemetry"
)

// testConfig returns a config whose inline window never fires on its own
// (Window = 1h), so tests drive every control step explicitly with Tick.
func testConfig() Config {
	return Config{
		TargetP99:       time.Millisecond,
		Window:          time.Hour,
		MinLimit:        4,
		MaxLimit:        128,
		Step:            4,
		BackoffPct:      50,
		MinSamples:      8,
		MissBurst:       8,
		EscalateAfter:   2,
		DeescalateAfter: 3,
	}
}

// admitN admits and completes n requests at the given latency, a
// full-window workload for AIMD tests. It runs as tier 0 so the traffic
// passes every brown-out level — the tests here steer the ladder by window
// signal, not by admission outcome.
func admitN(t *testing.T, c *Controller, n int, latency time.Duration) {
	t.Helper()
	for i := 0; i < n; i++ {
		if d := c.Admit(0, Tier0, sched.NormPriority); !d.OK {
			t.Fatalf("admit %d/%d rejected (limit %d, inflight %d)", i, n, c.Limit(), c.Inflight())
		}
		c.Done(int64(latency))
	}
}

// The AIMD loop raises additively on healthy windows, cuts multiplicatively
// on a p99 breach, and ignores windows with too few samples.
func TestAIMDRaiseAndCut(t *testing.T) {
	cfg := testConfig()
	cfg.MaxLimit = 128
	c := NewController(cfg)
	defer c.Close()
	c.limit.Store(64) // start mid-range so both directions are visible

	admitN(t, c, 16, 100*time.Microsecond) // well under the 1ms target
	c.Tick()
	if got := c.Limit(); got != 68 {
		t.Errorf("healthy window: limit = %d, want 64+4", got)
	}

	admitN(t, c, 16, 10*time.Millisecond) // 10× the target
	c.Tick()
	if got := c.Limit(); got != 34 {
		t.Errorf("breach window: limit = %d, want 68/2", got)
	}

	admitN(t, c, 3, 10*time.Millisecond) // breach latency, but < MinSamples
	c.Tick()
	if got := c.Limit(); got != 34 {
		t.Errorf("thin window moved the limit to %d, want unchanged 34", got)
	}
}

// The limit never leaves [MinLimit, MaxLimit].
func TestAIMDBounds(t *testing.T) {
	cfg := testConfig()
	cfg.MinLimit, cfg.MaxLimit = 4, 16
	c := NewController(cfg)
	defer c.Close()
	for i := 0; i < 10; i++ {
		admitN(t, c, 8, 10*time.Millisecond)
		c.Tick()
	}
	if got := c.Limit(); got != 4 {
		t.Errorf("after sustained breach: limit = %d, want floor 4", got)
	}
	for i := 0; i < 20; i++ {
		admitN(t, c, 8, 10*time.Microsecond)
		c.Tick()
	}
	if got := c.Limit(); got != 16 {
		t.Errorf("after sustained health: limit = %d, want ceiling 16", got)
	}
}

// Satellite: rejections are not a latency signal. A burst of downstream
// failures — circuit-breaker opens (orb.ErrCircuitOpen), shed-at-dequeue
// drops, admission rejections — reaches the controller as Dropped calls and
// must leave the AIMD limit alone. Only completion latency and deadline
// misses may cut it. Table-driven over signal mixes.
func TestRejectionsAreNotLatencySignal(t *testing.T) {
	for _, tc := range []struct {
		name      string
		fast      int // completions at 100µs
		slow      int // completions at 10ms
		dropped   int // breaker/shed rejections
		wantLimit func(start int) int
	}{
		{name: "pure drop burst", dropped: 500,
			wantLimit: func(s int) int { return s }},
		{name: "drops with thin fast traffic", fast: 4, dropped: 200,
			wantLimit: func(s int) int { return s }},
		{name: "drops beside healthy traffic", fast: 16, dropped: 200,
			wantLimit: func(s int) int { return s + 4 }},
		{name: "genuine breach still cuts", slow: 16, dropped: 50,
			wantLimit: func(s int) int { return s / 2 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := NewController(testConfig())
			defer c.Close()
			c.limit.Store(64)
			for i := 0; i < tc.fast; i++ {
				c.Admit(0, Tier1, sched.NormPriority)
				c.Done(int64(100 * time.Microsecond))
			}
			for i := 0; i < tc.slow; i++ {
				c.Admit(0, Tier1, sched.NormPriority)
				c.Done(int64(10 * time.Millisecond))
			}
			for i := 0; i < tc.dropped; i++ {
				c.Admit(0, Tier1, sched.NormPriority)
				c.Dropped()
			}
			c.Tick()
			if got, want := c.Limit(), tc.wantLimit(64); got != want {
				t.Errorf("limit = %d, want %d", got, want)
			}
		})
	}
}

// A deadline-shed storm (counted via telemetry.ReportDeadlineShed) IS a
// breach signal: work is dying in queue even if the completions that do run
// look fast.
func TestDeadlineShedBurstCutsLimit(t *testing.T) {
	c := NewController(testConfig())
	defer c.Close()
	c.limit.Store(64)
	admitN(t, c, 16, 100*time.Microsecond)
	for i := 0; i < 10; i++ {
		telemetry.ReportDeadlineShed(telemetry.Label("test.port"), 0, 1, 0, 15)
	}
	c.Tick()
	if got := c.Limit(); got != 32 {
		t.Errorf("limit = %d after deadline-shed burst, want 64/2", got)
	}
}

// Over the limit, admission spends per-tenant credit refilled in proportion
// to tier weight: a best-effort flood exhausts its share while a tier-0
// tenant keeps getting through.
func TestWeightedCreditSharing(t *testing.T) {
	cfg := testConfig()
	cfg.MinLimit, cfg.MaxLimit = 4, 8
	cfg.TierWeights = [NumTiers]int{12, 3, 1}
	c := NewController(cfg)
	defer c.Close()
	c.limit.Store(8)

	// Register both tenants, then Tick to deal window credits:
	// refill = max(done, limit) = 8 over weights {12 (t0), 1 (be), 4 (def t1)}.
	if d := c.Admit(1, Tier0, 24); !d.OK {
		t.Fatal("tier-0 registration admit rejected")
	}
	c.Done(1000)
	if d := c.Admit(2, TierBestEffort, 8); !d.OK {
		t.Fatal("best-effort registration admit rejected")
	}
	c.Done(1000)
	c.Tick()

	// Saturate the limit with neutral in-flight work.
	for i := 0; i < 8; i++ {
		if d := c.Admit(0, Tier1, sched.NormPriority); !d.OK {
			t.Fatalf("fill admit %d rejected", i)
		}
	}
	// Contested now. Best effort (weight 1 of 17, credit 0) is shed at
	// once; tier 0 (weight 12, credit 5) keeps landing.
	beOK, t0OK := 0, 0
	for i := 0; i < 4; i++ {
		if c.Admit(2, TierBestEffort, 8).OK {
			beOK++
			c.Done(1000)
		}
		if c.Admit(1, Tier0, 24).OK {
			t0OK++
			c.Done(1000)
		}
	}
	if beOK != 0 {
		t.Errorf("best-effort admitted %d over-limit requests, want 0 (credit exhausted)", beOK)
	}
	if t0OK != 4 {
		t.Errorf("tier-0 admitted %d/4 over-limit requests, want all (weighted credit)", t0OK)
	}
}

// The hard cap bounds overshoot even for credit-rich tenants.
func TestHardCap(t *testing.T) {
	cfg := testConfig()
	cfg.MinLimit, cfg.MaxLimit = 8, 8
	c := NewController(cfg)
	defer c.Close()
	c.Tick() // deal credits at limit 8
	admitted := 0
	for i := 0; i < 64; i++ {
		if c.Admit(1, Tier0, 24).OK {
			admitted++
		}
	}
	// limit + limit/4 = 10.
	if admitted > 10 {
		t.Errorf("admitted %d in-flight, hard cap is 10", admitted)
	}
	if got := c.Inflight(); got != int64(admitted) {
		t.Errorf("inflight = %d after %d admissions, rejects leaked a slot", got, admitted)
	}
}

// The brown-out ladder escalates after EscalateAfter consecutive overloaded
// windows, de-escalates after DeescalateAfter healthy ones, and each level
// rejects what it promises.
func TestBrownoutLadder(t *testing.T) {
	cfg := testConfig()
	cfg.EscalateAfter, cfg.DeescalateAfter = 2, 3
	c := NewController(cfg)
	defer c.Close()
	c.limit.Store(64)

	overloadWindow := func() { admitN(t, c, 16, 10*time.Millisecond); c.Tick() }
	healthyWindow := func() { admitN(t, c, 16, 10*time.Microsecond); c.Tick() }

	overloadWindow()
	if got := c.Level(); got != int(LevelNormal) {
		t.Fatalf("one overloaded window escalated to %d; hysteresis requires 2", got)
	}
	overloadWindow()
	if got := c.Level(); got != int(LevelShedLowest) {
		t.Fatalf("level = %d after 2 overloaded windows, want ShedLowest", got)
	}
	overloadWindow()
	overloadWindow()
	if got := c.Level(); got != int(LevelRejectBestEffort) {
		t.Fatalf("level = %d after 4 overloaded windows, want RejectBestEffort", got)
	}
	// At level 2, best effort is rejected outright regardless of congestion.
	if c.Admit(9, TierBestEffort, 24).OK {
		t.Error("RejectBestEffort admitted a best-effort request")
	}
	if !c.Admit(8, Tier1, sched.NormPriority).OK {
		t.Error("RejectBestEffort rejected a tier-1 request")
	}
	c.Dropped()

	overloadWindow()
	overloadWindow()
	if got := c.Level(); got != int(LevelRejectByTier) {
		t.Fatalf("level = %d, want RejectByTier", got)
	}
	if c.Admit(8, Tier1, sched.MaxPriority).OK {
		t.Error("RejectByTier admitted a tier-1 request")
	}
	if !c.Admit(7, Tier0, sched.MinPriority).OK {
		t.Error("RejectByTier rejected a tier-0 request")
	}
	c.Dropped()

	// De-escalation: one level per DeescalateAfter healthy windows.
	healthyWindow()
	healthyWindow()
	if got := c.Level(); got != int(LevelRejectByTier) {
		t.Fatalf("level dropped to %d after 2 healthy windows; hysteresis requires 3", got)
	}
	healthyWindow()
	if got := c.Level(); got != int(LevelRejectBestEffort) {
		t.Fatalf("level = %d after 3 healthy windows, want RejectBestEffort", got)
	}
	for i := 0; i < 6; i++ {
		healthyWindow()
	}
	if got := c.Level(); got != int(LevelNormal) {
		t.Errorf("level = %d after recovery, want Normal", got)
	}
}

// LevelShedLowest sheds only when congested, and only sub-threshold or
// best-effort traffic; tier-0 always passes.
func TestShedLowestSelectivity(t *testing.T) {
	cfg := testConfig()
	cfg.MinLimit, cfg.MaxLimit = 16, 16
	cfg.ShedPrioBelow = 10
	c := NewController(cfg)
	defer c.Close()
	c.setLevel(LevelShedLowest)

	// Uncongested: everything passes.
	if !c.Admit(2, TierBestEffort, 5).OK {
		t.Error("uncongested ShedLowest rejected best effort")
	}
	// Congest: 12 in-flight of 16 hits the 3/4 threshold (1 already held).
	for i := 0; i < 11; i++ {
		if !c.Admit(0, Tier1, 20).OK {
			t.Fatalf("congestion fill %d rejected", i)
		}
	}
	if c.Admit(2, TierBestEffort, 30).OK {
		t.Error("congested ShedLowest admitted best effort")
	}
	if c.Admit(0, Tier1, 5).OK {
		t.Error("congested ShedLowest admitted tier-1 below the priority threshold")
	}
	if !c.Admit(0, Tier1, 15).OK {
		t.Error("congested ShedLowest rejected tier-1 above the priority threshold")
	}
	c.Dropped()
	if !c.Admit(1, Tier0, 2).OK {
		t.Error("congested ShedLowest rejected tier-0")
	}
	c.Dropped()
}

// Unknown wire tiers clamp to best effort — a hostile client cannot mint a
// privileged class.
func TestTierClamp(t *testing.T) {
	c := NewController(testConfig())
	defer c.Close()
	c.setLevel(LevelRejectBestEffort)
	if c.Admit(3, Tier(200), 24).OK {
		t.Error("out-of-range tier admitted at RejectBestEffort; must clamp to best effort")
	}
}

// Explicit tenants get distinct fair-queue classes; class 0 stays reserved
// for unclassified traffic.
func TestTenantClassAssignment(t *testing.T) {
	c := NewController(testConfig())
	defer c.Close()
	if d := c.Admit(0, Tier1, 15); !d.OK || d.Class != 0 {
		t.Errorf("unclassified admit class = %d, want 0", d.Class)
	}
	c.Dropped()
	seen := map[uint8]bool{}
	for id := uint64(1); id <= 4; id++ {
		d := c.Admit(id, Tier1, 15)
		if !d.OK {
			t.Fatalf("tenant %d rejected", id)
		}
		if d.Class == 0 {
			t.Errorf("tenant %d assigned the reserved class 0", id)
		}
		if seen[d.Class] {
			t.Errorf("tenant %d shares class %d with an earlier tenant (only %d tenants)", id, d.Class, id-1)
		}
		seen[d.Class] = true
		c.Dropped()
	}
}

// The admission fast path and the completion path must not allocate: they
// run per request on the dispatch path.
func TestAdmitDoneAllocFree(t *testing.T) {
	c := NewController(testConfig())
	defer c.Close()
	c.Admit(7, Tier0, 20) // pre-register the explicit tenant (cold path)
	c.Done(1000)
	allocs := testing.AllocsPerRun(200, func() {
		if !c.Admit(0, Tier1, sched.NormPriority).OK {
			t.Fatal("rejected")
		}
		c.Done(int64(50 * time.Microsecond))
	})
	if allocs != 0 {
		t.Errorf("untiered Admit+Done allocates %.1f objects/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		if !c.Admit(7, Tier0, 20).OK {
			t.Fatal("rejected")
		}
		c.Done(int64(50 * time.Microsecond))
	})
	if allocs != 0 {
		t.Errorf("registered-tenant Admit+Done allocates %.1f objects/op, want 0", allocs)
	}
}

// The windowed histogram's p99 lands within one log-linear bucket of the
// true quantile.
func TestLatencyWindowP99(t *testing.T) {
	var w latencyWindow
	for i := 0; i < 99; i++ {
		w.record(int64(time.Millisecond))
	}
	w.record(int64(100 * time.Millisecond))
	p99, n := w.swap()
	if n != 100 {
		t.Fatalf("samples = %d, want 100", n)
	}
	if p99 < int64(100*time.Millisecond) || p99 > int64(150*time.Millisecond) {
		t.Errorf("p99 = %v, want within a bucket above 100ms", time.Duration(p99))
	}
	// The swap zeroed the half: a second swap sees an empty window.
	if _, n := w.swap(); n != 0 {
		t.Errorf("second swap saw %d samples, want 0", n)
	}
}

// Storm: concurrent admits/completions/drops from many goroutines with
// inline window stepping, checked for slot-accounting leaks. Run with
// -race.
func TestControllerStorm(t *testing.T) {
	cfg := testConfig()
	cfg.Window = time.Millisecond // let inline stepping fire for real
	cfg.MinLimit, cfg.MaxLimit = 4, 64
	c := NewController(cfg)
	defer c.Close()

	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := uint64(w % 5) // mix unclassified and 4 explicit tenants
			tier := Tier(w % 3)
			for i := 0; i < perWorker; i++ {
				d := c.Admit(id, tier, sched.Priority(1+(i%31)))
				if !d.OK {
					continue
				}
				switch i % 3 {
				case 0:
					c.Done(int64(i%1000) * 1000)
				case 1:
					c.Done(int64(time.Millisecond))
				default:
					c.Dropped() // breaker-style rejection after admit
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Inflight(); got != 0 {
		t.Errorf("inflight = %d after storm, want 0 (slot leak)", got)
	}
	if got := c.Limit(); got < cfg.MinLimit || got > cfg.MaxLimit {
		t.Errorf("limit = %d escaped [%d, %d]", got, cfg.MinLimit, cfg.MaxLimit)
	}
}

// A rejection storm against an uncongested limiter must not hold the ladder
// up. At an elevated level the ladder's own rejections are counted as sheds,
// and a rejected tenant that retries after every reject keeps `shed >= done`
// true indefinitely — without the congestion gate the brown-out would be
// self-sustaining and never de-escalate after the real pressure is gone.
func TestBrownoutDeescalatesThroughRejectionStorm(t *testing.T) {
	cfg := testConfig()
	cfg.EscalateAfter, cfg.DeescalateAfter = 2, 2
	c := NewController(cfg)
	defer c.Close()
	c.limit.Store(64)
	c.setLevel(LevelRejectByTier)

	for w := 0; w < 10 && c.Level() != int(LevelNormal); w++ {
		// A trickle of healthy completions (tier 0 passes every level)...
		admitN(t, c, 4, 10*time.Microsecond)
		// ...while a shed tenant retries hard: many rejections, no inflight.
		for i := 0; i < 100; i++ {
			if c.Admit(5, TierBestEffort, 4).OK {
				c.Dropped()
			}
		}
		c.Tick()
	}
	if got := c.Level(); got != int(LevelNormal) {
		t.Errorf("level = %d after rejection-storm recovery, want Normal", got)
	}
}
