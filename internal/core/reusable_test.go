package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
)

// reusableHarness builds a parent with one Reusable pooled child ("Worker")
// whose In port records, per message, the instance pointer and area that
// served it. Setup and start invocations are counted so the tests can pin
// the revival contract: Setup once per shell, start once per instantiation.
type reusableHarness struct {
	parent *Component

	mu       sync.Mutex
	setups   int
	starts   int
	shells   []*Component
	areaName []string
	served   chan int64
}

func newReusableHarness(t *testing.T, app *App) *reusableHarness {
	t.Helper()
	h := &reusableHarness{served: make(chan int64, 16)}
	parent, err := app.NewImmortalComponent("P", func(c *Component) error {
		smm := c.SMM()
		return c.DefineChild(ChildDef{
			Name:     "Worker",
			UsePool:  true,
			Reusable: true,
			Setup: func(w *Component) error {
				h.mu.Lock()
				h.setups++
				h.mu.Unlock()
				w.SetStart(func(*Proc) error {
					h.mu.Lock()
					h.starts++
					h.mu.Unlock()
					return nil
				})
				_, err := AddInPort(w, smm, InPortConfig{
					Name: "in", Type: intType,
					BufferSize: 32, Overflow: OverflowBlock,
					Handler: HandlerFunc(func(p *Proc, m Message) error {
						h.mu.Lock()
						h.shells = append(h.shells, p.Component())
						h.areaName = append(h.areaName, p.Component().Area().Name())
						h.mu.Unlock()
						h.served <- m.(*intMsg).value
						return nil
					}),
				})
				return err
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AddOutPort(parent, parent.SMM(), OutPortConfig{
		Name: "drive", Type: intType, Dests: []string{"Worker.in"},
	}); err != nil {
		t.Fatal(err)
	}
	h.parent = parent
	return h
}

func (h *reusableHarness) sendErr(v int64) error {
	out, err := h.parent.SMM().GetOutPort("drive")
	if err != nil {
		return err
	}
	// The message pool is bounded; under the storm test many senders hold
	// messages at once, so back off briefly when it runs dry.
	var m Message
	for {
		m, err = out.GetMessage()
		if err == nil {
			break
		}
		if !errors.Is(err, ErrPoolEmpty) {
			return err
		}
		time.Sleep(time.Millisecond)
	}
	m.(*intMsg).value = v
	return out.Send(m, sched.NormPriority)
}

func (h *reusableHarness) send(t *testing.T, v int64) {
	t.Helper()
	if err := h.sendErr(v); err != nil {
		t.Fatal(err)
	}
}

// waitGone blocks until the named child has quiesced out of the SMM.
func waitGone(t *testing.T, smm *SMM, name string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for smm.Child(name) != nil {
		if time.Now().After(deadline) {
			t.Fatalf("child %q not reclaimed", name)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReusableChildRevivesShell drives several dispose/revive cycles through
// a Reusable child and pins the contract: the identical shell serves every
// message, Setup ran exactly once, the start function ran once per
// instantiation, and the scoped area still cycles through the pool.
func TestReusableChildRevivesShell(t *testing.T) {
	app := newTestApp(t, AppConfig{
		ScopePools: []ScopePoolSpec{{Level: 1, AreaSize: 1 << 14, Count: 2}},
	})
	h := newReusableHarness(t, app)
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}

	const rounds = 5
	for i := int64(0); i < rounds; i++ {
		h.send(t, i)
		if v := waitRecv(t, h.served); v != i {
			t.Fatalf("round %d: served %d", i, v)
		}
		// Each round must fully quiesce so the next send is a revival, not a
		// delivery into the still-live instance.
		waitGone(t, h.parent.SMM(), "Worker")
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.setups != 1 {
		t.Errorf("Setup ran %d times, want 1", h.setups)
	}
	if h.starts != rounds {
		t.Errorf("start ran %d times, want %d", h.starts, rounds)
	}
	if len(h.shells) != rounds {
		t.Fatalf("served %d messages, want %d", len(h.shells), rounds)
	}
	for i, c := range h.shells {
		if c != h.shells[0] {
			t.Errorf("message %d served by a different shell", i)
		}
	}
	// The memory semantics are untouched: every instantiation went through
	// the pool (pre-created areas only, heavy reuse).
	created, reused, _ := app.ScopePool(1).Stats()
	if created != 2 {
		t.Errorf("pool created = %d, want 2", created)
	}
	if reused < rounds-2 {
		t.Errorf("pool reused = %d, want >= %d", reused, rounds-2)
	}
	if n, err := app.Errors(); n != 0 {
		t.Errorf("handler errors: %d (%v)", n, err)
	}
}

// TestReusableChildConcurrentStorm hammers a Reusable child from many
// goroutines so revivals race deliveries through the stale-but-valid port
// binding; every message must be served exactly once with no errors.
func TestReusableChildConcurrentStorm(t *testing.T) {
	app := newTestApp(t, AppConfig{
		ScopePools: []ScopePoolSpec{{Level: 1, AreaSize: 1 << 14, Count: 4}},
	})
	h := newReusableHarness(t, app)
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}

	const senders, perSender = 8, 50
	h.served = make(chan int64, senders*perSender)
	errCh := make(chan error, senders)
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := h.sendErr(int64(g*perSender + i)); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	got := make(map[int64]bool, senders*perSender)
	for i := 0; i < senders*perSender; i++ {
		got[waitRecv(t, h.served)] = true
	}
	if len(got) != senders*perSender {
		t.Errorf("served %d distinct values, want %d", len(got), senders*perSender)
	}
	if n, err := app.Errors(); n != 0 {
		t.Errorf("handler errors: %d (%v)", n, err)
	}
}
