package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sched"
)

// newTestInPort builds a bare InPort for buffer-level tests.
func newTestInPort(capacity int) *InPort {
	return &InPort{
		qname:    "T.in",
		short:    "in",
		typ:      MessageType{Name: "t", Size: 1, New: func() Message { return &testMsg{} }},
		buf:      make([]bufItem, 0, capacity),
		capacity: capacity,
	}
}

type testMsg struct{ v int }

func (m *testMsg) Reset() { m.v = 0 }

// TestInPortSequentialOrdering pushes a seeded random workload and checks
// pops come out sorted by (priority descending, push order).
func TestInPortSequentialOrdering(t *testing.T) {
	const seed = 42
	const n = 300
	rng := rand.New(rand.NewSource(seed))
	p := newTestInPort(n)

	type pushed struct {
		prio sched.Priority
		msg  *testMsg
	}
	var items []pushed
	for i := 0; i < n; i++ {
		it := pushed{
			prio: sched.MinPriority + sched.Priority(rng.Intn(int(sched.MaxPriority))),
			msg:  &testMsg{v: i},
		}
		items = append(items, it)
		if _, _, err := p.push(bufItem{msg: it.msg, prio: it.prio}); err != nil {
			t.Fatal(err)
		}
	}

	lastPrio := sched.MaxPriority + 1
	lastSeqAtPrio := -1
	for i := 0; i < n; i++ {
		it, ok := p.pop()
		if !ok {
			t.Fatalf("pop %d: buffer empty early", i)
		}
		if it.prio > lastPrio {
			t.Fatalf("pop %d: priority %d after %d; not highest-first", i, it.prio, lastPrio)
		}
		v := it.msg.(*testMsg).v
		if it.prio == lastPrio && v < lastSeqAtPrio {
			t.Fatalf("pop %d: push-order %d after %d at priority %d; not FIFO within priority",
				i, v, lastSeqAtPrio, it.prio)
		}
		if it.prio < lastPrio {
			lastPrio = it.prio
			lastSeqAtPrio = -1
		}
		if v > lastSeqAtPrio {
			lastSeqAtPrio = v
		}
	}
	if _, ok := p.pop(); ok {
		t.Fatal("buffer not empty after draining")
	}
}

// TestInPortConcurrentProducersFIFO has several producers race pushes while
// one consumer drains, and checks each producer's per-priority stream pops
// in its push order. Run with -race.
func TestInPortConcurrentProducersFIFO(t *testing.T) {
	const (
		seed      = 7
		producers = 5
		perProd   = 200
	)
	p := newTestInPort(producers * perProd)

	type tag struct{ prod, seq, prio int }
	var pushWG sync.WaitGroup
	pushWG.Add(producers)
	for pr := 0; pr < producers; pr++ {
		go func(prod int) {
			defer pushWG.Done()
			rng := rand.New(rand.NewSource(seed + int64(prod)))
			for i := 0; i < perProd; i++ {
				prio := sched.MinPriority + sched.Priority(rng.Intn(5))
				msg := &testMsg{v: prod*1_000_000 + i}
				if _, _, err := p.push(bufItem{msg: msg, prio: prio}); err != nil {
					t.Error(err)
					return
				}
			}
		}(pr)
	}

	var popped []tag
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(popped) < producers*perProd {
			it, ok := p.pop()
			if !ok {
				continue
			}
			v := it.msg.(*testMsg).v
			popped = append(popped, tag{prod: v / 1_000_000, seq: v % 1_000_000, prio: int(it.prio)})
		}
	}()
	pushWG.Wait()
	<-done

	lastSeq := make(map[[2]int]int)
	for _, tg := range popped {
		k := [2]int{tg.prod, tg.prio}
		if prev, ok := lastSeq[k]; ok && tg.seq < prev {
			t.Fatalf("producer %d priority %d: seq %d popped after %d; not FIFO within priority",
				tg.prod, tg.prio, tg.seq, prev)
		}
		lastSeq[k] = tg.seq
	}

	if r, pr, d := p.received.Load(), p.processed.Load(), p.dropped.Load(); r != producers*perProd || pr != 0 || d != 0 {
		t.Fatalf("stats = (%d, %d, %d), want (%d, 0, 0)", r, pr, d, producers*perProd)
	}
}

// TestDestsSharedSlice checks the Dests satellite contract: repeated calls
// return the same immutable backing slice with no per-call copy, replaced
// only by re-registration.
func TestDestsSharedSlice(t *testing.T) {
	app, err := NewApp(AppConfig{Name: "dests", ImmortalSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	var out *OutPort
	comp, err := app.NewImmortalComponent("C", func(c *Component) error {
		var err error
		out, err = AddOutPort(c, c.SMM(), OutPortConfig{
			Name: "o", Type: MessageType{Name: "t", Size: 8, New: func() Message { return &testMsg{} }},
			Dests: []string{"C.a", "C.b"},
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	d1, d2 := out.Dests(), out.Dests()
	if len(d1) != 2 || d1[0] != "C.a" || d1[1] != "C.b" {
		t.Fatalf("Dests = %v", d1)
	}
	if &d1[0] != &d2[0] {
		t.Error("Dests copies per call; want the shared immutable slice")
	}

	// Re-registration replaces the list and the old slice stays intact.
	if _, err := AddOutPort(comp, comp.SMM(), OutPortConfig{
		Name: "o", Type: MessageType{Name: "t", Size: 8, New: func() Message { return &testMsg{} }},
		Dests: []string{"C.x"},
	}); err != nil {
		t.Fatal(err)
	}
	d3 := out.Dests()
	if len(d3) != 1 || d3[0] != "C.x" {
		t.Fatalf("Dests after re-register = %v", d3)
	}
	if d1[0] != "C.a" {
		t.Error("old Dests slice mutated by re-registration")
	}
}

// TestRouteCacheInvalidation checks the tentpole's route cache: sends work
// before the destination port exists only via the slow path, and a
// registration after the cache was built is picked up (generation bump).
func TestRouteCacheInvalidation(t *testing.T) {
	app, err := NewApp(AppConfig{Name: "routes", ImmortalSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	typ := MessageType{Name: "t", Size: 8, New: func() Message { return &testMsg{} }}
	var mu sync.Mutex
	var seen []int

	comp, err := app.NewImmortalComponent("C", func(c *Component) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	smm := comp.SMM()
	out, err := AddOutPort(comp, smm, OutPortConfig{Name: "o", Type: typ, Dests: []string{"C.in"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}

	// No In port registered yet: the cached route has in == nil and the
	// slow path reports the unknown port.
	msg, err := out.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Send(msg, sched.NormPriority); err == nil {
		t.Fatal("send before In-port registration succeeded")
	}
	out.PutBack(msg)

	// Register the In port; the generation bump must invalidate the cached
	// route set so the next send resolves it.
	if _, err := AddInPort(comp, smm, InPortConfig{
		Name: "in", Type: typ, Threading: ThreadingSynchronous,
		Handler: HandlerFunc(func(p *Proc, m Message) error {
			mu.Lock()
			seen = append(seen, m.(*testMsg).v)
			mu.Unlock()
			return nil
		}),
	}); err != nil {
		t.Fatal(err)
	}
	msg, err = out.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	msg.(*testMsg).v = 11
	if err := out.Send(msg, sched.NormPriority); err != nil {
		t.Fatalf("send after registration: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0] != 11 {
		t.Fatalf("seen = %v, want [11]", seen)
	}
}
