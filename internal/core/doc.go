// Package core implements the Compadres component model — the paper's
// primary contribution. Components are fine-grained software artifacts that
// live in RTSJ memory areas (immortal or scoped, simulated by
// internal/memory) and communicate exclusively through strongly typed In
// and Out ports.
//
// # Structure
//
// An App owns a memory model and a set of immortal top-level components.
// Components compose hierarchically: a parent *defines* scoped children
// (ChildDef) that are instantiated on demand — when a message first arrives
// for one of their ports, or explicitly via SMM.Connect — and reclaimed when
// the last message has been processed and no Handle keeps them alive. Each
// parent owns one Scoped Memory Manager (SMM) that mediates all
// communication with and among its children, exactly as §2.2 of the paper
// describes.
//
// # Ports and messages
//
// Out ports are connected to In ports by qualified name
// ("Component.Port"); message types must match exactly. Messages come from
// per-type pools allocated in the SMM's memory area (the shared-object
// mechanism), are sent with a priority that the executing pool thread
// inherits, and return to their pool once every receiver has processed
// them. In ports carry a bounded buffer and a thread-pool policy
// (shared/dedicated/synchronous) straight out of the CCL PortAttributes.
//
// # Cross-scope mechanisms
//
// The paper §2.2 discusses three ways to pass a message across scoped
// regions: the shared object (default, most efficient), serialization
// (copies through an encoded form), and the handoff pattern (the sending
// thread walks through the common ancestor area). All three are
// implemented and selectable per SMM so their costs can be compared; see
// the AblationCrossScope benchmarks.
package core
