package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/memory"
	"repro/internal/telemetry"
)

// Message is a value exchanged through ports. Messages are pooled, so they
// must be resettable to a clean state before reuse. To be usable with the
// serialization cross-scope mechanism a message additionally implements
// encoding.BinaryMarshaler and encoding.BinaryUnmarshaler.
//
// The paper requires messages to be "RTSJ-safe": all data reachable from a
// message must live in the same memory area as the message itself. The Go
// analogue is that a Message must own its payload (no aliasing of buffers
// owned by other components).
type Message interface {
	Reset()
}

// MessageType names a pooled message type and knows how to create
// instances. Name equality is the port-compatibility check (the paper's
// "message types must match exactly"); Size is the byte cost charged to the
// owning memory area per pooled instance.
type MessageType struct {
	// Name identifies the type in CDL files and connection checks.
	Name string
	// Size is the per-instance byte charge against the pool's memory area.
	Size int
	// New allocates a fresh instance.
	New func() Message
}

// valid reports a usable type descriptor.
func (t MessageType) valid() bool {
	return t.Name != "" && t.Size > 0 && t.New != nil
}

// msgPool is a fixed-capacity pool of messages of one type, allocated in an
// SMM's memory area. It mirrors the paper's "message pool per message type
// in the parent component's SMM": getMessage hands out an instance, send
// transfers it, and the framework returns it after the receiver has
// processed it, so parent areas never grow without bound.
type msgPool struct {
	typ  MessageType
	area *memory.Area
	ref  memory.Ref // the arena charge for the pooled instances

	mu    sync.Mutex // guards free only
	free  []Message
	total int

	gets        atomic.Int64
	returns     atomic.Int64
	inFlightMax atomic.Int64 // high-water mark of outstanding instances

	gauges *telemetry.GaugeHandle
}

// newMsgPool charges capacity*typ.Size bytes to area and pre-creates the
// instances.
func newMsgPool(typ MessageType, area *memory.Area, ctx *memory.Context, capacity int) (*msgPool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("core: message pool %q: non-positive capacity %d", typ.Name, capacity)
	}
	ref, err := ctx.AllocIn(area, capacity*typ.Size)
	if err != nil {
		return nil, fmt.Errorf("message pool %q in %q: %w", typ.Name, area.Name(), err)
	}
	p := &msgPool{typ: typ, area: area, ref: ref, total: capacity}
	p.free = make([]Message, 0, capacity)
	for i := 0; i < capacity; i++ {
		p.free = append(p.free, typ.New())
	}
	return p, nil
}

// get takes an instance, or reports ErrPoolEmpty when all are in flight.
func (p *msgPool) get() (Message, error) {
	p.mu.Lock()
	n := len(p.free)
	if n == 0 {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: type %q in %q (%d in flight)", ErrPoolEmpty, p.typ.Name, p.area.Name(), p.total)
	}
	m := p.free[n-1]
	p.free = p.free[:n-1]
	if f := int64(p.total - n + 1); f > p.inFlightMax.Load() {
		p.inFlightMax.Store(f) // still under mu, so load+store cannot regress
	}
	p.mu.Unlock()
	p.gets.Add(1)
	return m, nil
}

// put resets and returns an instance to the pool.
func (p *msgPool) put(m Message) {
	m.Reset()
	p.mu.Lock()
	p.free = append(p.free, m)
	p.mu.Unlock()
	p.returns.Add(1)
}

// stats reports (capacity, in-flight, gets, returns).
func (p *msgPool) stats() (capacity, inFlight int, gets, returns int64) {
	p.mu.Lock()
	freeN := len(p.free)
	p.mu.Unlock()
	return p.total, p.total - freeN, p.gets.Load(), p.returns.Load()
}

// envelope tracks one sent message through all of its receivers so it can
// be returned to its pool exactly once. Envelopes themselves are recycled
// through a sync.Pool, so the steady-state send path does not allocate one
// per message.
type envelope struct {
	msg       Message
	pool      *msgPool
	remaining atomic.Int32
	release   func() // optional extra cleanup (serialization scratch, etc.)
}

var envelopePool = sync.Pool{New: func() any { return new(envelope) }}

// newEnvelope takes a recycled envelope and arms it for n receivers.
func newEnvelope(msg Message, pool *msgPool, n int) *envelope {
	e := envelopePool.Get().(*envelope)
	e.msg, e.pool, e.release = msg, pool, nil
	e.remaining.Store(int32(n))
	return e
}

// done records one receiver finishing; the last one recycles the message
// and returns the envelope to its pool.
func (e *envelope) done() {
	if e.remaining.Add(-1) != 0 {
		return
	}
	if e.pool != nil {
		e.pool.put(e.msg)
	}
	if e.release != nil {
		e.release()
	}
	e.msg, e.pool, e.release = nil, nil, nil
	envelopePool.Put(e)
}
