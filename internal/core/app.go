package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/memory"
)

// AppConfig parameterises an App. It corresponds to the CCL
// <RTSJAttributes> section plus framework-wide defaults.
type AppConfig struct {
	// Name is the application name (CCL <ApplicationName>).
	Name string
	// ImmortalSize is the immortal memory budget in bytes
	// (CCL <ImmortalSize>); zero selects the model default.
	ImmortalSize int64
	// ScopePools pre-creates pools of scoped areas per nesting level
	// (CCL <ScopedPool>). Components whose definition names a pooled level
	// acquire their area from the pool instead of creating a fresh one.
	ScopePools []ScopePoolSpec
	// MsgPoolCapacity is the number of pooled instances per message type
	// per SMM; zero selects DefaultMsgPoolCapacity.
	MsgPoolCapacity int
	// OnError receives asynchronous handler errors. Nil errors are never
	// delivered. When nil, errors are counted but otherwise dropped.
	OnError func(error)
}

// ScopePoolSpec describes one CCL <ScopedPool> entry.
type ScopePoolSpec struct {
	// Level is the scope nesting level the pool serves (1 = children of
	// immortal components).
	Level int
	// AreaSize is the byte budget of each pooled area (CCL <ScopeSize>).
	AreaSize int64
	// Count is the number of pre-created areas (CCL <PoolSize>).
	Count int
	// Grow permits creating extra areas past Count on demand.
	Grow bool
}

// DefaultMsgPoolCapacity is the per-type message pool capacity used when
// AppConfig.MsgPoolCapacity is zero.
const DefaultMsgPoolCapacity = 32

// Byte charges for framework structures, so that area budgets in CCL files
// are meaningful and exhaustion behaves like the RTSJ.
const (
	componentHeaderBytes = 128
	portHeaderBytes      = 64
	bufferSlotBytes      = 16
)

// App is one Compadres application: a memory model, scope pools, and a tree
// of components rooted at immortal top-level components.
type App struct {
	name    string
	model   *memory.Model
	msgCap  int
	onError func(error)

	mu       sync.Mutex
	top      []*Component
	topNames map[string]*Component
	pools    map[int]*memory.ScopePool
	started  bool
	stopped  bool
	errCount int64
	lastErr  error

	// phase is the mission-style lifecycle state (see Phase); Start, Drain,
	// Terminate, and Stop drive it.
	phase atomic.Int32

	// ctxPool recycles no-heap memory contexts across Exec calls, so the
	// steady-state dispatch path does not allocate a context (and its scope
	// stack) per message.
	ctxPool sync.Pool
}

// getNoHeapCtx takes a recycled no-heap context (scope stack at immortal).
func (a *App) getNoHeapCtx() *memory.Context {
	return a.ctxPool.Get().(*memory.Context)
}

// putNoHeapCtx recycles a context whose scope stack is back at its base;
// unbalanced stacks (a panic unwound past Exec) are dropped.
func (a *App) putNoHeapCtx(ctx *memory.Context) {
	if ctx.Depth() == 1 {
		a.ctxPool.Put(ctx)
	}
}

// NewApp creates an application per cfg.
func NewApp(cfg AppConfig) (*App, error) {
	model := memory.NewModel(memory.Config{ImmortalSize: cfg.ImmortalSize})
	msgCap := cfg.MsgPoolCapacity
	if msgCap == 0 {
		msgCap = DefaultMsgPoolCapacity
	}
	a := &App{
		name:     cfg.Name,
		model:    model,
		msgCap:   msgCap,
		onError:  cfg.OnError,
		topNames: make(map[string]*Component),
		pools:    make(map[int]*memory.ScopePool),
	}
	a.ctxPool.New = func() any { return a.model.NewNoHeapContext() }
	for _, spec := range cfg.ScopePools {
		if spec.Level < 1 {
			return nil, fmt.Errorf("core: scope pool level %d: levels start at 1", spec.Level)
		}
		if _, dup := a.pools[spec.Level]; dup {
			return nil, fmt.Errorf("%w: scope pool for level %d", ErrDuplicateName, spec.Level)
		}
		p, err := model.NewScopePool(memory.ScopePoolConfig{
			Name:     fmt.Sprintf("%s.level%d", cfg.Name, spec.Level),
			AreaSize: spec.AreaSize,
			Count:    spec.Count,
			Grow:     spec.Grow,
		})
		if err != nil {
			return nil, err
		}
		a.pools[spec.Level] = p
	}
	return a, nil
}

// Name returns the application name.
func (a *App) Name() string { return a.name }

// Model returns the application's memory model.
func (a *App) Model() *memory.Model { return a.model }

// ScopePool returns the pool configured for the given level, or nil.
func (a *App) ScopePool(level int) *memory.ScopePool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pools[level]
}

// NewImmortalComponent creates a top-level component in immortal memory.
// setup (which may be nil) adds the component's ports, child definitions,
// and start function; it runs with the component's execution context.
func (a *App) NewImmortalComponent(name string, setup func(*Component) error) (*Component, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return nil, ErrStopped
	}
	if _, dup := a.topNames[name]; dup {
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: component %q", ErrDuplicateName, name)
	}
	c := &Component{
		app:  a,
		name: name,
		area: a.model.Immortal(),
	}
	a.top = append(a.top, c)
	a.topNames[name] = c
	a.mu.Unlock()

	// Charge the component header to immortal memory.
	ctx := a.model.NewNoHeapContext()
	if _, err := ctx.AllocIn(c.area, componentHeaderBytes); err != nil {
		return nil, fmt.Errorf("component %q: %w", name, err)
	}
	if setup != nil {
		if err := setup(c); err != nil {
			return nil, fmt.Errorf("component %q setup: %w", name, err)
		}
	}
	return c, nil
}

// Component returns the top-level component with the given name, or nil.
func (a *App) Component(name string) *Component {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.topNames[name]
}

// Start runs the start function of every top-level component in creation
// order. Children run their start functions when instantiated.
func (a *App) Start() error {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return ErrStopped
	}
	if a.started {
		a.mu.Unlock()
		return nil
	}
	a.started = true
	top := make([]*Component, len(a.top))
	copy(top, a.top)
	a.mu.Unlock()
	a.phase.Store(int32(PhaseRunning))

	for _, c := range top {
		if err := c.runStart(); err != nil {
			return fmt.Errorf("start %q: %w", c.name, err)
		}
	}
	return nil
}

// Stop shuts the application down: new sends are rejected, port thread
// pools are drained and stopped, and live children are disposed bottom-up.
// Stop is idempotent.
func (a *App) Stop() {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	a.stopped = true
	top := make([]*Component, len(a.top))
	copy(top, a.top)
	a.mu.Unlock()
	a.phase.Store(int32(PhaseTerminated))

	for _, c := range top {
		c.shutdown()
	}
}

// Stopped reports whether Stop has been called.
func (a *App) Stopped() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stopped
}

// Errors reports the number of asynchronous handler errors observed and the
// most recent one.
func (a *App) Errors() (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.errCount, a.lastErr
}

// reportError records (and forwards) an asynchronous handler error.
func (a *App) reportError(err error) {
	if err == nil {
		return
	}
	a.mu.Lock()
	a.errCount++
	a.lastErr = err
	cb := a.onError
	a.mu.Unlock()
	if cb != nil {
		cb(err)
	}
}

// checkName rejects empty names and names containing the qualifier
// separator.
func checkName(name string) error {
	if name == "" || strings.Contains(name, ".") {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	return nil
}
