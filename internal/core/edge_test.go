package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/memory"
	"repro/internal/sched"
)

func TestDuplicatePortRegistrationRejected(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	c, err := app.NewImmortalComponent("C", nil)
	if err != nil {
		t.Fatal(err)
	}
	smm := c.SMM()
	h := HandlerFunc(func(*Proc, Message) error { return nil })

	if _, err := AddInPort(c, smm, InPortConfig{Name: "p", Type: intType, Handler: h}); err != nil {
		t.Fatal(err)
	}
	// Re-registering the same port name with the SAME type rebinds (the
	// transient-child path) rather than erroring...
	if _, err := AddInPort(c, smm, InPortConfig{Name: "p", Type: intType, Handler: h}); err != nil {
		t.Errorf("same-type rebind rejected: %v", err)
	}
	// ...but a different type is a contract violation.
	if _, err := AddInPort(c, smm, InPortConfig{Name: "p", Type: stringType, Handler: h}); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("type change err = %v", err)
	}

	op, err := AddOutPort(c, smm, OutPortConfig{Name: "q", Type: intType})
	if err != nil {
		t.Fatal(err)
	}
	if op.Name() != "C.q" || op.Type().Name != "Int" {
		t.Errorf("out-port accessors: %q %q", op.Name(), op.Type().Name)
	}
	if _, err := AddOutPort(c, smm, OutPortConfig{Name: "q", Type: stringType}); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("out type change err = %v", err)
	}
	// Same-type out rebind updates destinations.
	p, err := AddOutPort(c, smm, OutPortConfig{Name: "q", Type: intType, Dests: []string{"C.p"}})
	if err != nil {
		t.Fatal(err)
	}
	if d := p.Dests(); len(d) != 1 || d[0] != "C.p" {
		t.Errorf("dests = %v", d)
	}
}

func TestAmbiguousShortNameLookups(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	parent, err := app.NewImmortalComponent("P", func(c *Component) error {
		smm := c.SMM()
		h := HandlerFunc(func(*Proc, Message) error { return nil })
		if _, err := AddInPort(c, smm, InPortConfig{Name: "data", Type: intType, Handler: h}); err != nil {
			return err
		}
		return c.DefineChild(ChildDef{
			Name: "Kid", MemorySize: 1 << 13, Persistent: true,
			Setup: func(k *Component) error {
				// Same short name "data" as the parent's port, same SMM.
				_, err := AddInPort(k, smm, InPortConfig{Name: "data", Type: intType, Handler: h})
				return err
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := parent.SMM().Connect("Kid")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Disconnect()

	if _, err := parent.SMM().GetInPort("data"); !errors.Is(err, ErrUnknownPort) {
		t.Errorf("ambiguous short lookup err = %v", err)
	}
	if _, err := parent.SMM().GetInPort("P.data"); err != nil {
		t.Errorf("qualified lookup: %v", err)
	}
	if _, err := parent.SMM().GetInPort("Kid.data"); err != nil {
		t.Errorf("qualified child lookup: %v", err)
	}
}

func TestSMMAreaAndOwnerAccessors(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	c, err := app.NewImmortalComponent("C", nil)
	if err != nil {
		t.Fatal(err)
	}
	smm := c.SMM()
	if smm.Owner() != c {
		t.Error("owner accessor wrong")
	}
	if smm.Area() != app.Model().Immortal() {
		t.Error("area accessor wrong")
	}
	if smm.Mechanism() != MechanismSharedObject {
		t.Errorf("default mechanism = %v", smm.Mechanism())
	}
}

func TestPortRegistrationExhaustsArea(t *testing.T) {
	// A child whose area is too small for its port bookkeeping fails at
	// Setup with ErrOutOfMemory.
	app := newTestApp(t, AppConfig{})
	parent, err := app.NewImmortalComponent("P", func(c *Component) error {
		return c.DefineChild(ChildDef{
			// Just enough for the component header, nothing else.
			Name: "Tiny", MemorySize: componentHeaderBytes + 8,
			Setup: func(k *Component) error {
				// The child's own SMM charges to the child's area.
				_, err := AddInPort(k, k.SMM(), InPortConfig{
					Name: "in", Type: intType,
					Handler: HandlerFunc(func(*Proc, Message) error { return nil }),
				})
				return err
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parent.SMM().Connect("Tiny"); !errors.Is(err, memory.ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestHandoffFanOut(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	var got []int64
	mk := func(mul int64) Handler {
		return HandlerFunc(func(p *Proc, m Message) error {
			// The handler's memory context is current in the component's
			// area.
			if p.Context().Current() != p.Component().Area() {
				t.Error("handler context not in component area")
			}
			got = append(got, m.(*intMsg).value*mul)
			return nil
		})
	}
	comp, err := app.NewImmortalComponent("C", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{Name: "a", Type: intType, Handler: mk(1)}); err != nil {
			return err
		}
		if _, err := AddInPort(c, smm, InPortConfig{Name: "b", Type: intType, Handler: mk(100)}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: intType, Dests: []string{"C.a", "C.b"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	smm := comp.SMM()
	smm.SetMechanism(MechanismHandoff)
	out, _ := smm.GetOutPort("out")

	err = comp.Exec(func(ctx *memory.Context) error {
		msg, err := out.GetMessage()
		if err != nil {
			return err
		}
		msg.(*intMsg).value = 7
		return out.SendFrom(NewProc(comp, smm, ctx, 5), msg, 5)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Handoff is synchronous: both handlers ran inline, in dest order.
	if len(got) != 2 || got[0] != 7 || got[1] != 700 {
		t.Errorf("got = %v, want [7 700]", got)
	}
	// The message went back to the pool.
	if _, inFlight, _, _ := smm.MsgPoolStats("Int"); inFlight != 0 {
		t.Errorf("in flight = %d", inFlight)
	}
}

func TestSerializationFanOut(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	got := make(chan int64, 2)
	h := HandlerFunc(func(p *Proc, m Message) error {
		got <- m.(*intMsg).value
		return nil
	})
	comp, err := app.NewImmortalComponent("C", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{Name: "a", Type: intType, Handler: h}); err != nil {
			return err
		}
		if _, err := AddInPort(c, smm, InPortConfig{Name: "b", Type: intType, Handler: h}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: intType, Dests: []string{"C.a", "C.b"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	smm := comp.SMM()
	smm.SetMechanism(MechanismSerialization)
	out, _ := smm.GetOutPort("out")
	msg, _ := out.GetMessage()
	msg.(*intMsg).value = 55
	if err := out.Send(msg, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if v := waitRecv(t, got); v != 55 {
			t.Errorf("copy %d = %d", i, v)
		}
	}
	// Under serialization the original returns at send time; copies are
	// independent, so the pool balances immediately.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, inFlight, _, _ := smm.MsgPoolStats("Int")
		if inFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("in flight = %d", inFlight)
		}
	}
}

func TestAppScopePoolLookup(t *testing.T) {
	app := newTestApp(t, AppConfig{
		ScopePools: []ScopePoolSpec{{Level: 2, AreaSize: 1 << 12, Count: 1}},
	})
	if app.ScopePool(2) == nil {
		t.Error("configured pool missing")
	}
	if app.ScopePool(1) != nil {
		t.Error("unconfigured pool present")
	}
}

func TestAppConfigValidation(t *testing.T) {
	if _, err := NewApp(AppConfig{ScopePools: []ScopePoolSpec{{Level: 0, AreaSize: 10, Count: 1}}}); err == nil {
		t.Error("level-0 pool accepted")
	}
	if _, err := NewApp(AppConfig{ScopePools: []ScopePoolSpec{
		{Level: 1, AreaSize: 10, Count: 1}, {Level: 1, AreaSize: 10, Count: 1},
	}}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate pool err = %v", err)
	}
}

func TestConnectIdempotentForLiveChild(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	parent, err := app.NewImmortalComponent("P", func(c *Component) error {
		return c.DefineChild(ChildDef{
			Name: "Kid", MemorySize: 1 << 13,
			Setup: func(*Component) error { return nil },
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	smm := parent.SMM()
	h1, err := smm.Connect("Kid")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := smm.Connect("Kid")
	if err != nil {
		t.Fatal(err)
	}
	if h1.Component() != h2.Component() {
		t.Error("second connect created a new instance")
	}
	// Paper-style spelling.
	smm.Disconnect(h1)
	if h1.Component().Disposed() {
		t.Error("disposed while second handle held")
	}
	h2.Disconnect()
	if !h2.Component().Disposed() {
		t.Error("not disposed after last handle")
	}
}

func TestSendAtExtremePriorities(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	got := make(chan sched.Priority, 2)
	comp, err := app.NewImmortalComponent("C", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "in", Type: intType,
			Handler: HandlerFunc(func(p *Proc, m Message) error {
				got <- p.Priority()
				return nil
			}),
		}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: intType, Dests: []string{"C.in"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := comp.SMM().GetOutPort("out")
	for _, prio := range []sched.Priority{-100, 1000} {
		m, _ := out.GetMessage()
		if err := out.Send(m, prio); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[sched.Priority]bool{}
	for i := 0; i < 2; i++ {
		select {
		case p := <-got:
			seen[p] = true
		case <-time.After(2 * time.Second):
			t.Fatal("dispatch stalled")
		}
	}
	// Priorities clamp into the RTSJ band.
	if !seen[sched.MinPriority] || !seen[sched.MaxPriority] {
		t.Errorf("seen = %v, want clamped min and max", seen)
	}
}
