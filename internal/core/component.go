package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/memory"
	"repro/internal/sched"
)

// ChildDef is the blueprint of a scoped child component. Children are not
// constructed eagerly: the parent's SMM instantiates one when a message
// first arrives for one of its ports or when the parent calls SMM.Connect,
// and — unless Persistent — reclaims it at quiescence (no pending messages,
// no handles, no live children). This is the dynamic component
// instantiation of §2.2 of the paper.
type ChildDef struct {
	// Name is the child's instance name, unique among its siblings.
	Name string
	// MemorySize is the byte budget of the child's scoped area when no
	// scope pool serves its level.
	MemorySize int64
	// UsePool selects acquiring the area from the App's scope pool for the
	// child's nesting level instead of creating a fresh LT area each time.
	UsePool bool
	// Persistent keeps the instance alive at quiescence; it is reclaimed
	// only by Handle.Disconnect or App.Stop.
	Persistent bool
	// Reusable lets the SMM cache the component shell at quiescence and
	// revive it on the next instantiation instead of rebuilding it. The
	// memory semantics are unchanged — the scoped area is still reclaimed at
	// quiescence and a fresh one acquired, charged, and pinned on revival,
	// and the start function re-runs — but Setup runs only on the shell's
	// first construction: its port registrations and bindings survive
	// because the very same shell returns. Only set this for children whose
	// Setup is pure declaration (ports, handlers, start function) with no
	// per-instance side effects outside the component's area.
	Reusable bool
	// Setup declares the child's ports, nested child definitions, and start
	// function. It runs on every instantiation.
	Setup func(*Component) error
}

// Component is one Compadres component: a named artifact bound to a memory
// area, communicating through typed ports. Top-level components live in
// immortal memory; children live in scoped areas pinned open for the
// instance's lifetime.
type Component struct {
	app    *App
	name   string
	parent *Component
	area   *memory.Area
	wedge  *memory.Wedge // nil for immortal components
	level  int           // 0 for immortal components
	mgr    *SMM          // the SMM that instantiated this component (nil for top-level)
	def    *ChildDef     // blueprint this instance came from (nil for top-level)

	// started flips once the instance's start function has run (child
	// instances only). Message dispatch checks it — one atomic load on the
	// hot path — so a component never processes a message before it has
	// finished initialising. startWait is created lazily, under liveMu, only
	// by a delivery that actually races instantiation; it is closed (and the
	// waiters released) when started flips.
	started   atomic.Bool
	startWait chan struct{}

	// Construction-time state; smm is created lazily under app.mu.
	smm       *SMM
	childDefs map[string]*ChildDef
	startFn   func(*Proc) error

	// chain caches the component's scoped ancestor path (outermost first),
	// built once: area and parent are fixed for the instance's lifetime.
	chainOnce sync.Once
	chain     []*memory.Area

	// Liveness accounting. liveMu is the innermost lock: it is taken with
	// an SMM lock held but never the other way around.
	liveMu       sync.Mutex
	pending      int // in-flight messages targeted at this component
	handles      int // live Connect handles
	liveChildren int // instantiated, not-yet-disposed children
	autoDispose  bool
	disposed     bool
	// retired marks an instance swapped out by SMM.Swap: it must be
	// reclaimed at quiescence like any disconnect, but its shell must never
	// be stashed for revival — the blueprint it came from has been replaced.
	retired bool
}

// Name returns the component's instance name.
func (c *Component) Name() string { return c.name }

// Path returns the slash-separated path from the top-level component.
func (c *Component) Path() string {
	if c.parent == nil {
		return c.name
	}
	return c.parent.Path() + "/" + c.name
}

// App returns the owning application.
func (c *Component) App() *App { return c.app }

// Parent returns the parent component, or nil for top-level components.
func (c *Component) Parent() *Component { return c.parent }

// Area returns the component's memory area.
func (c *Component) Area() *memory.Area { return c.area }

// Level returns the component's scope nesting level: 0 for immortal
// components, parent level + 1 for scoped children.
func (c *Component) Level() int { return c.level }

// Disposed reports whether the component instance has been reclaimed.
func (c *Component) Disposed() bool {
	c.liveMu.Lock()
	defer c.liveMu.Unlock()
	return c.disposed
}

// SMM returns the component's scoped memory manager — the single manager
// through which it communicates with all of its children — creating it on
// first use. Its message pools and buffers are charged to this component's
// memory area.
func (c *Component) SMM() *SMM {
	c.app.mu.Lock()
	defer c.app.mu.Unlock()
	if c.smm == nil {
		c.smm = newSMM(c)
	}
	return c.smm
}

// SetStart registers the component's start function (the paper's _start),
// run in the component's execution context when the component starts: at
// App.Start for top-level components, at instantiation for children.
func (c *Component) SetStart(fn func(*Proc) error) { c.startFn = fn }

// DefineChild registers a child blueprint. The child is instantiated by the
// component's SMM on demand.
func (c *Component) DefineChild(def ChildDef) error {
	if err := checkName(def.Name); err != nil {
		return err
	}
	if def.Setup == nil {
		return fmt.Errorf("core: child %q: nil Setup", def.Name)
	}
	if !def.UsePool && def.MemorySize <= 0 {
		return fmt.Errorf("core: child %q: non-positive memory size %d", def.Name, def.MemorySize)
	}
	c.app.mu.Lock()
	defer c.app.mu.Unlock()
	if _, dup := c.childDefs[def.Name]; dup {
		return fmt.Errorf("%w: child %q of %q", ErrDuplicateName, def.Name, c.name)
	}
	if c.childDefs == nil {
		// Allocated on first definition: most instances (every pooled
		// transient re-instantiated per request) define no children, and a
		// nil map reads fine everywhere else.
		c.childDefs = make(map[string]*ChildDef)
	}
	d := def
	c.childDefs[def.Name] = &d
	return nil
}

// Exec runs fn inside the component's memory context: a no-heap context
// whose scope stack is entered down to the component's area, so allocations
// land in the component's region and the RTSJ access rules apply. Contexts
// are drawn from the app's pool; a context is recycled only when fn left the
// scope stack balanced (a panic drops it instead).
func (c *Component) Exec(fn func(*memory.Context) error) error {
	ctx := c.app.getNoHeapCtx()
	err := c.enterChain(ctx, fn)
	c.app.putNoHeapCtx(ctx)
	return err
}

// scopeChain returns the component's cached scoped-area path, outermost
// first, ending at c's own area.
func (c *Component) scopeChain() []*memory.Area {
	c.chainOnce.Do(func() {
		var chain []*memory.Area
		for cc := c; cc != nil && cc.area.Kind() == memory.KindScoped; cc = cc.parent {
			chain = append(chain, cc.area)
		}
		for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
			chain[i], chain[j] = chain[j], chain[i]
		}
		c.chain = chain
	})
	return c.chain
}

// enterChain enters the component's ancestor areas outermost-first, then
// runs fn with the context current in c's area.
func (c *Component) enterChain(ctx *memory.Context, fn func(*memory.Context) error) error {
	if c.area.Kind() != memory.KindScoped {
		return ctx.ExecuteInArea(c.area, fn)
	}
	return ctx.EnterChain(c.scopeChain(), fn)
}

// waitStarted blocks until the instance's start function has completed.
// Top-level components (nil mgr) never block: their start order is
// App.Start's contract.
func (c *Component) waitStarted() {
	if c.mgr == nil || c.started.Load() {
		return
	}
	c.liveMu.Lock()
	if c.started.Load() {
		c.liveMu.Unlock()
		return
	}
	if c.startWait == nil {
		c.startWait = make(chan struct{})
	}
	ch := c.startWait
	c.liveMu.Unlock()
	<-ch
}

// markStarted releases deliveries parked in waitStarted. It runs whether or
// not the start function succeeded — a failed instance is force-disposed
// right after, and the parked dispatches fail on the disposed check.
func (c *Component) markStarted() {
	c.liveMu.Lock()
	c.started.Store(true)
	if c.startWait != nil {
		close(c.startWait)
		c.startWait = nil
	}
	c.liveMu.Unlock()
}

// runStart invokes the start function (if any) in the component's context.
func (c *Component) runStart() error {
	if c.startFn == nil {
		return nil
	}
	return c.Exec(func(ctx *memory.Context) error {
		return c.startFn(&Proc{comp: c, smm: c.SMM(), ctx: ctx, prio: sched.NormPriority})
	})
}

// shutdown tears the component's subtree down (Stop path).
func (c *Component) shutdown() {
	if smm := c.currentSMM(); smm != nil {
		smm.shutdown()
	}
}

func (c *Component) currentSMM() *SMM {
	c.app.mu.Lock()
	defer c.app.mu.Unlock()
	return c.smm
}

// childDef looks up a child blueprint.
func (c *Component) childDef(name string) *ChildDef {
	c.app.mu.Lock()
	defer c.app.mu.Unlock()
	return c.childDefs[name]
}

// addPending registers an in-flight message targeted at this component,
// failing if the instance has already been disposed.
func (c *Component) addPending() bool {
	c.liveMu.Lock()
	defer c.liveMu.Unlock()
	if c.disposed {
		return false
	}
	c.pending++
	return true
}

// donePending retires one in-flight message.
func (c *Component) donePending() {
	c.liveMu.Lock()
	c.pending--
	c.liveMu.Unlock()
}

// addHandle registers a Connect handle, failing on a disposed instance.
func (c *Component) addHandle() bool {
	c.liveMu.Lock()
	defer c.liveMu.Unlock()
	if c.disposed {
		return false
	}
	c.handles++
	return true
}

// childGone retires one live child.
func (c *Component) childGone() {
	c.liveMu.Lock()
	c.liveChildren--
	c.liveMu.Unlock()
}

// childBorn registers one live child.
func (c *Component) childBorn() {
	c.liveMu.Lock()
	c.liveChildren++
	c.liveMu.Unlock()
}

// maybeQuiesce disposes the instance if it is transient and fully
// quiescent, then propagates the check to the parent. It is the runtime
// behaviour behind the paper's "after the messages are processed by the
// component, the scoped memory objects are reclaimed".
func (c *Component) maybeQuiesce() {
	if c.mgr == nil {
		return
	}
	c.liveMu.Lock()
	if c.disposed || !c.autoDispose || c.pending > 0 || c.handles > 0 || c.liveChildren > 0 {
		c.liveMu.Unlock()
		return
	}
	c.disposed = true
	retired := c.retired
	c.liveMu.Unlock()

	if c.def != nil && c.def.Reusable && !retired {
		// Keep the port bindings: the same shell comes back on revival, so a
		// binding that still names it is merely dormant — addPending rejects
		// deliveries while the shell is disposed, and the resolveIn fallback
		// re-instantiates. The shell is stashed only after teardown so a
		// concurrent revival can never race the wedge release.
		c.mgr.forget(c)
		c.teardown()
		c.mgr.stashShell(c)
	} else {
		c.mgr.detach(c)
		c.teardown()
	}
	if p := c.parent; p != nil {
		p.childGone()
		p.maybeQuiesce()
	}
}

// retire marks the instance for reclamation at quiescence (like an explicit
// Disconnect) and bars its shell from being stashed for revival: a
// swapped-out version must never come back under the new blueprint.
func (c *Component) retire() {
	c.liveMu.Lock()
	c.autoDispose = true
	c.retired = true
	c.liveMu.Unlock()
}

// awaitDisposed waits — bounded by timeout — for the instance to be
// reclaimed, reporting whether it was. The 50µs poll keeps the reconfig
// pause measurement fine-grained without touching the per-message paths.
func (c *Component) awaitDisposed(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for !c.Disposed() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(50 * time.Microsecond)
	}
	return true
}

// busy reports in-flight work anywhere in the component's subtree: pending
// deliveries on this instance, queued messages on its SMM's In ports, or a
// busy child.
func (c *Component) busy() bool {
	c.liveMu.Lock()
	pending := c.pending
	c.liveMu.Unlock()
	if pending > 0 {
		return true
	}
	smm := c.currentSMM()
	return smm != nil && smm.busy()
}

// forceDispose reclaims the instance regardless of quiescence (Stop path;
// pools must already be drained).
func (c *Component) forceDispose() {
	c.liveMu.Lock()
	if c.disposed {
		c.liveMu.Unlock()
		return
	}
	c.disposed = true
	c.liveMu.Unlock()

	if c.mgr != nil {
		c.mgr.detach(c)
	}
	c.teardown()
	if p := c.parent; p != nil {
		p.childGone()
	}
}

// teardown shuts the component's own SMM down and releases its area. Most
// transient instances never created an SMM of their own (their ports live on
// the parent's), so the common path is one lock cycle and the wedge release.
func (c *Component) teardown() {
	c.app.mu.Lock()
	smm := c.smm
	c.app.mu.Unlock()
	if smm != nil {
		smm.shutdown()
		c.app.mu.Lock()
		c.smm = nil
		c.app.mu.Unlock()
	}
	if c.wedge != nil {
		c.wedge.Release()
	}
}
