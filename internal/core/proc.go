package core

import (
	"repro/internal/memory"
	"repro/internal/sched"
)

// Proc is the execution context handed to message handlers and start
// functions. It mirrors the paper's process(Object data, SMM smm) signature
// while also exposing the memory context of the executing (simulated)
// real-time thread, which sits in the owning component's memory area.
type Proc struct {
	comp *Component
	smm  *SMM
	ctx  *memory.Context
	prio sched.Priority
}

// NewProc builds an execution context for code driving ports from outside a
// handler — e.g. an application thread that must trigger the first message
// through the handoff mechanism. ctx must be current in comp's memory area
// (typically obtained inside Component.Exec).
func NewProc(comp *Component, smm *SMM, ctx *memory.Context, prio sched.Priority) *Proc {
	return &Proc{comp: comp, smm: smm, ctx: ctx, prio: prio}
}

// Component returns the component whose port is being processed.
func (p *Proc) Component() *Component { return p.comp }

// SMM returns the scoped memory manager mediating the port — the manager the
// paper passes to every process() invocation.
func (p *Proc) SMM() *SMM { return p.smm }

// Context returns the executing thread's memory context, current in the
// component's memory area. Use it to allocate in the component's region or
// to send via the handoff mechanism.
func (p *Proc) Context() *memory.Context { return p.ctx }

// Priority returns the priority inherited from the message being processed.
func (p *Proc) Priority() sched.Priority { return p.prio }

// Handler processes messages arriving at an In port.
//
// Handlers run in the receiving component's memory area: allocations through
// p.Context() are charged to that area and obey the RTSJ access rules. The
// message must not be retained past the call — it returns to its pool when
// every receiver has processed it.
type Handler interface {
	Process(p *Proc, msg Message) error
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(p *Proc, msg Message) error

// Process implements Handler.
func (f HandlerFunc) Process(p *Proc, msg Message) error { return f(p, msg) }
