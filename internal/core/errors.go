package core

import "errors"

var (
	// ErrBufferFull reports a Send to an In port whose bounded message
	// buffer is at capacity.
	ErrBufferFull = errors.New("core: in-port buffer full")

	// ErrPoolEmpty reports GetMessage on an exhausted message pool: every
	// pooled instance is currently in flight.
	ErrPoolEmpty = errors.New("core: message pool empty")

	// ErrTypeMismatch reports connecting or sending across ports whose
	// message types do not match exactly.
	ErrTypeMismatch = errors.New("core: message type mismatch")

	// ErrUnknownPort reports a destination port name that no registered
	// port or child definition provides.
	ErrUnknownPort = errors.New("core: unknown port")

	// ErrUnknownChild reports Connect on a child name with no definition.
	ErrUnknownChild = errors.New("core: unknown child component")

	// ErrDuplicateName reports registering a component, child definition, or
	// port under a name already in use.
	ErrDuplicateName = errors.New("core: duplicate name")

	// ErrBadName reports a component or port name containing the '.'
	// qualifier separator or being empty.
	ErrBadName = errors.New("core: invalid name")

	// ErrStopped reports an operation on a stopped App or a disposed
	// component.
	ErrStopped = errors.New("core: stopped")

	// ErrNotSerializable reports using the serialization mechanism with a
	// message type that does not implement encoding.BinaryMarshaler and
	// encoding.BinaryUnmarshaler.
	ErrNotSerializable = errors.New("core: message type is not serializable")

	// ErrNeedsCallerContext reports a handoff-mechanism Send issued outside
	// a component execution context (handoff requires the sender's scope
	// stack).
	ErrNeedsCallerContext = errors.New("core: handoff mechanism requires the sender's context")

	// ErrDrainTimeout reports a Drain, Terminate, or Swap whose bounded
	// wait for quiescence expired with work still in flight.
	ErrDrainTimeout = errors.New("core: drain timed out")
)
