package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/telemetry"
)

// missCollector installs a process-wide miss handler for the test's duration
// and returns an accessor for the misses seen.
func missCollector(t *testing.T) func() []telemetry.Miss {
	t.Helper()
	var mu sync.Mutex
	var got []telemetry.Miss
	telemetry.SetDeadlineMissHandler(func(m telemetry.Miss) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	t.Cleanup(func() { telemetry.SetDeadlineMissHandler(nil) })
	return func() []telemetry.Miss {
		mu.Lock()
		defer mu.Unlock()
		out := make([]telemetry.Miss, len(got))
		copy(out, got)
		return out
	}
}

// TestDeadlineMissSynchronousDispatch drives the pool-size-0 path: the
// handler runs inline on the sender, and a 1ns deadline has always lapsed by
// the time dispatch checks it.
func TestDeadlineMissSynchronousDispatch(t *testing.T) {
	telemetry.Verbose(true)
	defer telemetry.Verbose(false)
	misses := missCollector(t)
	app := newTestApp(t, AppConfig{})
	done := make(chan struct{}, 1)

	comp, err := app.NewImmortalComponent("SyncDL", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "in", Type: intType, Threading: ThreadingSynchronous,
			Handler: HandlerFunc(func(p *Proc, m Message) error {
				done <- struct{}{}
				return nil
			}),
		}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: intType, Dests: []string{"SyncDL.in"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}

	out, err := comp.SMM().GetOutPort("out")
	if err != nil {
		t.Fatal(err)
	}
	out.SetSendDeadline(time.Nanosecond)
	if got := out.SendDeadline(); got != time.Nanosecond {
		t.Fatalf("SendDeadline = %v", got)
	}

	before := telemetry.DeadlineMisses()
	m, err := out.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Send(m, sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	<-done // synchronous: already delivered, but drain for symmetry

	if telemetry.DeadlineMisses() != before+1 {
		t.Errorf("global misses = %d, want %d", telemetry.DeadlineMisses(), before+1)
	}
	ms := misses()
	if len(ms) != 1 || ms[0].Label != "SyncDL.in" || ms[0].Priority != int(sched.NormPriority) {
		t.Fatalf("misses = %+v", ms)
	}
	if ms[0].Lateness() <= 0 {
		t.Errorf("lateness = %d, want > 0", ms[0].Lateness())
	}

	// The flight recorder must hold the miss (and the send/dispatch pair).
	var sawMiss, sawSend, sawDispatch bool
	for _, ev := range telemetry.Default.Ring().Snapshot() {
		switch {
		case ev.Kind == telemetry.EvDeadlineMiss && ev.Label == "SyncDL.in":
			sawMiss = true
		case ev.Kind == telemetry.EvSend && ev.Label == "SyncDL.out":
			sawSend = true
		case ev.Kind == telemetry.EvDispatch && ev.Label == "SyncDL.in":
			sawDispatch = true
		}
	}
	if !sawMiss || !sawSend || !sawDispatch {
		t.Errorf("ring events: miss=%v send=%v dispatch=%v, want all", sawMiss, sawSend, sawDispatch)
	}

	// An on-time send must not add a miss.
	out.SetSendDeadline(time.Hour)
	m2, err := out.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Send(m2, sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	<-done
	if telemetry.DeadlineMisses() != before+1 {
		t.Errorf("on-time send was counted as a miss")
	}
}

// TestDeadlineMissAsyncDispatch drives the pooled path: the port's single
// worker is pinned by the first message, so the second waits in the buffer
// past its deadline and the miss is detected when its dispatch finally runs.
func TestDeadlineMissAsyncDispatch(t *testing.T) {
	misses := missCollector(t)
	app := newTestApp(t, AppConfig{})
	gate := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{}, 2)
	first := true

	comp, err := app.NewImmortalComponent("AsyncDL", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "in", Type: intType, Threading: ThreadingDedicated,
			MinThreads: 1, MaxThreads: 1,
			Handler: HandlerFunc(func(p *Proc, m Message) error {
				if first {
					first = false
					close(started)
					<-gate
				}
				done <- struct{}{}
				return nil
			}),
		}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: intType, Dests: []string{"AsyncDL.in"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}

	out, err := comp.SMM().GetOutPort("out")
	if err != nil {
		t.Fatal(err)
	}

	// First message pins the worker (no deadline).
	m1, err := out.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Send(m1, sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	<-started

	// Second message has 10ms to start; the worker stays pinned for 30ms.
	out.SetSendDeadline(10 * time.Millisecond)
	m2, err := out.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Send(m2, sched.MaxPriority); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	close(gate)
	<-done
	<-done

	ms := misses()
	if len(ms) != 1 || ms[0].Label != "AsyncDL.in" {
		t.Fatalf("misses = %+v", ms)
	}
	if late := ms[0].Lateness(); late < int64(10*time.Millisecond) {
		t.Errorf("lateness = %v, want >= 10ms", time.Duration(late))
	}
}

// TestDeadlineShedAtDequeue pins the accounting fix for work shed at
// dequeue: a ShedExpired port drops a message whose deadline already passed
// WITHOUT running the handler, counts it as deadline_shed_total (not
// deadline_miss_total), fires the message's OnShed hook, and never invokes
// the miss handler — a shed is not a late execution.
func TestDeadlineShedAtDequeue(t *testing.T) {
	misses := missCollector(t)
	app := newTestApp(t, AppConfig{})
	gate := make(chan struct{})
	started := make(chan struct{})
	handled := make(chan int, 4)
	first := true

	comp, err := app.NewImmortalComponent("ShedDL", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "in", Type: classedType, Threading: ThreadingDedicated,
			MinThreads: 1, MaxThreads: 1,
			ShedExpired: true,
			Handler: HandlerFunc(func(p *Proc, m Message) error {
				if first {
					first = false
					close(started)
					<-gate
				}
				handled <- m.(*classedMsg).v
				return nil
			}),
		}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: classedType, Dests: []string{"ShedDL.in"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}

	out, err := comp.SMM().GetOutPort("out")
	if err != nil {
		t.Fatal(err)
	}
	in, err := comp.SMM().GetInPort("ShedDL.in")
	if err != nil {
		t.Fatal(err)
	}

	// First message pins the worker (no deadline).
	m1, err := out.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	m1.(*classedMsg).v = 1
	if err := out.Send(m1, sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	<-started

	// Second message gets 5ms; the worker stays pinned for 30ms, so it is
	// already dead when its dispatch finally pops it.
	shedsBefore := telemetry.DeadlineSheds()
	missesBefore := telemetry.DeadlineMisses()
	var onShed atomic.Int32
	out.SetSendDeadline(5 * time.Millisecond)
	m2, err := out.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	m2.(*classedMsg).v = 2
	m2.(*classedMsg).onShed = func() { onShed.Add(1) }
	if err := out.Send(m2, sched.MaxPriority); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	close(gate)

	if v := <-handled; v != 1 {
		t.Fatalf("first handled message = %d, want 1", v)
	}
	// The dead message must never reach the handler.
	select {
	case v := <-handled:
		t.Fatalf("expired message %d was executed, want shed at dequeue", v)
	case <-time.After(50 * time.Millisecond):
	}

	if got := telemetry.DeadlineSheds(); got != shedsBefore+1 {
		t.Errorf("deadline_shed_total = %d, want %d", got, shedsBefore+1)
	}
	if got := telemetry.DeadlineMisses(); got != missesBefore {
		t.Errorf("deadline_miss_total moved to %d (was %d): a shed is not a miss", got, missesBefore)
	}
	if got := len(misses()); got != 0 {
		t.Errorf("miss handler invoked %d times for shed work, want 0", got)
	}
	if got := onShed.Load(); got != 1 {
		t.Errorf("OnShed fired %d times, want 1", got)
	}
	// Port bookkeeping: the shed counts as dropped+shed, not processed.
	received, processed, dropped := in.Stats()
	if received != 2 || processed != 1 || dropped != 1 {
		t.Errorf("stats = (recv %d, proc %d, drop %d), want (2, 1, 1)", received, processed, dropped)
	}
	if in.Shed() != 1 {
		t.Errorf("port shed = %d, want 1", in.Shed())
	}
	// Attribution: the expired shed landed in the victim's band counter.
	// (MaxPriority band; other tests do not shed expired work there.)
	app.Stop()
}

// TestDeadlineMissStillExecutesWithoutShedExpired pins the default: without
// ShedExpired, a late message is counted as a miss and still processed.
func TestDeadlineMissStillExecutesWithoutShedExpired(t *testing.T) {
	misses := missCollector(t)
	app := newTestApp(t, AppConfig{})
	handled := make(chan struct{}, 1)

	comp, err := app.NewImmortalComponent("LateDL", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "in", Type: intType, Threading: ThreadingSynchronous,
			Handler: HandlerFunc(func(p *Proc, m Message) error {
				handled <- struct{}{}
				return nil
			}),
		}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: intType, Dests: []string{"LateDL.in"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	out, err := comp.SMM().GetOutPort("out")
	if err != nil {
		t.Fatal(err)
	}
	out.SetSendDeadline(time.Nanosecond)
	shedsBefore := telemetry.DeadlineSheds()
	m, err := out.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Send(m, sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	<-handled // late, but executed
	if got := len(misses()); got != 1 {
		t.Errorf("miss handler invoked %d times, want 1", got)
	}
	if got := telemetry.DeadlineSheds(); got != shedsBefore {
		t.Errorf("deadline_shed_total moved without ShedExpired")
	}
}
