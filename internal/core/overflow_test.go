package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
)

// overflowType is the message type used by the end-to-end shedding test.
var overflowType = MessageType{Name: "OverflowTest", Size: 16, New: func() Message { return &testMsg{} }}

// newOverflowPort builds a bare InPort (no SMM) for white-box policy tests.
func newOverflowPort(capacity int, policy Overflow) *InPort {
	p := &InPort{
		qname:    "T.in",
		capacity: capacity,
		buf:      make([]bufItem, 0, capacity),
		overflow: policy,
	}
	if policy == OverflowBlock {
		p.notFull = sync.NewCond(&p.mu)
	}
	return p
}

func mustPush(t *testing.T, p *InPort, v int, prio sched.Priority) {
	t.Helper()
	if _, _, err := p.push(bufItem{msg: &testMsg{v: v}, prio: prio}); err != nil {
		t.Fatal(err)
	}
}

func popValues(p *InPort) []int {
	var out []int
	for {
		it, ok := p.pop()
		if !ok {
			return out
		}
		out = append(out, it.msg.(*testMsg).v)
	}
}

func TestOverflowReject(t *testing.T) {
	p := newOverflowPort(2, OverflowReject)
	mustPush(t, p, 1, sched.NormPriority)
	mustPush(t, p, 2, sched.NormPriority)
	_, _, err := p.push(bufItem{msg: &testMsg{v: 3}, prio: sched.NormPriority})
	if !errors.Is(err, ErrBufferFull) {
		t.Fatalf("err = %v, want ErrBufferFull", err)
	}
	if _, _, dropped := p.Stats(); dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if p.Shed() != 0 {
		t.Errorf("reject policy counted shed = %d, want 0", p.Shed())
	}
}

func TestOverflowDropOldest(t *testing.T) {
	p := newOverflowPort(3, OverflowDropOldest)
	mustPush(t, p, 1, sched.NormPriority)
	mustPush(t, p, 2, sched.NormPriority)
	mustPush(t, p, 3, sched.NormPriority)
	victim, evicted, err := p.push(bufItem{msg: &testMsg{v: 4}, prio: sched.NormPriority})
	if err != nil {
		t.Fatal(err)
	}
	if !evicted || victim.msg.(*testMsg).v != 1 {
		t.Fatalf("evicted = %v victim = %+v, want oldest (v=1)", evicted, victim.msg)
	}
	got := popValues(p)
	want := []int{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("queue after drop-oldest = %v, want %v", got, want)
		}
	}
	if p.Shed() != 1 {
		t.Errorf("shed = %d, want 1", p.Shed())
	}
}

func TestOverflowShedLowestPrefersLowPriorityVictim(t *testing.T) {
	p := newOverflowPort(3, OverflowShedLowest)
	mustPush(t, p, 1, 5)
	mustPush(t, p, 2, 20)
	mustPush(t, p, 3, 10)

	// A higher-priority newcomer evicts the priority-5 victim.
	victim, evicted, err := p.push(bufItem{msg: &testMsg{v: 4}, prio: 15})
	if err != nil {
		t.Fatal(err)
	}
	if !evicted || victim.prio != 5 {
		t.Fatalf("victim prio = %d (evicted=%v), want 5", victim.prio, evicted)
	}

	// A newcomer no more urgent than everything queued is itself shed.
	_, _, err = p.push(bufItem{msg: &testMsg{v: 5}, prio: 10})
	if !errors.Is(err, ErrBufferFull) {
		t.Fatalf("low-priority newcomer err = %v, want ErrBufferFull", err)
	}

	got := popValues(p)
	want := []int{2, 4, 3} // prio 20, 15, 10
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("queue after shedding = %v, want %v", got, want)
		}
	}
	if p.Shed() != 2 {
		t.Errorf("shed = %d, want 2 (one victim, one rejected newcomer)", p.Shed())
	}
}

func TestOverflowShedLowestTieBreaksOldest(t *testing.T) {
	p := newOverflowPort(2, OverflowShedLowest)
	mustPush(t, p, 1, 5)
	mustPush(t, p, 2, 5)
	victim, evicted, err := p.push(bufItem{msg: &testMsg{v: 3}, prio: 9})
	if err != nil || !evicted {
		t.Fatal(err)
	}
	if victim.msg.(*testMsg).v != 1 {
		t.Errorf("victim = v%d, want the older v1", victim.msg.(*testMsg).v)
	}
}

func TestOverflowBlockUnblocksOnPop(t *testing.T) {
	p := newOverflowPort(1, OverflowBlock)
	mustPush(t, p, 1, sched.NormPriority)

	pushed := make(chan error, 1)
	go func() {
		_, _, err := p.push(bufItem{msg: &testMsg{v: 2}, prio: sched.NormPriority})
		pushed <- err
	}()

	select {
	case err := <-pushed:
		t.Fatalf("push on a full Block port returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if it, ok := p.pop(); !ok || it.msg.(*testMsg).v != 1 {
		t.Fatal("pop failed")
	}
	select {
	case err := <-pushed:
		if err != nil {
			t.Fatalf("blocked push failed after space freed: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("push still blocked after pop freed a slot")
	}
}

func TestOverflowBlockWokenByClose(t *testing.T) {
	p := newOverflowPort(1, OverflowBlock)
	mustPush(t, p, 1, sched.NormPriority)
	pushed := make(chan error, 1)
	go func() {
		_, _, err := p.push(bufItem{msg: &testMsg{v: 2}, prio: sched.NormPriority})
		pushed <- err
	}()
	time.Sleep(10 * time.Millisecond)
	p.closePort()
	select {
	case err := <-pushed:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("err = %v, want ErrStopped", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked push not woken by closePort")
	}
}

// TestRemoveItemRetractsExactDelivery pins the retraction contract the send
// path relies on: when a dispatch submission fails after its item was
// pushed, removeItem must pull back that exact delivery — not whichever
// message tops the priority heap. (The old code popped an arbitrary item,
// which could orphan another sender's delivery while the failed one stayed
// queued against a completion channel its caller had already recycled.)
func TestRemoveItemRetractsExactDelivery(t *testing.T) {
	p := newOverflowPort(4, OverflowReject)
	envs := [3]*envelope{{}, {}, {}}
	msgs := [3]*testMsg{{v: 1}, {v: 2}, {v: 3}}
	// v2 is the highest priority: a naive pop would return it.
	prios := [3]sched.Priority{5, 25, 5}
	for i := range envs {
		if _, _, err := p.push(bufItem{env: envs[i], msg: msgs[i], prio: prios[i]}); err != nil {
			t.Fatal(err)
		}
	}
	it, ok := p.removeItem(envs[2], msgs[2])
	if !ok || it.msg.(*testMsg).v != 3 {
		t.Fatalf("removeItem = (%+v, %v), want the exact (env2, v3) delivery", it.msg, ok)
	}
	if _, ok := p.removeItem(envs[2], msgs[2]); ok {
		t.Fatal("removeItem found an already-retracted delivery")
	}
	got := popValues(p)
	want := []int{2, 1} // heap order among the survivors
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("surviving queue = %v, want %v", got, want)
	}
}

// TestOverflowEndToEndShedLowest drives a real component whose slow In port
// uses priority-aware shedding: under overload every high-priority message
// survives while low-priority traffic is shed, and the SMM's bookkeeping
// (pending counts, message pool) stays balanced.
func TestOverflowEndToEndShedLowest(t *testing.T) {
	app, err := NewApp(AppConfig{Name: "shed", ImmortalSize: 1 << 20, MsgPoolCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	release := make(chan struct{})
	var mu sync.Mutex
	var seen []int

	var out *OutPort
	_, err = app.NewImmortalComponent("T", func(c *Component) error {
		smm := c.SMM()
		var aerr error
		out, aerr = AddOutPort(c, smm, OutPortConfig{
			Name: "out", Type: overflowType, Dests: []string{"T.in"},
		})
		if aerr != nil {
			return aerr
		}
		_, aerr = AddInPort(c, smm, InPortConfig{
			Name: "in", Type: overflowType, BufferSize: 4,
			Threading: ThreadingDedicated, MinThreads: 1, MaxThreads: 1,
			Overflow: OverflowShedLowest,
			Handler: HandlerFunc(func(p *Proc, m Message) error {
				<-release
				mu.Lock()
				seen = append(seen, m.(*testMsg).v)
				mu.Unlock()
				return nil
			}),
		})
		return aerr
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}

	// Flood: far more messages than the buffer holds, low priority first.
	const total = 24
	var sendErrs int
	for i := 0; i < total; i++ {
		m, err := out.GetMessage()
		if err != nil {
			t.Fatal(err)
		}
		m.(*testMsg).v = i
		prio := sched.Priority(2)
		if i >= total-4 {
			prio = sched.Priority(28) // the last four are critical
		}
		if err := out.Send(m, prio); err != nil {
			sendErrs++
		}
	}
	close(release)

	deadline := time.After(5 * time.Second)
	for {
		in, err := app.Component("T").SMM().GetInPort("T.in")
		if err != nil {
			t.Fatal(err)
		}
		received, processed, dropped := in.Stats()
		// dropped = rejected newcomers (surfaced as Send errors) + evicted
		// victims; only non-evicted arrivals ever reach the handler.
		evictions := dropped - int64(sendErrs)
		if processed == received-evictions {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("handler drained %d of %d", processed, received)
		case <-time.After(5 * time.Millisecond):
		}
	}

	mu.Lock()
	defer mu.Unlock()
	critical := 0
	for _, v := range seen {
		if v >= total-4 {
			critical++
		}
	}
	if critical != 4 {
		t.Errorf("only %d of 4 critical messages survived overload; seen = %v", critical, seen)
	}
	in, _ := app.Component("T").SMM().GetInPort("T.in")
	if in.Shed() == 0 && sendErrs == 0 {
		t.Error("no shedding recorded despite flooding a 4-slot buffer")
	}
}

// newFairOverflowPort builds a bare fair-mode InPort for white-box tests.
func newFairOverflowPort(capacity int, policy Overflow, weights []int32) *InPort {
	p := &InPort{
		qname:    "T.fair",
		capacity: capacity,
		overflow: policy,
		fair:     sched.NewFairQueue(weights),
		slab:     make([]bufItem, capacity),
		freeList: make([]uint32, capacity),
	}
	for i := range p.freeList {
		p.freeList[i] = uint32(capacity - 1 - i)
	}
	if policy == OverflowBlock {
		p.notFull = sync.NewCond(&p.mu)
	}
	return p
}

// Every overflow shed is attributed to its policy and the victim's priority
// band: brown-out control needs to know WHAT it is dropping, not just how
// much.
func TestShedCountersPerPolicyAndBand(t *testing.T) {
	dropOldest7 := shedBandCounter(shedCauseDropOldest, 7).Value()
	shedLowest5 := shedBandCounter(shedCauseShedLowest, 5).Value()
	shedLowest9 := shedBandCounter(shedCauseShedLowest, 9).Value()

	// DropOldest eviction: the victim rode band 7.
	p := newOverflowPort(1, OverflowDropOldest)
	mustPush(t, p, 1, 7)
	mustPush(t, p, 2, 12)
	if got := shedBandCounter(shedCauseDropOldest, 7).Value(); got != dropOldest7+1 {
		t.Errorf("shed_dropoldest_band_7_total = %d, want %d", got, dropOldest7+1)
	}

	// ShedLowest eviction: victim band 5. Newcomer rejection: band 9.
	q := newOverflowPort(1, OverflowShedLowest)
	mustPush(t, q, 1, 5)
	mustPush(t, q, 2, 20)
	if got := shedBandCounter(shedCauseShedLowest, 5).Value(); got != shedLowest5+1 {
		t.Errorf("shed_shedlowest_band_5_total = %d, want %d (evicted victim)", got, shedLowest5+1)
	}
	if _, _, err := q.push(bufItem{msg: &testMsg{v: 3}, prio: 9}); !errors.Is(err, ErrBufferFull) {
		t.Fatalf("err = %v, want ErrBufferFull", err)
	}
	if got := shedBandCounter(shedCauseShedLowest, 9).Value(); got != shedLowest9+1 {
		t.Errorf("shed_shedlowest_band_9_total = %d, want %d (rejected newcomer)", got, shedLowest9+1)
	}

	// Out-of-range priorities clamp into the band table instead of panicking.
	if c := shedBandCounter(shedCauseExpired, -3); c != shedBandCounter(shedCauseExpired, 0) {
		t.Error("negative priority did not clamp to band 0")
	}
	if c := shedBandCounter(shedCauseExpired, 99); c != shedBandCounter(shedCauseExpired, sched.MaxPriority) {
		t.Error("oversized priority did not clamp to the top band")
	}
}

// classedMsg is a testMsg carrying a tenant class and a shed observer.
type classedMsg struct {
	testMsg
	class  uint8
	onShed func()
}

func (m *classedMsg) TenantClass() uint8 { return m.class }
func (m *classedMsg) OnShed() {
	if m.onShed != nil {
		m.onShed()
	}
}

// classedType is the pooled message type for ShedAware end-to-end tests.
var classedType = MessageType{Name: "ClassedTest", Size: 32, New: func() Message { return &classedMsg{} }}

// A fair-mode port preserves the overflow-policy contracts: Reject refuses
// newcomers, DropOldest evicts the globally oldest, ShedLowest raids only
// the lowest band and rejects an un-urgent newcomer.
func TestFairPortOverflowPolicies(t *testing.T) {
	p := newFairOverflowPort(2, OverflowReject, nil)
	mustPush(t, p, 1, 10)
	mustPush(t, p, 2, 10)
	if _, _, err := p.push(bufItem{msg: &testMsg{v: 3}, prio: 10}); !errors.Is(err, ErrBufferFull) {
		t.Fatalf("fair Reject err = %v, want ErrBufferFull", err)
	}

	p = newFairOverflowPort(2, OverflowDropOldest, nil)
	mustPush(t, p, 1, 20) // oldest, despite the higher band
	mustPush(t, p, 2, 5)
	victim, evicted, err := p.push(bufItem{msg: &testMsg{v: 3}, prio: 10})
	if err != nil || !evicted || victim.msg.(*testMsg).v != 1 {
		t.Fatalf("fair DropOldest victim = %+v (evicted %v, err %v), want v1", victim.msg, evicted, err)
	}

	p = newFairOverflowPort(2, OverflowShedLowest, nil)
	mustPush(t, p, 1, 5)
	mustPush(t, p, 2, 20)
	victim, evicted, err = p.push(bufItem{msg: &testMsg{v: 3}, prio: 15})
	if err != nil || !evicted || victim.prio != 5 {
		t.Fatalf("fair ShedLowest victim prio = %d (evicted %v, err %v), want 5", victim.prio, evicted, err)
	}
	if _, _, err := p.push(bufItem{msg: &testMsg{v: 4}, prio: 15}); !errors.Is(err, ErrBufferFull) {
		t.Fatalf("fair ShedLowest un-urgent newcomer err = %v, want ErrBufferFull", err)
	}
	got := popValues(p)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("fair queue after shedding = %v, want [2 3]", got)
	}
}

// A fair port divides a contested band across tenant classes while a plain
// heap port serves pure FIFO within the band — the starvation the fair mode
// exists to fix.
func TestFairPortDividesBandAcrossClasses(t *testing.T) {
	p := newFairOverflowPort(16, OverflowReject, nil)
	// Tenant A floods 12 messages before tenant B's 4 arrive.
	for i := 0; i < 12; i++ {
		mustPush(t, p, 100+i, 10)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := p.push(bufItem{msg: &classedMsg{testMsg: testMsg{v: 200 + i}, class: 1}, prio: 10}); err != nil {
			t.Fatal(err)
		}
	}
	// Within the first 8 pops, equal weights must interleave: B gets 4.
	bSeen := 0
	for i := 0; i < 8; i++ {
		it, ok := p.pop()
		if !ok {
			t.Fatal("pop failed")
		}
		if _, isB := it.msg.(*classedMsg); isB {
			bSeen++
		}
	}
	if bSeen != 4 {
		t.Errorf("late tenant got %d of the first 8 pops, want 4 (equal-weight DRR)", bSeen)
	}
}

// removeItem retracts the exact delivery on a fair port too.
func TestFairPortRemoveItemExact(t *testing.T) {
	p := newFairOverflowPort(4, OverflowReject, nil)
	envs := [3]*envelope{{}, {}, {}}
	msgs := [3]*testMsg{{v: 1}, {v: 2}, {v: 3}}
	prios := [3]sched.Priority{5, 25, 5}
	for i := range envs {
		if _, _, err := p.push(bufItem{env: envs[i], msg: msgs[i], prio: prios[i]}); err != nil {
			t.Fatal(err)
		}
	}
	it, ok := p.removeItem(envs[2], msgs[2])
	if !ok || it.msg.(*testMsg).v != 3 {
		t.Fatalf("removeItem = (%+v, %v), want the exact (env2, v3) delivery", it.msg, ok)
	}
	if _, ok := p.removeItem(envs[2], msgs[2]); ok {
		t.Fatal("removeItem found an already-retracted delivery")
	}
	got := popValues(p)
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("surviving queue = %v, want [2 1]", got)
	}
}

// An eviction victim's OnShed hook fires exactly once, before release, so
// admission accounting can return the victim's in-flight slot.
func TestShedAwareOnShedFiresOnEviction(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	var out *OutPort
	_, err := app.NewImmortalComponent("SA", func(c *Component) error {
		smm := c.SMM()
		var aerr error
		out, aerr = AddOutPort(c, smm, OutPortConfig{Name: "out", Type: classedType, Dests: []string{"SA.in"}})
		if aerr != nil {
			return aerr
		}
		_, aerr = AddInPort(c, smm, InPortConfig{
			Name: "in", Type: classedType, BufferSize: 1,
			Threading: ThreadingDedicated, MinThreads: 1, MaxThreads: 1,
			Overflow: OverflowDropOldest,
			Handler: HandlerFunc(func(p *Proc, m Message) error {
				started <- struct{}{}
				<-block
				return nil
			}),
		})
		return aerr
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	defer close(block)

	var shed atomic.Int32
	send := func() {
		m, err := out.GetMessage()
		if err != nil {
			t.Fatal(err)
		}
		m.(*classedMsg).onShed = func() { shed.Add(1) }
		if err := out.Send(m, sched.NormPriority); err != nil {
			t.Fatal(err)
		}
	}

	send() // pins the worker
	<-started
	send() // waits in the 1-slot buffer
	send() // evicts the waiter: its OnShed must fire
	if got := shed.Load(); got != 1 {
		t.Errorf("OnShed fired %d times after one eviction, want 1", got)
	}
}
