package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
)

// TestChildStartSendsToSibling exercises the pattern the paper's skeletons
// invite ("_start ... may send the first messages"): a child's start
// function sends to a sibling that is not yet instantiated, which requires
// the same SMM's instantiation machinery while the first instantiation is
// still in progress.
func TestChildStartSendsToSibling(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	got := make(chan int64, 1)

	parent, err := app.NewImmortalComponent("P", func(c *Component) error {
		smm := c.SMM()
		if err := c.DefineChild(ChildDef{
			Name: "Starter", MemorySize: 1 << 14, Persistent: true,
			Setup: func(st *Component) error {
				if _, err := AddOutPort(st, smm, OutPortConfig{
					Name: "out", Type: intType, Dests: []string{"Sibling.in"},
				}); err != nil {
					return err
				}
				st.SetStart(func(p *Proc) error {
					// External ports live in the parent's SMM; p.SMM() is
					// the child's own manager (for its future children).
					out, err := smm.GetOutPort("Starter.out")
					if err != nil {
						return err
					}
					m, err := out.GetMessage()
					if err != nil {
						return err
					}
					m.(*intMsg).value = 99
					return out.Send(m, sched.NormPriority)
				})
				return nil
			},
		}); err != nil {
			return err
		}
		return c.DefineChild(ChildDef{
			Name: "Sibling", MemorySize: 1 << 14, Persistent: true,
			Setup: func(sb *Component) error {
				_, err := AddInPort(sb, smm, InPortConfig{
					Name: "in", Type: intType,
					Handler: HandlerFunc(func(p *Proc, m Message) error {
						got <- m.(*intMsg).value
						return nil
					}),
				})
				return err
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	h, err := parent.SMM().Connect("Starter")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Disconnect()
	if v := waitRecv(t, got); v != 99 {
		t.Errorf("value = %d, want 99", v)
	}
	if n, err := app.Errors(); n != 0 {
		t.Errorf("handler errors: %d (%v)", n, err)
	}
}

// TestNoDispatchBeforeStart verifies the initialisation guarantee behind
// the ORB's lazy-dial Transport: messages delivered while a child is still
// starting are processed only after its start function completes.
func TestNoDispatchBeforeStart(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	startGate := make(chan struct{})
	var mu sync.Mutex
	var events []string

	parent, err := app.NewImmortalComponent("P", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddOutPort(c, smm, OutPortConfig{
			Name: "out", Type: intType, Dests: []string{"Slow.in"},
		}); err != nil {
			return err
		}
		return c.DefineChild(ChildDef{
			Name: "Slow", MemorySize: 1 << 14, Persistent: true,
			Setup: func(sl *Component) error {
				if _, err := AddInPort(sl, smm, InPortConfig{
					Name: "in", Type: intType,
					Handler: HandlerFunc(func(p *Proc, m Message) error {
						mu.Lock()
						events = append(events, "handler")
						mu.Unlock()
						return nil
					}),
				}); err != nil {
					return err
				}
				sl.SetStart(func(p *Proc) error {
					<-startGate // a slow initialisation (e.g. dialling)
					mu.Lock()
					events = append(events, "started")
					mu.Unlock()
					return nil
				})
				return nil
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	out, err := parent.SMM().GetOutPort("P.out")
	if err != nil {
		t.Fatal(err)
	}
	// First send triggers instantiation on this goroutine's materialize
	// path; do it from a helper goroutine since Start blocks on the gate.
	sendDone := make(chan error, 2)
	send := func() {
		m, err := out.GetMessage()
		if err != nil {
			sendDone <- err
			return
		}
		sendDone <- out.Send(m, sched.NormPriority)
	}
	go send()
	go send() // races with the in-flight instantiation
	time.Sleep(20 * time.Millisecond)

	mu.Lock()
	early := len(events)
	mu.Unlock()
	if early != 0 {
		t.Fatalf("events before start completed: %v", events)
	}
	close(startGate)
	for i := 0; i < 2; i++ {
		if err := <-sendDone; err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		done := len(events) == 3
		first := ""
		if len(events) > 0 {
			first = events[0]
		}
		mu.Unlock()
		if done {
			if first != "started" {
				t.Errorf("events = %v, want started first", events)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("events = %v, want [started handler handler]", events)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStartFailureDisposesChild verifies that a failing start function
// reclaims the instance and surfaces the error.
func TestStartFailureDisposesChild(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	boom := errors.New("boom")
	parent, err := app.NewImmortalComponent("P", func(c *Component) error {
		return c.DefineChild(ChildDef{
			Name: "Faulty", MemorySize: 1 << 14,
			Setup: func(f *Component) error {
				f.SetStart(func(*Proc) error { return boom })
				return nil
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parent.SMM().Connect("Faulty"); !errors.Is(err, boom) {
		t.Errorf("connect err = %v, want boom", err)
	}
	if parent.SMM().Child("Faulty") != nil {
		t.Error("failed child still registered")
	}
	// A later connect retries from scratch (and fails the same way).
	if _, err := parent.SMM().Connect("Faulty"); !errors.Is(err, boom) {
		t.Errorf("second connect err = %v", err)
	}
}

// TestSetupFailureRollsBack verifies that a failing Setup releases the
// area and leaves no live child behind.
func TestSetupFailureRollsBack(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	boom := errors.New("setup boom")
	parent, err := app.NewImmortalComponent("P", func(c *Component) error {
		return c.DefineChild(ChildDef{
			Name: "Broken", MemorySize: 1 << 14,
			Setup: func(*Component) error { return boom },
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	before := app.Model().Immortal().Used()
	if _, err := parent.SMM().Connect("Broken"); !errors.Is(err, boom) {
		t.Errorf("connect err = %v", err)
	}
	if parent.SMM().Child("Broken") != nil {
		t.Error("broken child registered")
	}
	// No immortal leak beyond the failed attempt's header-free rollback.
	after := app.Model().Immortal().Used()
	if after != before {
		t.Logf("immortal delta after failed setup: %d bytes (allowed: setup-time charges persist)", after-before)
	}
}

// TestDeepNestingFourLevels mirrors the server-side ORB structure: four
// component levels with messages descending through each.
func TestDeepNestingFourLevels(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	got := make(chan int64, 1)

	// Build nested defs L1 > L2 > L3, rooted at immortal L0.
	l0, err := app.NewImmortalComponent("L0", func(c *Component) error {
		l0SMM := c.SMM()
		if _, err := AddOutPort(c, l0SMM, OutPortConfig{
			Name: "down", Type: intType, Dests: []string{"L1.in"},
		}); err != nil {
			return err
		}
		return c.DefineChild(ChildDef{
			Name: "L1", MemorySize: 1 << 15, Persistent: true,
			Setup: func(l1 *Component) error {
				l1SMM := l1.SMM()
				if _, err := AddInPort(l1, l0SMM, InPortConfig{
					Name: "in", Type: intType,
					Handler: forwardHandler(l1SMM, "L1.down"),
				}); err != nil {
					return err
				}
				if _, err := AddOutPort(l1, l1SMM, OutPortConfig{
					Name: "down", Type: intType, Dests: []string{"L2.in"},
				}); err != nil {
					return err
				}
				return l1.DefineChild(ChildDef{
					Name: "L2", MemorySize: 1 << 15, Persistent: true,
					Setup: func(l2 *Component) error {
						l2SMM := l2.SMM()
						if _, err := AddInPort(l2, l1SMM, InPortConfig{
							Name: "in", Type: intType,
							Handler: forwardHandler(l2SMM, "L2.down"),
						}); err != nil {
							return err
						}
						if _, err := AddOutPort(l2, l2SMM, OutPortConfig{
							Name: "down", Type: intType, Dests: []string{"L3.in"},
						}); err != nil {
							return err
						}
						return l2.DefineChild(ChildDef{
							Name: "L3", MemorySize: 1 << 14,
							Setup: func(l3 *Component) error {
								_, err := AddInPort(l3, l2SMM, InPortConfig{
									Name: "in", Type: intType,
									Handler: HandlerFunc(func(p *Proc, m Message) error {
										if p.Component().Level() != 3 {
											t.Errorf("L3 level = %d", p.Component().Level())
										}
										got <- m.(*intMsg).value
										return nil
									}),
								})
								return err
							},
						})
					},
				})
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := l0.SMM().GetOutPort("L0.down")
	if err != nil {
		t.Fatal(err)
	}
	m, err := out.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	m.(*intMsg).value = 7
	if err := out.Send(m, 5); err != nil {
		t.Fatal(err)
	}
	if v := waitRecv(t, got); v != 7 {
		t.Errorf("value = %d", v)
	}
	if n, err := app.Errors(); n != 0 {
		t.Errorf("handler errors: %d (%v)", n, err)
	}
}

// forwardHandler relays an incoming intMsg out through the named port.
func forwardHandler(smm *SMM, outName string) Handler {
	return HandlerFunc(func(p *Proc, m Message) error {
		out, err := smm.GetOutPort(outName)
		if err != nil {
			return err
		}
		fwd, err := out.GetMessage()
		if err != nil {
			return err
		}
		fwd.(*intMsg).value = m.(*intMsg).value
		return out.Send(fwd, p.Priority())
	})
}
