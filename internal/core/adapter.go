package core

import "fmt"

// Adapter converts between two message types. Per §2.2 of the paper, port
// connections require exactly matching message types, but "adapter
// components may be introduced to connect two non-matching types"; this is
// that component, packaged as a reusable blueprint.
type Adapter struct {
	// In is the type accepted by the adapter's "in" port.
	In MessageType
	// Out is the type emitted from the adapter's "out" port.
	Out MessageType
	// Convert fills dst (a pooled Out-typed message) from src (an In-typed
	// message). Neither message may be retained.
	Convert func(src, dst Message) error
}

// AdapterDef returns a child blueprint for the adapter: a component with an
// In port "in" accepting a.In and an Out port "out" emitting a.Out toward
// dests. Both ports register with the SMM mediating the adapter's
// surroundings (its parent's SMM), so the adapter slots between any two
// components that manager connects. memorySize sizes the adapter's own
// scoped area.
func AdapterDef(name string, a Adapter, memorySize int64, dests []string) ChildDef {
	return ChildDef{
		Name:       name,
		MemorySize: memorySize,
		Persistent: true,
		Setup: func(c *Component) error {
			if a.Convert == nil {
				return fmt.Errorf("core: adapter %q: nil Convert", name)
			}
			if !a.In.valid() || !a.Out.valid() {
				return fmt.Errorf("core: adapter %q: invalid message types", name)
			}
			smm := c.Parent().SMM()
			out, err := AddOutPort(c, smm, OutPortConfig{
				Name: "out", Type: a.Out, Dests: dests,
			})
			if err != nil {
				return err
			}
			_, err = AddInPort(c, smm, InPortConfig{
				Name: "in", Type: a.In,
				Handler: HandlerFunc(func(p *Proc, m Message) error {
					dst, err := out.GetMessage()
					if err != nil {
						return err
					}
					if err := a.Convert(m, dst); err != nil {
						out.PutBack(dst)
						return fmt.Errorf("adapter %q: %w", name, err)
					}
					return out.Send(dst, p.Priority())
				}),
			})
			return err
		},
	}
}
