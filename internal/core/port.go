package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
	"repro/internal/telemetry"
)

// Threading selects an In port's dispatch policy (CCL <Threadpool>).
type Threading int

// Dispatch policies. Shared ports draw workers from the SMM's one shared
// pool; Dedicated ports own a pool; Synchronous ports run the handler on
// the sending thread (the paper's pool-size-zero case).
const (
	ThreadingShared Threading = iota + 1
	ThreadingDedicated
	ThreadingSynchronous
)

// String returns the CCL spelling of the policy.
func (t Threading) String() string {
	switch t {
	case ThreadingShared:
		return "Shared"
	case ThreadingDedicated:
		return "Dedicated"
	case ThreadingSynchronous:
		return "Synchronous"
	default:
		return fmt.Sprintf("Threading(%d)", int(t))
	}
}

// DefaultBufferSize is the In-port buffer capacity when the config leaves
// it zero.
const DefaultBufferSize = 8

// Overflow selects what a Send does when an In port's bounded buffer is at
// capacity. A hard-real-time system cannot let queues grow without bound;
// these policies make the degradation mode an explicit per-port choice
// instead of an accident.
type Overflow int

const (
	// OverflowReject fails the Send with ErrBufferFull (the default; the
	// paper's hard backpressure stance).
	OverflowReject Overflow = iota
	// OverflowBlock parks the sender until a slot frees (or the port shuts
	// down). Do not combine with ThreadingSynchronous self-sends: the
	// sender would wait on itself.
	OverflowBlock
	// OverflowDropOldest sheds the oldest queued message to admit the new
	// one — bounded staleness for periodic telemetry-style traffic.
	OverflowDropOldest
	// OverflowShedLowest is priority-aware shedding: the lowest-priority
	// queued message (oldest among ties) is shed if the newcomer outranks
	// it; otherwise the newcomer itself is rejected. Overload degrades
	// low-priority traffic first, preserving deadline-critical messages.
	OverflowShedLowest
)

// String returns the policy name.
func (o Overflow) String() string {
	switch o {
	case OverflowReject:
		return "Reject"
	case OverflowBlock:
		return "Block"
	case OverflowDropOldest:
		return "DropOldest"
	case OverflowShedLowest:
		return "ShedLowest"
	default:
		return fmt.Sprintf("Overflow(%d)", int(o))
	}
}

// shedTotal counts messages dropped by overflow shedding across all ports,
// exported at /metrics as compadres_shed_total.
var shedTotal = telemetry.NewCounter("shed_total")

// InPortConfig parameterises AddInPort. It mirrors the paper's
// addInPort(name, smm, msgType, bufferSize, strategy, minPool, maxPool,
// handler).
type InPortConfig struct {
	// Name is the port name, unique within the component.
	Name string
	// Type is the message type accepted by the port.
	Type MessageType
	// BufferSize bounds the port's message buffer; zero selects
	// DefaultBufferSize.
	BufferSize int
	// Threading selects the dispatch policy; zero selects ThreadingShared.
	Threading Threading
	// MinThreads/MaxThreads size the thread pool (ignored for
	// ThreadingSynchronous). Zero values select 1 and 4.
	MinThreads, MaxThreads int
	// Overflow selects the buffer-full policy; zero selects OverflowReject.
	Overflow Overflow
	// Handler processes arriving messages. Required.
	Handler Handler
}

// OutPortConfig parameterises AddOutPort. It mirrors the paper's
// addOutPort(name, smm, msgType, destination...).
type OutPortConfig struct {
	// Name is the port name, unique within the component.
	Name string
	// Type is the message type emitted by the port.
	Type MessageType
	// Dests are qualified destination In-port names ("Component.Port").
	// A send fans out to all of them.
	Dests []string
}

// bufItem is one queued delivery.
type bufItem struct {
	env      *envelope
	msg      Message
	prio     sched.Priority
	owner    *Component
	seq      uint64
	deadline int64 // telemetry timestamp; 0 = none
}

// portBinding is an InPort's current owner/handler pair, swapped atomically
// on (re)instantiation so the send path reads it without a lock.
type portBinding struct {
	owner   *Component // nil while the owning child is not instantiated
	handler Handler
}

// InPort receives messages for a component. The port structure (buffer,
// thread pool, message pool share) lives in the mediating SMM's memory area
// and persists across re-instantiations of a transient child; only the
// owner/handler binding changes.
type InPort struct {
	qname string // "Component.Port"
	short string
	typ   MessageType
	smm   *SMM

	// mu guards only the buffer; the binding and the stats counters are
	// read and written without it.
	mu       sync.Mutex
	buf      []bufItem // priority heap, preallocated at the declared capacity
	capacity int
	seq      uint64
	closed   bool
	overflow Overflow
	notFull  *sync.Cond // non-nil only for OverflowBlock ports

	bound      atomic.Pointer[portBinding]
	pool       *sched.Pool
	dedicated  bool
	dispatchFn func(sched.Priority) // created once; avoids a closure per send

	received  atomic.Int64
	processed atomic.Int64
	dropped   atomic.Int64
	shed      atomic.Int64 // subset of dropped: removed by an overflow policy
	depthMax  atomic.Int64 // queue depth high-water mark

	label  telemetry.LabelID
	gauges *telemetry.GaugeHandle
}

// Name returns the qualified port name ("Component.Port").
func (p *InPort) Name() string { return p.qname }

// Type returns the port's message type.
func (p *InPort) Type() MessageType { return p.typ }

// Capacity returns the buffer capacity.
func (p *InPort) Capacity() int { return p.capacity }

// Stats reports messages received (enqueued), processed, and dropped
// (buffer full).
func (p *InPort) Stats() (received, processed, dropped int64) {
	return p.received.Load(), p.processed.Load(), p.dropped.Load()
}

// Shed reports how many messages the port's overflow policy removed (a
// subset of dropped).
func (p *InPort) Shed() int64 { return p.shed.Load() }

// Overflow returns the port's buffer-full policy.
func (p *InPort) Overflow() Overflow { return p.overflow }

// QueueMax reports the buffer's depth high-water mark.
func (p *InPort) QueueMax() int64 { return p.depthMax.Load() }

// push enqueues an item, applying the port's overflow policy when the
// buffer is at capacity. The buffer is a priority queue: pop hands out the
// highest-priority pending message (FIFO within a priority), so the pool
// worker that dequeues — itself scheduled at the message's priority —
// processes the message that justified its priority. The backing array is
// preallocated at the port's declared capacity, so push never allocates.
//
// When a policy evicts a queued message to admit the new one, the victim is
// returned with evicted == true; the caller must release its envelope and
// owner reservation outside the port lock.
func (p *InPort) push(it bufItem) (victim bufItem, evicted bool, err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return bufItem{}, false, fmt.Errorf("%w: %q", ErrStopped, p.qname)
	}
	if len(p.buf) == p.capacity {
		switch p.overflow {
		case OverflowBlock:
			for len(p.buf) == p.capacity && !p.closed {
				p.notFull.Wait()
			}
			if p.closed {
				p.mu.Unlock()
				return bufItem{}, false, fmt.Errorf("%w: %q", ErrStopped, p.qname)
			}
		case OverflowDropOldest:
			victim = p.evictLocked(p.oldestLocked())
			evicted = true
		case OverflowShedLowest:
			li := p.lowestLocked()
			if p.buf[li].prio >= it.prio {
				// Nothing queued is less urgent than the newcomer: shed
				// the newcomer itself.
				p.mu.Unlock()
				p.dropped.Add(1)
				p.recordShed(it.prio)
				return bufItem{}, false, fmt.Errorf("%w: %q shed priority-%d message (capacity %d)",
					ErrBufferFull, p.qname, it.prio, p.capacity)
			}
			victim = p.evictLocked(li)
			evicted = true
		default: // OverflowReject
			p.mu.Unlock()
			p.dropped.Add(1)
			return bufItem{}, false, fmt.Errorf("%w: %q (capacity %d)", ErrBufferFull, p.qname, p.capacity)
		}
	}
	p.seq++
	it.seq = p.seq
	p.buf = append(p.buf, it)
	p.siftUp(len(p.buf) - 1)
	if d := int64(len(p.buf)); d > p.depthMax.Load() {
		p.depthMax.Store(d) // still under mu, so load+store cannot regress
	}
	p.mu.Unlock()
	p.received.Add(1)
	if evicted {
		p.dropped.Add(1)
		p.recordShed(victim.prio)
	}
	return victim, evicted, nil
}

// recordShed accounts one message removed by an overflow policy.
func (p *InPort) recordShed(prio sched.Priority) {
	p.shed.Add(1)
	shedTotal.Inc()
	telemetry.Record(telemetry.EvShed, p.label, 0, 0, uint64(prio))
}

// oldestLocked returns the index of the item with the smallest sequence
// number. Called with mu held on a full buffer; O(capacity), cold path.
func (p *InPort) oldestLocked() int {
	best := 0
	for i := 1; i < len(p.buf); i++ {
		if p.buf[i].seq < p.buf[best].seq {
			best = i
		}
	}
	return best
}

// lowestLocked returns the index of the lowest-priority item, oldest among
// ties. Called with mu held on a full buffer; O(capacity), cold path.
func (p *InPort) lowestLocked() int {
	best := 0
	for i := 1; i < len(p.buf); i++ {
		if p.buf[i].prio < p.buf[best].prio ||
			(p.buf[i].prio == p.buf[best].prio && p.buf[i].seq < p.buf[best].seq) {
			best = i
		}
	}
	return best
}

// evictLocked removes and returns the item at heap index i, restoring heap
// order. Called with mu held.
func (p *InPort) evictLocked(i int) bufItem {
	it := p.buf[i]
	last := len(p.buf) - 1
	p.buf[i] = p.buf[last]
	p.buf[last] = bufItem{}
	p.buf = p.buf[:last]
	if i < len(p.buf) {
		p.siftDown(i)
		p.siftUp(i)
	}
	return it
}

// pop dequeues the highest-priority item; ok reports whether one was
// present.
func (p *InPort) pop() (bufItem, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.buf) == 0 {
		return bufItem{}, false
	}
	it := p.buf[0]
	last := len(p.buf) - 1
	p.buf[0] = p.buf[last]
	p.buf[last] = bufItem{}
	p.buf = p.buf[:last]
	if len(p.buf) > 0 {
		p.siftDown(0)
	}
	if p.notFull != nil {
		p.notFull.Signal()
	}
	return it, true
}

// removeItem removes the exact queued delivery identified by its envelope
// and message, reporting whether it was still buffered. Used when a
// dispatch submission fails after the item was pushed: the caller must
// retract that item, not whichever happens to top the heap.
func (p *InPort) removeItem(env *envelope, msg Message) (bufItem, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.buf {
		if p.buf[i].env == env && p.buf[i].msg == msg {
			it := p.evictLocked(i)
			if p.notFull != nil {
				p.notFull.Signal()
			}
			return it, true
		}
	}
	return bufItem{}, false
}

// closePort wakes blocked senders and refuses further pushes; called when
// the mediating SMM shuts down.
func (p *InPort) closePort() {
	p.mu.Lock()
	p.closed = true
	if p.notFull != nil {
		p.notFull.Broadcast()
	}
	p.mu.Unlock()
}

// itemLess orders by descending priority, then FIFO.
func itemLess(a, b bufItem) bool {
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.seq < b.seq
}

func (p *InPort) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !itemLess(p.buf[i], p.buf[parent]) {
			return
		}
		p.buf[i], p.buf[parent] = p.buf[parent], p.buf[i]
		i = parent
	}
}

func (p *InPort) siftDown(i int) {
	n := len(p.buf)
	for {
		best := i
		if l := 2*i + 1; l < n && itemLess(p.buf[l], p.buf[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && itemLess(p.buf[r], p.buf[best]) {
			best = r
		}
		if best == i {
			return
		}
		p.buf[i], p.buf[best] = p.buf[best], p.buf[i]
		i = best
	}
}

// binding returns the current owner and handler.
func (p *InPort) binding() (*Component, Handler) {
	b := p.bound.Load()
	if b == nil {
		return nil, nil
	}
	return b.owner, b.handler
}

// bind attaches the port to a (re)instantiated owner.
func (p *InPort) bind(owner *Component, h Handler) {
	p.bound.Store(&portBinding{owner: owner, handler: h})
}

// unbind detaches the port when its owner is disposed. The handler is kept,
// matching the port structure surviving the instance: a delivery already
// buffered drains against the old handler only if a rebind restores an
// owner first.
func (p *InPort) unbind() {
	var h Handler
	if b := p.bound.Load(); b != nil {
		h = b.handler
	}
	p.bound.Store(&portBinding{handler: h})
}

// markProcessed bumps the processed counter.
func (p *InPort) markProcessed() {
	p.processed.Add(1)
}

// OutPort sends messages from a component. Like InPort, the structure
// persists in the SMM across owner re-instantiations.
type OutPort struct {
	qname string
	short string
	typ   MessageType
	smm   *SMM
	pool  *msgPool // resolved once at registration; pools are never removed

	mu    sync.Mutex // guards owner
	owner *Component

	dests  atomic.Pointer[[]string] // immutable destination list
	routes atomic.Pointer[routeSet] // cached resolution, see SMM.routesFor
	sent   atomic.Int64

	sendDeadline atomic.Int64 // relative deadline (ns) stamped on every send; 0 = none
	label        telemetry.LabelID
	gauges       *telemetry.GaugeHandle
}

// Name returns the qualified port name ("Component.Port").
func (p *OutPort) Name() string { return p.qname }

// Type returns the port's message type.
func (p *OutPort) Type() MessageType { return p.typ }

// Dests returns the destination port names. The returned slice is shared
// and immutable: callers must not modify it. It is replaced wholesale (and
// the port's route cache invalidated) only when the port is re-registered
// with a different destination list.
func (p *OutPort) Dests() []string {
	d := p.dests.Load()
	if d == nil {
		return nil
	}
	return *d
}

// setDests installs a new immutable destination list.
func (p *OutPort) setDests(dests []string) {
	p.dests.Store(&dests)
	p.routes.Store(nil)
}

// Sent reports the number of successful Send calls.
func (p *OutPort) Sent() int64 {
	return p.sent.Load()
}

// SetSendDeadline gives every subsequent send through this port a relative
// deadline: the receiver's handler must start within d of the Send call.
// A message that starts late is still processed, but the miss is counted
// (see telemetry.DeadlineMisses), recorded in the flight recorder, and
// reported to the registered miss handler. d <= 0 removes the deadline.
func (p *OutPort) SetSendDeadline(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.sendDeadline.Store(int64(d))
}

// SendDeadline returns the configured relative deadline (0 = none).
func (p *OutPort) SendDeadline() time.Duration {
	return time.Duration(p.sendDeadline.Load())
}

// msgPool returns the message pool for the port's type.
func (p *OutPort) msgPool() *msgPool {
	if p.pool != nil {
		return p.pool
	}
	return p.smm.poolFor(p.typ)
}

// GetMessage takes a message instance from the SMM's pool for this port's
// type, per the paper's getMessage(). The instance must either be sent
// (ownership transfers to the framework) or returned with PutBack.
func (p *OutPort) GetMessage() (Message, error) {
	return p.msgPool().get()
}

// PutBack returns an unsent message to the pool.
func (p *OutPort) PutBack(m Message) {
	p.msgPool().put(m)
}

// Send delivers msg to every connected destination at the given priority
// using the SMM's configured cross-scope mechanism. The handoff mechanism
// needs the sender's memory context; use SendFrom for it.
func (p *OutPort) Send(msg Message, prio sched.Priority) error {
	return p.smm.send(p, nil, msg, prio)
}

// SendFrom is Send with the sender's memory context supplied, enabling the
// handoff mechanism (the sending thread walks through the common ancestor
// area into the receiver's area).
func (p *OutPort) SendFrom(proc *Proc, msg Message, prio sched.Priority) error {
	return p.smm.send(p, proc, msg, prio)
}

// AddInPort declares an In port on component c, mediated by smm. The SMM's
// owner must be c or an ancestor of c (external ports register with the
// parent's or an ancestor's SMM; internal ports with the component's own).
func AddInPort(c *Component, smm *SMM, cfg InPortConfig) (*InPort, error) {
	return smm.registerIn(c, cfg)
}

// AddOutPort declares an Out port on component c, mediated by smm, with the
// given qualified destinations. The same ancestor rule as AddInPort applies;
// registering with a non-immediate ancestor's SMM creates a shadow port.
func AddOutPort(c *Component, smm *SMM, cfg OutPortConfig) (*OutPort, error) {
	return smm.registerOut(c, cfg)
}
