package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
	"repro/internal/telemetry"
)

// Threading selects an In port's dispatch policy (CCL <Threadpool>).
type Threading int

// Dispatch policies. Shared ports draw workers from the SMM's one shared
// pool; Dedicated ports own a pool; Synchronous ports run the handler on
// the sending thread (the paper's pool-size-zero case).
const (
	ThreadingShared Threading = iota + 1
	ThreadingDedicated
	ThreadingSynchronous
)

// String returns the CCL spelling of the policy.
func (t Threading) String() string {
	switch t {
	case ThreadingShared:
		return "Shared"
	case ThreadingDedicated:
		return "Dedicated"
	case ThreadingSynchronous:
		return "Synchronous"
	default:
		return fmt.Sprintf("Threading(%d)", int(t))
	}
}

// DefaultBufferSize is the In-port buffer capacity when the config leaves
// it zero.
const DefaultBufferSize = 8

// Overflow selects what a Send does when an In port's bounded buffer is at
// capacity. A hard-real-time system cannot let queues grow without bound;
// these policies make the degradation mode an explicit per-port choice
// instead of an accident.
type Overflow int

const (
	// OverflowReject fails the Send with ErrBufferFull (the default; the
	// paper's hard backpressure stance).
	OverflowReject Overflow = iota
	// OverflowBlock parks the sender until a slot frees (or the port shuts
	// down). Do not combine with ThreadingSynchronous self-sends: the
	// sender would wait on itself.
	OverflowBlock
	// OverflowDropOldest sheds the oldest queued message to admit the new
	// one — bounded staleness for periodic telemetry-style traffic.
	OverflowDropOldest
	// OverflowShedLowest is priority-aware shedding: the lowest-priority
	// queued message (oldest among ties) is shed if the newcomer outranks
	// it; otherwise the newcomer itself is rejected. Overload degrades
	// low-priority traffic first, preserving deadline-critical messages.
	OverflowShedLowest
)

// String returns the policy name.
func (o Overflow) String() string {
	switch o {
	case OverflowReject:
		return "Reject"
	case OverflowBlock:
		return "Block"
	case OverflowDropOldest:
		return "DropOldest"
	case OverflowShedLowest:
		return "ShedLowest"
	default:
		return fmt.Sprintf("Overflow(%d)", int(o))
	}
}

// shedTotal counts messages dropped by overflow shedding across all ports,
// exported at /metrics as compadres_shed_total.
var shedTotal = telemetry.NewCounter("shed_total")

// shedCause classifies why a message was shed, for the per-policy/per-band
// counters that let an overload controller attribute what it is dropping.
type shedCause uint8

const (
	// shedCauseDropOldest: evicted by OverflowDropOldest.
	shedCauseDropOldest shedCause = iota
	// shedCauseShedLowest: removed by OverflowShedLowest — the evicted
	// victim, or the rejected newcomer when nothing queued is less urgent.
	shedCauseShedLowest
	// shedCauseExpired: dropped at dequeue because its deadline had passed
	// (ShedExpired ports).
	shedCauseExpired
	numShedCauses
)

var shedCauseNames = [numShedCauses]string{"dropoldest", "shedlowest", "expired"}

// shedBandCounters caches the per-(cause, priority band) shed counters.
// Counters are created lazily — shedding is a cold path and most of the
// 3×31 grid never fires. Racing creations agree: the registry dedups by
// name, so every racer caches the same *Counter.
var shedBandCounters [numShedCauses][numShedBands]atomic.Pointer[telemetry.Counter]

// numShedBands covers priorities 0 (unknown) through sched.MaxPriority.
const numShedBands = int(sched.MaxPriority) + 1

// shedBandCounter returns the counter "shed_<cause>_band_<prio>_total".
func shedBandCounter(cause shedCause, prio sched.Priority) *telemetry.Counter {
	b := int(prio)
	if b < 0 {
		b = 0
	}
	if b >= numShedBands {
		b = numShedBands - 1
	}
	if c := shedBandCounters[cause][b].Load(); c != nil {
		return c
	}
	c := telemetry.NewCounter(fmt.Sprintf("shed_%s_band_%d_total", shedCauseNames[cause], b))
	shedBandCounters[cause][b].Store(c)
	return c
}

// TenantClassed is implemented by messages that carry a tenant fairness
// class (see sched.MaxTenantClasses); a fair-mode In port queues them in
// that class's lane. Messages without it ride class 0.
type TenantClassed interface{ TenantClass() uint8 }

// ShedAware is implemented by messages that must observe being shed — by
// an overflow eviction or an expired-deadline drop at dequeue — so upstream
// accounting (admission controllers, in-flight limiters) can release the
// resources reserved for them. OnShed runs before the message's envelope is
// released, at most once per delivery.
type ShedAware interface{ OnShed() }

// InPortConfig parameterises AddInPort. It mirrors the paper's
// addInPort(name, smm, msgType, bufferSize, strategy, minPool, maxPool,
// handler).
type InPortConfig struct {
	// Name is the port name, unique within the component.
	Name string
	// Type is the message type accepted by the port.
	Type MessageType
	// BufferSize bounds the port's message buffer; zero selects
	// DefaultBufferSize.
	BufferSize int
	// Threading selects the dispatch policy; zero selects ThreadingShared.
	Threading Threading
	// MinThreads/MaxThreads size the thread pool (ignored for
	// ThreadingSynchronous). Zero values select 1 and 4.
	MinThreads, MaxThreads int
	// Overflow selects the buffer-full policy; zero selects OverflowReject.
	Overflow Overflow
	// Fair replaces the port's priority heap with a tenant-fair buffer:
	// strict priority across bands, deficit-weighted round robin across
	// tenant classes within a band (messages report their class via
	// TenantClassed), and earliest-deadline-first ordering inside a class.
	Fair bool
	// FairWeights are the per-class DRR weights for a Fair port (see
	// sched.NewFairQueue); nil shares the band equally.
	FairWeights []int32
	// ShedExpired drops a message whose send deadline has already passed at
	// dequeue instead of executing it late: the drop is counted as
	// deadline_shed_total (never as a deadline miss or dispatch latency)
	// and the message's OnShed hook fires if it has one.
	ShedExpired bool
	// Handler processes arriving messages. Required.
	Handler Handler
}

// OutPortConfig parameterises AddOutPort. It mirrors the paper's
// addOutPort(name, smm, msgType, destination...).
type OutPortConfig struct {
	// Name is the port name, unique within the component.
	Name string
	// Type is the message type emitted by the port.
	Type MessageType
	// Dests are qualified destination In-port names ("Component.Port").
	// A send fans out to all of them.
	Dests []string
}

// bufItem is one queued delivery.
type bufItem struct {
	env      *envelope
	msg      Message
	prio     sched.Priority
	owner    *Component
	seq      uint64
	deadline int64 // telemetry timestamp; 0 = none
}

// portBinding is an InPort's current owner/handler pair, swapped atomically
// on (re)instantiation so the send path reads it without a lock.
type portBinding struct {
	owner   *Component // nil while the owning child is not instantiated
	handler Handler
}

// InPort receives messages for a component. The port structure (buffer,
// thread pool, message pool share) lives in the mediating SMM's memory area
// and persists across re-instantiations of a transient child; only the
// owner/handler binding changes.
type InPort struct {
	qname string // "Component.Port"
	short string
	typ   MessageType
	smm   *SMM

	// mu guards only the buffer; the binding and the stats counters are
	// read and written without it.
	mu       sync.Mutex
	buf      []bufItem // priority heap, preallocated at the declared capacity
	capacity int
	seq      uint64
	closed   bool
	overflow Overflow
	notFull  *sync.Cond // non-nil only for OverflowBlock ports

	// Fair mode replaces buf: the fair queue orders slab indices, and the
	// freeList recycles slots. All three are nil/unused on heap ports.
	fair        *sched.FairQueue
	slab        []bufItem
	freeList    []uint32
	shedExpired bool

	bound      atomic.Pointer[portBinding]
	pool       *sched.Pool
	dedicated  bool
	dispatchFn func(sched.Priority) // created once; avoids a closure per send

	received  atomic.Int64
	processed atomic.Int64
	dropped   atomic.Int64
	shed      atomic.Int64 // subset of dropped: removed by an overflow policy
	depthMax  atomic.Int64 // queue depth high-water mark

	label  telemetry.LabelID
	gauges *telemetry.GaugeHandle
}

// Name returns the qualified port name ("Component.Port").
func (p *InPort) Name() string { return p.qname }

// Type returns the port's message type.
func (p *InPort) Type() MessageType { return p.typ }

// Capacity returns the buffer capacity.
func (p *InPort) Capacity() int { return p.capacity }

// Stats reports messages received (enqueued), processed, and dropped
// (buffer full).
func (p *InPort) Stats() (received, processed, dropped int64) {
	return p.received.Load(), p.processed.Load(), p.dropped.Load()
}

// Shed reports how many messages the port's overflow policy removed (a
// subset of dropped).
func (p *InPort) Shed() int64 { return p.shed.Load() }

// Overflow returns the port's buffer-full policy.
func (p *InPort) Overflow() Overflow { return p.overflow }

// QueueMax reports the buffer's depth high-water mark.
func (p *InPort) QueueMax() int64 { return p.depthMax.Load() }

// push enqueues an item, applying the port's overflow policy when the
// buffer is at capacity. The buffer is a priority queue: pop hands out the
// highest-priority pending message (FIFO within a priority), so the pool
// worker that dequeues — itself scheduled at the message's priority —
// processes the message that justified its priority. The backing array is
// preallocated at the port's declared capacity, so push never allocates.
//
// When a policy evicts a queued message to admit the new one, the victim is
// returned with evicted == true; the caller must release its envelope and
// owner reservation outside the port lock.
func (p *InPort) push(it bufItem) (victim bufItem, evicted bool, err error) {
	var cause shedCause
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return bufItem{}, false, fmt.Errorf("%w: %q", ErrStopped, p.qname)
	}
	if p.depthLocked() == p.capacity {
		switch p.overflow {
		case OverflowBlock:
			for p.depthLocked() == p.capacity && !p.closed {
				p.notFull.Wait()
			}
			if p.closed {
				p.mu.Unlock()
				return bufItem{}, false, fmt.Errorf("%w: %q", ErrStopped, p.qname)
			}
		case OverflowDropOldest:
			victim = p.evictOldestLocked()
			evicted, cause = true, shedCauseDropOldest
		case OverflowShedLowest:
			if p.lowestPrioLocked() >= it.prio {
				// Nothing queued is less urgent than the newcomer: shed
				// the newcomer itself.
				p.mu.Unlock()
				p.dropped.Add(1)
				p.recordShed(it.prio, shedCauseShedLowest)
				return bufItem{}, false, fmt.Errorf("%w: %q shed priority-%d message (capacity %d)",
					ErrBufferFull, p.qname, it.prio, p.capacity)
			}
			victim = p.evictLowestLocked()
			evicted, cause = true, shedCauseShedLowest
		default: // OverflowReject
			p.mu.Unlock()
			p.dropped.Add(1)
			return bufItem{}, false, fmt.Errorf("%w: %q (capacity %d)", ErrBufferFull, p.qname, p.capacity)
		}
	}
	p.seq++
	it.seq = p.seq
	if p.fair != nil {
		var class uint8
		if tc, ok := it.msg.(TenantClassed); ok {
			class = tc.TenantClass()
		}
		h := p.freeList[len(p.freeList)-1]
		p.freeList = p.freeList[:len(p.freeList)-1]
		p.slab[h] = it
		p.fair.Push(h, class, it.prio, it.deadline)
	} else {
		p.buf = append(p.buf, it)
		p.siftUp(len(p.buf) - 1)
	}
	if d := int64(p.depthLocked()); d > p.depthMax.Load() {
		p.depthMax.Store(d) // still under mu, so load+store cannot regress
	}
	p.mu.Unlock()
	p.received.Add(1)
	if evicted {
		p.dropped.Add(1)
		p.recordShed(victim.prio, cause)
	}
	return victim, evicted, nil
}

// depthLocked returns the buffered message count; called with mu held.
func (p *InPort) depthLocked() int {
	if p.fair != nil {
		return p.fair.Len()
	}
	return len(p.buf)
}

// recordShed accounts one message removed by an overflow policy (or an
// expired-deadline drop): the port's shed stat, the aggregate shed_total,
// the per-cause/per-band attribution counter, and an EvShed ring event.
func (p *InPort) recordShed(prio sched.Priority, cause shedCause) {
	p.shed.Add(1)
	shedTotal.Inc()
	shedBandCounter(cause, prio).Inc()
	telemetry.Record(telemetry.EvShed, p.label, 0, 0, uint64(prio))
}

// lowestPrioLocked returns the priority of the least-urgent queued message;
// called with mu held on a non-empty buffer.
func (p *InPort) lowestPrioLocked() sched.Priority {
	if p.fair != nil {
		prio, _ := p.fair.PeekLowestPrio()
		return prio
	}
	return p.buf[p.lowestLocked()].prio
}

// evictOldestLocked removes and returns the longest-queued message; called
// with mu held on a non-empty buffer.
func (p *InPort) evictOldestLocked() bufItem {
	if p.fair != nil {
		h, _ := p.fair.PopOldest()
		return p.takeSlotLocked(h)
	}
	return p.evictLocked(p.oldestLocked())
}

// evictLowestLocked removes and returns the ShedLowest victim; called with
// mu held on a non-empty buffer. The heap picks the oldest of the lowest
// band (most staleness recovered); the fair queue picks the newest (least
// sunk queue time) — both shed from the least-urgent band only.
func (p *InPort) evictLowestLocked() bufItem {
	if p.fair != nil {
		h, _ := p.fair.PopLowest()
		return p.takeSlotLocked(h)
	}
	return p.evictLocked(p.lowestLocked())
}

// takeSlotLocked vacates fair-mode slab slot h and returns its item.
func (p *InPort) takeSlotLocked(h uint32) bufItem {
	it := p.slab[h]
	p.slab[h] = bufItem{}
	p.freeList = append(p.freeList, h)
	return it
}

// oldestLocked returns the index of the item with the smallest sequence
// number. Called with mu held on a full buffer; O(capacity), cold path.
func (p *InPort) oldestLocked() int {
	best := 0
	for i := 1; i < len(p.buf); i++ {
		if p.buf[i].seq < p.buf[best].seq {
			best = i
		}
	}
	return best
}

// lowestLocked returns the index of the lowest-priority item, oldest among
// ties. Called with mu held on a full buffer; O(capacity), cold path.
func (p *InPort) lowestLocked() int {
	best := 0
	for i := 1; i < len(p.buf); i++ {
		if p.buf[i].prio < p.buf[best].prio ||
			(p.buf[i].prio == p.buf[best].prio && p.buf[i].seq < p.buf[best].seq) {
			best = i
		}
	}
	return best
}

// evictLocked removes and returns the item at heap index i, restoring heap
// order. Called with mu held.
func (p *InPort) evictLocked(i int) bufItem {
	it := p.buf[i]
	last := len(p.buf) - 1
	p.buf[i] = p.buf[last]
	p.buf[last] = bufItem{}
	p.buf = p.buf[:last]
	if i < len(p.buf) {
		p.siftDown(i)
		p.siftUp(i)
	}
	return it
}

// pop dequeues the highest-priority item; ok reports whether one was
// present.
func (p *InPort) pop() (bufItem, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fair != nil {
		h, ok := p.fair.Pop()
		if !ok {
			return bufItem{}, false
		}
		it := p.takeSlotLocked(h)
		if p.notFull != nil {
			p.notFull.Signal()
		}
		return it, true
	}
	if len(p.buf) == 0 {
		return bufItem{}, false
	}
	it := p.buf[0]
	last := len(p.buf) - 1
	p.buf[0] = p.buf[last]
	p.buf[last] = bufItem{}
	p.buf = p.buf[:last]
	if len(p.buf) > 0 {
		p.siftDown(0)
	}
	if p.notFull != nil {
		p.notFull.Signal()
	}
	return it, true
}

// removeItem removes the exact queued delivery identified by its envelope
// and message, reporting whether it was still buffered. Used when a
// dispatch submission fails after the item was pushed: the caller must
// retract that item, not whichever happens to top the heap.
func (p *InPort) removeItem(env *envelope, msg Message) (bufItem, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fair != nil {
		for h := range p.slab {
			if p.slab[h].env == env && p.slab[h].msg == msg && p.fair.Remove(uint32(h)) {
				it := p.takeSlotLocked(uint32(h))
				if p.notFull != nil {
					p.notFull.Signal()
				}
				return it, true
			}
		}
		return bufItem{}, false
	}
	for i := range p.buf {
		if p.buf[i].env == env && p.buf[i].msg == msg {
			it := p.evictLocked(i)
			if p.notFull != nil {
				p.notFull.Signal()
			}
			return it, true
		}
	}
	return bufItem{}, false
}

// closePort wakes blocked senders and refuses further pushes; called when
// the mediating SMM shuts down.
func (p *InPort) closePort() {
	p.mu.Lock()
	p.closed = true
	if p.notFull != nil {
		p.notFull.Broadcast()
	}
	p.mu.Unlock()
}

// itemLess orders by descending priority, then FIFO.
func itemLess(a, b bufItem) bool {
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.seq < b.seq
}

func (p *InPort) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !itemLess(p.buf[i], p.buf[parent]) {
			return
		}
		p.buf[i], p.buf[parent] = p.buf[parent], p.buf[i]
		i = parent
	}
}

func (p *InPort) siftDown(i int) {
	n := len(p.buf)
	for {
		best := i
		if l := 2*i + 1; l < n && itemLess(p.buf[l], p.buf[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && itemLess(p.buf[r], p.buf[best]) {
			best = r
		}
		if best == i {
			return
		}
		p.buf[i], p.buf[best] = p.buf[best], p.buf[i]
		i = best
	}
}

// binding returns the current owner and handler.
func (p *InPort) binding() (*Component, Handler) {
	b := p.bound.Load()
	if b == nil {
		return nil, nil
	}
	return b.owner, b.handler
}

// bind attaches the port to a (re)instantiated owner.
func (p *InPort) bind(owner *Component, h Handler) {
	p.bound.Store(&portBinding{owner: owner, handler: h})
}

// unbind detaches the port when its owner is disposed. The handler is kept,
// matching the port structure surviving the instance: a delivery already
// buffered drains against the old handler only if a rebind restores an
// owner first.
func (p *InPort) unbind() {
	var h Handler
	if b := p.bound.Load(); b != nil {
		h = b.handler
	}
	p.bound.Store(&portBinding{handler: h})
}

// markProcessed bumps the processed counter.
func (p *InPort) markProcessed() {
	p.processed.Add(1)
}

// OutPort sends messages from a component. Like InPort, the structure
// persists in the SMM across owner re-instantiations.
type OutPort struct {
	qname string
	short string
	typ   MessageType
	smm   *SMM
	pool  *msgPool // resolved once at registration; pools are never removed

	mu    sync.Mutex // guards owner
	owner *Component

	dests  atomic.Pointer[[]string] // immutable destination list
	routes atomic.Pointer[routeSet] // cached resolution, see SMM.routesFor
	sent   atomic.Int64

	sendDeadline atomic.Int64 // relative deadline (ns) stamped on every send; 0 = none
	label        telemetry.LabelID
	gauges       *telemetry.GaugeHandle
}

// Name returns the qualified port name ("Component.Port").
func (p *OutPort) Name() string { return p.qname }

// Type returns the port's message type.
func (p *OutPort) Type() MessageType { return p.typ }

// Dests returns the destination port names. The returned slice is shared
// and immutable: callers must not modify it. It is replaced wholesale (and
// the port's route cache invalidated) only when the port is re-registered
// with a different destination list.
func (p *OutPort) Dests() []string {
	d := p.dests.Load()
	if d == nil {
		return nil
	}
	return *d
}

// setDests installs a new immutable destination list.
func (p *OutPort) setDests(dests []string) {
	p.dests.Store(&dests)
	p.routes.Store(nil)
}

// Sent reports the number of successful Send calls.
func (p *OutPort) Sent() int64 {
	return p.sent.Load()
}

// SetSendDeadline gives every subsequent send through this port a relative
// deadline: the receiver's handler must start within d of the Send call.
// A message that starts late is still processed, but the miss is counted
// (see telemetry.DeadlineMisses), recorded in the flight recorder, and
// reported to the registered miss handler. d <= 0 removes the deadline.
func (p *OutPort) SetSendDeadline(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.sendDeadline.Store(int64(d))
}

// SendDeadline returns the configured relative deadline (0 = none).
func (p *OutPort) SendDeadline() time.Duration {
	return time.Duration(p.sendDeadline.Load())
}

// msgPool returns the message pool for the port's type.
func (p *OutPort) msgPool() *msgPool {
	if p.pool != nil {
		return p.pool
	}
	return p.smm.poolFor(p.typ)
}

// GetMessage takes a message instance from the SMM's pool for this port's
// type, per the paper's getMessage(). The instance must either be sent
// (ownership transfers to the framework) or returned with PutBack.
func (p *OutPort) GetMessage() (Message, error) {
	return p.msgPool().get()
}

// PutBack returns an unsent message to the pool.
func (p *OutPort) PutBack(m Message) {
	p.msgPool().put(m)
}

// Send delivers msg to every connected destination at the given priority
// using the SMM's configured cross-scope mechanism. The handoff mechanism
// needs the sender's memory context; use SendFrom for it.
func (p *OutPort) Send(msg Message, prio sched.Priority) error {
	return p.smm.send(p, nil, msg, prio)
}

// SendFrom is Send with the sender's memory context supplied, enabling the
// handoff mechanism (the sending thread walks through the common ancestor
// area into the receiver's area).
func (p *OutPort) SendFrom(proc *Proc, msg Message, prio sched.Priority) error {
	return p.smm.send(p, proc, msg, prio)
}

// AddInPort declares an In port on component c, mediated by smm. The SMM's
// owner must be c or an ancestor of c (external ports register with the
// parent's or an ancestor's SMM; internal ports with the component's own).
func AddInPort(c *Component, smm *SMM, cfg InPortConfig) (*InPort, error) {
	return smm.registerIn(c, cfg)
}

// AddOutPort declares an Out port on component c, mediated by smm, with the
// given qualified destinations. The same ancestor rule as AddInPort applies;
// registering with a non-immediate ancestor's SMM creates a shadow port.
func AddOutPort(c *Component, smm *SMM, cfg OutPortConfig) (*OutPort, error) {
	return smm.registerOut(c, cfg)
}
