package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
	"repro/internal/telemetry"
)

// Threading selects an In port's dispatch policy (CCL <Threadpool>).
type Threading int

// Dispatch policies. Shared ports draw workers from the SMM's one shared
// pool; Dedicated ports own a pool; Synchronous ports run the handler on
// the sending thread (the paper's pool-size-zero case).
const (
	ThreadingShared Threading = iota + 1
	ThreadingDedicated
	ThreadingSynchronous
)

// String returns the CCL spelling of the policy.
func (t Threading) String() string {
	switch t {
	case ThreadingShared:
		return "Shared"
	case ThreadingDedicated:
		return "Dedicated"
	case ThreadingSynchronous:
		return "Synchronous"
	default:
		return fmt.Sprintf("Threading(%d)", int(t))
	}
}

// DefaultBufferSize is the In-port buffer capacity when the config leaves
// it zero.
const DefaultBufferSize = 8

// InPortConfig parameterises AddInPort. It mirrors the paper's
// addInPort(name, smm, msgType, bufferSize, strategy, minPool, maxPool,
// handler).
type InPortConfig struct {
	// Name is the port name, unique within the component.
	Name string
	// Type is the message type accepted by the port.
	Type MessageType
	// BufferSize bounds the port's message buffer; zero selects
	// DefaultBufferSize.
	BufferSize int
	// Threading selects the dispatch policy; zero selects ThreadingShared.
	Threading Threading
	// MinThreads/MaxThreads size the thread pool (ignored for
	// ThreadingSynchronous). Zero values select 1 and 4.
	MinThreads, MaxThreads int
	// Handler processes arriving messages. Required.
	Handler Handler
}

// OutPortConfig parameterises AddOutPort. It mirrors the paper's
// addOutPort(name, smm, msgType, destination...).
type OutPortConfig struct {
	// Name is the port name, unique within the component.
	Name string
	// Type is the message type emitted by the port.
	Type MessageType
	// Dests are qualified destination In-port names ("Component.Port").
	// A send fans out to all of them.
	Dests []string
}

// bufItem is one queued delivery.
type bufItem struct {
	env      *envelope
	msg      Message
	prio     sched.Priority
	owner    *Component
	seq      uint64
	deadline int64 // telemetry timestamp; 0 = none
}

// portBinding is an InPort's current owner/handler pair, swapped atomically
// on (re)instantiation so the send path reads it without a lock.
type portBinding struct {
	owner   *Component // nil while the owning child is not instantiated
	handler Handler
}

// InPort receives messages for a component. The port structure (buffer,
// thread pool, message pool share) lives in the mediating SMM's memory area
// and persists across re-instantiations of a transient child; only the
// owner/handler binding changes.
type InPort struct {
	qname string // "Component.Port"
	short string
	typ   MessageType
	smm   *SMM

	// mu guards only the buffer; the binding and the stats counters are
	// read and written without it.
	mu       sync.Mutex
	buf      []bufItem // priority heap, preallocated at the declared capacity
	capacity int
	seq      uint64

	bound      atomic.Pointer[portBinding]
	pool       *sched.Pool
	dedicated  bool
	dispatchFn func(sched.Priority) // created once; avoids a closure per send

	received  atomic.Int64
	processed atomic.Int64
	dropped   atomic.Int64
	depthMax  atomic.Int64 // queue depth high-water mark

	label  telemetry.LabelID
	gauges *telemetry.GaugeHandle
}

// Name returns the qualified port name ("Component.Port").
func (p *InPort) Name() string { return p.qname }

// Type returns the port's message type.
func (p *InPort) Type() MessageType { return p.typ }

// Capacity returns the buffer capacity.
func (p *InPort) Capacity() int { return p.capacity }

// Stats reports messages received (enqueued), processed, and dropped
// (buffer full).
func (p *InPort) Stats() (received, processed, dropped int64) {
	return p.received.Load(), p.processed.Load(), p.dropped.Load()
}

// QueueMax reports the buffer's depth high-water mark.
func (p *InPort) QueueMax() int64 { return p.depthMax.Load() }

// push enqueues an item, or reports ErrBufferFull. The buffer is a priority
// queue: pop hands out the highest-priority pending message (FIFO within a
// priority), so the pool worker that dequeues — itself scheduled at the
// message's priority — processes the message that justified its priority.
// The backing array is preallocated at the port's declared capacity, so
// push never allocates.
func (p *InPort) push(it bufItem) error {
	p.mu.Lock()
	if len(p.buf) == p.capacity {
		p.mu.Unlock()
		p.dropped.Add(1)
		return fmt.Errorf("%w: %q (capacity %d)", ErrBufferFull, p.qname, p.capacity)
	}
	p.seq++
	it.seq = p.seq
	p.buf = append(p.buf, it)
	p.siftUp(len(p.buf) - 1)
	if d := int64(len(p.buf)); d > p.depthMax.Load() {
		p.depthMax.Store(d) // still under mu, so load+store cannot regress
	}
	p.mu.Unlock()
	p.received.Add(1)
	return nil
}

// pop dequeues the highest-priority item; ok reports whether one was
// present.
func (p *InPort) pop() (bufItem, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.buf) == 0 {
		return bufItem{}, false
	}
	it := p.buf[0]
	last := len(p.buf) - 1
	p.buf[0] = p.buf[last]
	p.buf[last] = bufItem{}
	p.buf = p.buf[:last]
	if len(p.buf) > 0 {
		p.siftDown(0)
	}
	return it, true
}

// itemLess orders by descending priority, then FIFO.
func itemLess(a, b bufItem) bool {
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.seq < b.seq
}

func (p *InPort) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !itemLess(p.buf[i], p.buf[parent]) {
			return
		}
		p.buf[i], p.buf[parent] = p.buf[parent], p.buf[i]
		i = parent
	}
}

func (p *InPort) siftDown(i int) {
	n := len(p.buf)
	for {
		best := i
		if l := 2*i + 1; l < n && itemLess(p.buf[l], p.buf[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && itemLess(p.buf[r], p.buf[best]) {
			best = r
		}
		if best == i {
			return
		}
		p.buf[i], p.buf[best] = p.buf[best], p.buf[i]
		i = best
	}
}

// binding returns the current owner and handler.
func (p *InPort) binding() (*Component, Handler) {
	b := p.bound.Load()
	if b == nil {
		return nil, nil
	}
	return b.owner, b.handler
}

// bind attaches the port to a (re)instantiated owner.
func (p *InPort) bind(owner *Component, h Handler) {
	p.bound.Store(&portBinding{owner: owner, handler: h})
}

// unbind detaches the port when its owner is disposed. The handler is kept,
// matching the port structure surviving the instance: a delivery already
// buffered drains against the old handler only if a rebind restores an
// owner first.
func (p *InPort) unbind() {
	var h Handler
	if b := p.bound.Load(); b != nil {
		h = b.handler
	}
	p.bound.Store(&portBinding{handler: h})
}

// markProcessed bumps the processed counter.
func (p *InPort) markProcessed() {
	p.processed.Add(1)
}

// OutPort sends messages from a component. Like InPort, the structure
// persists in the SMM across owner re-instantiations.
type OutPort struct {
	qname string
	short string
	typ   MessageType
	smm   *SMM
	pool  *msgPool // resolved once at registration; pools are never removed

	mu    sync.Mutex // guards owner
	owner *Component

	dests  atomic.Pointer[[]string] // immutable destination list
	routes atomic.Pointer[routeSet] // cached resolution, see SMM.routesFor
	sent   atomic.Int64

	sendDeadline atomic.Int64 // relative deadline (ns) stamped on every send; 0 = none
	label        telemetry.LabelID
	gauges       *telemetry.GaugeHandle
}

// Name returns the qualified port name ("Component.Port").
func (p *OutPort) Name() string { return p.qname }

// Type returns the port's message type.
func (p *OutPort) Type() MessageType { return p.typ }

// Dests returns the destination port names. The returned slice is shared
// and immutable: callers must not modify it. It is replaced wholesale (and
// the port's route cache invalidated) only when the port is re-registered
// with a different destination list.
func (p *OutPort) Dests() []string {
	d := p.dests.Load()
	if d == nil {
		return nil
	}
	return *d
}

// setDests installs a new immutable destination list.
func (p *OutPort) setDests(dests []string) {
	p.dests.Store(&dests)
	p.routes.Store(nil)
}

// Sent reports the number of successful Send calls.
func (p *OutPort) Sent() int64 {
	return p.sent.Load()
}

// SetSendDeadline gives every subsequent send through this port a relative
// deadline: the receiver's handler must start within d of the Send call.
// A message that starts late is still processed, but the miss is counted
// (see telemetry.DeadlineMisses), recorded in the flight recorder, and
// reported to the registered miss handler. d <= 0 removes the deadline.
func (p *OutPort) SetSendDeadline(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.sendDeadline.Store(int64(d))
}

// SendDeadline returns the configured relative deadline (0 = none).
func (p *OutPort) SendDeadline() time.Duration {
	return time.Duration(p.sendDeadline.Load())
}

// msgPool returns the message pool for the port's type.
func (p *OutPort) msgPool() *msgPool {
	if p.pool != nil {
		return p.pool
	}
	return p.smm.poolFor(p.typ)
}

// GetMessage takes a message instance from the SMM's pool for this port's
// type, per the paper's getMessage(). The instance must either be sent
// (ownership transfers to the framework) or returned with PutBack.
func (p *OutPort) GetMessage() (Message, error) {
	return p.msgPool().get()
}

// PutBack returns an unsent message to the pool.
func (p *OutPort) PutBack(m Message) {
	p.msgPool().put(m)
}

// Send delivers msg to every connected destination at the given priority
// using the SMM's configured cross-scope mechanism. The handoff mechanism
// needs the sender's memory context; use SendFrom for it.
func (p *OutPort) Send(msg Message, prio sched.Priority) error {
	return p.smm.send(p, nil, msg, prio)
}

// SendFrom is Send with the sender's memory context supplied, enabling the
// handoff mechanism (the sending thread walks through the common ancestor
// area into the receiver's area).
func (p *OutPort) SendFrom(proc *Proc, msg Message, prio sched.Priority) error {
	return p.smm.send(p, proc, msg, prio)
}

// AddInPort declares an In port on component c, mediated by smm. The SMM's
// owner must be c or an ancestor of c (external ports register with the
// parent's or an ancestor's SMM; internal ports with the component's own).
func AddInPort(c *Component, smm *SMM, cfg InPortConfig) (*InPort, error) {
	return smm.registerIn(c, cfg)
}

// AddOutPort declares an Out port on component c, mediated by smm, with the
// given qualified destinations. The same ancestor rule as AddInPort applies;
// registering with a non-immediate ancestor's SMM creates a shadow port.
func AddOutPort(c *Component, smm *SMM, cfg OutPortConfig) (*OutPort, error) {
	return smm.registerOut(c, cfg)
}
