package core

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/memory"
	"repro/internal/sched"
)

// buildSiblingPair creates P with transient children A (sender) and B
// (receiver). A's handler forwards the value+delta to B; B reports to out.
func buildSiblingPair(t *testing.T, app *App) (*Component, chan int64) {
	t.Helper()
	out := make(chan int64, 64)
	p, err := app.NewImmortalComponent("P", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddOutPort(c, smm, OutPortConfig{Name: "inject", Type: intType, Dests: []string{"A.in"}}); err != nil {
			return err
		}
		if err := c.DefineChild(ChildDef{
			Name: "A", MemorySize: 1 << 14,
			Setup: func(a *Component) error {
				if _, err := AddInPort(a, smm, InPortConfig{
					Name: "in", Type: intType,
					Handler: HandlerFunc(func(pr *Proc, m Message) error {
						fwd, err := pr.SMM().GetOutPort("A.out")
						if err != nil {
							return err
						}
						msg, err := fwd.GetMessage()
						if err != nil {
							return err
						}
						msg.(*intMsg).value = m.(*intMsg).value + 100
						return fwd.SendFrom(pr, msg, pr.Priority())
					}),
				}); err != nil {
					return err
				}
				_, err := AddOutPort(a, smm, OutPortConfig{Name: "out", Type: intType, Dests: []string{"B.in"}})
				return err
			},
		}); err != nil {
			return err
		}
		return c.DefineChild(ChildDef{
			Name: "B", MemorySize: 1 << 14,
			Setup: func(b *Component) error {
				_, err := AddInPort(b, smm, InPortConfig{
					Name: "in", Type: intType,
					Handler: HandlerFunc(func(pr *Proc, m Message) error {
						out <- m.(*intMsg).value
						return nil
					}),
				})
				return err
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, out
}

func inject(t *testing.T, p *Component, v int64) error {
	t.Helper()
	op, err := p.SMM().GetOutPort("P.inject")
	if err != nil {
		t.Fatal(err)
	}
	m, err := op.GetMessage()
	if err != nil {
		return err
	}
	m.(*intMsg).value = v
	return op.Send(m, sched.NormPriority)
}

func TestMechanismSharedObjectSiblings(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	p, out := buildSiblingPair(t, app)
	if err := inject(t, p, 7); err != nil {
		t.Fatal(err)
	}
	if v := waitRecv(t, out); v != 107 {
		t.Errorf("got %d, want 107", v)
	}
	if n, err := app.Errors(); n != 0 {
		t.Fatalf("handler errors: %d (%v)", n, err)
	}
}

func TestMechanismSerialization(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	p, out := buildSiblingPair(t, app)
	p.SMM().SetMechanism(MechanismSerialization)
	if got := p.SMM().Mechanism(); got != MechanismSerialization {
		t.Fatalf("mechanism = %v", got)
	}
	if err := inject(t, p, 9); err != nil {
		t.Fatal(err)
	}
	if v := waitRecv(t, out); v != 109 {
		t.Errorf("got %d, want 109", v)
	}
	// Under serialization the original returns to the pool at send time:
	// in-flight drains to zero.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, inFlight, _, _ := p.SMM().MsgPoolStats("Int")
		if inFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("in-flight = %d, want 0", inFlight)
		}
		time.Sleep(time.Millisecond)
	}
	if n, err := app.Errors(); n != 0 {
		t.Fatalf("handler errors: %d (%v)", n, err)
	}
}

func TestMechanismSerializationRequiresMarshaler(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	comp, err := app.NewImmortalComponent("C", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "in", Type: stringType,
			Handler: HandlerFunc(func(*Proc, Message) error { return nil }),
		}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: stringType, Dests: []string{"C.in"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	smm := comp.SMM()
	smm.SetMechanism(MechanismSerialization)
	op, _ := smm.GetOutPort("out")
	m, _ := op.GetMessage()
	if err := op.Send(m, 1); !errors.Is(err, ErrNotSerializable) {
		t.Errorf("err = %v, want ErrNotSerializable", err)
	}
}

func TestMechanismHandoff(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	p, out := buildSiblingPair(t, app)
	p.SMM().SetMechanism(MechanismHandoff)

	// Plain Send (no caller context) must be rejected...
	op, _ := p.SMM().GetOutPort("P.inject")
	m, _ := op.GetMessage()
	if err := op.Send(m, 1); !errors.Is(err, ErrNeedsCallerContext) {
		t.Fatalf("context-free handoff err = %v, want ErrNeedsCallerContext", err)
	}
	op.PutBack(m)

	// ...but SendFrom within the parent's execution context works, and the
	// whole chain (P -> A -> B) runs synchronously on the calling thread.
	err := p.Exec(func(ctx *memory.Context) error {
		msg, err := op.GetMessage()
		if err != nil {
			return err
		}
		msg.(*intMsg).value = 5
		return op.SendFrom(&Proc{comp: p, smm: p.SMM(), ctx: ctx, prio: 3}, msg, 3)
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-out:
		if v != 105 {
			t.Errorf("got %d, want 105", v)
		}
	default:
		t.Fatal("handoff chain did not complete synchronously")
	}
	if n, err := app.Errors(); n != 0 {
		t.Fatalf("handler errors: %d (%v)", n, err)
	}
}

func TestShadowPortGrandchildToGrandparent(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	out := make(chan int64, 8)

	// A (immortal) contains B, which contains C. C talks directly to A via
	// a shadow port: C's out port registers with A's SMM, so the message
	// pool and buffer live only in A's area (Fig. 5 of the paper).
	a, err := app.NewImmortalComponent("A", func(a *Component) error {
		aSMM := a.SMM()
		if _, err := AddInPort(a, aSMM, InPortConfig{
			Name: "fromC", Type: intType,
			Handler: HandlerFunc(func(pr *Proc, m Message) error {
				out <- m.(*intMsg).value
				return nil
			}),
		}); err != nil {
			return err
		}
		if _, err := AddOutPort(a, aSMM, OutPortConfig{Name: "toB", Type: intType, Dests: []string{"B.in"}}); err != nil {
			return err
		}
		return a.DefineChild(ChildDef{
			Name: "B", MemorySize: 1 << 14,
			Setup: func(b *Component) error {
				bSMM := b.SMM()
				if _, err := AddInPort(b, aSMM, InPortConfig{
					Name: "in", Type: intType,
					Handler: HandlerFunc(func(pr *Proc, m Message) error {
						toC, err := bSMM.GetOutPort("B.toC")
						if err != nil {
							return err
						}
						msg, err := toC.GetMessage()
						if err != nil {
							return err
						}
						msg.(*intMsg).value = m.(*intMsg).value * 2
						return toC.Send(msg, pr.Priority())
					}),
				}); err != nil {
					return err
				}
				if _, err := AddOutPort(b, bSMM, OutPortConfig{Name: "toC", Type: intType, Dests: []string{"C.in"}}); err != nil {
					return err
				}
				return b.DefineChild(ChildDef{
					Name: "C", MemorySize: 1 << 13,
					Setup: func(cc *Component) error {
						if _, err := AddInPort(cc, bSMM, InPortConfig{
							Name: "in", Type: intType,
							Handler: HandlerFunc(func(pr *Proc, m Message) error {
								// Shadow port: registered with A's SMM, not B's.
								shadow, err := aSMM.GetOutPort("C.shadowOut")
								if err != nil {
									return err
								}
								msg, err := shadow.GetMessage()
								if err != nil {
									return err
								}
								msg.(*intMsg).value = m.(*intMsg).value + 1
								return shadow.Send(msg, pr.Priority())
							}),
						}); err != nil {
							return err
						}
						_, err := AddOutPort(cc, aSMM, OutPortConfig{
							Name: "shadowOut", Type: intType, Dests: []string{"A.fromC"},
						})
						return err
					},
				})
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	toB, err := a.SMM().GetOutPort("A.toB")
	if err != nil {
		t.Fatal(err)
	}
	m, err := toB.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	m.(*intMsg).value = 10
	if err := toB.Send(m, 5); err != nil {
		t.Fatal(err)
	}
	if v := waitRecv(t, out); v != 21 { // (10*2)+1
		t.Errorf("got %d, want 21", v)
	}
	if n, err := app.Errors(); n != 0 {
		t.Fatalf("handler errors: %d (%v)", n, err)
	}
}

func TestShadowPortSkipsIntermediateAllocation(t *testing.T) {
	// The point of the shadow port: the intermediate component's area holds
	// no pool for the shadow traffic's message type.
	app := newTestApp(t, AppConfig{})
	var bSMM *SMM
	a, err := app.NewImmortalComponent("A", func(a *Component) error {
		aSMM := a.SMM()
		if _, err := AddInPort(a, aSMM, InPortConfig{
			Name: "in", Type: stringType,
			Handler: HandlerFunc(func(*Proc, Message) error { return nil }),
		}); err != nil {
			return err
		}
		return a.DefineChild(ChildDef{
			Name: "B", MemorySize: 1 << 14, Persistent: true,
			Setup: func(b *Component) error {
				bSMM = b.SMM()
				return b.DefineChild(ChildDef{
					Name: "C", MemorySize: 1 << 13, Persistent: true,
					Setup: func(cc *Component) error {
						_, err := AddOutPort(cc, aSMM, OutPortConfig{
							Name: "sh", Type: stringType, Dests: []string{"A.in"},
						})
						return err
					},
				})
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := a.SMM().Connect("B")
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Disconnect()
	hc, err := bSMM.Connect("C")
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Disconnect()

	if capacity, _, _, _ := a.SMM().MsgPoolStats("String"); capacity == 0 {
		t.Error("grandparent SMM has no pool for the shadow type")
	}
	if capacity, _, _, _ := bSMM.MsgPoolStats("String"); capacity != 0 {
		t.Error("intermediate SMM allocated a pool for shadow traffic")
	}
}

func TestMediationRequiresAncestor(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	var regErr1, regErr2 error
	x, err := app.NewImmortalComponent("X", func(x *Component) error {
		return x.DefineChild(ChildDef{
			Name: "kid", MemorySize: 1 << 12, Persistent: true,
			Setup: func(kid *Component) error {
				// Y's SMM cannot mediate the scoped child's ports: Y is not
				// an ancestor of kid, and kid is not immortal.
				y := app.Component("Y")
				_, regErr1 = AddOutPort(kid, y.SMM(), OutPortConfig{Name: "p", Type: intType})
				_, regErr2 = AddInPort(kid, y.SMM(), InPortConfig{
					Name: "q", Type: intType,
					Handler: HandlerFunc(func(*Proc, Message) error { return nil }),
				})
				return nil
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.NewImmortalComponent("Y", nil); err != nil {
		t.Fatal(err)
	}
	h, err := x.SMM().Connect("kid")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Disconnect()
	if regErr1 == nil {
		t.Error("non-ancestor out-port mediation accepted")
	}
	if regErr2 == nil {
		t.Error("non-ancestor in-port mediation accepted")
	}

	// Immortal-to-immortal mediation IS allowed: both live in the same
	// immortal area, so the assignment rules hold either way.
	y := app.Component("Y")
	if _, err := AddOutPort(x, y.SMM(), OutPortConfig{Name: "imm", Type: intType}); err != nil {
		t.Errorf("immortal sibling mediation rejected: %v", err)
	}
}

func TestPortValidation(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	c, err := app.NewImmortalComponent("C", nil)
	if err != nil {
		t.Fatal(err)
	}
	smm := c.SMM()
	h := HandlerFunc(func(*Proc, Message) error { return nil })

	if _, err := AddInPort(c, smm, InPortConfig{Name: "", Type: intType, Handler: h}); !errors.Is(err, ErrBadName) {
		t.Errorf("empty name err = %v", err)
	}
	if _, err := AddInPort(c, smm, InPortConfig{Name: "p", Type: MessageType{}, Handler: h}); err == nil {
		t.Error("invalid type accepted")
	}
	if _, err := AddInPort(c, smm, InPortConfig{Name: "p", Type: intType}); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := AddInPort(c, smm, InPortConfig{Name: "p", Type: intType, Handler: h, BufferSize: -1}); err == nil {
		t.Error("negative buffer accepted")
	}
	if _, err := AddOutPort(c, smm, OutPortConfig{Name: "", Type: intType}); !errors.Is(err, ErrBadName) {
		t.Errorf("empty out name err = %v", err)
	}
	if _, err := AddOutPort(c, smm, OutPortConfig{Name: "o", Type: MessageType{}}); err == nil {
		t.Error("invalid out type accepted")
	}

	// Lookups.
	if _, err := AddInPort(c, smm, InPortConfig{Name: "real", Type: intType, Handler: h}); err != nil {
		t.Fatal(err)
	}
	if _, err := smm.GetInPort("C.real"); err != nil {
		t.Errorf("qualified lookup: %v", err)
	}
	if _, err := smm.GetInPort("real"); err != nil {
		t.Errorf("short lookup: %v", err)
	}
	if _, err := smm.GetInPort("nope"); !errors.Is(err, ErrUnknownPort) {
		t.Errorf("missing in port err = %v", err)
	}
	if _, err := smm.GetOutPort("nope"); !errors.Is(err, ErrUnknownPort) {
		t.Errorf("missing out port err = %v", err)
	}
	ip, _ := smm.GetInPort("real")
	if ip.Name() != "C.real" || ip.Type().Name != "Int" || ip.Capacity() != DefaultBufferSize {
		t.Errorf("in-port accessors: %q %q %d", ip.Name(), ip.Type().Name, ip.Capacity())
	}
}

func TestFanOutDelivery(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	got := make(chan string, 4)
	mk := func(tag string) Handler {
		return HandlerFunc(func(*Proc, Message) error {
			got <- tag
			return nil
		})
	}
	comp, err := app.NewImmortalComponent("C", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{Name: "in1", Type: intType, Handler: mk("one")}); err != nil {
			return err
		}
		if _, err := AddInPort(c, smm, InPortConfig{Name: "in2", Type: intType, Handler: mk("two")}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: intType, Dests: []string{"C.in1", "C.in2"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	smm := comp.SMM()
	op, _ := smm.GetOutPort("out")
	m, _ := op.GetMessage()
	if err := op.Send(m, 1); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		select {
		case tag := <-got:
			seen[tag] = true
		case <-time.After(2 * time.Second):
			t.Fatal("fan-out incomplete")
		}
	}
	if !seen["one"] || !seen["two"] {
		t.Errorf("seen = %v", seen)
	}
	// Message returns to the pool only after BOTH receivers processed it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, inFlight, gets, returns := smm.MsgPoolStats("Int")
		if inFlight == 0 && gets == 1 && returns == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool not balanced: inflight %d gets %d returns %d", inFlight, gets, returns)
		}
		time.Sleep(time.Millisecond)
	}
}

// Property: for any burst of values, every value arrives exactly once and
// the message pool balances. This exercises pooling, dispatch, and
// transient re-instantiation under load.
func TestPropertyBurstDelivery(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) > 24 {
			vals = vals[:24]
		}
		app, err := NewApp(AppConfig{Name: "prop", MsgPoolCapacity: 64})
		if err != nil {
			return false
		}
		defer app.Stop()
		got := make(chan int64, len(vals)+1)
		comp, err := app.NewImmortalComponent("C", func(c *Component) error {
			smm := c.SMM()
			if _, err := AddInPort(c, smm, InPortConfig{
				Name: "in", Type: intType, BufferSize: 64,
				Handler: HandlerFunc(func(_ *Proc, m Message) error {
					got <- m.(*intMsg).value
					return nil
				}),
			}); err != nil {
				return err
			}
			_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: intType, Dests: []string{"C.in"}})
			return err
		})
		if err != nil {
			return false
		}
		op, err := comp.SMM().GetOutPort("out")
		if err != nil {
			return false
		}
		want := make(map[int64]int, len(vals))
		for _, v := range vals {
			m, err := op.GetMessage()
			if err != nil {
				return false
			}
			m.(*intMsg).value = int64(v)
			if err := op.Send(m, sched.Priority(v%7+1)); err != nil {
				return false
			}
			want[int64(v)]++
		}
		for i := 0; i < len(vals); i++ {
			select {
			case v := <-got:
				want[v]--
				if want[v] == 0 {
					delete(want, v)
				}
			case <-time.After(5 * time.Second):
				return false
			}
		}
		return len(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
