package core

// Live reconfiguration: the mission-style lifecycle of SCJ Level 2 promoted
// into a first-class operation on a running assembly. An App moves through
// Start → (Drain | Swap | Rewire)* → Terminate; a Swap replaces a live child
// component's blueprint and drains the outgoing instance under a bounded
// pause, a Rewire atomically re-points an Out port's destination list, and
// both republish the SMM's route caches with one generation flip — no
// message is dropped and steady-state sends stay allocation-free.
//
// The drain protocol behind Swap reuses the liveness machinery that already
// reclaims transient children:
//
//  1. The blueprint flips under instMu, so deliveries that miss a binding
//     park inside materialize until the swap commits — a bounded sender
//     pause, never a drop.
//  2. The outgoing instance is retired (autoDispose, revival barred) and
//     detached: its port bindings lose their owner but keep their handler,
//     so deliveries already buffered drain against the old version while
//     nothing new can reserve it.
//  3. The swap waits — bounded — for the instance to dispose at quiescence
//     (pending == 0, handles == 0), then one routeGen bump republishes every
//     cached route. The next delivery instantiates the new version through
//     the ordinary resolveIn slow path.

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// Phase is an assembly's lifecycle state.
type Phase int32

const (
	// PhaseNew is an assembled but not yet started App.
	PhaseNew Phase = iota
	// PhaseRunning is a started App processing traffic.
	PhaseRunning
	// PhaseDraining is an App waiting for in-flight work to quiesce.
	PhaseDraining
	// PhaseTerminated is a stopped App.
	PhaseTerminated
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseNew:
		return "new"
	case PhaseRunning:
		return "running"
	case PhaseDraining:
		return "draining"
	case PhaseTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("Phase(%d)", int32(p))
	}
}

// DefaultDrainTimeout bounds the wait for quiescence when a SwapOptions or
// Drain timeout is zero.
const DefaultDrainTimeout = time.Second

// Reconfiguration telemetry: every swap's pause lands in the
// reconfig_pause_ns histogram, and the counters attribute each kind of
// live change. Exported at /metrics with the compadres_ prefix.
var (
	reconfigPause = telemetry.NewHistogram("reconfig_pause_ns")
	swapTotal     = telemetry.NewCounter("swap_total")
	rewireTotal   = telemetry.NewCounter("rewire_total")
	drainTotal    = telemetry.NewCounter("drain_total")
)

// Phase returns the App's lifecycle state.
func (a *App) Phase() Phase { return Phase(a.phase.Load()) }

// Drain waits — bounded by timeout (zero selects DefaultDrainTimeout) — for
// the assembly to quiesce: no in-flight deliveries on any component and no
// queued messages on any In port, over every top-level subtree. Drain
// observes; it does not gate new sends — the caller pauses its producers
// (or has removed the assembly from its directory) first, which is what
// keeps in-flight handlers free to send downstream while the level drops.
func (a *App) Drain(timeout time.Duration) error {
	if timeout == 0 {
		timeout = DefaultDrainTimeout
	}
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return ErrStopped
	}
	top := make([]*Component, len(a.top))
	copy(top, a.top)
	a.mu.Unlock()

	prev := a.phase.Swap(int32(PhaseDraining))
	start := telemetry.Now()
	deadline := time.Now().Add(timeout)
	for {
		busy := false
		for _, c := range top {
			if c.busy() {
				busy = true
				break
			}
		}
		if !busy {
			break
		}
		if time.Now().After(deadline) {
			a.phase.Store(prev)
			return fmt.Errorf("%w: app %q still busy after %v", ErrDrainTimeout, a.name, timeout)
		}
		time.Sleep(100 * time.Microsecond)
	}
	a.phase.Store(prev)
	drainTotal.Inc()
	telemetry.Record(telemetry.EvDrain, telemetry.Label(a.name), 0, 0, uint64(telemetry.Now()-start))
	return nil
}

// Terminate drains the assembly and then stops it — SCJ's controlled
// mission termination. The App stops even when the drain times out; the
// timeout is reported so the caller knows work was cut off.
func (a *App) Terminate(timeout time.Duration) error {
	err := a.Drain(timeout)
	if errors.Is(err, ErrStopped) {
		err = nil // already stopped: Terminate is idempotent
	}
	a.Stop()
	return err
}

// busy reports whether any In port of this SMM still buffers messages or
// any live child subtree has in-flight work.
func (s *SMM) busy() bool {
	s.mu.Lock()
	for _, p := range s.in {
		p.mu.Lock()
		d := p.depthLocked()
		p.mu.Unlock()
		if d > 0 {
			s.mu.Unlock()
			return true
		}
	}
	children := make([]*Component, 0, len(s.children))
	for _, c := range s.children {
		children = append(children, c)
	}
	s.mu.Unlock()
	for _, c := range children {
		if c.busy() {
			return true
		}
	}
	return false
}

// SwapOptions configures SMM.Swap.
type SwapOptions struct {
	// DrainTimeout bounds the pause while the outgoing instance's in-flight
	// messages complete; zero selects DefaultDrainTimeout.
	DrainTimeout time.Duration
}

// SwapStats reports what a Swap did.
type SwapStats struct {
	// PauseNs is the reconfiguration pause: blueprint flip through drain
	// and route republication. Senders resolving the swapped child block at
	// most this long; cached-route sends to other destinations never block.
	PauseNs int64
	// ReplacedLive reports whether a live instance had to be drained (false
	// when the child was dormant: blueprint replaced, nothing to drain).
	ReplacedLive bool
	// Drained is false when the outgoing instance did not quiesce within
	// the drain timeout. The swap is still committed — the old instance is
	// retired and reclaims itself at quiescence — but the pause bound was
	// exceeded, and Swap reports ErrDrainTimeout alongside these stats.
	Drained bool
}

// Swap replaces the named child's blueprint with def — the same name, a new
// version — drains the outgoing live instance, and atomically flips the
// route-cache generation. In-flight messages already buffered for the old
// instance drain against the old version's handlers; deliveries arriving
// during the swap park in the resolution slow path and land on the new
// version — none are dropped. Swap serialises with instantiation and other
// swaps; senders whose routes do not touch the swapped child are never
// paused.
func (s *SMM) Swap(def ChildDef, opts SwapOptions) (SwapStats, error) {
	var st SwapStats
	if err := checkName(def.Name); err != nil {
		return st, err
	}
	if def.Setup == nil {
		return st, fmt.Errorf("core: swap %q: nil Setup", def.Name)
	}
	if !def.UsePool && def.MemorySize <= 0 {
		return st, fmt.Errorf("core: swap %q: non-positive memory size %d", def.Name, def.MemorySize)
	}
	if s.stopped.Load() {
		return st, ErrStopped
	}
	timeout := opts.DrainTimeout
	if timeout == 0 {
		timeout = DefaultDrainTimeout
	}
	start := telemetry.Now()

	// instMu makes the blueprint flip atomic against instantiation: a
	// delivery that finds no live binding parks in materialize until the
	// swap commits, then instantiates the new version.
	s.instMu.Lock()
	defer s.instMu.Unlock()

	owner := s.owner
	app := owner.app
	app.mu.Lock()
	if _, known := owner.childDefs[def.Name]; !known {
		app.mu.Unlock()
		return st, fmt.Errorf("%w: swap %q in %q", ErrUnknownChild, def.Name, owner.name)
	}
	d := def
	owner.childDefs[def.Name] = &d
	app.mu.Unlock()

	s.mu.Lock()
	delete(s.shells, def.Name) // an old-version Reusable shell must not revive
	old := s.children[def.Name]
	s.mu.Unlock()

	st.Drained = true
	if old != nil {
		st.ReplacedLive = true
		// Retire before detach: once the binding is unbound nothing new can
		// reserve the instance, and the retired flag keeps its quiescence
		// from stashing an old-version shell.
		old.retire()
		s.detach(old)
		// Already-quiet instances dispose here; busy ones at their final
		// donePending. Buffered deliveries still dispatch on the old
		// handler (unbind keeps it), so the drain completes old-version
		// work on old-version code.
		old.maybeQuiesce()
		st.Drained = old.awaitDisposed(timeout)
	}

	// One atomic flip republishes every cached route against the rebound
	// port table; the port structures themselves persist across the swap.
	s.mu.Lock()
	s.routeGen.Add(1)
	s.ensureGenGaugeLocked()
	s.mu.Unlock()

	st.PauseNs = telemetry.Now() - start
	reconfigPause.Record(st.PauseNs)
	swapTotal.Inc()
	telemetry.Record(telemetry.EvSwap, telemetry.Label(owner.Path()+"/"+def.Name), 0, 0, uint64(st.PauseNs))
	if !st.Drained {
		return st, fmt.Errorf("%w: swap %q waited %v, old instance still busy (held handles or stuck work)",
			ErrDrainTimeout, def.Name, timeout)
	}
	return st, nil
}

// Rewire atomically replaces the destination list of a registered Out port
// (qualified "Component.Port" or unambiguous short name) and flips the
// route-cache generation. Illegal rewires — unknown port, unqualified
// destination, or a destination whose registered In port carries a
// different message type — are rejected before anything changes. Rewiring
// to the current list is a no-op and does not bump the generation (the PR 6
// re-registration invariant).
func (s *SMM) Rewire(portName string, dests []string) error {
	if s.stopped.Load() {
		return ErrStopped
	}
	p, err := s.GetOutPort(portName)
	if err != nil {
		return err
	}
	s.mu.Lock()
	for _, dst := range dests {
		if _, _, ok := strings.Cut(dst, "."); !ok {
			s.mu.Unlock()
			return fmt.Errorf("%w: rewire %q: destination %q is not a qualified name", ErrBadName, p.qname, dst)
		}
		if in := s.in[dst]; in != nil && in.typ.Name != p.typ.Name {
			s.mu.Unlock()
			return fmt.Errorf("%w: rewire %q (%q) to %q (%q)",
				ErrTypeMismatch, p.qname, p.typ.Name, dst, in.typ.Name)
		}
	}
	if destsEqual(p.Dests(), dests) {
		s.mu.Unlock()
		return nil
	}
	cp := make([]string, len(dests))
	copy(cp, dests)
	p.setDests(cp)
	s.routeGen.Add(1) // same critical section as setDests; see registerOut
	s.ensureGenGaugeLocked()
	s.mu.Unlock()

	rewireTotal.Inc()
	telemetry.Record(telemetry.EvRewire, p.label, 0, 0, uint64(len(dests)))
	return nil
}

// RouteGeneration returns the SMM's route-cache generation — a monotonic
// counter that bumps exactly when the destination graph changes.
func (s *SMM) RouteGeneration() uint64 { return s.routeGen.Load() }

// ensureGenGaugeLocked registers the route_generation gauge once this SMM
// has been live-reconfigured. Called with s.mu held.
func (s *SMM) ensureGenGaugeLocked() {
	if s.genGauge != nil || s.stopped.Load() {
		return
	}
	gen := &s.routeGen
	s.genGauge = telemetry.Default.RegisterGauge("route_generation", s.owner.Path(),
		func() int64 { return int64(gen.Load()) })
}
