package core

import (
	"fmt"
	"strconv"
	"testing"
	"time"
)

// TestAdapterBridgesMismatchedTypes wires an Int producer to a String
// consumer through an adapter, the §2.2 escape hatch for non-matching
// message types.
func TestAdapterBridgesMismatchedTypes(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	got := make(chan string, 8)

	parent, err := app.NewImmortalComponent("P", func(c *Component) error {
		smm := c.SMM()
		// The producer emits Int toward the adapter.
		if _, err := AddOutPort(c, smm, OutPortConfig{
			Name: "numbers", Type: intType, Dests: []string{"IntToString.in"},
		}); err != nil {
			return err
		}
		// The consumer accepts String.
		if err := c.DefineChild(ChildDef{
			Name: "Printer", MemorySize: 1 << 13, Persistent: true,
			Setup: func(pr *Component) error {
				_, err := AddInPort(pr, smm, InPortConfig{
					Name: "text", Type: stringType,
					Handler: HandlerFunc(func(p *Proc, m Message) error {
						got <- m.(*stringMsg).s
						return nil
					}),
				})
				return err
			},
		}); err != nil {
			return err
		}
		// The adapter converts between them.
		return c.DefineChild(AdapterDef("IntToString", Adapter{
			In:  intType,
			Out: stringType,
			Convert: func(src, dst Message) error {
				dst.(*stringMsg).s = "n=" + strconv.FormatInt(src.(*intMsg).value, 10)
				return nil
			},
		}, 1<<13, []string{"Printer.text"}))
	})
	if err != nil {
		t.Fatal(err)
	}

	out, err := parent.SMM().GetOutPort("P.numbers")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		m, err := out.GetMessage()
		if err != nil {
			t.Fatal(err)
		}
		m.(*intMsg).value = i * 7
		if err := out.Send(m, 5); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		select {
		case s := <-got:
			seen[s] = true
		case <-time.After(5 * time.Second):
			t.Fatal("adapter chain stalled")
		}
	}
	for _, want := range []string{"n=7", "n=14", "n=21"} {
		if !seen[want] {
			t.Errorf("missing %q (seen %v)", want, seen)
		}
	}
	if n, err := app.Errors(); n != 0 {
		t.Errorf("handler errors: %d (%v)", n, err)
	}
}

// TestAdapterConversionFailure verifies a failing conversion is isolated
// and the pooled destination message is returned.
func TestAdapterConversionFailure(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	parent, err := app.NewImmortalComponent("P", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddOutPort(c, smm, OutPortConfig{
			Name: "numbers", Type: intType, Dests: []string{"Bad.in"},
		}); err != nil {
			return err
		}
		if err := c.DefineChild(ChildDef{
			Name: "Sink", MemorySize: 1 << 13, Persistent: true,
			Setup: func(pr *Component) error {
				_, err := AddInPort(pr, smm, InPortConfig{
					Name: "text", Type: stringType,
					Handler: HandlerFunc(func(*Proc, Message) error { return nil }),
				})
				return err
			},
		}); err != nil {
			return err
		}
		return c.DefineChild(AdapterDef("Bad", Adapter{
			In:  intType,
			Out: stringType,
			Convert: func(src, dst Message) error {
				return fmt.Errorf("cannot convert")
			},
		}, 1<<13, []string{"Sink.text"}))
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := parent.SMM().GetOutPort("P.numbers")
	m, _ := out.GetMessage()
	if err := out.Send(m, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n, _ := app.Errors(); n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("conversion failure not reported")
		}
		time.Sleep(time.Millisecond)
	}
	// Both pools balance: the Int original and the String destination.
	smm := parent.SMM()
	for _, typ := range []string{"Int", "String"} {
		if _, inFlight, _, _ := smm.MsgPoolStats(typ); inFlight != 0 {
			t.Errorf("%s pool in flight = %d", typ, inFlight)
		}
	}
}

// TestAdapterValidation verifies blueprint misconfiguration surfaces at
// instantiation.
func TestAdapterValidation(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	parent, err := app.NewImmortalComponent("P", func(c *Component) error {
		if err := c.DefineChild(AdapterDef("NilConvert", Adapter{
			In: intType, Out: stringType,
		}, 1<<13, nil)); err != nil {
			return err
		}
		return c.DefineChild(AdapterDef("BadTypes", Adapter{
			Convert: func(src, dst Message) error { return nil },
		}, 1<<13, nil))
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parent.SMM().Connect("NilConvert"); err == nil {
		t.Error("nil Convert accepted")
	}
	if _, err := parent.SMM().Connect("BadTypes"); err == nil {
		t.Error("invalid types accepted")
	}
}
