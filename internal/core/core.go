package core
