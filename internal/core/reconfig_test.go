package core

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// reconfigSend sends one value through out, riding out transient pool
// exhaustion (senders outpacing dispatch is expected in the storm tests).
func reconfigSend(out *OutPort, v int64) error {
	for {
		m, err := out.GetMessage()
		if err != nil {
			if errors.Is(err, ErrPoolEmpty) {
				time.Sleep(20 * time.Microsecond)
				continue
			}
			return err
		}
		m.(*intMsg).value = v
		return out.Send(m, 5)
	}
}

// workerDef builds a counting worker blueprint: each processed message
// bumps hits. The returned def is the "version" a swap installs.
func workerDef(smm *SMM, hits *atomic.Int64) ChildDef {
	return ChildDef{
		Name: "Worker", MemorySize: 1 << 14, Persistent: true,
		Setup: func(w *Component) error {
			_, err := AddInPort(w, smm, InPortConfig{
				Name: "in", Type: intType, BufferSize: 64, Overflow: OverflowBlock,
				Handler: HandlerFunc(func(p *Proc, m Message) error {
					hits.Add(1)
					return nil
				}),
			})
			return err
		},
	}
}

// TestSwapReplacesLiveChildUnderTraffic swaps a live worker version while
// four senders keep the port under sustained load: every sent message must
// be processed by exactly one of the two versions (zero drops), the new
// version must take over, and the pause must stay within the drain bound.
func TestSwapReplacesLiveChildUnderTraffic(t *testing.T) {
	app := newTestApp(t, AppConfig{MsgPoolCapacity: 256})
	var v1, v2 atomic.Int64

	hub, err := app.NewImmortalComponent("Hub", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddOutPort(c, smm, OutPortConfig{
			Name: "work", Type: intType, Dests: []string{"Worker.in"},
		}); err != nil {
			return err
		}
		return c.DefineChild(workerDef(smm, &v1))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}

	out, err := hub.SMM().GetOutPort("Hub.work")
	if err != nil {
		t.Fatal(err)
	}

	const senders = 4
	var sent atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := reconfigSend(out, 1); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				sent.Add(1)
			}
		}()
	}

	time.Sleep(20 * time.Millisecond) // let v1 take real traffic
	st, err := hub.SMM().Swap(workerDef(hub.SMM(), &v2), SwapOptions{DrainTimeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("swap: %v", err)
	}
	if !st.ReplacedLive || !st.Drained {
		t.Fatalf("swap stats = %+v, want live replace with completed drain", st)
	}
	if st.PauseNs <= 0 || st.PauseNs > int64(2*time.Second) {
		t.Fatalf("swap pause %dns outside (0, drain bound]", st.PauseNs)
	}

	time.Sleep(20 * time.Millisecond) // let v2 take real traffic
	close(stop)
	wg.Wait()
	if err := app.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if v2.Load() == 0 {
		t.Fatal("new version processed nothing after the swap")
	}
	if got, want := v1.Load()+v2.Load(), sent.Load(); got != want {
		t.Fatalf("processed %d (v1=%d v2=%d) != sent %d: messages dropped across the swap",
			got, v1.Load(), v2.Load(), want)
	}
	in, err := hub.SMM().GetInPort("Worker.in")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, dropped := in.Stats(); dropped != 0 {
		t.Fatalf("port dropped %d messages", dropped)
	}
}

// TestChaosHotSwapUnderLoad is the hot-swap soak: eight senders hammer one
// port while versions swap every few milliseconds. Invariant: every
// successful send is processed by exactly one version, across every swap.
func TestChaosHotSwapUnderLoad(t *testing.T) {
	app := newTestApp(t, AppConfig{MsgPoolCapacity: 512})
	const versions = 8
	counters := make([]atomic.Int64, versions)

	hub, err := app.NewImmortalComponent("Hub", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddOutPort(c, smm, OutPortConfig{
			Name: "work", Type: intType, Dests: []string{"Worker.in"},
		}); err != nil {
			return err
		}
		return c.DefineChild(workerDef(smm, &counters[0]))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	out, err := hub.SMM().GetOutPort("Hub.work")
	if err != nil {
		t.Fatal(err)
	}

	var sent atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := reconfigSend(out, 1); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				sent.Add(1)
			}
		}()
	}

	var maxPause int64
	for v := 1; v < versions; v++ {
		time.Sleep(5 * time.Millisecond)
		st, err := hub.SMM().Swap(workerDef(hub.SMM(), &counters[v]), SwapOptions{DrainTimeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("swap to v%d: %v", v, err)
		}
		if st.PauseNs > maxPause {
			maxPause = st.PauseNs
		}
	}
	close(stop)
	wg.Wait()
	if err := app.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}

	var processed int64
	for i := range counters {
		processed += counters[i].Load()
	}
	if processed != sent.Load() {
		t.Fatalf("processed %d != sent %d across %d swaps (max pause %v)",
			processed, sent.Load(), versions-1, time.Duration(maxPause))
	}
	if counters[versions-1].Load() == 0 {
		t.Fatal("final version processed nothing")
	}
	if errs, last := app.Errors(); errs != 0 {
		t.Fatalf("%d handler errors, last: %v", errs, last)
	}
}

// TestChaosRouteRebuildStorm pins the torn-route-rebuild window: eight
// senders traverse the cached route while one goroutine flips destinations
// (Rewire) and another churns a transient child through Connect/Disconnect.
// Under -race this exercises buildRoutes racing setDests/detach; the
// invariant is zero send errors, zero port drops, and no handler errors.
func TestChaosRouteRebuildStorm(t *testing.T) {
	app := newTestApp(t, AppConfig{MsgPoolCapacity: 512})
	var hitA, hitB, hitC atomic.Int64

	sink := func(name string, hits *atomic.Int64, smm *SMM) ChildDef {
		return ChildDef{
			Name: name, MemorySize: 1 << 14, Persistent: true,
			Setup: func(w *Component) error {
				_, err := AddInPort(w, smm, InPortConfig{
					Name: "in", Type: intType, BufferSize: 64, Overflow: OverflowBlock,
					Handler: HandlerFunc(func(p *Proc, m Message) error {
						hits.Add(1)
						return nil
					}),
				})
				return err
			},
		}
	}

	hub, err := app.NewImmortalComponent("Hub", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddOutPort(c, smm, OutPortConfig{
			Name: "out", Type: intType, Dests: []string{"A.in"},
		}); err != nil {
			return err
		}
		if _, err := AddOutPort(c, smm, OutPortConfig{
			Name: "churn", Type: intType, Dests: []string{"C.in"},
		}); err != nil {
			return err
		}
		if err := c.DefineChild(sink("A", &hitA, smm)); err != nil {
			return err
		}
		if err := c.DefineChild(sink("B", &hitB, smm)); err != nil {
			return err
		}
		// C is transient: Disconnect disposes it mid-traffic, so senders race
		// detach/unbind on the slow resolution path.
		def := sink("C", &hitC, smm)
		def.Persistent = false
		return c.DefineChild(def)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	smm := hub.SMM()
	out, err := smm.GetOutPort("Hub.out")
	if err != nil {
		t.Fatal(err)
	}
	churn, err := smm.GetOutPort("Hub.churn")
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var sendErrs atomic.Int64

	// 8 senders: 6 on the rewired port, 2 on the churned child.
	for i := 0; i < 8; i++ {
		p := out
		if i >= 6 {
			p = churn
		}
		wg.Add(1)
		go func(p *OutPort) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := reconfigSend(p, 1); err != nil {
					sendErrs.Add(1)
					t.Errorf("send on %s: %v", p.Name(), err)
					return
				}
			}
		}(p)
	}

	// Route flipper: single destination A, single B, fan-out to both.
	wg.Add(1)
	go func() {
		defer wg.Done()
		flips := [][]string{{"B.in"}, {"A.in", "B.in"}, {"A.in"}}
		for i := 0; i < 300; i++ {
			if err := smm.Rewire("Hub.out", flips[i%len(flips)]); err != nil {
				t.Errorf("rewire: %v", err)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Connect/Disconnect churn on the transient child.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			h, err := smm.Connect("C")
			if err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			time.Sleep(50 * time.Microsecond)
			h.Disconnect()
		}
	}()

	time.Sleep(80 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := app.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if sendErrs.Load() != 0 {
		t.Fatalf("%d send errors during the storm", sendErrs.Load())
	}
	for _, q := range []string{"A.in", "B.in", "C.in"} {
		in, err := smm.GetInPort(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, dropped := in.Stats(); dropped != 0 {
			t.Fatalf("%s dropped %d messages", q, dropped)
		}
	}
	if errs, last := app.Errors(); errs != 0 {
		t.Fatalf("%d handler errors, last: %v", errs, last)
	}
	// After the flips settle the cache must follow the final list exactly.
	if err := smm.Rewire("Hub.out", []string{"A.in"}); err != nil {
		t.Fatal(err)
	}
	before := hitA.Load()
	if err := reconfigSend(out, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for hitA.Load() == before {
		if time.Now().After(deadline) {
			t.Fatal("send after final rewire never reached A")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestRouteGenPropertyFlips is the generation-flip property test: across a
// seeded random interleaving of re-registrations, rewires, connect/
// disconnect cycles, and swaps, routeGen bumps exactly when the destination
// graph changes — and never during Reusable shell revival.
func TestRouteGenPropertyFlips(t *testing.T) {
	app := newTestApp(t, AppConfig{MsgPoolCapacity: 64})
	var hits atomic.Int64
	processed := make(chan struct{}, 64)

	reusable := func(smm *SMM) ChildDef {
		return ChildDef{
			Name: "R", MemorySize: 1 << 14, Reusable: true,
			Setup: func(w *Component) error {
				_, err := AddInPort(w, smm, InPortConfig{
					Name: "in", Type: intType, BufferSize: 32, Overflow: OverflowBlock,
					Handler: HandlerFunc(func(p *Proc, m Message) error {
						hits.Add(1)
						processed <- struct{}{}
						return nil
					}),
				})
				return err
			},
		}
	}

	hub, err := app.NewImmortalComponent("Hub", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "sinkA", Type: intType,
			Handler: HandlerFunc(func(p *Proc, m Message) error { return nil }),
		}); err != nil {
			return err
		}
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "sinkB", Type: intType,
			Handler: HandlerFunc(func(p *Proc, m Message) error { return nil }),
		}); err != nil {
			return err
		}
		if _, err := AddOutPort(c, smm, OutPortConfig{
			Name: "out", Type: intType, Dests: []string{"Hub.sinkA"},
		}); err != nil {
			return err
		}
		if _, err := AddOutPort(c, smm, OutPortConfig{
			Name: "toR", Type: intType, Dests: []string{"R.in"},
		}); err != nil {
			return err
		}
		return c.DefineChild(reusable(smm))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	smm := hub.SMM()
	toR, err := smm.GetOutPort("Hub.toR")
	if err != nil {
		t.Fatal(err)
	}

	// reviveOnce drives one full Reusable cycle: deliver (instantiating or
	// reviving the shell), wait for processing, wait for the quiescent shell
	// to stash. Neither half may bump the generation after the first
	// instantiation has registered the port.
	reviveOnce := func() {
		t.Helper()
		if err := reconfigSend(toR, 1); err != nil {
			t.Fatal(err)
		}
		select {
		case <-processed:
		case <-time.After(5 * time.Second):
			t.Fatal("reusable child never processed")
		}
		deadline := time.Now().Add(5 * time.Second)
		for smm.Child("R") != nil {
			if time.Now().After(deadline) {
				t.Fatal("reusable child never quiesced")
			}
			time.Sleep(50 * time.Microsecond)
		}
	}

	// Prime: the first delivery instantiates R and registers R.in (one
	// legitimate bump); everything after is the steady property.
	reviveOnce()

	rng := rand.New(rand.NewSource(61))
	cur := []string{"Hub.sinkA"}
	lists := [][]string{{"Hub.sinkA"}, {"Hub.sinkB"}, {"Hub.sinkA", "Hub.sinkB"}}
	for i := 0; i < 400; i++ {
		gen := smm.RouteGeneration()
		switch rng.Intn(5) {
		case 0: // re-register with identical dests: no bump
			if _, err := AddOutPort(hub, smm, OutPortConfig{Name: "out", Type: intType, Dests: cur}); err != nil {
				t.Fatal(err)
			}
			if g := smm.RouteGeneration(); g != gen {
				t.Fatalf("op %d: same-dests re-registration bumped gen %d→%d", i, gen, g)
			}
		case 1: // re-register or rewire with random dests: bump iff changed
			next := lists[rng.Intn(len(lists))]
			changed := !destsEqual(cur, next)
			if rng.Intn(2) == 0 {
				if _, err := AddOutPort(hub, smm, OutPortConfig{Name: "out", Type: intType, Dests: next}); err != nil {
					t.Fatal(err)
				}
			} else if err := smm.Rewire("Hub.out", next); err != nil {
				t.Fatal(err)
			}
			g := smm.RouteGeneration()
			if changed && g != gen+1 {
				t.Fatalf("op %d: dest change bumped gen %d→%d, want exactly +1", i, gen, g)
			}
			if !changed && g != gen {
				t.Fatalf("op %d: unchanged dests bumped gen %d→%d", i, gen, g)
			}
			cur = next
		case 2: // connect/disconnect: registration-free, no bump
			h, err := smm.Connect("R")
			if err != nil {
				t.Fatal(err)
			}
			h.Disconnect()
			deadline := time.Now().Add(5 * time.Second)
			for smm.Child("R") != nil {
				if time.Now().After(deadline) {
					t.Fatal("connected child never quiesced")
				}
				time.Sleep(50 * time.Microsecond)
			}
			if g := smm.RouteGeneration(); g != gen {
				t.Fatalf("op %d: connect/disconnect bumped gen %d→%d", i, gen, g)
			}
		case 3: // reusable revival: never bumps
			reviveOnce()
			if g := smm.RouteGeneration(); g != gen {
				t.Fatalf("op %d: shell revival bumped gen %d→%d", i, gen, g)
			}
		case 4: // swap: the graph rebinds, exactly one bump
			if _, err := smm.Swap(reusable(smm), SwapOptions{DrainTimeout: 5 * time.Second}); err != nil {
				t.Fatal(err)
			}
			if g := smm.RouteGeneration(); g != gen+1 {
				t.Fatalf("op %d: swap bumped gen %d→%d, want exactly +1", i, gen, g)
			}
		}
	}
}

// TestDrainAndTerminate exercises the mission lifecycle: phases, bounded
// drain of queued work, drain timeout on stuck work, and terminate.
func TestDrainAndTerminate(t *testing.T) {
	app := newTestApp(t, AppConfig{MsgPoolCapacity: 64})
	release := make(chan struct{})
	var done atomic.Int64

	comp, err := app.NewImmortalComponent("Slow", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "in", Type: intType, BufferSize: 32, Overflow: OverflowBlock,
			Handler: HandlerFunc(func(p *Proc, m Message) error {
				<-release
				done.Add(1)
				return nil
			}),
		}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: intType, Dests: []string{"Slow.in"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := app.Phase(); got != PhaseNew {
		t.Fatalf("phase before start = %v", got)
	}
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	if got := app.Phase(); got != PhaseRunning {
		t.Fatalf("phase after start = %v", got)
	}

	out, err := comp.SMM().GetOutPort("Slow.out")
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		if err := reconfigSend(out, int64(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Stuck work: the bounded drain must report the timeout, not hang.
	if err := app.Drain(30 * time.Millisecond); !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("drain of stuck work = %v, want ErrDrainTimeout", err)
	}
	if got := app.Phase(); got != PhaseRunning {
		t.Fatalf("phase after failed drain = %v, want running", got)
	}

	close(release)
	if err := app.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if done.Load() != n {
		t.Fatalf("drained with %d/%d processed", done.Load(), n)
	}

	if err := app.Terminate(time.Second); err != nil {
		t.Fatalf("terminate: %v", err)
	}
	if got := app.Phase(); got != PhaseTerminated {
		t.Fatalf("phase after terminate = %v", got)
	}
	if !app.Stopped() {
		t.Fatal("terminate did not stop the app")
	}
	// Idempotent on a dead app.
	if err := app.Terminate(time.Second); err != nil {
		t.Fatalf("second terminate: %v", err)
	}
}

// TestRewireRejectsIllegal checks that illegal rewires are rejected before
// any state changes: unknown ports, unqualified names, type mismatches.
func TestRewireRejectsIllegal(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	comp, err := app.NewImmortalComponent("X", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "strs", Type: stringType,
			Handler: HandlerFunc(func(p *Proc, m Message) error { return nil }),
		}); err != nil {
			return err
		}
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "ints", Type: intType,
			Handler: HandlerFunc(func(p *Proc, m Message) error { return nil }),
		}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: intType, Dests: []string{"X.ints"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	smm := comp.SMM()
	gen := smm.RouteGeneration()

	cases := []struct {
		port  string
		dests []string
		want  error
	}{
		{"nope", []string{"X.ints"}, ErrUnknownPort},
		{"X.out", []string{"unqualified"}, ErrBadName},
		{"X.out", []string{"X.strs"}, ErrTypeMismatch},
	}
	for _, tc := range cases {
		if err := smm.Rewire(tc.port, tc.dests); !errors.Is(err, tc.want) {
			t.Errorf("Rewire(%q, %v) = %v, want %v", tc.port, tc.dests, err, tc.want)
		}
	}
	if g := smm.RouteGeneration(); g != gen {
		t.Fatalf("rejected rewires changed gen %d→%d", gen, g)
	}
	// No-op rewire to the same list: accepted, no bump.
	if err := smm.Rewire("X.out", []string{"X.ints"}); err != nil {
		t.Fatal(err)
	}
	if g := smm.RouteGeneration(); g != gen {
		t.Fatalf("no-op rewire changed gen %d→%d", gen, g)
	}
}

// TestSwapRejectsIllegal checks blueprint validation and unknown children.
func TestSwapRejectsIllegal(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	comp, err := app.NewImmortalComponent("X", func(c *Component) error {
		return c.DefineChild(ChildDef{
			Name: "W", MemorySize: 1 << 13,
			Setup: func(w *Component) error { return nil },
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	smm := comp.SMM()
	ok := func(name string) ChildDef {
		return ChildDef{Name: name, MemorySize: 1 << 13, Setup: func(w *Component) error { return nil }}
	}

	if _, err := smm.Swap(ok("Unknown"), SwapOptions{}); !errors.Is(err, ErrUnknownChild) {
		t.Fatalf("swap of unknown child = %v", err)
	}
	bad := ok("W")
	bad.Setup = nil
	if _, err := smm.Swap(bad, SwapOptions{}); err == nil {
		t.Fatal("swap with nil Setup accepted")
	}
	bad = ok("W")
	bad.MemorySize = 0
	if _, err := smm.Swap(bad, SwapOptions{}); err == nil {
		t.Fatal("swap with zero memory accepted")
	}
	if _, err := smm.Swap(ChildDef{Name: "has.dot", MemorySize: 1, Setup: bad.Setup}, SwapOptions{}); err == nil {
		t.Fatal("swap with bad name accepted")
	}

	// A dormant child (never instantiated) swaps without a drain.
	st, err := smm.Swap(ok("W"), SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ReplacedLive {
		t.Fatal("dormant swap reported a live replace")
	}
	if !st.Drained {
		t.Fatal("dormant swap reported an incomplete drain")
	}
}
