package core

import (
	"encoding"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// Mechanism selects how an SMM passes messages across scoped regions. The
// paper (§2.2) identifies three options and adopts the shared object as the
// most efficient; all three are implemented so the trade-off is measurable.
type Mechanism int

// Cross-scope message passing mechanisms.
const (
	// MechanismSharedObject pools messages in the SMM owner's area, which
	// both sender and receiver may legally reference. The default.
	MechanismSharedObject Mechanism = iota + 1
	// MechanismSerialization marshals the message to bytes and rebuilds a
	// copy for every receiver; the original returns to its pool at send
	// time. Messages must implement encoding.BinaryMarshaler/Unmarshaler.
	MechanismSerialization
	// MechanismHandoff runs the handler synchronously on the sending
	// thread, which walks through the common-ancestor area into the
	// receiver's area (the handoff pattern). Requires OutPort.SendFrom.
	MechanismHandoff
)

// String returns the mechanism name.
func (m Mechanism) String() string {
	switch m {
	case MechanismSharedObject:
		return "shared-object"
	case MechanismSerialization:
		return "serialization"
	case MechanismHandoff:
		return "handoff"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// SMM is a Scoped Memory Manager: one per parent component, mediating all
// communication between the parent and its children and among the children.
// It owns the message pools (one per message type) and the In-port buffers,
// all charged to the parent's memory area; it maintains a proxy per child
// definition and instantiates child components on demand.
//
// The steady-state send path is lock-free with respect to the SMM: the
// mechanism and stop flag are atomics, and each OutPort caches its resolved
// destination In-ports (see routesFor), invalidated by a generation counter
// that port registration bumps. The SMM mutex is only taken to mutate the
// port/child/pool tables or on the cold resolution path.
type SMM struct {
	owner *Component
	area  *memory.Area

	// instMu serialises child instantiation; it is taken before mu and
	// never while holding mu.
	instMu sync.Mutex

	mu       sync.Mutex
	in       map[string]*InPort
	out      map[string]*OutPort
	children map[string]*Component
	shells   map[string]*Component // disposed Reusable shells awaiting revival
	msgPools map[string]*msgPool
	shared   *sched.Pool
	pools    []*sched.Pool // all pools owned by this SMM, for shutdown

	mechanism atomic.Int32
	stopped   atomic.Bool
	routeGen  atomic.Uint64 // bumped under mu on registerIn/registerOut/Rewire/Swap

	// genGauge exports routeGen once this SMM has been live-reconfigured;
	// registered lazily (under mu) so steady assemblies pay nothing.
	genGauge *telemetry.GaugeHandle
}

func newSMM(owner *Component) *SMM {
	s := &SMM{
		owner:    owner,
		area:     owner.area,
		in:       make(map[string]*InPort),
		out:      make(map[string]*OutPort),
		children: make(map[string]*Component),
		msgPools: make(map[string]*msgPool),
	}
	s.mechanism.Store(int32(MechanismSharedObject))
	return s
}

// Owner returns the parent component this SMM belongs to.
func (s *SMM) Owner() *Component { return s.owner }

// Area returns the memory area backing the SMM's pools and buffers (the
// owner's area).
func (s *SMM) Area() *memory.Area { return s.area }

// Mechanism returns the configured cross-scope mechanism.
func (s *SMM) Mechanism() Mechanism {
	return Mechanism(s.mechanism.Load())
}

// SetMechanism selects the cross-scope mechanism for subsequent sends.
func (s *SMM) SetMechanism(m Mechanism) {
	s.mechanism.Store(int32(m))
}

// GetOutPort looks an Out port up by qualified name ("Component.Port") or,
// when unambiguous, by short port name — the paper's smm.getOutPort().
func (s *SMM) GetOutPort(name string) (*OutPort, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.out[name]; ok {
		return p, nil
	}
	var found *OutPort
	for _, p := range s.out {
		if p.short == name {
			if found != nil {
				return nil, fmt.Errorf("%w: out port %q is ambiguous", ErrUnknownPort, name)
			}
			found = p
		}
	}
	if found == nil {
		return nil, fmt.Errorf("%w: out port %q", ErrUnknownPort, name)
	}
	return found, nil
}

// GetInPort looks an In port up by qualified or unambiguous short name.
func (s *SMM) GetInPort(name string) (*InPort, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.in[name]; ok {
		return p, nil
	}
	var found *InPort
	for _, p := range s.in {
		if p.short == name {
			if found != nil {
				return nil, fmt.Errorf("%w: in port %q is ambiguous", ErrUnknownPort, name)
			}
			found = p
		}
	}
	if found == nil {
		return nil, fmt.Errorf("%w: in port %q", ErrUnknownPort, name)
	}
	return found, nil
}

// Child returns the live instance of the named child, or nil.
func (s *SMM) Child(name string) *Component {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.children[name]
}

// MsgPoolStats reports (capacity, in-flight, gets, returns) for the pool of
// the given message type, or zeros if no pool exists yet.
func (s *SMM) MsgPoolStats(typeName string) (capacity, inFlight int, gets, returns int64) {
	s.mu.Lock()
	p := s.msgPools[typeName]
	s.mu.Unlock()
	if p == nil {
		return 0, 0, 0, 0
	}
	return p.stats()
}

// checkMediation verifies that this SMM may mediate ports of component c:
// the SMM's owner must be c itself or an ancestor of c (registering with a
// non-immediate ancestor is precisely the paper's shadow port). As a special
// case, any immortal component's SMM may mediate another immortal
// component's ports, since both live in the same immortal area and the
// assignment rules are trivially satisfied.
func (s *SMM) checkMediation(c *Component) error {
	for cc := c; cc != nil; cc = cc.parent {
		if cc == s.owner {
			return nil
		}
	}
	if s.area.Kind() == memory.KindImmortal && c.area.Kind() == memory.KindImmortal {
		return nil
	}
	return fmt.Errorf("core: SMM of %q cannot mediate ports of non-descendant %q", s.owner.name, c.name)
}

// registerIn adds (or rebinds) an In port of component c.
func (s *SMM) registerIn(c *Component, cfg InPortConfig) (*InPort, error) {
	if err := checkName(cfg.Name); err != nil {
		return nil, err
	}
	if !cfg.Type.valid() {
		return nil, fmt.Errorf("core: in port %q: invalid message type", cfg.Name)
	}
	if cfg.Handler == nil {
		return nil, fmt.Errorf("core: in port %q: nil handler", cfg.Name)
	}
	if err := s.checkMediation(c); err != nil {
		return nil, err
	}
	qname := c.name + "." + cfg.Name

	s.mu.Lock()
	if existing, ok := s.in[qname]; ok {
		// Re-instantiation of a transient child: the port structure
		// (buffer, pools) persists in the SMM; only the binding changes.
		if existing.typ.Name != cfg.Type.Name {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: port %q re-registered as %q, was %q",
				ErrTypeMismatch, qname, cfg.Type.Name, existing.typ.Name)
		}
		s.mu.Unlock()
		existing.bind(c, cfg.Handler)
		return existing, nil
	}
	s.mu.Unlock()

	bufSize := cfg.BufferSize
	if bufSize == 0 {
		bufSize = DefaultBufferSize
	}
	if bufSize < 0 {
		return nil, fmt.Errorf("core: in port %q: negative buffer size", qname)
	}
	threading := cfg.Threading
	if threading == 0 {
		threading = ThreadingShared
	}
	minT, maxT := cfg.MinThreads, cfg.MaxThreads
	if threading != ThreadingSynchronous {
		if minT == 0 {
			minT = 1
		}
		if maxT == 0 {
			maxT = 4
		}
	}

	// Charge the port header and buffer slots to the SMM's area and make
	// sure the message pool for the type exists.
	if err := s.charge(portHeaderBytes + bufSize*bufferSlotBytes); err != nil {
		return nil, fmt.Errorf("in port %q: %w", qname, err)
	}
	if _, err := s.ensurePool(cfg.Type); err != nil {
		return nil, err
	}

	p := &InPort{
		qname:       qname,
		short:       cfg.Name,
		typ:         cfg.Type,
		smm:         s,
		capacity:    bufSize,
		overflow:    cfg.Overflow,
		shedExpired: cfg.ShedExpired,
		label:       telemetry.Label(qname),
	}
	if cfg.Fair {
		// Tenant-fair buffer: the fair queue orders preallocated slab
		// slots, so fair-mode pushes allocate nothing at steady state.
		p.fair = sched.NewFairQueue(cfg.FairWeights)
		p.slab = make([]bufItem, bufSize)
		p.freeList = make([]uint32, bufSize)
		for i := range p.freeList {
			p.freeList[i] = uint32(bufSize - 1 - i)
		}
	} else {
		p.buf = make([]bufItem, 0, bufSize)
	}
	if cfg.Overflow == OverflowBlock {
		p.notFull = sync.NewCond(&p.mu)
	}
	// The dispatch closure is created once per port, so the per-message
	// Submit passes a preexisting function value instead of allocating.
	p.dispatchFn = func(prio sched.Priority) { s.dispatch(p, prio) }
	p.bind(c, cfg.Handler)

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.in[qname]; dup {
		return nil, fmt.Errorf("%w: in port %q", ErrDuplicateName, qname)
	}
	switch threading {
	case ThreadingShared:
		if s.shared == nil {
			s.shared = sched.NewPool(sched.PoolConfig{
				Name: s.owner.name + ".shared", Min: minT, Max: maxT,
			})
			s.pools = append(s.pools, s.shared)
		}
		p.pool = s.shared
	case ThreadingDedicated:
		p.pool = sched.NewPool(sched.PoolConfig{Name: qname, Min: minT, Max: maxT})
		p.dedicated = true
		s.pools = append(s.pools, p.pool)
	case ThreadingSynchronous:
		p.pool = sched.NewPool(sched.PoolConfig{Name: qname, Max: 0})
		p.dedicated = true
		s.pools = append(s.pools, p.pool)
	default:
		return nil, fmt.Errorf("core: in port %q: unknown threading policy %v", qname, threading)
	}
	s.in[qname] = p
	s.routeGen.Add(1) // a new In port may resolve a previously dangling route
	p.gauges = telemetry.Default.RegisterGauges(qname, map[string]func() int64{
		"port_received":  p.received.Load,
		"port_processed": p.processed.Load,
		"port_dropped":   p.dropped.Load,
		"port_shed":      p.shed.Load,
		"port_queue_max": p.depthMax.Load,
	})
	return p, nil
}

// destsEqual reports whether two destination lists are identical, in order.
func destsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// registerOut adds (or rebinds) an Out port of component c.
func (s *SMM) registerOut(c *Component, cfg OutPortConfig) (*OutPort, error) {
	if err := checkName(cfg.Name); err != nil {
		return nil, err
	}
	if !cfg.Type.valid() {
		return nil, fmt.Errorf("core: out port %q: invalid message type", cfg.Name)
	}
	if err := s.checkMediation(c); err != nil {
		return nil, err
	}
	qname := c.name + "." + cfg.Name

	s.mu.Lock()
	if existing, ok := s.out[qname]; ok {
		if existing.typ.Name != cfg.Type.Name {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: port %q re-registered as %q, was %q",
				ErrTypeMismatch, qname, cfg.Type.Name, existing.typ.Name)
		}
		existing.mu.Lock()
		existing.owner = c
		existing.mu.Unlock()
		if destsEqual(existing.Dests(), cfg.Dests) {
			// A pooled component re-registering the same wiring (the common
			// per-request re-instantiation) changes no routes: keep the
			// current destination list and, crucially, do not bump routeGen —
			// every OutPort's cached route stays valid, so steady-state sends
			// skip the rebuild (SMM lock plus map walks) entirely.
			s.mu.Unlock()
			return existing, nil
		}
		dests := make([]string, len(cfg.Dests))
		copy(dests, cfg.Dests)
		existing.setDests(dests)
		// The bump must land inside the same critical section as setDests:
		// buildRoutes snapshots (generation, dests, In table) under mu, so a
		// bump outside the lock would let a racing builder resurrect the
		// just-invalidated cache under the still-current generation and route
		// sends to the old destinations until the bump finally lands.
		s.routeGen.Add(1)
		s.mu.Unlock()
		return existing, nil
	}
	s.mu.Unlock()

	dests := make([]string, len(cfg.Dests))
	copy(dests, cfg.Dests)

	if err := s.charge(portHeaderBytes); err != nil {
		return nil, fmt.Errorf("out port %q: %w", qname, err)
	}
	pool, err := s.ensurePool(cfg.Type)
	if err != nil {
		return nil, err
	}

	p := &OutPort{qname: qname, short: cfg.Name, typ: cfg.Type, smm: s, owner: c, pool: pool}
	p.label = telemetry.Label(qname)
	p.setDests(dests)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.out[qname]; dup {
		return nil, fmt.Errorf("%w: out port %q", ErrDuplicateName, qname)
	}
	s.out[qname] = p
	s.routeGen.Add(1)
	p.gauges = telemetry.Default.RegisterGauge("port_sent", qname, p.sent.Load)
	return p, nil
}

// charge allocates n bookkeeping bytes in the SMM's area.
func (s *SMM) charge(n int) error {
	return s.owner.Exec(func(ctx *memory.Context) error {
		_, err := ctx.Alloc(n)
		return err
	})
}

// ensurePool returns the message pool for typ, creating and charging it on
// first use.
func (s *SMM) ensurePool(typ MessageType) (*msgPool, error) {
	s.mu.Lock()
	if p, ok := s.msgPools[typ.Name]; ok {
		s.mu.Unlock()
		return p, nil
	}
	s.mu.Unlock()

	var p *msgPool
	err := s.owner.Exec(func(ctx *memory.Context) error {
		var perr error
		p, perr = newMsgPool(typ, s.area, ctx, s.owner.app.msgCap)
		return perr
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.msgPools[typ.Name]; ok {
		return existing, nil
	}
	s.msgPools[typ.Name] = p
	p.gauges = telemetry.Default.RegisterGauges(s.owner.name+"/"+typ.Name, map[string]func() int64{
		"msgpool_gets":          p.gets.Load,
		"msgpool_returns":       p.returns.Load,
		"msgpool_in_flight_max": p.inFlightMax.Load,
	})
	return p, nil
}

// poolFor returns the (already ensured) pool for typ; panics are avoided by
// falling back to ensurePool, whose only failure mode is area exhaustion.
func (s *SMM) poolFor(typ MessageType) *msgPool {
	s.mu.Lock()
	p := s.msgPools[typ.Name]
	s.mu.Unlock()
	if p != nil {
		return p
	}
	p, err := s.ensurePool(typ)
	if err != nil {
		// Report through the app and return an empty pool so callers see
		// ErrPoolEmpty rather than a nil dereference.
		s.owner.app.reportError(err)
		return &msgPool{typ: typ, area: s.area}
	}
	return p
}

// Connect instantiates (or finds) the named child and returns a Handle that
// keeps it alive until Disconnect — the paper's connect()/disconnect() with
// a handle, implemented with a wedge on the child's scope.
func (s *SMM) Connect(name string) (*Handle, error) {
	for attempt := 0; attempt < 3; attempt++ {
		child, err := s.materialize(name)
		if err != nil {
			return nil, err
		}
		if child.addHandle() {
			return &Handle{smm: s, child: child}, nil
		}
		// The instance quiesced between materialize and addHandle; retry.
	}
	return nil, fmt.Errorf("core: connect %q: instance kept quiescing", name)
}

// Disconnect releases a handle obtained from Connect (paper-style spelling;
// equivalent to h.Disconnect).
func (s *SMM) Disconnect(h *Handle) { h.Disconnect() }

// Handle keeps a child component instance alive.
type Handle struct {
	smm   *SMM
	child *Component

	mu       sync.Mutex
	released bool
}

// Component returns the pinned child instance.
func (h *Handle) Component() *Component { return h.child }

// Disconnect releases the handle. When it was the last thing keeping a
// quiescent child alive, the child is reclaimed. Disconnect is idempotent.
func (h *Handle) Disconnect() {
	h.mu.Lock()
	if h.released {
		h.mu.Unlock()
		return
	}
	h.released = true
	h.mu.Unlock()

	c := h.child
	c.liveMu.Lock()
	c.handles--
	// A disconnect is an explicit kill request: even persistent children
	// become eligible for reclamation once quiescent.
	c.autoDispose = true
	c.liveMu.Unlock()
	c.maybeQuiesce()
}

// materialize returns the live instance of the named child, instantiating
// it if necessary. It never holds s.mu across user code.
func (s *SMM) materialize(name string) (*Component, error) {
	s.mu.Lock()
	if c := s.children[name]; c != nil {
		s.mu.Unlock()
		return c, nil
	}
	if s.stopped.Load() {
		s.mu.Unlock()
		return nil, ErrStopped
	}
	s.mu.Unlock()

	s.instMu.Lock()
	// Double-check under instMu: another goroutine may have won.
	s.mu.Lock()
	if c := s.children[name]; c != nil {
		s.mu.Unlock()
		s.instMu.Unlock()
		return c, nil
	}
	s.mu.Unlock()

	def := s.owner.childDef(name)
	if def == nil {
		s.instMu.Unlock()
		return nil, fmt.Errorf("%w: %q in %q", ErrUnknownChild, name, s.owner.name)
	}
	child, err := s.instantiate(def)
	s.instMu.Unlock()
	if err != nil {
		return nil, err
	}

	// Run the start function outside instMu so it may send messages —
	// including to siblings whose instantiation needs the same lock.
	// Deliveries racing in meanwhile park in waitStarted.
	startErr := child.runStart()
	child.markStarted()
	if startErr != nil {
		child.forceDispose()
		return nil, fmt.Errorf("child %q start: %w", def.Name, startErr)
	}
	return child, nil
}

// instantiate builds a child instance from its blueprint: acquire the
// scoped area (from the level's pool when requested), pin it under the
// owner's area, charge the component header, and run Setup. The caller
// (materialize, holding instMu) runs the start function afterwards.
func (s *SMM) instantiate(def *ChildDef) (*Component, error) {
	app := s.owner.app
	level := s.owner.level + 1

	var area *memory.Area
	if def.UsePool {
		pool := app.ScopePool(level)
		if pool == nil {
			return nil, fmt.Errorf("core: child %q wants the level-%d scope pool, but none is configured", def.Name, level)
		}
		var err error
		area, err = pool.Acquire()
		if err != nil {
			return nil, fmt.Errorf("child %q: %w", def.Name, err)
		}
	} else {
		area = app.model.NewLTScoped(s.owner.Path()+"/"+def.Name, def.MemorySize)
	}

	wedge, err := memory.Pin(area, s.area)
	if err != nil {
		return nil, fmt.Errorf("child %q: %w", def.Name, err)
	}

	if def.Reusable {
		if shell := s.takeShell(def.Name); shell != nil {
			return s.revive(shell, def, area, wedge)
		}
	}

	child := &Component{
		app:         app,
		name:        def.Name,
		parent:      s.owner,
		area:        area,
		wedge:       wedge,
		level:       level,
		mgr:         s,
		def:         def,
		autoDispose: !def.Persistent,
	}

	fail := func(err error) (*Component, error) {
		wedge.Release()
		return nil, err
	}
	if err := child.Exec(func(ctx *memory.Context) error {
		_, aerr := ctx.Alloc(componentHeaderBytes)
		return aerr
	}); err != nil {
		return fail(fmt.Errorf("child %q header: %w", def.Name, err))
	}
	s.owner.childBorn()
	if err := def.Setup(child); err != nil {
		s.owner.childGone()
		return fail(fmt.Errorf("child %q setup: %w", def.Name, err))
	}

	s.mu.Lock()
	s.children[def.Name] = child
	s.mu.Unlock()
	return child, nil
}

// revive re-arms a stashed Reusable shell with a freshly acquired area
// (already pinned by the caller): the chain's own-area slot is swapped, the
// header is re-charged, and the shell is re-exposed. Exposure — the children
// insert and the disposed flip — happens in a single s.mu critical section
// so no reader can ever observe the shell in the table while still marked
// disposed. started is cleared before exposure; the caller (materialize)
// re-runs the start function and marks it. Runs under instMu.
func (s *SMM) revive(c *Component, def *ChildDef, area *memory.Area, wedge *memory.Wedge) (*Component, error) {
	c.area = area
	c.wedge = wedge
	if n := len(c.chain); n > 0 {
		// The cached scope chain ends at the instance's own area, which
		// changes per revival (the pool may hand back a different region).
		c.chain[n-1] = area
	}
	c.started.Store(false)

	if err := c.Exec(func(ctx *memory.Context) error {
		_, aerr := ctx.Alloc(componentHeaderBytes)
		return aerr
	}); err != nil {
		// The shell stays disposed and is dropped, not re-stashed: the next
		// instantiation rebuilds from scratch.
		wedge.Release()
		return nil, fmt.Errorf("child %q header: %w", def.Name, err)
	}
	s.owner.childBorn()

	s.mu.Lock()
	s.children[def.Name] = c
	c.liveMu.Lock()
	c.disposed = false
	c.liveMu.Unlock()
	s.mu.Unlock()
	return c, nil
}

// forget removes a disposed Reusable child from the children table, leaving
// its port bindings in place for revival.
func (s *SMM) forget(c *Component) {
	s.mu.Lock()
	if s.children[c.name] == c {
		delete(s.children, c.name)
	}
	s.mu.Unlock()
}

// stashShell parks a torn-down Reusable shell for the next instantiation.
func (s *SMM) stashShell(c *Component) {
	s.mu.Lock()
	if s.shells == nil {
		s.shells = make(map[string]*Component)
	}
	s.shells[c.name] = c
	s.mu.Unlock()
}

// takeShell claims a stashed shell, if any.
func (s *SMM) takeShell(name string) *Component {
	s.mu.Lock()
	c := s.shells[name]
	if c != nil {
		delete(s.shells, name)
	}
	s.mu.Unlock()
	return c
}

// detach unbinds a disposed child's ports and forgets the instance. The
// port structures stay registered so a future instantiation reuses them.
func (s *SMM) detach(c *Component) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.children[c.name] == c {
		delete(s.children, c.name)
	}
	for _, p := range s.in {
		if owner, _ := p.binding(); owner == c {
			p.unbind()
		}
	}
	for _, p := range s.out {
		p.mu.Lock()
		if p.owner == c {
			p.owner = nil
		}
		p.mu.Unlock()
	}
}

// resolveIn returns the In port for a qualified destination name, with a
// live owner bound — instantiating the owning child if needed. This is the
// proxy behaviour of §2.2: "the SMM checks the proxies for the existing
// component or, if none are found, creates a new scoped memory component
// which should receive the message".
func (s *SMM) resolveIn(qname string) (*InPort, *Component, error) {
	compName, _, ok := strings.Cut(qname, ".")
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q is not a qualified name", ErrUnknownPort, qname)
	}
	// Losing the binding race means a concurrent quiesce, swap, or revival
	// won it between materialize and addPending — always transient progress
	// elsewhere, never a terminal state — so the retry is bounded by time,
	// not by attempts: back-to-back swaps can legitimately beat a descheduled
	// sender several times in a row, and a send must not be dropped because
	// reconfiguration was busy. A stopping app exits via materialize's
	// ErrStopped.
	deadline := time.Now().Add(resolveRetryBound)
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		p := s.in[qname]
		s.mu.Unlock()
		if p != nil {
			if owner, _ := p.binding(); owner != nil && owner.addPending() {
				return p, owner, nil
			}
		}
		if compName == s.owner.name {
			if p == nil {
				return nil, nil, fmt.Errorf("%w: %q", ErrUnknownPort, qname)
			}
			// The owner itself is never transient; a nil binding here means
			// the app is stopping.
			return nil, nil, ErrStopped
		}
		if _, err := s.materialize(compName); err != nil {
			return nil, nil, fmt.Errorf("deliver to %q: %w", qname, err)
		}
		if attempt >= 2 {
			if time.Now().After(deadline) {
				return nil, nil, fmt.Errorf("core: deliver to %q: owner kept quiescing", qname)
			}
			time.Sleep(20 * time.Microsecond) // let the winning swap/quiesce settle
		}
	}
}

// resolveRetryBound caps resolveIn's retry loop. Each lost race is caused by
// a reconfiguration that committed in the window, so sustained loss for this
// long means something is wedged and the send error is the honest report.
const resolveRetryBound = 10 * time.Second

// routeSet is one OutPort's cached resolution of destination names to In
// ports; it stays valid while gen matches the SMM's routeGen.
type routeSet struct {
	gen    uint64
	routes []route
}

// route is one cached destination. in is nil when the port was not yet
// registered at build time (the owning child has never been instantiated);
// such routes resolve through the slow path until a registration bumps the
// generation.
type route struct {
	in   *InPort
	dest string
}

// routesFor returns p's cached route set, rebuilding it when port
// registration has invalidated it. In the steady state this is one atomic
// load and a generation compare — no SMM lock, no map lookups, no string
// work per message.
func (s *SMM) routesFor(p *OutPort) *routeSet {
	gen := s.routeGen.Load()
	if rs := p.routes.Load(); rs != nil && rs.gen == gen {
		return rs
	}
	return s.buildRoutes(p)
}

// buildRoutes resolves p's destination names against the In-port table. The
// generation, the destination list, and the table are snapshotted in one mu
// critical section — every route-flipping writer commits its change and its
// bump inside that same lock, so a built set is always consistent with the
// generation it carries. The publish is a CAS that never replaces a
// newer-generation set: a builder descheduled across a route flip would
// otherwise clobber the fresh cache with a stale one, un-invalidating it for
// every sender until the next flip.
func (s *SMM) buildRoutes(p *OutPort) *routeSet {
	s.mu.Lock()
	gen := s.routeGen.Load()
	dests := p.Dests()
	rs := &routeSet{gen: gen, routes: make([]route, len(dests))}
	for i, d := range dests {
		rs.routes[i] = route{in: s.in[d], dest: d}
	}
	s.mu.Unlock()
	for {
		cur := p.routes.Load()
		if cur != nil && cur.gen > rs.gen {
			// A racing builder published a newer resolution; keep it. The
			// stale set is still internally consistent, so this dispatch may
			// use it — its sends land on ports that were current when the
			// snapshot was taken, exactly as if the send had happened then.
			return rs
		}
		if p.routes.CompareAndSwap(cur, rs) {
			return rs
		}
	}
}

// send routes one message per the SMM's configured mechanism.
func (s *SMM) send(p *OutPort, proc *Proc, msg Message, prio sched.Priority) error {
	if s.stopped.Load() {
		return ErrStopped
	}
	mech := Mechanism(s.mechanism.Load())
	rs := s.routesFor(p)
	if len(rs.routes) == 0 {
		return fmt.Errorf("%w: out port %q has no destinations", ErrUnknownPort, p.qname)
	}

	// Stamp the absolute deadline once per send; every receiver inherits it.
	var deadline int64
	if d := p.sendDeadline.Load(); d > 0 {
		deadline = telemetry.Now() + d
	}

	var err error
	switch mech {
	case MechanismSharedObject:
		err = s.sendShared(p, msg, prio, deadline, rs)
	case MechanismSerialization:
		err = s.sendSerialized(p, msg, prio, deadline, rs)
	case MechanismHandoff:
		if proc == nil {
			return fmt.Errorf("%w: out port %q", ErrNeedsCallerContext, p.qname)
		}
		err = s.sendHandoff(p, proc, msg, prio, deadline, rs)
	default:
		err = fmt.Errorf("core: unknown mechanism %v", mech)
	}
	if err == nil {
		p.sent.Add(1)
		telemetry.RecordVerbose(telemetry.EvSend, p.label, 0, 0, uint64(prio))
	}
	return err
}

// sendShared implements the default shared-object mechanism: the pooled
// message itself is enqueued for every receiver and returns to the pool
// after the last one processes it.
func (s *SMM) sendShared(p *OutPort, msg Message, prio sched.Priority, deadline int64, rs *routeSet) error {
	env := newEnvelope(msg, p.msgPool(), len(rs.routes))
	var firstErr error
	for i := range rs.routes {
		if err := s.deliverAsync(p, &rs.routes[i], env, msg, prio, deadline); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// sendSerialized implements the serialization mechanism: the message is
// encoded once, returned to its pool immediately, and an independent copy
// is rebuilt for every receiver.
func (s *SMM) sendSerialized(p *OutPort, msg Message, prio sched.Priority, deadline int64, rs *routeSet) error {
	bm, ok := msg.(encoding.BinaryMarshaler)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotSerializable, p.typ.Name)
	}
	data, err := bm.MarshalBinary()
	if err != nil {
		return fmt.Errorf("serialize %q: %w", p.typ.Name, err)
	}
	p.msgPool().put(msg)

	var firstErr error
	for i := range rs.routes {
		fresh := p.typ.New()
		um, ok := fresh.(encoding.BinaryUnmarshaler)
		if !ok {
			return fmt.Errorf("%w: %q", ErrNotSerializable, p.typ.Name)
		}
		if err := um.UnmarshalBinary(data); err != nil {
			return fmt.Errorf("deserialize %q: %w", p.typ.Name, err)
		}
		env := newEnvelope(fresh, nil, 1) // no pool: the copy is dropped
		if err := s.deliverAsync(p, &rs.routes[i], env, fresh, prio, deadline); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// deliverAsync reserves the destination owner, enqueues the item, and
// schedules a dispatch at the message priority. The cached route resolves
// the In port without touching the SMM; the slow path (unregistered port,
// quiescing or never-instantiated owner) falls back to resolveIn, which
// materializes the owning child.
func (s *SMM) deliverAsync(p *OutPort, r *route, env *envelope, msg Message, prio sched.Priority, deadline int64) error {
	in := r.in
	var owner *Component
	if in != nil {
		if o, _ := in.binding(); o != nil && o.addPending() {
			owner = o
		}
	}
	if owner == nil {
		var err error
		in, owner, err = s.resolveIn(r.dest)
		if err != nil {
			env.done()
			return err
		}
	}
	if in.typ.Name != p.typ.Name {
		owner.donePending()
		env.done()
		return fmt.Errorf("%w: %q sends %q, %q accepts %q",
			ErrTypeMismatch, p.qname, p.typ.Name, r.dest, in.typ.Name)
	}
	victim, evicted, err := in.push(bufItem{env: env, msg: msg, prio: prio, owner: owner, deadline: deadline})
	if err != nil {
		owner.donePending()
		owner.maybeQuiesce()
		env.done()
		return err
	}
	if evicted {
		// An overflow policy shed a queued delivery to admit this one:
		// release the victim's reservations outside the port lock. The
		// dispatch already submitted for the victim will pop a different
		// (newer) item or nothing — both are fine.
		if sa, ok := victim.msg.(ShedAware); ok {
			sa.OnShed()
		}
		victim.owner.donePending()
		victim.owner.maybeQuiesce()
		victim.env.done()
	}
	if err := in.pool.Submit(prio, in.dispatchFn); err != nil {
		// Pool already shut down. Retract exactly the item just pushed —
		// popping an arbitrary one could orphan a different sender's
		// delivery while this one stays queued against a recycled
		// completion channel.
		if it, ok := in.removeItem(env, msg); ok {
			it.owner.donePending()
			it.env.done()
		}
		return err
	}
	return nil
}

// dispatchState carries one in-flight dispatch through the owner's memory
// context. Instances are pooled and each owns a preconstructed closure over
// itself, so the steady-state dispatch allocates neither a closure nor a
// Proc. Handlers must not retain the *Proc past the call (the same contract
// as for the message itself).
type dispatchState struct {
	smm     *SMM
	it      bufItem
	handler Handler
	prio    sched.Priority
	proc    Proc
	fn      func(*memory.Context) error
}

var dispatchStatePool = sync.Pool{New: func() any {
	ds := new(dispatchState)
	ds.fn = func(ctx *memory.Context) error {
		ds.proc = Proc{comp: ds.it.owner, smm: ds.smm, ctx: ctx, prio: ds.prio}
		return ds.smm.process(ds.handler, &ds.proc, ds.it.msg)
	}
	return ds
}}

// dispatch runs on a pool worker (or inline for synchronous ports): it pops
// one buffered message and processes it in the owner's memory context.
func (s *SMM) dispatch(in *InPort, prio sched.Priority) {
	it, ok := in.pop()
	if !ok {
		return
	}
	owner := it.owner
	// Never process a message before the owner finished initialising. (A
	// synchronous port whose owner sends to itself from its own start
	// function would deadlock here; send asynchronously or after Start.)
	owner.waitStarted()
	telemetry.RecordVerbose(telemetry.EvDispatch, in.label, 0, 0, uint64(prio))
	// Deadline check: the handler is about to start; if the deadline already
	// passed, the message is late no matter how fast processing is. A
	// ShedExpired port drops the dead message here instead of executing it —
	// counted as a deadline shed, never as a miss or a dispatch latency,
	// because the handler never ran.
	if it.deadline > 0 {
		if now := telemetry.Now(); now > it.deadline {
			if in.shedExpired {
				telemetry.ReportDeadlineShed(in.label, it.deadline, now, 0, int(it.prio))
				in.dropped.Add(1)
				in.recordShed(it.prio, shedCauseExpired)
				if sa, ok := it.msg.(ShedAware); ok {
					sa.OnShed()
				}
				it.env.done()
				owner.donePending()
				owner.maybeQuiesce()
				return
			}
			telemetry.ReportDeadlineMiss(in.label, it.deadline, now, 0, int(prio))
		}
	}
	_, handler := in.binding()
	if handler == nil {
		// Owner disposed between push and dispatch with no rebinding; the
		// message is dropped.
		s.owner.app.reportError(fmt.Errorf("core: %q: no handler bound", in.qname))
	} else {
		ds := dispatchStatePool.Get().(*dispatchState)
		ds.smm, ds.it, ds.handler, ds.prio = s, it, handler, prio
		err := owner.Exec(ds.fn)
		ds.smm, ds.it, ds.handler, ds.proc = nil, bufItem{}, nil, Proc{}
		dispatchStatePool.Put(ds)
		if err != nil {
			s.owner.app.reportError(fmt.Errorf("core: %q handler: %w", in.qname, err))
		}
	}
	in.markProcessed()
	it.env.done()
	owner.donePending()
	owner.maybeQuiesce()
}

// process invokes a handler, converting panics into errors so one failing
// component cannot take the application down.
func (s *SMM) process(h Handler, p *Proc, msg Message) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: handler panic: %v", r)
		}
	}()
	return h.Process(p, msg)
}

// sendHandoff implements the handoff pattern: the sending thread leaves its
// own scope via the common ancestor (the SMM's area, already on its scope
// stack) and enters the receiver's area to run the handler synchronously.
func (s *SMM) sendHandoff(p *OutPort, proc *Proc, msg Message, prio sched.Priority, deadline int64, rs *routeSet) error {
	var firstErr error
	for i := range rs.routes {
		r := &rs.routes[i]
		in := r.in
		var owner *Component
		if in != nil {
			if o, _ := in.binding(); o != nil && o.addPending() {
				owner = o
			}
		}
		if owner == nil {
			var err error
			in, owner, err = s.resolveIn(r.dest)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
		}
		if in.typ.Name != p.typ.Name {
			owner.donePending()
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: %q sends %q, %q accepts %q",
					ErrTypeMismatch, p.qname, p.typ.Name, r.dest, in.typ.Name)
			}
			continue
		}
		owner.waitStarted()
		if deadline > 0 {
			if now := telemetry.Now(); now > deadline {
				telemetry.ReportDeadlineMiss(in.label, deadline, now, 0, int(prio))
			}
		}
		_, handler := in.binding()
		err := proc.ctx.ExecuteInArea(s.area, func(actx *memory.Context) error {
			run := func(hctx *memory.Context) error {
				return s.process(handler, &Proc{comp: owner, smm: s, ctx: hctx, prio: prio}, msg)
			}
			if owner.area == s.area {
				return run(actx)
			}
			return actx.Enter(owner.area, run)
		})
		in.received.Add(1)
		in.processed.Add(1)
		owner.donePending()
		owner.maybeQuiesce()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	p.msgPool().put(msg)
	return firstErr
}

// shutdown drains and stops every pool owned by this SMM, then disposes
// live children bottom-up.
func (s *SMM) shutdown() {
	if s.stopped.Swap(true) {
		return
	}
	s.mu.Lock()
	pools := make([]*sched.Pool, len(s.pools))
	copy(pools, s.pools)
	s.mu.Unlock()

	for _, p := range pools {
		p.Shutdown()
	}

	s.mu.Lock()
	children := make([]*Component, 0, len(s.children))
	for _, c := range s.children {
		children = append(children, c)
	}
	// Retire this SMM's telemetry gauges so long-lived processes (tests,
	// servers cycling applications) do not accumulate dead entries, and
	// wake any senders parked on OverflowBlock ports.
	for _, p := range s.in {
		p.closePort()
		p.gauges.Unregister()
	}
	for _, p := range s.out {
		p.gauges.Unregister()
	}
	for _, mp := range s.msgPools {
		mp.gauges.Unregister()
	}
	if s.genGauge != nil {
		s.genGauge.Unregister()
		s.genGauge = nil
	}
	s.mu.Unlock()
	for _, c := range children {
		c.forceDispose()
	}
}
