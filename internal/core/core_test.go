package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
)

// intMsg is the test message type, the analogue of the paper's MyInteger.
type intMsg struct {
	value int64
}

func (m *intMsg) Reset() { m.value = 0 }

func (m *intMsg) MarshalBinary() ([]byte, error) {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(m.value))
	return b, nil
}

func (m *intMsg) UnmarshalBinary(b []byte) error {
	if len(b) != 8 {
		return errors.New("intMsg: bad length")
	}
	m.value = int64(binary.BigEndian.Uint64(b))
	return nil
}

var intType = MessageType{Name: "Int", Size: 16, New: func() Message { return &intMsg{} }}

// stringMsg is a second type for mismatch tests.
type stringMsg struct{ s string }

func (m *stringMsg) Reset() { m.s = "" }

var stringType = MessageType{Name: "String", Size: 32, New: func() Message { return &stringMsg{} }}

func newTestApp(t *testing.T, cfg AppConfig) *App {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "test"
	}
	app, err := NewApp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Stop)
	return app
}

func waitRecv(t *testing.T, ch <-chan int64) int64 {
	t.Helper()
	select {
	case v := <-ch:
		return v
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
		return 0
	}
}

func TestImmortalComponentLoopback(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	got := make(chan int64, 1)

	comp, err := app.NewImmortalComponent("Echo", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "in", Type: intType,
			Handler: HandlerFunc(func(p *Proc, m Message) error {
				got <- m.(*intMsg).value
				return nil
			}),
		}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: intType, Dests: []string{"Echo.in"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}

	out, err := comp.SMM().GetOutPort("out")
	if err != nil {
		t.Fatal(err)
	}
	m, err := out.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	m.(*intMsg).value = 42
	if err := out.Send(m, sched.NormPriority); err != nil {
		t.Fatal(err)
	}
	if v := waitRecv(t, got); v != 42 {
		t.Errorf("received %d, want 42", v)
	}
	if out.Sent() != 1 {
		t.Errorf("sent = %d, want 1", out.Sent())
	}
}

func TestComponentAccessors(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	c, err := app.NewImmortalComponent("Top", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "Top" || c.Path() != "Top" || c.Level() != 0 || c.Parent() != nil {
		t.Errorf("accessors wrong: %q %q %d", c.Name(), c.Path(), c.Level())
	}
	if c.App() != app || c.Area() != app.Model().Immortal() {
		t.Error("app/area accessors wrong")
	}
	if app.Component("Top") != c || app.Component("Nope") != nil {
		t.Error("App.Component lookup wrong")
	}
	if app.Name() != "test" {
		t.Errorf("app name = %q", app.Name())
	}
}

func TestDuplicateAndBadNames(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	if _, err := app.NewImmortalComponent("A", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := app.NewImmortalComponent("A", nil); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("dup component err = %v", err)
	}
	if _, err := app.NewImmortalComponent("A.B", nil); !errors.Is(err, ErrBadName) {
		t.Errorf("dotted name err = %v", err)
	}
	if _, err := app.NewImmortalComponent("", nil); !errors.Is(err, ErrBadName) {
		t.Errorf("empty name err = %v", err)
	}
	c := app.Component("A")
	if err := c.DefineChild(ChildDef{Name: "kid", MemorySize: 1 << 12, Setup: func(*Component) error { return nil }}); err != nil {
		t.Fatal(err)
	}
	if err := c.DefineChild(ChildDef{Name: "kid", MemorySize: 1 << 12, Setup: func(*Component) error { return nil }}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("dup child err = %v", err)
	}
	if err := c.DefineChild(ChildDef{Name: "bad", MemorySize: 0, Setup: func(*Component) error { return nil }}); err == nil {
		t.Error("zero memory child accepted")
	}
	if err := c.DefineChild(ChildDef{Name: "bad2", MemorySize: 10}); err == nil {
		t.Error("nil setup accepted")
	}
}

// buildClientServer constructs the paper's Fig. 6 example: an immortal
// component (IMC) with two scoped children, Client and Server, wired
// P1→P2, P3→P4, P5→P6. done receives the reply value observed at P6.
func buildClientServer(t *testing.T, app *App, persistent bool, usePool bool) (*Component, chan int64) {
	t.Helper()
	done := make(chan int64, 16)

	imc, err := app.NewImmortalComponent("IMC", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddOutPort(c, smm, OutPortConfig{Name: "P1", Type: intType, Dests: []string{"Client.P2"}}); err != nil {
			return err
		}

		clientDef := ChildDef{
			Name: "Client", MemorySize: 1 << 14, Persistent: persistent, UsePool: usePool,
			Setup: func(cl *Component) error {
				if _, err := AddInPort(cl, smm, InPortConfig{
					Name: "P2", Type: intType, BufferSize: 10,
					Handler: HandlerFunc(func(p *Proc, m Message) error {
						p3, err := p.SMM().GetOutPort("Client.P3")
						if err != nil {
							return err
						}
						req, err := p3.GetMessage()
						if err != nil {
							return err
						}
						req.(*intMsg).value = m.(*intMsg).value + 1
						return p3.Send(req, 3)
					}),
				}); err != nil {
					return err
				}
				if _, err := AddOutPort(cl, smm, OutPortConfig{Name: "P3", Type: intType, Dests: []string{"Server.P4"}}); err != nil {
					return err
				}
				_, err := AddInPort(cl, smm, InPortConfig{
					Name: "P6", Type: intType, BufferSize: 20,
					Handler: HandlerFunc(func(p *Proc, m Message) error {
						done <- m.(*intMsg).value
						return nil
					}),
				})
				return err
			},
		}
		serverDef := ChildDef{
			Name: "Server", MemorySize: 1 << 14, Persistent: persistent, UsePool: usePool,
			Setup: func(sv *Component) error {
				if _, err := AddInPort(sv, smm, InPortConfig{
					Name: "P4", Type: intType, BufferSize: 20,
					Handler: HandlerFunc(func(p *Proc, m Message) error {
						p5, err := p.SMM().GetOutPort("Server.P5")
						if err != nil {
							return err
						}
						rep, err := p5.GetMessage()
						if err != nil {
							return err
						}
						rep.(*intMsg).value = m.(*intMsg).value * 10
						return p5.Send(rep, 3)
					}),
				}); err != nil {
					return err
				}
				_, err := AddOutPort(sv, smm, OutPortConfig{Name: "P5", Type: intType, Dests: []string{"Client.P6"}})
				return err
			},
		}
		if err := c.DefineChild(clientDef); err != nil {
			return err
		}
		return c.DefineChild(serverDef)
	})
	if err != nil {
		t.Fatal(err)
	}
	return imc, done
}

func trigger(t *testing.T, imc *Component, v int64) error {
	t.Helper()
	p1, err := imc.SMM().GetOutPort("IMC.P1")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p1.GetMessage()
	if err != nil {
		return err
	}
	m.(*intMsg).value = v
	return p1.Send(m, 2)
}

func TestClientServerRoundTrip(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	imc, done := buildClientServer(t, app, true /* persistent */, false)
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}

	if err := trigger(t, imc, 5); err != nil {
		t.Fatal(err)
	}
	// Reply = (5+1)*10.
	if v := waitRecv(t, done); v != 60 {
		t.Errorf("reply = %d, want 60", v)
	}
	if n, err := app.Errors(); n != 0 {
		t.Errorf("handler errors: %d (%v)", n, err)
	}

	// Children are persistent: both live after the round trip.
	smm := imc.SMM()
	if smm.Child("Client") == nil || smm.Child("Server") == nil {
		t.Error("persistent children disposed after round trip")
	}

	// Pools balance: every message returned.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, inFlight, gets, returns := smm.MsgPoolStats("Int")
		if inFlight == 0 && gets == returns && gets >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool not balanced: inflight %d gets %d returns %d", inFlight, gets, returns)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTransientChildrenReclaimedAtQuiescence(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	imc, done := buildClientServer(t, app, false /* transient */, false)
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}

	if err := trigger(t, imc, 1); err != nil {
		t.Fatal(err)
	}
	if v := waitRecv(t, done); v != 20 {
		t.Errorf("reply = %d, want 20", v)
	}

	// Both children should quiesce and be reclaimed.
	smm := imc.SMM()
	deadline := time.Now().Add(2 * time.Second)
	for smm.Child("Client") != nil || smm.Child("Server") != nil {
		if time.Now().After(deadline) {
			t.Fatal("transient children not reclaimed")
		}
		time.Sleep(time.Millisecond)
	}

	// A second trigger re-instantiates them and still works.
	if err := trigger(t, imc, 2); err != nil {
		t.Fatal(err)
	}
	if v := waitRecv(t, done); v != 30 {
		t.Errorf("second reply = %d, want 30", v)
	}
	if n, err := app.Errors(); n != 0 {
		t.Errorf("handler errors: %d (%v)", n, err)
	}
}

func TestConnectHandleKeepsChildAlive(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	imc, done := buildClientServer(t, app, false, false)
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	smm := imc.SMM()

	h, err := smm.Connect("Server")
	if err != nil {
		t.Fatal(err)
	}
	server := h.Component()
	if server.Disposed() {
		t.Fatal("connected child disposed")
	}
	if server.Level() != 1 || server.Parent() != imc || server.Path() != "IMC/Server" {
		t.Errorf("child identity: level %d path %q", server.Level(), server.Path())
	}

	if err := trigger(t, imc, 3); err != nil {
		t.Fatal(err)
	}
	waitRecv(t, done)

	// Server is held by the handle; it must be the same instance.
	if got := smm.Child("Server"); got != server {
		t.Error("held server instance was replaced")
	}

	h.Disconnect()
	h.Disconnect() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for smm.Child("Server") != nil {
		if time.Now().After(deadline) {
			t.Fatal("server not reclaimed after disconnect")
		}
		time.Sleep(time.Millisecond)
	}
	if !server.Disposed() {
		t.Error("server instance not marked disposed")
	}

	if _, err := smm.Connect("NoSuch"); !errors.Is(err, ErrUnknownChild) {
		t.Errorf("connect unknown err = %v", err)
	}
}

func TestScopeReclamationBumpsGeneration(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	imc, done := buildClientServer(t, app, false, false)
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	smm := imc.SMM()

	h, err := smm.Connect("Server")
	if err != nil {
		t.Fatal(err)
	}
	area := h.Component().Area()
	gen := area.Generation()
	if !area.Active() {
		t.Fatal("connected child's area inactive")
	}
	h.Disconnect()
	if area.Active() {
		t.Fatal("area active after disconnect")
	}
	if area.Generation() != gen+1 {
		t.Errorf("generation = %d, want %d", area.Generation(), gen+1)
	}
	_ = done
}

func TestScopePoolBackedChildren(t *testing.T) {
	app := newTestApp(t, AppConfig{
		ScopePools: []ScopePoolSpec{{Level: 1, AreaSize: 1 << 14, Count: 3}},
	})
	imc, done := buildClientServer(t, app, false, true /* usePool */)
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}

	for i := int64(0); i < 5; i++ {
		if err := trigger(t, imc, i); err != nil {
			t.Fatal(err)
		}
		if v := waitRecv(t, done); v != (i+1)*10 {
			t.Errorf("reply %d = %d, want %d", i, v, (i+1)*10)
		}
	}
	// Areas must be recycled through the pool, not freshly created: 3
	// pre-created areas serve everything.
	created, reused, _ := app.ScopePool(1).Stats()
	if created != 3 {
		t.Errorf("pool created = %d, want 3", created)
	}
	if reused < 2 {
		t.Errorf("pool reused = %d, want >= 2", reused)
	}
	if n, err := app.Errors(); n != 0 {
		t.Errorf("handler errors: %d (%v)", n, err)
	}
}

func TestChildWithoutConfiguredPoolFails(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	imc, err := app.NewImmortalComponent("P", func(c *Component) error {
		return c.DefineChild(ChildDef{Name: "kid", UsePool: true, Setup: func(*Component) error { return nil }})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := imc.SMM().Connect("kid"); err == nil {
		t.Error("connect without configured pool succeeded")
	}
}

func TestSendErrors(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	comp, err := app.NewImmortalComponent("C", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "strIn", Type: stringType,
			Handler: HandlerFunc(func(*Proc, Message) error { return nil }),
		}); err != nil {
			return err
		}
		if _, err := AddOutPort(c, smm, OutPortConfig{Name: "mismatch", Type: intType, Dests: []string{"C.strIn"}}); err != nil {
			return err
		}
		if _, err := AddOutPort(c, smm, OutPortConfig{Name: "nowhere", Type: intType, Dests: []string{"C.missing"}}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "unconnected", Type: intType})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	smm := comp.SMM()

	mm, _ := smm.GetOutPort("mismatch")
	m, err := mm.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := mm.Send(m, 1); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("type mismatch err = %v", err)
	}

	nw, _ := smm.GetOutPort("nowhere")
	m2, err := nw.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Send(m2, 1); !errors.Is(err, ErrUnknownPort) {
		t.Errorf("unknown dest err = %v", err)
	}

	uc, _ := smm.GetOutPort("unconnected")
	m3, err := uc.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := uc.Send(m3, 1); !errors.Is(err, ErrUnknownPort) {
		t.Errorf("no-dest err = %v", err)
	}
	uc.PutBack(m3)
}

func TestMessagePoolExhaustion(t *testing.T) {
	app := newTestApp(t, AppConfig{MsgPoolCapacity: 2})
	comp, err := app.NewImmortalComponent("C", func(c *Component) error {
		_, err := AddOutPort(c, c.SMM(), OutPortConfig{Name: "out", Type: intType, Dests: []string{"C.in"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := comp.SMM().GetOutPort("out")
	m1, err := out.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := out.GetMessage(); err != nil {
		t.Fatal(err)
	}
	if _, err := out.GetMessage(); !errors.Is(err, ErrPoolEmpty) {
		t.Errorf("exhausted pool err = %v, want ErrPoolEmpty", err)
	}
	out.PutBack(m1)
	if _, err := out.GetMessage(); err != nil {
		t.Errorf("get after put-back: %v", err)
	}
}

func TestBufferFull(t *testing.T) {
	app := newTestApp(t, AppConfig{MsgPoolCapacity: 16})
	block := make(chan struct{})
	started := make(chan struct{}, 16)
	comp, err := app.NewImmortalComponent("C", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "in", Type: intType, BufferSize: 2,
			Threading: ThreadingDedicated, MinThreads: 1, MaxThreads: 1,
			Handler: HandlerFunc(func(*Proc, Message) error {
				started <- struct{}{}
				<-block
				return nil
			}),
		}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: intType, Dests: []string{"C.in"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := comp.SMM().GetOutPort("out")

	send := func() error {
		m, err := out.GetMessage()
		if err != nil {
			return err
		}
		return out.Send(m, 1)
	}
	// First send occupies the single worker; two more fill the buffer.
	if err := send(); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := send(); err != nil {
		t.Fatal(err)
	}
	if err := send(); err != nil {
		t.Fatal(err)
	}
	if err := send(); !errors.Is(err, ErrBufferFull) {
		t.Errorf("overflow err = %v, want ErrBufferFull", err)
	}
	in, _ := comp.SMM().GetInPort("C.in")
	if _, _, dropped := in.Stats(); dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	close(block)
}

func TestBufferDispatchesByPriority(t *testing.T) {
	app := newTestApp(t, AppConfig{MsgPoolCapacity: 16})
	block := make(chan struct{})
	started := make(chan struct{}, 16)
	var mu sync.Mutex
	var order []int64
	comp, err := app.NewImmortalComponent("C", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "in", Type: intType, BufferSize: 16,
			Threading: ThreadingDedicated, MinThreads: 1, MaxThreads: 1,
			Handler: HandlerFunc(func(p *Proc, m Message) error {
				v := m.(*intMsg).value
				if v == 0 {
					started <- struct{}{}
					<-block
					return nil
				}
				mu.Lock()
				order = append(order, v)
				mu.Unlock()
				started <- struct{}{}
				return nil
			}),
		}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: intType, Dests: []string{"C.in"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := comp.SMM().GetOutPort("out")
	send := func(v int64, prio sched.Priority) {
		m, err := out.GetMessage()
		if err != nil {
			t.Fatal(err)
		}
		m.(*intMsg).value = v
		if err := out.Send(m, prio); err != nil {
			t.Fatal(err)
		}
	}
	// Occupy the single worker, then queue scrambled priorities.
	send(0, sched.NormPriority)
	<-started
	send(10, 10)
	send(30, 30)
	send(20, 20)
	send(31, 30) // same priority as 30: FIFO after it
	close(block)
	for i := 0; i < 4; i++ {
		<-started
	}
	mu.Lock()
	defer mu.Unlock()
	want := []int64{30, 31, 20, 10}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
	}
}

func TestHandlerPanicIsolatedAndReported(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	comp, err := app.NewImmortalComponent("C", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "in", Type: intType,
			Handler: HandlerFunc(func(*Proc, Message) error { panic("boom") }),
		}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: intType, Dests: []string{"C.in"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := comp.SMM().GetOutPort("out")
	m, _ := out.GetMessage()
	if err := out.Send(m, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n, err := app.Errors(); n == 1 {
			if err == nil {
				t.Error("nil last error")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("panic not reported")
		}
		time.Sleep(time.Millisecond)
	}
	// The message still returned to its pool.
	_, inFlight, _, _ := comp.SMM().MsgPoolStats("Int")
	if inFlight != 0 {
		t.Errorf("in flight = %d after panic, want 0", inFlight)
	}
}

func TestOnErrorCallback(t *testing.T) {
	errCh := make(chan error, 1)
	app := newTestApp(t, AppConfig{OnError: func(err error) { errCh <- err }})
	comp, err := app.NewImmortalComponent("C", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "in", Type: intType,
			Handler: HandlerFunc(func(*Proc, Message) error { return fmt.Errorf("handler failure") }),
		}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: intType, Dests: []string{"C.in"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := comp.SMM().GetOutPort("out")
	m, _ := out.GetMessage()
	if err := out.Send(m, 1); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("nil error delivered")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("error callback not invoked")
	}
}

func TestStopRejectsFurtherWork(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	imc, _ := buildClientServer(t, app, true, false)
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	p1, err := imc.SMM().GetOutPort("IMC.P1")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p1.GetMessage()
	if err != nil {
		t.Fatal(err)
	}
	app.Stop()
	if !app.Stopped() {
		t.Error("Stopped() = false")
	}
	if err := p1.Send(m, 1); !errors.Is(err, ErrStopped) {
		t.Errorf("send after stop err = %v, want ErrStopped", err)
	}
	if err := app.Start(); !errors.Is(err, ErrStopped) {
		t.Errorf("start after stop err = %v, want ErrStopped", err)
	}
	if _, err := app.NewImmortalComponent("X", nil); !errors.Is(err, ErrStopped) {
		t.Errorf("new component after stop err = %v, want ErrStopped", err)
	}
	app.Stop() // idempotent
}

func TestSynchronousThreading(t *testing.T) {
	app := newTestApp(t, AppConfig{})
	var handlerDone bool
	comp, err := app.NewImmortalComponent("C", func(c *Component) error {
		smm := c.SMM()
		if _, err := AddInPort(c, smm, InPortConfig{
			Name: "in", Type: intType, Threading: ThreadingSynchronous,
			Handler: HandlerFunc(func(*Proc, Message) error {
				handlerDone = true
				return nil
			}),
		}); err != nil {
			return err
		}
		_, err := AddOutPort(c, smm, OutPortConfig{Name: "out", Type: intType, Dests: []string{"C.in"}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := comp.SMM().GetOutPort("out")
	m, _ := out.GetMessage()
	if err := out.Send(m, 1); err != nil {
		t.Fatal(err)
	}
	// Synchronous: completed before Send returned, no happens-before issues.
	if !handlerDone {
		t.Error("synchronous handler did not run inline")
	}
}

func TestThreadingString(t *testing.T) {
	if ThreadingShared.String() != "Shared" || ThreadingDedicated.String() != "Dedicated" ||
		ThreadingSynchronous.String() != "Synchronous" || Threading(9).String() == "" {
		t.Error("Threading.String wrong")
	}
}

func TestMechanismString(t *testing.T) {
	if MechanismSharedObject.String() != "shared-object" ||
		MechanismSerialization.String() != "serialization" ||
		MechanismHandoff.String() != "handoff" || Mechanism(9).String() == "" {
		t.Error("Mechanism.String wrong")
	}
}
