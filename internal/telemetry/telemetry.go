// Package telemetry is the runtime observability subsystem: a flight
// recorder for the running middleware. The paper's evaluation methodology
// (§3.1) is entirely about predictability — median latency and jitter — but
// offline measurement alone leaves the running system a black box. This
// package makes queue depths, deadline misses, pool growth, and per-request
// traces visible at runtime, at a cost small enough that it stays enabled on
// the zero-allocation fast path:
//
//   - sharded atomic Counters and lock-free log-linear Histograms for
//     per-port / per-pool / per-SMM statistics;
//   - a fixed-size lock-free event Ring (the flight recorder) holding the
//     most recent dispatch/send/recv/span events with monotonic timestamps,
//     dumpable on demand or on fault;
//   - deadline-miss accounting with a registered miss handler;
//   - trace/span ids propagated across the ORB wire protocol so a
//     client→server→client round trip stitches into one trace;
//   - exporters: a JSON snapshot and a text /metrics-style rendering.
//
// Everything is always compiled in and toggled with Enable; the hot-path
// cost when enabled is a handful of atomic stores per event and one atomic
// add per counter, with no allocation and no interface boxing.
package telemetry

import (
	"os"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// epoch anchors all telemetry timestamps: Now is monotonic nanoseconds
// since process start.
var epoch = time.Now()

// Now returns monotonic nanoseconds since the telemetry epoch (process
// start). All event timestamps and deadlines use this clock, so they are
// directly comparable and immune to wall-clock steps.
func Now() int64 { return int64(time.Since(epoch)) }

// enabled gates event recording. Counters and gauges are so cheap they stay
// live regardless; the ring and span helpers check this flag.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enable toggles event recording (the flight-recorder ring and span
// helpers). Counters and gauges are unconditional.
func Enable(on bool) { enabled.Store(on) }

// Enabled reports whether event recording is on.
func Enabled() bool { return enabled.Load() }

// verbose gates the highest-frequency flight-recorder events: per-port
// send/dispatch records, invocation spans, and wire-read events. These cost
// around a microsecond per round trip in aggregate — visible against a
// ~10µs invocation — so steady-state deployments leave them off and keep
// the cheaper state-change events, counters, and histograms. Deadline
// enforcement does not depend on this flag.
var verbose atomic.Bool

// Verbose toggles per-hop event recording (spans, per-port send/dispatch,
// wire reads). Off by default; Enable(true) alone keeps them off.
func Verbose(on bool) { verbose.Store(on) }

// VerboseEnabled reports whether per-hop event recording is on.
func VerboseEnabled() bool { return verbose.Load() && enabled.Load() }

// ---------------------------------------------------------------------------
// IDs

var (
	idSeed = uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32
	idCtr  atomic.Uint64
)

// NewID returns a process-unique 64-bit id for traces and spans, never zero.
// It is a splitmix64 step over a seeded counter: allocation-free,
// contention is a single atomic add.
func NewID() uint64 {
	z := idSeed + idCtr.Add(1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// ---------------------------------------------------------------------------
// Labels

// LabelID names a static string (a port, pool, or operation name) in ring
// events. Interning happens once at registration time; the hot path carries
// only the 32-bit id, so recording an event never touches a string.
type LabelID uint32

var (
	labelMu    sync.Mutex
	labelIndex = map[string]LabelID{}
	labelNames atomic.Pointer[[]string] // index 0 = ""
)

func init() {
	names := []string{""}
	labelNames.Store(&names)
}

// Label interns s and returns its id. Call it at setup time (port or pool
// registration), not per message.
func Label(s string) LabelID {
	if s == "" {
		return 0
	}
	labelMu.Lock()
	defer labelMu.Unlock()
	if id, ok := labelIndex[s]; ok {
		return id
	}
	old := *labelNames.Load()
	names := make([]string, len(old)+1)
	copy(names, old)
	names[len(old)] = s
	id := LabelID(len(old))
	labelIndex[s] = id
	labelNames.Store(&names)
	return id
}

// LabelName resolves an id back to its string; unknown ids yield "".
func (id LabelID) Name() string {
	names := *labelNames.Load()
	if int(id) < len(names) {
		return names[id]
	}
	return ""
}

// ---------------------------------------------------------------------------
// Counters

// counterShards is the number of cache-line-padded cells a Counter spreads
// its adds over. Power of two.
const counterShards = 8

type counterShard struct {
	v atomic.Int64
	_ [56]byte // pad to a cache line so shards do not false-share
}

// Counter is a monotonically increasing counter, sharded across padded
// cells so concurrent writers on different goroutines rarely contend on
// one cache line. Add is one atomic add; Value sums the shards.
type Counter struct {
	name   string
	shards [counterShards]counterShard
}

// shardIdx picks a shard from the caller's stack address. Distinct
// goroutines have distinct stacks, so concurrent writers spread out; the
// local escapes nowhere, so this costs no allocation.
func shardIdx() int {
	var probe byte
	return int((uintptr(unsafe.Pointer(&probe)) >> 9) & (counterShards - 1))
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.shards[shardIdx()].v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// ---------------------------------------------------------------------------
// Registry

// gaugeEntry is one registered callback gauge. Gauges bridge existing
// atomic statistics (port counters, pool stats, message pools) into
// snapshots without adding any cost to the code paths that maintain them.
type gaugeEntry struct {
	id    uint64
	name  string // metric family, e.g. "port_received"
	label string // instance label, e.g. "Pong.in"
	fn    func() int64
}

// GaugeHandle unregisters a gauge (or a group registered together).
type GaugeHandle struct {
	r   *Registry
	ids []uint64
}

// Unregister removes the gauge(s) from the registry. Safe to call more than
// once.
func (h *GaugeHandle) Unregister() {
	if h == nil || h.r == nil {
		return
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	for _, id := range h.ids {
		for i, g := range h.r.gauges {
			if g.id == id {
				h.r.gauges = append(h.r.gauges[:i], h.r.gauges[i+1:]...)
				break
			}
		}
	}
	h.ids = nil
}

// faultKeep bounds the recent-fault list kept for snapshots.
const faultKeep = 32

// Fault is one recorded fault event (an inspectable error on a cold path:
// dial failure, peer close mid-frame, handler panic).
type Fault struct {
	// When is the telemetry timestamp (ns since process start).
	When int64 `json:"when_ns"`
	// Label names the subsystem that observed the fault.
	Label string `json:"label"`
	// Err is the error text.
	Err string `json:"err"`
}

// Registry holds counters, gauges, histograms, recent faults, and the event
// ring. The package-level Default registry is what the framework packages
// record into; independent registries exist for tests.
type Registry struct {
	mu       sync.Mutex
	counters []*Counter
	byName   map[string]*Counter
	gauges   []gaugeEntry
	gaugeSeq uint64
	hists    []*Histogram
	histBy   map[string]*Histogram
	faults   []Fault
	faultCtr Counter

	ring *Ring
}

// DefaultRingSize is the Default registry's flight-recorder capacity.
const DefaultRingSize = 4096

// NewRegistry returns an empty registry with a flight recorder of the given
// capacity (rounded up to a power of two; minimum 16).
func NewRegistry(ringSize int) *Registry {
	return &Registry{
		byName: map[string]*Counter{},
		histBy: map[string]*Histogram{},
		ring:   NewRing(ringSize),
	}
}

// Default is the process-wide registry the framework records into.
var Default = NewRegistry(DefaultRingSize)

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.byName[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.byName[name] = c
	r.counters = append(r.counters, c)
	return c
}

// NewCounter returns the named counter from the Default registry.
func NewCounter(name string) *Counter { return Default.Counter(name) }

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histBy[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	r.histBy[name] = h
	r.hists = append(r.hists, h)
	return h
}

// NewHistogram returns the named histogram from the Default registry.
func NewHistogram(name string) *Histogram { return Default.Histogram(name) }

// RegisterGauge registers a callback gauge under (name, label). The
// callback must be safe for concurrent use and must not block. If the
// (name, label) pair is already taken, the label is suffixed "#n" so every
// instance stays visible.
func (r *Registry) RegisterGauge(name, label string, fn func() int64) *GaugeHandle {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &GaugeHandle{r: r, ids: []uint64{r.registerGaugeLocked(name, label, fn)}}
}

// RegisterGauges registers several gauges that share one label (one
// instrumented object exporting several statistics) under a single handle.
func (r *Registry) RegisterGauges(label string, gauges map[string]func() int64) *GaugeHandle {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := &GaugeHandle{r: r}
	for name, fn := range gauges {
		h.ids = append(h.ids, r.registerGaugeLocked(name, label, fn))
	}
	return h
}

func (r *Registry) registerGaugeLocked(name, label string, fn func() int64) uint64 {
	unique := label
	for n := 2; ; n++ {
		taken := false
		for _, g := range r.gauges {
			if g.name == name && g.label == unique {
				taken = true
				break
			}
		}
		if !taken {
			break
		}
		unique = label + "#" + itoa(n)
	}
	r.gaugeSeq++
	id := r.gaugeSeq
	r.gauges = append(r.gauges, gaugeEntry{id: id, name: name, label: unique, fn: fn})
	return id
}

// RecordFault counts a fault, keeps it in the recent-fault list, and (when
// recording is enabled) drops an EvFault event in the ring. Cold path;
// allocation is fine here.
func (r *Registry) RecordFault(label string, err error) {
	r.faultCtr.Inc()
	f := Fault{When: Now(), Label: label}
	if err != nil {
		f.Err = err.Error()
	}
	r.mu.Lock()
	r.faults = append(r.faults, f)
	if len(r.faults) > faultKeep {
		r.faults = r.faults[len(r.faults)-faultKeep:]
	}
	r.mu.Unlock()
	if Enabled() {
		r.ring.Record(EvFault, Label(label), 0, 0, 0)
	}
}

// RecordFault records a fault in the Default registry.
func RecordFault(label string, err error) { Default.RecordFault(label, err) }

// Faults returns a copy of the recent-fault list (newest last) and the
// total fault count.
func (r *Registry) Faults() ([]Fault, int64) {
	r.mu.Lock()
	out := make([]Fault, len(r.faults))
	copy(out, r.faults)
	r.mu.Unlock()
	return out, r.faultCtr.Value()
}

// Ring returns the registry's flight recorder.
func (r *Registry) Ring() *Ring { return r.ring }

// Record drops an event in the Default registry's ring when recording is
// enabled. This is the framework's one-liner on hot paths: the Enabled
// check is an atomic load, and recording itself is a handful of atomic
// stores into a preallocated slot.
func Record(kind EventKind, label LabelID, trace, span, arg uint64) {
	if enabled.Load() {
		Default.ring.Record(kind, label, trace, span, arg)
	}
}

// RecordVerbose drops an event only when both recording and verbose mode
// are on. Hot paths that fire on every message hop use this instead of
// Record, so the steady-state cost is one atomic load.
func RecordVerbose(kind EventKind, label LabelID, trace, span, arg uint64) {
	if verbose.Load() && enabled.Load() {
		Default.ring.Record(kind, label, trace, span, arg)
	}
}

// itoa converts small positive ints without fmt (avoids pulling fmt into
// tiny paths; registration only).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
