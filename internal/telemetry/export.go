package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge reading in a snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Label string `json:"label,omitempty"`
	Value int64  `json:"value"`
}

// Snapshot is a JSON-exportable view of a registry: every counter, a
// reading of every gauge, histogram summaries, recent faults, and
// (optionally) the flight-recorder contents.
type Snapshot struct {
	// UptimeNanos is Now() at snapshot time.
	UptimeNanos int64               `json:"uptime_ns"`
	Counters    []CounterValue      `json:"counters"`
	Gauges      []GaugeValue        `json:"gauges"`
	Histograms  []HistogramSnapshot `json:"histograms,omitempty"`
	FaultsTotal int64               `json:"faults_total"`
	Faults      []Fault             `json:"faults,omitempty"`
	Events      []Event             `json:"events,omitempty"`
}

// SnapshotOptions selects what a snapshot includes beyond counters and
// gauges.
type SnapshotOptions struct {
	// Events includes the flight-recorder contents.
	Events bool
	// HistogramBuckets includes raw non-empty buckets, not just summaries.
	HistogramBuckets bool
}

// Snapshot captures the registry's current state. Counters and gauges are
// sorted by name (then label) so output is stable.
func (r *Registry) Snapshot(opts SnapshotOptions) Snapshot {
	r.mu.Lock()
	counters := make([]*Counter, len(r.counters))
	copy(counters, r.counters)
	gauges := make([]gaugeEntry, len(r.gauges))
	copy(gauges, r.gauges)
	hists := make([]*Histogram, len(r.hists))
	copy(hists, r.hists)
	r.mu.Unlock()

	s := Snapshot{UptimeNanos: Now()}
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Value: c.Value()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Label: g.label, Value: g.fn()})
	}
	sort.Slice(s.Gauges, func(i, j int) bool {
		if s.Gauges[i].Name != s.Gauges[j].Name {
			return s.Gauges[i].Name < s.Gauges[j].Name
		}
		return s.Gauges[i].Label < s.Gauges[j].Label
	})
	for _, h := range hists {
		s.Histograms = append(s.Histograms, h.Snapshot(opts.HistogramBuckets))
	}
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	s.Faults, s.FaultsTotal = r.Faults()
	if opts.Events {
		s.Events = r.ring.Snapshot()
	}
	return s
}

// WriteJSON writes an indented JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer, opts SnapshotOptions) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot(opts))
}

// WriteMetricsText renders the registry in the text exposition format
// Prometheus-style scrapers expect: one "name value" or
// `name{instance="label"} value` line per series.
func (r *Registry) WriteMetricsText(w io.Writer) error {
	s := r.Snapshot(SnapshotOptions{})
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "compadres_%s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if g.Label == "" {
			if _, err := fmt.Fprintf(w, "compadres_%s %d\n", g.Name, g.Value); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "compadres_%s{instance=%q} %d\n", g.Name, g.Label, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "compadres_%s_count %d\ncompadres_%s_sum %d\ncompadres_%s_max %d\ncompadres_%s_p50 %d\ncompadres_%s_p99 %d\n",
			h.Name, h.Count, h.Name, h.Sum, h.Name, h.Max, h.Name, h.P50, h.Name, h.P99); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "compadres_faults_total %d\n", s.FaultsTotal); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "compadres_events_recorded_total %d\n", r.ring.Len())
	return err
}

// DumpTrace writes the events of one trace, oldest first, in a compact
// human-readable form — the stitched view of a cross-ORB round trip.
func (r *Registry) DumpTrace(w io.Writer, trace uint64) error {
	events := r.ring.TraceEvents(trace)
	if len(events) == 0 {
		_, err := fmt.Fprintf(w, "trace %016x: no events\n", trace)
		return err
	}
	if _, err := fmt.Fprintf(w, "trace %016x (%d events):\n", trace, len(events)); err != nil {
		return err
	}
	base := events[0].When
	for _, ev := range events {
		if _, err := fmt.Fprintf(w, "  +%8.1fµs %-13s span=%016x %s arg=%d\n",
			float64(ev.When-base)/1e3, ev.KindName, ev.Span, ev.Label, ev.Arg); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry over HTTP:
//
//	/metrics        text exposition (counters, gauges, histograms)
//	/snapshot.json  full JSON snapshot including the flight recorder
//	/trace?id=hex   one stitched trace, human-readable
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.WriteMetricsText(w)
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w, SnapshotOptions{Events: true})
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		var trace uint64
		if _, err := fmt.Sscanf(req.URL.Query().Get("id"), "%x", &trace); err != nil {
			http.Error(w, "trace: want ?id=<hex>", http.StatusBadRequest)
			return
		}
		_ = r.DumpTrace(w, trace)
	})
	return mux
}

// Handler serves the Default registry (see Registry.Handler).
func Handler() http.Handler { return Default.Handler() }
