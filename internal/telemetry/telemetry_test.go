package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry(16)
	c := r.Counter("test_total")
	if r.Counter("test_total") != c {
		t.Fatal("Counter not idempotent by name")
	}
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
}

func TestCounterAddNoAlloc(t *testing.T) {
	c := NewRegistry(16).Counter("alloc_test")
	allocs := testing.AllocsPerRun(1000, func() { c.Add(1) })
	if allocs != 0 {
		t.Errorf("Counter.Add allocates %.1f/op, want 0", allocs)
	}
}

func TestLabelIntern(t *testing.T) {
	a := Label("port.a")
	b := Label("port.b")
	if a == b {
		t.Fatal("distinct labels share an id")
	}
	if Label("port.a") != a {
		t.Error("re-interning changed the id")
	}
	if a.Name() != "port.a" || b.Name() != "port.b" {
		t.Errorf("names = %q, %q", a.Name(), b.Name())
	}
	if Label("") != 0 || LabelID(0).Name() != "" {
		t.Error("empty label must map to id 0")
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("NewID returned 0")
		}
		if seen[id] {
			t.Fatalf("duplicate id %x", id)
		}
		seen[id] = true
	}
}

func TestHistogramBucketsRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 31, 32, 33, 100, 1000, 1 << 20, 1<<40 + 12345} {
		i := bucketIndex(v)
		lo, hi := bucketLow(i), bucketLow(i+1)
		if v < lo || v >= hi {
			t.Errorf("value %d bucketed to [%d, %d)", v, lo, hi)
		}
	}
	// Bucket lows must be strictly monotonic over the whole range.
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		lo := bucketLow(i)
		if lo <= prev && i > 0 {
			t.Fatalf("bucketLow(%d) = %d not > bucketLow(%d) = %d", i, lo, i-1, prev)
		}
		prev = lo
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewRegistry(16).Histogram("lat")
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1000) // 1µs .. 1ms
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1000000 {
		t.Errorf("max = %d", h.Max())
	}
	p50 := h.Quantile(0.5)
	if p50 < 400000 || p50 > 650000 {
		t.Errorf("p50 = %d, want ≈500000", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900000 || p99 > 1100000 {
		t.Errorf("p99 = %d, want ≈990000", p99)
	}
	if q := h.Quantile(0); q > h.Quantile(1) {
		t.Errorf("q0 %d > q1 %d", q, h.Quantile(1))
	}
}

func TestHistogramRecordNoAlloc(t *testing.T) {
	h := NewRegistry(16).Histogram("alloc")
	allocs := testing.AllocsPerRun(1000, func() { h.Record(12345) })
	if allocs != 0 {
		t.Errorf("Histogram.Record allocates %.1f/op, want 0", allocs)
	}
}

func TestDeadlineMissHandler(t *testing.T) {
	var mu sync.Mutex
	var got []Miss
	SetDeadlineMissHandler(func(m Miss) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	defer SetDeadlineMissHandler(nil)

	before := DeadlineMisses()
	lbl := Label("test.port")
	now := Now()
	ReportDeadlineMiss(lbl, now-1000, now, 42, 15)
	if DeadlineMisses() != before+1 {
		t.Errorf("miss counter = %d, want %d", DeadlineMisses(), before+1)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("handler calls = %d, want 1", len(got))
	}
	m := got[0]
	if m.Label != "test.port" || m.Trace != 42 || m.Priority != 15 || m.Lateness() != 1000 {
		t.Errorf("miss = %+v", m)
	}
}

func TestDeadlineMissHandlerPanicSwallowed(t *testing.T) {
	SetDeadlineMissHandler(func(Miss) { panic("observer broke") })
	defer SetDeadlineMissHandler(nil)
	ReportDeadlineMiss(0, 0, 1, 0, 1) // must not propagate the panic
}

func TestSnapshotAndMetricsText(t *testing.T) {
	r := NewRegistry(16)
	r.Counter("sends_total").Add(7)
	var depth int64 = 3
	h := r.RegisterGauge("queue_depth", "Pong.in", func() int64 { return depth })
	r.Histogram("rt").Record(5000)
	r.RecordFault("transport.dial", errFor("boom"))

	s := r.Snapshot(SnapshotOptions{Events: true})
	if len(s.Counters) != 1 || s.Counters[0].Value != 7 {
		t.Errorf("counters = %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 3 || s.Gauges[0].Label != "Pong.in" {
		t.Errorf("gauges = %+v", s.Gauges)
	}
	if s.FaultsTotal != 1 || len(s.Faults) != 1 || s.Faults[0].Err != "boom" {
		t.Errorf("faults = %d %+v", s.FaultsTotal, s.Faults)
	}
	if len(s.Events) != 1 || s.Events[0].Kind != EvFault {
		t.Errorf("events = %+v", s.Events)
	}

	var buf bytes.Buffer
	if err := r.WriteMetricsText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"compadres_sends_total 7",
		`compadres_queue_depth{instance="Pong.in"} 3`,
		"compadres_rt_count 1",
		"compadres_faults_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q:\n%s", want, text)
		}
	}

	buf.Reset()
	if err := r.WriteJSON(&buf, SnapshotOptions{}); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}

	// Unregistering removes the gauge; a duplicate label gets suffixed.
	h2 := r.RegisterGauge("queue_depth", "Pong.in", func() int64 { return 9 })
	s = r.Snapshot(SnapshotOptions{})
	if len(s.Gauges) != 2 || s.Gauges[1].Label != "Pong.in#2" {
		t.Errorf("duplicate gauge labels = %+v", s.Gauges)
	}
	h.Unregister()
	h2.Unregister()
	if s := r.Snapshot(SnapshotOptions{}); len(s.Gauges) != 0 {
		t.Errorf("gauges after unregister = %+v", s.Gauges)
	}
}

func TestRegisterGaugesGroup(t *testing.T) {
	r := NewRegistry(16)
	h := r.RegisterGauges("Pool.x", map[string]func() int64{
		"executed": func() int64 { return 1 },
		"workers":  func() int64 { return 2 },
	})
	if s := r.Snapshot(SnapshotOptions{}); len(s.Gauges) != 2 {
		t.Fatalf("gauges = %+v", s.Gauges)
	}
	h.Unregister()
	if s := r.Snapshot(SnapshotOptions{}); len(s.Gauges) != 0 {
		t.Errorf("gauges after group unregister = %+v", s.Gauges)
	}
}

func TestEnableToggle(t *testing.T) {
	defer Enable(true)
	before := Default.Ring().Len()
	Enable(false)
	Record(EvSend, 0, 0, 0, 0)
	if Default.Ring().Len() != before {
		t.Error("disabled recorder still recorded")
	}
	Enable(true)
	Record(EvSend, 0, 0, 0, 0)
	if Default.Ring().Len() != before+1 {
		t.Error("enabled recorder did not record")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorderIn(NewRegistry(16), "bridge", 100)
	const workers, per = 8, 250
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				rec.Record(time.Duration(j+1) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if rec.Count() != workers*per {
		t.Errorf("recorder count = %d, want %d", rec.Count(), workers*per)
	}
	if rec.Histogram().Count() != workers*per {
		t.Errorf("histogram count = %d", rec.Histogram().Count())
	}
	sum := rec.Summarize()
	if sum.Count != workers*per || sum.Min != time.Microsecond || sum.Max != per*time.Microsecond {
		t.Errorf("summary = %+v", sum)
	}
	rec.Reset()
	if rec.Count() != 0 {
		t.Error("reset did not clear the sample")
	}
}

// errFor builds a distinct error value without importing errors in several
// places.
type strErr string

func (e strErr) Error() string { return string(e) }

func errFor(s string) error { return strErr(s) }
