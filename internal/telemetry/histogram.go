package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Log-linear histogram layout. Values (nanoseconds) are bucketed with
// histSubCount linear buckets per power-of-two range, giving a worst-case
// relative error of 1/(histSubCount/2) ≈ 6% — plenty for latency
// distributions — with a fixed, lock-free array of atomic counters.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits // linear buckets in the first range
	histHalf     = histSubCount / 2 // buckets added per doubling
	// Values are non-negative int64s, so the highest set bit is 62; every
	// reachable index fits below histBuckets exactly.
	histBuckets = histSubCount + (63-histSubBits)*histHalf
)

// Histogram is a lock-free log-linear histogram of int64 observations
// (conventionally nanoseconds). Record is wait-free: one atomic add into a
// fixed bucket array plus count/sum/max maintenance. The zero value is not
// registered; obtain instances from a Registry so exporters see them.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	msb := bits.Len64(u) - 1             // position of the highest set bit
	exp := uint(msb - (histSubBits - 1)) // doublings beyond the linear range
	mantissa := u >> exp                 // top histSubBits bits ∈ [histHalf, histSubCount)
	return histSubCount + int(exp-1)*histHalf + int(mantissa) - histHalf
}

// bucketLow returns the smallest value that maps to bucket i, saturating at
// MaxInt64 for the (unreachable) bucket just past the last.
func bucketLow(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	j := i - histSubCount
	exp := uint(j/histHalf) + 1
	mantissa := uint64(j%histHalf) + histHalf
	v := mantissa << exp
	if v > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns an upper bound on the q-th quantile (0 ≤ q ≤ 1) from the
// bucket counts: the low edge of the bucket after the one holding the
// quantile rank, i.e. accurate to the bucket's ≈6% width. Returns 0 on an
// empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total-1))
	var seen int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			return bucketLow(i + 1)
		}
	}
	return h.max.Load()
}

// HistogramBucket is one non-empty bucket in a snapshot.
type HistogramBucket struct {
	// Low is the bucket's inclusive lower bound.
	Low int64 `json:"low"`
	// Count is the number of observations in the bucket.
	Count int64 `json:"count"`
}

// HistogramSnapshot is an exportable view of a histogram.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Max     int64             `json:"max"`
	P50     int64             `json:"p50"`
	P90     int64             `json:"p90"`
	P99     int64             `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state. withBuckets includes the
// non-empty buckets (for offline analysis); percentile summaries are always
// present.
func (h *Histogram) Snapshot(withBuckets bool) HistogramSnapshot {
	s := HistogramSnapshot{
		Name:  h.name,
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	if withBuckets {
		for i := range h.buckets {
			if c := h.buckets[i].Load(); c > 0 {
				s.Buckets = append(s.Buckets, HistogramBucket{Low: bucketLow(i), Count: c})
			}
		}
	}
	return s
}
