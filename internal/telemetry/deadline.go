package telemetry

import "sync/atomic"

// Miss describes one deadline miss: a message whose handler ran after the
// deadline it was sent with.
type Miss struct {
	// Label names the port (or pool) where the miss was detected.
	Label string
	// Deadline and Detected are telemetry timestamps (ns since process
	// start); Detected - Deadline is the lateness.
	Deadline, Detected int64
	// Trace correlates the miss with a distributed trace, when present.
	Trace uint64
	// Priority is the message's scheduling priority.
	Priority int
}

// Lateness returns how far past the deadline the miss was detected.
func (m Miss) Lateness() int64 { return m.Detected - m.Deadline }

// MissHandler observes deadline misses. Handlers run synchronously on the
// dispatching goroutine, after the miss is counted and recorded but before
// the late message is processed — keep them short. A handler must not
// panic; panics are swallowed so a broken observer cannot take down the
// dispatch path.
type MissHandler func(Miss)

var missHandler atomic.Pointer[MissHandler]

// deadlineMisses is the global miss counter ("deadline_miss_total").
var deadlineMisses = NewCounter("deadline_miss_total")

// deadlineSheds counts messages dropped at dequeue because the deadline had
// already passed ("deadline_shed_total"). A shed is NOT a miss: the work
// never ran, so it must not contribute a dispatch-latency sample or a miss
// event — conflating the two made shed storms read as latency regressions.
var deadlineSheds = NewCounter("deadline_shed_total")

// SetDeadlineMissHandler installs the process-wide miss handler; nil
// removes it.
func SetDeadlineMissHandler(fn MissHandler) {
	if fn == nil {
		missHandler.Store(nil)
		return
	}
	missHandler.Store(&fn)
}

// DeadlineMisses returns the total number of misses reported so far.
func DeadlineMisses() int64 { return deadlineMisses.Value() }

// DeadlineSheds returns the total number of already-dead messages shed at
// dequeue so far.
func DeadlineSheds() int64 { return deadlineSheds.Value() }

// ReportDeadlineShed counts a message dropped at dequeue because its
// deadline had already passed, and records an EvDeadlineShed event. The
// registered miss handler is NOT invoked and no dispatch latency is
// recorded: the message was never executed, so there is no handler run to
// observe and no latency sample to take.
func ReportDeadlineShed(label LabelID, deadline, detected int64, trace uint64, prio int) {
	deadlineSheds.Inc()
	lateness := detected - deadline
	if lateness < 0 {
		lateness = 0
	}
	if enabled.Load() {
		Default.ring.Record(EvDeadlineShed, label, trace, 0, uint64(lateness))
	}
}

// ReportDeadlineMiss counts a miss, records an EvDeadlineMiss event, and
// invokes the registered miss handler. The dispatch path calls this instead
// of letting a late message complete silently. detected should be the
// moment the miss was noticed (conventionally Now() read just before the
// check).
func ReportDeadlineMiss(label LabelID, deadline, detected int64, trace uint64, prio int) {
	deadlineMisses.Inc()
	lateness := detected - deadline
	if lateness < 0 {
		lateness = 0
	}
	if enabled.Load() {
		Default.ring.Record(EvDeadlineMiss, label, trace, 0, uint64(lateness))
	}
	if hp := missHandler.Load(); hp != nil {
		func() {
			defer func() { _ = recover() }()
			(*hp)(Miss{
				Label:    label.Name(),
				Deadline: deadline,
				Detected: detected,
				Trace:    trace,
				Priority: prio,
			})
		}()
	}
}
