package telemetry

import (
	"sync"
	"testing"
)

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 16}, {1, 16}, {16, 16}, {17, 32}, {100, 128}, {4096, 4096},
	} {
		if got := NewRing(tc.in).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRingRecordSnapshot(t *testing.T) {
	r := NewRing(16)
	lbl := Label("ring.test")
	r.Record(EvSend, lbl, 1, 2, 3)
	r.Record(EvDispatch, lbl, 1, 4, 5)

	events := r.Snapshot()
	if len(events) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(events))
	}
	if events[0].Kind != EvSend || events[0].Trace != 1 || events[0].Span != 2 || events[0].Arg != 3 {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[0].Label != "ring.test" || events[0].KindName != "send" {
		t.Errorf("event 0 label/kind = %q %q", events[0].Label, events[0].KindName)
	}
	if events[1].Seq != events[0].Seq+1 {
		t.Errorf("seqs = %d, %d", events[0].Seq, events[1].Seq)
	}
	if events[1].When < events[0].When {
		t.Errorf("timestamps out of order: %d then %d", events[0].When, events[1].When)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 40; i++ {
		r.Record(EvSend, 0, 0, 0, uint64(i))
	}
	events := r.Snapshot()
	if len(events) != 16 {
		t.Fatalf("snapshot len = %d, want 16", len(events))
	}
	for i, ev := range events {
		if want := uint64(24 + i); ev.Arg != want {
			t.Errorf("event %d arg = %d, want %d", i, ev.Arg, want)
		}
	}
	if r.Len() != 40 {
		t.Errorf("Len = %d, want 40", r.Len())
	}
}

func TestRingConcurrentRecordAndSnapshot(t *testing.T) {
	r := NewRing(64)
	lbl := Label("ring.race")
	const writers, per = 4, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader: snapshots must never report torn slots
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range r.Snapshot() {
				// Writers stamp trace, span, and arg with one writer-local
				// value, so a slot mixing fields from two in-flight writers
				// is detectable.
				if ev.Kind != EvSend || ev.Trace != ev.Span || ev.Trace != ev.Arg {
					t.Errorf("torn event: %+v", ev)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := uint64(w*per + i + 1)
				r.Record(EvSend, lbl, v, v, v)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if r.Len() != writers*per {
		t.Errorf("Len = %d, want %d", r.Len(), writers*per)
	}
}

func TestRingRecordNoAlloc(t *testing.T) {
	r := NewRing(64)
	lbl := Label("ring.alloc")
	allocs := testing.AllocsPerRun(1000, func() { r.Record(EvSend, lbl, 1, 2, 3) })
	if allocs != 0 {
		t.Errorf("Ring.Record allocates %.1f/op, want 0", allocs)
	}
}

func TestRingTraceEvents(t *testing.T) {
	r := NewRing(32)
	lbl := Label("ring.trace")
	r.Record(EvSpanStart, lbl, 100, 1, 0)
	r.Record(EvSend, lbl, 200, 2, 0)
	r.Record(EvSpanEnd, lbl, 100, 1, 555)

	got := r.TraceEvents(100)
	if len(got) != 2 {
		t.Fatalf("trace events = %d, want 2", len(got))
	}
	if got[0].Kind != EvSpanStart || got[1].Kind != EvSpanEnd || got[1].Arg != 555 {
		t.Errorf("trace events = %+v", got)
	}
}
