package telemetry

import "sync/atomic"

// EventKind classifies a flight-recorder event.
type EventKind uint8

// Flight-recorder event kinds.
const (
	// EvNone marks an empty slot.
	EvNone EventKind = iota
	// EvSend is a port send (arg = priority).
	EvSend
	// EvDispatch is a port dispatch (arg = priority).
	EvDispatch
	// EvDeadlineMiss is a message processed after its deadline
	// (arg = lateness in nanoseconds).
	EvDeadlineMiss
	// EvSpanStart opens a span (arg = request id or similar correlator).
	EvSpanStart
	// EvSpanEnd closes a span (arg = duration in nanoseconds).
	EvSpanEnd
	// EvNetSend is a wire write (arg = frame bytes).
	EvNetSend
	// EvNetRecv is a wire read (arg = frame bytes).
	EvNetRecv
	// EvFault is an error on a cold path (see Registry.RecordFault).
	EvFault
	// EvPoolGrow is a resource pool growing past its initial capacity
	// (arg = new size).
	EvPoolGrow
	// EvState is a resilience state machine transition — circuit breaker
	// open/half-open/close, connection supervisor reconnect (arg = new
	// state code, subsystem-defined).
	EvState
	// EvShed is a message dropped by an overloaded port's overflow policy
	// (arg = the shed message's priority).
	EvShed
	// EvDeadlineShed is a message dropped at dequeue because its deadline
	// had already passed — never executed, unlike EvDeadlineMiss
	// (arg = lateness in nanoseconds).
	EvDeadlineShed
	// EvSwap is a live component swap: the blueprint was replaced, the old
	// instance drained, and the route-cache generation flipped
	// (arg = reconfiguration pause in nanoseconds).
	EvSwap
	// EvRewire is a live destination-list replacement on an Out port
	// (arg = the new destination count).
	EvRewire
	// EvDrain is an assembly drain reaching quiescence
	// (arg = drain duration in nanoseconds).
	EvDrain
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case EvNone:
		return "none"
	case EvSend:
		return "send"
	case EvDispatch:
		return "dispatch"
	case EvDeadlineMiss:
		return "deadline_miss"
	case EvSpanStart:
		return "span_start"
	case EvSpanEnd:
		return "span_end"
	case EvNetSend:
		return "net_send"
	case EvNetRecv:
		return "net_recv"
	case EvFault:
		return "fault"
	case EvPoolGrow:
		return "pool_grow"
	case EvState:
		return "state"
	case EvShed:
		return "shed"
	case EvDeadlineShed:
		return "deadline_shed"
	case EvSwap:
		return "swap"
	case EvRewire:
		return "rewire"
	case EvDrain:
		return "drain"
	default:
		return "unknown"
	}
}

// Event is one decoded flight-recorder entry.
type Event struct {
	// Seq is the global event sequence number (1-based, monotonic).
	Seq uint64 `json:"seq"`
	// When is the telemetry timestamp (ns since process start).
	When int64 `json:"when_ns"`
	// Kind classifies the event.
	Kind EventKind `json:"-"`
	// KindName is Kind rendered for JSON consumers.
	KindName string `json:"kind"`
	// Label names the port/pool/subsystem that recorded the event.
	Label string `json:"label,omitempty"`
	// Trace and Span correlate the event with a distributed trace.
	Trace uint64 `json:"trace,omitempty"`
	Span  uint64 `json:"span,omitempty"`
	// Arg is kind-specific (priority, lateness, byte count, …).
	Arg uint64 `json:"arg,omitempty"`
}

// ringSlot is one fixed slot. Every field is atomic, so concurrent Record
// and Snapshot are race-free; the seq field doubles as the publication
// marker (0 while a writer is mid-update, ticket value once published).
// A reader accepts a slot only if seq is non-zero and unchanged across the
// field reads.
type ringSlot struct {
	seq   atomic.Uint64
	when  atomic.Int64
	kl    atomic.Uint64 // kind<<32 | label id
	trace atomic.Uint64
	span  atomic.Uint64
	arg   atomic.Uint64
}

// Ring is the fixed-size lock-free flight recorder. Writers claim a ticket
// with one atomic add and publish into their slot with atomic stores —
// no locks, no allocation, wait-free. The ring keeps the most recent
// capacity events; Snapshot (cold path) decodes them oldest-first.
type Ring struct {
	mask  uint64
	pos   atomic.Uint64 // tickets issued; next event gets pos+1
	slots []ringSlot
}

// NewRing returns a ring with the given capacity rounded up to a power of
// two (minimum 16).
func NewRing(capacity int) *Ring {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]ringSlot, n)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns the number of events recorded so far (not clamped to Cap).
func (r *Ring) Len() uint64 { return r.pos.Load() }

// Record appends one event, overwriting the oldest when the ring is full.
func (r *Ring) Record(kind EventKind, label LabelID, trace, span, arg uint64) {
	t := r.pos.Add(1)
	s := &r.slots[(t-1)&r.mask]
	s.seq.Store(0) // invalidate for readers while fields are in flux
	s.when.Store(Now())
	s.kl.Store(uint64(kind)<<32 | uint64(label))
	s.trace.Store(trace)
	s.span.Store(span)
	s.arg.Store(arg)
	s.seq.Store(t)
}

// Snapshot decodes the ring's current contents, oldest event first. Slots
// caught mid-write are skipped rather than reported torn. Cold path: the
// returned slice is freshly allocated.
func (r *Ring) Snapshot() []Event {
	n := uint64(len(r.slots))
	end := r.pos.Load()
	start := uint64(1)
	if end > n {
		start = end - n + 1
	}
	out := make([]Event, 0, end-start+1)
	for t := start; t <= end; t++ {
		s := &r.slots[(t-1)&r.mask]
		seq1 := s.seq.Load()
		if seq1 == 0 {
			continue
		}
		ev := Event{
			Seq:   seq1,
			When:  s.when.Load(),
			Trace: s.trace.Load(),
			Span:  s.span.Load(),
			Arg:   s.arg.Load(),
		}
		kl := s.kl.Load()
		if s.seq.Load() != seq1 {
			continue // overwritten while reading
		}
		ev.Kind = EventKind(kl >> 32)
		ev.KindName = ev.Kind.String()
		ev.Label = LabelID(kl & 0xFFFFFFFF).Name()
		out = append(out, ev)
	}
	return out
}

// TraceEvents returns the ring events belonging to the given trace id,
// oldest first.
func (r *Ring) TraceEvents(trace uint64) []Event {
	all := r.Snapshot()
	out := all[:0]
	for _, ev := range all {
		if ev.Trace == trace {
			out = append(out, ev)
		}
	}
	return out
}
