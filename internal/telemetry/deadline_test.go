package telemetry

import "testing"

// ReportDeadlineShed counts on the shed counter only: no miss counter
// movement, no miss-handler invocation, and an EvDeadlineShed (not
// EvDeadlineMiss) ring event. Shed work never executed, so treating it as
// a miss (or as dispatch latency) would poison every latency-driven control
// loop downstream.
func TestReportDeadlineShedIsNotAMiss(t *testing.T) {
	was := Enabled()
	Enable(true)
	defer Enable(was)
	handlerCalls := 0
	SetDeadlineMissHandler(func(Miss) { handlerCalls++ })
	defer SetDeadlineMissHandler(nil)

	missesBefore := DeadlineMisses()
	shedsBefore := DeadlineSheds()
	label := Label("shed.port")
	ReportDeadlineShed(label, 100, 250, 7, 12)

	if got := DeadlineSheds(); got != shedsBefore+1 {
		t.Errorf("DeadlineSheds = %d, want %d", got, shedsBefore+1)
	}
	if got := DeadlineMisses(); got != missesBefore {
		t.Errorf("DeadlineMisses moved to %d (was %d)", got, missesBefore)
	}
	if handlerCalls != 0 {
		t.Errorf("miss handler invoked %d times for a shed, want 0", handlerCalls)
	}
	var sawShed bool
	for _, ev := range Default.Ring().Snapshot() {
		if ev.Label != "shed.port" {
			continue
		}
		if ev.Kind == EvDeadlineMiss {
			t.Error("shed recorded an EvDeadlineMiss ring event")
		}
		if ev.Kind == EvDeadlineShed {
			sawShed = true
			if ev.Arg != 150 {
				t.Errorf("EvDeadlineShed lateness arg = %d, want 150", ev.Arg)
			}
		}
	}
	if !sawShed {
		t.Error("no EvDeadlineShed ring event recorded")
	}
	if got := EvDeadlineShed.String(); got != "deadline_shed" {
		t.Errorf("EvDeadlineShed.String() = %q", got)
	}
}
