package telemetry

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// Recorder is the concurrent-safe bridge between the offline measurement
// methodology (metrics.Collector, §3.1 of the paper) and runtime telemetry:
// every recorded duration lands in both the wrapped Collector (for
// median/jitter summaries over the raw sample) and a telemetry Histogram
// (for live quantiles with bounded memory). Unlike a bare Collector, a
// Recorder may be shared by any number of goroutines.
type Recorder struct {
	mu   sync.Mutex
	coll *metrics.Collector
	hist *Histogram
}

// NewRecorder returns a Recorder feeding the named histogram in the Default
// registry, pre-sized for n observations.
func NewRecorder(name string, n int) *Recorder {
	return &Recorder{coll: metrics.NewCollector(n), hist: NewHistogram(name)}
}

// NewRecorderIn is NewRecorder against an explicit registry (tests).
func NewRecorderIn(r *Registry, name string, n int) *Recorder {
	return &Recorder{coll: metrics.NewCollector(n), hist: r.Histogram(name)}
}

// Record adds one observation to both sinks. Safe for concurrent use.
func (r *Recorder) Record(d time.Duration) {
	r.hist.Record(int64(d))
	r.mu.Lock()
	r.coll.Record(d)
	r.mu.Unlock()
}

// Count returns the number of observations recorded.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.coll.Count()
}

// Summarize computes the paper-style summary over the raw sample.
func (r *Recorder) Summarize() metrics.Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.coll.Summarize()
}

// Histogram returns the live histogram sink.
func (r *Recorder) Histogram() *Histogram { return r.hist }

// Reset discards the raw sample, keeping its capacity. The histogram is
// cumulative and unaffected.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.coll.Reset()
}
