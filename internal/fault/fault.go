// Package fault is a deterministic fault-injection layer over
// transport.Network. It wraps a real network (TCP or the in-process pipe)
// and injects the failure modes a DRE system must survive — dial refusal,
// connection drop after a byte budget, added latency and jitter, partial
// writes, and byte corruption — under a seeded pseudo-random schedule, so a
// chaos test that fails is re-runnable with the identical fault sequence.
//
// Every decision consumes one draw from a splitmix64 stream derived from
// Config.Seed; with a fixed seed and a sequential workload the injected
// faults are byte-for-byte reproducible. Every injected fault is counted
// and recorded through the telemetry fault log, so a chaos run's /metrics
// and flight recorder show exactly what the network did to the system.
package fault

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/transport"
)

// ErrInjected is the root cause carried by every injected failure; tests
// and retry policies can distinguish injected faults from real ones with
// errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// Injection counters, exported at /metrics as compadres_fault_*.
var (
	cInjected     = telemetry.NewCounter("fault_injected_total")
	cDialRefused  = telemetry.NewCounter("fault_dial_refused_total")
	cConnDropped  = telemetry.NewCounter("fault_conn_dropped_total")
	cDelay        = telemetry.NewCounter("fault_delay_total")
	cPartialWrite = telemetry.NewCounter("fault_partial_write_total")
	cPartialRead  = telemetry.NewCounter("fault_partial_read_total")
	cCorrupt      = telemetry.NewCounter("fault_corrupt_total")
)

// Config is one fault scenario. The zero value injects nothing (the wrapper
// becomes a transparent pass-through), so scenarios enable only the modes
// they exercise.
type Config struct {
	// Seed drives every probabilistic decision. Two networks with the same
	// seed and the same operation sequence inject identical faults.
	Seed uint64

	// DialRefusals lists 0-based dial indices refused outright — a scripted
	// schedule ("refuse dials 3..7") independent of the probabilistic dials.
	DialRefusals []int
	// DialFailProb additionally refuses each dial with this probability.
	DialFailProb float64

	// DropAfterBytes severs a connection once its total traffic (read +
	// written bytes) exceeds this budget. Zero never severs on volume.
	DropAfterBytes int64
	// DropProb severs the connection at each I/O operation with this
	// probability.
	DropProb float64

	// LatencyMin and LatencyMax bound the delay injected before each Read;
	// the actual delay of an affected read is drawn uniformly between them.
	// LatencyMax == 0 disables latency injection.
	LatencyMin, LatencyMax time.Duration

	// PartialWriteProb makes a write deliver only a prefix of its buffer and
	// then sever the connection, so the peer observes a truncated frame.
	PartialWriteProb float64
	// PartialReadProb makes a read return fewer bytes than the peer has
	// ready, without severing — the benign short read every resumable frame
	// reader must tolerate mid-header and mid-body. The read delivers a
	// random proper prefix of what a full read would have returned; the
	// remainder arrives on later reads.
	PartialReadProb float64
	// CorruptProb flips one byte of a written buffer (the caller's slice is
	// not modified; the corruption happens on a copy).
	CorruptProb float64

	// WrapAccepted also injects faults on connections handed out by
	// Accept, not only on dialed ones.
	WrapAccepted bool
}

// Stats counts the faults one Network instance injected, independent of the
// process-global telemetry counters (which aggregate across scenarios).
type Stats struct {
	DialsRefused  int64
	ConnsDropped  int64
	DelaysAdded   int64
	PartialWrites int64
	PartialReads  int64
	BytesFlipped  int64
}

// Network wraps an inner transport.Network with fault injection.
type Network struct {
	inner transport.Network
	cfg   Config

	refuse map[int]struct{}
	dials  atomic.Int64
	draws  atomic.Uint64

	dialsRefused  atomic.Int64
	connsDropped  atomic.Int64
	delaysAdded   atomic.Int64
	partialWrites atomic.Int64
	partialReads  atomic.Int64
	bytesFlipped  atomic.Int64
}

// New wraps inner with the given fault scenario.
func New(inner transport.Network, cfg Config) *Network {
	n := &Network{inner: inner, cfg: cfg}
	if len(cfg.DialRefusals) > 0 {
		n.refuse = make(map[int]struct{}, len(cfg.DialRefusals))
		for _, i := range cfg.DialRefusals {
			n.refuse[i] = struct{}{}
		}
	}
	return n
}

// Stats returns this network's injection counts.
func (n *Network) Stats() Stats {
	return Stats{
		DialsRefused:  n.dialsRefused.Load(),
		ConnsDropped:  n.connsDropped.Load(),
		DelaysAdded:   n.delaysAdded.Load(),
		PartialWrites: n.partialWrites.Load(),
		PartialReads:  n.partialReads.Load(),
		BytesFlipped:  n.bytesFlipped.Load(),
	}
}

// draw consumes one value from the seeded splitmix64 stream.
func (n *Network) draw() uint64 {
	i := n.draws.Add(1)
	z := n.cfg.Seed + i*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// roll consumes one draw and reports true with probability p.
func (n *Network) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		n.draws.Add(1)
		return true
	}
	return float64(n.draw()>>11)/(1<<53) < p
}

// Listen implements transport.Network. The listener itself is never faulty;
// accepted connections are wrapped only when Config.WrapAccepted is set, so
// a chaos scenario can degrade one side of the wire while the other stays
// clean.
func (n *Network) Listen(addr string) (transport.Listener, error) {
	l, err := n.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	if !n.cfg.WrapAccepted {
		return l, nil
	}
	return &listener{n: n, inner: l}, nil
}

// Dial implements transport.Network, refusing dials per the scenario's
// scripted schedule and probability before delegating to the inner network.
func (n *Network) Dial(addr string) (transport.Conn, error) {
	idx := int(n.dials.Add(1) - 1)
	_, scripted := n.refuse[idx]
	if scripted || n.roll(n.cfg.DialFailProb) {
		n.dialsRefused.Add(1)
		cInjected.Inc()
		cDialRefused.Inc()
		err := &transport.OpError{Op: "dial", Addr: addr, Err: ErrInjected}
		telemetry.RecordFault("fault.dial", err)
		return nil, err
	}
	c, err := n.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &conn{n: n, inner: c, addr: addr}, nil
}

type listener struct {
	n     *Network
	inner transport.Listener
}

func (l *listener) Accept() (transport.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return &conn{n: l.n, inner: c, addr: l.inner.Addr()}, nil
}

func (l *listener) Close() error { return l.inner.Close() }
func (l *listener) Addr() string { return l.inner.Addr() }

// deadliner is the optional deadline surface both net.TCPConn and net.Pipe
// provide; the wrapper forwards it so resilient clients can bound reads on
// a faulty connection.
type deadliner interface {
	SetDeadline(t time.Time) error
}

// readDeadliner and writeDeadliner are the directional halves of the same
// surface. The multiplexed client bounds request writes without disturbing
// its reactor's blocking read, so the wrapper must forward each direction
// independently.
type readDeadliner interface {
	SetReadDeadline(t time.Time) error
}

type writeDeadliner interface {
	SetWriteDeadline(t time.Time) error
}

// conn injects the per-connection fault modes around an inner connection.
type conn struct {
	n       *Network
	inner   transport.Conn
	addr    string
	traffic atomic.Int64
	severed atomic.Bool
}

// sever cuts the connection (idempotently) and returns the injected error.
func (c *conn) sever(kind string) error {
	if c.severed.CompareAndSwap(false, true) {
		_ = c.inner.Close()
		c.n.connsDropped.Add(1)
		cInjected.Inc()
		cConnDropped.Inc()
		telemetry.RecordFault("fault."+kind,
			&transport.OpError{Op: kind, Addr: c.addr, Err: ErrInjected})
	}
	return &transport.OpError{Op: kind, Addr: c.addr, Err: ErrInjected}
}

// chargeTraffic counts conn volume and severs once the byte budget is
// spent. The sever happens after the current operation's bytes are
// delivered, so the byte count at which the peer sees the cut is
// deterministic.
func (c *conn) chargeTraffic(nbytes int) {
	if nbytes <= 0 || c.n.cfg.DropAfterBytes <= 0 {
		return
	}
	if c.traffic.Add(int64(nbytes)) >= c.n.cfg.DropAfterBytes {
		_ = c.sever("drop")
	}
}

func (c *conn) Read(p []byte) (int, error) {
	if c.severed.Load() {
		return 0, &transport.OpError{Op: "read", Addr: c.addr, Err: ErrInjected}
	}
	if max := c.n.cfg.LatencyMax; max > 0 {
		min := c.n.cfg.LatencyMin
		span := max - min
		d := min
		if span > 0 {
			d += time.Duration(c.n.draw() % uint64(span))
		}
		c.n.delaysAdded.Add(1)
		cDelay.Inc()
		time.Sleep(d)
	}
	if c.n.roll(c.n.cfg.DropProb) {
		return 0, c.sever("drop")
	}
	if len(p) > 1 && c.n.roll(c.n.cfg.PartialReadProb) {
		// Benign short read: cap this read at a random proper prefix of the
		// caller's buffer and leave the connection healthy — the rest of the
		// frame arrives on later reads. Counted but not logged to the fault
		// recorder: a short read is legal io.Reader behaviour, injected here
		// only to force the resumable-read paths.
		p = p[:1+int(c.n.draw()%uint64(len(p)-1))]
		c.n.partialReads.Add(1)
		cInjected.Inc()
		cPartialRead.Inc()
	}
	nr, err := c.inner.Read(p)
	c.chargeTraffic(nr)
	return nr, err
}

func (c *conn) Write(p []byte) (int, error) {
	if c.severed.Load() {
		return 0, &transport.OpError{Op: "write", Addr: c.addr, Err: ErrInjected}
	}
	if c.n.roll(c.n.cfg.DropProb) {
		return 0, c.sever("drop")
	}
	buf := p
	if len(p) > 0 && c.n.roll(c.n.cfg.CorruptProb) {
		// Flip one byte on a copy; the caller's buffer must stay intact.
		buf = append([]byte(nil), p...)
		buf[int(c.n.draw()%uint64(len(buf)))] ^= 0xFF
		c.n.bytesFlipped.Add(1)
		cInjected.Inc()
		cCorrupt.Inc()
		telemetry.RecordFault("fault.corrupt",
			&transport.OpError{Op: "corrupt", Addr: c.addr, Err: ErrInjected})
	}
	if len(p) > 1 && c.n.roll(c.n.cfg.PartialWriteProb) {
		k := 1 + int(c.n.draw()%uint64(len(buf)-1))
		nw, _ := c.inner.Write(buf[:k])
		c.n.partialWrites.Add(1)
		cInjected.Inc()
		cPartialWrite.Inc()
		err := c.sever("partial-write")
		return nw, err
	}
	nw, err := c.inner.Write(buf)
	c.chargeTraffic(nw)
	return nw, err
}

func (c *conn) Close() error { return c.inner.Close() }

// SetDeadline forwards to the inner connection when it supports deadlines
// (both TCP connections and in-process pipes do).
func (c *conn) SetDeadline(t time.Time) error {
	if d, ok := c.inner.(deadliner); ok {
		return d.SetDeadline(t)
	}
	return nil
}

// SetReadDeadline forwards the read half when the inner connection has one.
func (c *conn) SetReadDeadline(t time.Time) error {
	if d, ok := c.inner.(readDeadliner); ok {
		return d.SetReadDeadline(t)
	}
	return nil
}

// SetWriteDeadline forwards the write half when the inner connection has
// one.
func (c *conn) SetWriteDeadline(t time.Time) error {
	if d, ok := c.inner.(writeDeadliner); ok {
		return d.SetWriteDeadline(t)
	}
	return nil
}
