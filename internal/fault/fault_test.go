package fault

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/transport"
)

// echoListener accepts one connection and echoes everything it reads.
func echoListener(t *testing.T, net transport.Network) transport.Listener {
	t.Helper()
	ln, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				buf := make([]byte, 256)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln
}

func TestScriptedDialRefusals(t *testing.T) {
	inner := transport.NewInproc()
	fn := New(inner, Config{Seed: 1, DialRefusals: []int{0, 2}})
	ln := echoListener(t, inner)
	defer ln.Close()

	for i, wantRefused := range []bool{true, false, true, false, false} {
		c, err := fn.Dial(ln.Addr())
		if wantRefused {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("dial %d: err = %v, want ErrInjected", i, err)
			}
			var oe *transport.OpError
			if !errors.As(err, &oe) || oe.Op != "dial" {
				t.Fatalf("dial %d: refusal not wrapped as OpError dial: %v", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("dial %d: unexpected refusal: %v", i, err)
		}
		c.Close()
	}
	if got := fn.Stats().DialsRefused; got != 2 {
		t.Errorf("DialsRefused = %d, want 2", got)
	}
}

func TestSeededDialRefusalsDeterministic(t *testing.T) {
	outcomes := func(seed uint64) []bool {
		inner := transport.NewInproc()
		fn := New(inner, Config{Seed: seed, DialFailProb: 0.5})
		ln := echoListener(t, inner)
		defer ln.Close()
		var out []bool
		for i := 0; i < 32; i++ {
			c, err := fn.Dial(ln.Addr())
			out = append(out, err != nil)
			if err == nil {
				c.Close()
			}
		}
		return out
	}
	a, b := outcomes(42), outcomes(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at dial %d: %v vs %v", i, a, b)
		}
	}
	c := outcomes(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical refusal schedules")
	}
}

func TestDropAfterBytes(t *testing.T) {
	inner := transport.NewInproc()
	fn := New(inner, Config{Seed: 7, DropAfterBytes: 64})
	ln := echoListener(t, inner)
	defer ln.Close()

	c, err := fn.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	msg := make([]byte, 16)
	buf := make([]byte, 16)
	var total int64
	var opErr error
	for i := 0; i < 32; i++ {
		if _, err := c.Write(msg); err != nil {
			opErr = err
			break
		}
		total += int64(len(msg))
		if _, err := io.ReadFull(c, buf); err != nil {
			opErr = err
			break
		}
		total += int64(len(buf))
	}
	if opErr == nil {
		t.Fatal("connection survived past its byte budget")
	}
	// The budget counts read+write traffic; the sever must hit at or just
	// past 64 bytes, not tens of round trips later.
	if total > 128 {
		t.Errorf("connection carried %d bytes before dropping, budget 64", total)
	}
	if fn.Stats().ConnsDropped != 1 {
		t.Errorf("ConnsDropped = %d, want 1", fn.Stats().ConnsDropped)
	}
}

func TestCorruptionFlipsOneByteOnCopy(t *testing.T) {
	inner := transport.NewInproc()
	fn := New(inner, Config{Seed: 3, CorruptProb: 1})
	ln := echoListener(t, inner)
	defer ln.Close()

	c, err := fn.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	msg := []byte("hello, corrupted world!")
	orig := append([]byte(nil), msg...)
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	if string(msg) != string(orig) {
		t.Error("caller's buffer was mutated by corruption injection")
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("echoed data differs in %d bytes, want exactly 1", diff)
	}
	if fn.Stats().BytesFlipped != 1 { // only the dialed side is wrapped
		t.Errorf("BytesFlipped = %d, want 1 (accepted side is unwrapped)", fn.Stats().BytesFlipped)
	}
}

func TestPartialWriteSevers(t *testing.T) {
	inner := transport.NewInproc()
	fn := New(inner, Config{Seed: 9, PartialWriteProb: 1})
	ln := echoListener(t, inner)
	defer ln.Close()

	c, err := fn.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	n, err := c.Write(make([]byte, 100))
	if err == nil {
		t.Fatal("partial write reported success")
	}
	if n <= 0 || n >= 100 {
		t.Errorf("partial write delivered %d bytes, want a strict prefix", n)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("partial write err = %v, want ErrInjected cause", err)
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("write after sever err = %v, want ErrInjected", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	inner := transport.NewInproc()
	fn := New(inner, Config{Seed: 5, LatencyMin: 2 * time.Millisecond, LatencyMax: 4 * time.Millisecond})
	ln := echoListener(t, inner)
	defer ln.Close()

	c, err := fn.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := io.ReadFull(c, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Errorf("read returned in %v, want >= injected 2ms floor", d)
	}
	if fn.Stats().DelaysAdded == 0 {
		t.Error("no delay recorded")
	}
}

func TestZeroConfigIsTransparent(t *testing.T) {
	inner := transport.NewInproc()
	fn := New(inner, Config{})
	ln := echoListener(t, fn) // Listen passes through
	defer ln.Close()

	c, err := fn.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		if _, err := c.Write([]byte("abcd")); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(c, make([]byte, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if s := fn.Stats(); s != (Stats{}) {
		t.Errorf("zero config injected faults: %+v", s)
	}
}

func TestDeadlineForwarded(t *testing.T) {
	inner := transport.NewInproc()
	fn := New(inner, Config{Seed: 11})
	ln := echoListener(t, inner)
	defer ln.Close()

	c, err := fn.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	d, ok := c.(interface{ SetDeadline(time.Time) error })
	if !ok {
		t.Fatal("fault conn does not expose SetDeadline")
	}
	if err := d.SetDeadline(time.Now().Add(5 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	// Nothing was written, so the echo server sends nothing: the read must
	// time out instead of blocking forever.
	start := time.Now()
	_, err = c.Read(make([]byte, 1))
	if err == nil {
		t.Fatal("read with expired deadline succeeded")
	}
	if time.Since(start) > time.Second {
		t.Error("deadline not forwarded to inner connection")
	}
}
