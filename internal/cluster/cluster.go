// Package cluster is the fabric that backs an exported servant with a
// *group* of server processes. It composes the machinery of the ORB —
// forwarding Locate replies (giop.LocateObjectForward), the replica-aware
// striped channel pool (orb.ClientConfig.Addrs/Resolve), per-stripe breakers
// and single-flight redial — into a horizontal-scale-out story:
//
//	directory ──(LocateObjectForward: m0,m1,m2)──> cluster.Client
//	                                                   │ stripes spread P2C
//	                                       ┌───────────┼───────────┐
//	                                    replica m0  replica m1  replica m2
//
// A Directory holds the authoritative member list per group and answers
// Locate probes through any orb.Server it is attached to. Clients resolve a
// group once at dial time and re-resolve on member death (a failed redial
// triggers the orb client's Resolve hook) and periodically (the refresher),
// so a killed member fails over without tripping any breaker and a re-added
// member heals back into rotation.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/giop"
	"repro/internal/orb"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// ErrUnknownGroup reports a Locate probe the directory could not forward.
var ErrUnknownGroup = errors.New("cluster: unknown group")

// Cluster counters, exported at /metrics with the compadres_ prefix.
var (
	// directoryResolveTotal counts Locate probes the directory answered
	// with a forwarding list.
	directoryResolveTotal = telemetry.NewCounter("directory_resolve_total")
)

// Directory is the group-membership authority: an ordered address list per
// group key (conventionally remote.PortKey("Instance.Port")). Attach it to
// an orb.Server and Locate probes for a group answer LocateObjectForward
// with the current members. All methods are safe for concurrent use.
type Directory struct {
	mu     sync.Mutex
	groups map[string][]string
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{groups: make(map[string][]string)}
}

// Set replaces a group's member list (copied).
func (d *Directory) Set(group string, addrs ...string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.groups[group] = append([]string(nil), addrs...)
}

// Add appends a member to a group if not already present.
func (d *Directory) Add(group, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, a := range d.groups[group] {
		if a == addr {
			return
		}
	}
	d.groups[group] = append(d.groups[group], addr)
}

// Remove deletes a member from a group (a killed or drained replica).
func (d *Directory) Remove(group, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.groups[group]
	for i, a := range cur {
		if a == addr {
			d.groups[group] = append(append([]string(nil), cur[:i]...), cur[i+1:]...)
			return
		}
	}
}

// Members returns a copy of a group's current member list.
func (d *Directory) Members(group string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.groups[group]...)
}

// Groups returns the group keys, sorted.
func (d *Directory) Groups() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.groups))
	for g := range d.groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Forwarder returns the locate-forwarder function serving this directory:
// object keys matching a non-empty group answer its member list.
func (d *Directory) Forwarder() func(key []byte) []string {
	return func(key []byte) []string {
		d.mu.Lock()
		members := d.groups[string(key)]
		var out []string
		if len(members) > 0 {
			out = append([]string(nil), members...)
		}
		d.mu.Unlock()
		if out != nil {
			directoryResolveTotal.Inc()
		}
		return out
	}
}

// Attach installs the directory's forwarder on srv, making it a directory
// endpoint: Locate probes for any registered group forward to the members.
func (d *Directory) Attach(srv *orb.Server) {
	srv.SetLocateForwarder(d.Forwarder())
}

// Resolve asks the directory endpoint at addr for the members of group: one
// raw LocateRequest/LocateReply exchange on a fresh connection (no client
// machinery — resolution must work while every replica stripe is down). A
// LocateObjectHere answer means addr itself serves the group (a directory
// co-hosted with a singleton servant) and resolves to [addr].
func Resolve(network transport.Network, addr, group string) ([]string, error) {
	conn, err := network.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: resolve %q at %q: %w", group, addr, err)
	}
	defer conn.Close()
	wire := giop.MarshalLocateRequest(nil, giop.BigEndian, &giop.LocateRequest{
		RequestID: 1, ObjectKey: []byte(group),
	})
	if _, err := conn.Write(wire); err != nil {
		return nil, fmt.Errorf("cluster: resolve %q at %q: %w", group, addr, err)
	}
	fr := giop.NewFrameReader(conn, uint32(orb.DefaultMaxMessage))
	defer fr.Close()
	h, fb, err := fr.NextFrame()
	if err != nil {
		return nil, fmt.Errorf("cluster: resolve %q at %q: %w", group, addr, err)
	}
	defer fb.Release()
	if h.Type != giop.MsgLocateReply {
		return nil, fmt.Errorf("cluster: resolve %q at %q: unexpected %v message", group, addr, h.Type)
	}
	var rep giop.LocateReply
	if err := giop.DecodeLocateReply(h.Order, fb.Body(), &rep); err != nil {
		return nil, fmt.Errorf("cluster: resolve %q at %q: %w", group, addr, err)
	}
	switch rep.Status {
	case giop.LocateObjectForward:
		if len(rep.Forward) == 0 {
			return nil, fmt.Errorf("cluster: resolve %q at %q: empty forward list", group, addr)
		}
		return rep.Forward, nil
	case giop.LocateObjectHere:
		return []string{addr}, nil
	default:
		return nil, fmt.Errorf("%w: %q at %q", ErrUnknownGroup, group, addr)
	}
}
